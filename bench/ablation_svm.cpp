// Ablation A4: model class — MLP vs linear SVM baseline.
//
// §6 suggests "a Support Vector Machine (SVM) can be used instead of
// neural network".  This bench trains both on the same offline data across
// Gimli-Hash round counts.  Expected shape: the linear model keeps up at
// very low rounds (strong linear structure) and loses to the MLP as the
// signal becomes nonlinear.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "core/arch_zoo.hpp"
#include "core/dataset.hpp"
#include "core/linear_baseline.hpp"
#include "nn/optimizer.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace mldist;
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header("Ablation - MLP vs linear SVM baseline (Gimli-Hash)",
                      opt);

  const std::size_t train_base = opt.base(4000, 40000);
  const std::size_t val_base = train_base / 5;
  const int epochs = opt.epochs(3, 10);

  std::printf("%-8s %-12s %-12s %-12s\n", "rounds", "MLP acc", "SVM acc",
              "MLP - SVM");
  bench::print_rule();
  for (int rounds : {2, 3, 4, 5, 6, 7}) {
    const core::GimliHashTarget target(rounds);
    util::Xoshiro256 data_rng(opt.seed + static_cast<std::uint64_t>(rounds));
    const nn::Dataset train =
        core::collect_dataset(target, train_base, data_rng);
    const nn::Dataset val = core::collect_dataset(target, val_base, data_rng);

    util::Xoshiro256 rng(opt.seed ^ 0x57a0);
    auto mlp = core::build_default_mlp(128, 2, rng);
    nn::Adam adam(1e-3f);
    nn::FitOptions fit;
    fit.epochs = epochs;
    fit.batch_size = 128;
    fit.shuffle_seed = opt.seed;
    util::Timer timer;
    (void)mlp->fit(train, adam, fit);
    const double mlp_acc = mlp->evaluate(val).accuracy;

    core::LinearSvm svm(128, 2);
    core::LinearSvmOptions sopt;
    sopt.epochs = epochs;
    (void)svm.fit(train, sopt);
    const double svm_acc = svm.accuracy(val);

    std::printf("%-8d %-12.4f %-12.4f %+-12.4f (%.1fs)\n", rounds, mlp_acc,
                svm_acc, mlp_acc - svm_acc, timer.seconds());
  }
  bench::print_rule();
  return 0;
}
