// Table 1: optimal differential trail weights for round-reduced Gimli
// (designers' SAT/SMT result, cited by the paper), plus the paper's point
// of comparison: the classical 8-round distinguisher needs 2^52 data while
// the ML distinguisher of §4 needs ~2^17.6 offline / 2^14.3 online.
//
// We cannot re-run the designers' SAT search on this budget; what we verify
// empirically is the cheap prefix: Monte-Carlo estimation of the best
// output-difference weight over single-bit input differences confirms
// weight 0 at rounds 1-2 and weight <= 2 at round 3, and shows the rapid
// growth after round 4 that motivates the ML approach.
#include <cmath>
#include <cstdio>

#include "analysis/trail_weights.hpp"
#include "bench_common.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace mldist;
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header("Table 1 - optimal Gimli trail weights (designers) vs "
                      "empirical single-bit estimates", opt);

  std::printf("%-8s %-14s %-20s\n", "rounds", "paper weight",
              "empirical estimate (upper bound on optimum)");
  bench::print_rule();

  const int verify_rounds = opt.full ? 5 : 4;
  const std::uint64_t samples = opt.full ? 16384 : 1024;
  util::Xoshiro256 rng(opt.seed);
  util::Timer timer;
  const auto estimates =
      analysis::best_single_bit_weights(verify_rounds, samples, rng);

  for (int r = 1; r <= 8; ++r) {
    const int paper = analysis::kGimliOptimalTrailWeights[r - 1];
    if (r <= verify_rounds) {
      const auto& e = estimates[static_cast<std::size_t>(r - 1)];
      std::printf("%-8d %-14d %.2f%s (best single-bit diff, 2^%.0f pairs)\n",
                  r, paper, e.weight, e.deterministic ? " (deterministic)" : "",
                  std::log2(static_cast<double>(samples)));
    } else {
      std::printf("%-8d %-14d (beyond Monte-Carlo budget; SAT-proved)\n", r,
                  paper);
    }
  }
  bench::print_rule();
  std::printf("sweep time: %.1fs\n", timer.seconds());
  std::printf("\nComplexity comparison the paper draws from this table:\n");
  std::printf("  classical 8-round distinguisher (best trail, weight 52): "
              ">= 2^52 data\n");
  std::printf("  ML distinguisher (paper's sec. 4): 2^17.6 offline + 2^14.3 "
              "online data\n");
  std::printf("  reduction: ~cube root (52 -> ~17.6 bits)\n");
  return 0;
}
