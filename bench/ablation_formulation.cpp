// Ablation A7: data formulation — the paper's multi-difference
// classification (§3) vs Gohr's real-vs-random labelling (§2.3/§3.3).
//
// Both train the same MLP on the same oracle-query budget.  Accuracies are
// not directly comparable across tasks, so the table also reports the
// distinguishing advantage 2*acc - 1, which is.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "core/arch_zoo.hpp"
#include "core/dataset.hpp"
#include "core/distinguisher.hpp"
#include "core/real_random.hpp"
#include "core/targets.hpp"
#include "nn/optimizer.hpp"
#include "util/timer.hpp"

namespace {

using namespace mldist;

void run_target(const core::Target& target, std::size_t base, int epochs,
                std::uint64_t seed) {
  // (a) paper's formulation via the standard pipeline.
  double paper_acc = 0.0;
  {
    util::Xoshiro256 rng(seed);
    auto model = core::build_default_mlp(target.output_bytes() * 8,
                                         target.num_differences(), rng);
    core::DistinguisherOptions dopt;
    dopt.epochs = epochs;
    dopt.seed = seed ^ 0xf0;
    core::MLDistinguisher dist(std::move(model), dopt);
    paper_acc = dist.train(target, base).val_accuracy;
  }
  // (b) Gohr's formulation: same number of oracle queries. One paper base
  // input costs t+1 queries and yields t rows; one Gohr "real" row costs
  // t+1 queries too (the target API samples all diffs), so per_class =
  // base gives identical query counts.
  double gohr_acc = 0.0;
  {
    util::Xoshiro256 rng(seed + 1);
    const nn::Dataset train =
        core::collect_real_random_dataset(target, base, rng);
    const nn::Dataset val =
        core::collect_real_random_dataset(target, base / 5, rng);
    auto model =
        core::build_default_mlp(target.output_bytes() * 8, 2, rng);
    nn::Adam adam(1e-3f);
    nn::FitOptions fit;
    fit.epochs = epochs;
    fit.batch_size = 128;
    fit.shuffle_seed = seed;
    (void)model->fit(train, adam, fit);
    gohr_acc = model->evaluate(val).accuracy;
  }
  std::printf("%-22s %-9.4f %-9.4f %-11.4f %-9.4f\n", target.name().c_str(),
              paper_acc, 2 * paper_acc - 1, gohr_acc, 2 * gohr_acc - 1);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header("Ablation - paper's multi-difference labels vs Gohr's "
                      "real-vs-random labels", opt);

  const std::size_t base = opt.base(4000, 40000);
  const int epochs = opt.epochs(3, 10);

  std::printf("%-22s %-9s %-9s %-11s %-9s\n", "target", "paper", "adv",
              "gohr-style", "adv");
  bench::print_rule();
  run_target(core::GimliHashTarget(6), base, epochs, opt.seed);
  run_target(core::GimliHashTarget(7), base, epochs, opt.seed + 7);
  run_target(core::GimliCipherTarget(7), base, epochs, opt.seed + 14);
  run_target(core::SpeckTarget(5), base * 2, epochs, opt.seed + 21);
  run_target(core::SpeckTarget(6), base * 2, epochs, opt.seed + 28);
  bench::print_rule();
  std::printf("adv = 2*accuracy - 1.  The formulations track each other; the\n"
              "paper's needs no random data during training and extends to\n"
              "t > 2 differences, Gohr's maps directly to key ranking.\n");
  return 0;
}
