// Serving-plane saturation (ISSUE 9): offered load vs latency for the
// batched distinguisher daemon, and the throughput case for coalescing.
//
// Two daemon configurations serve the same untrained gohr-net/16 registry
// (the weights are irrelevant to the cost model — serving is pure forward
// passes):
//
//   batch-1  batch_window_us=0, batch_max_rows=1 — every request runs its
//            own predict call; the per-request GEMM cost is the floor the
//            coalescing exists to amortise.
//   batched  the default coalescing window (200us) and batch cap (64) —
//            concurrent requests share one batched GEMM.
//
// Closed-loop clients (1..N threads, each request waits for its response)
// sweep the offered load; per load point the bench records req/s and the
// p50/p99 end-to-end latency.  Saturated throughput is the best req/s the
// sweep reached.
//
// The artifact results/BENCH_serving.json records the sweep and the pinned
// summary metrics (serving_batched_req_per_sec, serving_batch1_req_per_sec,
// serving_batch_speedup, p50/p99 ns per configuration).
//
// Acceptance, checked by the exit status (the bench runs under the
// "regress" ctest label):
//   * batched and batch-1 classify responses for the same rows are
//     byte-identical (row independence + deterministic rendering), and
//   * saturated batched throughput beats batch-1 by the kMinSpeedup floor
//     (set beneath the typical >= 2x so single-core CPU-steal noise cannot
//     flake the suite; skipped under sanitizer builds, where
//     instrumentation on the I/O path drowns the GEMM savings — the
//     byte-identity still gates).
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "bench_common.hpp"
#include "core/arch_zoo.hpp"
#include "core/model_io.hpp"
#include "serve/daemon.hpp"
#include "serve/registry.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define MLDIST_BENCH_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define MLDIST_BENCH_SANITIZED 1
#endif
#endif

namespace {

using namespace mldist;

// The coalescing win this bench demonstrates is >= 2x (typical quick-mode
// runs on the 1-core CI host measure 1.9-2.5x, --full more); the exit-code
// floor is set below the worst observed run so CPU-steal noise on a shared
// single-core box cannot flake the regress suite.  The pinned history
// metrics in tools/baselines.jsonl carry the real measured numbers.
constexpr double kMinSpeedup = 1.5;
#ifdef MLDIST_BENCH_SANITIZED
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif

// ---------------------------------------------------------------------------
// minimal closed-loop HTTP client
// ---------------------------------------------------------------------------

int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

struct Reply {
  int status = 0;
  std::string body;
};

Reply post_classify(std::uint16_t port, const std::string& body) {
  Reply reply;
  const int fd = connect_loopback(port);
  if (fd < 0) return reply;
  const std::string req =
      "POST /v1/classify HTTP/1.1\r\nHost: l\r\nContent-Length: " +
      std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" + body;
  (void)::send(fd, req.data(), req.size(), 0);
  std::string raw;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  if (raw.rfind("HTTP/1.1 ", 0) == 0) reply.status = std::atoi(raw.c_str() + 9);
  const std::size_t sep = raw.find("\r\n\r\n");
  if (sep != std::string::npos) reply.body = raw.substr(sep + 4);
  return reply;
}

std::string hex_row(std::uint64_t seed, std::size_t bytes) {
  util::Xoshiro256 rng(seed);
  static const char* digits = "0123456789abcdef";
  std::string hex;
  for (std::size_t i = 0; i < bytes; ++i) {
    const std::uint8_t b = static_cast<std::uint8_t>(rng.next_u64());
    hex += digits[b >> 4];
    hex += digits[b & 0xf];
  }
  return hex;
}

std::string classify_body(const std::vector<std::string>& rows) {
  std::string body = "{\"model\":\"gohr\",\"inputs\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) body += ",";
    body += "\"" + rows[i] + "\"";
  }
  return body + "]}";
}

// ---------------------------------------------------------------------------
// load generation
// ---------------------------------------------------------------------------

struct LoadPoint {
  int clients = 0;
  double req_per_sec = 0.0;
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;
};

double percentile(std::vector<double>& sorted_ns, double q) {
  if (sorted_ns.empty()) return 0.0;
  const std::size_t idx = std::min(
      sorted_ns.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(sorted_ns.size())));
  return sorted_ns[idx];
}

/// Closed loop: `clients` threads each fire single-row classify requests
/// back to back for `seconds`.
LoadPoint run_load(std::uint16_t port, int clients, double seconds,
                   std::uint64_t seed) {
  std::vector<std::vector<double>> latencies(clients);
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> errors{0};
  std::atomic<bool> stop{false};
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      // Per-client distinct row so batches carry heterogeneous inputs.
      const std::string body =
          classify_body({hex_row(seed + static_cast<std::uint64_t>(c), 8)});
      while (!stop.load(std::memory_order_relaxed)) {
        const util::Timer timer;
        const Reply reply = post_classify(port, body);
        if (reply.status == 200) {
          latencies[c].push_back(timer.seconds() * 1e9);
        } else {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  const util::Timer wall;
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(seconds * 1000)));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads) t.join();
  const double elapsed = wall.seconds();

  LoadPoint point;
  point.clients = clients;
  std::vector<double> all;
  for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  point.completed = all.size();
  point.errors = errors.load();
  point.req_per_sec = static_cast<double>(all.size()) / elapsed;
  point.p50_ns = percentile(all, 0.50);
  point.p99_ns = percentile(all, 0.99);
  return point;
}

struct SweepResult {
  std::vector<LoadPoint> points;
  double saturated_req_per_sec = 0.0;
  double sat_p50_ns = 0.0;
  double sat_p99_ns = 0.0;
};

SweepResult sweep(std::uint16_t port, const std::vector<int>& load,
                  double seconds, std::uint64_t seed, const char* label) {
  SweepResult result;
  std::printf("  %-8s %8s %12s %12s %12s %8s\n", label, "clients", "req/s",
              "p50 us", "p99 us", "errors");
  for (int clients : load) {
    const LoadPoint point = run_load(port, clients, seconds, seed);
    std::printf("  %-8s %8d %12.0f %12.1f %12.1f %8llu\n", "", point.clients,
                point.req_per_sec, point.p50_ns / 1e3, point.p99_ns / 1e3,
                static_cast<unsigned long long>(point.errors));
    if (point.req_per_sec > result.saturated_req_per_sec) {
      result.saturated_req_per_sec = point.req_per_sec;
      result.sat_p50_ns = point.p50_ns;
      result.sat_p99_ns = point.p99_ns;
    }
    result.points.push_back(point);
  }
  return result;
}

std::string points_json(const std::vector<LoadPoint>& points) {
  std::vector<std::string> items;
  items.reserve(points.size());
  for (const LoadPoint& p : points) {
    util::JsonBuilder j;
    j.field("clients", p.clients)
        .field("req_per_sec", p.req_per_sec)
        .field("p50_ns", p.p50_ns)
        .field("p99_ns", p.p99_ns)
        .field("completed", p.completed)
        .field("errors", p.errors);
    items.push_back(j.str());
  }
  return util::JsonBuilder::array(items);
}

/// Extract the "predictions":[...] slice of a classify response body.
std::string predictions_of(const std::string& body) {
  const std::size_t start = body.find("\"predictions\":[");
  return start == std::string::npos ? std::string() : body.substr(start);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header("serving saturation (batched vs batch-1 daemon)", opt);

  // One untrained gohr-net/16 model over a 64-bit input — the SPECK32/64
  // ciphertext-pair shape of a Gohr-style distinguisher.  The depth-16
  // residual tower keeps the batch-1 GEMM ceiling (~0.8k req/s here)
  // well below the HTTP plane's capacity, so the sweep measures the
  // coalescing win, not socket overhead.
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("mldist_bench_serving_" + std::to_string(::getpid())))
          .string();
  std::filesystem::create_directories(dir);
  {
    util::Xoshiro256 rng(opt.seed);
    auto model = core::build_gohr_net(64, 2, /*depth=*/16, rng);
    core::save_model(*model, "gohr-net/16", 64, 2, dir + "/gohr.nnb");
  }
  serve::ModelRegistry registry;
  if (registry.load_dir(dir) != 1) {
    std::fprintf(stderr, "FAIL: registry did not load the bench model\n");
    return 1;
  }

  const std::vector<int> load = opt.full ? std::vector<int>{1, 2, 4, 8, 16, 32}
                                         : std::vector<int>{1, 4, 16};
  const double seconds = opt.full ? 2.0 : 0.8;

  serve::ServeOptions batch1;
  batch1.batch.batch_window_us = 0;
  batch1.batch.batch_max_rows = 1;
  serve::ServeOptions batched;  // the default coalescing configuration

  // --- byte-identity gate (on the batched daemon) --------------------------
  std::vector<std::string> rows;
  for (int i = 0; i < 8; ++i) {
    rows.push_back(hex_row(opt.seed + 1000 + static_cast<std::uint64_t>(i), 8));
  }
  bool identical = true;
  {
    serve::ServeDaemon daemon(registry);
    std::string error;
    if (!daemon.start(batched, &error)) {
      std::fprintf(stderr, "FAIL: daemon start: %s\n", error.c_str());
      return 1;
    }
    const Reply all = post_classify(daemon.port(), classify_body(rows));
    identical = all.status == 200;
    std::string rebuilt = "\"predictions\":[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Reply one = post_classify(daemon.port(), classify_body({rows[i]}));
      identical = identical && one.status == 200;
      const std::string preds = predictions_of(one.body);
      // "predictions":[{...}]}  ->  {...}
      const std::size_t open = preds.find('{');
      const std::size_t close = preds.rfind('}');
      if (open == std::string::npos || close <= open + 1) {
        identical = false;
        break;
      }
      if (i > 0) rebuilt += ",";
      rebuilt += preds.substr(open, preds.rfind("}]") - open + 1);
    }
    rebuilt += "]}";
    identical = identical &&
                predictions_of(all.body).find(rebuilt) != std::string::npos;
    daemon.stop();
  }
  std::printf("batched vs batch-1 responses byte-identical: %s\n",
              identical ? "yes" : "NO");

  // --- saturation sweeps ---------------------------------------------------
  SweepResult batch1_sweep;
  {
    serve::ServeDaemon daemon(registry);
    std::string error;
    if (!daemon.start(batch1, &error)) {
      std::fprintf(stderr, "FAIL: daemon start: %s\n", error.c_str());
      return 1;
    }
    (void)post_classify(daemon.port(), classify_body({rows[0]}));  // warm
    batch1_sweep = sweep(daemon.port(), load, seconds, opt.seed, "batch-1");
    daemon.stop();
  }
  SweepResult batched_sweep;
  {
    serve::ServeDaemon daemon(registry);
    std::string error;
    if (!daemon.start(batched, &error)) {
      std::fprintf(stderr, "FAIL: daemon start: %s\n", error.c_str());
      return 1;
    }
    (void)post_classify(daemon.port(), classify_body({rows[0]}));  // warm
    batched_sweep = sweep(daemon.port(), load, seconds, opt.seed, "batched");
    daemon.stop();
  }
  std::filesystem::remove_all(dir);

  const double speedup =
      batch1_sweep.saturated_req_per_sec > 0.0
          ? batched_sweep.saturated_req_per_sec /
                batch1_sweep.saturated_req_per_sec
          : 0.0;
  bench::print_rule();
  std::printf("saturated: batch-1 %.0f req/s, batched %.0f req/s -> %.2fx\n",
              batch1_sweep.saturated_req_per_sec,
              batched_sweep.saturated_req_per_sec, speedup);

  util::JsonBuilder j;
  j.raw("options", bench::options_json(opt))
      .field("model", "gohr-net/16")
      .field("input_bits", 64)
      .field("window_us", batched.batch.batch_window_us)
      .field("batch_max_rows",
             static_cast<std::uint64_t>(batched.batch.batch_max_rows))
      .field("load_seconds", seconds)
      .raw("batch1_sweep", points_json(batch1_sweep.points))
      .raw("batched_sweep", points_json(batched_sweep.points))
      .field("bitwise_ok", identical)
      .field("serving_batch1_req_per_sec",
             batch1_sweep.saturated_req_per_sec)
      .field("serving_batched_req_per_sec",
             batched_sweep.saturated_req_per_sec)
      .field("serving_batch_speedup", speedup)
      .field("serving_batch1_p50_ns", batch1_sweep.sat_p50_ns)
      .field("serving_batch1_p99_ns", batch1_sweep.sat_p99_ns)
      .field("serving_batched_p50_ns", batched_sweep.sat_p50_ns)
      .field("serving_batched_p99_ns", batched_sweep.sat_p99_ns);
  bench::write_bench_json("serving", j);

  if (!identical) {
    std::fprintf(stderr, "FAIL: batched and batch-1 classify responses "
                         "differ — row independence broken\n");
    return 1;
  }
  if (kSanitized) {
    std::printf("sanitizer build: responses byte-identical; the %.1fx "
                "throughput floor is not asserted\n",
                kMinSpeedup);
    return 0;
  }
  if (speedup < kMinSpeedup) {
    std::fprintf(stderr,
                 "FAIL: batched speedup %.2fx below the %.1fx floor\n",
                 speedup, kMinSpeedup);
    return 1;
  }
  std::printf("batched speedup %.2fx (floor %.1fx)\n", speedup, kMinSpeedup);
  return 0;
}
