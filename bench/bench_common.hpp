// Shared support for the experiment benches: CLI scale selection and table
// printing.  Every bench prints the paper's reported numbers next to the
// measured ones and accepts:
//   --quick     seconds-scale budgets (default) — shape-preserving
//   --full      larger budgets, closer to the paper's 2^17.6-sample scale
//   --seed N    override the experiment seed
//   --threads W pipeline worker count (0 = global pool sized to the machine)
//   --kernel K  force the compute-kernel implementation
//               (reference | blocked | avx2); default = best supported
//   --trace F   record a Chrome trace_event JSON of the run into F
//               (same effect as MLDIST_TRACE=F in the environment)
//   --serve-metrics P  expose /metrics, /healthz and /runz on port P while
//               the bench runs (0 = ephemeral; off by default)
//   --log-level L      debug|info|warn|error|off (MLDIST_LOG_LEVEL)
//   --log-file F       JSONL log sink instead of stderr (MLDIST_LOG_FILE)
//
// Every artifact written through write_bench_json carries the run's
// obs::RunManifest and is also appended (bench name + manifest + payload)
// as one line to results/history.jsonl, the append-only record
// tools/bench_compare gates regressions on.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/distinguisher.hpp"
#include "core/targets.hpp"
#include "kernels/dispatch.hpp"
#include "nn/model.hpp"
#include "obs/log.hpp"
#include "obs/manifest.hpp"
#include "obs/server.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"

namespace mldist::bench {

struct Options {
  bool full = false;
  std::uint64_t seed = 0xb0155eedULL;
  std::size_t threads = 0;        ///< 0 = global pool (hardware concurrency)
  std::size_t base_override = 0;  ///< 0 = use the bench's default budget
  int epochs_override = 0;        ///< 0 = use the bench's default epochs

  /// The bench's chosen base-input budget after applying any override.
  std::size_t base(std::size_t quick, std::size_t full_scale) const {
    if (base_override != 0) return base_override;
    return full ? full_scale : quick;
  }
  int epochs(int quick, int full_scale) const {
    if (epochs_override != 0) return epochs_override;
    return full ? full_scale : quick;
  }
};

/// The bench-wide metrics server, started by --serve-metrics and alive for
/// the rest of the process (stopped by its destructor at exit).
inline obs::MetricsServer& metrics_server() {
  static obs::MetricsServer server;
  return server;
}

inline Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      opt.full = true;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      opt.full = false;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      opt.seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      opt.threads = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--kernel") == 0 && i + 1 < argc) {
      try {
        kernels::set_dispatch(argv[++i]);
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "--kernel: %s\n", e.what());
        std::exit(2);
      }
    } else if (std::strcmp(argv[i], "--base") == 0 && i + 1 < argc) {
      opt.base_override = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--epochs") == 0 && i + 1 < argc) {
      opt.epochs_override = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      obs::Tracer::global().enable(argv[++i]);
    } else if (std::strcmp(argv[i], "--serve-metrics") == 0 && i + 1 < argc) {
      const int port = std::atoi(argv[++i]);
      std::string error;
      if (!metrics_server().start(static_cast<std::uint16_t>(port), &error)) {
        std::fprintf(stderr, "--serve-metrics: %s\n", error.c_str());
        std::exit(2);
      }
      std::printf("metrics server on http://localhost:%u/metrics\n",
                  metrics_server().port());
    } else if (std::strcmp(argv[i], "--log-level") == 0 && i + 1 < argc) {
      obs::LogLevel lvl;
      if (!obs::parse_level(argv[++i], lvl)) {
        std::fprintf(stderr, "--log-level: unknown level '%s'\n", argv[i]);
        std::exit(2);
      }
      obs::Logger::global().set_level(lvl);
    } else if (std::strcmp(argv[i], "--log-file") == 0 && i + 1 < argc) {
      std::string error;
      if (!obs::Logger::global().set_file(argv[++i], &error)) {
        std::fprintf(stderr, "--log-file: %s\n", error.c_str());
        std::exit(2);
      }
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: %s [--quick|--full] [--seed N] [--threads W] [--base N] "
          "[--epochs N] [--kernel reference|blocked|avx2] [--trace FILE] "
          "[--serve-metrics PORT] [--log-level L] [--log-file FILE]\n",
          argv[0]);
      std::exit(0);
    }
  }
  // Stamp the run manifest: the resolved kernel and the hash of the shared
  // options, so every artifact this bench writes is attributable.
  obs::RunManifest& manifest = obs::RunManifest::current();
  manifest.kernel = kernels::impl_name(kernels::dispatch());
  {
    util::JsonBuilder cfg;
    cfg.field("mode", opt.full ? "full" : "quick")
        .field("seed", static_cast<std::uint64_t>(opt.seed))
        .field("threads", static_cast<std::uint64_t>(opt.threads))
        .field("base_override", static_cast<std::uint64_t>(opt.base_override))
        .field("epochs_override", opt.epochs_override)
        .field("kernel", manifest.kernel);
    manifest.set_config(cfg.str(), opt.seed);
  }
  return opt;
}

inline void print_header(const char* title, const Options& opt) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("mode: %s   seed: 0x%llx\n", opt.full ? "full" : "quick",
              static_cast<unsigned long long>(opt.seed));
  std::printf("==============================================================\n");
}

inline void print_rule() {
  std::printf("--------------------------------------------------------------\n");
}

/// Machine-readable companion to the printed tables: one CSV per bench,
/// written under results/ in the working directory so plotting scripts can
/// regenerate the paper's tables/figures without scraping stdout.
class CsvWriter {
 public:
  CsvWriter(const std::string& bench_name, const std::string& header) {
    std::filesystem::create_directories("results");
    out_.open("results/" + bench_name + ".csv");
    if (out_) out_ << header << "\n";
  }

  /// Append one row (caller formats the comma-separated values).
  void row(const std::string& csv_row) {
    if (out_) out_ << csv_row << "\n";
  }

  template <typename... Args>
  void rowf(const char* fmt, Args... args) {
    char buf[512];
    std::snprintf(buf, sizeof(buf), fmt, args...);
    row(buf);
  }

 private:
  std::ofstream out_;
};

/// Write the bench's telemetry object to results/BENCH_<name>.json (one
/// artifact per bench run, overwritten each time) with the run manifest
/// spliced in as the leading "manifest" block, and append the same payload
/// as one {"bench":...,"manifest":...,<fields>} line to
/// results/history.jsonl — the append-only trajectory tools/bench_compare
/// reads.  The builder should already carry the run options — use
/// `options_json` for the common part.
inline bool write_bench_json(const std::string& bench_name,
                             const util::JsonBuilder& j) {
  util::JsonBuilder doc;
  doc.field("bench", bench_name)
      .raw("manifest", obs::RunManifest::current().to_json())
      .merge(j);
  const util::WriteResult written = util::write_json_file(
      "results/BENCH_" + bench_name + ".json", doc.str());
  if (!written) {
    obs::log_error("bench", written.error);
    return false;
  }
  util::JsonBuilder line;
  line.field("bench", bench_name)
      .raw("manifest", obs::RunManifest::current().to_json())
      .merge(j);
  const util::WriteResult appended =
      util::append_jsonl("results/history.jsonl", line.str());
  if (!appended) obs::log_warn("bench", appended.error);
  return true;
}

/// The shared CLI options as a JSON object, for embedding into bench
/// artifacts.  Records the active kernel implementation so an artifact is
/// attributable to the dispatch path that produced it.
inline std::string options_json(const Options& opt) {
  util::JsonBuilder j;
  j.field("mode", opt.full ? "full" : "quick")
      .field("seed", static_cast<std::uint64_t>(opt.seed))
      .field("threads", static_cast<std::uint64_t>(opt.threads))
      .field("kernel", kernels::impl_name(kernels::dispatch()));
  return j.str();
}

/// The train-a-distinguisher block shared by the model benches
/// (gohr_speck, ext_gohrnet): wrap `model` in an MLDistinguisher and train
/// it on `target`.  Every GEMM in the run goes through the dispatched
/// kernel, so --kernel selects the implementation for the whole bench.
inline core::TrainReport train_distinguisher(
    std::unique_ptr<nn::Sequential> model, const core::Target& target,
    std::size_t base_inputs, int epochs, std::uint64_t seed) {
  core::DistinguisherOptions dopt;
  dopt.epochs = epochs;
  dopt.seed = seed;
  core::MLDistinguisher dist(std::move(model), dopt);
  return dist.train(target, base_inputs);
}

}  // namespace mldist::bench
