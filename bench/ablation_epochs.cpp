// Ablation A3: training epochs and overfitting.
//
// §5 trains for 5 epochs because "for higher numbers the models tend to
// overfit".  This bench fixes a small offline budget on 8-round
// Gimli-Cipher and sweeps epochs, printing train vs held-out accuracy; a
// widening train/validation gap with more epochs is the overfitting
// signature the paper describes.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "core/arch_zoo.hpp"
#include "core/dataset.hpp"
#include "nn/optimizer.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace mldist;
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header("Ablation - epochs vs overfitting (8-round "
                      "Gimli-Cipher, small data)", opt);

  // Deliberately small data so overfitting shows early.
  const std::size_t train_base = opt.base(2000, 8000);
  const std::size_t val_base = train_base / 4;
  const int max_epochs = opt.full ? 30 : 12;

  const core::GimliCipherTarget target(8);
  util::Xoshiro256 data_rng(opt.seed);
  const nn::Dataset train = core::collect_dataset(target, train_base, data_rng);
  const nn::Dataset val = core::collect_dataset(target, val_base, data_rng);

  util::Xoshiro256 rng(opt.seed ^ 0xe90c);
  auto model = core::build_default_mlp(128, 2, rng);
  nn::Adam adam(1e-3f);

  std::printf("%-8s %-12s %-12s %-10s\n", "epoch", "train acc", "val acc",
              "gap");
  bench::print_rule();
  nn::FitOptions fit;
  fit.epochs = max_epochs;
  fit.batch_size = 128;
  fit.validation = &val;
  fit.shuffle_seed = opt.seed;
  fit.on_epoch = [](const nn::EpochStats& s) {
    const double val = s.val_accuracy.value_or(0.0);
    std::printf("%-8d %-12.4f %-12.4f %+.4f\n", s.epoch, s.train_accuracy,
                val, s.train_accuracy - val);
  };
  util::Timer timer;
  (void)model->fit(train, adam, fit);
  bench::print_rule();
  std::printf("total %.1fs; paper: 5 epochs, \"for higher numbers the "
              "models tend to overfit\".\n", timer.seconds());
  return 0;
}
