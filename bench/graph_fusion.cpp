// Graph-IR fusion: inference forward throughput of the optimised pass
// pipeline against the unoptimised graph, for the two distinguisher model
// families the IR accelerates.
//
//   unfused  set_pipeline({}) — the lowered graph executed node by node:
//            materialised im2col convolutions, standalone BatchNorm and
//            activation sweeps (the pre-IR Sequential forward, executed
//            through the same arena so only graph rewrites differ).
//   fused    the default pipeline — BatchNorm/activations folded into the
//            GEMM epilogues, im2col-free direct convolution plans, and the
//            liveness-planned scratch arena.
//
// Both paths are bitwise identical by construction (the determinism
// contract, enforced by tests/kernel_equiv_test.cpp and tests/ir_test.cpp);
// the bench re-asserts that on its own outputs before trusting the timing.
//
// The artifact results/BENCH_graph_fusion.json records per model the
// per-forward wall time of each path and the fused-vs-unfused speedup.
// Acceptance threshold, checked by the exit status: the Conv1D
// distinguisher (CNN I) fused forward must be >= 1.3x the unfused one.
#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/arch_zoo.hpp"
#include "nn/ir/pass.hpp"
#include "nn/mat.hpp"
#include "nn/model.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

// Under ASan/TSan the instrumentation overhead lands mostly on the copy /
// scatter paths and dilutes the GEMM savings, so the speedup floor is not
// meaningful there — the bitwise assertion still is, and still gates.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define MLDIST_BENCH_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define MLDIST_BENCH_SANITIZED 1
#endif
#endif

namespace {

using namespace mldist;

constexpr double kMinConvSpeedup = 1.3;
#ifdef MLDIST_BENCH_SANITIZED
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif

/// One timed call of `fn` (seconds).
template <typename Fn>
double timed_once(Fn&& fn) {
  const util::Timer timer;
  fn();
  return timer.seconds();
}

bool bitwise_equal(const nn::Mat& a, const nn::Mat& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint32_t>(a.data()[i]) !=
        std::bit_cast<std::uint32_t>(b.data()[i])) {
      return false;
    }
  }
  return true;
}

struct PathTimes {
  double unfused_ms = 0.0;
  double fused_ms = 0.0;
  double speedup = 0.0;
  bool bitwise_ok = false;
};

/// Time one model family's inference forward under the empty and the
/// default pipeline on a (batch x input_bits) 0/1 matrix.  `make(rng)`
/// builds the model; it is called twice with identically-seeded rngs so
/// the unfused and fused instances carry the same weights, each compiled
/// once (no mid-measurement recompiles or arena re-allocations).
template <typename MakeModel>
PathTimes bench_model(MakeModel make, std::size_t input_bits,
                      std::size_t batch, int repeats, std::uint64_t seed) {
  util::Xoshiro256 rng_unfused(seed), rng_fused(seed);
  auto unfused = make(rng_unfused);
  auto fused = make(rng_fused);
  unfused->set_pipeline({});

  util::Xoshiro256 data_rng(seed ^ 0x9e3779b97f4a7c15ULL);
  nn::Mat x(batch, input_bits);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x.data()[i] = static_cast<float>(data_rng.next_below(2));
  }
  // Give any BatchNorm layers non-trivial running statistics so the fused
  // epilogues do real normalisation work (same x + same weights keeps the
  // two instances' statistics identical).
  (void)unfused->forward(x, /*training=*/true);
  (void)fused->forward(x, /*training=*/true);
  const nn::Mat unfused_out = unfused->forward(x, false);  // compile + warm
  const nn::Mat fused_out = fused->forward(x, false);

  // Interleave the two paths and keep the best repeat of each: a transient
  // load spike hits both sides instead of biasing whichever path it
  // happened to land on, so the ratio stays stable on shared hosts.
  double best_unfused = 1e300, best_fused = 1e300;
  for (int r = 0; r < repeats; ++r) {
    best_unfused = std::min(
        best_unfused, timed_once([&] { (void)unfused->forward(x, false); }));
    best_fused = std::min(
        best_fused, timed_once([&] { (void)fused->forward(x, false); }));
  }
  PathTimes t;
  t.unfused_ms = best_unfused * 1e3;
  t.fused_ms = best_fused * 1e3;
  t.speedup = t.unfused_ms / t.fused_ms;
  t.bitwise_ok = bitwise_equal(unfused_out, fused_out) &&
                 bitwise_equal(fused_out, fused->forward_reference(x));
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header("Graph-IR fusion: inference forward, fused vs unfused",
                      opt);

  const std::size_t input_bits = 64;
  const std::size_t batch = opt.base(256, 1024);
  const int repeats = opt.full ? 15 : 7;

  std::printf("batch %zu x %zu bits, median of %d forwards per path\n\n",
              batch, input_bits, repeats);
  std::printf("%-12s %12s %12s %9s  %s\n", "model", "unfused ms", "fused ms",
              "speedup", "bitwise");

  util::JsonBuilder j;
  j.raw("options", bench::options_json(opt))
      .field("input_bits", static_cast<std::uint64_t>(input_bits))
      .field("batch", static_cast<std::uint64_t>(batch))
      .field("repeats", static_cast<std::uint64_t>(repeats))
      .field("min_conv_speedup", kMinConvSpeedup);

  bool all_bitwise = true;

  const PathTimes mlp_t = bench_model(
      [&](util::Xoshiro256& rng) {
        return core::build_default_mlp(input_bits, 2, rng);
      },
      input_bits, batch, repeats, opt.seed);
  std::printf("%-12s %12.3f %12.3f %8.2fx  %s\n", "default-mlp",
              mlp_t.unfused_ms, mlp_t.fused_ms, mlp_t.speedup,
              mlp_t.bitwise_ok ? "ok" : "MISMATCH");
  all_bitwise = all_bitwise && mlp_t.bitwise_ok;
  j.field("mlp_unfused_ms", mlp_t.unfused_ms)
      .field("mlp_fused_ms", mlp_t.fused_ms)
      .field("mlp_speedup", mlp_t.speedup);

  const PathTimes cnn_t = bench_model(
      [&](util::Xoshiro256& rng) {
        return core::build_architecture("CNN I", input_bits, 2, rng);
      },
      input_bits, batch, repeats, opt.seed + 1);
  std::printf("%-12s %12.3f %12.3f %8.2fx  %s\n", "CNN I", cnn_t.unfused_ms,
              cnn_t.fused_ms, cnn_t.speedup,
              cnn_t.bitwise_ok ? "ok" : "MISMATCH");
  all_bitwise = all_bitwise && cnn_t.bitwise_ok;
  j.field("cnn_unfused_ms", cnn_t.unfused_ms)
      .field("cnn_fused_ms", cnn_t.fused_ms)
      .field("cnn_speedup", cnn_t.speedup);

  const PathTimes gohr_t = bench_model(
      [&](util::Xoshiro256& rng) {
        return core::build_gohr_net(input_bits, 2, /*depth=*/2, rng);
      },
      input_bits, batch, repeats, opt.seed + 2);
  std::printf("%-12s %12.3f %12.3f %8.2fx  %s\n", "gohr-net/2",
              gohr_t.unfused_ms, gohr_t.fused_ms, gohr_t.speedup,
              gohr_t.bitwise_ok ? "ok" : "MISMATCH");
  all_bitwise = all_bitwise && gohr_t.bitwise_ok;
  j.field("gohr_unfused_ms", gohr_t.unfused_ms)
      .field("gohr_fused_ms", gohr_t.fused_ms)
      .field("gohr_speedup", gohr_t.speedup);

  bench::print_rule();
  bench::write_bench_json("graph_fusion", j);

  if (!all_bitwise) {
    std::fprintf(stderr,
                 "FAIL: fused and unfused forwards are not bitwise equal\n");
    return 1;
  }
  if (kSanitized) {
    std::printf("sanitizer build: outputs bitwise identical on every path; "
                "the %.2fx speedup floor is not asserted\n",
                kMinConvSpeedup);
    return 0;
  }
  if (cnn_t.speedup < kMinConvSpeedup) {
    std::fprintf(stderr,
                 "FAIL: CNN I fused speedup %.2fx below the %.2fx floor\n",
                 cnn_t.speedup, kMinConvSpeedup);
    return 1;
  }
  std::printf("conv fused speedup %.2fx (floor %.2fx); outputs bitwise "
              "identical on every path\n",
              cnn_t.speedup, kMinConvSpeedup);
  return 0;
}
