// Micro-benchmarks (google-benchmark): throughput of every substrate the
// experiments lean on — the permutations/ciphers, the feature encoder and
// the NN forward/backward passes.  These bound how far --full budgets can
// be pushed on a given machine.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "ciphers/gift64.hpp"
#include "ciphers/gimli.hpp"
#include "ciphers/gimli_aead.hpp"
#include "ciphers/gimli_hash.hpp"
#include "ciphers/salsa20.hpp"
#include "ciphers/speck3264.hpp"
#include "ciphers/trivium.hpp"
#include "core/arch_zoo.hpp"
#include "core/dataset.hpp"
#include "core/targets.hpp"
#include "kernels/dispatch.hpp"
#include "kernels/gemm.hpp"
#include "kernels/gimli_batch.hpp"
#include "nn/optimizer.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace {

using namespace mldist;

void BM_GimliPermutation(benchmark::State& state) {
  const int rounds = static_cast<int>(state.range(0));
  ciphers::GimliState s{};
  s[0] = 1;
  for (auto _ : state) {
    ciphers::gimli_reduced(s, rounds);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GimliPermutation)->Arg(8)->Arg(24);

void BM_GimliHash(benchmark::State& state) {
  const std::vector<std::uint8_t> msg(static_cast<std::size_t>(state.range(0)),
                                      0xab);
  for (auto _ : state) {
    auto digest = ciphers::gimli_hash(msg);
    benchmark::DoNotOptimize(digest);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GimliHash)->Arg(15)->Arg(1024);

void BM_GimliAeadEncrypt(benchmark::State& state) {
  std::array<std::uint8_t, ciphers::kGimliAeadKeyBytes> key{};
  std::array<std::uint8_t, ciphers::kGimliAeadNonceBytes> nonce{};
  const std::vector<std::uint8_t> msg(static_cast<std::size_t>(state.range(0)),
                                      0x42);
  for (auto _ : state) {
    auto out = ciphers::gimli_aead_encrypt(
        std::span<const std::uint8_t, ciphers::kGimliAeadKeyBytes>(key),
        std::span<const std::uint8_t, ciphers::kGimliAeadNonceBytes>(nonce),
        {}, msg);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GimliAeadEncrypt)->Arg(16)->Arg(1024);

void BM_SpeckEncrypt(benchmark::State& state) {
  const ciphers::Speck3264 cipher({1, 2, 3, 4});
  ciphers::SpeckBlock b{0x1234, 0x5678};
  for (auto _ : state) {
    b = cipher.encrypt(b);
    benchmark::DoNotOptimize(b);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpeckEncrypt);

void BM_Gift64Encrypt(benchmark::State& state) {
  const ciphers::Gift64 cipher({1, 2, 3, 4, 5, 6, 7, 8});
  std::uint64_t p = 0x0123456789abcdefULL;
  for (auto _ : state) {
    p = cipher.encrypt(p);
    benchmark::DoNotOptimize(p);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Gift64Encrypt);

void BM_Salsa20Core(benchmark::State& state) {
  ciphers::SalsaState s{};
  s[0] = 1;
  for (auto _ : state) {
    s = ciphers::salsa20_core(s, 20);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Salsa20Core);

void BM_TriviumInit(benchmark::State& state) {
  const std::array<std::uint8_t, 10> key{};
  const std::array<std::uint8_t, 10> iv{};
  for (auto _ : state) {
    ciphers::Trivium t(key, iv);
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TriviumInit);

// Per-implementation GEMM throughput at a training-representative shape
// (batch 128 x the 128-feature MLP's widest layer).  Args: impl index.
// Unsupported impls (avx2 on a non-AVX2 host) are skipped.
void BM_GemmKernel(benchmark::State& state) {
  const auto impl = static_cast<kernels::Impl>(state.range(0));
  if (!kernels::supported(impl)) {
    state.SkipWithError("impl not supported on this host");
    return;
  }
  const std::size_t m = 128, k = 128, n = 128;
  util::Xoshiro256 rng(11);
  std::vector<float> a(m * k), b(k * n), c(m * n);
  for (auto& v : a) v = static_cast<float>(rng.next_gaussian());
  for (auto& v : b) v = static_cast<float>(rng.next_gaussian());
  for (auto _ : state) {
    kernels::gemm_impl(impl, a.data(), static_cast<std::ptrdiff_t>(k), 1,
                       b.data(), static_cast<std::ptrdiff_t>(n), 1, c.data(),
                       m, k, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetLabel(kernels::impl_name(impl));
  state.counters["GFLOP/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 2.0 *
          static_cast<double>(m * k * n),
      benchmark::Counter::kIsRate, benchmark::Counter::OneK::kIs1000);
}
BENCHMARK(BM_GemmKernel)->Arg(0)->Arg(1)->Arg(2);

// Per-implementation batched Gimli: 8 rounds (the paper's reduced window)
// over 256 states per call.  Args: impl index.
void BM_GimliBatchKernel(benchmark::State& state) {
  const auto impl = static_cast<kernels::Impl>(state.range(0));
  if (!kernels::supported(impl)) {
    state.SkipWithError("impl not supported on this host");
    return;
  }
  const std::size_t n = 256;
  util::Xoshiro256 rng(12);
  std::vector<std::uint32_t> soa(12 * n);
  for (auto& w : soa) w = rng.next_u32();
  for (auto _ : state) {
    kernels::gimli_rounds_batch_impl(impl, soa.data(), n, 8, 1);
    benchmark::DoNotOptimize(soa.data());
  }
  state.SetLabel(kernels::impl_name(impl));
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_GimliBatchKernel)->Arg(0)->Arg(1)->Arg(2);

void BM_BitsToFloats(benchmark::State& state) {
  util::Xoshiro256 rng(1);
  const auto bytes = rng.bytes(16);
  float out[128];
  for (auto _ : state) {
    util::bits_to_floats(bytes, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BitsToFloats);

void BM_DatasetCollection(benchmark::State& state) {
  const core::GimliCipherTarget target(8);
  util::Xoshiro256 rng(2);
  for (auto _ : state) {
    auto ds = core::collect_dataset(target, 64, rng);
    benchmark::DoNotOptimize(ds);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_DatasetCollection);

void BM_MlpForward(benchmark::State& state) {
  util::Xoshiro256 rng(3);
  auto model = core::build_default_mlp(128, 2, rng);
  nn::Mat x(128, 128);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x.data()[i] = static_cast<float>(rng.next_u64() & 1);
  }
  for (auto _ : state) {
    auto y = model->forward(x);
    benchmark::DoNotOptimize(y);
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_MlpForward);

void BM_MlpTrainStep(benchmark::State& state) {
  util::Xoshiro256 rng(4);
  auto model = core::build_default_mlp(128, 2, rng);
  nn::Dataset ds;
  ds.x = nn::Mat(128, 128);
  ds.y.resize(128);
  for (std::size_t i = 0; i < ds.x.size(); ++i) {
    ds.x.data()[i] = static_cast<float>(rng.next_u64() & 1);
  }
  for (auto& y : ds.y) y = static_cast<int>(rng.next_below(2));
  nn::Adam adam;
  nn::FitOptions fit;
  fit.epochs = 1;
  fit.batch_size = 128;
  fit.shuffle = false;
  for (auto _ : state) {
    auto stats = model->fit(ds, adam, fit);
    benchmark::DoNotOptimize(stats);
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_MlpTrainStep);

}  // namespace

BENCHMARK_MAIN();
