// Extension bench: the §6 "future research" item — key recovery — built
// from the paper's own distinguisher (see core/key_recovery.hpp).
//
// Attack: recover the last-round subkey of 4-round SPECK-32/64 with a
// 3-round distinguisher.  Reports the rank of the true subkey among the
// scored candidates and the score separation (true vs mean wrong =
// wrong-key randomisation).
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "core/arch_zoo.hpp"
#include "core/distinguisher.hpp"
#include "core/key_recovery.hpp"
#include "core/targets.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace mldist;
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header("Extension - last-round key recovery on 4-round "
                      "SPECK-32/64", opt);

  const std::vector<std::uint32_t> diffs = {0x00400000u, 0x00102000u};
  const std::size_t train_base = opt.base(4000, 30000);
  const int epochs = opt.epochs(5, 10);

  util::Xoshiro256 rng(opt.seed);
  auto model = core::build_default_mlp(32, 2, rng);
  core::DistinguisherOptions dopt;
  dopt.epochs = epochs;
  dopt.seed = opt.seed ^ 0x4ec0;
  core::MLDistinguisher dist(std::move(model), dopt);
  const core::SpeckTarget target(3, diffs);
  util::Timer timer;
  const core::TrainReport train = dist.train(target, train_base);
  std::printf("3-round distinguisher: accuracy a = %.4f (%.1fs)\n\n",
              train.val_accuracy, timer.seconds());

  core::KeyRecoveryOptions kopt;
  kopt.total_rounds = 4;
  kopt.base_inputs = opt.full ? 96 : 64;
  kopt.seed = opt.seed ^ 0xf00d;
  if (!opt.full) {
    // Quick mode scores 2^12 random candidates + the true key; --full
    // scores the whole 2^16 space.
    util::Xoshiro256 crng(opt.seed ^ 0xcad);
    for (int i = 0; i < 4096; ++i) {
      kopt.candidates.push_back(static_cast<std::uint16_t>(crng.next_u32()));
    }
  }

  timer.reset();
  const core::KeyRecoveryResult res =
      core::speck_last_round_key_recovery(dist.model(), diffs, kopt);
  std::printf("%-36s %s\n", "quantity", "value");
  bench::print_rule();
  std::printf("%-36s %zu\n", "candidates scored", res.candidates_scored);
  std::printf("%-36s 0x%04x\n", "true last-round subkey", res.true_subkey);
  std::printf("%-36s 0x%04x\n", "best-scoring candidate", res.best_guess);
  std::printf("%-36s %zu\n", "rank of true subkey (0 = recovered)",
              res.true_rank);
  std::printf("%-36s %.4f\n", "score of true subkey", res.true_score);
  std::printf("%-36s %.4f\n", "mean wrong-candidate score",
              res.mean_wrong_score);
  bench::print_rule();
  std::printf("attack time %.1fs with %zu chosen-plaintext triples.\n",
              timer.seconds(), kopt.base_inputs);
  std::printf("paper: \"our model does not have a key recovery "
              "functionality\" (SS6) - this bench\nimplements that future "
              "work on top of the unchanged distinguisher.\n");
  return 0;
}
