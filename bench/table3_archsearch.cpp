// Table 3: manual architecture search on 8-round Gimli-Cipher.
//
// Paper setup: 2^17 training samples, 5 epochs, Nvidia Quadro RTX 8000.
// Ten architectures (six MLPs, two LSTMs, two CNNs); columns: #parameters,
// training time, accuracy.  Our reproduction runs the same stacks on a
// CPU with per-family sample budgets in quick mode (wall-clock times are
// not comparable to the paper's GPU; the ORDERING — MLP > LSTM > CNN in
// accuracy, LSTM ~10x slower to train than MLP — is the target).
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "core/arch_zoo.hpp"
#include "core/distinguisher.hpp"
#include "core/targets.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace mldist;
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header("Table 3 - manual architecture search, 8-round "
                      "Gimli-Cipher", opt);

  // Paper setting: 8 rounds, 2^17 samples.  At quick CPU budgets the
  // 8-round signal is below the noise floor for every architecture, which
  // would flatten the whole table to 0.5; quick mode therefore uses 7
  // rounds, where the MLP > LSTM > CNN ordering is visible with thousands
  // of samples.  --full restores the paper's 8-round setting.
  const int rounds = opt.full ? 8 : 7;
  const core::GimliCipherTarget target(rounds);
  const int epochs = opt.epochs(2, 5);
  std::printf("target: %s (paper: 8 rounds at 2^17 samples)\n",
              target.name().c_str());

  mldist::bench::CsvWriter csv("table3_archsearch",
      "network,params,paper_params,time_s,paper_time_s,accuracy,paper_accuracy,samples");
  std::printf("%-9s %-11s %-11s %-9s %-9s %-8s %-8s %-7s\n", "network",
              "params", "paper_par", "time_s", "paper_t", "acc", "paper_a",
              "samples");
  bench::print_rule();

  for (const auto& info : core::table3_architectures()) {
    // Per-family budgets: LSTMs/CNNs are far more expensive per sample.
    std::size_t base_inputs = opt.full ? 65536 : 3000;
    if (info.name.rfind("LSTM", 0) == 0) base_inputs = opt.full ? 16384 : 500;
    if (info.name == "CNN I") base_inputs = opt.full ? 16384 : 400;
    if (info.name == "CNN II") base_inputs = opt.full ? 8192 : 160;

    util::Xoshiro256 rng(opt.seed);
    auto model = core::build_architecture(info.name, 128, 2, rng);
    const std::size_t params = model->param_count();

    core::DistinguisherOptions dopt;
    dopt.epochs = epochs;
    dopt.batch_size = 128;
    dopt.seed = opt.seed ^ 0x7ab1e3;
    core::MLDistinguisher dist(std::move(model), dopt);

    util::Timer timer;
    const core::TrainReport rep = dist.train(target, base_inputs);
    const double secs = timer.seconds();

    std::printf("%-9s %-11zu %-11zu %-9.1f %-9.1f %-8.4f %-8.4f %-7zu%s\n",
                info.name.c_str(), params, info.paper_params, secs,
                info.paper_time_s, rep.val_accuracy, info.paper_accuracy,
                base_inputs * 2,
                info.params_should_match &&
                        (params > info.paper_params + 2 ||
                         params + 2 < info.paper_params)
                    ? "  [param mismatch]"
                    : "");
    csv.rowf("%s,%zu,%zu,%.1f,%.1f,%.4f,%.4f,%zu", info.name.c_str(), params,
             info.paper_params, secs, info.paper_time_s, rep.val_accuracy,
             info.paper_accuracy, base_inputs * 2);
  }
  bench::print_rule();
  std::printf("notes:\n");
  std::printf("  * MLP params match the paper exactly (MLP III/VI print\n");
  std::printf("    1,200,256 in the paper, a 2-param typo for 1,200,258).\n");
  std::printf("  * CNN/LSTM kernel sizes and reshapes are unspecified in the\n");
  std::printf("    paper; our counts differ, paper values shown alongside.\n");
  std::printf("  * paper times are on an RTX 8000 GPU; ours are CPU.\n");
  return 0;
}
