// §2.3 background: Gohr's CRYPTO'19 programme on round-reduced SPECK-32/64,
// reproduced with (a) the classical sampled all-in-one distribution and
// (b) our neural distinguisher, under Gohr's input difference 0x0040/0000.
//
// Gohr's reported neural distinguisher accuracies (one pair per sample):
// 5r 0.929, 6r 0.788, 7r 0.616, 8r 0.514.  Our setting differs slightly
// (t = 2 input differences, classification of the difference index, CPU
// budget), so the target is the SHAPE: strong at 5 rounds, decaying to
// ~0.5 by 8, and the neural model beating the best-single-trail classical
// statistic round for round.
#include <cmath>
#include <cstdio>
#include <memory>

#include "analysis/allinone.hpp"
#include "bench_common.hpp"
#include "ciphers/speck3264.hpp"
#include "core/arch_zoo.hpp"
#include "core/distinguisher.hpp"
#include "core/targets.hpp"
#include "util/timer.hpp"

namespace {

using namespace mldist;

std::uint32_t speck_pair_diff(util::Xoshiro256& rng, int rounds) {
  const std::array<std::uint16_t, 4> key = {
      static_cast<std::uint16_t>(rng.next_u32()),
      static_cast<std::uint16_t>(rng.next_u32()),
      static_cast<std::uint16_t>(rng.next_u32()),
      static_cast<std::uint16_t>(rng.next_u32())};
  const ciphers::Speck3264 cipher(key);
  const std::uint32_t p = rng.next_u32();
  return cipher.encrypt(ciphers::SpeckBlock::from_u32(p), rounds).as_u32() ^
         cipher
             .encrypt(ciphers::SpeckBlock::from_u32(p ^ 0x00400000u), rounds)
             .as_u32();
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header("Gohr background - SPECK-32/64, input difference "
                      "0x0040/0000", opt);

  const std::uint64_t classical_n = opt.full ? 1u << 20 : 1u << 15;
  const std::size_t nn_base = opt.base(8000, 60000);
  const int epochs = opt.epochs(5, 10);
  const double gohr[4] = {0.929, 0.788, 0.616, 0.514};

  bench::CsvWriter csv("gohr_speck",
      "rounds,best_diff_weight,allinone_accuracy,neural_accuracy,gohr_accuracy");
  std::printf("%-7s %-24s %-22s %-12s\n", "rounds",
              "best single diff weight", "all-in-one acc (LLR)",
              "neural acc");
  std::printf("%-7s %-24s %-22s %-6s %-6s\n", "", "(sampled)", "(sampled)",
              "ours", "Gohr");
  bench::print_rule();

  for (int rounds = 5; rounds <= 8; ++rounds) {
    util::Xoshiro256 rng(opt.seed + static_cast<std::uint64_t>(rounds));
    util::Timer timer;

    const auto pair = [rounds](util::Xoshiro256& r) {
      return speck_pair_diff(r, rounds);
    };
    const analysis::DiffHistogram hist =
        analysis::sample_diff_distribution(pair, classical_n, rng);
    const analysis::AllInOneResult classical = analysis::allinone_distinguisher(
        hist, pair, 32, classical_n / 8, rng);

    const core::SpeckTarget target(rounds);
    const core::TrainReport rep = bench::train_distinguisher(
        core::build_default_mlp(32, 2, rng), target, nn_base, epochs,
        opt.seed ^ static_cast<std::uint64_t>(rounds * 77));

    std::printf("%-7d %-24.2f %-22.4f %-6.4f %-6.3f (%.1fs)\n", rounds,
                hist.best_weight(), classical.accuracy, rep.val_accuracy,
                gohr[rounds - 5], timer.seconds());
    csv.rowf("%d,%.2f,%.4f,%.4f,%.3f", rounds, hist.best_weight(),
             classical.accuracy, rep.val_accuracy, gohr[rounds - 5]);
  }
  bench::print_rule();
  std::printf("classical columns use %llu sampled pairs; neural uses %zu "
              "base inputs x 2 labels, %d epochs.\n",
              static_cast<unsigned long long>(classical_n), nn_base, epochs);
  std::printf("Gohr's 5-round best transition is ~2^-11.9 in the full DDT; "
              "the sampled weight above should approach it in --full mode.\n");
  return 0;
}
