// Classical counterpart bench: optimal differential characteristics of
// round-reduced SPECK-32/64 from Gohr's input difference (0x0040, 0x0000),
// found by branch-and-bound over the exact Lipmaa–Moriai round
// probabilities — the "branch number / MILP style" modelling the paper
// says underestimates the attacker.  Each characteristic's probability is
// verified empirically (the Markov product rule holds for SPECK because
// the rounds are keyed — contrast with bench_fig1_toy_gift).
#include <cmath>
#include <cstdio>

#include "analysis/speck_trails.hpp"
#include "bench_common.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace mldist;
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header("SPECK-32/64 optimal characteristics from (0040, 0000) "
                      "- classical B&B", opt);

  const int max_rounds = opt.full ? 6 : 5;
  const std::uint64_t verify_samples = opt.full ? 4000000 : 400000;

  std::printf("%-7s %-8s %-26s %-22s\n", "rounds", "weight", "output diff "
              "(dx, dy)", "empirical vs 2^-w");
  bench::print_rule();
  for (int r = 1; r <= max_rounds; ++r) {
    util::Timer timer;
    const analysis::SpeckTrail t =
        analysis::speck_best_characteristic(0x0040, 0x0000, r, 30);
    if (!t.found) {
      std::printf("%-7d (none within weight 30)\n", r);
      continue;
    }
    const double measured =
        analysis::speck_characteristic_empirical(t, verify_samples,
                                                 opt.seed + static_cast<std::uint64_t>(r));
    std::printf("%-7d %-8d (%04x, %04x)%-13s 2^%-6.2f vs 2^-%-4d (%.1fs)\n",
                r, t.total_weight, t.states.back().first,
                t.states.back().second, "",
                measured > 0 ? std::log2(measured) : -99.0, t.total_weight,
                timer.seconds());
  }
  bench::print_rule();
  std::printf("the per-round weights multiply exactly (Markov holds: SPECK "
              "XORs a subkey every round);\ncompare bench_fig1_toy_gift "
              "where the keyless toy cipher breaks the product rule.\n");
  return 0;
}
