// Robustness soak (ISSUE 2): the Gimli-Hash pipeline end-to-end under
// injected faults.
//
// Four scenarios, all on the same config and seed:
//   1. clean/unguarded   - health checks off: the pre-robustness baseline.
//   2. clean/guarded     - health checks on: measures the guard overhead
//                          (the accuracies must match scenario 1 exactly,
//                          since attempt 1 uses the unchanged shuffle
//                          stream).
//   3. forced divergence - a weight is poisoned to NaN mid-training on the
//                          first attempt; the retry policy must roll back
//                          to the best checkpoint and recover.
//   4. degradation       - the poison outlives the retry budget; training
//                          must degrade to the linear baseline and the
//                          online game must still return a verdict.
// Scenario 2's distinguisher then plays the online game against a cipher
// oracle wrapped in FaultyOracle (drops, bit flips, latency spikes), so the
// inference path is soaked too.
//
// The artifact results/BENCH_robustness.json records the recovery counts,
// the guard overhead ratio and the fault counters.
#include <cmath>
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "core/distinguisher.hpp"
#include "core/experiment.hpp"
#include "core/fault_injection.hpp"
#include "core/oracle.hpp"
#include "core/targets.hpp"
#include "util/timer.hpp"

namespace {

using namespace mldist;

const char* verdict_name(core::Verdict v) {
  switch (v) {
    case core::Verdict::kCipher: return "CIPHER";
    case core::Verdict::kRandom: return "RANDOM";
    case core::Verdict::kInconclusive: return "INCONCLUSIVE";
  }
  return "?";
}

struct Scenario {
  std::string name;
  core::TrainReport report;
  double train_seconds = 0.0;
  bool degraded = false;
};

std::string scenario_json(const Scenario& s) {
  util::JsonBuilder j;
  j.field("name", s.name)
      .field("train_seconds", s.train_seconds)
      .field("val_accuracy", s.report.val_accuracy)
      .field("usable", s.report.usable)
      .field("degraded", s.degraded)
      .raw("robustness", s.report.robustness.to_json());
  return j.str();
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header("Robustness soak - Gimli-Hash under injected faults",
                      opt);

  core::ExperimentConfig config;
  config.target = "gimli-hash";
  config.rounds = opt.full ? 7 : 2;
  config.epochs = opt.epochs(4, 6);
  config.seed = opt.seed;
  config.threads = opt.threads;
  config.offline_base_inputs = opt.base(600, 8000);
  config.online_base_inputs = config.offline_base_inputs / 2;
  const auto target = config.make_target();
  std::printf("target: %s/%d   base inputs: %zu   epochs: %d\n",
              config.target.c_str(), config.rounds,
              config.offline_base_inputs, config.epochs);
  bench::print_rule();

  const auto run = [&](const char* name,
                       const core::DistinguisherOptions& options) {
    Scenario s;
    s.name = name;
    core::MLDistinguisher dist(config.make_model(*target), options);
    const util::Timer timer;
    s.report = dist.train(*target, config.offline_base_inputs);
    s.train_seconds = timer.seconds();
    s.degraded = dist.degraded();
    const auto& rob = s.report.robustness;
    std::printf("%-20s %7.2fs  val acc %.4f  attempts %d  rollbacks %d%s\n",
                name, s.train_seconds, s.report.val_accuracy, rob.attempts,
                rob.rollbacks, s.degraded ? "  [DEGRADED]" : "");
    return s;
  };

  // 1. Clean, guards off: the pre-robustness fit path.
  core::DistinguisherOptions unguarded(config);
  unguarded.health_checks = false;
  const Scenario clean = run("clean/unguarded", unguarded);

  // 2. Clean, guards on: same run with the health monitor watching every
  //    batch and epoch.  Accuracy must be bitwise identical to scenario 1.
  const core::DistinguisherOptions guarded(config);
  const Scenario watched = run("clean/guarded", guarded);
  const double overhead =
      clean.train_seconds > 0.0 ? watched.train_seconds / clean.train_seconds
                                : 0.0;
  const bool accuracy_identical =
      clean.report.val_accuracy == watched.report.val_accuracy;

  // 3. Forced divergence on attempt 1 only: rollback + retry recovers.
  core::DistinguisherOptions diverging(config);
  diverging.faults.poison_weight_epoch = 2;
  diverging.faults.poison_max_attempts = 1;
  const Scenario recovered = run("forced divergence", diverging);

  // 4. Poison every attempt: the retry budget runs out and the run degrades
  //    to the linear baseline instead of failing.
  core::DistinguisherOptions exhausted(config);
  exhausted.faults.poison_weight_epoch = 1;
  exhausted.faults.poison_max_attempts = 1000;
  exhausted.retry.max_attempts = 2;
  const Scenario degraded = run("degradation", exhausted);
  bench::print_rule();

  std::printf("guard overhead: %.2fx wall time, accuracies %s\n", overhead,
              accuracy_identical ? "identical" : "DIFFER");

  // --- online game under a faulty oracle ----------------------------------
  // Re-train the guarded distinguisher (train reports are stateless between
  // scenarios) and soak its inference path.
  core::MLDistinguisher dist(config.make_model(*target), guarded);
  (void)dist.train(*target, config.offline_base_inputs);
  util::FaultConfig oracle_faults;
  oracle_faults.drop_prob = 0.05;
  oracle_faults.bit_flip_prob = 0.01;
  oracle_faults.latency_spike_prob = 0.001;
  oracle_faults.latency_spike_us = 50;
  const core::CipherOracle cipher(*target);
  const core::FaultyOracle faulty(cipher, oracle_faults);
  const core::OnlineReport online =
      dist.test(faulty, config.online_base_inputs);
  const auto counters = faulty.counters();
  std::printf("online under faults: a' = %.4f -> %s  (queries %llu, drops "
              "%llu, bit flips %llu, latency spikes %llu)\n",
              online.accuracy, verdict_name(online.verdict),
              static_cast<unsigned long long>(counters.queries),
              static_cast<unsigned long long>(counters.drops),
              static_cast<unsigned long long>(counters.bit_flips),
              static_cast<unsigned long long>(counters.latency_spikes));

  // An occasional corrupted answer must not flip the verdict at this fault
  // rate; a wrong verdict fails the soak.
  const bool online_ok = online.verdict == core::Verdict::kCipher;
  const bool recovery_ok = recovered.report.robustness.rollbacks >= 1 &&
                           !recovered.degraded;
  const bool degradation_ok = degraded.degraded;
  const bool pass =
      accuracy_identical && online_ok && recovery_ok && degradation_ok;
  std::printf("soak verdict: %s\n", pass ? "PASS" : "FAIL");

  // --- artifact -----------------------------------------------------------
  util::JsonBuilder online_json;
  online_json.field("accuracy", online.accuracy)
      .field("verdict", verdict_name(online.verdict))
      .field("samples", online.samples)
      .raw("fault_config", oracle_faults.to_json())
      .field("queries", counters.queries)
      .field("drops", counters.drops)
      .field("bit_flips", counters.bit_flips)
      .field("latency_spikes", counters.latency_spikes);

  util::JsonBuilder artifact;
  artifact.raw("options", bench::options_json(opt))
      .raw("config", config.to_json())
      .raw("scenarios",
           util::JsonBuilder::array({scenario_json(clean),
                                     scenario_json(watched),
                                     scenario_json(recovered),
                                     scenario_json(degraded)}))
      .field("guard_overhead_ratio", overhead)
      .field("guarded_accuracy_identical", accuracy_identical)
      .raw("online_under_faults", online_json.str())
      .field("pass", pass);
  bench::write_bench_json("robustness", artifact);
  std::printf("artifact: results/BENCH_robustness.json\n");
  return pass ? 0 : 1;
}
