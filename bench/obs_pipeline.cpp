// Obs pipeline bench (ISSUE 10): the price of worker telemetry shipping,
// with the cross-process merge contract asserted before the price is
// trusted.
//
// Paired sharded campaigns over the same toy-target grid, alternating
// telemetry shipping OFF and ON so machine drift hits both sides equally;
// best-of-K cells/sec per side tames scheduler noise.  A serial reference
// run (workers=0, which folds per-cell deltas through the same
// obs/ship.hpp codec) supplies the ground-truth campaign.worker.* totals.
//
// Acceptance, checked by the exit status (the bench runs under ctest -L
// regress): every campaign completes with zero failed cells, the ship-on
// campaign.worker.* counters (minus the wall-clock _ns/_us names) are
// bitwise identical to the serial reference, and shipping costs less than
// 2% of cells/sec.
//
// The artifact results/BENCH_obs_pipeline.json carries the
// direction-pinned metric (obs_ship_cells_per_sec up) gated against
// tools/baselines.jsonl by tools/bench_compare.
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>

#include "bench_common.hpp"
#include "campaign/spec.hpp"
#include "campaign/supervisor.hpp"
#include "campaign/worker.hpp"
#include "obs/metrics.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"

namespace {

using namespace mldist;

std::string fresh_state_dir(const char* tag, int repeat) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("mldist-obs-pipeline-" + std::to_string(::getpid()) + "-" + tag +
        "-" + std::to_string(repeat)))
          .string();
  std::filesystem::remove_all(path);
  std::filesystem::create_directories(path);
  return path;
}

/// True for wall-clock metric names, which merge deterministically but whose
/// values vary run to run (the DESIGN.md §10 suffix convention).
bool wall_clock_name(const std::string& name) {
  const auto ends_with = [&](const char* suffix) {
    const std::size_t n = std::strlen(suffix);
    return name.size() >= n &&
           name.compare(name.size() - n, n, suffix) == 0;
  };
  return ends_with("_ns") || ends_with("_us");
}

/// The merged campaign.worker.* counters, minus wall-clock names.
std::map<std::string, std::uint64_t> worker_counters() {
  std::map<std::string, std::uint64_t> out;
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
  for (const auto& [name, value] : snap.counters) {
    if (name.rfind("campaign.worker.", 0) == 0 && !wall_clock_name(name)) {
      out[name] = value;
    }
  }
  return out;
}

struct CampaignRun {
  campaign::CampaignReport report;
  double seconds = 0.0;
  std::string state_dir;
};

CampaignRun run_campaign(const campaign::CampaignSpec& spec,
                         std::size_t workers, bool ship, const char* tag,
                         int repeat) {
  CampaignRun run;
  run.state_dir = fresh_state_dir(tag, repeat);
  campaign::SupervisorOptions opt;
  opt.state_dir = run.state_dir;
  opt.workers = workers;
  opt.ship_telemetry = ship;
  opt.backoff_base_s = 0.02;
  opt.backoff_cap_s = 0.1;
  opt.poll_interval_s = 0.01;
  campaign::Supervisor sup(spec, opt);
  const util::Timer timer;
  run.report = sup.run();
  run.seconds = timer.seconds();
  std::filesystem::remove_all(run.state_dir);
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  // This binary is also the worker binary the supervisor execs.
  if (const int worker_rc = campaign::worker_entry(argc, argv);
      worker_rc >= 0) {
    return worker_rc;
  }
  const bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header("Obs pipeline: telemetry shipping overhead", opt);

  const std::size_t cells = opt.base(4, 8);
  const std::size_t workers = 2;
  const int repeats = opt.full ? 5 : 3;
  const double max_overhead_pct = 2.0;

  campaign::CampaignSpec spec;
  spec.name = "obs-pipeline";
  spec.targets = {"toy"};
  spec.archs = {"default-mlp"};
  for (std::size_t r = 1; r <= cells; ++r) {
    spec.rounds.push_back(static_cast<int>(r));
  }
  spec.base.epochs = 2;
  spec.base.batch_size = 64;
  spec.base.threads = 1;
  spec.base.offline_base_inputs = 300;
  spec.base.online_base_inputs = 150;
  spec.seed = opt.seed;

  ::unsetenv("MLDIST_CHAOS_KILL");  // the price must be unperturbed

  // Serial reference: workers=0 folds every cell's registry delta through
  // the same encode/apply codec the workers ship through, so its merged
  // campaign.worker.* totals are the ground truth for any worker count.
  obs::MetricsRegistry::global().reset();
  const CampaignRun serial =
      run_campaign(spec, /*workers=*/0, /*ship=*/true, "serial", 0);
  const std::map<std::string, std::uint64_t> serial_counters =
      worker_counters();

  bool ok = true;
  const auto require = [&](bool cond, const char* what) {
    if (!cond) {
      std::fprintf(stderr, "FAIL: %s\n", what);
      ok = false;
    }
  };
  require(serial.report.complete() && serial.report.cells_failed == 0,
          "serial reference campaign did not complete cleanly");
  require(!serial_counters.empty(),
          "serial reference folded no campaign.worker.* counters");

  std::printf("%-10s %3s %6s %6s %10s %14s\n", "run", "rep", "cells", "done",
              "seconds", "cells/sec");
  double off_best_cps = 0.0;
  double on_best_cps = 0.0;
  std::map<std::string, std::uint64_t> shipped_counters;
  for (int rep = 0; rep < repeats; ++rep) {
    const CampaignRun off =
        run_campaign(spec, workers, /*ship=*/false, "off", rep);
    obs::MetricsRegistry::global().reset();
    const CampaignRun on =
        run_campaign(spec, workers, /*ship=*/true, "on", rep);
    shipped_counters = worker_counters();
    require(off.report.complete() && off.report.cells_failed == 0,
            "ship-off campaign did not complete cleanly");
    require(on.report.complete() && on.report.cells_failed == 0,
            "ship-on campaign did not complete cleanly");
    require(shipped_counters == serial_counters,
            "shipped campaign.worker.* counters differ from the serial "
            "reference");
    const double off_cps = static_cast<double>(off.report.cells_done) /
                           std::max(1e-9, off.seconds);
    const double on_cps = static_cast<double>(on.report.cells_done) /
                          std::max(1e-9, on.seconds);
    off_best_cps = std::max(off_best_cps, off_cps);
    on_best_cps = std::max(on_best_cps, on_cps);
    std::printf("%-10s %3d %6zu %6zu %10.3f %14.2f\n", "ship-off", rep,
                off.report.cells_total, off.report.cells_done, off.seconds,
                off_cps);
    std::printf("%-10s %3d %6zu %6zu %10.3f %14.2f\n", "ship-on", rep,
                on.report.cells_total, on.report.cells_done, on.seconds,
                on_cps);
  }

  // Best-of-K on both sides: overhead is the gap between the best clean
  // run and the best shipping run, clamped at zero (shipping cannot make
  // the campaign faster; a negative gap is noise).
  const double overhead_pct = std::max(
      0.0, (off_best_cps - on_best_cps) / std::max(1e-9, off_best_cps) * 100.0);
  bench::print_rule();
  std::printf("best ship-off: %10.2f cells/sec\n", off_best_cps);
  std::printf("best ship-on:  %10.2f cells/sec\n", on_best_cps);
  std::printf("shipping overhead: %.2f%% (ceiling %.1f%%)\n", overhead_pct,
              max_overhead_pct);
  std::printf("merged counters: %zu (bitwise vs serial: %s)\n",
              shipped_counters.size(),
              shipped_counters == serial_counters ? "ok" : "MISMATCH");
  require(overhead_pct < max_overhead_pct,
          "telemetry shipping overhead exceeds the 2% ceiling");

  util::JsonBuilder j;
  j.raw("options", bench::options_json(opt))
      .field("cells", static_cast<std::uint64_t>(cells))
      .field("workers", static_cast<std::uint64_t>(workers))
      .field("repeats", static_cast<std::uint64_t>(repeats))
      .field("obs_ship_cells_per_sec", on_best_cps)
      .field("obs_noship_cells_per_sec", off_best_cps)
      .field("ship_overhead_pct", overhead_pct)
      .field("merged_counter_names",
             static_cast<std::uint64_t>(shipped_counters.size()))
      .field("bitwise_ok", ok);
  bench::write_bench_json("obs_pipeline", j);

  if (!ok) return 1;
  std::printf("\nshipping within budget; merged totals bitwise identical\n");
  return 0;
}
