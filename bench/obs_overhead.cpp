// Disabled-mode cost of the observability layer (src/obs).
//
// The tentpole contract is that instrumentation stays compiled into every
// hot path (kernels, nn, core) because the disabled path is negligible.
// This bench measures that path — Span construction with tracing off, and
// the sharded counter add — against an uninstrumented baseline loop, prints
// per-op costs, writes results/BENCH_obs.json, and FAILS (exit 1) when the
// disabled cost exceeds a generous ceiling.  Runs as ctest "obs"+"bench"
// label, so a regression that adds a lock or allocation to the disabled
// path breaks the build's test stage, not a later profiling session.
#include <cstdint>
#include <cstdio>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace {

using namespace mldist;

constexpr int kIters = 4'000'000;

// A ceiling two orders of magnitude above the expected cost (a relaxed
// atomic load / fetch_add is single-digit ns): loose enough that a loaded
// CI machine never flakes, tight enough that an accidental mutex or
// allocation on the disabled path (typically >1us) is caught.
constexpr double kMaxDisabledNsPerOp = 250.0;

/// xorshift accumulator loop: the uninstrumented baseline the spans are
/// added onto.  Volatile sink defeats dead-code elimination.
std::uint64_t baseline_work(std::uint64_t x, int iters) {
  for (int i = 0; i < iters; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
  }
  return x;
}

volatile std::uint64_t sink;

double measure_baseline() {
  const util::Timer timer;
  sink = baseline_work(0x9e3779b97f4a7c15ULL, kIters);
  return timer.seconds() * 1e9 / kIters;
}

double measure_disabled_span() {
  const std::string name = "bench.disabled";
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;
  const util::Timer timer;
  for (int i = 0; i < kIters; ++i) {
    obs::Span span(name, "bench");
    span.arg("i", i);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
  }
  sink = x;
  return timer.seconds() * 1e9 / kIters;
}

double measure_counter_add() {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  const obs::MetricId id = reg.counter("bench.obs_overhead.adds");
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;
  const util::Timer timer;
  for (int i = 0; i < kIters; ++i) {
    reg.add(id);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
  }
  sink = x;
  return timer.seconds() * 1e9 / kIters;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header("obs overhead: disabled spans and sharded counters",
                      opt);

  const bool tracing = obs::Tracer::global().enabled();
  if (tracing) {
    std::printf("note: tracing is ENABLED (--trace/MLDIST_TRACE); the span "
                "column measures the enabled path and the assertion is "
                "skipped\n");
  }

  // Warm-up pass so the first measured loop doesn't pay the registry/shard
  // setup or cold caches.
  (void)measure_baseline();
  (void)measure_disabled_span();
  (void)measure_counter_add();

  const double base_ns = measure_baseline();
  const double span_ns = measure_disabled_span();
  const double add_ns = measure_counter_add();
  const double span_over = span_ns - base_ns;
  const double add_over = add_ns - base_ns;

  std::printf("%-34s %10.2f ns/op\n", "baseline loop", base_ns);
  std::printf("%-34s %10.2f ns/op  (overhead %+.2f)\n",
              tracing ? "span (tracing ENABLED)" : "span (tracing disabled)",
              span_ns, span_over);
  std::printf("%-34s %10.2f ns/op  (overhead %+.2f)\n", "counter add", add_ns,
              add_over);
  bench::print_rule();

  util::JsonBuilder j;
  j.raw("options", bench::options_json(opt))
      .field("iters", static_cast<std::uint64_t>(kIters))
      .field("tracing_enabled", tracing)
      .field("baseline_ns_per_op", base_ns)
      .field("span_ns_per_op", span_ns)
      .field("counter_add_ns_per_op", add_ns)
      .field("span_overhead_ns", span_over)
      .field("counter_add_overhead_ns", add_over)
      .field("ceiling_ns", kMaxDisabledNsPerOp);
  bench::write_bench_json("obs", j);

  if (!tracing &&
      (span_over > kMaxDisabledNsPerOp || add_over > kMaxDisabledNsPerOp)) {
    std::fprintf(stderr,
                 "FAIL: disabled-mode overhead exceeds %.0f ns/op "
                 "(span %+.2f, counter %+.2f)\n",
                 kMaxDisabledNsPerOp, span_over, add_over);
    return 1;
  }
  std::printf("disabled-mode overhead within the %.0f ns/op ceiling\n",
              kMaxDisabledNsPerOp);
  return 0;
}
