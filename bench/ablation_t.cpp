// Ablation A1: number of input differences t.
//
// Algorithm 2 requires t >= 2; the paper does not fix t beyond that.  This
// bench trains the same MLP on 6-round Gimli-Hash with t = 2, 4 and 8
// difference positions and reports accuracy against the 1/t random
// baseline, plus the derived online sample count needed for a 3-sigma
// decision — showing the trade-off: more classes dilute per-class accuracy
// but each online base input yields t labelled predictions.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "core/arch_zoo.hpp"
#include "core/distinguisher.hpp"
#include "core/targets.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace mldist;
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header("Ablation - number of input differences t (6-round "
                      "Gimli-Hash)", opt);

  const std::size_t base_inputs = opt.base(4000, 40000);
  const int epochs = opt.epochs(3, 10);

  const std::vector<std::vector<std::size_t>> position_sets = {
      {4, 12},
      {1, 4, 8, 12},
      {0, 1, 2, 4, 6, 8, 10, 12},
  };

  std::printf("%-4s %-10s %-10s %-12s %-22s\n", "t", "1/t", "accuracy",
              "acc - 1/t", "online rows for 3-sigma");
  bench::print_rule();
  for (const auto& positions : position_sets) {
    const std::size_t t = positions.size();
    util::Xoshiro256 rng(opt.seed + t);
    const core::GimliHashTarget target(6, positions);
    auto model = core::build_default_mlp(128, t, rng);
    core::DistinguisherOptions dopt;
    dopt.epochs = epochs;
    dopt.seed = opt.seed ^ (t * 1337);
    core::MLDistinguisher dist(std::move(model), dopt);
    util::Timer timer;
    const core::TrainReport rep = dist.train(target, base_inputs);
    const double baseline = util::random_guess_accuracy(t);
    const std::size_t need =
        util::samples_to_distinguish(rep.val_accuracy, t);
    std::printf("%-4zu %-10.4f %-10.4f %-12.4f %-22zu (%.1fs)\n", t, baseline,
                rep.val_accuracy, rep.val_accuracy - baseline, need,
                timer.seconds());
  }
  bench::print_rule();
  std::printf("note: each online base input costs t+1 oracle queries and "
              "yields t predictions.\n");
  return 0;
}
