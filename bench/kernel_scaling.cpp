// Kernel scaling: throughput of every registered compute-kernel
// implementation (reference / blocked / avx2) on the two hot paths the
// kernels layer accelerates — GEMM and the batched Gimli permutation — plus
// the end-to-end effect on dataset collection and a training epoch.
//
// The artifact results/BENCH_kernels.json records, per implementation, the
// GEMM GFLOP/s, batched-Gimli states/sec, the loop-vs-batch collection
// throughput and the train-epoch wall time, each with its speedup over the
// reference implementation (GEMM) or over the scalar per-sample loop
// (collection).  Acceptance thresholds, checked by the exit status:
//   * best GEMM speedup vs reference >= 2x,
//   * best batched collection speedup vs the scalar sample() loop >= 1.5x.
//
// Every implementation is bitwise identical to the reference (the
// determinism contract of src/kernels/dispatch.hpp, enforced by
// tests/kernel_equiv_test.cpp), so these numbers compare equal computations.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/arch_zoo.hpp"
#include "core/dataset.hpp"
#include "core/targets.hpp"
#include "kernels/dispatch.hpp"
#include "kernels/gemm.hpp"
#include "kernels/gimli_batch.hpp"
#include "nn/optimizer.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace mldist;

/// Median-of-repeats wall time of `fn` (seconds).  Small repeat counts keep
/// the bench fast; the median damps scheduler noise on shared hosts.
template <typename Fn>
double timed(int repeats, Fn&& fn) {
  std::vector<double> seconds;
  seconds.reserve(static_cast<std::size_t>(repeats));
  for (int r = 0; r < repeats; ++r) {
    const util::Timer timer;
    fn();
    seconds.push_back(timer.seconds());
  }
  std::sort(seconds.begin(), seconds.end());
  return seconds[seconds.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header("Kernel scaling - GEMM / batched Gimli / collection",
                      opt);
  const auto impls = kernels::available_impls();
  const kernels::Impl startup = kernels::dispatch();
  util::Xoshiro256 rng(opt.seed);

  // --- GEMM throughput ----------------------------------------------------
  // Training-representative shape: batch 128 through a 128-wide layer.
  const std::size_t m = 128, k = 128, n = 128;
  const double flops = 2.0 * static_cast<double>(m * k * n);
  const int gemm_calls = opt.full ? 200 : 50;
  std::vector<float> a(m * k), b(k * n), c(m * n);
  for (auto& v : a) v = static_cast<float>(rng.next_gaussian());
  for (auto& v : b) v = static_cast<float>(rng.next_gaussian());

  std::printf("GEMM %zux%zux%zu, %d calls per measurement\n", m, k, n,
              gemm_calls);
  double gemm_ref_seconds = 0.0;
  double gemm_best_speedup = 1.0;
  std::vector<std::string> gemm_json;
  for (const kernels::Impl impl : impls) {
    const double seconds = timed(5, [&] {
      for (int i = 0; i < gemm_calls; ++i) {
        kernels::gemm_impl(impl, a.data(), static_cast<std::ptrdiff_t>(k), 1,
                           b.data(), static_cast<std::ptrdiff_t>(n), 1,
                           c.data(), m, k, n);
      }
    });
    if (impl == kernels::Impl::kReference) gemm_ref_seconds = seconds;
    const double speedup = gemm_ref_seconds / seconds;
    if (speedup > gemm_best_speedup) gemm_best_speedup = speedup;
    const double gflops = flops * gemm_calls / seconds / 1e9;
    std::printf("  %-10s %8.2f GFLOP/s   %.2fx vs reference\n",
                kernels::impl_name(impl), gflops, speedup);
    util::JsonBuilder j;
    j.field("impl", kernels::impl_name(impl))
        .field("seconds", seconds)
        .field("gflops", gflops)
        .field("speedup_vs_reference", speedup);
    gemm_json.push_back(j.str());
  }
  bench::print_rule();

  // --- batched Gimli ------------------------------------------------------
  const std::size_t states = 1024;
  const int gimli_calls = opt.full ? 2000 : 500;
  std::vector<std::uint32_t> soa(12 * states);
  for (auto& w : soa) w = rng.next_u32();
  std::printf("batched Gimli, 8 rounds, %zu states/call\n", states);
  double gimli_ref_seconds = 0.0;
  std::vector<std::string> gimli_json;
  for (const kernels::Impl impl : impls) {
    const double seconds = timed(5, [&] {
      for (int i = 0; i < gimli_calls; ++i) {
        kernels::gimli_rounds_batch_impl(impl, soa.data(), states, 8, 1);
      }
    });
    if (impl == kernels::Impl::kReference) gimli_ref_seconds = seconds;
    const double speedup = gimli_ref_seconds / seconds;
    const double rate =
        static_cast<double>(states) * gimli_calls / seconds / 1e6;
    std::printf("  %-10s %8.1f Mstates/s  %.2fx vs reference\n",
                kernels::impl_name(impl), rate, speedup);
    util::JsonBuilder j;
    j.field("impl", kernels::impl_name(impl))
        .field("seconds", seconds)
        .field("mstates_per_sec", rate)
        .field("speedup_vs_reference", speedup);
    gimli_json.push_back(j.str());
  }
  bench::print_rule();

  // --- dataset collection: scalar loop vs batched path --------------------
  // The scalar loop is the pre-batching collection shape (one sample() call
  // per base input, one permutation at a time); the batched path is what
  // collect_span now does (sample_batch slabs feeding the batched kernel).
  const core::GimliHashTarget target(8);
  const std::size_t base_inputs = opt.base(1u << 12, 1u << 15);
  std::printf("collection, gimli-hash/8, %zu base inputs\n", base_inputs);
  util::Xoshiro256 loop_rng(opt.seed);
  std::vector<std::vector<std::uint8_t>> diffs;
  const double loop_seconds = timed(3, [&] {
    for (std::size_t s = 0; s < base_inputs; ++s) target.sample(loop_rng, diffs);
  });
  std::printf("  %-16s %8.3fs  %10.0f samples/s   (baseline)\n",
              "scalar loop", loop_seconds,
              static_cast<double>(base_inputs) / loop_seconds);
  double collect_best_speedup = 0.0;
  std::vector<std::string> collect_json;
  for (const kernels::Impl impl : impls) {
    kernels::set_dispatch(impl);
    util::Xoshiro256 batch_rng(opt.seed);
    core::DiffBatch batch;
    constexpr std::size_t kSlab = 256;
    const double batch_seconds = timed(3, [&] {
      for (std::size_t s = 0; s < base_inputs; s += kSlab) {
        target.sample_batch(batch_rng, std::min(kSlab, base_inputs - s),
                            batch);
      }
    });
    const double speedup = loop_seconds / batch_seconds;
    if (speedup > collect_best_speedup) collect_best_speedup = speedup;
    std::printf("  %-16s %8.3fs  %10.0f samples/s   %.2fx vs loop\n",
                (std::string("batched ") + kernels::impl_name(impl)).c_str(),
                batch_seconds,
                static_cast<double>(base_inputs) / batch_seconds, speedup);
    util::JsonBuilder j;
    j.field("impl", kernels::impl_name(impl))
        .field("seconds", batch_seconds)
        .field("samples_per_sec",
               static_cast<double>(base_inputs) / batch_seconds)
        .field("speedup_vs_loop", speedup);
    collect_json.push_back(j.str());
  }
  kernels::set_dispatch(startup);
  bench::print_rule();

  // --- end-to-end training epoch ------------------------------------------
  const std::size_t train_rows = opt.full ? 8192 : 2048;
  nn::Dataset ds;
  ds.x = nn::Mat(train_rows, 128);
  ds.y.resize(train_rows);
  for (std::size_t i = 0; i < ds.x.size(); ++i) {
    ds.x.data()[i] = static_cast<float>(rng.next_u64() & 1);
  }
  for (auto& y : ds.y) y = static_cast<int>(rng.next_below(2));
  std::printf("training, default MLP, %zu rows, 1 epoch\n", train_rows);
  double train_ref_seconds = 0.0;
  std::vector<std::string> train_json;
  for (const kernels::Impl impl : impls) {
    kernels::set_dispatch(impl);
    util::Xoshiro256 init_rng(opt.seed);
    auto model = core::build_default_mlp(128, 2, init_rng);
    nn::Adam adam;
    nn::FitOptions fit;
    fit.epochs = 1;
    fit.batch_size = 128;
    fit.shuffle = false;
    const double seconds = timed(3, [&] { model->fit(ds, adam, fit); });
    if (impl == kernels::Impl::kReference) train_ref_seconds = seconds;
    const double speedup = train_ref_seconds / seconds;
    std::printf("  %-10s %8.3fs/epoch   %.2fx vs reference\n",
                kernels::impl_name(impl), seconds, speedup);
    util::JsonBuilder j;
    j.field("impl", kernels::impl_name(impl))
        .field("seconds_per_epoch", seconds)
        .field("speedup_vs_reference", speedup);
    train_json.push_back(j.str());
  }
  kernels::set_dispatch(startup);
  bench::print_rule();

  const bool gemm_ok = gemm_best_speedup >= 2.0;
  const bool collect_ok = collect_best_speedup >= 1.5;
  std::printf("acceptance: GEMM best %.2fx (target 2x): %s   collection "
              "best %.2fx (target 1.5x): %s\n",
              gemm_best_speedup, gemm_ok ? "OK" : "FAIL",
              collect_best_speedup, collect_ok ? "OK" : "FAIL");

  util::JsonBuilder acceptance;
  acceptance.field("gemm_speedup_target", 2.0)
      .field("gemm_best_speedup", gemm_best_speedup)
      .field("gemm_ok", gemm_ok)
      .field("collect_speedup_target", 1.5)
      .field("collect_best_speedup", collect_best_speedup)
      .field("collect_ok", collect_ok);
  util::JsonBuilder artifact;
  artifact.raw("options", bench::options_json(opt))
      .field("gemm_shape", std::to_string(m) + "x" + std::to_string(k) + "x" +
                               std::to_string(n))
      .raw("gemm", util::JsonBuilder::array(gemm_json))
      .field("gimli_batch_states", static_cast<std::uint64_t>(states))
      .raw("gimli_batch", util::JsonBuilder::array(gimli_json))
      .field("collect_target", "gimli-hash/8")
      .field("collect_base_inputs", static_cast<std::uint64_t>(base_inputs))
      .field("collect_loop_seconds", loop_seconds)
      .raw("collect", util::JsonBuilder::array(collect_json))
      .field("train_rows", static_cast<std::uint64_t>(train_rows))
      .raw("train", util::JsonBuilder::array(train_json))
      .raw("acceptance", acceptance.str());
  bench::write_bench_json("kernels", artifact);
  std::printf("artifact: results/BENCH_kernels.json\n");
  return (gemm_ok && collect_ok) ? 0 : 1;
}
