// Fig. 1 / §2.1: the two-round unkeyed GIFT toy example showing why the
// Markov product rule (Eq. 2) fails for keyless rounds.
//
// Exhaustive enumeration of all 256 inputs reproduces every number in the
// paper: round-1 probability 2^-5, full-characteristic probability 2^-6,
// Markov prediction 2^-9, and the surviving input list
// {(0,d), (0,e), (2,d), (2,e)}.
#include <cmath>
#include <cstdio>
#include <memory>

#include "analysis/ddt.hpp"
#include "analysis/markov.hpp"
#include "analysis/toy_gift.hpp"
#include "bench_common.hpp"
#include "ciphers/gift64.hpp"
#include "core/arch_zoo.hpp"
#include "core/distinguisher.hpp"
#include "core/targets.hpp"

int main(int argc, char** argv) {
  using namespace mldist;
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header("Fig. 1 - toy GIFT example: Markov rule vs exhaustive "
                      "truth", opt);

  const auto ch = analysis::paper_toy_characteristic();
  const auto v = analysis::verify_toy_example(ch);

  std::printf("characteristic: dY1=(2,3) -> dW1=(5,8) -> dY2=(6,2) -> "
              "dW2=(2,5)\n\n");

  const analysis::Ddt4 ddt{
      std::span<const std::uint8_t, 16>(ciphers::kGiftSbox)};
  std::printf("S-box DDT entries used (count / 16):\n");
  std::printf("  2 -> 5 : %2d/16 = 2^-2\n", ddt.count(2, 5));
  std::printf("  3 -> 8 : %2d/16 = 2^-3\n", ddt.count(3, 8));
  std::printf("  6 -> 2 : %2d/16 = 2^-2\n", ddt.count(6, 2));
  std::printf("  2 -> 5 : %2d/16 = 2^-2\n\n", ddt.count(2, 5));

  std::printf("%-38s %-10s %-10s\n", "quantity", "paper", "measured");
  bench::print_rule();
  std::printf("%-38s %-10s 2^%-7.2f\n", "round-1 characteristic probability",
              "2^-5", std::log2(v.follow_round1 / 256.0));
  std::printf("%-38s %-10s 2^%-7.2f\n", "full characteristic (exhaustive)",
              "2^-6", std::log2(v.true_probability));
  std::printf("%-38s %-10s 2^%-7.2f\n", "Markov product rule (Eq. 2)",
              "2^-9", std::log2(v.markov_probability));
  bench::print_rule();
  std::printf("surviving inputs (Y1[0], Y1[1]), paper lists (0,d) (0,e) "
              "(2,d) (2,e):\n  ");
  for (std::uint8_t in : v.surviving_inputs) {
    std::printf("(%x,%x) ", in & 0xf, in >> 4);
  }
  std::printf("\n\nconclusion: the true probability (2^-6) is 8x the Markov "
              "prediction (2^-9);\nkeyless rounds make differences "
              "inter-round dependent (non-Markov).\n\n");

  // Second experiment: on this 8-bit cipher the all-in-one distinguisher is
  // exactly computable, so we can check the paper's central claim — that a
  // trained neural network SIMULATES the all-in-one distribution — against
  // the information-theoretic ceiling.
  const core::ToyGiftTarget target;
  const double bayes = analysis::toy_allinone_bayes_accuracy(
      target.diffs()[0], target.diffs()[1]);
  util::Xoshiro256 rng(opt.seed);
  auto model = core::build_default_mlp(8, 2, rng);
  core::DistinguisherOptions dopt;
  dopt.epochs = opt.full ? 20 : 10;
  dopt.seed = opt.seed ^ 0x70f;
  core::MLDistinguisher dist(std::move(model), dopt);
  const core::TrainReport rep =
      dist.train(target, opt.full ? 40000 : 8000);

  std::printf("ML vs exact all-in-one on the toy cipher (differences 0x%02x, "
              "0x%02x):\n", target.diffs()[0], target.diffs()[1]);
  mldist::bench::print_rule();
  std::printf("%-44s %.4f\n", "Bayes-optimal accuracy (exact enumeration)",
              bayes);
  std::printf("%-44s %.4f\n", "trained MLP accuracy (held-out data)",
              rep.val_accuracy);
  mldist::bench::print_rule();
  std::printf("the MLP reaches the exact all-in-one ceiling to within "
              "sampling noise,\nwhich is the paper's justification for "
              "using ML where the exact\ndistribution is not computable "
              "(Gimli's 384-bit state).\n");
  return 0;
}
