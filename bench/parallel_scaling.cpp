// Parallel pipeline scaling: wall-clock throughput of the chunked
// collect_dataset engine and of batched Sequential::evaluate at worker
// counts {1, 2, 4, hardware}, against the serial seed path as baseline.
//
// Determinism contract, checked here and recorded in the JSON artifact:
//   * the engine's dataset is a pure function of (seed, chunk size) — every
//     thread count must produce bitwise-identical rows and labels;
//   * evaluate() reduces per-batch partials in batch order — loss and
//     accuracy must be bitwise identical for every pool size.
// The artifact results/BENCH_parallel_scaling.json records, per thread
// count, the wall time, rows/sec and speedup over the serial baseline,
// plus the hardware concurrency of the host the numbers were taken on
// (speedups are only meaningful when the host actually has the cores).
//
// Default scale is 2^16 Gimli-Hash base inputs (the acceptance scale);
// --quick drops to 2^13 for smoke runs, --base N overrides either.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/arch_zoo.hpp"
#include "core/dataset.hpp"
#include "core/targets.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using namespace mldist;

bool same_dataset(const nn::Dataset& a, const nn::Dataset& b) {
  if (a.x.rows() != b.x.rows() || a.x.cols() != b.x.cols()) return false;
  if (a.y != b.y) return false;
  return std::memcmp(a.x.data(), b.x.data(),
                     a.x.size() * sizeof(float)) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Parallel pipeline scaling - collect_dataset / evaluate", opt);

  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  // Acceptance scale (--full): 2^16 base inputs on Gimli-Hash; --quick runs
  // 2^13 for smoke tests.  Rounds do not matter for throughput; 7 matches
  // the paper's headline table.
  const std::size_t base_inputs = opt.base(1u << 13, 1u << 16);
  const core::GimliHashTarget target(7);
  const core::CipherOracle oracle(target);
  std::printf("target: gimli-hash/7   base inputs: %zu (2^%.1f)   hardware "
              "threads: %zu\n",
              base_inputs, std::log2(static_cast<double>(base_inputs)), hw);
  bench::print_rule();

  // --- baseline: the serial seed path (one continuous RNG stream) ---------
  double serial_seconds = 0.0;
  nn::Dataset serial_ds;
  {
    util::Xoshiro256 rng(opt.seed);
    const util::Timer timer;
    serial_ds = core::collect_dataset(oracle, base_inputs, rng);
    serial_seconds = timer.seconds();
  }
  std::printf("%-28s %8.2fs  %10.0f rows/s   (baseline)\n",
              "collect serial (seed path)", serial_seconds,
              static_cast<double>(serial_ds.size()) / serial_seconds);

  // --- the chunked engine at increasing worker counts ---------------------
  struct Point {
    std::size_t threads_requested;
    core::PhaseTelemetry telemetry;
    double speedup = 0.0;
    bool identical_to_first = false;
  };
  std::vector<std::size_t> counts = {1, 2, 4};
  if (hw != 1 && hw != 2 && hw != 4) counts.push_back(hw);
  std::vector<Point> points;
  nn::Dataset reference;  // engine output at 1 thread
  for (const std::size_t threads : counts) {
    core::CollectOptions copt;
    copt.seed = opt.seed;
    copt.threads = threads;
    Point p;
    p.threads_requested = threads;
    const nn::Dataset ds =
        core::collect_dataset(oracle, base_inputs, copt, &p.telemetry);
    p.speedup = serial_seconds / p.telemetry.seconds;
    if (reference.size() == 0) reference = ds;
    p.identical_to_first = same_dataset(ds, reference);
    std::printf("%-28s %8.2fs  %10.0f rows/s   %.2fx vs serial   bitwise "
                "stable: %s\n",
                (std::string("collect engine, ") + std::to_string(threads) +
                 " thread(s)").c_str(),
                p.telemetry.seconds, p.telemetry.rows_per_sec(), p.speedup,
                p.identical_to_first ? "yes" : "NO");
    points.push_back(p);
  }
  bench::print_rule();

  // --- evaluate() scaling on the collected data ---------------------------
  util::Xoshiro256 init_rng(opt.seed);
  auto model = core::build_default_mlp(target.output_bytes() * 8,
                                       target.num_differences(), init_rng);
  struct EvalPoint {
    std::size_t threads;
    double seconds = 0.0;
    nn::EvalResult result;
    bool identical_to_first = false;
  };
  std::vector<EvalPoint> eval_points;
  nn::EvalResult eval_reference;
  bool have_eval_reference = false;
  for (const std::size_t threads : counts) {
    util::ThreadPool pool(threads);
    EvalPoint e;
    e.threads = threads;
    const util::Timer timer;
    e.result = model->evaluate(reference, 512, &pool);
    e.seconds = timer.seconds();
    if (!have_eval_reference) {
      eval_reference = e.result;
      have_eval_reference = true;
    }
    e.identical_to_first = e.result.loss == eval_reference.loss &&
                           e.result.accuracy == eval_reference.accuracy;
    std::printf("%-28s %8.2fs  %10.0f rows/s   loss %.6f   bitwise stable: "
                "%s\n",
                (std::string("evaluate, ") + std::to_string(threads) +
                 " thread(s)").c_str(),
                e.seconds,
                static_cast<double>(reference.size()) / e.seconds,
                e.result.loss, e.identical_to_first ? "yes" : "NO");
    eval_points.push_back(e);
  }
  bench::print_rule();

  bool all_stable = true;
  for (const auto& p : points) all_stable = all_stable && p.identical_to_first;
  for (const auto& e : eval_points) {
    all_stable = all_stable && e.identical_to_first;
  }
  std::printf("determinism: %s across all worker counts\n",
              all_stable ? "bitwise identical" : "VIOLATED");
  if (hw < 4) {
    std::printf("note: this host exposes %zu hardware thread(s); speedups "
                "above are bounded by that, not by the engine.\n", hw);
  }

  // --- artifact -----------------------------------------------------------
  std::vector<std::string> collect_json;
  for (const auto& p : points) {
    util::JsonBuilder j;
    j.field("threads_requested", static_cast<std::uint64_t>(p.threads_requested))
        .raw("telemetry", p.telemetry.to_json())
        .field("speedup_vs_serial", p.speedup)
        .field("bitwise_identical", p.identical_to_first);
    collect_json.push_back(j.str());
  }
  std::vector<std::string> eval_json;
  for (const auto& e : eval_points) {
    util::JsonBuilder j;
    j.field("threads", static_cast<std::uint64_t>(e.threads))
        .field("seconds", e.seconds)
        .field("loss", e.result.loss)
        .field("accuracy", e.result.accuracy)
        .field("bitwise_identical", e.identical_to_first);
    eval_json.push_back(j.str());
  }
  util::JsonBuilder artifact;
  artifact.raw("options", bench::options_json(opt))
      .field("target", "gimli-hash/7")
      .field("base_inputs", static_cast<std::uint64_t>(base_inputs))
      .field("rows", static_cast<std::uint64_t>(serial_ds.size()))
      .field("hardware_concurrency", static_cast<std::uint64_t>(hw))
      .field("serial_seconds", serial_seconds)
      .field("serial_rows_per_sec",
             static_cast<double>(serial_ds.size()) / serial_seconds)
      .raw("collect", util::JsonBuilder::array(collect_json))
      .raw("evaluate", util::JsonBuilder::array(eval_json))
      .field("deterministic", all_stable);
  bench::write_bench_json("parallel_scaling", artifact);
  std::printf("artifact: results/BENCH_parallel_scaling.json\n");
  return all_stable ? 0 : 1;
}
