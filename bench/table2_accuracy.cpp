// Table 2: accuracy of the neural distinguisher on round-reduced
// Gimli-Hash and Gimli-Cipher (rounds 6, 7, 8).
//
// Paper setup: MLP, Adam, 2^17.6 training samples, 20 epochs, differences
// flipping the LSB of byte 4 / byte 12 (message bytes for the hash, nonce
// bytes for the AEAD).  Paper numbers:
//     rounds   Gimli-Hash   Gimli-Cipher
//        6       0.9689        0.9528
//        7       0.7229        0.6340
//        8       0.5219        0.5099
// Quick mode trains on a much smaller budget, so the 8-round accuracy sits
// closer to 0.5 — the SHAPE (monotone decay toward 1/2, hash >= cipher)
// is the reproduction target.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "core/arch_zoo.hpp"
#include "core/distinguisher.hpp"
#include "core/targets.hpp"
#include "util/timer.hpp"

namespace {

using namespace mldist;

double run_one(const core::Target& target, std::size_t base_inputs, int epochs,
               std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  auto model = core::build_default_mlp(target.output_bytes() * 8,
                                       target.num_differences(), rng);
  core::DistinguisherOptions opt;
  opt.epochs = epochs;
  opt.seed = seed ^ 0x7ab1e2;
  core::MLDistinguisher dist(std::move(model), opt);
  const core::TrainReport rep = dist.train(target, base_inputs);
  return rep.val_accuracy;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = mldist::bench::parse_options(argc, argv);
  mldist::bench::print_header(
      "Table 2 - neural distinguisher accuracy, round-reduced Gimli", opt);

  // Paper scale: 2^17.6 ~ 198k labelled samples = ~99k base inputs, 20
  // epochs.  Quick: 6k base inputs, 3 epochs (minutes-scale on 2 cores).
  const std::size_t base_inputs = opt.base(6000, 99000);
  const int epochs = opt.epochs(3, 20);

  const double paper_hash[3] = {0.9689, 0.7229, 0.5219};
  const double paper_cipher[3] = {0.9528, 0.6340, 0.5099};

  mldist::bench::CsvWriter csv("table2_accuracy",
      "rounds,paper_hash,measured_hash,paper_cipher,measured_cipher");
  std::printf("%-8s %-22s %-22s\n", "rounds", "GIMLI-HASH acc", "GIMLI-CIPHER acc");
  std::printf("%-8s %-10s %-11s %-10s %-11s\n", "", "paper", "measured",
              "paper", "measured");
  mldist::bench::print_rule();
  for (int i = 0; i < 3; ++i) {
    const int rounds = 6 + i;
    mldist::util::Timer timer;
    const core::GimliHashTarget hash(rounds);
    const double acc_hash =
        run_one(hash, base_inputs, epochs, opt.seed + static_cast<std::uint64_t>(rounds));
    const core::GimliCipherTarget cipher(rounds);
    const double acc_cipher = run_one(
        cipher, base_inputs, epochs, opt.seed + 100 + static_cast<std::uint64_t>(rounds));
    std::printf("%-8d %-10.4f %-11.4f %-10.4f %-11.4f (%.1fs)\n", rounds,
                paper_hash[i], acc_hash, paper_cipher[i], acc_cipher,
                timer.seconds());
    csv.rowf("%d,%.4f,%.4f,%.4f,%.4f", rounds, paper_hash[i], acc_hash,
             paper_cipher[i], acc_cipher);
  }
  mldist::bench::print_rule();
  std::printf("offline data: %zu base inputs (x2 labels), %d epochs; paper "
              "used 2^17.6 samples / 20 epochs\n",
              base_inputs, epochs);
  std::printf("expected shape: accuracy decays toward 0.5 with rounds; 6r "
              "strong, 7r moderate, 8r slight.\n");
  return 0;
}
