// Table 2: accuracy of the neural distinguisher on round-reduced
// Gimli-Hash and Gimli-Cipher (rounds 6, 7, 8).
//
// Paper setup: MLP, Adam, 2^17.6 training samples, 20 epochs, differences
// flipping the LSB of byte 4 / byte 12 (message bytes for the hash, nonce
// bytes for the AEAD).  Paper numbers:
//     rounds   Gimli-Hash   Gimli-Cipher
//        6       0.9689        0.9528
//        7       0.7229        0.6340
//        8       0.5219        0.5099
// Quick mode trains on a much smaller budget, so the 8-round accuracy sits
// closer to 0.5 — the SHAPE (monotone decay toward 1/2, hash >= cipher)
// is the reproduction target.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "core/distinguisher.hpp"
#include "core/experiment.hpp"
#include "core/targets.hpp"
#include "util/timer.hpp"

namespace {

using namespace mldist;

struct RunResult {
  core::TrainReport report;
  std::string json;  ///< config + accuracy + per-phase telemetry
};

RunResult run_one(const std::string& target_name, int rounds,
                  std::size_t base_inputs, int epochs,
                  const bench::Options& opt) {
  core::ExperimentConfig config;
  config.target = target_name;
  config.rounds = rounds;
  config.epochs = epochs;
  config.seed = opt.seed + static_cast<std::uint64_t>(rounds) +
                (target_name == "gimli-cipher" ? 100 : 0);
  config.threads = opt.threads;
  config.offline_base_inputs = base_inputs;
  const auto target = config.make_target();

  core::MLDistinguisher dist(*target, config);
  RunResult res;
  res.report = dist.train(*target, base_inputs);

  util::JsonBuilder j;
  j.raw("config", config.to_json())
      .field("val_accuracy", res.report.val_accuracy)
      .field("train_accuracy", res.report.train_accuracy)
      .field("seconds_per_epoch", res.report.seconds_per_epoch)
      .raw("collect", res.report.collect.to_json())
      .raw("fit", res.report.fit.to_json());
  res.json = j.str();
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = mldist::bench::parse_options(argc, argv);
  mldist::bench::print_header(
      "Table 2 - neural distinguisher accuracy, round-reduced Gimli", opt);

  // Paper scale: 2^17.6 ~ 198k labelled samples = ~99k base inputs, 20
  // epochs.  Quick: 6k base inputs, 3 epochs (minutes-scale on 2 cores).
  const std::size_t base_inputs = opt.base(6000, 99000);
  const int epochs = opt.epochs(3, 20);

  const double paper_hash[3] = {0.9689, 0.7229, 0.5219};
  const double paper_cipher[3] = {0.9528, 0.6340, 0.5099};

  mldist::bench::CsvWriter csv("table2_accuracy",
      "rounds,paper_hash,measured_hash,paper_cipher,measured_cipher");
  std::vector<std::string> runs;
  std::printf("%-8s %-22s %-22s\n", "rounds", "GIMLI-HASH acc", "GIMLI-CIPHER acc");
  std::printf("%-8s %-10s %-11s %-10s %-11s\n", "", "paper", "measured",
              "paper", "measured");
  mldist::bench::print_rule();
  for (int i = 0; i < 3; ++i) {
    const int rounds = 6 + i;
    mldist::util::Timer timer;
    const RunResult hash =
        run_one("gimli-hash", rounds, base_inputs, epochs, opt);
    const RunResult cipher =
        run_one("gimli-cipher", rounds, base_inputs, epochs, opt);
    std::printf("%-8d %-10.4f %-11.4f %-10.4f %-11.4f (%.1fs)\n", rounds,
                paper_hash[i], hash.report.val_accuracy, paper_cipher[i],
                cipher.report.val_accuracy, timer.seconds());
    csv.rowf("%d,%.4f,%.4f,%.4f,%.4f", rounds, paper_hash[i],
             hash.report.val_accuracy, paper_cipher[i],
             cipher.report.val_accuracy);
    runs.push_back(hash.json);
    runs.push_back(cipher.json);
  }
  mldist::bench::print_rule();
  std::printf("offline data: %zu base inputs (x2 labels), %d epochs; paper "
              "used 2^17.6 samples / 20 epochs\n",
              base_inputs, epochs);
  std::printf("expected shape: accuracy decays toward 0.5 with rounds; 6r "
              "strong, 7r moderate, 8r slight.\n");

  mldist::util::JsonBuilder artifact;
  artifact.raw("options", mldist::bench::options_json(opt))
      .raw("runs", mldist::util::JsonBuilder::array(runs));
  mldist::bench::write_bench_json("table2_accuracy", artifact);
  return 0;
}
