// Ablation A6 (extension): combining the model's probability outputs over
// k same-class pairs (naive-Bayes log-likelihood sum).  The per-sample
// advantage of a marginal distinguisher grows ~sqrt(k) under combining, so
// the weak 8-round signal becomes decisive — trading online data volume
// against per-sample accuracy.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "core/arch_zoo.hpp"
#include "core/combiner.hpp"
#include "core/distinguisher.hpp"
#include "core/targets.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace mldist;
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header("Ablation - probability combining over k pairs "
                      "(Gimli-Cipher)", opt);

  const std::size_t train_base = opt.base(20000, 99000);
  const int epochs = opt.epochs(4, 12);
  const int rounds = opt.full ? 8 : 7;

  const core::GimliCipherTarget target(rounds);
  util::Xoshiro256 rng(opt.seed);
  auto model = core::build_default_mlp(128, 2, rng);
  core::DistinguisherOptions dopt;
  dopt.epochs = epochs;
  dopt.seed = opt.seed ^ 0xc0b1;
  core::MLDistinguisher dist(std::move(model), dopt);
  util::Timer timer;
  const core::TrainReport train = dist.train(target, train_base);
  std::printf("target %s, per-sample training accuracy a = %.4f (%.1fs)\n\n",
              target.name().c_str(), train.val_accuracy, timer.seconds());

  const core::CipherOracle cipher(target);
  const core::RandomOracle random(2, 16);

  bench::CsvWriter csv("ablation_combine",
      "k,cipher_accuracy,random_accuracy,log2_queries");
  std::printf("%-6s %-22s %-22s %-14s\n", "k", "combined acc (CIPHER)",
              "combined acc (RANDOM)", "2^queries");
  bench::print_rule();
  for (const std::size_t k : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    const std::size_t groups = 1024 / k + 16;
    util::Xoshiro256 orng(opt.seed + k);
    const core::CombinedReport on_cipher =
        core::combined_accuracy(dist.model(), cipher, groups, k, orng);
    const core::CombinedReport on_random =
        core::combined_accuracy(dist.model(), random, groups, k, orng);
    std::printf("%-6zu %-22.4f %-22.4f %-14.1f\n", k, on_cipher.accuracy,
                on_random.accuracy, on_cipher.log2_queries);
    csv.rowf("%zu,%.4f,%.4f,%.1f", k, on_cipher.accuracy, on_random.accuracy,
             on_cipher.log2_queries);
  }
  bench::print_rule();
  std::printf("expected: CIPHER column climbs toward 1.0 with k; RANDOM "
              "column stays ~0.5.\n");
  return 0;
}
