// Ablation A2: where the input difference is injected.
//
// The paper picks message/nonce bytes 4 and 12 (word-aligned positions in
// two different state columns).  This bench compares byte pairs in the
// same column vs different columns and low vs high bit positions within a
// byte, on 7-round Gimli-Hash, showing how Gimli's column-local SP-box
// makes the choice matter.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/arch_zoo.hpp"
#include "core/distinguisher.hpp"
#include "core/targets.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace mldist;
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header("Ablation - input difference position (7-round "
                      "Gimli-Hash)", opt);

  const std::size_t base_inputs = opt.base(4000, 40000);
  const int epochs = opt.epochs(3, 10);

  struct Case {
    std::string label;
    std::vector<std::size_t> positions;
  };
  const std::vector<Case> cases = {
      {"paper: bytes 4, 12 (columns 1 and 3)", {4, 12}},
      {"same column: bytes 4, 5", {4, 5}},
      {"same column: bytes 4, 6", {4, 6}},
      {"adjacent columns: bytes 0, 4", {0, 4}},
      {"word-aligned far: bytes 0, 12", {0, 12}},
      {"column 0/2: bytes 2, 10", {2, 10}},
  };

  std::printf("%-42s %-10s\n", "difference positions", "accuracy");
  bench::print_rule();
  for (std::size_t i = 0; i < cases.size(); ++i) {
    util::Xoshiro256 rng(opt.seed + i);
    const core::GimliHashTarget target(7, cases[i].positions);
    auto model = core::build_default_mlp(128, 2, rng);
    core::DistinguisherOptions dopt;
    dopt.epochs = epochs;
    dopt.seed = opt.seed ^ (i * 7919);
    core::MLDistinguisher dist(std::move(model), dopt);
    util::Timer timer;
    const core::TrainReport rep = dist.train(target, base_inputs);
    std::printf("%-42s %-10.4f (%.1fs)\n", cases[i].label.c_str(),
                rep.val_accuracy, timer.seconds());
  }
  bench::print_rule();
  std::printf("expected: same-column pairs are easier to tell apart than\n"
              "the paper's cross-column choice at low rounds, and all decay\n"
              "together as rounds grow.\n");
  return 0;
}
