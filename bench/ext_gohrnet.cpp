// Extension bench: the paper's plain MLP vs a Gohr-style residual
// convolutional network (§2.3 describes Gohr's deep residual network; the
// paper deliberately uses a simpler MLP).  Compared on 7-round
// Gimli-Cipher and 5-round SPECK at equal sample budgets.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "core/arch_zoo.hpp"
#include "core/distinguisher.hpp"
#include "core/targets.hpp"
#include "util/timer.hpp"

namespace {

using namespace mldist;

void run_pair(const core::Target& target, std::size_t base_inputs, int epochs,
              std::uint64_t seed) {
  for (const bool use_gohr : {false, true}) {
    util::Xoshiro256 rng(seed);
    auto model =
        use_gohr
            ? core::build_gohr_net(target.output_bytes() * 8,
                                   target.num_differences(), /*depth=*/2, rng)
            : core::build_default_mlp(target.output_bytes() * 8,
                                      target.num_differences(), rng);
    const std::size_t params = model->param_count();
    mldist::util::Timer timer;
    const core::TrainReport rep = bench::train_distinguisher(
        std::move(model), target, base_inputs, epochs, seed ^ 0x90d4);
    std::printf("%-26s %-14s %-10zu %-10.4f %.1fs\n", target.name().c_str(),
                use_gohr ? "gohr-net(d=2)" : "MLP II", params,
                rep.val_accuracy, timer.seconds());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header("Extension - paper's MLP vs Gohr-style residual "
                      "network", opt);

  const std::size_t gimli_base = opt.base(1200, 16000);
  const std::size_t speck_base = opt.base(2400, 30000);
  const int epochs = opt.epochs(3, 8);

  std::printf("%-26s %-14s %-10s %-10s %s\n", "target", "model", "params",
              "accuracy", "time");
  bench::print_rule();
  run_pair(core::GimliCipherTarget(7), gimli_base, epochs, opt.seed);
  run_pair(core::SpeckTarget(5), speck_base, epochs, opt.seed + 1);
  bench::print_rule();
  std::printf("note: convolution over a bit-permuted state has no locality "
              "to exploit (the\npaper's CNN result); residual/batch-norm "
              "training still converges, matching the\npaper's choice of a "
              "plain MLP for this problem.\n");
  return 0;
}
