// Campaign soak (ISSUE 7): throughput and recovery cost of the sharded
// supervisor, with the determinism contract asserted on the bench's own
// outputs before any number is trusted.
//
// Three campaigns over the same toy-target grid:
//
//   serial   workers=0 — the in-process reference run whose history
//            payloads are the bitwise ground truth.
//   clean    workers=N, no faults — campaign_cells_per_sec measures the
//            supervisor's sharding overhead.
//   chaos    workers=N with MLDIST_CHAOS_KILL p=100,max=1 — every cell's
//            first lease is SIGKILLed mid-train, so every cell crosses the
//            reclaim + retry path; chaos_cells_per_sec prices the recovery
//            and campaign_reclaim_latency_ns is the mean death-detection ->
//            cell-requeued latency.
//
// Acceptance, checked by the exit status (the bench runs under ctest -L
// fault): all three campaigns complete with zero failed cells, the clean
// and chaos history payloads are byte-identical to the serial run, and the
// chaos campaign reclaims every cell once.
//
// The artifact results/BENCH_campaign.json carries the direction-pinned
// metrics (campaign_cells_per_sec up, campaign_reclaim_latency_ns down)
// gated against tools/baselines.jsonl by tools/bench_compare.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>

#include "bench_common.hpp"
#include "campaign/journal.hpp"
#include "campaign/spec.hpp"
#include "campaign/supervisor.hpp"
#include "campaign/worker.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"

namespace {

using namespace mldist;

/// history.jsonl as {cell id -> verbatim payload bytes}.
std::map<std::string, std::string> read_history(const std::string& state_dir) {
  std::map<std::string, std::string> out;
  std::ifstream in(state_dir + "/history.jsonl");
  std::string line;
  while (in && std::getline(in, line)) {
    std::string id;
    std::string payload;
    if (campaign::extract_json_string(line, "cell", id) &&
        campaign::extract_json_object(line, "payload", payload)) {
      out[id] = payload;
    }
  }
  return out;
}

std::string fresh_state_dir(const char* tag) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("mldist-campaign-soak-" + std::to_string(::getpid()) + "-" + tag))
          .string();
  std::filesystem::remove_all(path);
  std::filesystem::create_directories(path);
  return path;
}

struct CampaignRun {
  campaign::CampaignReport report;
  std::map<std::string, std::string> payloads;
  double seconds = 0.0;
  std::string state_dir;
};

CampaignRun run_campaign(const campaign::CampaignSpec& spec,
                         std::size_t workers, const char* tag) {
  CampaignRun run;
  run.state_dir = fresh_state_dir(tag);
  campaign::SupervisorOptions opt;
  opt.state_dir = run.state_dir;
  opt.workers = workers;
  opt.backoff_base_s = 0.02;
  opt.backoff_cap_s = 0.1;
  opt.poll_interval_s = 0.01;
  campaign::Supervisor sup(spec, opt);
  const util::Timer timer;
  run.report = sup.run();
  run.seconds = timer.seconds();
  run.payloads = read_history(run.state_dir);
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  // This binary is also the worker binary the supervisor execs.
  if (const int worker_rc = campaign::worker_entry(argc, argv);
      worker_rc >= 0) {
    return worker_rc;
  }
  const bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header("Campaign soak: sharded supervisor under chaos", opt);

  const std::size_t cells = opt.base(4, 8);
  const std::size_t workers = 3;

  campaign::CampaignSpec spec;
  spec.name = "soak";
  spec.targets = {"toy"};
  spec.archs = {"default-mlp"};
  for (std::size_t r = 1; r <= cells; ++r) {
    spec.rounds.push_back(static_cast<int>(r));
  }
  spec.base.epochs = 2;
  spec.base.batch_size = 64;
  spec.base.threads = 1;
  spec.base.offline_base_inputs = 300;
  spec.base.online_base_inputs = 150;
  spec.seed = opt.seed;

  ::unsetenv("MLDIST_CHAOS_KILL");  // the reference must be unperturbed
  const CampaignRun serial = run_campaign(spec, /*workers=*/0, "serial");

  const CampaignRun clean = run_campaign(spec, workers, "clean");

  ::setenv("MLDIST_CHAOS_KILL", "p=100,seed=7,max=1", 1);
  const CampaignRun chaos = run_campaign(spec, workers, "chaos");
  ::unsetenv("MLDIST_CHAOS_KILL");

  const double clean_cps = static_cast<double>(clean.report.cells_done) /
                           std::max(1e-9, clean.seconds);
  const double chaos_cps = static_cast<double>(chaos.report.cells_done) /
                           std::max(1e-9, chaos.seconds);

  std::printf("%-8s %6s %6s %8s %9s %10s %14s\n", "run", "cells", "done",
              "failed", "reclaims", "seconds", "cells/sec");
  const auto row = [](const char* name, const CampaignRun& r, double cps) {
    std::printf("%-8s %6zu %6zu %8zu %9zu %10.3f %14.2f\n", name,
                r.report.cells_total, r.report.cells_done,
                r.report.cells_failed, r.report.reclaims, r.seconds, cps);
  };
  row("serial", serial,
      static_cast<double>(serial.report.cells_done) /
          std::max(1e-9, serial.seconds));
  row("clean", clean, clean_cps);
  row("chaos", chaos, chaos_cps);
  std::printf("\nreclaim latency (chaos): %.0f ns mean over %zu reclaims\n",
              chaos.report.reclaim_latency_ns_mean, chaos.report.reclaims);

  bool ok = true;
  const auto require = [&](bool cond, const char* what) {
    if (!cond) {
      std::fprintf(stderr, "FAIL: %s\n", what);
      ok = false;
    }
  };
  require(serial.report.complete() && serial.report.cells_failed == 0,
          "serial reference campaign did not complete cleanly");
  require(serial.payloads.size() == cells,
          "serial history is missing cell payloads");
  require(clean.report.complete() && clean.report.cells_failed == 0,
          "clean sharded campaign did not complete cleanly");
  require(chaos.report.complete() && chaos.report.cells_failed == 0,
          "chaos campaign did not complete cleanly");
  require(chaos.report.reclaims >= cells,
          "chaos campaign must reclaim every cell's first lease");
  require(clean.payloads == serial.payloads,
          "sharded payloads differ from the serial reference");
  require(chaos.payloads == serial.payloads,
          "post-crash payloads differ from the serial reference");

  util::JsonBuilder j;
  j.raw("options", bench::options_json(opt))
      .field("cells", static_cast<std::uint64_t>(cells))
      .field("workers", static_cast<std::uint64_t>(workers))
      .field("serial_seconds", serial.seconds)
      .field("campaign_cells_per_sec", clean_cps)
      .field("chaos_cells_per_sec", chaos_cps)
      .field("campaign_reclaim_latency_ns",
             chaos.report.reclaim_latency_ns_mean)
      .field("reclaims", static_cast<std::uint64_t>(chaos.report.reclaims))
      .field("worker_restarts",
             static_cast<std::uint64_t>(chaos.report.worker_restarts))
      .field("bitwise_ok", ok);
  bench::write_bench_json("campaign", j);

  std::filesystem::remove_all(serial.state_dir);
  std::filesystem::remove_all(clean.state_dir);
  std::filesystem::remove_all(chaos.state_dir);
  if (!ok) return 1;
  std::printf("\nall campaigns complete; payloads bitwise identical\n");
  return 0;
}
