// §4 headline experiment: distinguish 8-round Gimli-Cipher with 2^17.6
// offline data and 2^14.3 online data.
//
// Paper numbers: online accuracy 0.5120 on cipher data vs 0.5001 on random
// data.  We train the default MLP, then play the full ORACLE game of §3.1
// repeatedly and report (a) the mean online accuracy on each oracle type
// and (b) how often the decision rule names the oracle correctly.
#include <cmath>
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "core/distinguisher.hpp"
#include "core/experiment.hpp"
#include "core/online_game.hpp"
#include "core/targets.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace mldist;
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header("Online oracle game - 8-round Gimli-Cipher (paper "
                      "sec. 4)", opt);

  // Offline: paper 2^17.6 samples / 20 epochs; quick: 20k base inputs / 5
  // (the 8-round signal is ~0.51, so the offline budget cannot be tiny).
  core::ExperimentConfig config;
  config.target = "gimli-cipher";
  config.rounds = 8;
  config.offline_base_inputs = opt.base(20000, 99000);
  config.epochs = opt.epochs(5, 20);
  // Online: the paper's 2^14.3 ~ 20171 samples (10085 base inputs x 2).
  config.online_base_inputs = 10085;
  config.games = opt.full ? 20 : 12;
  config.seed = opt.seed ^ 0x911e;
  config.threads = opt.threads;
  // The 8-round advantage is small; decide the game at 2.5 sigma over the
  // paper-scale online budget instead of the framework's 3-sigma default.
  config.z_threshold = 2.5;
  config.validation_fraction = 0.25;  // a itself must be measured precisely

  // Algorithm 2's offline gate: train at 8 rounds; if a is not
  // significantly above 1/t at this budget, the attacker ABORTS (the
  // paper's line 15).  Quick budgets usually abort at 8 rounds (the paper
  // needed 2^17.6 samples for a = 0.512); we then demonstrate the game at
  // 7 rounds, clearly labelled.
  std::unique_ptr<core::MLDistinguisher> dist;
  std::unique_ptr<core::Target> target;
  core::TrainReport train;
  util::Timer timer;
  for (;;) {
    target = config.make_target();
    dist = std::make_unique<core::MLDistinguisher>(*target, config);
    timer.reset();
    train = dist->train(*target, config.offline_base_inputs);
    std::printf("offline @ %d rounds: %zu base inputs (2^%.1f oracle "
                "queries), %d epochs, %.1fs (collect %.0f q/s on %zu "
                "threads)\n",
                config.rounds, config.offline_base_inputs, train.log2_data,
                config.epochs, timer.seconds(),
                train.collect.queries_per_sec(), train.collect.threads);
    std::printf("  training accuracy a = %.4f (validation %.4f), usable: "
                "%s\n",
                train.train_accuracy, train.val_accuracy,
                train.usable ? "yes (a > 1/t)" : "no (abort per Algorithm 2)");
    if (train.usable || config.rounds == 7) break;
    std::printf("  -> Algorithm 2 aborts at this budget; rerun with --full "
                "for the paper-scale\n     8-round game.  Demonstrating the "
                "online game at 7 rounds instead.\n\n");
    config.rounds = 7;
  }
  std::printf("\n");

  timer.reset();
  const core::GameReport game = play_games(*dist, *target, config);

  std::printf("%-40s %-10s %-10s\n", "quantity", "paper", "measured");
  bench::print_rule();
  std::printf("%-40s %-10s %.4f\n", "online accuracy a' (ORACLE = CIPHER)",
              "0.5120", game.mean_cipher_accuracy);
  std::printf("%-40s %-10s %.4f\n", "online accuracy a' (ORACLE = RANDOM)",
              "0.5001", game.mean_random_accuracy);
  std::printf("%-40s %-10s 2^%.1f\n", "online data per game", "2^14.3",
              std::log2(static_cast<double>(config.online_base_inputs) * 3));
  bench::print_rule();
  std::printf("oracle games: %zu   correct: %zu   inconclusive: %zu   "
              "success rate: %.2f   (%.1fs)\n",
              game.games, game.correct, game.inconclusive, game.success_rate,
              timer.seconds());

  util::JsonBuilder artifact;
  artifact.raw("options", bench::options_json(opt))
      .raw("config", config.to_json())
      .field("train_accuracy", train.train_accuracy)
      .field("val_accuracy", train.val_accuracy)
      .field("usable", train.usable)
      .field("seconds_per_epoch", train.seconds_per_epoch)
      .raw("offline_collect", train.collect.to_json())
      .raw("offline_fit", train.fit.to_json())
      .field("games", static_cast<std::uint64_t>(game.games))
      .field("correct", static_cast<std::uint64_t>(game.correct))
      .field("inconclusive", static_cast<std::uint64_t>(game.inconclusive))
      .field("success_rate", game.success_rate)
      .field("mean_cipher_accuracy", game.mean_cipher_accuracy)
      .field("mean_random_accuracy", game.mean_random_accuracy)
      .raw("online", game.telemetry.to_json());
  bench::write_bench_json("online_game", artifact);
  return 0;
}
