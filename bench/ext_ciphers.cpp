// Extension (paper §6 future scope): the same ML-assisted distinguisher on
// other primitives — the Markov cipher GIFT-64 and the non-Markov SALSA20
// core and TRIVIUM — plus SPECK for reference.  One table: primitive,
// round/clock budget, accuracy, usable verdict.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/arch_zoo.hpp"
#include "core/distinguisher.hpp"
#include "core/targets.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace mldist;
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header("Extension - distinguishers on GIFT-64, Salsa20 core, "
                      "Trivium, SPECK", opt);

  const std::size_t base_inputs = opt.base(5000, 40000);
  const int epochs = opt.epochs(4, 10);

  struct Row {
    std::string label;
    std::unique_ptr<core::Target> target;
  };
  std::vector<Row> rows;
  rows.push_back({"gift64, 4 rounds", std::make_unique<core::Gift64Target>(4)});
  rows.push_back({"gift64, 6 rounds", std::make_unique<core::Gift64Target>(6)});
  rows.push_back({"gift64, 9 rounds", std::make_unique<core::Gift64Target>(9)});
  rows.push_back({"gift128, 4 rounds", std::make_unique<core::Gift128Target>(4)});
  rows.push_back({"gift128, 8 rounds", std::make_unique<core::Gift128Target>(8)});
  rows.push_back({"salsa20 core, 3 rounds", std::make_unique<core::SalsaTarget>(3)});
  rows.push_back({"salsa20 core, 4 rounds", std::make_unique<core::SalsaTarget>(4)});
  rows.push_back({"salsa20 core, 6 rounds", std::make_unique<core::SalsaTarget>(6)});
  rows.push_back({"trivium, 384 init clocks", std::make_unique<core::TriviumTarget>(384)});
  rows.push_back({"trivium, 576 init clocks", std::make_unique<core::TriviumTarget>(576)});
  rows.push_back({"trivium, 1152 (full) clocks", std::make_unique<core::TriviumTarget>(1152)});
  rows.push_back({"speck32/64, 5 rounds", std::make_unique<core::SpeckTarget>(5)});
  rows.push_back({"speck32/64, 7 rounds", std::make_unique<core::SpeckTarget>(7)});

  std::printf("%-30s %-10s %-10s %-10s\n", "primitive", "accuracy", "1/t",
              "usable");
  bench::print_rule();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& target = *rows[i].target;
    util::Xoshiro256 rng(opt.seed + i);
    auto model = core::build_default_mlp(target.output_bytes() * 8,
                                         target.num_differences(), rng);
    core::DistinguisherOptions dopt;
    dopt.epochs = epochs;
    dopt.seed = opt.seed ^ (i * 104729);
    core::MLDistinguisher dist(std::move(model), dopt);
    util::Timer timer;
    const core::TrainReport rep = dist.train(target, base_inputs);
    std::printf("%-30s %-10.4f %-10.4f %-10s (%.1fs)\n", rows[i].label.c_str(),
                rep.val_accuracy,
                1.0 / static_cast<double>(target.num_differences()),
                rep.usable ? "yes" : "no", timer.seconds());
  }
  bench::print_rule();
  std::printf("expected: round-reduced targets usable, full-strength ones "
              "(trivium@1152) not.\n");
  return 0;
}
