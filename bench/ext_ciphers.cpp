// Extension (paper §6 future scope): the same ML-assisted distinguisher on
// other primitives — the Markov ciphers GIFT-64, SIMON, SIMECK and PRESENT,
// the MAC Chaskey, the non-Markov SALSA20 core and TRIVIUM — plus SPECK for
// reference, and the related-key game (arXiv 2201.03767) where supported.
// One table: primitive, round/clock budget, accuracy, usable verdict.
//
// Beyond the table, every row's accuracy and advantage (accuracy - 1/t)
// land in results/BENCH_ext_ciphers.json; the cipher-zoo rows' accuracies
// are floor-pinned in tools/baselines.jsonl for the `regress` gate, so a
// refactor that silently breaks a new primitive's distinguisher fails CI.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/arch_zoo.hpp"
#include "core/distinguisher.hpp"
#include "core/targets.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace mldist;
  using core::DiffSite;
  const auto opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Extension - distinguishers on GIFT, SIMON, SIMECK, PRESENT, Chaskey, "
      "Salsa20 core, Trivium, SPECK", opt);

  const std::size_t base_inputs = opt.base(5000, 40000);
  const int epochs = opt.epochs(4, 10);

  struct Row {
    std::string label;
    std::string slug;  ///< JSON field prefix: <slug>_accuracy
    std::unique_ptr<core::Target> target;
  };
  std::vector<Row> rows;
  rows.push_back({"gift64, 4 rounds", "gift64_4r",
                  std::make_unique<core::Gift64Target>(4)});
  rows.push_back({"gift64, 6 rounds", "gift64_6r",
                  std::make_unique<core::Gift64Target>(6)});
  rows.push_back({"gift64, 9 rounds", "gift64_9r",
                  std::make_unique<core::Gift64Target>(9)});
  rows.push_back({"gift128, 4 rounds", "gift128_4r",
                  std::make_unique<core::Gift128Target>(4)});
  rows.push_back({"gift128, 8 rounds", "gift128_8r",
                  std::make_unique<core::Gift128Target>(8)});
  rows.push_back({"salsa20 core, 3 rounds", "salsa_3r",
                  std::make_unique<core::SalsaTarget>(3)});
  rows.push_back({"salsa20 core, 4 rounds", "salsa_4r",
                  std::make_unique<core::SalsaTarget>(4)});
  rows.push_back({"salsa20 core, 6 rounds", "salsa_6r",
                  std::make_unique<core::SalsaTarget>(6)});
  rows.push_back({"trivium, 384 init clocks", "trivium_384",
                  std::make_unique<core::TriviumTarget>(384)});
  rows.push_back({"trivium, 576 init clocks", "trivium_576",
                  std::make_unique<core::TriviumTarget>(576)});
  rows.push_back({"trivium, 1152 (full) clocks", "trivium_1152",
                  std::make_unique<core::TriviumTarget>(1152)});
  rows.push_back({"speck32/64, 5 rounds", "speck_5r",
                  std::make_unique<core::SpeckTarget>(5)});
  rows.push_back({"speck32/64, 7 rounds", "speck_7r",
                  std::make_unique<core::SpeckTarget>(7)});
  // --- the PR 8 cipher zoo, both difference sites where supported --------
  rows.push_back({"simon32/64, 7 rounds", "simon_7r",
                  std::make_unique<core::SimonTarget>(7)});
  rows.push_back({"simon32/64, 8 rounds", "simon_8r",
                  std::make_unique<core::SimonTarget>(8)});
  rows.push_back({"simon32/64, 7 rounds, rel-key", "simon_7r_rk",
                  std::make_unique<core::SimonTarget>(
                      7, std::vector<std::uint64_t>{0x40ULL, 0x4000ULL},
                      DiffSite::kRelatedKey)});
  rows.push_back({"simeck32/64, 7 rounds", "simeck_7r",
                  std::make_unique<core::SimeckTarget>(7)});
  rows.push_back({"simeck32/64, 7 rounds, rel-key", "simeck_7r_rk",
                  std::make_unique<core::SimeckTarget>(
                      7, std::vector<std::uint64_t>{0x40ULL, 0x4000ULL},
                      DiffSite::kRelatedKey)});
  rows.push_back({"present80, 3 rounds", "present_3r",
                  std::make_unique<core::PresentTarget>(3)});
  rows.push_back({"present80, 4 rounds", "present_4r",
                  std::make_unique<core::PresentTarget>(4)});
  rows.push_back({"present80, 4 rounds, rel-key", "present_4r_rk",
                  std::make_unique<core::PresentTarget>(
                      4, std::vector<std::uint64_t>{0x1ULL, 0x10ULL},
                      DiffSite::kRelatedKey)});
  rows.push_back({"chaskey, 2 rounds", "chaskey_2r",
                  std::make_unique<core::ChaskeyTarget>(2)});
  rows.push_back({"chaskey, 3 rounds", "chaskey_3r",
                  std::make_unique<core::ChaskeyTarget>(3)});
  rows.push_back({"chaskey, 3 rounds, rel-key", "chaskey_3r_rk",
                  std::make_unique<core::ChaskeyTarget>(
                      3, std::vector<std::uint64_t>{0x1ULL, 0x80000000ULL},
                      DiffSite::kRelatedKey)});

  util::JsonBuilder json;
  json.raw("options", bench::options_json(opt))
      .field("base_inputs", static_cast<std::uint64_t>(base_inputs))
      .field("epochs", epochs);

  std::printf("%-32s %-10s %-10s %-10s\n", "primitive", "accuracy", "1/t",
              "usable");
  bench::print_rule();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& target = *rows[i].target;
    util::Xoshiro256 rng(opt.seed + i);
    auto model = core::build_default_mlp(target.output_bytes() * 8,
                                         target.num_differences(), rng);
    core::DistinguisherOptions dopt;
    dopt.epochs = epochs;
    dopt.seed = opt.seed ^ (i * 104729);
    core::MLDistinguisher dist(std::move(model), dopt);
    util::Timer timer;
    const core::TrainReport rep = dist.train(target, base_inputs);
    const double p0 = 1.0 / static_cast<double>(target.num_differences());
    std::printf("%-32s %-10.4f %-10.4f %-10s (%.1fs)\n", rows[i].label.c_str(),
                rep.val_accuracy, p0, rep.usable ? "yes" : "no",
                timer.seconds());
    json.field(rows[i].slug + "_accuracy", rep.val_accuracy)
        .field(rows[i].slug + "_advantage", rep.val_accuracy - p0)
        .field(rows[i].slug + "_usable", rep.usable);
  }
  bench::print_rule();
  std::printf("expected: round-reduced targets usable, full-strength ones "
              "(trivium@1152) not.\n");
  bench::write_bench_json("ext_ciphers", json);
  return 0;
}
