// Quickstart: train an ML-assisted differential distinguisher on 6-round
// Gimli-Cipher and use it to identify an unknown oracle — the whole
// Algorithm 2 pipeline in ~40 lines of user code.
//
//   $ ./quickstart
#include <cstdio>
#include <memory>

#include "core/arch_zoo.hpp"
#include "core/distinguisher.hpp"
#include "core/online_game.hpp"
#include "core/targets.hpp"

int main() {
  using namespace mldist;

  // 1. Pick the target: 6-round Gimli-Cipher, nonce differences at the
  //    paper's byte positions 4 and 12 (t = 2 classes).
  const core::GimliCipherTarget target(/*total_rounds=*/6);

  // 2. Build a model: the paper's three-layer MLP (128, 1024, 2).
  util::Xoshiro256 rng(42);
  auto model = core::build_default_mlp(target.output_bytes() * 8,
                                       target.num_differences(), rng);

  // 3. Offline phase: collect labelled output differences and train.
  core::DistinguisherOptions options;
  options.epochs = 3;
  options.on_epoch = [](const nn::EpochStats& s) {
    std::printf("  epoch %d: train acc %.4f, val acc %.4f\n", s.epoch,
                s.train_accuracy, s.val_accuracy.value_or(0.0));
  };
  core::MLDistinguisher dist(std::move(model), options);
  std::printf("offline phase (training)...\n");
  const core::TrainReport train = dist.train(target, /*base_inputs=*/4000);
  std::printf("training accuracy a = %.4f (baseline 1/t = 0.5) -> %s\n\n",
              train.val_accuracy,
              train.usable ? "proceed to online phase" : "abort");
  if (!train.usable) return 1;

  // 4. Online phase: query an unknown oracle and decide CIPHER vs RANDOM.
  const core::CipherOracle cipher_oracle(target);
  const core::OnlineReport r1 = dist.test(cipher_oracle, 1000);
  std::printf("oracle #1: a' = %.4f, z = %.1f -> %s\n", r1.accuracy,
              r1.z_vs_random,
              r1.verdict == core::Verdict::kCipher ? "CIPHER" : "RANDOM");

  const core::RandomOracle random_oracle(target.num_differences(),
                                         target.output_bytes());
  const core::OnlineReport r2 = dist.test(random_oracle, 1000);
  std::printf("oracle #2: a' = %.4f, z = %.1f -> %s\n", r2.accuracy,
              r2.z_vs_random,
              r2.verdict == core::Verdict::kCipher ? "CIPHER" : "RANDOM");
  return 0;
}
