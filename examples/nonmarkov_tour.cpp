// A tour of the Markov/non-Markov distinction (§2.1) with code:
//  1. the exhaustive toy-GIFT example (true 2^-6 vs Markov 2^-9),
//  2. the dependence probe — how keying the rounds restores the Markov
//     property,
//  3. Salsa20-core and Trivium round-reduced differentials, the keyless
//     primitives the paper names as non-Markov.
//
//   $ ./nonmarkov_tour
#include <cmath>
#include <cstdio>

#include "analysis/markov.hpp"
#include "analysis/toy_gift.hpp"
#include "ciphers/gift_toy.hpp"
#include "ciphers/salsa20.hpp"
#include "ciphers/trivium.hpp"
#include "util/rng.hpp"

int main() {
  using namespace mldist;

  std::printf("1. Toy GIFT (Fig. 1): exhaustive truth vs Eq. 2\n");
  const auto v = analysis::verify_toy_example(
      analysis::paper_toy_characteristic());
  std::printf("   true probability   : 2^%.0f\n", std::log2(v.true_probability));
  std::printf("   Markov prediction  : 2^%.0f\n",
              std::log2(v.markov_probability));
  std::printf("   -> the product rule is off by 8x for keyless rounds.\n\n");

  std::printf("2. Keying the rounds restores the Markov property\n");
  const auto ch = analysis::paper_toy_characteristic();
  // Unkeyed: P(dW2 | X = gamma) depends violently on gamma.
  const auto unkeyed = analysis::markov_dependence_probe(
      [](std::uint32_t x) {
        return static_cast<std::uint32_t>(
            ciphers::toy_cipher(static_cast<std::uint8_t>(x)));
      },
      8, ch.dy1, ch.dw2);
  std::printf("   unkeyed : min %.3f  max %.3f  (spread = non-Markov)\n",
              unkeyed.min_prob, unkeyed.max_prob);
  // Keyed: average over a uniform whitening key before the rounds — the
  // per-gamma probability becomes the same for every gamma.
  double key_min = 1.0;
  double key_max = 0.0;
  for (std::uint32_t gamma = 0; gamma < 256; ++gamma) {
    int hits = 0;
    for (std::uint32_t k = 0; k < 256; ++k) {
      const std::uint8_t a =
          ciphers::toy_cipher(static_cast<std::uint8_t>(gamma ^ k));
      const std::uint8_t b = ciphers::toy_cipher(
          static_cast<std::uint8_t>((gamma ^ ch.dy1) ^ k));
      hits += ((a ^ b) == ch.dw2);
    }
    const double p = hits / 256.0;
    key_min = std::min(key_min, p);
    key_max = std::max(key_max, p);
  }
  std::printf("   keyed   : min %.5f  max %.5f  (flat = Markov)\n\n", key_min,
              key_max);

  std::printf("3. Keyless ARX/NLFSR primitives leave visible structure\n");
  util::Xoshiro256 rng(5);
  {
    ciphers::SalsaState s;
    for (auto& w : s) w = rng.next_u32();
    ciphers::SalsaState s2 = s;
    s2[6] ^= 1u;
    for (int rounds : {2, 4, 8, 20}) {
      const auto o1 = ciphers::salsa20_core(s, rounds);
      const auto o2 = ciphers::salsa20_core(s2, rounds);
      int flipped = 0;
      for (int i = 0; i < 16; ++i) flipped += __builtin_popcount(o1[i] ^ o2[i]);
      std::printf("   salsa20-core %2d rounds: %3d / 512 output bits flip\n",
                  rounds, flipped);
    }
  }
  {
    std::array<std::uint8_t, 10> key;
    rng.fill_bytes(key.data(), key.size());
    std::array<std::uint8_t, 10> iv;
    rng.fill_bytes(iv.data(), iv.size());
    auto iv2 = iv;
    iv2[0] ^= 0x80;
    for (int clocks : {192, 384, 768, 1152}) {
      ciphers::Trivium a(key, iv, clocks);
      ciphers::Trivium b(key, iv2, clocks);
      const auto ka = a.keystream(16);
      const auto kb = b.keystream(16);
      int flipped = 0;
      for (std::size_t i = 0; i < ka.size(); ++i) {
        flipped += __builtin_popcount(static_cast<unsigned>(ka[i] ^ kb[i]));
      }
      std::printf("   trivium %4d init clocks: %3d / 128 keystream bits flip\n",
                  clocks, flipped);
    }
  }
  std::printf("\n   random-looking would be ~50%%; anything else is signal a\n"
              "   classifier can learn — exactly what the ML distinguisher "
              "does.\n");
  return 0;
}
