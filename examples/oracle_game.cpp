// The classical distinguisher game of §1/§3 as an interactive-style
// simulation: a referee secretly flips a coin per round, hands the attacker
// an oracle, and the attacker must name it.  Prints a per-game log plus the
// final scoreboard.
//
//   $ ./oracle_game [games] [rounds]       (defaults: 10 games, 6 rounds)
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/arch_zoo.hpp"
#include "core/distinguisher.hpp"
#include "core/targets.hpp"

int main(int argc, char** argv) {
  using namespace mldist;
  const std::size_t games = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 10;
  const int rounds = argc > 2 ? std::atoi(argv[2]) : 6;

  const core::GimliCipherTarget target(rounds);
  std::printf("== offline phase: training a distinguisher for %s ==\n",
              target.name().c_str());
  util::Xoshiro256 rng(2024);
  auto model = core::build_default_mlp(128, 2, rng);
  core::DistinguisherOptions options;
  options.epochs = 3;
  core::MLDistinguisher dist(std::move(model), options);
  const core::TrainReport train = dist.train(target, 4000);
  std::printf("training accuracy a = %.4f\n\n", train.val_accuracy);
  if (!train.usable) {
    std::printf("no signal at %d rounds; Algorithm 2 aborts.\n", rounds);
    return 0;
  }

  std::printf("== online phase: %zu oracle games ==\n", games);
  const core::CipherOracle cipher(target);
  const core::RandomOracle random(target.num_differences(),
                                  target.output_bytes());
  util::Xoshiro256 referee(0xc0117055);
  std::size_t correct = 0;
  for (std::size_t g = 0; g < games; ++g) {
    const bool is_cipher = (referee.next_u64() & 1) != 0;
    const core::Oracle& oracle =
        is_cipher ? static_cast<const core::Oracle&>(cipher)
                  : static_cast<const core::Oracle&>(random);
    const core::OnlineReport rep =
        dist.test(oracle, 800, referee.next_u64() | 1);
    const bool guess_cipher = rep.verdict == core::Verdict::kCipher;
    const bool right = guess_cipher == is_cipher &&
                       rep.verdict != core::Verdict::kInconclusive;
    correct += right;
    std::printf("game %2zu: truth=%-6s  a'=%.4f  guess=%-12s  %s\n", g + 1,
                is_cipher ? "CIPHER" : "RANDOM", rep.accuracy,
                rep.verdict == core::Verdict::kCipher     ? "CIPHER"
                : rep.verdict == core::Verdict::kRandom   ? "RANDOM"
                                                          : "INCONCLUSIVE",
                right ? "correct" : "WRONG");
  }
  std::printf("\nscore: %zu / %zu\n", correct, games);
  return 0;
}
