// Plugging YOUR OWN cipher into the framework: implement core::Target once
// and the whole Algorithm 2 pipeline (data collection, training, online
// game) works unchanged.  The paper stresses this genericity: "our work is
// generic, and can be applied to any symmetric key primitive".
//
// The toy primitive here is a deliberately weak 16-bit Feistel network so
// the distinguisher's verdicts are easy to sanity-check by eye.
//
//   $ ./custom_cipher
#include <cstdio>
#include <memory>

#include "core/arch_zoo.hpp"
#include "core/distinguisher.hpp"
#include "core/targets.hpp"
#include "util/bits.hpp"

namespace {

using namespace mldist;

/// A weak 4-round 16-bit Feistel cipher with an 8-bit nonlinear round
/// function — plenty of differential structure left after 4 rounds.
class WeakFeistel {
 public:
  explicit WeakFeistel(std::uint32_t key) : key_(key) {}

  std::uint16_t encrypt(std::uint16_t p, int rounds = 4) const {
    std::uint8_t l = static_cast<std::uint8_t>(p >> 8);
    std::uint8_t r = static_cast<std::uint8_t>(p);
    for (int i = 0; i < rounds; ++i) {
      const std::uint8_t rk = static_cast<std::uint8_t>(key_ >> (8 * (i % 4)));
      const std::uint8_t f = static_cast<std::uint8_t>(
          ((r ^ rk) * 0x1d) ^ ((r ^ rk) >> 3));
      const std::uint8_t nl = static_cast<std::uint8_t>(r);
      r = static_cast<std::uint8_t>(l ^ f);
      l = nl;
    }
    return static_cast<std::uint16_t>((l << 8) | r);
  }

 private:
  std::uint32_t key_;
};

/// Adapter: everything the framework needs to know about the primitive.
class WeakFeistelTarget : public core::Target {
 public:
  std::size_t num_differences() const override { return 2; }
  std::size_t output_bytes() const override { return 2; }

  void sample(util::Xoshiro256& rng,
              std::vector<std::vector<std::uint8_t>>& out_diffs) const override {
    const WeakFeistel cipher(rng.next_u32());
    const std::uint16_t p = static_cast<std::uint16_t>(rng.next_u32());
    const std::uint16_t c = cipher.encrypt(p);
    const std::uint16_t deltas[2] = {0x0001, 0x0100};
    out_diffs.assign(2, std::vector<std::uint8_t>(2));
    for (int i = 0; i < 2; ++i) {
      const std::uint16_t d = static_cast<std::uint16_t>(
          cipher.encrypt(static_cast<std::uint16_t>(p ^ deltas[i])) ^ c);
      out_diffs[static_cast<std::size_t>(i)][0] = static_cast<std::uint8_t>(d);
      out_diffs[static_cast<std::size_t>(i)][1] =
          static_cast<std::uint8_t>(d >> 8);
    }
  }

  std::string name() const override { return "weak-feistel/4r"; }
};

}  // namespace

int main() {
  const WeakFeistelTarget target;
  std::printf("custom target: %s (t = %zu, %zu output bytes)\n",
              target.name().c_str(), target.num_differences(),
              target.output_bytes());

  mldist::util::Xoshiro256 rng(99);
  auto model =
      mldist::core::build_default_mlp(target.output_bytes() * 8, 2, rng);
  mldist::core::DistinguisherOptions options;
  options.epochs = 5;
  mldist::core::MLDistinguisher dist(std::move(model), options);

  const mldist::core::TrainReport train = dist.train(target, 5000);
  std::printf("training accuracy a = %.4f (1/t = 0.5): %s\n",
              train.val_accuracy,
              train.usable ? "distinguisher found" : "no distinguisher");

  const mldist::core::CipherOracle oracle(target);
  const mldist::core::OnlineReport rep = dist.test(oracle, 1500);
  std::printf("online a' = %.4f -> %s\n", rep.accuracy,
              rep.verdict == mldist::core::Verdict::kCipher ? "CIPHER"
                                                            : "RANDOM");
  return 0;
}
