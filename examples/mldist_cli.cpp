// mldist_cli — command-line driver for the distinguisher pipeline.
//
//   mldist_cli train --target gimli-hash --rounds 7 --samples 5000
//              --epochs 3 --model dist.nnb
//   mldist_cli test  --target gimli-hash --rounds 7 --model dist.nnb
//              --samples 2000 [--oracle random]
//   mldist_cli list
//
// Targets: gimli-hash, gimli-cipher, speck, gift64, salsa, trivium
// (--rounds means init clocks for trivium).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "core/arch_zoo.hpp"
#include "core/distinguisher.hpp"
#include "core/targets.hpp"
#include "nn/serialize.hpp"

namespace {

using namespace mldist;

std::unique_ptr<core::Target> make_target(const std::string& name, int rounds) {
  if (name == "gimli-hash") return std::make_unique<core::GimliHashTarget>(rounds);
  if (name == "gimli-cipher") return std::make_unique<core::GimliCipherTarget>(rounds);
  if (name == "speck") return std::make_unique<core::SpeckTarget>(rounds);
  if (name == "gift64") return std::make_unique<core::Gift64Target>(rounds);
  if (name == "gift128") return std::make_unique<core::Gift128Target>(rounds);
  if (name == "toy") return std::make_unique<core::ToyGiftTarget>();
  if (name == "salsa") return std::make_unique<core::SalsaTarget>(rounds);
  if (name == "trivium") return std::make_unique<core::TriviumTarget>(rounds);
  return nullptr;
}

struct Args {
  std::string command;
  std::string target = "gimli-hash";
  std::string model_path = "dist.nnb";
  std::string oracle = "cipher";
  int rounds = 7;
  int epochs = 3;
  std::size_t samples = 4000;
  std::uint64_t seed = 42;
};

bool parse(int argc, char** argv, Args& out) {
  if (argc < 2) return false;
  out.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--target") {
      const char* v = next();
      if (!v) return false;
      out.target = v;
    } else if (flag == "--rounds") {
      const char* v = next();
      if (!v) return false;
      out.rounds = std::atoi(v);
    } else if (flag == "--epochs") {
      const char* v = next();
      if (!v) return false;
      out.epochs = std::atoi(v);
    } else if (flag == "--samples") {
      const char* v = next();
      if (!v) return false;
      out.samples = std::strtoull(v, nullptr, 10);
    } else if (flag == "--model") {
      const char* v = next();
      if (!v) return false;
      out.model_path = v;
    } else if (flag == "--oracle") {
      const char* v = next();
      if (!v) return false;
      out.oracle = v;
    } else if (flag == "--seed") {
      const char* v = next();
      if (!v) return false;
      out.seed = std::strtoull(v, nullptr, 0);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  mldist_cli train --target T --rounds R --samples N "
               "--epochs E --model PATH [--seed S]\n"
               "  mldist_cli test  --target T --rounds R --samples N "
               "--model PATH [--oracle cipher|random]\n"
               "  mldist_cli list\n");
  return 2;
}

int cmd_list() {
  std::printf("targets:\n");
  std::printf("  gimli-hash    (rounds 1..24; paper: 6/7/8)\n");
  std::printf("  gimli-cipher  (total rounds before c0; paper: 6/7/8)\n");
  std::printf("  speck         (rounds 1..22; Gohr: 5..8)\n");
  std::printf("  gift64        (rounds 1..28)\n");
  std::printf("  gift128       (rounds 1..40)\n");
  std::printf("  toy           (the 8-bit Fig. 1 cipher; --rounds ignored)\n");
  std::printf("  salsa         (rounds 1..20)\n");
  std::printf("  trivium       (--rounds = init clocks, full = 1152)\n");
  std::printf("architectures: see core/arch_zoo.hpp (MLP I..VI, LSTM, CNN, "
              "gohr-net)\n");
  return 0;
}

int cmd_train(const Args& args) {
  auto target = make_target(args.target, args.rounds);
  if (!target) return usage();
  util::Xoshiro256 rng(args.seed);
  auto model = core::build_default_mlp(target->output_bytes() * 8,
                                       target->num_differences(), rng);
  core::DistinguisherOptions opt;
  opt.epochs = args.epochs;
  opt.seed = args.seed;
  opt.on_epoch = [](const nn::EpochStats& s) {
    std::printf("epoch %d: train %.4f  val %.4f\n", s.epoch, s.train_accuracy,
                s.val_accuracy);
  };
  core::MLDistinguisher dist(std::move(model), opt);
  const core::TrainReport rep = dist.train(*target, args.samples);
  std::printf("training accuracy a = %.4f over 2^%.1f queries -> %s\n",
              rep.val_accuracy, rep.log2_data,
              rep.usable ? "usable" : "NOT usable (Algorithm 2 aborts)");
  nn::save_params(dist.model(), args.model_path);
  std::printf("model written to %s\n", args.model_path.c_str());
  return rep.usable ? 0 : 1;
}

int cmd_test(const Args& args) {
  auto target = make_target(args.target, args.rounds);
  if (!target) return usage();
  util::Xoshiro256 rng(args.seed);
  auto model = core::build_default_mlp(target->output_bytes() * 8,
                                       target->num_differences(), rng);
  nn::load_params(*model, args.model_path);

  // Rebind the distinguisher to the loaded weights: a short re-train would
  // overwrite them, so we train a throwaway instance only to record t and
  // the reference accuracy, then swap the weights back in.
  core::DistinguisherOptions opt;
  opt.epochs = 1;
  opt.seed = args.seed;
  core::MLDistinguisher dist(std::move(model), opt);
  // Calibrate a on fresh cipher data without touching the loaded weights.
  const core::CipherOracle calibration(*target);
  {
    util::Xoshiro256 crng(args.seed ^ 0xca11);
    const nn::Dataset cal = core::collect_dataset(calibration, 500, crng);
    const auto pred = dist.model().predict(cal.x);
    std::size_t hits = 0;
    for (std::size_t i = 0; i < pred.size(); ++i) hits += (pred[i] == cal.y[i]);
    std::printf("calibration accuracy on fresh cipher data: %.4f\n",
                static_cast<double>(hits) / static_cast<double>(pred.size()));
  }

  const core::RandomOracle random_oracle(target->num_differences(),
                                         target->output_bytes());
  util::Xoshiro256 orng(args.seed ^ 0x0b5e);
  const core::Oracle& oracle =
      args.oracle == "random"
          ? static_cast<const core::Oracle&>(random_oracle)
          : static_cast<const core::Oracle&>(calibration);
  const nn::Dataset online = core::collect_dataset(oracle, args.samples, orng);
  const auto pred = dist.model().predict(online.x);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) hits += (pred[i] == online.y[i]);
  const double acc =
      static_cast<double>(hits) / static_cast<double>(pred.size());
  const double p0 = 1.0 / static_cast<double>(target->num_differences());
  std::printf("online accuracy a' = %.4f (1/t = %.4f) -> oracle looks like "
              "%s\n", acc, p0, acc > p0 + 3 * std::sqrt(p0 * (1 - p0) /
              static_cast<double>(pred.size()))
                  ? "CIPHER"
                  : "RANDOM");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args)) return usage();
  if (args.command == "list") return cmd_list();
  if (args.command == "train") return cmd_train(args);
  if (args.command == "test") return cmd_test(args);
  return usage();
}
