// mldist_cli — command-line driver for the distinguisher pipeline, built on
// the unified core::ExperimentConfig API.
//
//   mldist_cli train --target gimli-hash --rounds 7 --samples 5000
//              --epochs 3 --model dist.nnb [--threads 4] [--retries 3] [--json]
//   mldist_cli test  --target gimli-hash --rounds 7 --model dist.nnb
//              --samples 2000 [--oracle random] [--json]
//   mldist_cli list
//
// Targets: gimli-hash, gimli-cipher, speck, simon, simeck, present, chaskey,
// gift64, gift128, toy, salsa, trivium (--rounds means init clocks for
// trivium).  With --json the report
// is printed as one machine-readable JSON line (config, per-phase telemetry,
// verdict) instead of the human-readable text.
//
// Exit codes: 0 success, 1 distinguisher not usable, 2 usage/config error,
// 3 runtime failure (I/O, corrupt model file, ...).  Failures print a
// structured error — a JSON error record under --json — instead of crashing
// with an unhandled exception.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>

#include "campaign/specfile.hpp"
#include "campaign/supervisor.hpp"
#include "campaign/worker.hpp"
#include "core/distinguisher.hpp"
#include "core/experiment.hpp"
#include "core/model_io.hpp"
#include "core/targets.hpp"
#include "kernels/dispatch.hpp"
#include "nn/ir/pass.hpp"
#include "obs/log.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/server.hpp"
#include "obs/signal.hpp"
#include "obs/trace.hpp"
#include "serve/daemon.hpp"
#include "serve/registry.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"

namespace {

using namespace mldist;

// Distinct exit codes for scripting: configuration mistakes are retryable
// by the caller with different flags, runtime failures are not.
constexpr int kExitNotUsable = 1;
constexpr int kExitConfig = 2;
constexpr int kExitRuntime = 3;

struct Args {
  std::string command;
  std::string model_path = "dist.nnb";
  std::string oracle = "cipher";
  bool json = false;
  int serve_port = -1;  ///< -1 = metrics server off (0 = ephemeral port)
  bool passes_set = false;         ///< --passes was given
  std::vector<std::string> passes; ///< IR pipeline override when passes_set
  core::ExperimentConfig config;

  // --- campaign subcommand -------------------------------------------------
  std::string spec_path;             ///< --spec FILE (declarative grid)
  std::vector<std::string> targets;  ///< --targets a,b,c (grid axis)
  std::vector<int> rounds_list;      ///< --rounds-list 5,6,7
  std::vector<std::string> archs;    ///< --archs a,b
  campaign::SupervisorOptions sup;

  // --- serve subcommand ----------------------------------------------------
  std::string registry_dir;          ///< --registry DIR of *.nnb models
  serve::ServeOptions serve_opt;     ///< --port / --batch-* / --queue-max-rows
};

std::vector<std::string> split_commas(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == ',') {
      if (i > start) out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool parse(int argc, char** argv, Args& out) {
  if (argc < 2) return false;
  out.command = argv[1];
  out.config.rounds = 7;
  out.config.epochs = 3;
  out.config.seed = 42;
  out.config.offline_base_inputs = 4000;
  out.config.online_base_inputs = 4000;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--json") {
      out.json = true;
      continue;
    }
    if (flag == "--trace-workers") {
      // Per-worker trace lanes under DIR/obs, merged into
      // DIR/obs/campaign.trace.json at campaign end; implied by --trace.
      out.sup.trace_workers = true;
      continue;
    }
    if (flag == "--no-ship-telemetry") {
      out.sup.ship_telemetry = false;
      continue;
    }
    const char* v = next();
    if (!v) return false;
    if (flag == "--target") {
      out.config.target = v;
    } else if (flag == "--rounds") {
      out.config.rounds = std::atoi(v);
    } else if (flag == "--epochs") {
      out.config.epochs = std::atoi(v);
    } else if (flag == "--samples") {
      const std::size_t samples = std::strtoull(v, nullptr, 10);
      out.config.offline_base_inputs = samples;
      out.config.online_base_inputs = samples;
    } else if (flag == "--threads") {
      out.config.threads = std::strtoull(v, nullptr, 10);
    } else if (flag == "--kernel") {
      // Same resolver as the MLDIST_KERNEL environment variable; unknown or
      // unsupported names emit a structured obs::Logger warning (source
      // "--kernel") and fail the parse.
      kernels::Impl impl;
      if (!kernels::backend_from_string(v, impl, "--kernel")) return false;
      kernels::set_dispatch(impl);
    } else if (flag == "--passes") {
      try {
        out.passes = nn::ir::PassManager::parse_pipeline(v);
        out.passes_set = true;
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "--passes: %s\n", e.what());
        return false;
      }
    } else if (flag == "--arch") {
      out.config.arch = v;
    } else if (flag == "--diff-site") {
      try {
        core::parse_diff_site(v);  // fail at the flag, not deep in make_target
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "--diff-site: %s\n", e.what());
        return false;
      }
      out.config.diff_site = v;
    } else if (flag == "--diffs") {
      out.config.diffs.clear();
      for (const std::string& d : split_commas(v)) {
        out.config.diffs.push_back(std::strtoull(d.c_str(), nullptr, 0));
      }
    } else if (flag == "--spec") {
      out.spec_path = v;
    } else if (flag == "--targets") {
      out.targets = split_commas(v);
    } else if (flag == "--rounds-list") {
      for (const std::string& r : split_commas(v)) {
        out.rounds_list.push_back(std::atoi(r.c_str()));
      }
    } else if (flag == "--archs") {
      out.archs = split_commas(v);
    } else if (flag == "--workers") {
      out.sup.workers = std::strtoull(v, nullptr, 10);
    } else if (flag == "--cell-timeout") {
      out.sup.cell_timeout_s = std::atof(v);
    } else if (flag == "--max-cell-retries") {
      out.sup.max_cell_retries = std::atoi(v);
    } else if (flag == "--state-dir") {
      out.sup.state_dir = v;
    } else if (flag == "--registry") {
      out.registry_dir = v;
    } else if (flag == "--port") {
      out.serve_opt.port = static_cast<std::uint16_t>(std::atoi(v));
    } else if (flag == "--batch-window-us") {
      out.serve_opt.batch.batch_window_us = std::atoi(v);
    } else if (flag == "--batch-max-rows") {
      out.serve_opt.batch.batch_max_rows = std::strtoull(v, nullptr, 10);
    } else if (flag == "--queue-max-rows") {
      out.serve_opt.batch.queue_max_rows = std::strtoull(v, nullptr, 10);
    } else if (flag == "--read-timeout-ms") {
      out.serve_opt.read_timeout_ms = std::atoi(v);
    } else if (flag == "--slow-request-ms") {
      out.serve_opt.batch.slow_request_ms = std::atoi(v);
    } else if (flag == "--request-id-seed") {
      out.serve_opt.request_id_seed = std::strtoull(v, nullptr, 0);
    } else if (flag == "--model") {
      out.model_path = v;
    } else if (flag == "--oracle") {
      out.oracle = v;
    } else if (flag == "--seed") {
      out.config.seed = std::strtoull(v, nullptr, 0);
    } else if (flag == "--retries") {
      out.config.max_retries = std::atoi(v);
    } else if (flag == "--checkpoint") {
      out.config.checkpoint_path = v;
    } else if (flag == "--trace") {
      // Scoped-span tracing (obs/trace.hpp): every phase/layer/kernel span
      // of this run lands in `v` as Chrome trace_event JSON.  Equivalent to
      // setting MLDIST_TRACE=v in the environment.
      obs::Tracer::global().enable(v);
    } else if (flag == "--serve-metrics") {
      out.serve_port = std::atoi(v);
    } else if (flag == "--log-level") {
      obs::LogLevel lvl;
      if (!obs::parse_level(v, lvl)) {
        std::fprintf(stderr, "--log-level: unknown level '%s'\n", v);
        return false;
      }
      obs::Logger::global().set_level(lvl);
    } else if (flag == "--log-file") {
      std::string error;
      if (!obs::Logger::global().set_file(v, &error)) {
        std::fprintf(stderr, "--log-file: %s\n", error.c_str());
        return false;
      }
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  // Stamp provenance once flags are resolved: the active kernel and the
  // CRC of the config every artifact of this run will carry.
  obs::RunManifest& manifest = obs::RunManifest::current();
  manifest.kernel = kernels::impl_name(kernels::dispatch());
  manifest.set_config(out.config.to_json(), out.config.seed);
  return true;
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  mldist_cli train --target T --rounds R --samples N "
               "--epochs E --model PATH\n"
               "             [--arch A] [--threads W] [--seed S] "
               "[--kernel reference|blocked|avx2]\n"
               "             [--retries N] [--checkpoint PATH] [--json] "
               "[--trace FILE]\n"
               "             [--serve-metrics PORT] [--log-level L] "
               "[--log-file FILE]\n"
               "  mldist_cli test  --target T --rounds R --samples N "
               "--model PATH\n"
               "             [--oracle cipher|random] [--threads W] [--json] "
               "[--trace FILE]\n"
               "             [--serve-metrics PORT] [--log-level L] "
               "[--log-file FILE]\n"
               "  mldist_cli dump-ir [--arch A] [--target T] "
               "[--passes default|none|p1,p2,...]\n"
               "  mldist_cli campaign --state-dir DIR --spec FILE.json "
               "[--workers N]\n"
               "             [--cell-timeout S] [--max-cell-retries N] "
               "[--json]\n"
               "             [--trace-workers] [--no-ship-telemetry]\n"
               "  mldist_cli campaign --state-dir DIR [--targets a,b] "
               "[--rounds-list 5,6,7]\n"
               "             [--archs a,b] [--workers N] [--cell-timeout S] "
               "[--max-cell-retries N]\n"
               "             [--samples N] [--epochs E] [--seed S] [--json]\n"
               "  mldist_cli serve --registry DIR [--port P] "
               "[--batch-window-us N]\n"
               "             [--batch-max-rows N] [--queue-max-rows N] "
               "[--read-timeout-ms N]\n"
               "             [--slow-request-ms N] [--request-id-seed S]\n"
               "  mldist_cli list\n"
               "train/test also accept --passes to override the IR "
               "optimisation pipeline,\n"
               "and --diff-site plaintext|related-key with --diffs m1,m2 to "
               "pick the\n"
               "difference site and masks (see EXPERIMENTS.md).\n"
               "campaign shards the spec-file grid (or the legacy target x "
               "rounds x arch\n"
               "axes) over worker processes, journals results to "
               "DIR/campaign.state.jsonl +\n"
               "DIR/history.jsonl, and resumes from DIR after a crash, "
               "skipping finished cells.\n"
               "serve loads every *.nnb model in DIR and answers POST "
               "/v1/classify with\n"
               "batched inference until SIGINT/SIGTERM (see DESIGN.md "
               "section 15).\n");
  return kExitConfig;
}

int cmd_list() {
  std::printf("targets:\n");
  std::printf("  gimli-hash    (rounds 1..24; paper: 6/7/8)\n");
  std::printf("  gimli-cipher  (total rounds before c0; paper: 6/7/8)\n");
  std::printf("  speck         (rounds 1..22; Gohr: 5..8)\n");
  std::printf("  simon         (SIMON32/64, rounds 1..32)\n");
  std::printf("  simeck        (SIMECK32/64, rounds 1..32)\n");
  std::printf("  present       (PRESENT-80, rounds 1..31)\n");
  std::printf("  chaskey       (permutation rounds 1..16; spec: 8)\n");
  std::printf("  gift64        (rounds 1..28)\n");
  std::printf("  gift128       (rounds 1..40)\n");
  std::printf("  toy           (the 8-bit Fig. 1 cipher; --rounds ignored)\n");
  std::printf("  salsa         (rounds 1..20)\n");
  std::printf("  trivium       (--rounds = init clocks, full = 1152)\n");
  std::printf("architectures: default-mlp, gohr-net/D, and the Table-3 zoo "
              "(MLP I..VI, LSTM, CNN)\n");
  std::printf("difference sites: plaintext (default), related-key "
              "(speck/simon/simeck/present/chaskey)\n");
  return 0;
}

// Print the optimised inference IR of the configured architecture (after
// lowering and the active pass pipeline) without training anything.  The
// output format is golden-tested in tests/ir_test.cpp.
int cmd_dump_ir(const Args& args) {
  const std::unique_ptr<core::Target> target = args.config.make_target();
  std::unique_ptr<nn::Sequential> model = args.config.make_model(*target);
  if (args.passes_set) model->set_pipeline(args.passes);
  std::printf("%s", model->dump_ir().c_str());
  return 0;
}

int cmd_train(const Args& args) {
  std::unique_ptr<core::Target> target = args.config.make_target();
  core::ExperimentConfig config = args.config;
  if (!args.json) {
    config.on_epoch = [](const nn::EpochStats& s) {
      std::printf("epoch %d: train %.4f  val %.4f  (%.2fs)\n", s.epoch,
                  s.train_accuracy, s.val_accuracy.value_or(0.0), s.seconds);
    };
  }
  core::MLDistinguisher dist(*target, config);
  if (args.passes_set) dist.model().set_pipeline(args.passes);
  const core::TrainReport rep =
      dist.train(*target, config.offline_base_inputs);
  // Self-describing, CRC-checksummed format (core/model_io) so `test` can
  // rebuild the architecture and detect on-disk corruption.
  core::save_model(dist.model(), config.arch, target->output_bytes() * 8,
                   target->num_differences(), args.model_path);

  if (args.json) {
    util::JsonBuilder j;
    j.field("command", "train")
        .raw("manifest", obs::RunManifest::current().to_json())
        .raw("config", config.to_json())
        .field("target_name", target->name())
        .field("train_accuracy", rep.train_accuracy)
        .field("val_accuracy", rep.val_accuracy)
        .field("train_loss", rep.train_loss)
        .field("samples", rep.samples)
        .field("log2_data", rep.log2_data)
        .field("usable", rep.usable)
        .field("seconds_per_epoch", rep.seconds_per_epoch)
        .raw("collect", rep.collect.to_json())
        .raw("fit", rep.fit.to_json())
        .raw("robustness", rep.robustness.to_json())
        .raw("obs", obs::MetricsRegistry::global().snapshot().to_json())
        .field("model_path", args.model_path);
    std::printf("%s\n", j.str().c_str());
  } else {
    std::printf("offline collection: %zu queries in %.2fs (%.0f queries/s, "
                "%zu threads)\n",
                rep.collect.queries, rep.collect.seconds,
                rep.collect.queries_per_sec(), rep.collect.threads);
    if (rep.robustness.attempts > 1 || rep.robustness.degraded_to_baseline) {
      std::printf("recovery: %d attempts, %d divergences, %d rollbacks%s\n",
                  rep.robustness.attempts, rep.robustness.divergences,
                  rep.robustness.rollbacks,
                  rep.robustness.degraded_to_baseline
                      ? " -> DEGRADED to linear baseline"
                      : "");
    }
    std::printf("training accuracy a = %.4f over 2^%.1f queries -> %s\n",
                rep.val_accuracy, rep.log2_data,
                rep.usable ? "usable" : "NOT usable (Algorithm 2 aborts)");
    std::printf("model written to %s\n", args.model_path.c_str());
  }
  return rep.usable ? 0 : kExitNotUsable;
}

int cmd_test(const Args& args) {
  std::unique_ptr<core::Target> target = args.config.make_target();
  const core::ExperimentConfig& config = args.config;
  core::LoadedModel loaded = core::load_model(args.model_path);
  if (loaded.input_bits != target->output_bytes() * 8 ||
      loaded.classes != target->num_differences()) {
    throw std::invalid_argument(
        "model " + args.model_path + " (arch " + loaded.arch +
        ") does not match target " + target->name());
  }
  std::unique_ptr<nn::Sequential> model = std::move(loaded.model);
  if (args.passes_set) model->set_pipeline(args.passes);

  // Rebind the distinguisher to the loaded weights: we must not re-train
  // over them, so calibrate a on fresh cipher data with the weights frozen.
  core::DistinguisherOptions opt(config);
  core::MLDistinguisher dist(std::move(model), opt);
  const core::CipherOracle calibration(*target);
  double calibration_accuracy = 0.0;
  {
    core::CollectOptions copt = opt.collect_options(config.seed ^ 0xca11);
    const nn::Dataset cal =
        core::collect_dataset(calibration, 500, copt);
    const auto pred = dist.model().predict(cal.x);
    std::size_t hits = 0;
    for (std::size_t i = 0; i < pred.size(); ++i) hits += (pred[i] == cal.y[i]);
    calibration_accuracy =
        static_cast<double>(hits) / static_cast<double>(pred.size());
  }

  const core::RandomOracle random_oracle(target->num_differences(),
                                         target->output_bytes());
  const core::Oracle& oracle =
      args.oracle == "random"
          ? static_cast<const core::Oracle&>(random_oracle)
          : static_cast<const core::Oracle&>(calibration);
  core::PhaseTelemetry collect_tel;
  core::CollectOptions copt = opt.collect_options(config.seed ^ 0x0b5e);
  const nn::Dataset online = core::collect_dataset(
      oracle, config.online_base_inputs, copt, &collect_tel);
  const util::Timer predict_timer;
  const auto pred = dist.model().predict(online.x);
  core::PhaseTelemetry predict_tel;
  predict_tel.seconds = predict_timer.seconds();
  predict_tel.rows = pred.size();
  predict_tel.threads = collect_tel.threads;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) hits += (pred[i] == online.y[i]);
  const double acc =
      static_cast<double>(hits) / static_cast<double>(pred.size());
  const double p0 = 1.0 / static_cast<double>(target->num_differences());
  const bool looks_cipher =
      acc > p0 + 3 * std::sqrt(p0 * (1 - p0) /
                               static_cast<double>(pred.size()));

  if (args.json) {
    util::JsonBuilder j;
    j.field("command", "test")
        .raw("manifest", obs::RunManifest::current().to_json())
        .raw("config", config.to_json())
        .field("target_name", target->name())
        .field("oracle", args.oracle)
        .field("calibration_accuracy", calibration_accuracy)
        .field("online_accuracy", acc)
        .field("random_guess", p0)
        .field("samples", pred.size())
        .field("verdict", looks_cipher ? "CIPHER" : "RANDOM")
        .raw("collect", collect_tel.to_json())
        .raw("predict", predict_tel.to_json())
        .raw("obs", obs::MetricsRegistry::global().snapshot().to_json())
        .field("model_path", args.model_path);
    std::printf("%s\n", j.str().c_str());
  } else {
    std::printf("calibration accuracy on fresh cipher data: %.4f\n",
                calibration_accuracy);
    std::printf("online collection: %zu queries in %.2fs (%.0f queries/s, "
                "%zu threads)\n",
                collect_tel.queries, collect_tel.seconds,
                collect_tel.queries_per_sec(), collect_tel.threads);
    std::printf("online accuracy a' = %.4f (1/t = %.4f) -> oracle looks like "
                "%s\n",
                acc, p0, looks_cipher ? "CIPHER" : "RANDOM");
  }
  return 0;
}

// Run (or resume) a sharded campaign over the target x rounds x arch grid.
// Exit 0 when every cell completed, 1 when the campaign finished with
// failed cells or was interrupted (partial results are on disk either way).
int cmd_campaign(const Args& args) {
  if (args.sup.state_dir.empty()) {
    throw std::invalid_argument("campaign: --state-dir is required");
  }
  campaign::CampaignSpec spec;
  if (!args.spec_path.empty()) {
    // The spec file owns the whole grid; mixing in legacy axis flags would
    // silently lose whichever side we ignored, so refuse the combination.
    if (!args.targets.empty() || !args.rounds_list.empty() ||
        !args.archs.empty()) {
      throw std::invalid_argument(
          "campaign: --spec carries the full grid; drop the legacy "
          "--targets/--rounds-list/--archs flags (put those axes in the "
          "spec file's \"grid\" blocks instead)");
    }
    spec = campaign::load_spec_file(args.spec_path);
  } else {
    spec.base = args.config;
    spec.base.on_epoch = nullptr;
    spec.targets = args.targets;
    spec.rounds = args.rounds_list;
    spec.archs = args.archs;
    spec.seed = args.config.seed;
  }

  const campaign::CampaignReport rep =
      campaign::Supervisor(spec, args.sup).run();

  if (args.json) {
    util::JsonBuilder j;
    j.field("command", "campaign")
        .raw("manifest", obs::RunManifest::current().to_json())
        .raw("config", args.config.to_json())
        .raw("report", rep.to_json())
        .field("state_dir", args.sup.state_dir);
    std::printf("%s\n", j.str().c_str());
  } else {
    std::printf("campaign: %zu cells -> %zu done, %zu skipped (previous "
                "runs), %zu failed\n",
                rep.cells_total, rep.cells_done, rep.cells_skipped,
                rep.cells_failed);
    std::printf("  retries %zu, reclaims %zu, worker restarts %zu, %.1fs%s\n",
                rep.retries, rep.reclaims, rep.worker_restarts, rep.seconds,
                rep.interrupted ? "  [interrupted -- rerun to resume]" : "");
    std::printf("  results: %s/history.jsonl\n", args.sup.state_dir.c_str());
  }
  return rep.complete() && rep.cells_failed == 0 && !rep.interrupted
             ? 0
             : kExitNotUsable;
}

// Serve every model in --registry until SIGINT/SIGTERM.  The daemon thread
// owns all the I/O; main just parks on the cooperative interrupt flag so
// ^C drains in-flight batches instead of dropping them.
int cmd_serve(const Args& args) {
  if (args.registry_dir.empty()) {
    throw std::invalid_argument("serve: --registry DIR is required");
  }
  serve::ModelRegistry registry;
  const std::size_t loaded = registry.load_dir(args.registry_dir);
  if (loaded == 0) {
    throw std::invalid_argument("serve: no *.nnb models in " +
                                args.registry_dir);
  }
  serve::ServeDaemon daemon(registry);
  std::string error;
  if (!daemon.start(args.serve_opt, &error)) {
    throw std::runtime_error("serve: " + error);
  }
  obs::RunStatus::global().set_phase("serve");
  if (!args.json) {
    std::printf("serving %zu model%s on http://localhost:%u/v1/classify "
                "(^C to stop)\n",
                loaded, loaded == 1 ? "" : "s", daemon.port());
  }
  while (!obs::interrupt_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  daemon.stop();
  if (args.json) {
    util::JsonBuilder j;
    j.field("command", "serve")
        .raw("manifest", obs::RunManifest::current().to_json())
        .field("models", static_cast<std::uint64_t>(loaded))
        .field("requests", daemon.requests())
        .field("rejected", daemon.rejected());
    std::printf("%s\n", j.str().c_str());
  } else {
    std::printf("serve: drained; %llu requests (%llu rejected)\n",
                static_cast<unsigned long long>(daemon.requests()),
                static_cast<unsigned long long>(daemon.rejected()));
  }
  return 0;
}

/// Print a structured error record (JSON under --json) and return the exit
/// code, instead of dying with an unhandled exception.
int report_error(bool json, const char* kind, const std::string& what,
                 int code) {
  if (json) {
    util::JsonBuilder j;
    j.field("error", true).field("kind", kind).field("what", what)
        .field("exit_code", code);
    std::printf("%s\n", j.str().c_str());
  } else {
    std::fprintf(stderr, "mldist_cli: %s error: %s\n", kind, what.c_str());
  }
  return code;
}

}  // namespace

namespace {

/// Explicit flush so the trace file exists even when the caller inspects it
/// while the process is still alive; the atexit flush (installed by
/// enable()) remains as the crash-path backstop.
int finish_trace(int code) {
  obs::Tracer& tracer = obs::Tracer::global();
  if (!tracer.path().empty()) {
    std::string error;
    if (!tracer.flush(&error)) {
      std::fprintf(stderr, "mldist_cli: trace flush failed: %s\n",
                   error.c_str());
      return code == 0 ? kExitRuntime : code;
    }
  }
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  // Campaign worker processes are exec'd copies of this binary; hand the
  // process over before any normal-mode setup runs.
  if (const int worker_rc = campaign::worker_entry(argc, argv);
      worker_rc >= 0) {
    return worker_rc;
  }
  Args args;
  if (!parse(argc, argv, args)) return usage();
  // SIGTERM/SIGINT: single-experiment commands drain the log ring, stamp an
  // "interrupted" RunStatus and die with the signal (immediate mode); the
  // campaign supervisor and the serving daemon instead observe the flag and
  // shut down cooperatively — the campaign journals the interruption so a
  // rerun resumes, the daemon drains its batch queues before exiting.
  obs::install_interrupt_handlers(
      /*exit_immediately=*/args.command != "campaign" &&
      args.command != "serve");
  // Live observability (off by default): /metrics, /healthz and /runz for
  // the duration of the run.  The server thread only ever reads snapshots,
  // so it cannot perturb the pipeline's determinism.
  obs::MetricsServer server;
  if (args.serve_port >= 0) {
    std::string error;
    if (!server.start(static_cast<std::uint16_t>(args.serve_port), &error)) {
      return report_error(args.json, "config", "--serve-metrics: " + error,
                          kExitConfig);
    }
    if (!args.json) {
      std::printf("metrics server on http://localhost:%u/metrics\n",
                  server.port());
    }
  }
  try {
    if (args.command == "list") return cmd_list();
    if (args.command == "dump-ir") return cmd_dump_ir(args);
    if (args.command == "train") return finish_trace(cmd_train(args));
    if (args.command == "test") return finish_trace(cmd_test(args));
    if (args.command == "campaign") return finish_trace(cmd_campaign(args));
    if (args.command == "serve") return finish_trace(cmd_serve(args));
    return usage();
  } catch (const std::invalid_argument& e) {
    // Bad target/arch names, model/target mismatches: caller-fixable.
    return report_error(args.json, "config", e.what(), kExitConfig);
  } catch (const std::exception& e) {
    // I/O failures, corrupt model files, internal errors.
    return report_error(args.json, "runtime", e.what(), kExitRuntime);
  }
}
