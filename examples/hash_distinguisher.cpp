// The paper's §4 Gimli-Hash scenario, end to end, with the model persisted
// between the offline and online phases (the paper stores a Keras ".h5";
// we store a ".nnb").
//
//   $ ./hash_distinguisher [rounds]        (default 7)
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/arch_zoo.hpp"
#include "core/distinguisher.hpp"
#include "core/targets.hpp"
#include "nn/serialize.hpp"

int main(int argc, char** argv) {
  using namespace mldist;
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 7;
  if (rounds < 1 || rounds > 24) {
    std::fprintf(stderr, "rounds must be in [1, 24]\n");
    return 1;
  }

  // Data collection exactly as in §4: zero-padded single-block message,
  // flip the LSB of message byte 4 or byte 12, observe the first 128 hash
  // bits.
  const core::GimliHashTarget target(rounds);
  std::printf("target: %s, differences at message bytes 4 and 12\n",
              target.name().c_str());

  util::Xoshiro256 rng(7);
  auto model = core::build_default_mlp(128, 2, rng);
  core::DistinguisherOptions options;
  options.epochs = 3;
  core::MLDistinguisher dist(std::move(model), options);

  std::printf("offline phase: 5000 base messages (x3 hash queries each)\n");
  const core::TrainReport train = dist.train(target, 5000);
  std::printf("training accuracy a = %.4f (2^%.1f offline queries)\n",
              train.val_accuracy, train.log2_data);
  if (!train.usable) {
    std::printf("a is not significantly above 1/2: Algorithm 2 aborts.\n");
    return 0;
  }

  // Persist the model — the hand-off between offline and online phases.
  const std::string path = "gimli_hash_distinguisher.nnb";
  nn::save_params(dist.model(), path);
  std::printf("model saved to %s (%zu parameters)\n\n", path.c_str(),
              dist.model().param_count());

  // A "fresh" attacker process would rebuild the architecture, reload the
  // weights, and classify online oracle data with them:
  util::Xoshiro256 rng2(1234);
  auto online_model = core::build_default_mlp(128, 2, rng2);
  nn::load_params(*online_model, path);
  std::printf("model reloaded; running the online phase...\n");

  const core::CipherOracle oracle(target);
  const core::OnlineReport rep = dist.test(oracle, 2000);
  std::printf("online phase: a' = %.4f over 2^%.1f queries -> verdict: %s\n",
              rep.accuracy, rep.log2_data,
              rep.verdict == core::Verdict::kCipher ? "CIPHER" : "RANDOM");
  std::remove(path.c_str());
  return 0;
}
