// Spec-file tests (PR 8): the declarative campaign grid.  Golden
// parse -> expand_grid snapshot, error reporting with origin:line context,
// and the resume guard that rejects a spec edit which changes the expanded
// grid against an existing campaign.state.jsonl.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/spec.hpp"
#include "campaign/specfile.hpp"
#include "campaign/supervisor.hpp"
#include "core/experiment.hpp"

namespace {

using namespace mldist;
using campaign::Cell;
using campaign::CampaignSpec;
using campaign::SpecError;

const char* kGoldenSpec = R"({
  "name": "golden",
  "seed": 99,
  "defaults": {
    "epochs": 2,
    "offline_base_inputs": 128,
    "online_base_inputs": 64,
    "threads": 1
  },
  "grid": [
    {
      "targets": ["simon", "simeck"],
      "rounds": [7, 8],
      "archs": ["default-mlp"]
    },
    {
      "targets": ["present"],
      "rounds": [4],
      "diff_sites": ["plaintext", "related-key"],
      "diff_sets": [["0x1", "0x10"]],
      "offline_base_inputs": [64, 256],
      "overrides": { "epochs": 1, "games": 3 }
    }
  ]
})";

// --- golden expansion -------------------------------------------------------

TEST(SpecFile, GoldenExpansionSnapshot) {
  const CampaignSpec spec = campaign::parse_spec_text(kGoldenSpec, "golden");
  EXPECT_EQ(spec.name, "golden");
  EXPECT_EQ(spec.seed, 99u);
  const std::vector<Cell> cells = campaign::expand_grid(spec);
  ASSERT_EQ(cells.size(), 8u);

  // Block 1: target-major, then rounds, inheriting the defaults.
  const std::vector<std::pair<std::string, int>> block1 = {
      {"simon", 7}, {"simon", 8}, {"simeck", 7}, {"simeck", 8}};
  for (std::size_t i = 0; i < block1.size(); ++i) {
    EXPECT_EQ(cells[i].config.target, block1[i].first) << "cell " << i;
    EXPECT_EQ(cells[i].config.rounds, block1[i].second) << "cell " << i;
    EXPECT_EQ(cells[i].config.arch, "default-mlp") << "cell " << i;
    EXPECT_EQ(cells[i].config.diff_site, "plaintext") << "cell " << i;
    EXPECT_TRUE(cells[i].config.diffs.empty()) << "cell " << i;
    EXPECT_EQ(cells[i].config.epochs, 2) << "cell " << i;
    EXPECT_EQ(cells[i].config.offline_base_inputs, 128u) << "cell " << i;
    EXPECT_EQ(cells[i].index, i) << "cell " << i;
  }

  // Block 2: diff_site varies before the budget axis; the block overrides
  // (epochs 1, games 3) apply to every cell of the block only.
  const std::vector<std::pair<std::string, std::size_t>> block2 = {
      {"plaintext", 64}, {"plaintext", 256},
      {"related-key", 64}, {"related-key", 256}};
  for (std::size_t i = 0; i < block2.size(); ++i) {
    const Cell& cell = cells[4 + i];
    EXPECT_EQ(cell.config.target, "present") << "cell " << 4 + i;
    EXPECT_EQ(cell.config.diff_site, block2[i].first) << "cell " << 4 + i;
    EXPECT_EQ(cell.config.offline_base_inputs, block2[i].second)
        << "cell " << 4 + i;
    EXPECT_EQ(cell.config.diffs,
              (std::vector<std::uint64_t>{0x1ULL, 0x10ULL}))
        << "cell " << 4 + i;
    EXPECT_EQ(cell.config.epochs, 1) << "cell " << 4 + i;
    EXPECT_EQ(cell.config.games, 3u) << "cell " << 4 + i;
    EXPECT_EQ(cell.index, 4 + i) << "cell " << 4 + i;
  }

  // Per-cell identity: id = cell_id(config), derived per-index seeds, and a
  // stable grid fingerprint over the whole expansion.
  for (const Cell& cell : cells) {
    EXPECT_EQ(cell.id, campaign::cell_id(cell.config));
  }
  EXPECT_NE(cells[0].config.seed, cells[1].config.seed);
  EXPECT_EQ(campaign::grid_crc(cells),
            campaign::grid_crc(campaign::expand_grid(spec)));
}

TEST(SpecFile, CostOrdersHeavyArchitecturesFirst) {
  // cell_cost drives the lease order: an LSTM cell must cost more than the
  // same-budget MLP cell, and a bigger budget more than a smaller one.
  core::ExperimentConfig mlp;
  mlp.arch = "default-mlp";
  core::ExperimentConfig lstm = mlp;
  lstm.arch = "LSTM I";
  EXPECT_GT(campaign::cell_cost(lstm), campaign::cell_cost(mlp));
  core::ExperimentConfig big = mlp;
  big.offline_base_inputs = mlp.offline_base_inputs * 4;
  EXPECT_GT(campaign::cell_cost(big), campaign::cell_cost(mlp));
}

// --- error reporting --------------------------------------------------------

/// Expect parse_spec_text to throw a SpecError whose message contains
/// `needle` and whose line matches.
void expect_error(const std::string& text, int line,
                  const std::string& needle) {
  try {
    (void)campaign::parse_spec_text(text, "spec.json");
    FAIL() << "expected SpecError containing \"" << needle << "\"";
  } catch (const SpecError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(needle), std::string::npos) << what;
    EXPECT_NE(what.find("spec.json:" + std::to_string(line)),
              std::string::npos)
        << what;
    EXPECT_EQ(e.line(), line) << what;
  }
}

TEST(SpecFile, UnknownKeysReportLineAndCandidates) {
  expect_error("{\n \"nmae\": \"x\"\n}", 2,
               "unknown key \"nmae\" in the spec");
  expect_error("{\n \"grid\": [\n  {\"tragets\": [\"toy\"]}\n ]\n}", 3,
               "known keys: targets, rounds, archs, diff_sites");
  expect_error(
      "{\n \"defaults\": {\n  \"epoch\": 3\n },\n \"grid\": []\n}", 3,
      "unknown key \"epoch\" in defaults");
  expect_error(
      "{\n \"grid\": [\n  {\"overrides\":\n   {\"seed\": 1}\n  }\n ]\n}", 4,
      "unknown key \"seed\" in overrides");
}

TEST(SpecFile, BadValuesReportLineAndExpectation) {
  expect_error("{\n \"seed\": \"not a number\"\n}", 2,
               "not a valid integer");
  expect_error("{\n \"seed\": 1.5\n}", 2, "non-negative integer");
  expect_error("{\n \"grid\": [\n  {\"rounds\": [\"five\"]}\n ]\n}", 3,
               "must be a number");
  expect_error("{\n \"grid\": [\n  {\"diff_sites\": [\"both\"]}\n ]\n}", 3,
               "both");
  expect_error("{\n \"grid\": 3\n}", 2, "must be an array");
}

// Regression (satellite fix): the numeric converters used strtol/strtod
// with a null end pointer, so an out-of-range literal was silently
// truncated (or wrapped) into the config instead of failing the parse.
// Every malformed numeric must now surface as a SpecError naming the key
// and the spec file:line.
TEST(SpecFile, MalformedNumericsAreSpecErrorsNotSilentTruncation) {
  const auto with_grid = [](const std::string& defaults_line) {
    return "{\n \"defaults\": {\n  " + defaults_line +
           "\n },\n \"grid\": [ {\"targets\": [\"toy\"], \"rounds\": [1]} "
           "]\n}";
  };
  expect_error(with_grid("\"epochs\": 99999999999"), 3,
               "out of integer range");
  expect_error(with_grid("\"epochs\": -99999999999"), 3,
               "out of integer range");
  expect_error(with_grid("\"z_threshold\": 1e999"), 3, "out of range");
  expect_error(with_grid("\"learning_rate\": 1e999"), 3, "out of range");
  // In range still parses exactly.
  const CampaignSpec ok = campaign::parse_spec_text(
      with_grid("\"z_threshold\": 2.5"), "spec.json");
  EXPECT_DOUBLE_EQ(ok.base.z_threshold, 2.5);
}

// Regression (satellite fix): cell_cost ranked "gohr-net/<depth>" with an
// unchecked strtod of the suffix; a malformed depth now falls back to the
// generic heavy-architecture weight instead of feeding garbage into the
// schedule.
TEST(SpecFile, CellCostHandlesMalformedGohrDepth) {
  core::ExperimentConfig deep;
  deep.target = "toy";
  deep.arch = "gohr-net/3";
  core::ExperimentConfig shallow = deep;
  shallow.arch = "gohr-net/1";
  EXPECT_GT(campaign::cell_cost(deep), campaign::cell_cost(shallow));
  core::ExperimentConfig bogus = deep;
  bogus.arch = "gohr-net/x";
  EXPECT_GT(campaign::cell_cost(bogus), 0.0);  // fallback weight, no throw
}

TEST(SpecFile, SyntaxErrorsReportLine) {
  expect_error("{\n \"name\": \"x\",\n}", 3, "expected a quoted object key");
  expect_error("{\n \"name\": \"x\"\n} trailing", 3, "trailing content");
  expect_error("{\n \"name\": \"unterminated\n}", 2, "unterminated string");
}

TEST(SpecFile, ValidationCatchesImpossibleCells) {
  // Structurally valid JSON whose cells cannot be instantiated must fail at
  // parse time (naming the cell), not in a worker.
  const char* bad_target = R"({
    "grid": [ {"targets": ["no-such-cipher"], "rounds": [3]} ]
  })";
  EXPECT_THROW((void)campaign::parse_spec_text(bad_target, "s"), SpecError);
  const char* bad_site = R"({
    "grid": [ {"targets": ["gimli-hash"], "rounds": [6],
               "diff_sites": ["related-key"]} ]
  })";
  EXPECT_THROW((void)campaign::parse_spec_text(bad_site, "s"), SpecError);
  const char* empty_grid = R"({ "name": "x", "grid": [] })";
  EXPECT_THROW((void)campaign::parse_spec_text(empty_grid, "s"), SpecError);
}

// --- resume guard -----------------------------------------------------------

class TempDir {
 public:
  explicit TempDir(const char* tag) {
    static int counter = 0;
    path_ = (std::filesystem::temp_directory_path() /
             ("mldist-specfile-" + std::to_string(::getpid()) + "-" +
              std::to_string(counter++) + "-" + tag))
                .string();
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

CampaignSpec tiny_toy_spec(const char* rounds_json) {
  const std::string text = std::string(R"({
    "name": "resume-guard",
    "seed": 5,
    "defaults": {"epochs": 1, "batch_size": 32, "threads": 1,
                 "offline_base_inputs": 64, "online_base_inputs": 32,
                 "games": 2, "max_retries": 0},
    "grid": [ {"targets": ["toy"], "rounds": )") +
                           rounds_json + "} ]\n}";
  return campaign::parse_spec_text(text, "resume.json");
}

TEST(SpecFile, GridChangeRejectedOnResume) {
  TempDir dir("resume");
  campaign::SupervisorOptions opt;
  opt.state_dir = dir.path();
  opt.workers = 0;

  const CampaignSpec original = tiny_toy_spec("[1, 2]");
  const campaign::CampaignReport first =
      campaign::Supervisor(original, opt).run();
  ASSERT_EQ(first.cells_done, 2u);

  // Same spec resumes cleanly (everything already done -> skipped).
  const campaign::CampaignReport again =
      campaign::Supervisor(original, opt).run();
  EXPECT_EQ(again.cells_skipped, 2u);
  EXPECT_EQ(again.cells_done, 0u);

  // An edited grid (extra rounds cell) must be rejected against the
  // existing journal, with both fingerprints named in the error.
  const CampaignSpec edited = tiny_toy_spec("[1, 2, 3]");
  try {
    (void)campaign::Supervisor(edited, opt).run();
    FAIL() << "expected the resume guard to reject the edited grid";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("does not match the existing journal"),
              std::string::npos)
        << what;
  }
}

}  // namespace
