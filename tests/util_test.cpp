#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <numeric>
#include <set>
#include <stdexcept>

#include <atomic>

#include "util/bits.hpp"
#include "util/hex.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace mldist::util;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, SplitMix64KnownValue) {
  // Reference value from the splitmix64 public-domain implementation.
  std::uint64_t s = 0;
  EXPECT_EQ(splitmix64_next(s), 0xe220a8397b1dcdafULL);
}

TEST(Rng, NextBelowRespectsBound) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, DoubleInUnitInterval) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, DoubleMeanNearHalf) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(Rng, GaussianMoments) {
  Xoshiro256 rng(13);
  constexpr int kN = 20000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.next_gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.05);
  EXPECT_NEAR(sq / kN, 1.0, 0.05);
}

TEST(Rng, FillBytesDeterministicAndBalanced) {
  Xoshiro256 a(99);
  Xoshiro256 b(99);
  auto va = a.bytes(1000);
  auto vb = b.bytes(1000);
  EXPECT_EQ(va, vb);
  const int weight = hamming_weight(va);
  EXPECT_NEAR(weight, 4000, 300);  // 8000 bits, half set
}

TEST(Rng, FillBytesOddLengths) {
  Xoshiro256 rng(5);
  for (std::size_t n : {0u, 1u, 3u, 7u, 9u, 15u}) {
    EXPECT_EQ(rng.bytes(n).size(), n);
  }
}

TEST(Rng, ForkIndependentButDeterministic) {
  Xoshiro256 a(21);
  Xoshiro256 b(21);
  Xoshiro256 fa = a.fork();
  Xoshiro256 fb = b.fork();
  EXPECT_EQ(fa.next_u64(), fb.next_u64());
  // Parent stream continues after fork identically.
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UsableWithStdShuffle) {
  std::vector<int> v(20);
  std::iota(v.begin(), v.end(), 0);
  const auto orig = v;
  Xoshiro256 rng(17);
  std::shuffle(v.begin(), v.end(), rng);
  EXPECT_NE(v, orig);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

// ---------------------------------------------------------------------------
// bits
// ---------------------------------------------------------------------------

TEST(Bits, LoadStoreRoundTrip) {
  std::uint8_t buf[4];
  for (std::uint32_t v : {0u, 1u, 0xdeadbeefu, 0xffffffffu, 0x01020304u}) {
    store_u32_le(buf, v);
    EXPECT_EQ(load_u32_le(buf), v);
  }
}

TEST(Bits, LoadIsLittleEndian) {
  const std::uint8_t buf[4] = {0x01, 0x02, 0x03, 0x04};
  EXPECT_EQ(load_u32_le(buf), 0x04030201u);
}

TEST(Bits, XorVec) {
  const std::vector<std::uint8_t> a = {0xff, 0x00, 0xaa};
  const std::vector<std::uint8_t> b = {0x0f, 0xf0, 0xaa};
  const auto c = xor_vec(a, b);
  EXPECT_EQ(c, (std::vector<std::uint8_t>{0xf0, 0xf0, 0x00}));
}

TEST(Bits, XorVecLengthMismatchThrows) {
  const std::vector<std::uint8_t> a = {1, 2};
  const std::vector<std::uint8_t> b = {1};
  EXPECT_THROW((void)xor_vec(a, b), std::invalid_argument);
}

TEST(Bits, BitsToFloatsLsbFirst) {
  const std::vector<std::uint8_t> in = {0b00000101, 0b10000000};
  float out[16];
  bits_to_floats(in, out);
  EXPECT_FLOAT_EQ(out[0], 1.0f);
  EXPECT_FLOAT_EQ(out[1], 0.0f);
  EXPECT_FLOAT_EQ(out[2], 1.0f);
  for (int i = 3; i < 15; ++i) EXPECT_FLOAT_EQ(out[i], 0.0f);
  EXPECT_FLOAT_EQ(out[15], 1.0f);
}

TEST(Bits, GetFlipBit) {
  std::uint8_t buf[2] = {0, 0};
  EXPECT_EQ(get_bit(buf, 11), 0);
  flip_bit(buf, 11);
  EXPECT_EQ(get_bit(buf, 11), 1);
  EXPECT_EQ(buf[1], 0x08);
  flip_bit(buf, 11);
  EXPECT_EQ(buf[1], 0x00);
}

TEST(Bits, HammingWeight) {
  EXPECT_EQ(hamming_weight(std::vector<std::uint8_t>{}), 0);
  EXPECT_EQ(hamming_weight(std::vector<std::uint8_t>{0xff}), 8);
  EXPECT_EQ(hamming_weight(std::vector<std::uint8_t>{0x0f, 0xf0, 0x01}), 9);
}

// ---------------------------------------------------------------------------
// hex
// ---------------------------------------------------------------------------

TEST(Hex, RoundTrip) {
  const std::vector<std::uint8_t> bytes = {0x00, 0x12, 0xab, 0xff};
  EXPECT_EQ(to_hex(bytes), "0012abff");
  EXPECT_EQ(from_hex("0012abff"), bytes);
}

TEST(Hex, AcceptsUppercaseAndWhitespace) {
  EXPECT_EQ(from_hex("DE AD\nBE EF"),
            (std::vector<std::uint8_t>{0xde, 0xad, 0xbe, 0xef}));
}

TEST(Hex, RejectsMalformed) {
  EXPECT_THROW((void)from_hex("abc"), std::invalid_argument);
  EXPECT_THROW((void)from_hex("zz"), std::invalid_argument);
}

TEST(Hex, EmptyInput) {
  EXPECT_EQ(to_hex(std::vector<std::uint8_t>{}), "");
  EXPECT_TRUE(from_hex("").empty());
}

// ---------------------------------------------------------------------------
// stats
// ---------------------------------------------------------------------------

TEST(Stats, MeanAndStddev) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({2.0, 4.0, 6.0}), 4.0);
  EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
  EXPECT_NEAR(stddev({2.0, 4.0, 6.0}), 2.0, 1e-12);
}

TEST(Stats, BinomialSummary) {
  const auto s = binomial_summary(60, 100);
  EXPECT_DOUBLE_EQ(s.p_hat, 0.6);
  EXPECT_NEAR(s.std_error, std::sqrt(0.6 * 0.4 / 100), 1e-12);
  EXPECT_LT(s.ci_low, 0.6);
  EXPECT_GT(s.ci_high, 0.6);
  const auto empty = binomial_summary(0, 0);
  EXPECT_DOUBLE_EQ(empty.p_hat, 0.0);
}

// Wilson score KATs, computed by hand from the closed form with z = 1.96:
//   center = (p_hat + z^2/2n) / (1 + z^2/n)
//   half   = z/(1 + z^2/n) * sqrt(p_hat(1-p_hat)/n + z^2/(4n^2))
TEST(Stats, BinomialSummaryWilsonKnownAnswers) {
  // 8/10: the textbook Wilson example.
  const auto s = binomial_summary(8, 10);
  EXPECT_NEAR(s.ci_low, 0.4901568, 1e-6);
  EXPECT_NEAR(s.ci_high, 0.9433191, 1e-6);
  // 15/50.
  const auto t = binomial_summary(15, 50);
  EXPECT_NEAR(t.ci_low, 0.1910339, 1e-6);
  EXPECT_NEAR(t.ci_high, 0.4375061, 1e-6);
}

TEST(Stats, BinomialSummaryAllSuccessesKeepsWidth) {
  // 20/20: the Wald interval degenerates to [1, 1]; Wilson keeps nonzero
  // width.  At p_hat = 1, center + half = 1 exactly and the lower bound is
  // 1/(1 + z^2/n).
  const auto s = binomial_summary(20, 20);
  EXPECT_DOUBLE_EQ(s.p_hat, 1.0);
  EXPECT_NEAR(s.ci_low, 1.0 / (1.0 + 1.96 * 1.96 / 20.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.ci_high, 1.0);
  EXPECT_LT(s.ci_low, 1.0);
}

TEST(Stats, BinomialSummaryZeroSuccessesKeepsWidth) {
  // 0/20 mirrors 20/20: [0, z^2/n / (1 + z^2/n)].
  const auto s = binomial_summary(0, 20);
  EXPECT_DOUBLE_EQ(s.p_hat, 0.0);
  EXPECT_DOUBLE_EQ(s.ci_low, 0.0);
  const double z2n = 1.96 * 1.96 / 20.0;
  EXPECT_NEAR(s.ci_high, z2n / (1.0 + z2n), 1e-12);
  EXPECT_GT(s.ci_high, 0.0);
}

TEST(Stats, BinomialSummaryAlwaysInsideUnitInterval) {
  for (std::size_t n : {1u, 2u, 5u, 30u, 1000u}) {
    for (std::size_t k = 0; k <= n; k += std::max<std::size_t>(1, n / 7)) {
      const auto s = binomial_summary(k, n);
      EXPECT_GE(s.ci_low, 0.0) << k << "/" << n;
      EXPECT_LE(s.ci_high, 1.0) << k << "/" << n;
      EXPECT_LE(s.ci_low, s.p_hat) << k << "/" << n;
      EXPECT_GE(s.ci_high, s.p_hat) << k << "/" << n;
    }
  }
}

TEST(Stats, RandomGuessAccuracyMatchesPaperExamples) {
  // §3.1: accuracy 0.5 for t = 2 and 0.03125 for t = 32.
  EXPECT_DOUBLE_EQ(random_guess_accuracy(2), 0.5);
  EXPECT_DOUBLE_EQ(random_guess_accuracy(32), 0.03125);
}

TEST(Stats, SamplesToDistinguish) {
  // No advantage -> not distinguishable.
  EXPECT_EQ(samples_to_distinguish(0.5, 2),
            std::numeric_limits<std::size_t>::max());
  // Larger advantage -> fewer samples.
  const auto n_small = samples_to_distinguish(0.51, 2);
  const auto n_large = samples_to_distinguish(0.6, 2);
  EXPECT_LT(n_large, n_small);
  // The paper's 8-round accuracy ~0.51 needs on the order of 2^14 samples
  // at 3 sigma; sanity-check the magnitude.
  EXPECT_GT(n_small, 5000u);
  EXPECT_LT(n_small, 50000u);
}

TEST(Stats, BinomialZScore) {
  EXPECT_DOUBLE_EQ(binomial_z_score(50, 100, 0.5), 0.0);
  EXPECT_GT(binomial_z_score(60, 100, 0.5), 1.9);
  EXPECT_LT(binomial_z_score(40, 100, 0.5), -1.9);
  EXPECT_DOUBLE_EQ(binomial_z_score(0, 0, 0.5), 0.0);
}


// ---------------------------------------------------------------------------
// JSON artifacts
// ---------------------------------------------------------------------------

TEST(Json, WriteJsonFilePublishesAtomically) {
  const auto dir = std::filesystem::temp_directory_path() / "mldist_json_test";
  std::filesystem::remove_all(dir);
  const std::string path = (dir / "deep" / "out.json").string();
  // Parent directories are created on demand.
  ASSERT_TRUE(write_json_file(path, "{\"a\":1}"));
  // The temp staging file must not be left behind.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(text, "{\"a\":1}\n");
  // Overwrite: the old content is fully replaced, never torn.
  ASSERT_TRUE(write_json_file(path, "{\"b\":2}"));
  std::ifstream in2(path);
  std::string text2((std::istreambuf_iterator<char>(in2)),
                    std::istreambuf_iterator<char>());
  EXPECT_EQ(text2, "{\"b\":2}\n");
  std::filesystem::remove_all(dir);
}

TEST(Json, WriteJsonFileReportsDescriptiveError) {
  // A directory at the destination path makes the final rename fail; the
  // error must name the paths involved so callers can print it as-is.
  const auto target = std::filesystem::temp_directory_path() /
                      "mldist_json_test_target.json";
  std::filesystem::create_directories(target);
  const WriteResult r = write_json_file(target.string(), "{}");
  EXPECT_FALSE(r);
  EXPECT_NE(r.error.find("mldist_json_test_target.json"), std::string::npos)
      << r.error;
  // The staging file is cleaned up on failure.
  EXPECT_FALSE(std::filesystem::exists(target.string() + ".tmp"));
  std::filesystem::remove_all(target);
}

TEST(Json, ValidatorAcceptsWellFormedDocuments) {
  for (const char* doc : {
           "{}", "[]", "null", "true", "-1.5e-3", "\"str\"",
           "{\"a\":[1,2,{\"b\":null}],\"c\":\"\\u00e9\\n\"}",
           "[0.5, 1e10, -0]",
       }) {
    std::string error;
    EXPECT_TRUE(json_validate(doc, &error)) << doc << ": " << error;
  }
}

TEST(Json, ValidatorRejectsMalformedDocuments) {
  for (const char* doc : {
           "", "{", "}", "[1,]", "{\"a\":}", "{\"a\" 1}", "nul",
           "\"unterminated", "01", "1.", "+1", "[1] extra",
           "\"bad \\x escape\"", "{\"a\":1,}",
       }) {
    std::string error;
    EXPECT_FALSE(json_validate(doc, &error)) << doc;
    EXPECT_FALSE(error.empty()) << doc;
  }
}

TEST(Json, BuilderOutputValidates) {
  JsonBuilder j;
  j.field("name", "quote\"backslash\\and\nnewline")
      .field("count", std::size_t{42})
      .field("ratio", 0.25)
      .field("flag", true)
      .raw("nested", "{\"x\":[1,2,3]}");
  std::string error;
  EXPECT_TRUE(json_validate(j.str(), &error)) << j.str() << ": " << error;
}

// ---------------------------------------------------------------------------
// thread pool
// ---------------------------------------------------------------------------

TEST(ThreadPool, CoversWholeRangeOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, HandlesEmptyAndTinyRanges) {
  ThreadPool pool(3);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> total{0};
  pool.parallel_for(1, [&](std::size_t b, std::size_t e) {
    total += static_cast<int>(e - b);
  });
  EXPECT_EQ(total.load(), 1);
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::vector<int> hits(64, 0);
  pool.parallel_for(64, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ReusableAcrossManyInvocations) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  for (int round = 0; round < 200; ++round) {
    pool.parallel_for(97, [&](std::size_t b, std::size_t e) {
      long local = 0;
      for (std::size_t i = b; i < e; ++i) local += static_cast<long>(i);
      sum += local;
    });
  }
  EXPECT_EQ(sum.load(), 200L * (96L * 97L / 2));
}

TEST(ThreadPool, GlobalPoolExists) {
  EXPECT_GE(ThreadPool::global().thread_count(), 1u);
}

// Regression for the exception-escape bug: a throw from a chunk running on
// a worker thread used to escape worker_loop and std::terminate the whole
// process.  It must instead surface on the calling thread.
TEST(ThreadPool, WorkerExceptionRethrownOnCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t b, std::size_t) {
                          // Chunk 0 runs on the calling thread; make sure a
                          // *worker* chunk is the one that throws.
                          if (b > 0) throw std::runtime_error("worker boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, CallerExceptionTakesPrecedence) {
  ThreadPool pool(4);
  try {
    pool.parallel_for(100, [&](std::size_t b, std::size_t) {
      if (b == 0) throw std::logic_error("caller boom");
      throw std::runtime_error("worker boom");
    });
    FAIL() << "parallel_for did not rethrow";
  } catch (const std::logic_error& e) {
    EXPECT_STREQ(e.what(), "caller boom");
  }
}

TEST(ThreadPool, UsableAfterException) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    EXPECT_THROW(pool.parallel_for(
                     64, [&](std::size_t, std::size_t) {
                       throw std::runtime_error("boom");
                     }),
                 std::runtime_error);
    // The error slot must be cleared: the next generation succeeds and
    // covers the whole range exactly once.
    std::atomic<int> total{0};
    pool.parallel_for(64, [&](std::size_t b, std::size_t e) {
      total += static_cast<int>(e - b);
    });
    EXPECT_EQ(total.load(), 64);
  }
}

TEST(ThreadPool, OtherChunksStillRunWhenOneThrows) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(256);
  try {
    pool.parallel_for(256, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
      if (b > 0 && b < 128) throw std::runtime_error("boom");
    });
  } catch (const std::runtime_error&) {
  }
  // No cancellation: every chunk ran to completion exactly once.
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
