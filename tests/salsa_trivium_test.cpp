#include <gtest/gtest.h>

#include <set>

#include "ciphers/salsa20.hpp"
#include "ciphers/trivium.hpp"
#include "util/rng.hpp"

namespace {

using namespace mldist::ciphers;
using mldist::util::Xoshiro256;

// ---------------------------------------------------------------------------
// Salsa20
// ---------------------------------------------------------------------------

TEST(Salsa, QuarterroundZeroFixedPoint) {
  std::uint32_t a = 0, b = 0, c = 0, d = 0;
  salsa_quarterround(a, b, c, d);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 0u);
  EXPECT_EQ(c, 0u);
  EXPECT_EQ(d, 0u);
}

TEST(Salsa, QuarterroundSpecVector) {
  // From the Salsa20 specification, §3 (quarterround examples):
  // quarterround(0x00000001, 0, 0, 0)
  //   = (0x08008145, 0x00000080, 0x00010200, 0x20500000).
  std::uint32_t a = 1, b = 0, c = 0, d = 0;
  salsa_quarterround(a, b, c, d);
  EXPECT_EQ(a, 0x08008145u);
  EXPECT_EQ(b, 0x00000080u);
  EXPECT_EQ(c, 0x00010200u);
  EXPECT_EQ(d, 0x20500000u);
}

TEST(Salsa, RoundsAreDeterministic) {
  Xoshiro256 rng(1);
  SalsaState s;
  for (auto& w : s) w = rng.next_u32();
  SalsaState a = s;
  SalsaState b = s;
  salsa20_rounds(a, 8);
  salsa20_rounds(b, 8);
  EXPECT_EQ(a, b);
}

TEST(Salsa, ZeroRoundsIsIdentityForRounds) {
  SalsaState s{};
  s[3] = 42;
  SalsaState t = s;
  salsa20_rounds(t, 0);
  EXPECT_EQ(t, s);
}

TEST(Salsa, CoreFeedForwardOnZeroRounds) {
  // With 0 rounds the core degenerates to doubling every word.
  SalsaState s;
  for (std::size_t i = 0; i < 16; ++i) s[i] = static_cast<std::uint32_t>(i + 1);
  const SalsaState out = salsa20_core(s, 0);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(out[i], 2 * s[i]);
}

TEST(Salsa, CoreAvalancheAtTwentyRounds) {
  Xoshiro256 rng(2);
  SalsaState s;
  for (auto& w : s) w = rng.next_u32();
  SalsaState s2 = s;
  s2[6] ^= 1u;
  const SalsaState o1 = salsa20_core(s, 20);
  const SalsaState o2 = salsa20_core(s2, 20);
  int flipped = 0;
  for (int i = 0; i < 16; ++i) flipped += __builtin_popcount(o1[i] ^ o2[i]);
  EXPECT_GT(flipped, 200);
  EXPECT_LT(flipped, 312);
}

TEST(Salsa, LowRoundCoreLeavesStructure) {
  // After a single round a difference in word 6 cannot have reached every
  // word — the non-Markov structure the distinguisher exploits.
  SalsaState s{};
  SalsaState s2 = s;
  s2[6] ^= 1u;
  const SalsaState o1 = salsa20_core(s, 1);
  const SalsaState o2 = salsa20_core(s2, 1);
  int untouched = 0;
  for (int i = 0; i < 16; ++i) {
    if ((o1[i] ^ o2[i]) == (i == 6 ? 1u : 0u)) ++untouched;
  }
  EXPECT_GT(untouched, 8);
}

// ---------------------------------------------------------------------------
// Trivium
// ---------------------------------------------------------------------------

TEST(Trivium, Deterministic) {
  const std::array<std::uint8_t, 10> key{};
  const std::array<std::uint8_t, 10> iv{};
  Trivium a(key, iv);
  Trivium b(key, iv);
  EXPECT_EQ(a.keystream(64), b.keystream(64));
}

TEST(Trivium, KeySensitivity) {
  const std::array<std::uint8_t, 10> iv{};
  std::array<std::uint8_t, 10> k1{};
  std::array<std::uint8_t, 10> k2{};
  k2[9] = 1;
  Trivium a(k1, iv);
  Trivium b(k2, iv);
  EXPECT_NE(a.keystream(64), b.keystream(64));
}

TEST(Trivium, IvSensitivity) {
  const std::array<std::uint8_t, 10> key{};
  std::array<std::uint8_t, 10> iv1{};
  std::array<std::uint8_t, 10> iv2{};
  iv2[0] = 0x80;
  Trivium a(key, iv1);
  Trivium b(key, iv2);
  EXPECT_NE(a.keystream(64), b.keystream(64));
}

TEST(Trivium, KeystreamIsBalancedAtFullInit) {
  Xoshiro256 rng(3);
  std::array<std::uint8_t, 10> key;
  std::array<std::uint8_t, 10> iv;
  rng.fill_bytes(key.data(), key.size());
  rng.fill_bytes(iv.data(), iv.size());
  Trivium t(key, iv);
  const auto ks = t.keystream(1000);
  int weight = 0;
  for (auto b : ks) weight += __builtin_popcount(b);
  EXPECT_NEAR(weight, 4000, 300);
}

TEST(Trivium, NextByteIsLsbFirstPackingOfBits) {
  const std::array<std::uint8_t, 10> key{};
  const std::array<std::uint8_t, 10> iv{};
  Trivium bits(key, iv);
  Trivium bytes(key, iv);
  std::uint8_t expected = 0;
  for (int i = 0; i < 8; ++i) {
    expected |= static_cast<std::uint8_t>(bits.next_bit() << i);
  }
  EXPECT_EQ(bytes.next_byte(), expected);
}

TEST(Trivium, ReducedInitIsNotRandomLooking) {
  // With very few initialisation clocks, flipping one IV bit leaves most of
  // the keystream difference zero (slow diffusion) — the property the
  // extension experiments use.
  const std::array<std::uint8_t, 10> key{};
  std::array<std::uint8_t, 10> iv1{};
  std::array<std::uint8_t, 10> iv2{};
  iv2[0] = 0x80;
  Trivium a(key, iv1, /*init_clocks=*/100);
  Trivium b(key, iv2, /*init_clocks=*/100);
  const auto ka = a.keystream(16);
  const auto kb = b.keystream(16);
  int diff_weight = 0;
  for (std::size_t i = 0; i < ka.size(); ++i) {
    diff_weight += __builtin_popcount(static_cast<unsigned>(ka[i] ^ kb[i]));
  }
  EXPECT_LT(diff_weight, 40);  // far from the ~64 of random data
}

TEST(Trivium, FullInitDiffusesIvDifference) {
  const std::array<std::uint8_t, 10> key{};
  std::array<std::uint8_t, 10> iv1{};
  std::array<std::uint8_t, 10> iv2{};
  iv2[0] = 0x80;
  Trivium a(key, iv1);
  Trivium b(key, iv2);
  const auto ka = a.keystream(64);
  const auto kb = b.keystream(64);
  int diff_weight = 0;
  for (std::size_t i = 0; i < ka.size(); ++i) {
    diff_weight += __builtin_popcount(static_cast<unsigned>(ka[i] ^ kb[i]));
  }
  EXPECT_NEAR(diff_weight, 256, 80);
}

}  // namespace
