// Tests for probability combining (core/combiner.hpp) and the toy-cipher
// all-in-one ceiling.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "analysis/toy_gift.hpp"
#include "core/arch_zoo.hpp"
#include "core/combiner.hpp"
#include "core/distinguisher.hpp"
#include "nn/optimizer.hpp"
#include "core/real_random.hpp"
#include "core/targets.hpp"
#include "util/rng.hpp"

namespace {

using namespace mldist::core;
using mldist::util::Xoshiro256;

TEST(ToyAllInOne, DistributionsSumToOne) {
  for (std::uint8_t din : {0x32, 0x23, 0x01, 0xff}) {
    const auto dist = mldist::analysis::toy_diff_distribution(din);
    double sum = 0.0;
    for (double p : dist) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(ToyAllInOne, ZeroDifferenceIsDegenerate) {
  const auto dist = mldist::analysis::toy_diff_distribution(0x00);
  EXPECT_DOUBLE_EQ(dist[0], 1.0);
}

TEST(ToyAllInOne, BayesAccuracyBounds) {
  const double acc = mldist::analysis::toy_allinone_bayes_accuracy(0x32, 0x23);
  EXPECT_GE(acc, 0.5);   // never worse than guessing
  EXPECT_LE(acc, 1.0);
  EXPECT_GT(acc, 0.6);   // two rounds leak a lot on 8 bits
}

TEST(ToyAllInOne, IdenticalDifferencesAreIndistinguishable) {
  EXPECT_NEAR(mldist::analysis::toy_allinone_bayes_accuracy(0x32, 0x32), 0.5,
              1e-12);
}

TEST(ToyAllInOne, MlApproachesBayesCeiling) {
  // The paper's central claim in miniature: the trained model reaches the
  // exact all-in-one accuracy on an enumerable cipher.
  const ToyGiftTarget target;
  const double bayes = mldist::analysis::toy_allinone_bayes_accuracy(
      target.diffs()[0], target.diffs()[1]);
  Xoshiro256 rng(1);
  auto model = build_default_mlp(8, 2, rng);
  DistinguisherOptions opt;
  opt.epochs = 10;
  MLDistinguisher dist(std::move(model), opt);
  const TrainReport rep = dist.train(target, 6000);
  EXPECT_NEAR(rep.val_accuracy, bayes, 0.04);
  EXPECT_LE(rep.val_accuracy, bayes + 0.04);  // cannot beat the ceiling
}

TEST(Combiner, PredictGroupMatchesSingleForOneRow) {
  Xoshiro256 rng(2);
  auto model = build_default_mlp(8, 2, rng);
  mldist::nn::Mat x(1, 8);
  for (std::size_t i = 0; i < 8; ++i) {
    x.data()[i] = static_cast<float>(rng.next_u64() & 1);
  }
  EXPECT_EQ(predict_group(*model, x), model->predict(x)[0]);
}

TEST(Combiner, CombiningBoostsWeakDistinguisher) {
  // 5-round toy-free setting: 7-round Gimli-Cipher at a modest budget has
  // per-sample accuracy well below 1; combining k = 16 must push the
  // grouped accuracy close to 1.
  const GimliCipherTarget target(7);
  Xoshiro256 rng(3);
  auto model = build_default_mlp(128, 2, rng);
  DistinguisherOptions opt;
  opt.epochs = 3;
  MLDistinguisher dist(std::move(model), opt);
  const TrainReport rep = dist.train(target, 3000);
  ASSERT_GT(rep.val_accuracy, 0.55);
  ASSERT_LT(rep.val_accuracy, 0.95);

  const CipherOracle oracle(target);
  Xoshiro256 orng(4);
  const CombinedReport k1 =
      combined_accuracy(dist.model(), oracle, 200, 1, orng);
  const CombinedReport k16 =
      combined_accuracy(dist.model(), oracle, 80, 16, orng);
  EXPECT_GT(k16.accuracy, k1.accuracy + 0.05);
  EXPECT_GT(k16.accuracy, 0.9);
}

TEST(Combiner, RandomOracleStaysAtBaseline) {
  const GimliCipherTarget target(7);
  Xoshiro256 rng(5);
  auto model = build_default_mlp(128, 2, rng);
  DistinguisherOptions opt;
  opt.epochs = 2;
  MLDistinguisher dist(std::move(model), opt);
  (void)dist.train(target, 1500);

  const RandomOracle oracle(2, 16);
  Xoshiro256 orng(6);
  const CombinedReport rep =
      combined_accuracy(dist.model(), oracle, 150, 8, orng);
  EXPECT_NEAR(rep.accuracy, 0.5, 0.12);
}

TEST(Combiner, ReportAccounting) {
  const GimliCipherTarget target(2);
  Xoshiro256 rng(7);
  auto model = build_default_mlp(128, 2, rng);
  DistinguisherOptions opt;
  opt.epochs = 1;
  MLDistinguisher dist(std::move(model), opt);
  (void)dist.train(target, 100);

  const CipherOracle oracle(target);
  Xoshiro256 orng(8);
  const CombinedReport rep =
      combined_accuracy(dist.model(), oracle, 10, 4, orng);
  EXPECT_EQ(rep.groups, 10u);
  EXPECT_EQ(rep.k, 4u);
  EXPECT_NEAR(rep.log2_queries, std::log2(10.0 * 4.0 * 3.0), 1e-9);
}


// ---------------------------------------------------------------------------
// Gohr-style real-vs-random data sets
// ---------------------------------------------------------------------------

TEST(RealRandom, BalancedShapesAndLabels) {
  const GimliHashTarget target(6);
  Xoshiro256 rng(9);
  const auto ds = collect_real_random_dataset(target, 50, rng);
  ASSERT_EQ(ds.size(), 100u);
  EXPECT_EQ(ds.x.cols(), 128u);
  std::size_t real = 0;
  for (int y : ds.y) real += (y == 1);
  EXPECT_EQ(real, 50u);
  for (std::size_t i = 0; i < ds.x.size(); ++i) {
    EXPECT_TRUE(ds.x.data()[i] == 0.0f || ds.x.data()[i] == 1.0f);
  }
}

TEST(RealRandom, TrainableAtLowRounds) {
  const GimliHashTarget target(4);
  Xoshiro256 rng(10);
  const auto train = collect_real_random_dataset(target, 1500, rng);
  const auto val = collect_real_random_dataset(target, 300, rng);
  auto model = build_default_mlp(128, 2, rng);
  mldist::nn::Adam adam(1e-3f);
  mldist::nn::FitOptions fit;
  fit.epochs = 3;
  fit.batch_size = 128;
  (void)model->fit(train, adam, fit);
  EXPECT_GT(model->evaluate(val).accuracy, 0.85);
}

TEST(RealRandom, RandomClassIsActuallyUniform) {
  const GimliHashTarget target(2);
  Xoshiro256 rng(11);
  const auto ds = collect_real_random_dataset(target, 200, rng);
  // Mean bit value of the random class should be ~0.5.
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    if (ds.y[i] != 0) continue;
    const float* row = ds.x.row(i);
    for (std::size_t j = 0; j < ds.x.cols(); ++j) sum += row[j];
    count += ds.x.cols();
  }
  EXPECT_NEAR(sum / static_cast<double>(count), 0.5, 0.02);
}

}  // namespace
