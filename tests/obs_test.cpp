// Observability layer (src/obs): registry semantics, the shard-merge
// determinism contract (bitwise-identical counters for any worker count),
// trace round-trip through the Chrome trace_event writer, and the
// disabled-mode cost ceiling.  Runs under the "obs" and "tsan" ctest labels.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/arch_zoo.hpp"
#include "core/dataset.hpp"
#include "core/targets.hpp"
#include "nn/model.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using namespace mldist;
using obs::MetricsRegistry;

// ---------------------------------------------------------------------------
// registry semantics
// ---------------------------------------------------------------------------

TEST(Metrics, CounterFindOrCreateIsStable) {
  MetricsRegistry& reg = MetricsRegistry::global();
  const obs::MetricId a = reg.counter("obs_test.stable");
  const obs::MetricId b = reg.counter("obs_test.stable");
  EXPECT_EQ(a, b);
  reg.add(a, 3);
  reg.add(b, 4);
  EXPECT_EQ(reg.counter_value("obs_test.stable"), 7u);
  EXPECT_EQ(reg.counter_value("obs_test.never_registered"), 0u);
}

TEST(Metrics, KindClashThrows) {
  MetricsRegistry& reg = MetricsRegistry::global();
  reg.counter("obs_test.kind_clash");
  EXPECT_THROW(reg.gauge("obs_test.kind_clash"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("obs_test.kind_clash"), std::invalid_argument);
}

TEST(Metrics, HistogramTracksCountSumMinMaxBuckets) {
  MetricsRegistry& reg = MetricsRegistry::global();
  const obs::MetricId h = reg.histogram("obs_test.hist");
  reg.observe(h, 0);
  reg.observe(h, 1);
  reg.observe(h, 5);    // bit_width 3
  reg.observe(h, 1000); // bit_width 10
  const obs::MetricsSnapshot snap = reg.snapshot();
  const auto it = std::find_if(
      snap.histograms.begin(), snap.histograms.end(),
      [](const auto& p) { return p.first == "obs_test.hist"; });
  ASSERT_NE(it, snap.histograms.end());
  EXPECT_EQ(it->second.count, 4u);
  EXPECT_EQ(it->second.sum, 1006u);
  EXPECT_EQ(it->second.min, 0u);
  EXPECT_EQ(it->second.max, 1000u);
  EXPECT_EQ(it->second.buckets[0], 1u);   // the exact zero
  EXPECT_EQ(it->second.buckets[1], 1u);   // 1
  EXPECT_EQ(it->second.buckets[3], 1u);   // 5
  EXPECT_EQ(it->second.buckets[10], 1u);  // 1000
}

TEST(Metrics, GaugeIsLastWriteWins) {
  MetricsRegistry& reg = MetricsRegistry::global();
  const obs::MetricId g = reg.gauge("obs_test.gauge");
  reg.set_gauge(g, 7);
  reg.set_gauge(g, 3);
  const obs::MetricsSnapshot snap = reg.snapshot();
  const auto it =
      std::find_if(snap.gauges.begin(), snap.gauges.end(),
                   [](const auto& p) { return p.first == "obs_test.gauge"; });
  ASSERT_NE(it, snap.gauges.end());
  EXPECT_EQ(it->second, 3u);
}

TEST(Metrics, ShardsOfExitedThreadsAreRetained) {
  MetricsRegistry& reg = MetricsRegistry::global();
  const obs::MetricId id = reg.counter("obs_test.retired");
  const std::uint64_t before = reg.counter_value("obs_test.retired");
  {
    std::thread t([&] { reg.add(id, 11); });
    t.join();
  }
  // The thread is gone but its shard merged into the retained accumulator.
  EXPECT_EQ(reg.counter_value("obs_test.retired"), before + 11);
}

TEST(Metrics, SnapshotJsonIsWellFormed) {
  MetricsRegistry& reg = MetricsRegistry::global();
  reg.add(reg.counter("obs_test.json_counter"), 2);
  reg.set_gauge(reg.gauge("obs_test.json_gauge"), 9);
  reg.observe(reg.histogram("obs_test.json_hist"), 123);
  const std::string json = reg.snapshot().to_json();
  std::string error;
  EXPECT_TRUE(util::json_validate(json, &error)) << error << "\n" << json;
}

// ---------------------------------------------------------------------------
// shard-merge determinism: the tentpole contract
// ---------------------------------------------------------------------------

/// Counters whose names carry the wall-clock suffix are measurements, not
/// deterministic tallies; the contract (DESIGN.md §10) excludes exactly them.
bool is_wallclock(const std::string& name) {
  return name.size() >= 3 && (name.rfind("_ns") == name.size() - 3 ||
                              name.rfind("_us") == name.size() - 3);
}

std::vector<std::pair<std::string, std::uint64_t>> deterministic_counters() {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (const auto& [name, value] : MetricsRegistry::global().snapshot().counters) {
    if (!is_wallclock(name)) out.emplace_back(name, value);
  }
  return out;
}

/// One representative pipeline slice — parallel dataset collection plus a
/// batched model evaluate — run with a given fan-out.
void run_pipeline(std::size_t threads) {
  const core::GimliHashTarget target(4);
  core::CollectOptions copt;
  copt.seed = 0x0b5eed;
  copt.threads = threads;
  copt.chunk_base_inputs = 16;
  const nn::Dataset data = core::collect_dataset(target, 96, copt);

  util::Xoshiro256 rng(7);
  auto model = core::build_default_mlp(data.x.cols(), 2, rng);
  util::ThreadPool pool(threads);
  (void)model->evaluate(data, /*batch_size=*/16, &pool);
  (void)model->predict(data.x, /*batch_size=*/16, &pool);
}

TEST(Metrics, CountersBitwiseIdenticalAcrossThreadCounts) {
  MetricsRegistry& reg = MetricsRegistry::global();
  reg.reset();
  run_pipeline(1);
  const auto serial = deterministic_counters();

  for (std::size_t threads : {2u, 4u}) {
    reg.reset();
    run_pipeline(threads);
    const auto parallel = deterministic_counters();
    ASSERT_EQ(serial.size(), parallel.size()) << threads << " threads";
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i].first, parallel[i].first);
      EXPECT_EQ(serial[i].second, parallel[i].second)
          << serial[i].first << " with " << threads << " threads";
    }
  }
  // The slice actually exercised the instrumented seams.
  EXPECT_GT(reg.counter_value("core.oracle.queries"), 0u);
  EXPECT_GT(reg.counter_value("core.collect.chunks"), 0u);
  EXPECT_GT(reg.counter_value("nn.evaluate.rows"), 0u);
}

TEST(Metrics, ResetZeroesValuesButKeepsNames) {
  MetricsRegistry& reg = MetricsRegistry::global();
  const obs::MetricId id = reg.counter("obs_test.reset_me");
  reg.add(id, 5);
  reg.reset();
  EXPECT_EQ(reg.counter_value("obs_test.reset_me"), 0u);
  // Same id after reset: the directory survives.
  EXPECT_EQ(reg.counter("obs_test.reset_me"), id);
}

// ---------------------------------------------------------------------------
// tracer round-trip
// ---------------------------------------------------------------------------

TEST(Trace, RoundTripThroughChromeTraceJson) {
  const auto path = std::filesystem::temp_directory_path() /
                    "mldist_obs_test_trace.json";
  std::filesystem::remove(path);
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.enable(path.string());
  ASSERT_TRUE(tracer.enabled());
  {
    obs::Span outer("obs_test.outer", "test");
    outer.arg("answer", 42).arg("label", "x\"y\\z").arg("ratio", 0.5);
    obs::Span inner("obs_test.inner", "test");
  }
  std::thread worker([] { MLDIST_SPAN("obs_test.worker", "test"); });
  worker.join();
  std::string error;
  ASSERT_TRUE(tracer.flush(&error)) << error;
  tracer.disable();

  std::ifstream in(path);
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  EXPECT_TRUE(util::json_validate(text, &error)) << error;
  // The spans and their args survived, including the worker thread's.
  EXPECT_NE(text.find("\"obs_test.outer\""), std::string::npos);
  EXPECT_NE(text.find("\"obs_test.inner\""), std::string::npos);
  EXPECT_NE(text.find("\"obs_test.worker\""), std::string::npos);
  EXPECT_NE(text.find("\"answer\":42"), std::string::npos);
  EXPECT_NE(text.find("x\\\"y\\\\z"), std::string::npos);
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"dropped_events\""), std::string::npos);
  std::filesystem::remove(path);
}

TEST(Trace, FlushIsIdempotent) {
  const auto path = std::filesystem::temp_directory_path() /
                    "mldist_obs_test_trace2.json";
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.enable(path.string());
  { MLDIST_SPAN("obs_test.twice", "test"); }
  std::string error;
  ASSERT_TRUE(tracer.flush(&error)) << error;
  const auto first_size = std::filesystem::file_size(path);
  ASSERT_TRUE(tracer.flush(&error)) << error;
  EXPECT_EQ(std::filesystem::file_size(path), first_size);
  tracer.disable();
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// disabled-mode cost ceiling
// ---------------------------------------------------------------------------

TEST(Trace, DisabledSpansAreCheap) {
  obs::Tracer& tracer = obs::Tracer::global();
  ASSERT_FALSE(tracer.enabled())
      << "unset MLDIST_TRACE when running the obs tests";
  const std::string name = "obs_test.disabled";
  constexpr int kIters = 1'000'000;
  const util::Timer timer;
  for (int i = 0; i < kIters; ++i) {
    obs::Span span(name, "test");
    span.arg("i", i);
  }
  const double per_op_ns = timer.seconds() * 1e9 / kIters;
  // One relaxed load plus an inactive-arg branch.  The ceiling is two
  // orders of magnitude above the expected cost so the assertion never
  // flakes on a loaded CI box while still catching an accidental
  // always-on allocation or lock.
  EXPECT_LT(per_op_ns, 500.0);
}

TEST(Metrics, HotPathCounterIsCheap) {
  MetricsRegistry& reg = MetricsRegistry::global();
  const obs::MetricId id = reg.counter("obs_test.hot");
  constexpr int kIters = 1'000'000;
  const util::Timer timer;
  for (int i = 0; i < kIters; ++i) reg.add(id);
  const double per_op_ns = timer.seconds() * 1e9 / kIters;
  EXPECT_LT(per_op_ns, 500.0);
  EXPECT_GE(reg.counter_value("obs_test.hot"), 1'000'000u);
}

}  // namespace
