// Observability layer (src/obs): registry semantics, the shard-merge
// determinism contract (bitwise-identical counters for any worker count),
// trace round-trip through the Chrome trace_event writer, and the
// disabled-mode cost ceiling.  Runs under the "obs" and "tsan" ctest labels.
#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/arch_zoo.hpp"
#include "core/dataset.hpp"
#include "core/targets.hpp"
#include "nn/model.hpp"
#include "nn/optimizer.hpp"
#include "obs/export.hpp"
#include "obs/log.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/http.hpp"
#include "obs/server.hpp"
#include "obs/ship.hpp"
#include "obs/trace.hpp"
#include "obs/trace_merge.hpp"
#include "util/process.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using namespace mldist;
using obs::MetricsRegistry;

// ---------------------------------------------------------------------------
// registry semantics
// ---------------------------------------------------------------------------

TEST(Metrics, CounterFindOrCreateIsStable) {
  MetricsRegistry& reg = MetricsRegistry::global();
  const obs::MetricId a = reg.counter("obs_test.stable");
  const obs::MetricId b = reg.counter("obs_test.stable");
  EXPECT_EQ(a, b);
  reg.add(a, 3);
  reg.add(b, 4);
  EXPECT_EQ(reg.counter_value("obs_test.stable"), 7u);
  EXPECT_EQ(reg.counter_value("obs_test.never_registered"), 0u);
}

TEST(Metrics, KindClashThrows) {
  MetricsRegistry& reg = MetricsRegistry::global();
  reg.counter("obs_test.kind_clash");
  EXPECT_THROW(reg.gauge("obs_test.kind_clash"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("obs_test.kind_clash"), std::invalid_argument);
}

TEST(Metrics, HistogramTracksCountSumMinMaxBuckets) {
  MetricsRegistry& reg = MetricsRegistry::global();
  const obs::MetricId h = reg.histogram("obs_test.hist");
  reg.observe(h, 0);
  reg.observe(h, 1);
  reg.observe(h, 5);    // bit_width 3
  reg.observe(h, 1000); // bit_width 10
  const obs::MetricsSnapshot snap = reg.snapshot();
  const auto it = std::find_if(
      snap.histograms.begin(), snap.histograms.end(),
      [](const auto& p) { return p.first == "obs_test.hist"; });
  ASSERT_NE(it, snap.histograms.end());
  EXPECT_EQ(it->second.count, 4u);
  EXPECT_EQ(it->second.sum, 1006u);
  EXPECT_EQ(it->second.min, 0u);
  EXPECT_EQ(it->second.max, 1000u);
  EXPECT_EQ(it->second.buckets[0], 1u);   // the exact zero
  EXPECT_EQ(it->second.buckets[1], 1u);   // 1
  EXPECT_EQ(it->second.buckets[3], 1u);   // 5
  EXPECT_EQ(it->second.buckets[10], 1u);  // 1000
}

TEST(Metrics, GaugeIsLastWriteWins) {
  MetricsRegistry& reg = MetricsRegistry::global();
  const obs::MetricId g = reg.gauge("obs_test.gauge");
  reg.set_gauge(g, 7);
  reg.set_gauge(g, 3);
  const obs::MetricsSnapshot snap = reg.snapshot();
  const auto it =
      std::find_if(snap.gauges.begin(), snap.gauges.end(),
                   [](const auto& p) { return p.first == "obs_test.gauge"; });
  ASSERT_NE(it, snap.gauges.end());
  EXPECT_EQ(it->second, 3u);
}

TEST(Metrics, ShardsOfExitedThreadsAreRetained) {
  MetricsRegistry& reg = MetricsRegistry::global();
  const obs::MetricId id = reg.counter("obs_test.retired");
  const std::uint64_t before = reg.counter_value("obs_test.retired");
  {
    std::thread t([&] { reg.add(id, 11); });
    t.join();
  }
  // The thread is gone but its shard merged into the retained accumulator.
  EXPECT_EQ(reg.counter_value("obs_test.retired"), before + 11);
}

TEST(Metrics, SnapshotJsonIsWellFormed) {
  MetricsRegistry& reg = MetricsRegistry::global();
  reg.add(reg.counter("obs_test.json_counter"), 2);
  reg.set_gauge(reg.gauge("obs_test.json_gauge"), 9);
  reg.observe(reg.histogram("obs_test.json_hist"), 123);
  const std::string json = reg.snapshot().to_json();
  std::string error;
  EXPECT_TRUE(util::json_validate(json, &error)) << error << "\n" << json;
}

// ---------------------------------------------------------------------------
// shard-merge determinism: the tentpole contract
// ---------------------------------------------------------------------------

/// Counters whose names carry the wall-clock suffix are measurements, not
/// deterministic tallies; the contract (DESIGN.md §10) excludes exactly them.
bool is_wallclock(const std::string& name) {
  return name.size() >= 3 && (name.rfind("_ns") == name.size() - 3 ||
                              name.rfind("_us") == name.size() - 3);
}

std::vector<std::pair<std::string, std::uint64_t>> deterministic_counters() {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (const auto& [name, value] : MetricsRegistry::global().snapshot().counters) {
    if (!is_wallclock(name)) out.emplace_back(name, value);
  }
  return out;
}

/// One representative pipeline slice — parallel dataset collection plus a
/// batched model evaluate — run with a given fan-out.
void run_pipeline(std::size_t threads) {
  const core::GimliHashTarget target(4);
  core::CollectOptions copt;
  copt.seed = 0x0b5eed;
  copt.threads = threads;
  copt.chunk_base_inputs = 16;
  const nn::Dataset data = core::collect_dataset(target, 96, copt);

  util::Xoshiro256 rng(7);
  auto model = core::build_default_mlp(data.x.cols(), 2, rng);
  util::ThreadPool pool(threads);
  (void)model->evaluate(data, /*batch_size=*/16, &pool);
  (void)model->predict(data.x, /*batch_size=*/16, &pool);
}

TEST(Metrics, CountersBitwiseIdenticalAcrossThreadCounts) {
  MetricsRegistry& reg = MetricsRegistry::global();
  reg.reset();
  run_pipeline(1);
  const auto serial = deterministic_counters();

  for (std::size_t threads : {2u, 4u}) {
    reg.reset();
    run_pipeline(threads);
    const auto parallel = deterministic_counters();
    ASSERT_EQ(serial.size(), parallel.size()) << threads << " threads";
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i].first, parallel[i].first);
      EXPECT_EQ(serial[i].second, parallel[i].second)
          << serial[i].first << " with " << threads << " threads";
    }
  }
  // The slice actually exercised the instrumented seams.
  EXPECT_GT(reg.counter_value("core.oracle.queries"), 0u);
  EXPECT_GT(reg.counter_value("core.collect.chunks"), 0u);
  EXPECT_GT(reg.counter_value("nn.evaluate.rows"), 0u);
}

TEST(Metrics, ResetZeroesValuesButKeepsNames) {
  MetricsRegistry& reg = MetricsRegistry::global();
  const obs::MetricId id = reg.counter("obs_test.reset_me");
  reg.add(id, 5);
  reg.reset();
  EXPECT_EQ(reg.counter_value("obs_test.reset_me"), 0u);
  // Same id after reset: the directory survives.
  EXPECT_EQ(reg.counter("obs_test.reset_me"), id);
}

// ---------------------------------------------------------------------------
// tracer round-trip
// ---------------------------------------------------------------------------

TEST(Trace, RoundTripThroughChromeTraceJson) {
  const auto path = std::filesystem::temp_directory_path() /
                    "mldist_obs_test_trace.json";
  std::filesystem::remove(path);
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.enable(path.string());
  ASSERT_TRUE(tracer.enabled());
  {
    obs::Span outer("obs_test.outer", "test");
    outer.arg("answer", 42).arg("label", "x\"y\\z").arg("ratio", 0.5);
    obs::Span inner("obs_test.inner", "test");
  }
  std::thread worker([] { MLDIST_SPAN("obs_test.worker", "test"); });
  worker.join();
  std::string error;
  ASSERT_TRUE(tracer.flush(&error)) << error;
  tracer.disable();

  std::ifstream in(path);
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  EXPECT_TRUE(util::json_validate(text, &error)) << error;
  // The spans and their args survived, including the worker thread's.
  EXPECT_NE(text.find("\"obs_test.outer\""), std::string::npos);
  EXPECT_NE(text.find("\"obs_test.inner\""), std::string::npos);
  EXPECT_NE(text.find("\"obs_test.worker\""), std::string::npos);
  EXPECT_NE(text.find("\"answer\":42"), std::string::npos);
  EXPECT_NE(text.find("x\\\"y\\\\z"), std::string::npos);
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"dropped_events\""), std::string::npos);
  std::filesystem::remove(path);
}

TEST(Trace, FlushIsIdempotent) {
  const auto path = std::filesystem::temp_directory_path() /
                    "mldist_obs_test_trace2.json";
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.enable(path.string());
  { MLDIST_SPAN("obs_test.twice", "test"); }
  std::string error;
  ASSERT_TRUE(tracer.flush(&error)) << error;
  const auto first_size = std::filesystem::file_size(path);
  ASSERT_TRUE(tracer.flush(&error)) << error;
  EXPECT_EQ(std::filesystem::file_size(path), first_size);
  tracer.disable();
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// disabled-mode cost ceiling
// ---------------------------------------------------------------------------

TEST(Trace, DisabledSpansAreCheap) {
  obs::Tracer& tracer = obs::Tracer::global();
  ASSERT_FALSE(tracer.enabled())
      << "unset MLDIST_TRACE when running the obs tests";
  const std::string name = "obs_test.disabled";
  constexpr int kIters = 1'000'000;
  const util::Timer timer;
  for (int i = 0; i < kIters; ++i) {
    obs::Span span(name, "test");
    span.arg("i", i);
  }
  const double per_op_ns = timer.seconds() * 1e9 / kIters;
  // One relaxed load plus an inactive-arg branch.  The ceiling is two
  // orders of magnitude above the expected cost so the assertion never
  // flakes on a loaded CI box while still catching an accidental
  // always-on allocation or lock.
  EXPECT_LT(per_op_ns, 500.0);
}

// ---------------------------------------------------------------------------
// quantile estimation over the bit-width buckets
// ---------------------------------------------------------------------------

const obs::HistogramSnapshot* find_hist(const obs::MetricsSnapshot& snap,
                                        const std::string& name) {
  for (const auto& [n, h] : snap.histograms) {
    if (n == name) return &h;
  }
  return nullptr;
}

TEST(Quantiles, EmptyHistogramIsZero) {
  MetricsRegistry& reg = MetricsRegistry::global();
  (void)reg.histogram("obs_test.q_empty");
  const auto snap = reg.snapshot();
  const auto* h = find_hist(snap, "obs_test.q_empty");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->p50(), 0u);
  EXPECT_EQ(h->p90(), 0u);
  EXPECT_EQ(h->p99(), 0u);
}

TEST(Quantiles, SingleValueAllQuantilesClampToIt) {
  MetricsRegistry& reg = MetricsRegistry::global();
  const obs::MetricId id = reg.histogram("obs_test.q_single");
  reg.observe(id, 7);  // bit_width 3, bucket upper edge 7
  const auto snap = reg.snapshot();
  const auto* h = find_hist(snap, "obs_test.q_single");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->p50(), 7u);
  EXPECT_EQ(h->p90(), 7u);
  EXPECT_EQ(h->p99(), 7u);
  EXPECT_EQ(h->quantile(0.0), 7u);   // rank clamps to 1
  EXPECT_EQ(h->quantile(1.0), 7u);
}

TEST(Quantiles, MultiBucketUpperBoundsAndClamping) {
  // Observations {1, 2, 4, 1000} land in buckets 1, 2, 3 and 10.  A
  // quantile answers with the upper edge of the bucket holding that rank,
  // clamped into [min, max]:
  //   p50 -> rank 2 -> bucket 2 (values 2..3)   -> upper edge 3
  //   p90 -> rank 4 -> bucket 10 (512..1023)    -> 1023, clamped to max 1000
  //   p99 -> rank 4 -> same                     -> 1000
  MetricsRegistry& reg = MetricsRegistry::global();
  const obs::MetricId id = reg.histogram("obs_test.q_multi");
  for (std::uint64_t v : {1ull, 2ull, 4ull, 1000ull}) reg.observe(id, v);
  const auto snap = reg.snapshot();
  const auto* h = find_hist(snap, "obs_test.q_multi");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->p50(), 3u);
  EXPECT_EQ(h->p90(), 1000u);
  EXPECT_EQ(h->p99(), 1000u);
  EXPECT_EQ(h->quantile(0.25), 1u);  // rank 1 -> bucket 1 upper edge 1
}

TEST(Quantiles, ZeroObservationsStayInBucketZero) {
  MetricsRegistry& reg = MetricsRegistry::global();
  const obs::MetricId id = reg.histogram("obs_test.q_zeros");
  for (int i = 0; i < 10; ++i) reg.observe(id, 0);
  reg.observe(id, 100);  // bucket 7 (64..127)
  const auto snap = reg.snapshot();
  const auto* h = find_hist(snap, "obs_test.q_zeros");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->p50(), 0u);    // rank 6 of 11 is still in the zero bucket
  EXPECT_EQ(h->p99(), 100u);  // bucket upper 127 clamped to max
}

TEST(Quantiles, SnapshotJsonCarriesQuantiles) {
  MetricsRegistry& reg = MetricsRegistry::global();
  reg.observe(reg.histogram("obs_test.q_json"), 42);
  const std::string json = reg.snapshot().to_json();
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// structured logger
// ---------------------------------------------------------------------------

std::string read_file_text(const std::filesystem::path& p) {
  std::ifstream in(p);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

std::vector<std::string> file_lines(const std::filesystem::path& p) {
  std::vector<std::string> out;
  std::ifstream in(p);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) out.push_back(line);
  }
  return out;
}

/// Redirect the global logger to a fresh temp file for one test, restoring
/// the stderr sink (and the info level) afterwards.
class ScopedLogFile {
 public:
  explicit ScopedLogFile(const char* tag) {
    path_ = std::filesystem::temp_directory_path() /
            (std::string("mldist_log_test_") + tag + ".jsonl");
    std::filesystem::remove(path_);
    std::string error;
    ok_ = obs::Logger::global().set_file(path_.string(), &error);
    EXPECT_TRUE(ok_) << error;
  }
  ~ScopedLogFile() {
    obs::Logger::global().flush();
    obs::Logger::global().set_file("");
    obs::Logger::global().set_level(obs::LogLevel::kInfo);
    std::filesystem::remove(path_);
  }
  const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
  bool ok_ = false;
};

TEST(Log, ParseLevelRoundTrip) {
  obs::LogLevel lvl;
  for (const char* name : {"debug", "info", "warn", "error", "off"}) {
    ASSERT_TRUE(obs::parse_level(name, lvl)) << name;
    EXPECT_STREQ(obs::level_name(lvl), name);
  }
  EXPECT_FALSE(obs::parse_level("verbose", lvl));
  EXPECT_FALSE(obs::parse_level("", lvl));
}

TEST(Log, RecordsAreWellFormedJsonlWithFields) {
  ScopedLogFile file("fields");
  obs::log_info("obs_test", "hello \"quoted\" \\ world")
      .field("answer", 42)
      .field("ratio", 0.5)
      .field("name", "x\ny");
  obs::Logger::global().flush();

  const auto lines = file_lines(file.path());
  ASSERT_EQ(lines.size(), 1u);
  std::string error;
  EXPECT_TRUE(util::json_validate(lines[0], &error)) << error << "\n"
                                                     << lines[0];
  EXPECT_NE(lines[0].find("\"ts_ns\":"), std::string::npos);
  EXPECT_NE(lines[0].find("\"level\":\"info\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"tid\":"), std::string::npos);
  EXPECT_NE(lines[0].find("\"component\":\"obs_test\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"answer\":42"), std::string::npos);
  EXPECT_NE(lines[0].find("\"ratio\":"), std::string::npos);
}

TEST(Log, LevelThresholdSuppresses) {
  ScopedLogFile file("levels");
  obs::Logger::global().set_level(obs::LogLevel::kWarn);
  EXPECT_FALSE(obs::Logger::global().enabled(obs::LogLevel::kInfo));
  obs::log_info("obs_test", "suppressed info");
  obs::log_debug("obs_test", "suppressed debug");
  obs::log_warn("obs_test", "visible warn");
  obs::log_error("obs_test", "visible error");
  obs::Logger::global().flush();

  const std::string text = read_file_text(file.path());
  EXPECT_EQ(text.find("suppressed"), std::string::npos);
  EXPECT_NE(text.find("visible warn"), std::string::npos);
  EXPECT_NE(text.find("visible error"), std::string::npos);
}

TEST(Log, OffSilencesEverything) {
  ScopedLogFile file("off");
  obs::Logger::global().set_level(obs::LogLevel::kOff);
  obs::log_error("obs_test", "not even errors");
  obs::Logger::global().flush();
  EXPECT_TRUE(read_file_text(file.path()).empty());
}

TEST(Log, ConcurrentUrgentProducersLoseNothing) {
  // warn/error records force a blocking drain, so even ring-size bursts
  // from many threads all land on the sink; every line stays one valid
  // JSON object (no interleaving).  This is the test the "tsan" label
  // exists for: emitters race the draining thread on the ring.
  ScopedLogFile file("mt");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 400;  // kThreads * kPerThread > ring size
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        obs::log_warn("obs_test.mt", "burst").field("t", t).field("i", i);
      }
    });
  }
  for (auto& t : threads) t.join();
  obs::Logger::global().flush();

  const auto lines = file_lines(file.path());
  EXPECT_EQ(lines.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  std::string error;
  for (const std::string& line : lines) {
    ASSERT_TRUE(util::json_validate(line, &error)) << error << "\n" << line;
  }
}

TEST(Log, SetFileFailureLeavesSinkUsable) {
  std::string error;
  EXPECT_FALSE(obs::Logger::global().set_file(
      "/nonexistent_dir_zzz/log.jsonl", &error));
  EXPECT_FALSE(error.empty());
  // Still able to log (to stderr) afterwards without crashing.
  obs::log_info("obs_test", "sink survived a bad set_file");
  obs::Logger::global().flush();
}

// ---------------------------------------------------------------------------
// run manifest / run status
// ---------------------------------------------------------------------------

TEST(Manifest, ToJsonValidatesAndCarriesProvenance) {
  obs::RunManifest& m = obs::RunManifest::current();
  const std::string json = m.to_json();
  std::string error;
  EXPECT_TRUE(util::json_validate(json, &error)) << error << "\n" << json;
  EXPECT_FALSE(m.run_id.empty());
  EXPECT_FALSE(m.git_describe.empty());
  EXPECT_FALSE(m.hostname.empty());
  EXPECT_FALSE(m.build_flags.empty());
  for (const char* key :
       {"\"run_id\"", "\"config_hash\"", "\"seed\"", "\"kernel\"", "\"git\"",
        "\"hostname\"", "\"build\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

TEST(Manifest, ConfigHashIsDeterministic) {
  obs::RunManifest& m = obs::RunManifest::current();
  const std::string saved_hash = m.config_hash;
  const std::uint64_t saved_seed = m.seed;

  m.set_config("{\"a\":1}", 7);
  const std::string first = m.config_hash;
  m.set_config("{\"a\":1}", 7);
  EXPECT_EQ(m.config_hash, first);
  m.set_config("{\"a\":2}", 7);
  EXPECT_NE(m.config_hash, first);

  m.config_hash = saved_hash;
  m.seed = saved_seed;
}

TEST(Manifest, RunStatusReflectsPhaseAndEpoch) {
  obs::RunStatus& status = obs::RunStatus::global();
  status.set_phase("obs_test_phase");
  status.set_epoch(17);
  const std::string json = status.to_json();
  std::string error;
  EXPECT_TRUE(util::json_validate(json, &error)) << error;
  EXPECT_NE(json.find("\"phase\":\"obs_test_phase\""), std::string::npos);
  EXPECT_NE(json.find("\"epoch\":17"), std::string::npos);
  EXPECT_NE(json.find("\"manifest\":{"), std::string::npos);
  status.set_phase("idle");
  status.set_epoch(0);
}

// ---------------------------------------------------------------------------
// Prometheus text exposition grammar
// ---------------------------------------------------------------------------

bool prom_name_ok(const std::string& name) {
  if (name.empty()) return false;
  auto first_ok = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':';
  };
  auto rest_ok = [&](char c) {
    return first_ok(c) || std::isdigit(static_cast<unsigned char>(c));
  };
  if (!first_ok(name[0])) return false;
  for (char c : name) {
    if (!rest_ok(c)) return false;
  }
  return true;
}

/// Validate Prometheus text exposition format 0.0.4 as this repo emits it.
/// Returns "" when the text conforms, otherwise a description of the first
/// violation.  Checked: HELP/TYPE precede their samples, metric-name
/// charset, counters end in _total, histogram `le` edges strictly increase
/// with cumulative non-decreasing counts ending at +Inf == _count, and unit
/// suffix conventions (`_ns` is a unit, so it never follows `_total`).
std::string check_prometheus(const std::string& text) {
  std::map<std::string, std::string> type_of;   // metric -> TYPE
  std::map<std::string, bool> help_of;          // metric -> HELP seen
  std::string cur_hist;                         // histogram being walked
  double last_le = -1.0;
  std::uint64_t last_bucket_count = 0;
  bool saw_inf = false;
  std::uint64_t inf_count = 0;

  auto fail = [](std::size_t lineno, const std::string& why) {
    return "line " + std::to_string(lineno + 1) + ": " + why;
  };

  std::vector<std::string> lines;
  {
    std::size_t start = 0;
    while (start < text.size()) {
      std::size_t end = text.find('\n', start);
      if (end == std::string::npos) end = text.size();
      lines.push_back(text.substr(start, end - start));
      start = end + 1;
    }
  }

  auto end_histogram = [&](std::size_t i) -> std::string {
    if (cur_hist.empty()) return "";
    if (!saw_inf) return fail(i, cur_hist + ": no +Inf bucket");
    cur_hist.clear();
    return "";
  };

  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.empty()) continue;

    if (line[0] == '#') {
      // "# HELP name text" or "# TYPE name type"
      if (line.rfind("# HELP ", 0) == 0) {
        const std::size_t sp = line.find(' ', 7);
        if (sp == std::string::npos) return fail(i, "HELP without text");
        help_of[line.substr(7, sp - 7)] = true;
      } else if (line.rfind("# TYPE ", 0) == 0) {
        const std::size_t sp = line.find(' ', 7);
        if (sp == std::string::npos) return fail(i, "TYPE without kind");
        const std::string name = line.substr(7, sp - 7);
        const std::string kind = line.substr(sp + 1);
        if (kind != "counter" && kind != "gauge" && kind != "histogram" &&
            kind != "summary" && kind != "untyped") {
          return fail(i, "unknown TYPE '" + kind + "'");
        }
        if (type_of.count(name) != 0) {
          return fail(i, "duplicate TYPE for " + name);
        }
        type_of[name] = kind;
      } else {
        return fail(i, "comment is neither HELP nor TYPE");
      }
      continue;
    }

    // Sample: name[{labels}] value
    const std::size_t brace = line.find('{');
    const std::size_t space = line.find(' ');
    if (space == std::string::npos) return fail(i, "sample without value");
    const std::string name =
        line.substr(0, std::min(brace, space));
    if (!prom_name_ok(name)) {
      return fail(i, "bad metric name '" + name + "'");
    }
    if (name.find("_total_ns") != std::string::npos ||
        name.find("_total_us") != std::string::npos) {
      return fail(i, name + ": unit suffix after _total");
    }

    // Resolve the base metric for histogram series suffixes.
    std::string base = name;
    bool is_bucket = false;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::size_t n = std::strlen(suffix);
      if (base.size() > n &&
          base.compare(base.size() - n, n, suffix) == 0) {
        const std::string stripped = base.substr(0, base.size() - n);
        if (type_of.count(stripped) != 0 &&
            type_of[stripped] == "histogram") {
          is_bucket = std::strcmp(suffix, "_bucket") == 0;
          base = stripped;
          break;
        }
      }
    }
    if (type_of.count(base) == 0) {
      return fail(i, base + ": sample before TYPE");
    }
    if (!help_of[base]) return fail(i, base + ": sample before HELP");
    if (type_of[base] == "counter" &&
        (base.size() < 6 ||
         base.compare(base.size() - 6, 6, "_total") != 0)) {
      return fail(i, base + ": counter without _total suffix");
    }

    // Value must parse as a number.
    const std::string value_text = line.substr(line.rfind(' ') + 1);
    char* end = nullptr;
    const double value = std::strtod(value_text.c_str(), &end);
    if (end == value_text.c_str() || *end != '\0') {
      return fail(i, "unparseable value '" + value_text + "'");
    }

    if (is_bucket) {
      const std::size_t le_pos = line.find("le=\"");
      if (le_pos == std::string::npos) {
        return fail(i, base + ": bucket without le label");
      }
      const std::size_t le_end = line.find('"', le_pos + 4);
      const std::string le_text = line.substr(le_pos + 4, le_end - le_pos - 4);
      if (base != cur_hist) {
        const std::string err = end_histogram(i);
        if (!err.empty()) return err;
        cur_hist = base;
        last_le = -1.0;
        last_bucket_count = 0;
        saw_inf = false;
      }
      const std::uint64_t count = static_cast<std::uint64_t>(value);
      if (count < last_bucket_count) {
        return fail(i, base + ": cumulative bucket count decreased");
      }
      last_bucket_count = count;
      if (le_text == "+Inf") {
        saw_inf = true;
        inf_count = count;
      } else {
        if (saw_inf) return fail(i, base + ": bucket after +Inf");
        char* le_end_p = nullptr;
        const double le = std::strtod(le_text.c_str(), &le_end_p);
        if (le_end_p == le_text.c_str()) {
          return fail(i, base + ": unparseable le '" + le_text + "'");
        }
        if (le <= last_le) {
          return fail(i, base + ": le edges not strictly increasing");
        }
        last_le = le;
      }
    } else if (base == cur_hist && name == base + "_count") {
      if (static_cast<std::uint64_t>(value) != inf_count) {
        return fail(i, base + ": _count != +Inf bucket");
      }
    }
  }
  const std::string err = end_histogram(lines.size() - 1);
  if (!err.empty()) return err;
  return "";
}

TEST(Export, PrometheusNamesAreSanitized) {
  EXPECT_EQ(obs::prometheus_name("core.oracle.queries", true),
            "mldist_core_oracle_queries_total");
  EXPECT_EQ(obs::prometheus_name("nn.fit.epoch_ns", false),
            "mldist_nn_fit_epoch_ns");
  // Already-suffixed counters are not double-suffixed.
  EXPECT_EQ(obs::prometheus_name("x.y_total", true), "mldist_x_y_total");
  EXPECT_TRUE(prom_name_ok(obs::prometheus_name("weird-name!{}", true)));
}

TEST(Export, GrammarCheckerCatchesViolations) {
  // The checker itself must reject malformed exposition, otherwise the
  // live test below proves nothing.
  EXPECT_NE(check_prometheus("mldist_x 1\n"), "");  // sample before TYPE
  EXPECT_NE(check_prometheus("# HELP mldist_x h\n"
                             "# TYPE mldist_x counter\n"
                             "mldist_x 1\n"),
            "");  // counter without _total
  EXPECT_NE(check_prometheus("# HELP mldist_h h\n"
                             "# TYPE mldist_h histogram\n"
                             "mldist_h_bucket{le=\"4\"} 2\n"
                             "mldist_h_bucket{le=\"2\"} 3\n"
                             "mldist_h_bucket{le=\"+Inf\"} 3\n"
                             "mldist_h_sum 5\n"
                             "mldist_h_count 3\n"),
            "");  // le edges decrease
  EXPECT_NE(check_prometheus("# HELP mldist_h h\n"
                             "# TYPE mldist_h histogram\n"
                             "mldist_h_bucket{le=\"2\"} 3\n"
                             "mldist_h_bucket{le=\"4\"} 2\n"
                             "mldist_h_bucket{le=\"+Inf\"} 2\n"
                             "mldist_h_sum 5\n"
                             "mldist_h_count 2\n"),
            "");  // cumulative count decreases
  EXPECT_NE(check_prometheus("# HELP mldist_h h\n"
                             "# TYPE mldist_h histogram\n"
                             "mldist_h_bucket{le=\"2\"} 3\n"
                             "mldist_h_sum 5\n"
                             "mldist_h_count 3\n"),
            "");  // no +Inf bucket
  EXPECT_NE(check_prometheus("# HELP mldist_x_total_ns h\n"
                             "# TYPE mldist_x_total_ns counter\n"
                             "mldist_x_total_ns 1\n"),
            "");  // unit suffix after _total
  EXPECT_EQ(check_prometheus("# HELP mldist_ok_total h\n"
                             "# TYPE mldist_ok_total counter\n"
                             "mldist_ok_total 1\n"),
            "");
}

TEST(Export, RenderedSnapshotPassesGrammar) {
  MetricsRegistry& reg = MetricsRegistry::global();
  reg.add(reg.counter("obs_test.export.counter"), 5);
  reg.set_gauge(reg.gauge("obs_test.export.gauge"), 3);
  const obs::MetricId h = reg.histogram("obs_test.export.hist_ns");
  for (std::uint64_t v : {0ull, 1ull, 9ull, 100000ull}) reg.observe(h, v);
  const std::string text = obs::render_prometheus(reg.snapshot());
  EXPECT_EQ(check_prometheus(text), "") << text;
  EXPECT_NE(text.find("mldist_obs_test_export_counter_total 5"),
            std::string::npos);
  EXPECT_NE(text.find("mldist_build_info{run_id=\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// embedded HTTP server — raw-socket client, same protocol as curl
// ---------------------------------------------------------------------------

struct HttpResponse {
  int status = 0;
  std::string body;
};

HttpResponse http_get(std::uint16_t port, const std::string& path) {
  HttpResponse res;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return res;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return res;
  }
  const std::string req = "GET " + path +
                          " HTTP/1.1\r\nHost: localhost\r\n"
                          "Connection: close\r\n\r\n";
  (void)::send(fd, req.data(), req.size(), 0);
  std::string raw;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  if (raw.rfind("HTTP/1.1 ", 0) == 0) {
    res.status = std::atoi(raw.c_str() + 9);
  }
  const std::size_t sep = raw.find("\r\n\r\n");
  if (sep != std::string::npos) res.body = raw.substr(sep + 4);
  return res;
}

TEST(Server, ServesMetricsHealthzRunzAnd404) {
  obs::MetricsServer server;
  std::string error;
  ASSERT_TRUE(server.start(0, &error)) << error;  // ephemeral port
  ASSERT_NE(server.port(), 0);

  const HttpResponse health = http_get(server.port(), "/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(health.body.find("\"uptime_ns\""), std::string::npos);

  obs::RunStatus::global().set_phase("obs_test_server");
  const HttpResponse runz = http_get(server.port(), "/runz");
  EXPECT_EQ(runz.status, 200);
  std::string json_error;
  EXPECT_TRUE(util::json_validate(runz.body, &json_error)) << json_error;
  EXPECT_NE(runz.body.find("\"phase\":\"obs_test_server\""),
            std::string::npos);
  EXPECT_NE(runz.body.find("\"manifest\":{"), std::string::npos);
  obs::RunStatus::global().set_phase("idle");

  const HttpResponse metrics = http_get(server.port(), "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_EQ(check_prometheus(metrics.body), "") << metrics.body;

  EXPECT_EQ(http_get(server.port(), "/nope").status, 404);
  EXPECT_GE(server.requests(), 4u);

  server.stop();
  EXPECT_FALSE(server.running());
  server.stop();  // idempotent
}

TEST(Server, DoubleStartIsHarmlessAndPortIsStable) {
  obs::MetricsServer server;
  ASSERT_TRUE(server.start(0));
  const std::uint16_t port = server.port();
  EXPECT_TRUE(server.start(0));  // already running -> true, same port
  EXPECT_EQ(server.port(), port);
  server.stop();
}

// The acceptance check of the tentpole: scrape /metrics WHILE a real
// training loop runs, validate every snapshot against the exposition
// grammar, and require the fit-progress counter to be monotonically
// increasing across epochs — live observability, not post-hoc.
TEST(Server, LiveMetricsDuringTrainingAreGrammaticalAndMonotone) {
  obs::MetricsServer server;
  std::string error;
  ASSERT_TRUE(server.start(0, &error)) << error;

  const core::GimliHashTarget target(4);
  core::CollectOptions copt;
  copt.seed = 0xfeed;
  const nn::Dataset data = core::collect_dataset(target, 128, copt);
  util::Xoshiro256 rng(3);
  auto model = core::build_default_mlp(data.x.cols(), 2, rng);

  std::vector<std::string> scrapes;
  std::vector<std::uint64_t> epoch_counts;
  nn::FitOptions fopt;
  fopt.epochs = 3;
  fopt.batch_size = 32;
  fopt.on_epoch = [&](const nn::EpochStats&) {
    const HttpResponse res = http_get(server.port(), "/metrics");
    ASSERT_EQ(res.status, 200);
    scrapes.push_back(res.body);
    // Pull the sample line (not the HELP line) out of the exposition.
    const std::string key = "\nmldist_nn_fit_epochs_total ";
    const std::size_t pos = res.body.find(key);
    ASSERT_NE(pos, std::string::npos);
    epoch_counts.push_back(
        std::strtoull(res.body.c_str() + pos + key.size(), nullptr, 10));
  };
  nn::Adam opt(0.01f);
  (void)model->fit(data, opt, fopt);
  server.stop();

  ASSERT_EQ(scrapes.size(), 3u);
  for (const std::string& text : scrapes) {
    EXPECT_EQ(check_prometheus(text), "") << text;
  }
  EXPECT_LT(epoch_counts[0], epoch_counts[1]);
  EXPECT_LT(epoch_counts[1], epoch_counts[2]);
}

// ---------------------------------------------------------------------------
// HTTP plane hardening (ISSUE 9): incremental request reassembly, read
// deadlines instead of indefinite blocking, close-on-exec listen/accept
// sockets.  Each test here failed against the pre-hardening server.
// ---------------------------------------------------------------------------

int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Drain everything the server sends until it closes, return the status.
int read_status(int fd) {
  std::string raw;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    raw.append(buf, static_cast<std::size_t>(n));
  }
  return raw.rfind("HTTP/1.1 ", 0) == 0 ? std::atoi(raw.c_str() + 9) : 0;
}

TEST(HttpReader, ReassemblesTrickledRequestAcrossFeeds) {
  obs::HttpRequestReader reader;
  const std::string req =
      "POST /v1/x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
  // One byte at a time: headers and body may arrive in any fragmentation.
  for (char c : req) {
    ASSERT_FALSE(reader.complete());
    ASSERT_TRUE(reader.feed(&c, 1));
  }
  ASSERT_TRUE(reader.complete());
  EXPECT_EQ(reader.method(), "POST");
  EXPECT_EQ(reader.path(), "/v1/x");
  EXPECT_EQ(reader.body(), "hello");
}

TEST(HttpReader, StripsQueryAndHandlesNoBody) {
  obs::HttpRequestReader reader;
  const std::string req = "GET /metrics?name=x HTTP/1.1\r\nHost: h\r\n\r\n";
  ASSERT_TRUE(reader.feed(req.data(), req.size()));
  ASSERT_TRUE(reader.complete());
  EXPECT_EQ(reader.path(), "/metrics");
  EXPECT_EQ(reader.body(), "");
}

TEST(HttpReader, RejectsMalformedOversizedAndExcessInput) {
  {  // not HTTP at all
    obs::HttpRequestReader reader;
    const std::string req = "garbage\r\n\r\n";
    reader.feed(req.data(), req.size());
    ASSERT_TRUE(reader.failed());
    EXPECT_EQ(reader.error_status(), 400);
  }
  {  // headers beyond the cap -> 431
    obs::HttpRequestReader reader(/*max_header=*/64, /*max_body=*/64);
    const std::string req =
        "GET /x HTTP/1.1\r\nX-Pad: " + std::string(128, 'a') + "\r\n\r\n";
    reader.feed(req.data(), req.size());
    ASSERT_TRUE(reader.failed());
    EXPECT_EQ(reader.error_status(), 431);
  }
  {  // declared body beyond the cap -> 413
    obs::HttpRequestReader reader(/*max_header=*/1024, /*max_body=*/8);
    const std::string req = "POST /x HTTP/1.1\r\nContent-Length: 9\r\n\r\n";
    reader.feed(req.data(), req.size());
    ASSERT_TRUE(reader.failed());
    EXPECT_EQ(reader.error_status(), 413);
  }
  {  // bytes past the declared Content-Length -> 400
    obs::HttpRequestReader reader;
    const std::string req =
        "POST /x HTTP/1.1\r\nContent-Length: 2\r\n\r\nabEXTRA";
    reader.feed(req.data(), req.size());
    ASSERT_TRUE(reader.failed());
    EXPECT_EQ(reader.error_status(), 400);
  }
}

// Regression (satellite fix): the pre-fix server did one blocking recv and
// parsed whatever arrived, so a request split across two send(2) calls got
// truncated.  Now the connection loop reassembles until complete.
TEST(Server, ReassemblesRequestSplitAcrossTwoSends) {
  obs::MetricsServer server;
  ASSERT_TRUE(server.start(0));
  const int fd = connect_loopback(server.port());
  ASSERT_GE(fd, 0);
  const std::string part1 = "GET /met";
  const std::string part2 = "rics HTTP/1.1\r\nHost: h\r\n\r\n";
  ASSERT_EQ(::send(fd, part1.data(), part1.size(), 0),
            static_cast<ssize_t>(part1.size()));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_EQ(::send(fd, part2.data(), part2.size(), 0),
            static_cast<ssize_t>(part2.size()));
  EXPECT_EQ(read_status(fd), 200);
  ::close(fd);
  server.stop();
}

// Regression (satellite fix): a client that connects and sends nothing used
// to park the single server thread in a timeout-less recv, starving every
// other scraper until the idle client went away.  Now the read deadline
// answers 408 and the server moves on; a concurrent scrape must succeed
// while the idle connection is still open.
TEST(Server, IdleClientGets408AndDoesNotStarveScrapes) {
  obs::MetricsServer server;
  ASSERT_TRUE(server.start(0));

  const int idle_fd = connect_loopback(server.port());
  ASSERT_GE(idle_fd, 0);
  // Give the server time to accept the idle connection and enter its read
  // loop before scraping.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  int scrape_status = 0;
  std::thread scraper([&] {
    scrape_status = http_get(server.port(), "/healthz").status;
  });
  // The idle connection is answered 408 once its read budget expires...
  EXPECT_EQ(read_status(idle_fd), 408);
  ::close(idle_fd);
  scraper.join();
  // ...and the concurrent scrape was served rather than queued behind it.
  EXPECT_EQ(scrape_status, 200);
  server.stop();
}

TEST(Server, OversizedHeadersAreRejectedWith431) {
  obs::MetricsServer server;
  ASSERT_TRUE(server.start(0));
  const int fd = connect_loopback(server.port());
  ASSERT_GE(fd, 0);
  const std::string req =
      "GET /metrics HTTP/1.1\r\nX-Pad: " + std::string(16 * 1024, 'a') +
      "\r\n\r\n";
  (void)::send(fd, req.data(), req.size(), 0);
  EXPECT_EQ(read_status(fd), 431);
  ::close(fd);
  server.stop();
}

// Regression (satellite fix): the listen socket used to be created without
// FD_CLOEXEC, so a worker fork+exec'd while the server ran inherited the
// bound fd and kept the port alive after stop().  With close-on-exec
// sockets the port is immediately re-bindable (no SO_REUSEADDR here — the
// raw bind only succeeds when nothing holds the address).
TEST(Server, ListenSocketIsNotInheritedBySpawnedChildren) {
  obs::MetricsServer server;
  ASSERT_TRUE(server.start(0));
  const std::uint16_t port = server.port();

  // Child spawned while the server is live: before the fix it inherited
  // the listen fd across exec.
  const pid_t child = util::spawn_process({"/bin/sleep", "30"});
  server.stop();

  const int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(probe, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  const int rc = ::bind(probe, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr));
  const int bind_errno = errno;
  ::close(probe);
  util::kill_process(child, SIGKILL);
  (void)util::wait_child(child);
  EXPECT_EQ(rc, 0) << "port " << port << " still held after stop() "
                   << "(errno " << bind_errno
                   << ") — listen fd leaked into the child";
}

// ---------------------------------------------------------------------------
// cross-process metrics shipping (obs/ship.hpp)
// ---------------------------------------------------------------------------

TEST(Ship, EncodeApplyRoundTripWithPrefix) {
  MetricsRegistry& reg = MetricsRegistry::global();
  const obs::MetricsSnapshot prev = reg.snapshot();
  reg.add(reg.counter("obs_test.ship.cells"), 5);
  reg.set_gauge(reg.gauge("obs_test.ship.depth"), 9);
  const obs::MetricId h = reg.histogram("obs_test.ship.wait");
  reg.observe(h, 3);    // bit_width 2
  reg.observe(h, 300);  // bit_width 9
  const std::string record = obs::encode_metrics_delta(prev, reg.snapshot());
  ASSERT_FALSE(record.empty());
  // The record rides the tab-framed worker status pipe as one line.
  EXPECT_EQ(record.find('\t'), std::string::npos);
  EXPECT_EQ(record.find('\n'), std::string::npos);

  ASSERT_TRUE(obs::apply_metrics_delta(record, "obs_test.shipped."));
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("obs_test.shipped.obs_test.ship.cells"), 5u);
  const auto g = std::find_if(
      snap.gauges.begin(), snap.gauges.end(), [](const auto& p) {
        return p.first == "obs_test.shipped.obs_test.ship.depth";
      });
  ASSERT_NE(g, snap.gauges.end());
  EXPECT_EQ(g->second, 9u);
  const auto hist = std::find_if(
      snap.histograms.begin(), snap.histograms.end(), [](const auto& p) {
        return p.first == "obs_test.shipped.obs_test.ship.wait";
      });
  ASSERT_NE(hist, snap.histograms.end());
  EXPECT_EQ(hist->second.count, 2u);
  EXPECT_EQ(hist->second.sum, 303u);
  EXPECT_EQ(hist->second.min, 3u);
  EXPECT_EQ(hist->second.max, 300u);
  EXPECT_EQ(hist->second.buckets[2], 1u);
  EXPECT_EQ(hist->second.buckets[9], 1u);
}

TEST(Ship, UnchangedSnapshotEncodesEmpty) {
  MetricsRegistry& reg = MetricsRegistry::global();
  reg.add(reg.counter("obs_test.ship.idle"), 1);
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(obs::encode_metrics_delta(snap, snap), "");
}

TEST(Ship, DeltasAccumulateAcrossRecords) {
  // Loss-tolerance shape: two ships of the same delta fold to the sum, the
  // same way two workers' records (or one worker's two cells) do.
  MetricsRegistry& reg = MetricsRegistry::global();
  const obs::MetricsSnapshot prev = reg.snapshot();
  reg.add(reg.counter("obs_test.ship.twice"), 7);
  const std::string record = obs::encode_metrics_delta(prev, reg.snapshot());
  ASSERT_TRUE(obs::apply_metrics_delta(record, "obs_test.shipped2."));
  ASSERT_TRUE(obs::apply_metrics_delta(record, "obs_test.shipped2."));
  EXPECT_EQ(reg.counter_value("obs_test.shipped2.obs_test.ship.twice"), 14u);
}

TEST(Ship, MalformedRecordsAreDroppedNotThrown) {
  MetricsRegistry& reg = MetricsRegistry::global();
  const obs::MetricsSnapshot before = reg.snapshot();
  EXPECT_FALSE(obs::apply_metrics_delta("garbage", "obs_test.bad."));
  EXPECT_FALSE(obs::apply_metrics_delta("C\x1f" "only_two_fields",
                                        "obs_test.bad."));
  EXPECT_FALSE(obs::apply_metrics_delta("C\x1fname\x1fnot_a_number",
                                        "obs_test.bad."));
  EXPECT_FALSE(obs::apply_metrics_delta("Z\x1fname\x1f" "1", "obs_test.bad."));
  // Nothing from a rejected record lands in the registry.
  const obs::MetricsSnapshot after = reg.snapshot();
  EXPECT_EQ(before.counters.size(), after.counters.size());
  EXPECT_EQ(reg.counter_value("obs_test.bad.name"), 0u);
}

// ---------------------------------------------------------------------------
// campaign trace merging (obs/trace_merge.hpp)
// ---------------------------------------------------------------------------

/// One synthetic obs/trace-shaped file: a complete "X" event plus the
/// otherData tail the merger keys on.
void write_trace_file(const std::filesystem::path& path, const char* name,
                      std::uint64_t epoch_ns, const char* ts_us,
                      std::uint64_t dropped) {
  std::ofstream out(path);
  out << "{\"traceEvents\":[\n"
      << "{\"name\":\"" << name << "\",\"cat\":\"test\",\"ph\":\"X\",\"ts\":"
      << ts_us << ",\"dur\":1.000,\"pid\":4242,\"tid\":1}\n"
      << "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":"
      << dropped << ",\"trace_epoch_ns\":" << epoch_ns << "}}\n";
}

TEST(TraceMerge, LanesAreRebasedOntoTheEarliestEpoch) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "mldist_obs_test_merge";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  // Lane 2's clock started 1 ms after lane 1's, so its events shift right
  // by 1000 µs on the common timeline.
  write_trace_file(dir / "worker-a.trace.json", "ev_a", 1'000'000, "12.345",
                   3);
  write_trace_file(dir / "worker-b.trace.json", "ev_b", 2'000'000, "0.500",
                   4);
  const std::vector<std::string> inputs = obs::list_trace_files(dir.string());
  ASSERT_EQ(inputs.size(), 2u);

  const std::string merged_path = (dir / "campaign.trace.json").string();
  obs::TraceMergeResult result;
  std::string error;
  ASSERT_TRUE(obs::merge_trace_files(inputs, merged_path, &result, &error))
      << error;
  EXPECT_EQ(result.lanes, 2u);
  EXPECT_EQ(result.events, 2u);
  EXPECT_EQ(result.dropped, 7u);
  EXPECT_EQ(result.epoch_ns, 1'000'000u);

  std::ifstream in(merged_path);
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  EXPECT_TRUE(util::json_validate(text, &error)) << error;
  // Perfetto lane naming: one process_name metadata row per input file.
  EXPECT_NE(text.find("\"process_name\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"worker-a\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"worker-b\""), std::string::npos);
  // pids became lane numbers; the source pid 4242 must be gone.
  EXPECT_EQ(text.find("\"pid\":4242"), std::string::npos);
  EXPECT_NE(text.find("\"ts\":12.345"), std::string::npos);  // lane 1 keeps ts
  EXPECT_NE(text.find("\"ts\":1000.500"), std::string::npos);  // lane 2 shifted
  EXPECT_NE(text.find("\"dropped_events\":7"), std::string::npos);
  EXPECT_NE(text.find("\"lanes\":2"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(TraceMerge, InvalidInputsAreSkippedNotFatal) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "mldist_obs_test_merge_bad";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  write_trace_file(dir / "worker-ok.trace.json", "ev", 5'000, "1.000", 0);
  // A lane whose process died before its first flush: not valid JSON, no
  // epoch — the merge keeps going on the lanes that did land.
  std::ofstream(dir / "worker-dead.trace.json") << "{\"traceEvents\":[{\"na";
  obs::TraceMergeResult result;
  std::string error;
  const std::string merged = (dir / "campaign.trace.json").string();
  ASSERT_TRUE(obs::merge_trace_files(obs::list_trace_files(dir.string()),
                                     merged, &result, &error))
      << error;
  EXPECT_EQ(result.lanes, 1u);
  std::ifstream in(merged);
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  EXPECT_TRUE(util::json_validate(text, &error)) << error;

  // All inputs unusable -> failure with a reason, and no output written.
  const std::string none = (dir / "none.trace.json").string();
  EXPECT_FALSE(obs::merge_trace_files(
      {(dir / "worker-dead.trace.json").string()}, none, nullptr, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(std::filesystem::exists(none));
  std::filesystem::remove_all(dir);
}

TEST(TraceMerge, ListTraceFilesMatchesOnlyWorkerLanes) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "mldist_obs_test_merge_list";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  std::ofstream(dir / "worker-2.trace.json") << "{}";
  std::ofstream(dir / "worker-1.trace.json") << "{}";
  std::ofstream(dir / "campaign.trace.json") << "{}";  // a previous merge
  std::ofstream(dir / "notes.txt") << "x";
  const std::vector<std::string> files = obs::list_trace_files(dir.string());
  ASSERT_EQ(files.size(), 2u);  // the merged output is never re-consumed
  EXPECT_NE(files[0].find("worker-1"), std::string::npos);
  EXPECT_NE(files[1].find("worker-2"), std::string::npos);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// /metrics carries the logger drop counter
// ---------------------------------------------------------------------------

TEST(Export, RenderCarriesLogDroppedTotal) {
  const std::string text =
      obs::render_prometheus(MetricsRegistry::global().snapshot());
  EXPECT_NE(text.find("# TYPE mldist_log_dropped_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("\nmldist_log_dropped_total "), std::string::npos);
}

TEST(Metrics, HotPathCounterIsCheap) {
  MetricsRegistry& reg = MetricsRegistry::global();
  const obs::MetricId id = reg.counter("obs_test.hot");
  constexpr int kIters = 1'000'000;
  const util::Timer timer;
  for (int i = 0; i < kIters; ++i) reg.add(id);
  const double per_op_ns = timer.seconds() * 1e9 / kIters;
  EXPECT_LT(per_op_ns, 500.0);
  EXPECT_GE(reg.counter_value("obs_test.hot"), 1'000'000u);
}

}  // namespace
