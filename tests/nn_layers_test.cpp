#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "core/arch_zoo.hpp"
#include "nn/activations.hpp"
#include "nn/conv1d.hpp"
#include "nn/dense.hpp"
#include "nn/loss.hpp"
#include "nn/lstm.hpp"
#include "nn/mat.hpp"
#include "nn/optimizer.hpp"
#include "nn/model.hpp"
#include "nn/serialize.hpp"
#include "util/rng.hpp"

namespace {

using namespace mldist::nn;
using mldist::util::Xoshiro256;

// ---------------------------------------------------------------------------
// Mat
// ---------------------------------------------------------------------------

TEST(Mat, MatmulSmallKnown) {
  Mat a(2, 3);
  Mat b(3, 2);
  // a = [[1,2,3],[4,5,6]], b = [[7,8],[9,10],[11,12]]
  float av[] = {1, 2, 3, 4, 5, 6};
  float bv[] = {7, 8, 9, 10, 11, 12};
  std::copy(av, av + 6, a.data());
  std::copy(bv, bv + 6, b.data());
  Mat c;
  matmul(a, b, c);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154);
}

TEST(Mat, TransposedVariantsAgreeWithExplicitTranspose) {
  Xoshiro256 rng(1);
  Mat a(4, 3);
  Mat b(4, 5);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a.data()[i] = static_cast<float>(rng.next_gaussian());
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    b.data()[i] = static_cast<float>(rng.next_gaussian());
  }
  // at_b: (3x4)*(4x5) via a^T.
  Mat at(3, 4);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 3; ++c) at.at(c, r) = a.at(r, c);
  }
  Mat want;
  matmul(at, b, want);
  Mat got;
  matmul_at_b(a, b, got);
  ASSERT_EQ(got.rows(), want.rows());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got.data()[i], want.data()[i], 1e-5);
  }
  // a_bt: (4x3)*(3x5): use c = a(4x3), d = (5x3) -> a * d^T.
  Mat d(5, 3);
  for (std::size_t i = 0; i < d.size(); ++i) {
    d.data()[i] = static_cast<float>(rng.next_gaussian());
  }
  Mat dt(3, 5);
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 3; ++c) dt.at(c, r) = d.at(r, c);
  }
  Mat want2;
  matmul(a, dt, want2);
  Mat got2;
  matmul_a_bt(a, d, got2);
  for (std::size_t i = 0; i < got2.size(); ++i) {
    EXPECT_NEAR(got2.data()[i], want2.data()[i], 1e-5);
  }
}

TEST(Mat, AddRowVector) {
  Mat m(2, 3);
  m.fill(1.0f);
  add_row_vector(m, {1.0f, 2.0f, 3.0f});
  EXPECT_FLOAT_EQ(m.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(m.at(1, 2), 4.0f);
}

// ---------------------------------------------------------------------------
// Layers: shapes, names, parameter counts
// ---------------------------------------------------------------------------

TEST(Dense, ShapeAndParamCount) {
  Xoshiro256 rng(2);
  Dense d(128, 1024, rng);
  EXPECT_EQ(d.output_size(128), 1024u);
  EXPECT_THROW((void)d.output_size(64), std::invalid_argument);
  EXPECT_EQ(d.param_count(), 128u * 1024u + 1024u);
  Mat x(3, 128);
  EXPECT_EQ(d.forward(x, false).cols(), 1024u);
  EXPECT_EQ(d.name(), "dense(128->1024)");
}

TEST(Dense, GlorotInitBounded) {
  Xoshiro256 rng(3);
  Dense d(100, 50, rng);
  const float limit = std::sqrt(6.0f / 150.0f);
  float maxabs = 0.0f;
  float sum = 0.0f;
  for (std::size_t i = 0; i < 100 * 50; ++i) {
    maxabs = std::max(maxabs, std::fabs(d.weights().data()[i]));
    sum += d.weights().data()[i];
  }
  EXPECT_LE(maxabs, limit);
  EXPECT_NEAR(sum / (100 * 50), 0.0, 0.01);
  for (float b : d.bias()) EXPECT_FLOAT_EQ(b, 0.0f);
}

TEST(Activations, ReluAndLeaky) {
  Mat x(1, 4);
  float vals[] = {-2.0f, -0.5f, 0.0f, 3.0f};
  std::copy(vals, vals + 4, x.data());
  ReLU relu;
  const Mat yr = relu.forward(x, false);
  EXPECT_FLOAT_EQ(yr.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(yr.at(0, 3), 3.0f);
  LeakyReLU leaky(0.3f);
  const Mat yl = leaky.forward(x, false);
  EXPECT_FLOAT_EQ(yl.at(0, 0), -0.6f);
  EXPECT_FLOAT_EQ(yl.at(0, 1), -0.15f);
  EXPECT_FLOAT_EQ(yl.at(0, 3), 3.0f);
}

TEST(Activations, TanhSigmoidRange) {
  Xoshiro256 rng(4);
  Mat x(2, 16);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x.data()[i] = static_cast<float>(rng.next_gaussian() * 3);
  }
  Tanh tanh_layer;
  Sigmoid sig;
  const Mat yt = tanh_layer.forward(x, false);
  const Mat ys = sig.forward(x, false);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_GE(yt.data()[i], -1.0f);
    EXPECT_LE(yt.data()[i], 1.0f);
    EXPECT_GE(ys.data()[i], 0.0f);
    EXPECT_LE(ys.data()[i], 1.0f);
  }
}

TEST(Conv1D, ShapeAndParams) {
  Xoshiro256 rng(5);
  Conv1D conv(128, 1, 32, 3, rng);
  EXPECT_EQ(conv.output_size(128), 128u * 32u);
  EXPECT_EQ(conv.param_count(), 3u * 1u * 32u + 32u);
  EXPECT_THROW(Conv1D(128, 1, 32, 4, rng), std::invalid_argument);
}

TEST(Conv1D, IdentityKernelPassesThrough) {
  // kernel 1, one channel, weight 1, bias 0 must be the identity.
  Xoshiro256 rng(6);
  Conv1D conv(8, 1, 1, 1, rng);
  auto params = conv.params();
  params[0].value[0] = 1.0f;  // single weight
  params[1].value[0] = 0.0f;  // single bias
  Mat x(2, 8);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = static_cast<float>(i);
  const Mat y = conv.forward(x, false);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_FLOAT_EQ(y.data()[i], x.data()[i]);
  }
}

TEST(Conv1D, SamePaddingZeroesOutside) {
  // kernel 3 averaging filter: the border positions see one zero pad.
  Xoshiro256 rng(7);
  Conv1D conv(4, 1, 1, 3, rng);
  auto params = conv.params();
  for (int k = 0; k < 3; ++k) params[0].value[k] = 1.0f;
  params[1].value[0] = 0.0f;
  Mat x(1, 4);
  x.fill(1.0f);
  const Mat y = conv.forward(x, false);
  EXPECT_FLOAT_EQ(y.at(0, 0), 2.0f);  // left edge: pad + 2 ones
  EXPECT_FLOAT_EQ(y.at(0, 1), 3.0f);
  EXPECT_FLOAT_EQ(y.at(0, 2), 3.0f);
  EXPECT_FLOAT_EQ(y.at(0, 3), 2.0f);
}

TEST(GlobalMaxPool, PicksPerChannelMax) {
  GlobalMaxPool1D pool(3, 2);
  Mat x(1, 6);
  // positions p0=(1, 10), p1=(5, 2), p2=(3, 7)
  float vals[] = {1, 10, 5, 2, 3, 7};
  std::copy(vals, vals + 6, x.data());
  const Mat y = pool.forward(x, false);
  EXPECT_FLOAT_EQ(y.at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 10.0f);
}

TEST(Lstm, ShapeAndParamCount) {
  Xoshiro256 rng(8);
  LSTM lstm(16, 8, 256, rng);
  EXPECT_EQ(lstm.output_size(128), 256u);
  // Keras LSTM: 4 * ((F + H) * H + H).
  EXPECT_EQ(lstm.param_count(), 4u * ((8u + 256u) * 256u + 256u));
  Mat x(2, 128);
  EXPECT_EQ(lstm.forward(x, false).cols(), 256u);
}

TEST(Lstm, ZeroInputZeroWeightsGivesZeroOutput) {
  Xoshiro256 rng(9);
  LSTM lstm(4, 2, 3, rng);
  for (auto& p : lstm.params()) {
    for (std::size_t i = 0; i < p.size; ++i) p.value[i] = 0.0f;
  }
  Mat x(1, 8);
  const Mat y = lstm.forward(x, false);
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_FLOAT_EQ(y.data()[i], 0.0f);
}

// ---------------------------------------------------------------------------
// Loss
// ---------------------------------------------------------------------------

TEST(Loss, SoftmaxRowsSumToOne) {
  Xoshiro256 rng(10);
  Mat z(5, 7);
  for (std::size_t i = 0; i < z.size(); ++i) {
    z.data()[i] = static_cast<float>(rng.next_gaussian() * 10);
  }
  const Mat p = softmax(z);
  for (std::size_t r = 0; r < 5; ++r) {
    float s = 0.0f;
    for (std::size_t c = 0; c < 7; ++c) s += p.at(r, c);
    EXPECT_NEAR(s, 1.0f, 1e-5);
  }
}

TEST(Loss, UniformLogitsGiveLogC) {
  Mat z(3, 4);
  const LossResult lr = softmax_cross_entropy(z, {0, 1, 2});
  EXPECT_NEAR(lr.loss, std::log(4.0), 1e-6);
}

TEST(Loss, PerfectPredictionLowLoss) {
  Mat z(2, 2);
  z.at(0, 0) = 20.0f;
  z.at(1, 1) = 20.0f;
  const LossResult lr = softmax_cross_entropy(z, {0, 1});
  EXPECT_LT(lr.loss, 1e-3);
  EXPECT_DOUBLE_EQ(lr.accuracy, 1.0);
}

TEST(Loss, GradientSumsToZeroPerRow) {
  Xoshiro256 rng(11);
  Mat z(4, 5);
  for (std::size_t i = 0; i < z.size(); ++i) {
    z.data()[i] = static_cast<float>(rng.next_gaussian());
  }
  const LossResult lr = softmax_cross_entropy(z, {0, 4, 2, 1});
  for (std::size_t r = 0; r < 4; ++r) {
    float s = 0.0f;
    for (std::size_t c = 0; c < 5; ++c) s += lr.dlogits.at(r, c);
    EXPECT_NEAR(s, 0.0f, 1e-6);
  }
}

TEST(Loss, NumericallyStableForHugeLogits) {
  Mat z(1, 2);
  z.at(0, 0) = 10000.0f;
  z.at(0, 1) = -10000.0f;
  const LossResult lr = softmax_cross_entropy(z, {0});
  EXPECT_TRUE(std::isfinite(lr.loss));
  EXPECT_LT(lr.loss, 1e-3);
}

// ---------------------------------------------------------------------------
// Table 3 parameter counts
// ---------------------------------------------------------------------------

TEST(ArchZoo, MlpParamCountsMatchPaperExactly) {
  Xoshiro256 rng(12);
  const std::vector<std::pair<std::string, std::size_t>> expected = {
      {"MLP I", 226633},  {"MLP II", 150658},   {"MLP IV", 90818},
      {"MLP V", 150658},
  };
  for (const auto& [name, count] : expected) {
    auto model = mldist::core::build_architecture(name, 128, 2, rng);
    EXPECT_EQ(model->param_count(), count) << name;
  }
}

TEST(ArchZoo, Mlp3ParamCountOffByPaperTypo) {
  // The paper prints 1,200,256; exact Keras accounting gives 1,200,258
  // (documented in DESIGN.md).
  Xoshiro256 rng(13);
  auto model = mldist::core::build_architecture("MLP III", 128, 2, rng);
  EXPECT_EQ(model->param_count(), 1200258u);
}

TEST(ArchZoo, AllTenArchitecturesBuildAndForward) {
  Xoshiro256 rng(14);
  Mat x(2, 128);
  for (const auto& info : mldist::core::table3_architectures()) {
    auto model = mldist::core::build_architecture(info.name, 128, 2, rng);
    const Mat y = model->forward(x);
    EXPECT_EQ(y.rows(), 2u) << info.name;
    EXPECT_EQ(y.cols(), 2u) << info.name;
    EXPECT_GT(model->param_count(), 0u) << info.name;
  }
}

TEST(ArchZoo, UnknownNameThrows) {
  Xoshiro256 rng(15);
  EXPECT_THROW((void)mldist::core::build_architecture("MLP X", 128, 2, rng),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

TEST(Serialize, RoundTripRestoresPredictions) {
  Xoshiro256 rng(16);
  auto model = mldist::core::build_default_mlp(32, 2, rng);
  Mat x(4, 32);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x.data()[i] = static_cast<float>(rng.next_double());
  }
  const Mat before = model->forward(x);

  const std::string path =
      (std::filesystem::temp_directory_path() / "mldist_test_model.nnb").string();
  save_params(*model, path);

  Xoshiro256 rng2(999);  // different init
  auto model2 = mldist::core::build_default_mlp(32, 2, rng2);
  load_params(*model2, path);
  const Mat after = model2->forward(x);
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_FLOAT_EQ(before.data()[i], after.data()[i]);
  }
  std::remove(path.c_str());
}

TEST(Serialize, ShapeMismatchRejected) {
  Xoshiro256 rng(17);
  auto model = mldist::core::build_default_mlp(32, 2, rng);
  const std::string path =
      (std::filesystem::temp_directory_path() / "mldist_test_model2.nnb").string();
  save_params(*model, path);
  auto other = mldist::core::build_default_mlp(64, 2, rng);
  EXPECT_THROW(load_params(*other, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileRejected) {
  Xoshiro256 rng(18);
  auto model = mldist::core::build_default_mlp(8, 2, rng);
  EXPECT_THROW(load_params(*model, "/nonexistent/dir/model.nnb"),
               std::runtime_error);
}


// ---------------------------------------------------------------------------
// Optimizer numerics
// ---------------------------------------------------------------------------

TEST(Optimizers, SgdStepIsExact) {
  float w[2] = {1.0f, -2.0f};
  float g[2] = {0.5f, 0.25f};
  mldist::nn::SGD sgd(0.1f);
  sgd.attach({{w, g, 2}});
  sgd.step();
  EXPECT_FLOAT_EQ(w[0], 1.0f - 0.1f * 0.5f);
  EXPECT_FLOAT_EQ(w[1], -2.0f - 0.1f * 0.25f);
  EXPECT_FLOAT_EQ(g[0], 0.0f);  // gradients zeroed after the step
  EXPECT_FLOAT_EQ(g[1], 0.0f);
}

TEST(Optimizers, AdamFirstStepSizeIsLearningRate) {
  // With bias correction, the first Adam update moves each parameter by
  // ~lr * sign(grad) regardless of gradient magnitude.
  float w[2] = {0.0f, 0.0f};
  float g[2] = {0.3f, -800.0f};
  mldist::nn::Adam adam(0.001f);
  adam.attach({{w, g, 2}});
  adam.step();
  EXPECT_NEAR(w[0], -0.001f, 1e-5);
  EXPECT_NEAR(w[1], 0.001f, 1e-5);
}

TEST(Optimizers, AdamStateSurvivesAcrossSteps) {
  float w[1] = {0.0f};
  float g[1] = {1.0f};
  mldist::nn::Adam adam(0.01f);
  adam.attach({{w, g, 1}});
  adam.step();
  const float after_one = w[0];
  g[0] = 1.0f;
  adam.step();
  // Momentum keeps pushing in the same direction.
  EXPECT_LT(w[0], after_one);
}

// ---------------------------------------------------------------------------
// Parallel matmul path
// ---------------------------------------------------------------------------

TEST(Mat, LargeMatmulMatchesNaiveReference) {
  // Big enough to trip the thread-pool path; checked against a serial
  // reference accumulation, which must agree bitwise (same per-element
  // accumulation order).
  Xoshiro256 rng(77);
  const std::size_t m = 64, k = 96, n = 128;
  Mat a(m, k), b(k, n);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a.data()[i] = static_cast<float>(rng.next_gaussian());
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    b.data()[i] = static_cast<float>(rng.next_gaussian());
  }
  Mat got;
  matmul(a, b, got);
  for (std::size_t i = 0; i < m; i += 7) {
    for (std::size_t j = 0; j < n; j += 11) {
      float ref = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) ref += a.at(i, kk) * b.at(kk, j);
      EXPECT_NEAR(got.at(i, j), ref, 1e-3f);
    }
  }
}

}  // namespace
