#include <gtest/gtest.h>

#include <array>
#include <set>

#include "analysis/ddt.hpp"
#include "ciphers/gift128.hpp"
#include "ciphers/gift64.hpp"
#include "ciphers/gift_toy.hpp"
#include "util/rng.hpp"

namespace {

using namespace mldist::ciphers;
using mldist::analysis::Ddt4;
using mldist::util::Xoshiro256;

// ---------------------------------------------------------------------------
// S-box
// ---------------------------------------------------------------------------

TEST(GiftSbox, MatchesPaperTable) {
  // §2.1 prints the S-box as the hex string 1A4C6F392DB7508E.
  const char* hex = "1A4C6F392DB7508E";
  for (int i = 0; i < 16; ++i) {
    const char c = hex[i];
    const int v = (c >= '0' && c <= '9') ? c - '0' : c - 'A' + 10;
    EXPECT_EQ(kGiftSbox[i], v) << "index " << i;
  }
}

TEST(GiftSbox, IsBijective) {
  std::set<std::uint8_t> image(kGiftSbox.begin(), kGiftSbox.end());
  EXPECT_EQ(image.size(), 16u);
}

TEST(GiftSbox, InverseIsExact) {
  for (int x = 0; x < 16; ++x) {
    EXPECT_EQ(gift_sbox_inverse(kGiftSbox[x]), x);
  }
}

TEST(GiftSbox, TransitionsUsedByToyExample) {
  // The §2.1 walk-through relies on these S-box pairs.
  EXPECT_EQ(kGiftSbox[0x0], 0x1);
  EXPECT_EQ(kGiftSbox[0x2], 0x4);
  EXPECT_EQ(kGiftSbox[0x4], 0x6);
  EXPECT_EQ(kGiftSbox[0x6], 0x3);
  EXPECT_EQ(kGiftSbox[0xd], 0x0);
  EXPECT_EQ(kGiftSbox[0xe], 0x8);
}

// ---------------------------------------------------------------------------
// Bit permutation and full cipher
// ---------------------------------------------------------------------------

TEST(Gift64, BitPermutationIsBijective) {
  std::set<int> image;
  for (int i = 0; i < 64; ++i) {
    const int p = gift64_bit_permutation(i);
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 64);
    image.insert(p);
  }
  EXPECT_EQ(image.size(), 64u);
}

TEST(Gift64, BitPermutationKeepsBitsWithinSlice) {
  // GIFT-64's P64 sends bit 4i+b of S-box i to an S-box whose index is
  // congruent to a fixed pattern; structurally, bit position mod 4 is
  // preserved (b stays b) — a documented property of the GIFT family.
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(gift64_bit_permutation(i) % 4, i % 4);
  }
}

TEST(Gift64, SubPermInverse) {
  Xoshiro256 rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t s = rng.next_u64();
    EXPECT_EQ(Gift64::sub_perm_inverse(Gift64::sub_perm(s)), s);
  }
}

TEST(Gift64, EncryptDecryptRoundTrip) {
  Xoshiro256 rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    std::array<std::uint16_t, 8> key;
    for (auto& k : key) k = static_cast<std::uint16_t>(rng.next_u32());
    const Gift64 cipher(key);
    const std::uint64_t p = rng.next_u64();
    EXPECT_EQ(cipher.decrypt(cipher.encrypt(p)), p);
  }
}

TEST(Gift64, ReducedRoundsRoundTrip) {
  const Gift64 cipher({1, 2, 3, 4, 5, 6, 7, 8});
  for (int rounds : {0, 1, 2, 5, 14, 28}) {
    const std::uint64_t p = 0x0123456789abcdefULL;
    EXPECT_EQ(cipher.decrypt(cipher.encrypt(p, rounds), rounds), p);
  }
}

TEST(Gift64, RoundMasksDiffer) {
  // Round constants must make every round mask distinct even for the
  // all-zero key.
  const Gift64 cipher({0, 0, 0, 0, 0, 0, 0, 0});
  std::set<std::uint64_t> masks(cipher.round_masks().begin(),
                                cipher.round_masks().end());
  EXPECT_EQ(masks.size(), static_cast<std::size_t>(kGift64Rounds));
}

TEST(Gift64, KeySensitivity) {
  const Gift64 c1({0, 0, 0, 0, 0, 0, 0, 0});
  const Gift64 c2({0, 0, 0, 0, 0, 0, 0, 1});
  EXPECT_NE(c1.encrypt(0), c2.encrypt(0));
}

TEST(Gift64, AvalancheAtFullRounds) {
  Xoshiro256 rng(3);
  const Gift64 cipher({11, 22, 33, 44, 55, 66, 77, 88});
  int flipped = 0;
  constexpr int kTrials = 100;
  for (int t = 0; t < kTrials; ++t) {
    const std::uint64_t p = rng.next_u64();
    flipped += __builtin_popcountll(cipher.encrypt(p) ^ cipher.encrypt(p ^ 1));
  }
  const double mean = static_cast<double>(flipped) / kTrials;
  EXPECT_GT(mean, 28.0);
  EXPECT_LT(mean, 36.0);
}

// ---------------------------------------------------------------------------
// Toy cipher (Fig. 1)
// ---------------------------------------------------------------------------

TEST(GiftToy, PermutationIsBijective) {
  std::set<std::uint8_t> image;
  for (int x = 0; x < 256; ++x) {
    image.insert(toy_permute_bits(static_cast<std::uint8_t>(x)));
  }
  EXPECT_EQ(image.size(), 256u);
}

TEST(GiftToy, CipherIsBijective) {
  std::set<std::uint8_t> image;
  for (int x = 0; x < 256; ++x) {
    image.insert(toy_cipher(static_cast<std::uint8_t>(x)));
  }
  EXPECT_EQ(image.size(), 256u);
}

TEST(GiftToy, SboxLayerActsNibblewise) {
  EXPECT_EQ(toy_sbox_layer(toy_pack(0x0, 0xd)), toy_pack(0x1, 0x0));
  EXPECT_EQ(toy_sbox_layer(toy_pack(0x2, 0xe)), toy_pack(0x4, 0x8));
}

TEST(GiftToy, PermutationSendsDw1ToDy2) {
  // Linearity: the permutation maps the difference (5,8) to (6,2).
  EXPECT_EQ(toy_permute_bits(toy_pack(5, 8)), toy_pack(6, 2));
}

TEST(GiftToy, TraceIsConsistent) {
  for (int x = 0; x < 256; ++x) {
    const auto t = toy_trace(static_cast<std::uint8_t>(x));
    EXPECT_EQ(t.w1, toy_sbox_layer(static_cast<std::uint8_t>(x)));
    EXPECT_EQ(t.y2, toy_permute_bits(t.w1));
    EXPECT_EQ(t.w2, toy_sbox_layer(t.y2));
    EXPECT_EQ(toy_cipher(static_cast<std::uint8_t>(x)), t.w2);
  }
}

// ---------------------------------------------------------------------------
// DDT facts quoted in §2.1
// ---------------------------------------------------------------------------

TEST(GiftDdt, TransitionProbabilitiesFromPaper) {
  const Ddt4 ddt{std::span<const std::uint8_t, 16>(kGiftSbox)};
  // dY1 -> dW1 = (2,3) -> (5,8): probability 2^-5 = 2^-2 * 2^-3.
  EXPECT_EQ(ddt.count(0x2, 0x5), 4);
  EXPECT_EQ(ddt.count(0x3, 0x8), 2);
  // dY2 -> dW2 = (6,2) -> (2,5): probability 2^-4 = 2^-2 * 2^-2.
  EXPECT_EQ(ddt.count(0x6, 0x2), 4);
}

TEST(GiftDdt, ValidInputsMatchPaperTuples) {
  const Ddt4 ddt{std::span<const std::uint8_t, 16>(kGiftSbox)};
  // "The valid tuples of (Y1[1], W1[1], Y1'[1], W1'[1]) is (d,0,e,8) and
  // (e,8,d,0)" — i.e. inputs {d, e} for 3 -> 8.
  EXPECT_EQ(ddt.valid_inputs(0x3, 0x8),
            (std::vector<std::uint8_t>{0xd, 0xe}));
  // Inputs {0,2,4,6} for 2 -> 5 (the paper's four tuples).
  EXPECT_EQ(ddt.valid_inputs(0x2, 0x5),
            (std::vector<std::uint8_t>{0x0, 0x2, 0x4, 0x6}));
}

TEST(GiftDdt, RowsSumTo16) {
  const Ddt4 ddt{std::span<const std::uint8_t, 16>(kGiftSbox)};
  for (int din = 0; din < 16; ++din) {
    int sum = 0;
    for (int dout = 0; dout < 16; ++dout) sum += ddt.count(
        static_cast<std::uint8_t>(din), static_cast<std::uint8_t>(dout));
    EXPECT_EQ(sum, 16);
  }
}

TEST(GiftDdt, ZeroMapsToZero) {
  const Ddt4 ddt{std::span<const std::uint8_t, 16>(kGiftSbox)};
  EXPECT_EQ(ddt.count(0, 0), 16);
  for (int dout = 1; dout < 16; ++dout) {
    EXPECT_EQ(ddt.count(0, static_cast<std::uint8_t>(dout)), 0);
  }
}

TEST(GiftDdt, UniformityIsSix) {
  // GIFT's S-box is differentially 6-uniform (design paper).
  const Ddt4 ddt{std::span<const std::uint8_t, 16>(kGiftSbox)};
  EXPECT_EQ(ddt.uniformity(), 6);
}


// ---------------------------------------------------------------------------
// GIFT-128
// ---------------------------------------------------------------------------

TEST(Gift128, BitPermutationIsBijective) {
  std::set<int> image;
  for (int i = 0; i < 128; ++i) {
    const int p = gift128_bit_permutation(i);
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 128);
    image.insert(p);
  }
  EXPECT_EQ(image.size(), 128u);
}

TEST(Gift128, BitPermutationPreservesSliceIndex) {
  for (int i = 0; i < 128; ++i) {
    EXPECT_EQ(gift128_bit_permutation(i) % 4, i % 4);
  }
}

TEST(Gift128, SubPermInverse) {
  Xoshiro256 rng(21);
  for (int trial = 0; trial < 30; ++trial) {
    const Gift128Block s{rng.next_u64(), rng.next_u64()};
    EXPECT_EQ(Gift128::sub_perm_inverse(Gift128::sub_perm(s)), s);
  }
}

TEST(Gift128, EncryptDecryptRoundTrip) {
  Xoshiro256 rng(22);
  for (int trial = 0; trial < 10; ++trial) {
    std::array<std::uint16_t, 8> key;
    for (auto& k : key) k = static_cast<std::uint16_t>(rng.next_u32());
    const Gift128 cipher(key);
    const Gift128Block p{rng.next_u64(), rng.next_u64()};
    EXPECT_EQ(cipher.decrypt(cipher.encrypt(p)), p);
  }
}

TEST(Gift128, ReducedRoundsRoundTrip) {
  const Gift128 cipher({1, 2, 3, 4, 5, 6, 7, 8});
  const Gift128Block p{0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  for (int rounds : {0, 1, 2, 11, 40}) {
    EXPECT_EQ(cipher.decrypt(cipher.encrypt(p, rounds), rounds), p);
  }
}

TEST(Gift128, KeySensitivity) {
  const Gift128 c1({0, 0, 0, 0, 0, 0, 0, 0});
  const Gift128 c2({0, 0, 0, 0, 0, 0, 0, 1});
  const Gift128Block p{};
  EXPECT_NE(c1.encrypt(p), c2.encrypt(p));
}

TEST(Gift128, RoundMasksDifferUnderZeroKey) {
  const Gift128 cipher({0, 0, 0, 0, 0, 0, 0, 0});
  std::set<std::uint64_t> lows;
  for (const auto& m : cipher.round_masks()) lows.insert(m.lo ^ (m.hi * 3));
  EXPECT_EQ(lows.size(), static_cast<std::size_t>(kGift128Rounds));
}

TEST(Gift128, AvalancheAtFullRounds) {
  Xoshiro256 rng(23);
  const Gift128 cipher({9, 8, 7, 6, 5, 4, 3, 2});
  int flipped = 0;
  constexpr int kTrials = 50;
  for (int t = 0; t < kTrials; ++t) {
    const Gift128Block p{rng.next_u64(), rng.next_u64()};
    Gift128Block p2 = p;
    p2.lo ^= 1;
    const Gift128Block c1 = cipher.encrypt(p);
    const Gift128Block c2 = cipher.encrypt(p2);
    flipped += __builtin_popcountll(c1.lo ^ c2.lo) +
               __builtin_popcountll(c1.hi ^ c2.hi);
  }
  const double mean = static_cast<double>(flipped) / kTrials;
  EXPECT_GT(mean, 56.0);
  EXPECT_LT(mean, 72.0);
}

}  // namespace
