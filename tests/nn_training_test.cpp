#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/linear_baseline.hpp"
#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "nn/model.hpp"
#include "nn/optimizer.hpp"
#include "util/rng.hpp"

namespace {

using namespace mldist::nn;
using mldist::util::Xoshiro256;

Dataset make_xor_dataset(std::size_t copies) {
  Dataset ds;
  ds.x = Mat(4 * copies, 2);
  ds.y.resize(4 * copies);
  const float inputs[4][2] = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  const int labels[4] = {0, 1, 1, 0};
  for (std::size_t c = 0; c < copies; ++c) {
    for (std::size_t i = 0; i < 4; ++i) {
      ds.x.at(4 * c + i, 0) = inputs[i][0];
      ds.x.at(4 * c + i, 1) = inputs[i][1];
      ds.y[4 * c + i] = labels[i];
    }
  }
  return ds;
}

// The paper quotes [1]: "the simplest neural networks cannot even compute
// XOR".  Our MLP with one hidden layer must learn XOR perfectly.
TEST(Training, MlpLearnsXor) {
  Xoshiro256 rng(1);
  Sequential model;
  model.add(std::make_unique<Dense>(2, 8, rng));
  model.add(std::make_unique<ReLU>());
  model.add(std::make_unique<Dense>(8, 2, rng));

  const Dataset ds = make_xor_dataset(16);
  Adam opt(0.01f);
  FitOptions fit;
  fit.epochs = 200;
  fit.batch_size = 16;
  const EpochStats stats = model.fit(ds, opt, fit);
  EXPECT_DOUBLE_EQ(stats.train_accuracy, 1.0);
  EXPECT_LT(stats.train_loss, 0.05);
}

// ...and a LINEAR model cannot (the quote is right about those).
TEST(Training, LinearModelCannotLearnXor) {
  Xoshiro256 rng(2);
  Sequential model;
  model.add(std::make_unique<Dense>(2, 2, rng));
  const Dataset ds = make_xor_dataset(16);
  Adam opt(0.01f);
  FitOptions fit;
  fit.epochs = 300;
  fit.batch_size = 16;
  const EpochStats stats = model.fit(ds, opt, fit);
  EXPECT_LE(stats.train_accuracy, 0.80);
}

TEST(Training, OverfitsTinyRandomSet) {
  // A sufficiently wide net must memorise 32 random samples.
  Xoshiro256 rng(3);
  Dataset ds;
  ds.x = Mat(32, 16);
  ds.y.resize(32);
  for (std::size_t i = 0; i < ds.x.size(); ++i) {
    ds.x.data()[i] = static_cast<float>(rng.next_gaussian());
  }
  for (auto& y : ds.y) y = static_cast<int>(rng.next_below(2));

  Sequential model;
  model.add(std::make_unique<Dense>(16, 64, rng));
  model.add(std::make_unique<ReLU>());
  model.add(std::make_unique<Dense>(64, 2, rng));
  Adam opt(0.01f);
  FitOptions fit;
  fit.epochs = 200;
  fit.batch_size = 8;
  const EpochStats stats = model.fit(ds, opt, fit);
  EXPECT_DOUBLE_EQ(stats.train_accuracy, 1.0);
}

TEST(Training, AdamBeatsSgdOnXorBudget) {
  const Dataset ds = make_xor_dataset(16);
  const auto train_with = [&](Optimizer& opt) {
    Xoshiro256 rng(4);  // identical init for both runs
    Sequential model;
    model.add(std::make_unique<Dense>(2, 8, rng));
    model.add(std::make_unique<ReLU>());
    model.add(std::make_unique<Dense>(8, 2, rng));
    FitOptions fit;
    fit.epochs = 60;
    fit.batch_size = 16;
    return model.fit(ds, opt, fit).train_loss;
  };
  Adam adam(0.01f);
  SGD sgd(0.01f);
  EXPECT_LT(train_with(adam), train_with(sgd));
}

TEST(Training, ValidationTracksHeldOutData) {
  Xoshiro256 rng(5);
  const Dataset train = make_xor_dataset(8);
  const Dataset val = make_xor_dataset(2);
  Sequential model;
  model.add(std::make_unique<Dense>(2, 8, rng));
  model.add(std::make_unique<ReLU>());
  model.add(std::make_unique<Dense>(8, 2, rng));
  Adam opt(0.01f);
  FitOptions fit;
  fit.epochs = 200;
  fit.batch_size = 8;
  fit.validation = &val;
  const EpochStats stats = model.fit(train, opt, fit);
  ASSERT_TRUE(stats.val_accuracy.has_value());
  EXPECT_DOUBLE_EQ(*stats.val_accuracy, 1.0);
  ASSERT_TRUE(stats.val_loss.has_value());
  EXPECT_FALSE(std::isnan(*stats.val_loss));
}

TEST(Training, NoValidationLeavesValStatsEmpty) {
  Xoshiro256 rng(6);
  Sequential model;
  model.add(std::make_unique<Dense>(2, 2, rng));
  Adam opt;
  FitOptions fit;
  fit.epochs = 1;
  const EpochStats stats = model.fit(make_xor_dataset(4), opt, fit);
  EXPECT_FALSE(stats.val_loss.has_value());
  EXPECT_FALSE(stats.val_accuracy.has_value());
}

TEST(Training, EpochCallbackFires) {
  Xoshiro256 rng(7);
  Sequential model;
  model.add(std::make_unique<Dense>(2, 2, rng));
  Adam opt;
  FitOptions fit;
  fit.epochs = 5;
  int calls = 0;
  fit.on_epoch = [&](const EpochStats& s) {
    ++calls;
    EXPECT_EQ(s.epoch, calls);
  };
  (void)model.fit(make_xor_dataset(4), opt, fit);
  EXPECT_EQ(calls, 5);
}

TEST(Training, DeterministicGivenSeeds) {
  const auto run = [] {
    Xoshiro256 rng(8);
    Sequential model;
    model.add(std::make_unique<Dense>(2, 8, rng));
    model.add(std::make_unique<ReLU>());
    model.add(std::make_unique<Dense>(8, 2, rng));
    Adam opt(0.01f);
    FitOptions fit;
    fit.epochs = 30;
    fit.batch_size = 8;
    fit.shuffle_seed = 0x1234;
    return model.fit(make_xor_dataset(8), opt, fit).train_loss;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(Training, PredictMatchesEvaluateAccuracy) {
  Xoshiro256 rng(9);
  Sequential model;
  model.add(std::make_unique<Dense>(2, 8, rng));
  model.add(std::make_unique<ReLU>());
  model.add(std::make_unique<Dense>(8, 2, rng));
  const Dataset ds = make_xor_dataset(4);
  Adam opt(0.01f);
  FitOptions fit;
  fit.epochs = 100;
  fit.batch_size = 4;
  (void)model.fit(ds, opt, fit);
  const auto pred = model.predict(ds.x);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == ds.y[i]) ++hits;
  }
  const EvalResult ev = model.evaluate(ds);
  EXPECT_DOUBLE_EQ(ev.accuracy,
                   static_cast<double>(hits) / static_cast<double>(pred.size()));
}

TEST(Training, PredictProbaRowsSumToOne) {
  Xoshiro256 rng(10);
  Sequential model;
  model.add(std::make_unique<Dense>(2, 4, rng));
  model.add(std::make_unique<ReLU>());
  model.add(std::make_unique<Dense>(4, 3, rng));
  Mat x(5, 2);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x.data()[i] = static_cast<float>(rng.next_double());
  }
  const Mat p = model.predict_proba(x);
  for (std::size_t r = 0; r < 5; ++r) {
    float s = 0.0f;
    for (std::size_t c = 0; c < 3; ++c) s += p.at(r, c);
    EXPECT_NEAR(s, 1.0f, 1e-5);
  }
}

// ---------------------------------------------------------------------------
// Linear SVM baseline
// ---------------------------------------------------------------------------

TEST(LinearSvm, LearnsLinearlySeparableData) {
  Xoshiro256 rng(11);
  Dataset ds;
  ds.x = Mat(200, 4);
  ds.y.resize(200);
  for (std::size_t i = 0; i < 200; ++i) {
    const int label = static_cast<int>(rng.next_below(2));
    for (std::size_t j = 0; j < 4; ++j) {
      ds.x.at(i, j) = static_cast<float>(rng.next_gaussian()) +
                      (label == 1 ? 2.0f : -2.0f);
    }
    ds.y[i] = label;
  }
  mldist::core::LinearSvm svm(4, 2);
  const double acc = svm.fit(ds, {});
  EXPECT_GT(acc, 0.97);
  EXPECT_GT(svm.accuracy(ds), 0.97);
}

TEST(LinearSvm, CannotLearnXor) {
  const Dataset ds = make_xor_dataset(32);
  mldist::core::LinearSvm svm(2, 2);
  const double acc = svm.fit(ds, {});
  EXPECT_LE(acc, 0.8);
}

TEST(LinearSvm, MulticlassSeparation) {
  Xoshiro256 rng(12);
  Dataset ds;
  ds.x = Mat(300, 2);
  ds.y.resize(300);
  const float centers[3][2] = {{4, 0}, {-4, 4}, {-4, -4}};
  for (std::size_t i = 0; i < 300; ++i) {
    const int label = static_cast<int>(i % 3);
    ds.x.at(i, 0) = centers[label][0] + static_cast<float>(rng.next_gaussian());
    ds.x.at(i, 1) = centers[label][1] + static_cast<float>(rng.next_gaussian());
    ds.y[i] = label;
  }
  mldist::core::LinearSvm svm(2, 3);
  const double acc = svm.fit(ds, {});
  EXPECT_GT(acc, 0.9);
}

TEST(LinearSvm, ParamCount) {
  mldist::core::LinearSvm svm(128, 2);
  EXPECT_EQ(svm.param_count(), 128u * 2u + 2u);
}

}  // namespace
