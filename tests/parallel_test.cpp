// Determinism contract of the parallel pipeline (see DESIGN.md):
//   * derive_stream_seed gives independent, reproducible per-chunk streams;
//   * collect_dataset's chunked engine is a pure function of (seed, chunk
//     size) — bitwise identical for every worker count, including sizes
//     that do not divide evenly into chunks;
//   * Sequential::evaluate / predict reduce per-batch partials in batch
//     order — identical results for every pool size;
//   * nested parallel_for calls run inline instead of deadlocking;
//   * a full MLDistinguisher::train is reproducible across thread counts.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <vector>

#include "core/dataset.hpp"
#include "core/distinguisher.hpp"
#include "core/experiment.hpp"
#include "core/targets.hpp"
#include "nn/model.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace mldist;

// ---------------------------------------------------------------------------
// derive_stream_seed
// ---------------------------------------------------------------------------

TEST(StreamSeed, DeterministicPerIndex) {
  EXPECT_EQ(util::derive_stream_seed(42, 0), util::derive_stream_seed(42, 0));
  EXPECT_EQ(util::derive_stream_seed(42, 7), util::derive_stream_seed(42, 7));
}

TEST(StreamSeed, DistinctAcrossIndicesAndMasters) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t master : {0ULL, 1ULL, 42ULL, 0xdeadbeefULL}) {
    for (std::uint64_t index = 0; index < 256; ++index) {
      seen.insert(util::derive_stream_seed(master, index));
    }
  }
  EXPECT_EQ(seen.size(), 4u * 256u);
}

TEST(StreamSeed, StreamsAreNotShiftedCopies) {
  // The first outputs of adjacent streams must not overlap: a plain
  // counter seed would make stream c+1 replay stream c shifted by one.
  util::Xoshiro256 a(util::derive_stream_seed(9, 0));
  util::Xoshiro256 b(util::derive_stream_seed(9, 1));
  std::set<std::uint64_t> outputs;
  for (int i = 0; i < 64; ++i) {
    outputs.insert(a.next_u64());
    outputs.insert(b.next_u64());
  }
  EXPECT_EQ(outputs.size(), 128u);
}

// ---------------------------------------------------------------------------
// collect_dataset engine
// ---------------------------------------------------------------------------

bool same_dataset(const nn::Dataset& a, const nn::Dataset& b) {
  return a.x.rows() == b.x.rows() && a.x.cols() == b.x.cols() &&
         a.y == b.y &&
         std::memcmp(a.x.data(), b.x.data(),
                     a.x.size() * sizeof(float)) == 0;
}

TEST(CollectEngine, BitwiseIdenticalAcrossThreadCounts) {
  const core::GimliHashTarget target(2);
  const core::CipherOracle oracle(target);
  // 130 base inputs with chunk 16: 8 full chunks plus a ragged tail.
  core::CollectOptions opt;
  opt.seed = 0xfeedULL;
  opt.chunk_base_inputs = 16;

  opt.threads = 1;
  const nn::Dataset serial = core::collect_dataset(oracle, 130, opt);
  for (std::size_t threads : {std::size_t{2}, std::size_t{4}, std::size_t{0}}) {
    opt.threads = threads;
    const nn::Dataset ds = core::collect_dataset(oracle, 130, opt);
    EXPECT_TRUE(same_dataset(serial, ds)) << "threads=" << threads;
  }
}

TEST(CollectEngine, SeedAndChunkSizeDefineTheBytes) {
  const core::ToyGiftTarget target;
  const core::CipherOracle oracle(target);
  core::CollectOptions opt;
  opt.seed = 5;
  opt.threads = 1;
  opt.chunk_base_inputs = 8;
  const nn::Dataset a = core::collect_dataset(oracle, 64, opt);
  const nn::Dataset b = core::collect_dataset(oracle, 64, opt);
  EXPECT_TRUE(same_dataset(a, b));

  opt.seed = 6;
  const nn::Dataset other_seed = core::collect_dataset(oracle, 64, opt);
  EXPECT_FALSE(same_dataset(a, other_seed));

  // The chunk grid is part of the contract: a different chunk size maps
  // streams to different spans, so the bytes legitimately change.
  opt.seed = 5;
  opt.chunk_base_inputs = 16;
  const nn::Dataset other_chunk = core::collect_dataset(oracle, 64, opt);
  EXPECT_FALSE(same_dataset(a, other_chunk));
}

TEST(CollectEngine, TelemetryCountsQueriesAndRows) {
  const core::GimliHashTarget target(2);
  const core::CipherOracle oracle(target);
  core::CollectOptions opt;
  opt.threads = 2;
  core::PhaseTelemetry tel;
  const nn::Dataset ds = core::collect_dataset(oracle, 50, opt, &tel);
  const std::size_t t = oracle.num_differences();
  EXPECT_EQ(ds.size(), 50 * t);
  EXPECT_EQ(tel.rows, 50 * t);
  EXPECT_EQ(tel.queries, 50 * (t + 1));
  EXPECT_GE(tel.threads, 1u);
  EXPECT_GE(tel.seconds, 0.0);
}

// ---------------------------------------------------------------------------
// evaluate / predict across pool sizes
// ---------------------------------------------------------------------------

TEST(ParallelEval, EvaluateAndPredictStableAcrossPoolSizes) {
  const core::GimliHashTarget target(2);
  const core::CipherOracle oracle(target);
  core::CollectOptions copt;
  copt.seed = 11;
  copt.threads = 1;
  const nn::Dataset data = core::collect_dataset(oracle, 200, copt);

  core::ExperimentConfig config;
  config.seed = 3;
  auto model = config.make_model(target);

  // Small batches force many parallel slices over the 400-row set.
  util::ThreadPool one(1);
  const nn::EvalResult ref = model->evaluate(data, 32, &one);
  const std::vector<int> ref_pred = model->predict(data.x, 32, &one);
  for (std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    util::ThreadPool pool(threads);
    const nn::EvalResult got = model->evaluate(data, 32, &pool);
    EXPECT_EQ(got.loss, ref.loss) << "threads=" << threads;
    EXPECT_EQ(got.accuracy, ref.accuracy) << "threads=" << threads;
    EXPECT_EQ(model->predict(data.x, 32, &pool), ref_pred)
        << "threads=" << threads;
  }
  // The global pool (whatever its size) must agree too.
  const nn::EvalResult global = model->evaluate(data, 32);
  EXPECT_EQ(global.loss, ref.loss);
  EXPECT_EQ(global.accuracy, ref.accuracy);
}

// ---------------------------------------------------------------------------
// nested parallel regions
// ---------------------------------------------------------------------------

TEST(NestedParallel, InnerParallelForRunsInlineWithoutDeadlock) {
  std::atomic<int> outer{0};
  std::atomic<int> inner{0};
  util::parallel_for_threads(4, 8, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      ++outer;
      EXPECT_TRUE(util::ThreadPool::in_parallel_region());
      // Would deadlock (or mis-schedule) if it re-entered the same pool.
      util::ThreadPool::global().parallel_for(
          4, [&](std::size_t b, std::size_t e) {
            inner += static_cast<int>(e - b);
          });
    }
  });
  EXPECT_EQ(outer.load(), 8);
  EXPECT_EQ(inner.load(), 8 * 4);
  EXPECT_FALSE(util::ThreadPool::in_parallel_region());
}

// ---------------------------------------------------------------------------
// end-to-end train reproducibility
// ---------------------------------------------------------------------------

TEST(ParallelTrain, TrainReportIdenticalAcrossThreadSettings) {
  const auto run = [](std::size_t threads) {
    core::ExperimentConfig config;
    config.target = "gimli-hash";
    config.rounds = 2;
    config.epochs = 1;
    config.seed = 77;
    config.threads = threads;
    const auto target = config.make_target();
    core::MLDistinguisher dist(*target, config);
    return dist.train(*target, 300);
  };
  const core::TrainReport a = run(1);
  const core::TrainReport b = run(2);
  EXPECT_EQ(a.train_accuracy, b.train_accuracy);
  EXPECT_EQ(a.val_accuracy, b.val_accuracy);
  EXPECT_EQ(a.train_loss, b.train_loss);
  EXPECT_EQ(a.samples, b.samples);
}

}  // namespace
