// Kernel-equivalence harness (ctest label "kernel"): pins every optimised
// compute kernel bitwise to its executable specification.
//
// Tolerance documentation: the tolerance is EXACT EQUALITY, bit for bit.
// That is achievable — not just hoped for — because every GEMM
// implementation computes each output element as the same k-ascending
// fused-multiply-add chain (c = fma(a_ik, b_kj, c) starting from +0.0f):
// blocking, packing and SIMD only change which elements are computed
// together, never the per-element accumulation order, and the kernels
// library is compiled with -ffp-contract=off so the compiler cannot
// re-associate the chain.  Batched Gimli is integer-only, so exactness
// needs no argument.  Comparisons below go through std::bit_cast so that
// +0/-0 and NaN-payload differences would be caught too.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "ciphers/gimli.hpp"
#include "core/dataset.hpp"
#include "core/oracle.hpp"
#include "core/targets.hpp"
#include "kernels/dispatch.hpp"
#include "kernels/gemm.hpp"
#include "kernels/gimli_batch.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv1d.hpp"
#include "nn/dense.hpp"
#include "nn/dropout.hpp"
#include "nn/ir/pass.hpp"
#include "nn/mat.hpp"
#include "nn/model.hpp"
#include "nn/residual.hpp"
#include "util/rng.hpp"

namespace {

using namespace mldist;
using kernels::Impl;
using mldist::util::Xoshiro256;

const Impl kStartupImpl = kernels::dispatch();

std::uint32_t bits_of(float v) { return std::bit_cast<std::uint32_t>(v); }

void expect_bitwise_equal(const std::vector<float>& got,
                          const std::vector<float>& want,
                          const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(bits_of(got[i]), bits_of(want[i]))
        << what << ": element " << i << " got " << got[i] << " want "
        << want[i];
  }
}

std::vector<float> random_floats(std::size_t n, Xoshiro256& rng) {
  std::vector<float> v(n);
  for (auto& x : v) {
    // Mixed magnitudes, signs, and exact zeros (bit-packed inputs are ~50%
    // zeros, and zeros exercise the padded-lane logic).
    const float g = static_cast<float>(rng.next_gaussian());
    x = (rng.next_below(4) == 0) ? 0.0f : g;
  }
  return v;
}

// ---------------------------------------------------------------------------
// Dispatch registry
// ---------------------------------------------------------------------------

TEST(KernelDispatch, NamesRoundTrip) {
  for (Impl impl : {Impl::kReference, Impl::kBlocked, Impl::kAvx2}) {
    Impl parsed;
    ASSERT_TRUE(kernels::parse_impl(kernels::impl_name(impl), parsed));
    EXPECT_EQ(parsed, impl);
  }
  Impl parsed;
  EXPECT_FALSE(kernels::parse_impl("sse9", parsed));
  EXPECT_FALSE(kernels::parse_impl("", parsed));
}

TEST(KernelDispatch, PortableImplsAlwaysAvailable) {
  EXPECT_TRUE(kernels::supported(Impl::kReference));
  EXPECT_TRUE(kernels::supported(Impl::kBlocked));
  const auto impls = kernels::available_impls();
  ASSERT_GE(impls.size(), 2u);
}

TEST(KernelDispatch, SetDispatchRejectsUnknownName) {
  EXPECT_THROW(kernels::set_dispatch("not-a-kernel"), std::invalid_argument);
}

TEST(KernelDispatch, SetDispatchSelects) {
  for (Impl impl : kernels::available_impls()) {
    kernels::set_dispatch(impl);
    EXPECT_EQ(kernels::dispatch(), impl);
  }
  kernels::set_dispatch(kStartupImpl);
}

// When ctest forces a path via MLDIST_KERNEL, the process must actually be
// running it (or the host can't honour the request, which is a skip, not a
// silent fallback passing as coverage).
TEST(KernelDispatch, EnvRequestHonoured) {
  const std::string& env = kernels::env_request();
  if (env.empty()) GTEST_SKIP() << "MLDIST_KERNEL not set";
  Impl requested;
  ASSERT_TRUE(kernels::parse_impl(env, requested)) << env;
  if (!kernels::supported(requested)) {
    GTEST_SKIP() << env << " not supported on this machine";
  }
  EXPECT_EQ(kStartupImpl, requested);
}

// ---------------------------------------------------------------------------
// GEMM equivalence
// ---------------------------------------------------------------------------

struct Shape {
  std::size_t m, k, n;
};

// Adversarial shapes: degenerate, tall/skinny, exact register-tile
// multiples (6x16 micro-tile), off-by-one around tile and cache-block
// (KC=256, MC=126, NC=512) boundaries.
const Shape kShapes[] = {
    {1, 1, 1},    {1, 7, 1},    {7, 1, 3},     {1, 1, 64},   {64, 1, 1},
    {2, 300, 2},  {300, 2, 2},  {2, 2, 300},   {6, 32, 16},  {12, 64, 32},
    {5, 33, 17},  {7, 255, 15}, {13, 256, 16}, {19, 257, 33}, {126, 40, 16},
    {127, 33, 31}, {31, 513, 9}, {64, 100, 520},
};

void run_gemm_all_impls(std::size_t m, std::size_t k, std::size_t n,
                        std::ptrdiff_t a_rs, std::ptrdiff_t a_cs,
                        std::ptrdiff_t b_rs, std::ptrdiff_t b_cs,
                        const std::vector<float>& a,
                        const std::vector<float>& b,
                        const kernels::GemmEpilogue& ep,
                        const std::string& what) {
  std::vector<float> want(m * n);
  kernels::gemm_impl(Impl::kReference, a.data(), a_rs, a_cs, b.data(), b_rs,
                     b_cs, want.data(), m, k, n, ep);
  for (Impl impl : kernels::available_impls()) {
    if (impl == Impl::kReference) continue;
    std::vector<float> got(m * n, -12345.0f);
    kernels::gemm_impl(impl, a.data(), a_rs, a_cs, b.data(), b_rs, b_cs,
                       got.data(), m, k, n, ep);
    expect_bitwise_equal(got, want,
                         what + " impl=" + kernels::impl_name(impl));
  }
}

TEST(GemmEquivalence, RowMajorShapes) {
  Xoshiro256 rng(0x11);
  for (const Shape& s : kShapes) {
    const auto a = random_floats(s.m * s.k, rng);
    const auto b = random_floats(s.k * s.n, rng);
    run_gemm_all_impls(s.m, s.k, s.n, static_cast<std::ptrdiff_t>(s.k), 1,
                       static_cast<std::ptrdiff_t>(s.n), 1, a, b, {},
                       "NN m=" + std::to_string(s.m) + " k=" +
                           std::to_string(s.k) + " n=" + std::to_string(s.n));
  }
}

TEST(GemmEquivalence, TransposedAOperand) {
  Xoshiro256 rng(0x22);
  for (const Shape& s : kShapes) {
    // A stored K x M (row-major); addressed as A^T via strides (1, m).
    const auto a = random_floats(s.k * s.m, rng);
    const auto b = random_floats(s.k * s.n, rng);
    run_gemm_all_impls(s.m, s.k, s.n, 1, static_cast<std::ptrdiff_t>(s.m),
                       static_cast<std::ptrdiff_t>(s.n), 1, a, b, {},
                       "TN m=" + std::to_string(s.m) + " k=" +
                           std::to_string(s.k) + " n=" + std::to_string(s.n));
  }
}

TEST(GemmEquivalence, TransposedBOperand) {
  Xoshiro256 rng(0x33);
  for (const Shape& s : kShapes) {
    // B stored N x K (row-major); addressed as B^T via strides (1, k).
    const auto a = random_floats(s.m * s.k, rng);
    const auto b = random_floats(s.n * s.k, rng);
    run_gemm_all_impls(s.m, s.k, s.n, static_cast<std::ptrdiff_t>(s.k), 1, 1,
                       static_cast<std::ptrdiff_t>(s.k), a, b, {},
                       "NT m=" + std::to_string(s.m) + " k=" +
                           std::to_string(s.k) + " n=" + std::to_string(s.n));
  }
}

TEST(GemmEquivalence, FusedEpilogues) {
  Xoshiro256 rng(0x44);
  for (const Shape& s : {Shape{5, 33, 17}, Shape{13, 256, 16},
                         Shape{127, 33, 31}, Shape{1, 1, 1}}) {
    const auto a = random_floats(s.m * s.k, rng);
    const auto b = random_floats(s.k * s.n, rng);
    const auto bias = random_floats(s.n, rng);
    for (kernels::Activation act :
         {kernels::Activation::kNone, kernels::Activation::kRelu,
          kernels::Activation::kLeakyRelu}) {
      kernels::GemmEpilogue ep;
      ep.bias = bias.data();
      ep.act = act;
      ep.alpha = 0.3f;
      run_gemm_all_impls(s.m, s.k, s.n, static_cast<std::ptrdiff_t>(s.k), 1,
                         static_cast<std::ptrdiff_t>(s.n), 1, a, b, ep,
                         "epilogue act=" +
                             std::to_string(static_cast<int>(act)));
    }
  }
}

// The fused epilogue must equal the unfused pipeline (plain GEMM, then bias
// add, then the activation layer's rewrite) bit for bit — that is what
// makes Sequential's inference-time Dense+activation fusion safe.
TEST(GemmEquivalence, FusedMatchesUnfused) {
  Xoshiro256 rng(0x55);
  const std::size_t m = 9, k = 70, n = 23;
  const auto a = random_floats(m * k, rng);
  const auto b = random_floats(k * n, rng);
  const auto bias = random_floats(n, rng);

  std::vector<float> unfused(m * n);
  kernels::gemm_impl(Impl::kReference, a.data(), k, 1, b.data(), n, 1,
                     unfused.data(), m, k, n, {});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float& v = unfused[i * n + j];
      v += bias[j];
      if (v < 0.0f) v *= 0.3f;  // LeakyReLU layer semantics
    }
  }
  kernels::GemmEpilogue ep;
  ep.bias = bias.data();
  ep.act = kernels::Activation::kLeakyRelu;
  ep.alpha = 0.3f;
  for (Impl impl : kernels::available_impls()) {
    std::vector<float> fused(m * n);
    kernels::gemm_impl(impl, a.data(), k, 1, b.data(), n, 1, fused.data(), m,
                       k, n, ep);
    expect_bitwise_equal(fused, unfused,
                         std::string("fused-vs-unfused impl=") +
                             kernels::impl_name(impl));
  }
}

// nn::mat wrappers: identical results under every dispatch selection.
TEST(GemmEquivalence, MatWrappersKernelInvariant) {
  Xoshiro256 rng(0x66);
  nn::Mat a(37, 53);
  nn::Mat b(53, 29);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a.data()[i] = static_cast<float>(rng.next_gaussian());
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    b.data()[i] = static_cast<float>(rng.next_gaussian());
  }
  nn::Mat at(53, 37);  // a^T stored explicitly, for matmul_at_b
  for (std::size_t r = 0; r < at.rows(); ++r) {
    for (std::size_t c = 0; c < at.cols(); ++c) at.at(r, c) = a.at(c, r);
  }
  nn::Mat bt(29, 53);  // b^T stored explicitly, for matmul_a_bt
  for (std::size_t r = 0; r < bt.rows(); ++r) {
    for (std::size_t c = 0; c < bt.cols(); ++c) bt.at(r, c) = b.at(c, r);
  }
  const std::vector<float> bias = random_floats(29, rng);

  kernels::set_dispatch(Impl::kReference);
  nn::Mat mm_want, atb_want, abt_want, bias_want;
  nn::matmul(a, b, mm_want);
  nn::matmul_at_b(at, b, atb_want);
  nn::matmul_a_bt(a, bt, abt_want);
  nn::matmul_bias(a, b, bias, bias_want, kernels::Activation::kRelu);

  for (Impl impl : kernels::available_impls()) {
    kernels::set_dispatch(impl);
    nn::Mat mm, atb, abt, biased;
    nn::matmul(a, b, mm);
    nn::matmul_at_b(at, b, atb);
    nn::matmul_a_bt(a, bt, abt);
    nn::matmul_bias(a, b, bias, biased, kernels::Activation::kRelu);
    const std::string tag = std::string("impl=") + kernels::impl_name(impl);
    for (std::size_t i = 0; i < mm.size(); ++i) {
      ASSERT_EQ(bits_of(mm.data()[i]), bits_of(mm_want.data()[i])) << tag;
      ASSERT_EQ(bits_of(biased.data()[i]), bits_of(bias_want.data()[i]))
          << tag;
    }
    for (std::size_t i = 0; i < atb.size(); ++i) {
      ASSERT_EQ(bits_of(atb.data()[i]), bits_of(atb_want.data()[i])) << tag;
    }
    for (std::size_t i = 0; i < abt.size(); ++i) {
      ASSERT_EQ(bits_of(abt.data()[i]), bits_of(abt_want.data()[i])) << tag;
    }
  }
  kernels::set_dispatch(kStartupImpl);
}

// Sequential's IR-compiled inference path (Dense + ReLU/LeakyReLU fused
// into the GEMM epilogue by the default pass pipeline) must return bitwise
// identical logits to the layer-by-layer training-mode forward.
TEST(GemmEquivalence, SequentialFusionMatchesUnfusedForward) {
  for (Impl impl : kernels::available_impls()) {
    kernels::set_dispatch(impl);
    Xoshiro256 rng(0x77);
    nn::Sequential model;
    model.add(std::make_unique<nn::Dense>(24, 40, rng));
    model.add(std::make_unique<nn::ReLU>());
    model.add(std::make_unique<nn::Dense>(40, 40, rng));
    model.add(std::make_unique<nn::LeakyReLU>(0.3f));
    model.add(std::make_unique<nn::Dense>(40, 2, rng));
    nn::Mat x(17, 24);
    for (std::size_t i = 0; i < x.size(); ++i) {
      x.data()[i] = static_cast<float>(rng.next_gaussian());
    }
    const nn::Mat fused = model.forward(x, /*training=*/false);
    const nn::Mat unfused = model.forward(x, /*training=*/true);
    ASSERT_EQ(fused.size(), unfused.size());
    for (std::size_t i = 0; i < fused.size(); ++i) {
      ASSERT_EQ(bits_of(fused.data()[i]), bits_of(unfused.data()[i]))
          << "impl=" << kernels::impl_name(impl);
    }
  }
  kernels::set_dispatch(kStartupImpl);
}

// Per-pass determinism contract: every optimisation pass in the default
// pipeline must preserve the bitwise output of the unoptimised graph.  The
// model exercises every fusable shape (dense+act, dense+bn+act, conv+bn+act,
// residual add+act, dropout identity, opaque tanh), and the pipeline is
// grown one pass at a time so a regression names the exact pass at fault.
TEST(GemmEquivalence, EachIrPassPreservesBitwiseOutput) {
  for (Impl impl : kernels::available_impls()) {
    kernels::set_dispatch(impl);
    Xoshiro256 rng(0x99);
    nn::Sequential model;
    model.add(std::make_unique<nn::Dense>(12, 18, rng));
    model.add(std::make_unique<nn::Tanh>());
    model.add(std::make_unique<nn::Dense>(18, 18, rng));
    model.add(std::make_unique<nn::LeakyReLU>(0.3f));
    model.add(std::make_unique<nn::Dense>(18, 18, rng));
    model.add(std::make_unique<nn::BatchNorm>(18));
    model.add(std::make_unique<nn::ReLU>());
    model.add(std::make_unique<nn::Conv1D>(6, 3, 4, 3, rng));
    model.add(std::make_unique<nn::BatchNorm>(24));
    model.add(std::make_unique<nn::ReLU>());
    auto block = std::make_unique<nn::Residual>();
    block->add(std::make_unique<nn::Conv1D>(6, 4, 4, 3, rng));
    block->add(std::make_unique<nn::BatchNorm>(24));
    model.add(std::move(block));
    model.add(std::make_unique<nn::ReLU>());
    model.add(std::make_unique<nn::Dropout>(0.25f));
    model.add(std::make_unique<nn::GlobalMaxPool1D>(6, 4));
    model.add(std::make_unique<nn::Dense>(4, 3, rng));
    nn::Mat warm(16, 12);
    for (std::size_t i = 0; i < warm.size(); ++i) {
      warm.data()[i] = static_cast<float>(rng.next_gaussian());
    }
    // Non-trivial BatchNorm running statistics (fresh mean 0 / var 1 would
    // mask mean/var indexing bugs in the fused epilogues).
    for (int i = 0; i < 3; ++i) (void)model.forward(warm, /*training=*/true);
    nn::Mat x(9, 12);
    for (std::size_t i = 0; i < x.size(); ++i) {
      x.data()[i] = static_cast<float>(rng.next_gaussian());
    }
    const nn::Mat want = model.forward_reference(x);
    std::vector<std::string> pipeline;  // start with the empty pipeline
    const auto check = [&](const std::string& stage) {
      model.set_pipeline(pipeline);
      const nn::Mat got = model.forward(x, /*training=*/false);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(bits_of(got.data()[i]), bits_of(want.data()[i]))
            << "impl=" << kernels::impl_name(impl) << " pipeline=[" << stage
            << "] element " << i;
      }
    };
    check("none");
    std::string stage;
    for (const auto& name : nn::ir::PassManager::default_pipeline()) {
      pipeline.push_back(name);
      stage += stage.empty() ? name : "," + name;
      check(stage);
    }
  }
  kernels::set_dispatch(kStartupImpl);
}

// ---------------------------------------------------------------------------
// Batched Gimli equivalence
// ---------------------------------------------------------------------------

TEST(GimliBatchEquivalence, AllRoundWindowsAllImpls) {
  Xoshiro256 rng(0x88);
  const std::size_t n = 13;  // crosses the 8-lane AVX2 chunk + scalar tail
  for (int hi = 1; hi <= ciphers::kGimliRounds; ++hi) {
    for (int lo = 1; lo <= hi; ++lo) {
      std::vector<std::uint32_t> soa(12 * n);
      for (auto& w : soa) w = rng.next_u32();
      // Scalar specification: ciphers::gimli_rounds per state.
      std::vector<ciphers::GimliState> want(n);
      for (std::size_t s = 0; s < n; ++s) {
        for (int w = 0; w < 12; ++w) {
          want[s][static_cast<std::size_t>(w)] =
              soa[static_cast<std::size_t>(w) * n + s];
        }
        ciphers::gimli_rounds(want[s], hi, lo);
      }
      for (Impl impl : kernels::available_impls()) {
        std::vector<std::uint32_t> got = soa;
        kernels::gimli_rounds_batch_impl(impl, got.data(), n, hi, lo);
        for (std::size_t s = 0; s < n; ++s) {
          for (int w = 0; w < 12; ++w) {
            ASSERT_EQ(got[static_cast<std::size_t>(w) * n + s],
                      want[s][static_cast<std::size_t>(w)])
                << "impl=" << kernels::impl_name(impl) << " hi=" << hi
                << " lo=" << lo << " state=" << s << " word=" << w;
          }
        }
      }
    }
  }
}

TEST(GimliBatchEquivalence, AosOverloadMatchesScalar) {
  Xoshiro256 rng(0x99);
  for (std::size_t n : {1u, 3u, 8u, 64u}) {
    std::vector<ciphers::GimliState> states(n);
    for (auto& st : states) {
      for (auto& w : st) w = rng.next_u32();
    }
    std::vector<ciphers::GimliState> want = states;
    for (auto& st : want) ciphers::gimli_rounds(st, 24, 1);
    ciphers::gimli_rounds_batch(states.data(), n, 24, 1);
    EXPECT_EQ(states, want) << "n=" << n;
  }
}

// ---------------------------------------------------------------------------
// Batched data collection
// ---------------------------------------------------------------------------

// The batched Gimli targets must produce byte-identical differences to the
// scalar per-sample loop, from the identical RNG stream.
TEST(BatchedCollection, GimliTargetsBatchMatchesLoop) {
  const core::GimliHashTarget hash_plain(8);
  const core::GimliHashTarget hash_prefix(5, {4, 12}, 2);
  const core::GimliCipherTarget cipher_full(8);
  const core::GimliCipherTarget cipher_split(9, {4, 12}, true);
  const core::Target* targets[] = {&hash_plain, &hash_prefix, &cipher_full,
                                   &cipher_split};
  for (const core::Target* target : targets) {
    for (std::size_t count : {1u, 3u, 8u, 33u}) {
      Xoshiro256 rng_loop(0xabcdef);
      std::vector<std::vector<std::vector<std::uint8_t>>> want(count);
      for (std::size_t s = 0; s < count; ++s) {
        target->sample(rng_loop, want[s]);
      }
      Xoshiro256 rng_batch(0xabcdef);
      core::DiffBatch got;
      target->sample_batch(rng_batch, count, got);
      ASSERT_EQ(got.size(), want.size()) << target->name();
      EXPECT_EQ(got, want) << target->name() << " count=" << count;
      // Identical randomness consumed: the streams must line up afterwards.
      EXPECT_EQ(rng_loop.next_u64(), rng_batch.next_u64()) << target->name();
    }
  }
}

// Whole-pipeline check: collect_dataset bytes are invariant to the kernel
// implementation (the batched permutation runs under each forced path).
TEST(BatchedCollection, DatasetBytesKernelInvariant) {
  const core::GimliHashTarget target(6);
  core::CollectOptions options;
  options.seed = 0x5eed;
  options.threads = 1;

  kernels::set_dispatch(Impl::kReference);
  const nn::Dataset want = core::collect_dataset(target, 50, options);
  for (Impl impl : kernels::available_impls()) {
    kernels::set_dispatch(impl);
    const nn::Dataset got = core::collect_dataset(target, 50, options);
    ASSERT_EQ(got.x.size(), want.x.size());
    EXPECT_EQ(got.y, want.y);
    EXPECT_EQ(std::memcmp(got.x.data(), want.x.data(),
                          want.x.size() * sizeof(float)),
              0)
        << "impl=" << kernels::impl_name(impl);
  }
  kernels::set_dispatch(kStartupImpl);
}

}  // namespace
