// Related-key difference injection (PR 8): the key-schedule difference must
// actually land (nonzero ciphertext-difference distribution, zero mask ==
// zero difference), related-key datasets must stay invariant to worker
// thread counts and to the sample_batch slab size, and the new diff_site /
// diffs config fields must round-trip through the 0x1f wire codec, WAL
// records, and the RunManifest config hash.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "campaign/journal.hpp"
#include "campaign/spec.hpp"
#include "campaign/supervisor.hpp"
#include "campaign/worker.hpp"
#include "core/dataset.hpp"
#include "core/experiment.hpp"
#include "core/targets.hpp"
#include "obs/manifest.hpp"
#include "util/crc32.hpp"
#include "util/rng.hpp"

namespace {

using namespace mldist;
using core::DiffSite;
using mldist::util::Xoshiro256;

// --- the key-schedule difference lands -------------------------------------

bool all_zero(const std::vector<std::uint8_t>& bytes) {
  for (const std::uint8_t b : bytes) {
    if (b != 0) return false;
  }
  return true;
}

// A related-key difference re-runs the key schedule, so the ciphertext
// difference distribution must be overwhelmingly nonzero (a zero output
// difference for a keyed permutation pair happens with probability ~2^-32
// per 4-byte observable).  Run every related-key-capable target.
TEST(RelatedKey, KeyScheduleDifferenceLands) {
  const std::vector<std::unique_ptr<core::Target>> targets = [] {
    std::vector<std::unique_ptr<core::Target>> t;
    t.push_back(std::make_unique<core::SpeckTarget>(
        5, std::vector<std::uint32_t>{0x00400000u, 0x00102000u},
        DiffSite::kRelatedKey));
    t.push_back(std::make_unique<core::SimonTarget>(
        7, std::vector<std::uint64_t>{0x40ULL, 0x4000ULL},
        DiffSite::kRelatedKey));
    t.push_back(std::make_unique<core::SimeckTarget>(
        7, std::vector<std::uint64_t>{0x40ULL, 0x4000ULL},
        DiffSite::kRelatedKey));
    t.push_back(std::make_unique<core::PresentTarget>(
        4, std::vector<std::uint64_t>{0x1ULL, 0x10ULL},
        DiffSite::kRelatedKey));
    t.push_back(std::make_unique<core::ChaskeyTarget>(
        3, std::vector<std::uint64_t>{0x1ULL, 0x80000000ULL},
        DiffSite::kRelatedKey));
    return t;
  }();
  for (const auto& target : targets) {
    Xoshiro256 rng(0x1234ULL);
    std::size_t nonzero = 0;
    std::size_t total = 0;
    std::vector<std::vector<std::uint8_t>> diffs;
    for (int s = 0; s < 64; ++s) {
      target->sample(rng, diffs);
      ASSERT_EQ(diffs.size(), target->num_differences()) << target->name();
      for (const auto& d : diffs) {
        ASSERT_EQ(d.size(), target->output_bytes()) << target->name();
        nonzero += !all_zero(d);
        ++total;
      }
    }
    EXPECT_EQ(nonzero, total) << target->name()
                              << ": related-key diffs must be nonzero";
  }
}

// The converse control: a zero key mask means both keys are identical, so
// the "difference" is E_K(P) ^ E_K(P) = 0 — exactly zero, every sample.
// This pins the related-key game's shape (same plaintext, XORed key).
TEST(RelatedKey, ZeroKeyMaskGivesZeroDifference) {
  const core::SimonTarget target(7, {0x0ULL, 0x4000ULL},
                                 DiffSite::kRelatedKey);
  Xoshiro256 rng(0x5678ULL);
  std::vector<std::vector<std::uint8_t>> diffs;
  for (int s = 0; s < 32; ++s) {
    target.sample(rng, diffs);
    EXPECT_TRUE(all_zero(diffs[0])) << "zero mask must give zero difference";
    EXPECT_FALSE(all_zero(diffs[1])) << "nonzero mask must not";
  }
}

/// Byte-level equality of two float matrices (bit features are canonical
/// 0.0f/1.0f, so this is exact).
bool mat_equal(const nn::Mat& a, const nn::Mat& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::equal(a.data(), a.data() + a.size(), b.data());
}

// Plaintext and related-key sites with the same masks must be different
// games: the collected datasets may not coincide.
TEST(RelatedKey, SiteChangesTheDataset) {
  const core::SimonTarget pt(7, {0x40ULL, 0x4000ULL}, DiffSite::kPlaintext);
  const core::SimonTarget rk(7, {0x40ULL, 0x4000ULL}, DiffSite::kRelatedKey);
  core::CollectOptions options;
  options.seed = 0x2a75eedULL;
  const nn::Dataset a = core::collect_dataset(pt, 32, options);
  const nn::Dataset b = core::collect_dataset(rk, 32, options);
  EXPECT_FALSE(mat_equal(a.x, b.x));
  EXPECT_EQ(pt.name(), "simon32-64/7r");
  EXPECT_EQ(rk.name(), "simon32-64/7r-rk");
}

// --- invariance ------------------------------------------------------------

// Thread-count invariance: the parallel collection engine must produce the
// identical byte image for 1, 2 and 5 workers (the chunk grid, not the
// worker count, owns the RNG streams).
TEST(RelatedKey, DatasetThreadInvariance) {
  const core::SimonTarget target(7, {0x40ULL, 0x4000ULL},
                                 DiffSite::kRelatedKey);
  core::CollectOptions base;
  base.seed = 0xabcdefULL;
  base.threads = 1;
  const nn::Dataset reference = core::collect_dataset(target, 96, base);
  for (const std::size_t threads : {2u, 5u}) {
    core::CollectOptions options = base;
    options.threads = threads;
    const nn::Dataset got = core::collect_dataset(target, 96, options);
    ASSERT_TRUE(mat_equal(got.x, reference.x)) << "threads=" << threads;
    ASSERT_EQ(got.y, reference.y) << "threads=" << threads;
  }
}

// Slab-size invariance at the Target layer: sample_batch must consume the
// RNG in the per-sample order of the scalar loop whatever the batch size
// (the collect_span slab loop relies on this).
TEST(RelatedKey, SampleBatchSlabInvariance) {
  const core::PresentTarget target(4, {0x1ULL, 0x10ULL},
                                   DiffSite::kRelatedKey);
  Xoshiro256 scalar_rng(0x777ULL);
  core::DiffBatch expected(17);
  for (auto& s : expected) target.sample(scalar_rng, s);
  for (const std::size_t slab : {1u, 5u, 17u}) {
    Xoshiro256 rng(0x777ULL);
    core::DiffBatch got;
    std::size_t done = 0;
    while (done < expected.size()) {
      const std::size_t n = std::min(slab, expected.size() - done);
      core::DiffBatch chunk;
      target.sample_batch(rng, n, chunk);
      for (auto& s : chunk) got.push_back(std::move(s));
      done += n;
    }
    ASSERT_EQ(got, expected) << "slab=" << slab;
  }
}

// --- config plumbing -------------------------------------------------------

// diff_site + diffs through the campaign 0x1f wire codec, including the
// empty-diffs ("target defaults") case and 64-bit hex masks.
TEST(RelatedKey, ConfigCodecRoundTrip) {
  core::ExperimentConfig config;
  config.target = "simon";
  config.rounds = 9;
  config.diff_site = "related-key";
  config.diffs = {0x40ULL, 0x4000ULL, 0x8000000000000001ULL};
  config.arch = "MLP III";
  config.seed = 0xdeadbeefULL;
  const std::string wire = campaign::encode_config(config);
  core::ExperimentConfig decoded;
  ASSERT_TRUE(campaign::decode_config(wire, decoded));
  EXPECT_EQ(decoded.diff_site, "related-key");
  EXPECT_EQ(decoded.diffs, config.diffs);
  EXPECT_EQ(decoded.target, "simon");
  EXPECT_EQ(decoded.rounds, 9);

  config.diffs.clear();
  core::ExperimentConfig empty_decoded;
  ASSERT_TRUE(campaign::decode_config(campaign::encode_config(config),
                                      empty_decoded));
  EXPECT_TRUE(empty_decoded.diffs.empty());
  EXPECT_EQ(empty_decoded.diff_site, "related-key");
}

// The config JSON (what cell payloads, history lines, and the manifest
// hash all consume) must carry both fields — and two configs differing
// only in diff_site must key to different RunManifest config hashes.
TEST(RelatedKey, ConfigJsonAndManifestHash) {
  core::ExperimentConfig config;
  config.target = "present";
  config.diff_site = "related-key";
  config.diffs = {0x1ULL, 0x10ULL};
  const std::string json = config.to_json();
  EXPECT_NE(json.find("\"diff_site\":\"related-key\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"diffs\":[\"0x1\",\"0x10\"]"), std::string::npos)
      << json;

  core::ExperimentConfig plaintext = config;
  plaintext.diff_site = "plaintext";
  obs::RunManifest m;
  m.set_config(config.to_json(), config.seed);
  const std::string rk_hash = m.config_hash;
  m.set_config(plaintext.to_json(), plaintext.seed);
  EXPECT_NE(m.config_hash, rk_hash);
}

// Unsupported combinations must fail loudly at make_target, not silently
// fall back to the plaintext game.
TEST(RelatedKey, UnsupportedTargetsReject) {
  core::ExperimentConfig config;
  config.target = "gimli-hash";
  config.diff_site = "related-key";
  EXPECT_THROW((void)config.make_target(), std::invalid_argument);
  config.target = "salsa";
  EXPECT_THROW((void)config.make_target(), std::invalid_argument);
  config.target = "toy";
  EXPECT_THROW((void)config.make_target(), std::invalid_argument);
  config.diff_site = "no-such-site";
  config.target = "simon";
  EXPECT_THROW((void)config.make_target(), std::invalid_argument);
}

// --- WAL round-trip --------------------------------------------------------

class TempDir {
 public:
  explicit TempDir(const char* tag) {
    static int counter = 0;
    path_ = (std::filesystem::temp_directory_path() /
             ("mldist-rk-" + std::to_string(::getpid()) + "-" +
              std::to_string(counter++) + "-" + tag))
                .string();
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// A serial related-key campaign cell: the WAL "done" record and the history
// line must both carry the diff_site through their embedded config JSON,
// and journal replay must key the cell under its site-suffixed id.
TEST(RelatedKey, DiffSiteFlowsThroughWalAndHistory) {
  TempDir dir("wal");
  campaign::CampaignSpec spec;
  spec.name = "rk-wal";
  spec.targets = {"simon"};
  spec.rounds = {5};
  spec.archs = {"default-mlp"};
  spec.base.diff_site = "related-key";
  spec.base.epochs = 1;
  spec.base.batch_size = 32;
  spec.base.threads = 1;
  spec.base.offline_base_inputs = 96;
  spec.base.online_base_inputs = 48;
  spec.base.games = 2;
  spec.base.max_retries = 0;
  spec.seed = 0xf00dULL;

  campaign::SupervisorOptions opt;
  opt.state_dir = dir.path();
  opt.workers = 0;
  const campaign::CampaignReport rep =
      campaign::Supervisor(spec, opt).run();
  ASSERT_EQ(rep.cells_done, 1u);

  const campaign::JournalState replayed =
      campaign::replay_journal(dir.path() + "/campaign.state.jsonl");
  ASSERT_EQ(replayed.done_payload.size(), 1u);
  const std::string& payload = replayed.done_payload.begin()->second;
  EXPECT_NE(payload.find("\"diff_site\":\"related-key\""), std::string::npos)
      << payload;

  std::ifstream history(dir.path() + "/history.jsonl");
  std::string line;
  ASSERT_TRUE(std::getline(history, line));
  EXPECT_NE(line.find("\"diff_site\":\"related-key\""), std::string::npos)
      << line;
}

}  // namespace

// This binary embeds the Supervisor, so it must be exec-able as its own
// campaign worker — mirror mldist_cli's main().
int main(int argc, char** argv) {
  if (const int worker_rc = mldist::campaign::worker_entry(argc, argv);
      worker_rc >= 0) {
    return worker_rc;
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
