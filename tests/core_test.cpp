#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>

#include "core/arch_zoo.hpp"
#include "core/dataset.hpp"
#include "core/distinguisher.hpp"
#include "core/oracle.hpp"
#include "core/model_io.hpp"
#include "core/targets.hpp"
#include "util/rng.hpp"

namespace {

using namespace mldist::core;
using mldist::util::Xoshiro256;

// ---------------------------------------------------------------------------
// Targets
// ---------------------------------------------------------------------------

TEST(Targets, GimliHashShapes) {
  const GimliHashTarget t(8);
  EXPECT_EQ(t.num_differences(), 2u);
  EXPECT_EQ(t.output_bytes(), 16u);
  Xoshiro256 rng(1);
  std::vector<std::vector<std::uint8_t>> diffs;
  t.sample(rng, diffs);
  ASSERT_EQ(diffs.size(), 2u);
  EXPECT_EQ(diffs[0].size(), 16u);
  EXPECT_EQ(diffs[1].size(), 16u);
}

TEST(Targets, GimliHashRejectsBadPositions) {
  EXPECT_THROW(GimliHashTarget(8, {4, 15}), std::invalid_argument);
  EXPECT_THROW(GimliHashTarget(8, {4}), std::invalid_argument);
}

TEST(Targets, GimliHashDiffsAreNonzeroAndDistinct) {
  const GimliHashTarget t(8);
  Xoshiro256 rng(2);
  std::vector<std::vector<std::uint8_t>> diffs;
  t.sample(rng, diffs);
  const std::vector<std::uint8_t> zero(16, 0);
  EXPECT_NE(diffs[0], zero);
  EXPECT_NE(diffs[1], zero);
  EXPECT_NE(diffs[0], diffs[1]);
}

TEST(Targets, GimliCipherShapesAndName) {
  const GimliCipherTarget t(8);
  EXPECT_EQ(t.num_differences(), 2u);
  EXPECT_EQ(t.output_bytes(), 16u);
  EXPECT_EQ(t.name(), "gimli-cipher/8r");
  const GimliCipherTarget split(8, {4, 12}, /*split_rounds=*/true);
  EXPECT_EQ(split.name(), "gimli-cipher/8r-split");
}

TEST(Targets, GimliCipherLowRoundDiffsAreStructured) {
  // At 2 total rounds the nonce difference cannot have diffused across the
  // whole rate: many output-difference bytes must still be zero.
  const GimliCipherTarget t(2);
  Xoshiro256 rng(3);
  std::vector<std::vector<std::uint8_t>> diffs;
  t.sample(rng, diffs);
  int zero_bytes = 0;
  for (std::uint8_t b : diffs[0]) zero_bytes += (b == 0);
  EXPECT_GT(zero_bytes, 4);
}

TEST(Targets, SpeckShapes) {
  const SpeckTarget t(5);
  EXPECT_EQ(t.num_differences(), 2u);
  EXPECT_EQ(t.output_bytes(), 4u);
  Xoshiro256 rng(4);
  std::vector<std::vector<std::uint8_t>> diffs;
  t.sample(rng, diffs);
  ASSERT_EQ(diffs.size(), 2u);
  EXPECT_EQ(diffs[0].size(), 4u);
}

TEST(Targets, RequireAtLeastTwoDifferences) {
  EXPECT_THROW(SpeckTarget(5, {0x40u}), std::invalid_argument);
  EXPECT_THROW(Gift64Target(5, {1}), std::invalid_argument);
  EXPECT_THROW(SalsaTarget(4, {3}), std::invalid_argument);
  EXPECT_THROW(TriviumTarget(100, {1}), std::invalid_argument);
}

TEST(Targets, Gift64AndSalsaAndTriviumShapes) {
  Xoshiro256 rng(5);
  std::vector<std::vector<std::uint8_t>> diffs;

  const Gift64Target g(4);
  g.sample(rng, diffs);
  EXPECT_EQ(diffs.size(), 2u);
  EXPECT_EQ(diffs[0].size(), 8u);

  const SalsaTarget s(4);
  s.sample(rng, diffs);
  EXPECT_EQ(diffs[0].size(), 16u);

  const TriviumTarget tr(288);
  tr.sample(rng, diffs);
  EXPECT_EQ(diffs[0].size(), 16u);
}


TEST(Targets, GimliHashPrefixBlocksModelThePapersLongMessage) {
  // 7 zero prefix blocks + 15-byte tail + pad = the paper's 128-byte
  // padded message; the prefix must not change shapes or break the
  // distinguishable structure.
  const GimliHashTarget t(6, {4, 12}, /*prefix_blocks=*/7);
  EXPECT_EQ(t.name(), "gimli-hash/6r-p7");
  Xoshiro256 rng(41);
  std::vector<std::vector<std::uint8_t>> diffs;
  t.sample(rng, diffs);
  ASSERT_EQ(diffs.size(), 2u);
  EXPECT_EQ(diffs[0].size(), 16u);
  const std::vector<std::uint8_t> zero(16, 0);
  EXPECT_NE(diffs[0], zero);
}

TEST(Targets, GimliHashPrefixedStillDistinguishable) {
  Xoshiro256 rng(42);
  auto model = build_default_mlp(128, 2, rng);
  DistinguisherOptions opt;
  opt.epochs = 2;
  MLDistinguisher dist(std::move(model), opt);
  const GimliHashTarget target(3, {4, 12}, 7);
  const TrainReport rep = dist.train(target, 400);
  EXPECT_GT(rep.val_accuracy, 0.9);
}

// ---------------------------------------------------------------------------
// Oracles and data collection
// ---------------------------------------------------------------------------

TEST(Oracles, RandomOracleIsUniformish) {
  const RandomOracle oracle(2, 16);
  Xoshiro256 rng(6);
  std::vector<std::vector<std::uint8_t>> diffs;
  int weight = 0;
  for (int i = 0; i < 100; ++i) {
    oracle.query(rng, diffs);
    for (const auto& d : diffs) {
      for (std::uint8_t b : d) weight += __builtin_popcount(b);
    }
  }
  EXPECT_NEAR(weight, 100 * 2 * 64, 600);
}

TEST(Dataset, ShapesAndLabels) {
  const GimliHashTarget t(6);
  Xoshiro256 rng(7);
  const auto ds = collect_dataset(t, 50, rng);
  EXPECT_EQ(ds.size(), 100u);
  EXPECT_EQ(ds.x.cols(), 128u);
  // Labels alternate 0, 1 within each base input.
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(ds.y[i], static_cast<int>(i % 2));
  }
  // Features are bits.
  for (std::size_t i = 0; i < ds.x.size(); ++i) {
    const float v = ds.x.data()[i];
    EXPECT_TRUE(v == 0.0f || v == 1.0f);
  }
}

TEST(Dataset, DeterministicGivenSeed) {
  const GimliHashTarget t(6);
  Xoshiro256 r1(8);
  Xoshiro256 r2(8);
  const auto a = collect_dataset(t, 10, r1);
  const auto b = collect_dataset(t, 10, r2);
  for (std::size_t i = 0; i < a.x.size(); ++i) {
    EXPECT_EQ(a.x.data()[i], b.x.data()[i]);
  }
}

// ---------------------------------------------------------------------------
// The distinguisher end to end on easy settings
// ---------------------------------------------------------------------------

TEST(Distinguisher, LearnsTwoRoundGimliHashPerfectly) {
  Xoshiro256 rng(9);
  auto model = build_default_mlp(128, 2, rng);
  DistinguisherOptions opt;
  opt.epochs = 3;
  opt.seed = 0xabc;
  MLDistinguisher dist(std::move(model), opt);
  const GimliHashTarget target(2);
  const TrainReport rep = dist.train(target, 600);
  EXPECT_GT(rep.val_accuracy, 0.95);
  EXPECT_TRUE(rep.usable);
}

TEST(Distinguisher, OnlinePhaseSeparatesCipherFromRandom) {
  Xoshiro256 rng(10);
  auto model = build_default_mlp(128, 2, rng);
  DistinguisherOptions opt;
  opt.epochs = 3;
  MLDistinguisher dist(std::move(model), opt);
  const GimliHashTarget target(2);
  (void)dist.train(target, 600);

  const CipherOracle cipher(target);
  const OnlineReport on_cipher = dist.test(cipher, 200);
  EXPECT_EQ(on_cipher.verdict, Verdict::kCipher);
  EXPECT_GT(on_cipher.accuracy, 0.9);

  const RandomOracle random(2, 16);
  const OnlineReport on_random = dist.test(random, 200);
  EXPECT_EQ(on_random.verdict, Verdict::kRandom);
  EXPECT_NEAR(on_random.accuracy, 0.5, 0.1);
}

TEST(Distinguisher, AbortsOnFullRoundGimli) {
  // Algorithm 2's abort path: at 24 rounds there is no signal, so training
  // accuracy stays at 1/t and the distinguisher reports unusable.
  Xoshiro256 rng(11);
  auto model = build_default_mlp(128, 2, rng);
  DistinguisherOptions opt;
  opt.epochs = 2;
  MLDistinguisher dist(std::move(model), opt);
  const GimliHashTarget target(24);
  const TrainReport rep = dist.train(target, 400);
  EXPECT_FALSE(rep.usable);
  EXPECT_NEAR(rep.val_accuracy, 0.5, 0.15);
}

TEST(Distinguisher, TestBeforeTrainThrows) {
  Xoshiro256 rng(12);
  auto model = build_default_mlp(128, 2, rng);
  const MLDistinguisher dist(std::make_unique<mldist::nn::Sequential>(
                                 std::move(*model)),
                             DistinguisherOptions{});
  const RandomOracle oracle(2, 16);
  EXPECT_THROW((void)dist.test(oracle, 10), std::logic_error);
}

TEST(Distinguisher, OracleMismatchThrows) {
  Xoshiro256 rng(13);
  auto model = build_default_mlp(128, 2, rng);
  DistinguisherOptions opt;
  opt.epochs = 1;
  MLDistinguisher dist(std::move(model), opt);
  const GimliHashTarget target(2);
  (void)dist.train(target, 50);
  const RandomOracle wrong_t(4, 16);
  EXPECT_THROW((void)dist.test(wrong_t, 10), std::invalid_argument);
}

TEST(Distinguisher, NullModelThrows) {
  EXPECT_THROW(MLDistinguisher(nullptr, DistinguisherOptions{}),
               std::invalid_argument);
}

TEST(Distinguisher, Log2DataAccounting) {
  Xoshiro256 rng(14);
  auto model = build_default_mlp(128, 2, rng);
  DistinguisherOptions opt;
  opt.epochs = 1;
  MLDistinguisher dist(std::move(model), opt);
  const GimliHashTarget target(2);
  const TrainReport rep = dist.train(target, 256);
  // 256 base inputs * (t + 1 = 3) queries = 768 -> log2 = 9.58.
  EXPECT_NEAR(rep.log2_data, std::log2(768.0), 1e-9);
}


// ---------------------------------------------------------------------------
// Architecture-aware model persistence
// ---------------------------------------------------------------------------

TEST(ModelIo, RoundTripRebuildsArchitectureAndWeights) {
  Xoshiro256 rng(31);
  auto model = build_default_mlp(64, 2, rng);
  mldist::nn::Mat x(3, 64);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x.data()[i] = static_cast<float>(rng.next_double());
  }
  const mldist::nn::Mat before = model->forward(x);

  const std::string path =
      (std::filesystem::temp_directory_path() / "mldist_model_io.nnm").string();
  save_model(*model, "default-mlp", 64, 2, path);

  const LoadedModel loaded = load_model(path);
  EXPECT_EQ(loaded.arch, "default-mlp");
  EXPECT_EQ(loaded.input_bits, 64u);
  EXPECT_EQ(loaded.classes, 2u);
  const mldist::nn::Mat after = loaded.model->forward(x);
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_FLOAT_EQ(before.data()[i], after.data()[i]);
  }
  std::remove(path.c_str());
}

TEST(ModelIo, ZooArchitecturesRoundTrip) {
  Xoshiro256 rng(32);
  const std::string path =
      (std::filesystem::temp_directory_path() / "mldist_model_io2.nnm").string();
  for (const char* arch : {"MLP II", "MLP IV"}) {
    auto model = build_architecture(arch, 32, 2, rng);
    save_model(*model, arch, 32, 2, path);
    const LoadedModel loaded = load_model(path);
    EXPECT_EQ(loaded.arch, arch);
    EXPECT_EQ(loaded.model->param_count(), model->param_count());
  }
  std::remove(path.c_str());
}

TEST(ModelIo, GohrNetNameEncodesDepth) {
  Xoshiro256 rng(33);
  auto model = build_gohr_net(16, 2, 1, rng);
  const std::string path =
      (std::filesystem::temp_directory_path() / "mldist_model_io3.nnm").string();
  save_model(*model, "gohr-net/1", 16, 2, path);
  const LoadedModel loaded = load_model(path);
  EXPECT_EQ(loaded.model->param_count(), model->param_count());
  std::remove(path.c_str());
}

// Regression (satellite fix): the "gohr-net/<depth>" suffix was parsed
// with a bare std::stoul at two sites (experiment config and the model-io
// header), so "gohr-net/x" crashed with an uncaught exception whose
// message ("stoul") named neither the architecture nor the expectation,
// and "gohr-net/2junk" silently truncated to depth 2.  gohr_net_depth
// validates and throws a typed config error instead.
TEST(ArchZoo, GohrNetDepthParsingIsValidated) {
  EXPECT_EQ(gohr_net_depth("gohr-net/1"), 1u);
  EXPECT_EQ(gohr_net_depth("gohr-net/10"), 10u);
  const auto expect_bad = [](const std::string& arch) {
    try {
      (void)gohr_net_depth(arch);
      FAIL() << "expected invalid_argument for " << arch;
    } catch (const std::invalid_argument& e) {
      // The error must name the offending architecture, not "stoul".
      EXPECT_NE(std::string(e.what()).find(arch), std::string::npos)
          << e.what();
    }
  };
  expect_bad("gohr-net/x");
  expect_bad("gohr-net/");
  expect_bad("gohr-net/2junk");  // stoul would have accepted this as 2
  expect_bad("gohr-net/-3");
  expect_bad("gohr-net/0");
  expect_bad("gohr-net/65");  // depth cap
  expect_bad("gohr-net/99999999999999999999");  // stoul threw out_of_range
}

// Both call sites of the fix: building a model from an experiment config
// and rebuilding the architecture named in a model-file header must reject
// a malformed depth as std::invalid_argument (the CLI maps that to the
// config exit code).
TEST(ArchZoo, MalformedGohrDepthIsATypedConfigErrorAtBothSites) {
  ExperimentConfig config;
  config.target = "toy";
  config.arch = "gohr-net/2junk";
  const auto target = config.make_target();
  EXPECT_THROW((void)config.make_model(*target), std::invalid_argument);

  // Model-io site: a handcrafted header naming a malformed depth.
  const std::string path =
      (std::filesystem::temp_directory_path() / "mldist_model_badarch.nnm")
          .string();
  {
    std::ofstream out(path, std::ios::binary);
    out << "MLDM1\ngohr-net/2junk\n16 2\n";
  }
  EXPECT_THROW((void)load_model(path), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(ModelIo, RejectsUnknownArchitectureOnSave) {
  Xoshiro256 rng(34);
  auto model = build_default_mlp(8, 2, rng);
  EXPECT_THROW(save_model(*model, "no-such-arch", 8, 2, "/tmp/x.nnm"),
               std::invalid_argument);
}

TEST(ModelIo, RejectsMalformedFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "mldist_model_bad.nnm").string();
  {
    std::ofstream out(path);
    out << "NOT A MODEL\n";
  }
  EXPECT_THROW((void)load_model(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
