#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "ciphers/speck3264.hpp"
#include "util/rng.hpp"

namespace {

using namespace mldist::ciphers;
using mldist::util::Xoshiro256;

TEST(Speck, OfficialTestVector) {
  // SPECK-32/64 vector from the SIMON/SPECK design paper:
  // key 1918 1110 0908 0100, plaintext 6574 694c -> ciphertext a868 42f2.
  const Speck3264 cipher({0x1918, 0x1110, 0x0908, 0x0100});
  const SpeckBlock ct = cipher.encrypt({0x6574, 0x694c});
  EXPECT_EQ(ct.x, 0xa868);
  EXPECT_EQ(ct.y, 0x42f2);
}

TEST(Speck, DecryptInvertsEncrypt) {
  Xoshiro256 rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const std::array<std::uint16_t, 4> key = {
        static_cast<std::uint16_t>(rng.next_u32()),
        static_cast<std::uint16_t>(rng.next_u32()),
        static_cast<std::uint16_t>(rng.next_u32()),
        static_cast<std::uint16_t>(rng.next_u32())};
    const Speck3264 cipher(key);
    const SpeckBlock p = SpeckBlock::from_u32(rng.next_u32());
    EXPECT_EQ(cipher.decrypt(cipher.encrypt(p)), p);
  }
}

TEST(Speck, ReducedRoundsInvertToo) {
  Xoshiro256 rng(2);
  const Speck3264 cipher({1, 2, 3, 4});
  for (int rounds : {0, 1, 5, 7, 11, 22}) {
    const SpeckBlock p = SpeckBlock::from_u32(rng.next_u32());
    EXPECT_EQ(cipher.decrypt(cipher.encrypt(p, rounds), rounds), p);
  }
}

TEST(Speck, RoundInverseIsExact) {
  Xoshiro256 rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    const SpeckBlock b = SpeckBlock::from_u32(rng.next_u32());
    const std::uint16_t k = static_cast<std::uint16_t>(rng.next_u32());
    EXPECT_EQ(Speck3264::round_inverse(Speck3264::round(b, k), k), b);
  }
}

TEST(Speck, KeyScheduleProduces22Keys) {
  const Speck3264 cipher({0, 0, 0, 0});
  EXPECT_EQ(cipher.round_keys().size(), 22u);
}

TEST(Speck, ZeroRoundsIsIdentity) {
  const Speck3264 cipher({5, 6, 7, 8});
  const SpeckBlock p = {0x1234, 0x5678};
  EXPECT_EQ(cipher.encrypt(p, 0), p);
}

TEST(Speck, BlockU32RoundTrip) {
  const SpeckBlock b = {0xabcd, 0xef01};
  EXPECT_EQ(b.as_u32(), 0xabcdef01u);
  EXPECT_EQ(SpeckBlock::from_u32(0xabcdef01u), b);
}

TEST(Speck, KeySensitivity) {
  const SpeckBlock p = {0x6574, 0x694c};
  const Speck3264 c1({0x1918, 0x1110, 0x0908, 0x0100});
  const Speck3264 c2({0x1918, 0x1110, 0x0908, 0x0101});
  EXPECT_NE(c1.encrypt(p), c2.encrypt(p));
}

TEST(Speck, AvalancheAtFullRounds) {
  Xoshiro256 rng(4);
  const Speck3264 cipher({0x0123, 0x4567, 0x89ab, 0xcdef});
  int flipped = 0;
  constexpr int kTrials = 200;
  for (int trial = 0; trial < kTrials; ++trial) {
    const std::uint32_t p = rng.next_u32();
    const std::uint32_t c1 = cipher.encrypt(SpeckBlock::from_u32(p)).as_u32();
    const std::uint32_t c2 =
        cipher.encrypt(SpeckBlock::from_u32(p ^ 1u)).as_u32();
    flipped += __builtin_popcount(c1 ^ c2);
  }
  const double mean_flipped = static_cast<double>(flipped) / kTrials;
  EXPECT_GT(mean_flipped, 13.0);  // expect ~16 of 32
  EXPECT_LT(mean_flipped, 19.0);
}

TEST(Speck, GohrDifferenceBiasAtFourRounds) {
  // The classical fact behind Gohr's distinguisher: with input difference
  // 0x0040/0000, round-reduced SPECK shows strongly non-uniform output
  // differences.  At 4 rounds the best output difference has measured
  // probability ~2^-7, so its count over 4000 samples must far exceed the
  // ~1 expected under uniformity.  (At 5 rounds the best transition is
  // ~2^-12 — Gohr's DDT value — which needs a larger budget; the bench
  // covers that.)
  Xoshiro256 rng(5);
  std::map<std::uint32_t, int> hist;
  for (int i = 0; i < 4000; ++i) {
    const std::array<std::uint16_t, 4> key = {
        static_cast<std::uint16_t>(rng.next_u32()),
        static_cast<std::uint16_t>(rng.next_u32()),
        static_cast<std::uint16_t>(rng.next_u32()),
        static_cast<std::uint16_t>(rng.next_u32())};
    const Speck3264 cipher(key);
    const std::uint32_t p = rng.next_u32();
    const std::uint32_t d =
        cipher.encrypt(SpeckBlock::from_u32(p), 4).as_u32() ^
        cipher.encrypt(SpeckBlock::from_u32(p ^ 0x00400000u), 4).as_u32();
    ++hist[d];
  }
  int best = 0;
  for (const auto& [d, n] : hist) best = std::max(best, n);
  EXPECT_GT(best, 15);
}

}  // namespace
