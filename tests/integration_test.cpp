// Cross-module integration: the full Algorithm 2 pipeline — offline data
// collection, training, model persistence between phases (the paper's ".h5"
// hand-off), the online oracle game, and the SVM baseline plugged into the
// same data path.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>

#include "core/arch_zoo.hpp"
#include "core/dataset.hpp"
#include "core/distinguisher.hpp"
#include "core/linear_baseline.hpp"
#include "core/online_game.hpp"
#include "core/targets.hpp"
#include "nn/serialize.hpp"
#include "util/rng.hpp"

namespace {

using namespace mldist::core;
using mldist::util::Xoshiro256;

TEST(Integration, OfflineOnlineWithModelPersistence) {
  // Offline phase: train on 3-round Gimli-Hash, save the model.
  Xoshiro256 rng(1);
  const GimliHashTarget target(3);
  const std::string path =
      (std::filesystem::temp_directory_path() / "mldist_offline.nnb").string();
  double train_acc = 0.0;
  {
    auto model = build_default_mlp(128, 2, rng);
    DistinguisherOptions opt;
    opt.epochs = 3;
    MLDistinguisher dist(std::move(model), opt);
    const TrainReport rep = dist.train(target, 500);
    ASSERT_TRUE(rep.usable);
    train_acc = rep.val_accuracy;
    mldist::nn::save_params(dist.model(), path);
  }

  // Online phase in a "fresh process": rebuild the architecture, load the
  // weights, classify oracle data.
  {
    Xoshiro256 rng2(999);
    auto model = build_default_mlp(128, 2, rng2);
    mldist::nn::load_params(*model, path);

    const CipherOracle cipher(target);
    Xoshiro256 online_rng(7);
    const auto online = collect_dataset(cipher, 300, online_rng);
    const auto pred = model->predict(online.x);
    std::size_t hits = 0;
    for (std::size_t i = 0; i < pred.size(); ++i) {
      if (pred[i] == online.y[i]) ++hits;
    }
    const double online_acc =
        static_cast<double>(hits) / static_cast<double>(pred.size());
    // a' must track a (the paper's CIPHER decision condition).
    EXPECT_NEAR(online_acc, train_acc, 0.1);
    EXPECT_GT(online_acc, 0.8);
  }
  std::remove(path.c_str());
}

TEST(Integration, OracleGameMostlyWonOnEasyTarget) {
  Xoshiro256 rng(2);
  auto model = build_default_mlp(128, 2, rng);
  DistinguisherOptions opt;
  opt.epochs = 3;
  MLDistinguisher dist(std::move(model), opt);
  const GimliHashTarget target(2);
  (void)dist.train(target, 500);

  const GameReport rep = play_games(dist, target, 12, 150, /*seed=*/0xfeed);
  EXPECT_GE(rep.success_rate, 0.9);
  EXPECT_GT(rep.mean_cipher_accuracy, 0.9);
  EXPECT_NEAR(rep.mean_random_accuracy, 0.5, 0.1);
  // Accounting invariants (see GameReport docs): a game lands in at most
  // one of correct / inconclusive, and success_rate's denominator is games.
  EXPECT_LE(rep.correct + rep.inconclusive, rep.games);
  EXPECT_DOUBLE_EQ(
      rep.success_rate,
      static_cast<double>(rep.correct) / static_cast<double>(rep.games));
}

TEST(Integration, GameReportCountsInconclusiveAgainstSuccessRate) {
  // Pin the GameReport accounting: an inconclusive game increments
  // `inconclusive` AND counts against `success_rate` (denominator stays
  // `games`, numerator only counts correct calls).
  //
  // With online_base_inputs = 1 each game scores t = 2 rows.  decide() is
  // then always underpowered (3*se ~ 1.06 exceeds the largest possible
  // training advantage 0.5) and the z-vs-random escape hatch cannot fire
  // either (2 hits out of 2 gives z ~ 1.41 < 3), so every game is
  // deterministically inconclusive regardless of the referee's coins.
  Xoshiro256 rng(5);
  auto model = build_default_mlp(128, 2, rng);
  DistinguisherOptions opt;
  opt.epochs = 1;
  MLDistinguisher dist(std::move(model), opt);
  const GimliHashTarget target(2);
  (void)dist.train(target, 200);

  const GameReport rep =
      play_games(dist, target, 6, /*online_base_inputs=*/1, /*seed=*/0xabcd);
  EXPECT_EQ(rep.games, 6u);
  EXPECT_EQ(rep.inconclusive, 6u);
  EXPECT_EQ(rep.correct, 0u);
  EXPECT_DOUBLE_EQ(rep.success_rate, 0.0);
  EXPECT_LE(rep.correct + rep.inconclusive, rep.games);
}

TEST(Integration, SvmBaselineWorksOnVeryLowRounds) {
  // §6: an SVM can replace the neural network.  On 2-round Gimli-Hash the
  // structure is strong enough for a linear model.
  Xoshiro256 rng(3);
  const GimliHashTarget target(2);
  const auto train = collect_dataset(target, 500, rng);
  const auto test = collect_dataset(target, 200, rng);
  LinearSvm svm(128, 2);
  (void)svm.fit(train, {});
  EXPECT_GT(svm.accuracy(test), 0.8);
}

TEST(Integration, SpeckDistinguisherAtFiveRounds) {
  Xoshiro256 rng(4);
  auto model = build_default_mlp(32, 2, rng);
  DistinguisherOptions opt;
  opt.epochs = 5;
  MLDistinguisher dist(std::move(model), opt);
  const SpeckTarget target(5);
  const TrainReport rep = dist.train(target, 2000);
  EXPECT_TRUE(rep.usable);
  EXPECT_GT(rep.val_accuracy, 0.55);

  const CipherOracle cipher(target);
  EXPECT_EQ(dist.test(cipher, 1500).verdict, Verdict::kCipher);
  const RandomOracle random(2, 4);
  EXPECT_EQ(dist.test(random, 1500).verdict, Verdict::kRandom);
}

TEST(Integration, AccuracyDecreasesWithRounds) {
  // The Table-2 shape on a small budget: more rounds, less signal.
  double prev = 1.1;
  for (int rounds : {2, 4, 6}) {
    Xoshiro256 rng(5);
    auto model = build_default_mlp(128, 2, rng);
    DistinguisherOptions opt;
    opt.epochs = 3;
    opt.seed = 0x5eed + static_cast<std::uint64_t>(rounds);
    MLDistinguisher dist(std::move(model), opt);
    const GimliHashTarget target(rounds);
    const TrainReport rep = dist.train(target, 400);
    EXPECT_LT(rep.val_accuracy, prev + 0.05) << rounds << " rounds";
    prev = rep.val_accuracy;
  }
}

TEST(Integration, FourDifferenceVariantTrainsAndLabels) {
  // t = 4 differences: labels and the 1/t baseline adjust accordingly.
  Xoshiro256 rng(6);
  const GimliHashTarget target(2, {1, 4, 8, 12});
  EXPECT_EQ(target.num_differences(), 4u);
  auto model = build_default_mlp(128, 4, rng);
  DistinguisherOptions opt;
  opt.epochs = 3;
  MLDistinguisher dist(std::move(model), opt);
  const TrainReport rep = dist.train(target, 400);
  EXPECT_GT(rep.val_accuracy, 0.5);  // far above 1/t = 0.25
  EXPECT_TRUE(rep.usable);
}

}  // namespace
