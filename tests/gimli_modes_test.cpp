#include <gtest/gtest.h>

#include "ciphers/gimli_aead.hpp"
#include "ciphers/gimli_hash.hpp"
#include "util/hex.hpp"
#include "util/rng.hpp"

namespace {

using namespace mldist::ciphers;
using mldist::util::Xoshiro256;

// ---------------------------------------------------------------------------
// Gimli-Hash
// ---------------------------------------------------------------------------

TEST(GimliHash, DigestHas32Bytes) {
  EXPECT_EQ(gimli_hash(std::vector<std::uint8_t>{}).size(), 32u);
  EXPECT_EQ(gimli_hash(std::vector<std::uint8_t>(100, 0xab)).size(), 32u);
}

TEST(GimliHash, Deterministic) {
  const std::vector<std::uint8_t> msg = {'g', 'i', 'm', 'l', 'i'};
  EXPECT_EQ(gimli_hash(msg), gimli_hash(msg));
}

TEST(GimliHash, StreamingMatchesOneShot) {
  Xoshiro256 rng(1);
  const auto msg = rng.bytes(100);
  GimliHash h;
  h.absorb(std::span<const std::uint8_t>(msg).subspan(0, 7));
  h.absorb(std::span<const std::uint8_t>(msg).subspan(7, 40));
  h.absorb(std::span<const std::uint8_t>(msg).subspan(47));
  EXPECT_EQ(h.digest(), gimli_hash(msg));
}

TEST(GimliHash, DistinctMessagesDistinctDigests) {
  const std::vector<std::uint8_t> a = {0x00};
  const std::vector<std::uint8_t> b = {0x01};
  EXPECT_NE(gimli_hash(a), gimli_hash(b));
}

TEST(GimliHash, PaddingDomainSeparation) {
  // A message of 15 zero bytes and one of 16 zero bytes must differ even
  // though the 16-byte one is exactly the padded form of neither.
  const std::vector<std::uint8_t> m15(15, 0);
  const std::vector<std::uint8_t> m16(16, 0);
  EXPECT_NE(gimli_hash(m15), gimli_hash(m16));
}

TEST(GimliHash, PaddingNotConfusedByExplicitPadByte) {
  // m || 0x01 must not collide with m (the 0x01 pad is positional).
  const std::vector<std::uint8_t> m = {0xaa, 0xbb};
  std::vector<std::uint8_t> m_padded = m;
  m_padded.push_back(0x01);
  EXPECT_NE(gimli_hash(m), gimli_hash(m_padded));
}

TEST(GimliHash, BlockBoundaryMessages) {
  // Lengths around the 16-byte rate: all distinct digests.
  std::vector<std::vector<std::uint8_t>> digests;
  for (std::size_t len : {15u, 16u, 17u, 31u, 32u, 33u}) {
    digests.push_back(gimli_hash(std::vector<std::uint8_t>(len, 0x42)));
  }
  for (std::size_t i = 0; i < digests.size(); ++i) {
    for (std::size_t j = i + 1; j < digests.size(); ++j) {
      EXPECT_NE(digests[i], digests[j]) << i << " vs " << j;
    }
  }
}

TEST(GimliHash, RoundReducedDiffersFromFull) {
  const std::vector<std::uint8_t> msg(15, 0);
  EXPECT_NE(gimli_hash(msg, 8), gimli_hash(msg, 24));
}

TEST(GimliHash, RejectsBadRoundCount) {
  EXPECT_THROW(GimliHash(0), std::invalid_argument);
  EXPECT_THROW(GimliHash(25), std::invalid_argument);
}

TEST(GimliHash, AvalancheOnFullRounds) {
  Xoshiro256 rng(2);
  auto msg = rng.bytes(15);
  const auto h1 = gimli_hash(msg);
  msg[4] ^= 0x01;
  const auto h2 = gimli_hash(msg);
  int flipped = 0;
  for (std::size_t i = 0; i < h1.size(); ++i) {
    flipped += __builtin_popcount(static_cast<unsigned>(h1[i] ^ h2[i]));
  }
  EXPECT_GT(flipped, 90);   // ~128 expected of 256 bits
  EXPECT_LT(flipped, 166);
}

// ---------------------------------------------------------------------------
// Gimli-Cipher (AEAD)
// ---------------------------------------------------------------------------

struct AeadFixture : ::testing::Test {
  std::array<std::uint8_t, kGimliAeadKeyBytes> key{};
  std::array<std::uint8_t, kGimliAeadNonceBytes> nonce{};
  Xoshiro256 rng{3};

  void randomize() {
    rng.fill_bytes(key.data(), key.size());
    rng.fill_bytes(nonce.data(), nonce.size());
  }

  auto key_span() {
    return std::span<const std::uint8_t, kGimliAeadKeyBytes>(key);
  }
  auto nonce_span() {
    return std::span<const std::uint8_t, kGimliAeadNonceBytes>(nonce);
  }
};

TEST_F(AeadFixture, EncryptDecryptRoundTrip) {
  randomize();
  for (std::size_t mlen : {0u, 1u, 15u, 16u, 17u, 48u, 100u}) {
    const auto msg = rng.bytes(mlen);
    const auto ad = rng.bytes(7);
    const auto enc = gimli_aead_encrypt(key_span(), nonce_span(), ad, msg);
    ASSERT_EQ(enc.ciphertext.size(), mlen);
    const auto dec = gimli_aead_decrypt(key_span(), nonce_span(), ad,
                                        enc.ciphertext, enc.tag);
    EXPECT_TRUE(dec.ok) << "mlen=" << mlen;
    EXPECT_EQ(dec.plaintext, msg);
  }
}

TEST_F(AeadFixture, TamperedCiphertextRejected) {
  randomize();
  const auto msg = rng.bytes(32);
  auto enc = gimli_aead_encrypt(key_span(), nonce_span(), {}, msg);
  enc.ciphertext[3] ^= 0x80;
  const auto dec =
      gimli_aead_decrypt(key_span(), nonce_span(), {}, enc.ciphertext, enc.tag);
  EXPECT_FALSE(dec.ok);
  EXPECT_TRUE(dec.plaintext.empty());
}

TEST_F(AeadFixture, TamperedTagRejected) {
  randomize();
  const auto msg = rng.bytes(32);
  auto enc = gimli_aead_encrypt(key_span(), nonce_span(), {}, msg);
  enc.tag[0] ^= 0x01;
  const auto dec =
      gimli_aead_decrypt(key_span(), nonce_span(), {}, enc.ciphertext, enc.tag);
  EXPECT_FALSE(dec.ok);
}

TEST_F(AeadFixture, TamperedAdRejected) {
  randomize();
  const auto msg = rng.bytes(20);
  const std::vector<std::uint8_t> ad = {1, 2, 3};
  const auto enc = gimli_aead_encrypt(key_span(), nonce_span(), ad, msg);
  const std::vector<std::uint8_t> ad2 = {1, 2, 4};
  const auto dec =
      gimli_aead_decrypt(key_span(), nonce_span(), ad2, enc.ciphertext, enc.tag);
  EXPECT_FALSE(dec.ok);
}

TEST_F(AeadFixture, NonceMatters) {
  randomize();
  const auto msg = rng.bytes(16);
  const auto e1 = gimli_aead_encrypt(key_span(), nonce_span(), {}, msg);
  nonce[0] ^= 1;
  const auto e2 = gimli_aead_encrypt(key_span(), nonce_span(), {}, msg);
  EXPECT_NE(e1.ciphertext, e2.ciphertext);
  EXPECT_NE(e1.tag, e2.tag);
}

TEST_F(AeadFixture, KeyMatters) {
  randomize();
  const auto msg = rng.bytes(16);
  const auto e1 = gimli_aead_encrypt(key_span(), nonce_span(), {}, msg);
  key[31] ^= 1;
  const auto e2 = gimli_aead_encrypt(key_span(), nonce_span(), {}, msg);
  EXPECT_NE(e1.ciphertext, e2.ciphertext);
}

TEST_F(AeadFixture, AdBlockBoundaries) {
  randomize();
  const auto msg = rng.bytes(16);
  std::vector<std::array<std::uint8_t, kGimliAeadTagBytes>> tags;
  for (std::size_t adlen : {0u, 15u, 16u, 17u, 32u}) {
    const auto ad = std::vector<std::uint8_t>(adlen, 0x55);
    tags.push_back(gimli_aead_encrypt(key_span(), nonce_span(), ad, msg).tag);
  }
  for (std::size_t i = 0; i < tags.size(); ++i) {
    for (std::size_t j = i + 1; j < tags.size(); ++j) {
      EXPECT_NE(tags[i], tags[j]);
    }
  }
}

TEST_F(AeadFixture, RoundScheduleValidation) {
  randomize();
  RoundSchedule bad;
  bad.init = 25;
  EXPECT_THROW(
      (void)gimli_aead_encrypt(key_span(), nonce_span(), {}, {}, bad),
      std::invalid_argument);
  bad.init = -1;
  EXPECT_THROW(
      (void)gimli_aead_encrypt(key_span(), nonce_span(), {}, {}, bad),
      std::invalid_argument);
}

TEST_F(AeadFixture, ReducedRoundsStillRoundTrip) {
  randomize();
  RoundSchedule reduced;
  reduced.init = 8;
  reduced.ad = 0;
  reduced.message = 4;
  const auto msg = rng.bytes(33);
  const auto enc = gimli_aead_encrypt(key_span(), nonce_span(), {}, msg, reduced);
  const auto dec = gimli_aead_decrypt(key_span(), nonce_span(), {},
                                      enc.ciphertext, enc.tag, reduced);
  EXPECT_TRUE(dec.ok);
  EXPECT_EQ(dec.plaintext, msg);
}

TEST_F(AeadFixture, FirstBlockIndependentOfMessageRounds) {
  // c0 is emitted before the first message permutation, so the message
  // round count must not affect it — the property the Table-2 cipher
  // experiments rely on.
  randomize();
  RoundSchedule s1{8, 0, 24};
  RoundSchedule s2{8, 0, 1};
  const std::vector<std::uint8_t> msg(16, 0);
  const auto e1 = gimli_aead_encrypt(key_span(), nonce_span(), {}, msg, s1);
  const auto e2 = gimli_aead_encrypt(key_span(), nonce_span(), {}, msg, s2);
  EXPECT_EQ(e1.ciphertext, e2.ciphertext);
  EXPECT_NE(e1.tag, e2.tag);
}

}  // namespace
