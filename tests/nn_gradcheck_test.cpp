// Numerical gradient checking: every layer's analytic backward pass is
// compared against central finite differences of the softmax cross-entropy
// loss.  This is the strongest correctness property the NN substrate has.
//
// The suite is parameterised over every registered kernel implementation
// (reference / blocked / avx2 where supported), so a fused-epilogue or
// SIMD-path bug in any GEMM variant cannot silently break backprop.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>

#include "kernels/dispatch.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv1d.hpp"
#include "nn/dense.hpp"
#include "nn/loss.hpp"
#include "nn/lstm.hpp"
#include "nn/model.hpp"
#include "nn/residual.hpp"
#include "util/rng.hpp"

namespace {

using namespace mldist::nn;
using mldist::util::Xoshiro256;

// Dispatch selection active at startup (after MLDIST_KERNEL resolution),
// restored after each parameterised run.
const mldist::kernels::Impl kStartupImpl = mldist::kernels::dispatch();

class GradCheck : public ::testing::TestWithParam<mldist::kernels::Impl> {
 protected:
  void SetUp() override { mldist::kernels::set_dispatch(GetParam()); }
  void TearDown() override { mldist::kernels::set_dispatch(kStartupImpl); }
};

/// Loss of `model` on (x, y) without touching gradients.  `training` keeps
/// BatchNorm on batch statistics so composite blocks perturb the same
/// function the analytic backward differentiates; the default inference
/// mode additionally exercises the IR-compiled forward path.
double loss_of(Sequential& model, const Mat& x, const std::vector<int>& y,
               bool training = false) {
  const Mat logits = model.forward(x, training);
  return softmax_cross_entropy(logits, y, /*compute_grad=*/false).loss;
}

/// Run one analytic forward/backward pass; returns gradient w.r.t. input.
Mat analytic_pass(Sequential& model, const Mat& x, const std::vector<int>& y) {
  for (auto& p : model.params()) {
    for (std::size_t i = 0; i < p.size; ++i) p.grad[i] = 0.0f;
  }
  const Mat logits = model.forward(x, /*training=*/true);
  LossResult lr = softmax_cross_entropy(logits, y);
  Mat grad = std::move(lr.dlogits);
  for (std::size_t li = model.layer_count(); li-- > 0;) {
    grad = model.layer(li).backward(grad);
  }
  return grad;
}

/// Check d(loss)/d(param) for every `stride`-th parameter via central
/// differences.
void check_param_grads(Sequential& model, const Mat& x,
                       const std::vector<int>& y, std::size_t stride,
                       double tol, bool training = false) {
  (void)analytic_pass(model, x, y);
  // Snapshot analytic gradients (backward below would be clobbered by
  // repeated perturbation passes).
  std::vector<std::vector<float>> saved;
  for (auto& p : model.params()) {
    saved.emplace_back(p.grad, p.grad + p.size);
  }
  constexpr float kEps = 2e-3f;
  std::size_t pi = 0;
  for (auto& p : model.params()) {
    for (std::size_t i = 0; i < p.size; i += stride) {
      const float orig = p.value[i];
      p.value[i] = orig + kEps;
      const double lp = loss_of(model, x, y, training);
      p.value[i] = orig - kEps;
      const double lm = loss_of(model, x, y, training);
      p.value[i] = orig;
      const double numeric = (lp - lm) / (2.0 * kEps);
      const double analytic = saved[pi][i];
      EXPECT_NEAR(analytic, numeric, tol + 0.05 * std::fabs(numeric))
          << "param set " << pi << " index " << i;
    }
    ++pi;
  }
}

/// Check d(loss)/d(input) for every `stride`-th input entry.
void check_input_grads(Sequential& model, Mat x, const std::vector<int>& y,
                       std::size_t stride, double tol, bool training = false) {
  const Mat dx = analytic_pass(model, x, y);
  constexpr float kEps = 2e-3f;
  for (std::size_t i = 0; i < x.size(); i += stride) {
    const float orig = x.data()[i];
    x.data()[i] = orig + kEps;
    const double lp = loss_of(model, x, y, training);
    x.data()[i] = orig - kEps;
    const double lm = loss_of(model, x, y, training);
    x.data()[i] = orig;
    const double numeric = (lp - lm) / (2.0 * kEps);
    EXPECT_NEAR(dx.data()[i], numeric, tol + 0.05 * std::fabs(numeric))
        << "input index " << i;
  }
}

Mat random_input(std::size_t rows, std::size_t cols, Xoshiro256& rng) {
  Mat x(rows, cols);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x.data()[i] = static_cast<float>(rng.next_gaussian());
  }
  return x;
}

std::vector<int> random_labels(std::size_t n, std::size_t classes,
                               Xoshiro256& rng) {
  std::vector<int> y(n);
  for (auto& v : y) v = static_cast<int>(rng.next_below(classes));
  return y;
}

TEST_P(GradCheck, DenseOnly) {
  Xoshiro256 rng(1);
  Sequential model;
  model.add(std::make_unique<Dense>(6, 4, rng));
  const Mat x = random_input(5, 6, rng);
  const auto y = random_labels(5, 4, rng);
  check_param_grads(model, x, y, 1, 1e-3);
  check_input_grads(model, x, y, 1, 1e-3);
}

TEST_P(GradCheck, DenseReluDense) {
  Xoshiro256 rng(2);
  Sequential model;
  model.add(std::make_unique<Dense>(8, 10, rng));
  model.add(std::make_unique<ReLU>());
  model.add(std::make_unique<Dense>(10, 3, rng));
  const Mat x = random_input(4, 8, rng);
  const auto y = random_labels(4, 3, rng);
  check_param_grads(model, x, y, 1, 1e-3);
  check_input_grads(model, x, y, 1, 1e-3);
}

TEST_P(GradCheck, LeakyRelu) {
  Xoshiro256 rng(3);
  Sequential model;
  model.add(std::make_unique<Dense>(7, 9, rng));
  model.add(std::make_unique<LeakyReLU>(0.3f));
  model.add(std::make_unique<Dense>(9, 2, rng));
  const Mat x = random_input(4, 7, rng);
  const auto y = random_labels(4, 2, rng);
  check_param_grads(model, x, y, 1, 1e-3);
}

TEST_P(GradCheck, TanhAndSigmoid) {
  Xoshiro256 rng(4);
  Sequential model;
  model.add(std::make_unique<Dense>(5, 6, rng));
  model.add(std::make_unique<Tanh>());
  model.add(std::make_unique<Dense>(6, 6, rng));
  model.add(std::make_unique<Sigmoid>());
  model.add(std::make_unique<Dense>(6, 3, rng));
  const Mat x = random_input(3, 5, rng);
  const auto y = random_labels(3, 3, rng);
  check_param_grads(model, x, y, 1, 1e-3);
  check_input_grads(model, x, y, 1, 1e-3);
}

TEST_P(GradCheck, Conv1DSingleChannel) {
  Xoshiro256 rng(5);
  Sequential model;
  model.add(std::make_unique<Conv1D>(10, 1, 4, 3, rng));
  model.add(std::make_unique<ReLU>());
  model.add(std::make_unique<GlobalMaxPool1D>(10, 4));
  model.add(std::make_unique<Dense>(4, 2, rng));
  const Mat x = random_input(3, 10, rng);
  const auto y = random_labels(3, 2, rng);
  check_param_grads(model, x, y, 1, 1e-3);
  check_input_grads(model, x, y, 1, 1e-3);
}

TEST_P(GradCheck, Conv1DMultiChannelStack) {
  Xoshiro256 rng(6);
  Sequential model;
  model.add(std::make_unique<Conv1D>(6, 2, 3, 3, rng));
  model.add(std::make_unique<Tanh>());
  model.add(std::make_unique<Conv1D>(6, 3, 2, 3, rng));
  model.add(std::make_unique<GlobalMaxPool1D>(6, 2));
  model.add(std::make_unique<Dense>(2, 2, rng));
  const Mat x = random_input(2, 12, rng);
  const auto y = random_labels(2, 2, rng);
  check_param_grads(model, x, y, 1, 1.5e-3);
  check_input_grads(model, x, y, 1, 1.5e-3);
}

TEST_P(GradCheck, LstmSingleLayer) {
  Xoshiro256 rng(7);
  Sequential model;
  model.add(std::make_unique<LSTM>(4, 3, 5, rng));
  model.add(std::make_unique<Dense>(5, 2, rng));
  const Mat x = random_input(3, 12, rng);
  const auto y = random_labels(3, 2, rng);
  check_param_grads(model, x, y, 1, 1.5e-3);
  check_input_grads(model, x, y, 1, 1.5e-3);
}

TEST_P(GradCheck, LstmStacked) {
  Xoshiro256 rng(8);
  Sequential model;
  model.add(std::make_unique<LSTM>(3, 2, 4, rng));
  model.add(std::make_unique<LSTM>(1, 4, 3, rng));
  model.add(std::make_unique<Dense>(3, 2, rng));
  const Mat x = random_input(2, 6, rng);
  const auto y = random_labels(2, 2, rng);
  check_param_grads(model, x, y, 1, 1.5e-3);
}

TEST_P(GradCheck, DeepMixedStack) {
  Xoshiro256 rng(9);
  Sequential model;
  model.add(std::make_unique<Dense>(8, 12, rng));
  model.add(std::make_unique<LeakyReLU>());
  model.add(std::make_unique<Dense>(12, 8, rng));
  model.add(std::make_unique<Tanh>());
  model.add(std::make_unique<Dense>(8, 4, rng));
  const Mat x = random_input(6, 8, rng);
  const auto y = random_labels(6, 4, rng);
  check_param_grads(model, x, y, 3, 1.5e-3);
}

// Composite Residual(Conv1D -> BatchNorm -> Tanh) block — the building
// block of the gohr-net extension — gradchecked per kernel backend.  The
// loss is evaluated in training mode so BatchNorm perturbs the same
// batch-statistics function the analytic backward differentiates (inference
// mode would switch it to running statistics mid-check).  Tanh rather than
// ReLU keeps the composite smooth: normalising over the batch makes the
// pre-activations cluster around the ReLU kink, where central differences
// straddle the non-differentiable point and produce O(1) false mismatches.
TEST_P(GradCheck, ResidualBatchNormConvComposite) {
  Xoshiro256 rng(10);
  Sequential model;
  model.add(std::make_unique<Conv1D>(6, 1, 3, 3, rng));
  auto block = std::make_unique<Residual>();
  block->add(std::make_unique<Conv1D>(6, 3, 3, 3, rng));
  block->add(std::make_unique<BatchNorm>(18));
  block->add(std::make_unique<Tanh>());
  model.add(std::move(block));
  model.add(std::make_unique<GlobalMaxPool1D>(6, 3));
  model.add(std::make_unique<Dense>(3, 2, rng));
  const Mat x = random_input(8, 6, rng);
  const auto y = random_labels(8, 2, rng);
  check_param_grads(model, x, y, 1, 2e-3, /*training=*/true);
  check_input_grads(model, x, y, 1, 2e-3, /*training=*/true);
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, GradCheck,
    ::testing::ValuesIn(mldist::kernels::available_impls()),
    [](const ::testing::TestParamInfo<mldist::kernels::Impl>& info) {
      return std::string(mldist::kernels::impl_name(info.param));
    });

}  // namespace
