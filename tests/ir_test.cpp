// Graph-IR suite (ctest label "ir"): lowering, optimisation passes, the
// executor's bitwise equivalence to the layer-by-layer reference forward,
// the golden --dump-ir text format, and the topology-hash serialization
// guard.  Runs under the sanitizer presets like every other test
// (-DMLDIST_UBSAN=ON; see the top-level CMakeLists comment).
//
// Tolerance documentation: all output comparisons are EXACT, bit for bit
// (std::bit_cast), because every IR pass only rewrites computation into
// sequences that are bitwise identical per element (see DESIGN.md §12).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "kernels/conv1d.hpp"
#include "kernels/dispatch.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv1d.hpp"
#include "nn/dense.hpp"
#include "nn/dropout.hpp"
#include "nn/ir/executor.hpp"
#include "nn/ir/graph.hpp"
#include "nn/ir/pass.hpp"
#include "nn/lstm.hpp"
#include "nn/model.hpp"
#include "nn/residual.hpp"
#include "nn/serialize.hpp"
#include "util/crc32.hpp"
#include "util/rng.hpp"

namespace {

using namespace mldist;
using kernels::Impl;
using mldist::util::Xoshiro256;

const Impl kStartupImpl = kernels::dispatch();

std::uint32_t bits_of(float v) { return std::bit_cast<std::uint32_t>(v); }

void expect_mat_bitwise_equal(const nn::Mat& got, const nn::Mat& want,
                              const std::string& what) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(bits_of(got.data()[i]), bits_of(want.data()[i]))
        << what << ": element " << i << " got " << got.data()[i] << " want "
        << want.data()[i];
  }
}

nn::Mat random_input(std::size_t rows, std::size_t cols, Xoshiro256& rng) {
  nn::Mat x(rows, cols);
  for (std::size_t i = 0; i < x.size(); ++i) {
    // Exact zeros exercise padded-lane and ReLU-boundary logic.
    x.data()[i] = (rng.next_below(4) == 0)
                      ? 0.0f
                      : static_cast<float>(rng.next_gaussian());
  }
  return x;
}

/// A model touching every op the lowering knows: dense (plain, act-fused,
/// bn+act-fused), opaque (tanh), conv (bn and bn+act fused), residual add
/// with a fused activation, dropout (identity), pool, dense head.
std::unique_ptr<nn::Sequential> build_zoo_model(Xoshiro256& rng) {
  auto model = std::make_unique<nn::Sequential>();
  model->add(std::make_unique<nn::Dense>(12, 18, rng));
  model->add(std::make_unique<nn::Tanh>());
  model->add(std::make_unique<nn::Dense>(18, 18, rng));
  model->add(std::make_unique<nn::LeakyReLU>(0.3f));
  model->add(std::make_unique<nn::Dense>(18, 18, rng));
  model->add(std::make_unique<nn::BatchNorm>(18));
  model->add(std::make_unique<nn::ReLU>());
  model->add(std::make_unique<nn::Conv1D>(6, 3, 4, 3, rng));
  model->add(std::make_unique<nn::BatchNorm>(24));
  model->add(std::make_unique<nn::ReLU>());
  auto block = std::make_unique<nn::Residual>();
  block->add(std::make_unique<nn::Conv1D>(6, 4, 4, 3, rng));
  block->add(std::make_unique<nn::BatchNorm>(24));
  model->add(std::move(block));
  model->add(std::make_unique<nn::ReLU>());
  model->add(std::make_unique<nn::Dropout>(0.25f));
  model->add(std::make_unique<nn::GlobalMaxPool1D>(6, 4));
  model->add(std::make_unique<nn::Dense>(4, 3, rng));
  return model;
}

/// Make the BatchNorm running statistics non-trivial (fresh models have
/// mean 0 / var 1, which would mask mean/var indexing bugs).
void warm_running_stats(nn::Sequential& model, Xoshiro256& rng) {
  const nn::Mat x = random_input(16, 12, rng);
  for (int i = 0; i < 3; ++i) (void)model.forward(x, /*training=*/true);
}

// ---------------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------------

TEST(IrLowering, StructureAndWidths) {
  Xoshiro256 rng(1);
  auto model = build_zoo_model(rng);
  const nn::ir::Graph g = nn::ir::Graph::lower(*model);
  const auto& nodes = g.nodes();
  ASSERT_GE(nodes.size(), 3u);
  EXPECT_EQ(nodes[0].kind, nn::ir::OpKind::kInput);
  EXPECT_EQ(nodes[0].out_width, 12u);
  // The Residual lowered to an explicit two-input add whose skip edge
  // reaches back past the inner chain.
  bool saw_add = false;
  for (const auto& n : nodes) {
    if (n.kind == nn::ir::OpKind::kAdd) {
      saw_add = true;
      ASSERT_EQ(n.inputs.size(), 2u);
      EXPECT_GT(n.inputs[0], n.inputs[1]);  // F(x) comes after the skip
    } else if (!n.inputs.empty()) {
      ASSERT_EQ(n.inputs.size(), 1u);
    }
  }
  EXPECT_TRUE(saw_add);
  // Output is the final dense head.
  EXPECT_EQ(nodes[static_cast<std::size_t>(g.output())].kind,
            nn::ir::OpKind::kDense);
  EXPECT_EQ(nodes[static_cast<std::size_t>(g.output())].out_width, 3u);
}

TEST(IrLowering, TopologyHashStableAcrossPipelinesAndWeights) {
  Xoshiro256 rng1(2), rng2(99);
  auto a = build_zoo_model(rng1);
  auto b = build_zoo_model(rng2);  // same structure, different weights
  EXPECT_EQ(a->topology_hash(), b->topology_hash());

  // The hash pins structure, not optimisation level.
  const std::uint32_t before = a->topology_hash();
  a->set_pipeline(nn::ir::PassManager::default_pipeline());
  (void)a->forward(random_input(2, 12, rng1), false);
  EXPECT_EQ(a->topology_hash(), before);

  nn::Sequential other;
  Xoshiro256 rng3(3);
  other.add(std::make_unique<nn::Dense>(12, 18, rng3));
  other.add(std::make_unique<nn::Dense>(18, 3, rng3));
  EXPECT_NE(other.topology_hash(), before);
}

// ---------------------------------------------------------------------------
// Pass manager
// ---------------------------------------------------------------------------

TEST(IrPasses, ParsePipeline) {
  using nn::ir::PassManager;
  EXPECT_TRUE(PassManager::parse_pipeline("").empty());
  EXPECT_TRUE(PassManager::parse_pipeline("none").empty());
  EXPECT_EQ(PassManager::parse_pipeline("default"),
            PassManager::default_pipeline());
  const auto two = PassManager::parse_pipeline("fuse-batchnorm,plan-exec");
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0], "fuse-batchnorm");
  EXPECT_EQ(two[1], "plan-exec");
  EXPECT_THROW(PassManager::parse_pipeline("fuse-batchnorm,bogus"),
               std::invalid_argument);
  EXPECT_THROW(nn::Sequential().set_pipeline({"bogus"}),
               std::invalid_argument);
}

TEST(IrPasses, FusionAnnotationsAndElision) {
  Xoshiro256 rng(4);
  auto model = build_zoo_model(rng);
  nn::ir::Graph g = nn::ir::Graph::lower(*model);
  const std::size_t lowered = g.nodes().size();
  nn::ir::PassManager().run(g);
  EXPECT_LT(g.nodes().size(), lowered);  // BN/act/dropout nodes folded away
  for (const auto& n : g.nodes()) {
    // After the default pipeline no standalone BatchNorm, Activation, or
    // Identity survives in this model: every one has a fusable producer.
    EXPECT_NE(n.kind, nn::ir::OpKind::kBatchNorm);
    EXPECT_NE(n.kind, nn::ir::OpKind::kActivation);
    EXPECT_NE(n.kind, nn::ir::OpKind::kIdentity);
  }
  // plan-exec assigned a small arena: a chain re-uses freed slots instead
  // of one buffer per node.
  EXPECT_GT(g.slot_count(), 0u);
  EXPECT_LE(g.slot_count(), 3u);
}

TEST(IrPasses, ActivationAfterBatchNormDoesNotFuseIntoProducer) {
  // Dense -> ReLU -> BN must keep the BN standalone (epilogue order is
  // bias, bn, act; fusing here would compute act before bn).
  Xoshiro256 rng(5);
  nn::Sequential model;
  model.add(std::make_unique<nn::Dense>(8, 8, rng));
  model.add(std::make_unique<nn::ReLU>());
  model.add(std::make_unique<nn::BatchNorm>(8));
  nn::ir::Graph g = nn::ir::Graph::lower(model);
  nn::ir::PassManager().run(g);
  bool saw_standalone_bn = false;
  for (const auto& n : g.nodes()) {
    if (n.kind == nn::ir::OpKind::kBatchNorm) saw_standalone_bn = true;
    EXPECT_FALSE(n.fused_bn);
  }
  EXPECT_TRUE(saw_standalone_bn);
}

// ---------------------------------------------------------------------------
// Executor equivalence (the determinism contract, per backend)
// ---------------------------------------------------------------------------

TEST(IrExecutor, MatchesReferenceForwardAllBackends) {
  for (Impl impl : kernels::available_impls()) {
    kernels::set_dispatch(impl);
    Xoshiro256 rng(6);
    auto model = build_zoo_model(rng);
    warm_running_stats(*model, rng);
    const nn::Mat x = random_input(9, 12, rng);
    const nn::Mat want = model->forward_reference(x);
    const nn::Mat got = model->forward(x, /*training=*/false);
    expect_mat_bitwise_equal(
        got, want, std::string("impl=") + kernels::impl_name(impl));
    // Second run re-uses the pooled executor and its warm arena.
    expect_mat_bitwise_equal(
        model->forward(x, /*training=*/false), want,
        std::string("warm-arena impl=") + kernels::impl_name(impl));
  }
  kernels::set_dispatch(kStartupImpl);
}

TEST(IrExecutor, LstmOpaqueDelegationMatchesReference) {
  Xoshiro256 rng(7);
  nn::Sequential model;
  model.add(std::make_unique<nn::LSTM>(4, 3, 5, rng));
  model.add(std::make_unique<nn::Dense>(5, 2, rng));
  const nn::Mat x = random_input(3, 12, rng);
  expect_mat_bitwise_equal(model.forward(x, false), model.forward_reference(x),
                           "lstm-opaque");
}

TEST(IrExecutor, RecompilesAfterAddAndAcrossBackends) {
  Xoshiro256 rng(8);
  nn::Sequential model;
  model.add(std::make_unique<nn::Dense>(6, 5, rng));
  const nn::Mat x = random_input(4, 6, rng);
  (void)model.forward(x, false);  // compile for the current backend
  model.add(std::make_unique<nn::ReLU>());
  expect_mat_bitwise_equal(model.forward(x, false),
                           model.forward_reference(x), "after-add");
  for (Impl impl : kernels::available_impls()) {
    kernels::set_dispatch(impl);  // backend switch must trigger a recompile
    expect_mat_bitwise_equal(model.forward(x, false),
                             model.forward_reference(x),
                             std::string("impl=") + kernels::impl_name(impl));
  }
  kernels::set_dispatch(kStartupImpl);
}

// ---------------------------------------------------------------------------
// Conv1D kernel: direct vs im2col
// ---------------------------------------------------------------------------

TEST(IrConv1D, DirectMatchesIm2colBitwise) {
  Xoshiro256 rng(9);
  for (const auto& s : std::vector<kernels::Conv1DShape>{
           {3, 8, 2, 3, 3},   // borders + interior
           {2, 5, 1, 4, 5},   // wide kernel, half=2
           {4, 7, 3, 2, 1},   // kernel 1: whole-batch GEMM degenerate case
           {1, 2, 2, 2, 3},   // length < kernel: direct falls back to im2col
       }) {
    std::vector<float> x(s.batch * s.length * s.cin);
    std::vector<float> w(s.kernel * s.cin * s.cout);
    std::vector<float> bias(s.cout);
    for (auto& v : x) v = static_cast<float>(rng.next_gaussian());
    for (auto& v : w) v = static_cast<float>(rng.next_gaussian());
    for (auto& v : bias) v = static_cast<float>(rng.next_gaussian());
    kernels::GemmEpilogue ep;
    ep.bias = bias.data();
    ep.act = kernels::Activation::kRelu;
    const std::string tag = "batch=" + std::to_string(s.batch) +
                            " length=" + std::to_string(s.length) +
                            " kernel=" + std::to_string(s.kernel);
    std::vector<float> want(s.batch * s.length * s.cout);
    std::vector<float> got(want.size());
    for (Impl impl : kernels::available_impls()) {
      kernels::set_dispatch(impl);
      for (auto* pair : {&want, &got}) {
        const auto algo = pair == &want ? kernels::Conv1DAlgo::kIm2col
                                        : kernels::Conv1DAlgo::kDirect;
        std::vector<float> scratch(kernels::conv1d_scratch_floats(s, algo));
        kernels::conv1d_forward(x.data(), pair->data(), s, w.data(), ep, algo,
                                scratch.empty() ? nullptr : scratch.data());
      }
      for (std::size_t i = 0; i < want.size(); ++i) {
        ASSERT_EQ(bits_of(got[i]), bits_of(want[i]))
            << tag << " impl=" << kernels::impl_name(impl) << " i=" << i;
      }
    }
  }
  kernels::set_dispatch(kStartupImpl);
}

// ---------------------------------------------------------------------------
// Golden --dump-ir text
// ---------------------------------------------------------------------------

TEST(IrDump, GoldenMlp) {
  Xoshiro256 rng(10);
  nn::Sequential model;
  model.add(std::make_unique<nn::Dense>(8, 16, rng));
  model.add(std::make_unique<nn::ReLU>());
  model.add(std::make_unique<nn::Dense>(16, 2, rng));
  EXPECT_EQ(model.dump_ir(),
            "ir {\n"
            "  %0 = input out=8\n"
            "  %1 = dense(8->16) (%0) out=16 fused=[relu]\n"
            "  %2 = dense(16->2) (%1) out=2\n"
            "  output %2\n"
            "}\n");
}

TEST(IrDump, GoldenConvPerBackendPlan) {
  Xoshiro256 rng(11);
  nn::Sequential model;
  model.add(std::make_unique<nn::Conv1D>(4, 1, 2, 3, rng));
  model.add(std::make_unique<nn::BatchNorm>(8));
  model.add(std::make_unique<nn::ReLU>());
  model.add(std::make_unique<nn::GlobalMaxPool1D>(4, 2));
  model.add(std::make_unique<nn::Dense>(2, 2, rng));
  const auto golden = [](const char* algo) {
    return std::string("ir {\n"
                       "  %0 = input out=4\n"
                       "  %1 = conv1d(1->2,k=3) (%0) out=8 algo=") +
           algo +
           " fused=[bn relu]\n"
           "  %2 = global_max_pool1d (%1) out=2\n"
           "  %3 = dense(2->2) (%2) out=2\n"
           "  output %3\n"
           "}\n";
  };
  // The lower-conv pass bakes a per-backend plan: reference keeps the one
  // whole-batch im2col GEMM, the packing backends go im2col-free.
  kernels::set_dispatch(Impl::kReference);
  EXPECT_EQ(model.dump_ir(), golden("im2col"));
  kernels::set_dispatch(Impl::kBlocked);
  EXPECT_EQ(model.dump_ir(), golden("direct"));
  kernels::set_dispatch(kStartupImpl);
}

// ---------------------------------------------------------------------------
// Topology-hash serialization guard
// ---------------------------------------------------------------------------

TEST(IrSerialize, TopologyHashRoundTripAndMismatch) {
  Xoshiro256 rng(12);
  nn::Sequential model;
  model.add(std::make_unique<nn::Dense>(6, 4, rng));
  model.add(std::make_unique<nn::ReLU>());
  model.add(std::make_unique<nn::Dense>(4, 2, rng));
  std::stringstream buf;
  nn::save_params(model, buf);

  nn::Sequential same;
  Xoshiro256 rng2(77);
  same.add(std::make_unique<nn::Dense>(6, 4, rng2));
  same.add(std::make_unique<nn::ReLU>());
  same.add(std::make_unique<nn::Dense>(4, 2, rng2));
  nn::load_params(same, buf);
  const nn::Mat x = random_input(3, 6, rng);
  expect_mat_bitwise_equal(same.forward(x, false), model.forward(x, false),
                           "round-trip");

  // Identical parameter shapes, different structure (no ReLU): the tensor
  // checks alone cannot tell the files apart — the topology hash can.
  nn::Sequential other;
  Xoshiro256 rng3(78);
  other.add(std::make_unique<nn::Dense>(6, 4, rng3));
  other.add(std::make_unique<nn::Dense>(4, 2, rng3));
  std::stringstream buf2;
  nn::save_params(model, buf2);
  try {
    nn::load_params(other, buf2);
    FAIL() << "topology mismatch loaded silently";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("topology mismatch"),
              std::string::npos)
        << e.what();
  }
}

TEST(IrSerialize, LegacyNnb1FileLoadsWithWarning) {
  Xoshiro256 rng(13);
  nn::Sequential model;
  model.add(std::make_unique<nn::Dense>(5, 3, rng));
  std::stringstream buf;
  nn::save_params(model, buf);
  const std::string nnb2 = buf.str();
  // Rebuild the payload in the pre-hash NNB1 layout: old magic, no topology
  // word, fresh CRC footer over the rewritten payload.
  ASSERT_GE(nnb2.size(), 16u);
  std::string payload = "NNB1" + nnb2.substr(8, nnb2.size() - 8 - 8);
  const std::uint32_t crc = util::crc32(payload.data(), payload.size());
  payload += "CRC1";
  payload.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  std::stringstream legacy(payload);
  nn::Sequential same;
  Xoshiro256 rng2(14);
  same.add(std::make_unique<nn::Dense>(5, 3, rng2));
  nn::load_params(same, legacy);  // warns, must not throw
  const nn::Mat x = random_input(2, 5, rng);
  expect_mat_bitwise_equal(same.forward(x, false), model.forward(x, false),
                           "legacy-load");
}

}  // namespace
