// Serving daemon (src/serve, ISSUE 9): registry loading + identity hashes,
// the fixed-shape classify protocol, per-model batch coalescing with
// admission control, and the HTTP daemon end to end — including the
// acceptance pin that batched classification responses are byte-identical
// to batch-size-1 responses.  Runs under the "serve" ctest label; keep it
// ASan-clean (fd ownership hand-off between the event loop and the batch
// workers is exactly the kind of code ASan exists for).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/arch_zoo.hpp"
#include "core/model_io.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "serve/batcher.hpp"
#include "serve/daemon.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace {

using namespace mldist;

// ---------------------------------------------------------------------------
// fixtures
// ---------------------------------------------------------------------------

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    static std::atomic<int> counter{0};
    path_ = (std::filesystem::temp_directory_path() /
             ("mldist_serve_" + tag + "_" + std::to_string(::getpid()) + "_" +
              std::to_string(counter.fetch_add(1))))
                .string();
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Save an untrained model of `arch` into `dir`/`name`.nnb — serving only
/// needs the forward pass, so random init weights are fine and fast.
void save_test_model(const std::string& dir, const std::string& name,
                     const std::string& arch, std::size_t input_bits,
                     std::size_t classes, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::unique_ptr<nn::Sequential> model;
  if (arch == "default-mlp") {
    model = core::build_default_mlp(input_bits, classes, rng);
  } else if (arch.rfind("gohr-net/", 0) == 0) {
    model = core::build_gohr_net(input_bits, classes,
                                 core::gohr_net_depth(arch), rng);
  } else {
    model = core::build_architecture(arch, input_bits, classes, rng);
  }
  core::save_model(*model, arch, input_bits, classes,
                   dir + "/" + name + ".nnb");
}

struct HttpResult {
  int status = 0;
  std::string body;
};

int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

HttpResult read_response(int fd) {
  std::string raw;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  HttpResult res;
  if (raw.rfind("HTTP/1.1 ", 0) == 0) res.status = std::atoi(raw.c_str() + 9);
  const std::size_t sep = raw.find("\r\n\r\n");
  if (sep != std::string::npos) res.body = raw.substr(sep + 4);
  return res;
}

HttpResult http_request(std::uint16_t port, const std::string& method,
                        const std::string& path, const std::string& body) {
  const int fd = connect_loopback(port);
  if (fd < 0) return {};
  const std::string req = method + " " + path +
                          " HTTP/1.1\r\nHost: localhost\r\nContent-Length: " +
                          std::to_string(body.size()) +
                          "\r\nConnection: close\r\n\r\n" + body;
  (void)::send(fd, req.data(), req.size(), 0);
  return read_response(fd);
}

HttpResult http_post(std::uint16_t port, const std::string& path,
                     const std::string& body) {
  return http_request(port, "POST", path, body);
}

HttpResult http_get(std::uint16_t port, const std::string& path) {
  return http_request(port, "GET", path, "");
}

std::string classify_body(const std::string& model,
                          const std::vector<std::string>& inputs) {
  std::string body = "{\"model\":\"" + model + "\",\"inputs\":[";
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (i > 0) body += ",";
    body += "\"" + inputs[i] + "\"";
  }
  return body + "]}";
}

/// Deterministic pseudo-random hex string of `bytes` bytes.
std::string hex_input(std::uint64_t seed, std::size_t bytes) {
  util::Xoshiro256 rng(seed);
  std::string hex;
  static const char* digits = "0123456789abcdef";
  for (std::size_t i = 0; i < bytes; ++i) {
    const std::uint8_t b = static_cast<std::uint8_t>(rng.next_u64());
    hex += digits[b >> 4];
    hex += digits[b & 0xf];
  }
  return hex;
}

// ---------------------------------------------------------------------------
// registry
// ---------------------------------------------------------------------------

TEST(Registry, LoadsModelsSortedWithStableIdentity) {
  TempDir dir("registry");
  save_test_model(dir.path(), "b-speck", "gohr-net/1", 32, 2, 11);
  save_test_model(dir.path(), "a-gimli", "default-mlp", 128, 2, 12);

  serve::ModelRegistry registry;
  ASSERT_EQ(registry.load_dir(dir.path()), 2u);
  ASSERT_EQ(registry.size(), 2u);
  // Sorted by file name, so the listing is deterministic.
  EXPECT_EQ(registry.entries()[0].name, "a-gimli");
  EXPECT_EQ(registry.entries()[1].name, "b-speck");

  const serve::ModelEntry* e = registry.find("b-speck");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->arch, "gohr-net/1");
  EXPECT_EQ(e->input_bits, 32u);
  EXPECT_EQ(e->classes, 2u);
  EXPECT_GT(e->params, 0u);
  ASSERT_EQ(e->config_hash.size(), 8u);
  for (char c : e->config_hash) {
    EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(c))) << c;
  }
  EXPECT_EQ(registry.find("nope"), nullptr);

  std::string json_error;
  const std::string listing = registry.to_json();
  EXPECT_TRUE(util::json_validate(listing, &json_error)) << json_error;
  EXPECT_NE(listing.find("\"a-gimli\""), std::string::npos);
  EXPECT_NE(listing.find("\"b-speck\""), std::string::npos);

  // Reloading the same directory yields the same identity hash (the hash
  // covers name/arch/dims/topology, none of which changed).
  serve::ModelRegistry again;
  ASSERT_EQ(again.load_dir(dir.path()), 2u);
  EXPECT_EQ(again.find("b-speck")->config_hash, e->config_hash);
}

TEST(Registry, RejectsCorruptModelFile) {
  TempDir dir("corrupt");
  save_test_model(dir.path(), "m", "default-mlp", 32, 2, 13);
  const std::string path = dir.path() + "/m.nnb";
  // Flip one byte deep in the parameter payload: the CRC-32 footer check
  // must refuse to serve silently corrupted weights.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-64, std::ios::end);
    char b;
    f.read(&b, 1);
    f.seekp(-64, std::ios::end);
    b = static_cast<char>(b ^ 0x5a);
    f.write(&b, 1);
  }
  serve::ModelRegistry registry;
  EXPECT_THROW((void)registry.load_dir(dir.path()), std::runtime_error);
}

TEST(Registry, RejectsMissingDirectory) {
  serve::ModelRegistry registry;
  EXPECT_THROW((void)registry.load_dir("/no/such/dir"), std::runtime_error);
}

// ---------------------------------------------------------------------------
// protocol
// ---------------------------------------------------------------------------

TEST(Protocol, ParsesWellFormedRequests) {
  serve::ClassifyRequest req;
  std::string error;
  ASSERT_TRUE(serve::parse_classify_request(
      "{\"model\":\"m\",\"inputs\":[\"00ff\",\"a1b2\"]}", &req, &error))
      << error;
  EXPECT_EQ(req.model, "m");
  ASSERT_EQ(req.inputs_hex.size(), 2u);
  EXPECT_EQ(req.inputs_hex[0], "00ff");
  EXPECT_EQ(req.inputs_hex[1], "a1b2");

  // Key order and whitespace are free.
  req = {};
  ASSERT_TRUE(serve::parse_classify_request(
      " { \"inputs\" : [ \"00\" ] , \"model\" : \"x\" } ", &req, &error))
      << error;
  EXPECT_EQ(req.model, "x");
  ASSERT_EQ(req.inputs_hex.size(), 1u);
}

TEST(Protocol, RejectsMalformedRequests) {
  const auto rejects = [](const std::string& body, const std::string& needle) {
    serve::ClassifyRequest req;
    std::string error;
    EXPECT_FALSE(serve::parse_classify_request(body, &req, &error)) << body;
    EXPECT_NE(error.find(needle), std::string::npos)
        << "body: " << body << "\nerror: " << error;
  };
  rejects("", "expected a JSON object");
  rejects("garbage", "expected a JSON object");
  rejects("{}", "empty request object");
  rejects("{\"model\":\"m\"}", "missing or empty \"inputs\"");
  rejects("{\"inputs\":[\"00\"]}", "missing \"model\"");
  rejects("{\"model\":\"m\",\"inputs\":[]}", "missing or empty \"inputs\"");
  rejects("{\"model\":\"m\",\"inputs\":[1]}", "array of hex strings");
  rejects("{\"model\":1,\"inputs\":[\"00\"]}", "must be a string");
  rejects("{\"model\":\"m\",\"inputs\":[\"00\"],\"extra\":true}",
          "unknown key");
  rejects("{\"model\":\"m\",\"model\":\"m\",\"inputs\":[\"00\"]}",
          "duplicate \"model\"");
  rejects("{\"model\":\"m\",\"inputs\":[\"00\"]}x", "trailing content");
}

TEST(Protocol, DecodeInputsValidatesHexAndWidth) {
  nn::Mat rows;
  std::string error;
  ASSERT_TRUE(serve::decode_inputs({"00ff", "8001"}, 16, &rows, &error))
      << error;
  ASSERT_EQ(rows.rows(), 2u);
  ASSERT_EQ(rows.cols(), 16u);
  // "00ff": first byte 0x00 -> eight 0.0 floats, second byte 0xff -> eight
  // 1.0 floats (LSB-first bit unpacking, util::bits_to_floats).
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(rows.row(0)[i], 0.0f);
    EXPECT_EQ(rows.row(0)[8 + i], 1.0f);
  }
  EXPECT_FALSE(serve::decode_inputs({"00"}, 16, &rows, &error));
  EXPECT_NE(error.find("model expects 2"), std::string::npos) << error;
  EXPECT_FALSE(serve::decode_inputs({"zz"}, 8, &rows, &error));
  EXPECT_FALSE(serve::decode_inputs({"0"}, 8, &rows, &error));  // odd length
}

// ---------------------------------------------------------------------------
// batcher
// ---------------------------------------------------------------------------

serve::ClassifyJob make_job(const serve::ModelEntry& entry, std::size_t rows,
                            std::uint64_t seed) {
  serve::ClassifyJob job;
  job.rows = rows;
  job.features.resize(rows * entry.input_bits);
  util::Xoshiro256 rng(seed);
  for (float& f : job.features) f = static_cast<float>(rng.next_u64() & 1);
  return job;
}

TEST(Batcher, CoalescesConcurrentJobsIntoOneBatch) {
  TempDir dir("coalesce");
  save_test_model(dir.path(), "m", "default-mlp", 32, 2, 21);
  serve::ModelRegistry registry;
  ASSERT_EQ(registry.load_dir(dir.path()), 1u);

  serve::BatchOptions opt;
  opt.batch_window_us = 200'000;  // wide window: all jobs land in one batch
  opt.batch_max_rows = 64;
  serve::ModelWorker worker(registry.entries()[0], opt);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(worker.submit(make_job(registry.entries()[0], 2, 30 + i)));
  }
  worker.stop();  // drains: every submitted job is answered
  EXPECT_EQ(worker.answered(), 4u);
  EXPECT_EQ(worker.batches(), 1u);
}

TEST(Batcher, FullBatchFlushesBeforeTheWindowCloses) {
  TempDir dir("flush");
  save_test_model(dir.path(), "m", "default-mlp", 32, 2, 22);
  serve::ModelRegistry registry;
  ASSERT_EQ(registry.load_dir(dir.path()), 1u);

  serve::BatchOptions opt;
  opt.batch_window_us = 60'000'000;  // a window far longer than the test
  opt.batch_max_rows = 4;
  serve::ModelWorker worker(registry.entries()[0], opt);
  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(worker.submit(make_job(registry.entries()[0], 2, 41)));
  ASSERT_TRUE(worker.submit(make_job(registry.entries()[0], 2, 42)));
  // batch_max_rows reached -> the batch must run without waiting out the
  // minute-long window.
  while (worker.answered() < 2u &&
         std::chrono::steady_clock::now() - start < std::chrono::seconds(10)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(worker.answered(), 2u);
  worker.stop();
}

TEST(Batcher, AdmissionControlBoundsQueueAndRequestSize) {
  TempDir dir("admission");
  save_test_model(dir.path(), "m", "default-mlp", 32, 2, 23);
  serve::ModelRegistry registry;
  ASSERT_EQ(registry.load_dir(dir.path()), 1u);
  const serve::ModelEntry& entry = registry.entries()[0];

  serve::BatchOptions opt;
  opt.batch_window_us = 2'000'000;  // hold the first batch open
  opt.batch_max_rows = 1024;        // never flush on fullness in this test
  opt.queue_max_rows = 4;
  serve::ModelWorker worker(entry, opt);

  EXPECT_FALSE(worker.submit(make_job(entry, 0, 50)));     // empty
  EXPECT_FALSE(worker.submit(make_job(entry, 2048, 51)));  // > batch_max_rows
  ASSERT_TRUE(worker.submit(make_job(entry, 2, 52)));
  ASSERT_TRUE(worker.submit(make_job(entry, 2, 53)));      // queue now full
  EXPECT_FALSE(worker.submit(make_job(entry, 1, 54)));     // overflow -> 503
  worker.stop();
  EXPECT_EQ(worker.answered(), 2u);
  EXPECT_FALSE(worker.submit(make_job(entry, 1, 55)));     // stopped
}

// ---------------------------------------------------------------------------
// daemon end to end
// ---------------------------------------------------------------------------

class DaemonTest : public ::testing::Test {
 protected:
  void StartDaemon(const serve::ServeOptions& opt) {
    dir_ = std::make_unique<TempDir>("daemon");
    save_test_model(dir_->path(), "gohr", "gohr-net/2", 128, 2, 61);
    save_test_model(dir_->path(), "mlp", "default-mlp", 32, 2, 62);
    ASSERT_EQ(registry_.load_dir(dir_->path()), 2u);
    daemon_ = std::make_unique<serve::ServeDaemon>(registry_);
    std::string error;
    ASSERT_TRUE(daemon_->start(opt, &error)) << error;
    ASSERT_NE(daemon_->port(), 0);
  }

  void TearDown() override {
    if (daemon_) daemon_->stop();
  }

  std::unique_ptr<TempDir> dir_;
  serve::ModelRegistry registry_;
  std::unique_ptr<serve::ServeDaemon> daemon_;
};

TEST_F(DaemonTest, ServesModelsClassifyAndErrors) {
  StartDaemon(serve::ServeOptions{});
  const std::uint16_t port = daemon_->port();

  const HttpResult models = http_get(port, "/v1/models");
  EXPECT_EQ(models.status, 200);
  std::string json_error;
  EXPECT_TRUE(util::json_validate(models.body, &json_error)) << json_error;
  EXPECT_NE(models.body.find("\"gohr\""), std::string::npos);
  EXPECT_NE(models.body.find("\"mlp\""), std::string::npos);

  const HttpResult ok =
      http_post(port, "/v1/classify",
                classify_body("gohr", {hex_input(1, 16), hex_input(2, 16)}));
  EXPECT_EQ(ok.status, 200);
  EXPECT_TRUE(util::json_validate(ok.body, &json_error))
      << json_error << "\n" << ok.body;
  EXPECT_NE(ok.body.find("\"predictions\":["), std::string::npos);
  EXPECT_NE(ok.body.find("\"config_hash\":\"" +
                         registry_.find("gohr")->config_hash + "\""),
            std::string::npos);

  // Error paths carry distinct statuses so clients can react.
  EXPECT_EQ(http_post(port, "/v1/classify",
                      classify_body("nope", {hex_input(3, 16)}))
                .status,
            404);
  EXPECT_EQ(http_post(port, "/v1/classify", "not json").status, 400);
  EXPECT_EQ(http_post(port, "/v1/classify",
                      classify_body("gohr", {"00ff"}))  // wrong width
                .status,
            400);
  EXPECT_EQ(http_post(port, "/v1/classify",
                      classify_body("gohr", {"zzzz"}))  // not hex
                .status,
            400);
  EXPECT_EQ(http_post(port, "/metrics", "x").status, 405);
  EXPECT_EQ(http_get(port, "/nope").status, 404);

  const HttpResult health = http_get(port, "/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("\"models\":2"), std::string::npos);

  const HttpResult metrics = http_get(port, "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("mldist_serve_requests_total"),
            std::string::npos);
  EXPECT_GE(daemon_->requests(), 8u);
}

// THE acceptance pin of the tentpole: a multi-row (batched GEMM) request
// and the same rows sent as separate batch-size-1 requests must produce
// byte-identical prediction objects.  Row independence of the forward pass
// plus deterministic %.6g rendering make coalescing invisible to clients.
TEST_F(DaemonTest, BatchedResponsesAreByteIdenticalToUnbatched) {
  StartDaemon(serve::ServeOptions{});
  const std::uint16_t port = daemon_->port();

  std::vector<std::string> inputs;
  for (int i = 0; i < 8; ++i) inputs.push_back(hex_input(100 + i, 16));

  const HttpResult batched =
      http_post(port, "/v1/classify", classify_body("gohr", inputs));
  ASSERT_EQ(batched.status, 200);

  // Slice the batched predictions array into its per-row objects.
  const std::string key = "\"predictions\":[";
  const std::size_t start = batched.body.find(key);
  ASSERT_NE(start, std::string::npos);
  std::vector<std::string> batched_preds;
  std::size_t pos = start + key.size();
  while (batched.body[pos] == '{') {
    const std::size_t end = batched.body.find('}', pos);
    ASSERT_NE(end, std::string::npos);
    batched_preds.push_back(batched.body.substr(pos, end - pos + 1));
    pos = end + 1;
    if (batched.body[pos] == ',') ++pos;
  }
  ASSERT_EQ(batched_preds.size(), inputs.size());

  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const HttpResult single =
        http_post(port, "/v1/classify", classify_body("gohr", {inputs[i]}));
    ASSERT_EQ(single.status, 200);
    const std::size_t s = single.body.find(key);
    ASSERT_NE(s, std::string::npos);
    const std::size_t e = single.body.find('}', s);
    const std::string single_pred =
        single.body.substr(s + key.size(), e - s - key.size() + 1);
    EXPECT_EQ(single_pred, batched_preds[i]) << "row " << i;
  }
}

TEST_F(DaemonTest, ConcurrentRequestsAreCoalescedIntoFewerBatches) {
  serve::ServeOptions opt;
  opt.batch.batch_window_us = 50'000;
  StartDaemon(opt);
  const std::uint16_t port = daemon_->port();

  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  const std::uint64_t batches_before =
      reg.counter_value("serve.model.mlp.batches");
  const std::uint64_t requests_before =
      reg.counter_value("serve.model.mlp.requests");

  constexpr int kClients = 8;
  std::vector<std::thread> clients;
  std::atomic<int> ok{0};
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      const HttpResult res = http_post(
          port, "/v1/classify", classify_body("mlp", {hex_input(200 + i, 4)}));
      if (res.status == 200) ok.fetch_add(1);
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(ok.load(), kClients);

  const std::uint64_t batches =
      reg.counter_value("serve.model.mlp.batches") - batches_before;
  const std::uint64_t requests =
      reg.counter_value("serve.model.mlp.requests") - requests_before;
  EXPECT_EQ(requests, static_cast<std::uint64_t>(kClients));
  // With a 50ms window and 8 concurrent clients at least some coalescing
  // must happen; equality would mean every request ran its own GEMM.
  EXPECT_LT(batches, requests);
}

TEST_F(DaemonTest, OverloadedQueueAnswers503) {
  serve::ServeOptions opt;
  opt.batch.batch_window_us = 500'000;  // hold the first batch half a second
  opt.batch.batch_max_rows = 1024;      // don't flush on fullness
  opt.batch.queue_max_rows = 2;
  StartDaemon(opt);
  const std::uint16_t port = daemon_->port();

  // First request fills the whole queue and parks in the open window...
  const int first = connect_loopback(port);
  ASSERT_GE(first, 0);
  const std::string body = classify_body("mlp", {hex_input(300, 4),
                                                 hex_input(301, 4)});
  const std::string req =
      "POST /v1/classify HTTP/1.1\r\nHost: h\r\nContent-Length: " +
      std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" + body;
  ASSERT_EQ(::send(first, req.data(), req.size(), 0),
            static_cast<ssize_t>(req.size()));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // ...so the second is refused by admission control, immediately.
  const HttpResult overflow =
      http_post(port, "/v1/classify", classify_body("mlp", {hex_input(302, 4)}));
  EXPECT_EQ(overflow.status, 503);
  EXPECT_GE(daemon_->rejected(), 1u);

  // The parked request is still answered once its window closes: overload
  // rejects new work, it never drops admitted work.
  const HttpResult parked = read_response(first);
  EXPECT_EQ(parked.status, 200);

  // A single request wider than batch_max_rows is a client error, not 503.
  serve::ServeOptions small;
  small.batch.batch_max_rows = 2;
  daemon_->stop();
  daemon_ = std::make_unique<serve::ServeDaemon>(registry_);
  std::string error;
  ASSERT_TRUE(daemon_->start(small, &error)) << error;
  const HttpResult too_wide = http_post(
      daemon_->port(), "/v1/classify",
      classify_body("mlp",
                    {hex_input(1, 4), hex_input(2, 4), hex_input(3, 4)}));
  EXPECT_EQ(too_wide.status, 400);
}

// ---------------------------------------------------------------------------
// per-request tracing: request ids + the structured access log (ISSUE 10)
// ---------------------------------------------------------------------------

/// Raw HTTP exchange keeping the response headers (read_response discards
/// them, and the request-id contract lives in a header).
std::string http_request_raw(std::uint16_t port, const std::string& path,
                             const std::string& body,
                             const std::string& extra_headers) {
  const int fd = connect_loopback(port);
  if (fd < 0) return {};
  const std::string req = "POST " + path + " HTTP/1.1\r\nHost: localhost\r\n" +
                          extra_headers +
                          "Content-Length: " + std::to_string(body.size()) +
                          "\r\nConnection: close\r\n\r\n" + body;
  (void)::send(fd, req.data(), req.size(), 0);
  std::string raw;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return raw;
}

/// The value of `name` in a raw response's header block ("" when absent).
std::string response_header(const std::string& raw, const std::string& name) {
  const std::string needle = "\r\n" + name + ": ";
  const std::size_t head_end = raw.find("\r\n\r\n");
  const std::size_t pos = raw.find(needle);
  if (pos == std::string::npos || pos > head_end) return {};
  const std::size_t start = pos + needle.size();
  return raw.substr(start, raw.find("\r\n", start) - start);
}

/// Redirect the global logger to a fresh temp file for one test, restoring
/// the stderr sink afterwards (the obs_test ScopedLogFile idiom).
class ScopedAccessLog {
 public:
  explicit ScopedAccessLog(const char* tag) {
    path_ = std::filesystem::temp_directory_path() /
            (std::string("mldist_serve_access_") + tag + ".jsonl");
    std::filesystem::remove(path_);
    std::string error;
    EXPECT_TRUE(obs::Logger::global().set_file(path_.string(), &error))
        << error;
  }
  ~ScopedAccessLog() {
    obs::Logger::global().flush();
    obs::Logger::global().set_file("");
    std::filesystem::remove(path_);
  }

  std::vector<std::string> lines() const {
    obs::Logger::global().flush();
    std::vector<std::string> out;
    std::ifstream in(path_);
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) out.push_back(line);
    }
    return out;
  }

 private:
  std::filesystem::path path_;
};

/// The expected generated id for the n-th header-less request of a daemon
/// seeded with `seed` — the documented ServeOptions contract.
std::string expected_rid(std::uint64_t seed, std::uint64_t n) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(
                    util::derive_stream_seed(seed, n)));
  return buf;
}

TEST_F(DaemonTest, RequestIdIsEchoedVerbatim) {
  StartDaemon(serve::ServeOptions{});
  const std::string raw =
      http_request_raw(daemon_->port(), "/v1/classify",
                       classify_body("mlp", {hex_input(500, 4)}),
                       "X-Request-Id: client-chose-this-42\r\n");
  EXPECT_EQ(raw.rfind("HTTP/1.1 200", 0), 0u) << raw;
  EXPECT_EQ(response_header(raw, "X-Request-Id"), "client-chose-this-42");
}

TEST_F(DaemonTest, GeneratedRequestIdsAreSeededAndDeterministic) {
  serve::ServeOptions opt;
  opt.request_id_seed = 0xfeedbeef;
  StartDaemon(opt);
  // No X-Request-Id from the client: the daemon assigns ids from its seeded
  // counter stream — no clocks, so the sequence replays exactly.
  const std::string first =
      http_request_raw(daemon_->port(), "/v1/classify",
                       classify_body("mlp", {hex_input(501, 4)}), "");
  const std::string second =
      http_request_raw(daemon_->port(), "/v1/classify",
                       classify_body("mlp", {hex_input(502, 4)}), "");
  EXPECT_EQ(response_header(first, "X-Request-Id"),
            expected_rid(0xfeedbeef, 0));
  EXPECT_EQ(response_header(second, "X-Request-Id"),
            expected_rid(0xfeedbeef, 1));
}

TEST_F(DaemonTest, HostileRequestIdsAreSanitizedAndCapped) {
  StartDaemon(serve::ServeOptions{});
  // Quotes and backslashes would break the JSONL access line and header
  // framing; they come back as underscores.
  const std::string raw =
      http_request_raw(daemon_->port(), "/v1/classify",
                       classify_body("mlp", {hex_input(503, 4)}),
                       "X-Request-Id: evil\"id\\x\r\n");
  EXPECT_EQ(response_header(raw, "X-Request-Id"), "evil_id_x");

  const std::string long_id(80, 'a');
  const std::string capped =
      http_request_raw(daemon_->port(), "/v1/classify",
                       classify_body("mlp", {hex_input(504, 4)}),
                       "X-Request-Id: " + long_id + "\r\n");
  EXPECT_EQ(response_header(capped, "X-Request-Id"), std::string(64, 'a'));
}

TEST_F(DaemonTest, ErrorResponsesCarryTheRequestIdAndLogTheStatus) {
  StartDaemon(serve::ServeOptions{});
  ScopedAccessLog log("errors");
  const std::string raw =
      http_request_raw(daemon_->port(), "/v1/classify",
                       classify_body("no-such-model", {hex_input(505, 4)}),
                       "X-Request-Id: err-trace-1\r\n");
  EXPECT_EQ(raw.rfind("HTTP/1.1 404", 0), 0u) << raw;
  EXPECT_EQ(response_header(raw, "X-Request-Id"), "err-trace-1");
  // Inline rejections get an access line too — the trace has no holes.
  std::size_t hits = 0;
  for (const std::string& line : log.lines()) {
    if (line.find("\"request_id\":\"err-trace-1\"") == std::string::npos) {
      continue;
    }
    ++hits;
    std::string error;
    EXPECT_TRUE(util::json_validate(line, &error)) << error << "\n" << line;
    EXPECT_NE(line.find("\"component\":\"serve.access\""), std::string::npos);
    EXPECT_NE(line.find("\"status\":404"), std::string::npos);
  }
  EXPECT_EQ(hits, 1u);
}

TEST_F(DaemonTest, SlowRequestsForceWarnLevelAccessLines) {
  serve::ServeOptions opt;
  opt.batch.slow_request_ms = 1;      // every request is "slow" next to...
  opt.batch.batch_window_us = 5'000;  // ...a 5 ms coalescing window
  StartDaemon(opt);
  ScopedAccessLog log("slow");
  const std::string raw =
      http_request_raw(daemon_->port(), "/v1/classify",
                       classify_body("mlp", {hex_input(506, 4)}),
                       "X-Request-Id: slow-1\r\n");
  EXPECT_EQ(raw.rfind("HTTP/1.1 200", 0), 0u) << raw;
  std::size_t hits = 0;
  for (const std::string& line : log.lines()) {
    if (line.find("\"request_id\":\"slow-1\"") == std::string::npos) continue;
    ++hits;
    EXPECT_NE(line.find("\"level\":\"warn\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"msg\":\"slow request\""), std::string::npos)
        << line;
  }
  EXPECT_EQ(hits, 1u);
}

TEST_F(DaemonTest, AccessLogBurstStaysWellFormedOnePerRequest) {
  serve::ServeOptions opt;
  opt.batch.batch_window_us = 10'000;  // coalesce the burst across clients
  StartDaemon(opt);
  ScopedAccessLog log("burst");
  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  std::atomic<int> ok{0};
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      const std::string rid = "burst-" + std::to_string(i);
      const std::string raw = http_request_raw(
          daemon_->port(), "/v1/classify",
          classify_body("mlp", {hex_input(600 + i, 4)}),
          "X-Request-Id: " + rid + "\r\n");
      if (raw.rfind("HTTP/1.1 200", 0) == 0 &&
          response_header(raw, "X-Request-Id") == rid) {
        ok.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(ok.load(), kClients);

  // Concurrent batched answering must still yield one whole JSONL line per
  // request: every line valid JSON, every id exactly once.
  const std::vector<std::string> lines = log.lines();
  std::string error;
  for (const std::string& line : lines) {
    ASSERT_TRUE(util::json_validate(line, &error)) << error << "\n" << line;
  }
  for (int i = 0; i < kClients; ++i) {
    const std::string needle =
        "\"request_id\":\"burst-" + std::to_string(i) + "\"";
    std::size_t hits = 0;
    for (const std::string& line : lines) {
      if (line.find(needle) != std::string::npos) ++hits;
    }
    EXPECT_EQ(hits, 1u) << needle;
  }
}

TEST_F(DaemonTest, QueueDepthGaugeIsExportedAndInRunzDetail) {
  StartDaemon(serve::ServeOptions{});
  const std::uint16_t port = daemon_->port();
  // Registered at worker construction, so it is scrape-visible (value 0)
  // before any request arrives.
  const HttpResult metrics = http_get(port, "/metrics");
  ASSERT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("mldist_serve_model_mlp_queue_depth"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("mldist_serve_model_gohr_queue_depth"),
            std::string::npos);

  EXPECT_EQ(http_post(port, "/v1/classify",
                      classify_body("mlp", {hex_input(700, 4)}))
                .status,
            200);
  const HttpResult runz = http_get(port, "/runz");
  ASSERT_EQ(runz.status, 200);
  std::string error;
  EXPECT_TRUE(util::json_validate(runz.body, &error)) << error;
  EXPECT_NE(runz.body.find("\"phase\":\"serve\""), std::string::npos);
  // Per-model serving detail: both models listed with their live gauges.
  EXPECT_NE(runz.body.find("\"model\":\"mlp\""), std::string::npos);
  EXPECT_NE(runz.body.find("\"model\":\"gohr\""), std::string::npos);
  EXPECT_NE(runz.body.find("\"queue_depth\":"), std::string::npos);
}

TEST_F(DaemonTest, StopDrainsAndIsIdempotent) {
  StartDaemon(serve::ServeOptions{});
  const std::uint16_t port = daemon_->port();
  EXPECT_EQ(http_post(port, "/v1/classify",
                      classify_body("mlp", {hex_input(400, 4)}))
                .status,
            200);
  daemon_->stop();
  EXPECT_FALSE(daemon_->running());
  daemon_->stop();  // idempotent
  // The port is released (close-on-exec fds, no lingering owner).
  EXPECT_LT(connect_loopback(port), 0);
}

}  // namespace
