// Every JSON artifact this repo emits must be machine-readable: telemetry
// records, registry snapshots, trace files, and whatever already sits under
// results/ (bench artifacts from earlier runs in this build tree).  Backed
// by util::json_validate — a checker, not a parser — so a malformed emitter
// fails here long before an external plotting script chokes on it.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "core/online_game.hpp"
#include "core/telemetry.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"

namespace {

using namespace mldist;

std::string read_file(const std::filesystem::path& p) {
  std::ifstream in(p);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

TEST(Artifacts, PhaseTelemetryJson) {
  core::PhaseTelemetry tel;
  tel.seconds = 1.5;
  tel.queries = 1200;
  tel.rows = 800;
  tel.threads = 4;
  std::string error;
  EXPECT_TRUE(util::json_validate(tel.to_json(), &error)) << error;
}

TEST(Artifacts, RobustnessTelemetryJson) {
  core::RobustnessTelemetry rob;
  rob.attempts = 3;
  rob.divergences = 2;
  rob.rollbacks = 2;
  rob.degraded_to_baseline = true;
  rob.last_fault = "loss became NaN\nwith a \"quoted\" detail";
  std::string error;
  EXPECT_TRUE(util::json_validate(rob.to_json(), &error)) << error;
}

TEST(Artifacts, MetricsSnapshotJsonWithEveryKind) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  reg.add(reg.counter("artifact_test.counter"), 3);
  reg.set_gauge(reg.gauge("artifact_test.gauge"), 11);
  const obs::MetricId h = reg.histogram("artifact_test.hist_ns");
  reg.observe(h, 0);
  reg.observe(h, 123456789);
  std::string error;
  const std::string json = reg.snapshot().to_json();
  EXPECT_TRUE(util::json_validate(json, &error)) << error << "\n" << json;
}

TEST(Artifacts, TraceFileIsWellFormed) {
  const auto path = std::filesystem::temp_directory_path() /
                    "mldist_artifact_trace.json";
  std::filesystem::remove(path);
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.enable(path.string());
  {
    obs::Span span("artifact.span", "test");
    span.arg("note", "quotes \" and backslashes \\ and\nnewlines");
  }
  std::string error;
  ASSERT_TRUE(tracer.flush(&error)) << error;
  tracer.disable();
  EXPECT_TRUE(util::json_validate(read_file(path), &error)) << error;
  std::filesystem::remove(path);
}

TEST(Artifacts, TraceFileEmbedsRunManifest) {
  // Every trace file must be attributable to the run that produced it:
  // otherData carries the full RunManifest (run id, config hash, git,
  // kernel, build), same block that heads every results/ JSON.
  const auto path = std::filesystem::temp_directory_path() /
                    "mldist_artifact_trace_manifest.json";
  std::filesystem::remove(path);
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.enable(path.string());
  { obs::Span span("artifact.manifest_span", "test"); }
  std::string error;
  ASSERT_TRUE(tracer.flush(&error)) << error;
  tracer.disable();
  const std::string text = read_file(path);
  EXPECT_NE(text.find("\"manifest\":{"), std::string::npos);
  EXPECT_NE(text.find("\"run_id\""), std::string::npos);
  EXPECT_NE(text.find("\"config_hash\""), std::string::npos);
  EXPECT_NE(text.find("\"git\""), std::string::npos);
  std::filesystem::remove(path);
}

TEST(Artifacts, ExistingResultsDirectoryValidates) {
  // Bench artifacts accumulated in this build tree (results/*.json written
  // through util::write_json_file).  An empty or absent directory passes
  // trivially; any file that exists must parse.
  const std::filesystem::path dir = "results";
  if (!std::filesystem::exists(dir)) {
    GTEST_SKIP() << "no results/ directory in the working directory";
  }
  int checked = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".json") {
      continue;
    }
    std::string error;
    const std::string text = read_file(entry.path());
    EXPECT_TRUE(util::json_validate(text, &error))
        << entry.path() << ": " << error;
    // Bench artifacts written through write_bench_json must carry the run
    // manifest so they are attributable (ISSUE: every results/ JSON embeds
    // a manifest block).
    if (entry.path().filename().string().rfind("BENCH_", 0) == 0) {
      EXPECT_NE(text.find("\"manifest\":{"), std::string::npos)
          << entry.path() << " lacks a manifest block";
    }
    ++checked;
  }
  std::printf("validated %d results/*.json artifact(s)\n", checked);
}

}  // namespace
