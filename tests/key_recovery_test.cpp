// Tests for the Gohr-style last-round key recovery extension.
#include <gtest/gtest.h>

#include <memory>

#include "core/arch_zoo.hpp"
#include "core/distinguisher.hpp"
#include "core/key_recovery.hpp"
#include "core/targets.hpp"
#include "util/rng.hpp"

namespace {

using namespace mldist::core;
using mldist::util::Xoshiro256;

/// Train a distinguisher for (rounds)-round SPECK; shared by the tests.
std::unique_ptr<MLDistinguisher> train_speck_model(int rounds,
                                                   std::size_t base_inputs) {
  Xoshiro256 rng(101);
  auto model = build_default_mlp(32, 2, rng);
  DistinguisherOptions opt;
  opt.epochs = 5;
  opt.seed = 0xabcd;
  auto dist = std::make_unique<MLDistinguisher>(std::move(model), opt);
  const SpeckTarget target(rounds);
  (void)dist->train(target, base_inputs);
  return dist;
}

TEST(KeyRecovery, RecoversTrueKeyAmongSampledCandidates) {
  // 4-round attack with a 3-round distinguisher; 255 random wrong
  // candidates + the true key.  The true key must rank at or near the top.
  auto dist = train_speck_model(3, 3000);
  ASSERT_GT(dist->last_train().val_accuracy, 0.75);

  KeyRecoveryOptions opt;
  opt.total_rounds = 4;
  opt.base_inputs = 64;
  opt.seed = 0x5eed01;
  Xoshiro256 rng(7);
  for (int i = 0; i < 255; ++i) {
    opt.candidates.push_back(static_cast<std::uint16_t>(rng.next_u32()));
  }
  const KeyRecoveryResult res = speck_last_round_key_recovery(
      dist->model(), std::vector<std::uint32_t>{0x00400000u, 0x00102000u},
      opt);
  EXPECT_LE(res.true_rank, 3u);
  EXPECT_GT(res.true_score, res.mean_wrong_score + 0.1);
}

TEST(KeyRecovery, TrueKeyInjectedWhenMissingFromCandidates) {
  auto dist = train_speck_model(3, 800);
  KeyRecoveryOptions opt;
  opt.total_rounds = 4;
  opt.base_inputs = 16;
  opt.candidates = {0x0001, 0x0002, 0x0003};  // almost surely not the key
  const KeyRecoveryResult res = speck_last_round_key_recovery(
      dist->model(), std::vector<std::uint32_t>{0x00400000u, 0x00102000u},
      opt);
  // The true key was scored even though the list omitted it.
  EXPECT_GE(res.candidates_scored, 4u);
  EXPECT_GT(res.true_score, 0.0);
}

TEST(KeyRecovery, WrongKeysScoreBetweenBaselineAndTrueKey) {
  // SPECK's inverse round leaves the y word key-independent
  // (y = (y' ^ x') >>> 2), so even a wrong candidate hands the model the
  // correct 3-round y-half difference: wrong scores sit well ABOVE the
  // 1/t = 0.5 floor.  Ranking works because only the true key also fixes
  // the x-half.  This is a structural property worth pinning down.
  auto dist = train_speck_model(3, 3000);
  KeyRecoveryOptions opt;
  opt.total_rounds = 4;
  opt.base_inputs = 64;
  Xoshiro256 rng(8);
  for (int i = 0; i < 128; ++i) {
    opt.candidates.push_back(static_cast<std::uint16_t>(rng.next_u32()));
  }
  const KeyRecoveryResult res = speck_last_round_key_recovery(
      dist->model(), std::vector<std::uint32_t>{0x00400000u, 0x00102000u},
      opt);
  EXPECT_GT(res.mean_wrong_score, 0.55);             // above the 1/t floor
  EXPECT_GT(res.true_score, res.mean_wrong_score + 0.1);  // but separable
}

TEST(KeyRecovery, DeterministicGivenSeed) {
  auto dist = train_speck_model(3, 800);
  KeyRecoveryOptions opt;
  opt.total_rounds = 4;
  opt.base_inputs = 24;
  opt.candidates = {1, 2, 3, 4, 5};
  const std::vector<std::uint32_t> diffs = {0x00400000u, 0x00102000u};
  const KeyRecoveryResult a =
      speck_last_round_key_recovery(dist->model(), diffs, opt);
  const KeyRecoveryResult b =
      speck_last_round_key_recovery(dist->model(), diffs, opt);
  EXPECT_EQ(a.true_subkey, b.true_subkey);
  EXPECT_EQ(a.best_guess, b.best_guess);
  EXPECT_DOUBLE_EQ(a.true_score, b.true_score);
}

}  // namespace
