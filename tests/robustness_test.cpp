// Fault-tolerance tests (ISSUE 2): numeric-health guards, checkpoint
// rollback + LR-backoff retry, graceful degradation to the linear baseline,
// corrupt-model-file detection, and FaultyOracle determinism.
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/arch_zoo.hpp"
#include "core/checkpoint.hpp"
#include "core/dataset.hpp"
#include "core/distinguisher.hpp"
#include "core/experiment.hpp"
#include "core/fault_injection.hpp"
#include "core/model_io.hpp"
#include "core/oracle.hpp"
#include "core/targets.hpp"
#include "nn/dense.hpp"
#include "nn/health.hpp"
#include "util/crc32.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

namespace {

using namespace mldist;

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() /
          (std::string("mldist-robustness-") + std::to_string(::getpid()) +
           "-" + name))
      .string();
}

// --- util::crc32 ----------------------------------------------------------

TEST(Crc32, KnownAnswerAndChaining) {
  const char* s = "123456789";
  EXPECT_EQ(util::crc32(s, 9), 0xcbf43926u);  // the classic CRC-32 KAT
  // Chained updates equal one shot.
  util::Crc32 inc;
  inc.update(s, 4);
  inc.update(s + 4, 5);
  EXPECT_EQ(inc.value(), 0xcbf43926u);
  EXPECT_EQ(util::crc32(nullptr, 0), 0u);
}

// --- nn::HealthMonitor ----------------------------------------------------

TEST(HealthMonitor, RaisesTypedConditions) {
  nn::HealthOptions opts;
  opts.grad_norm_limit = 10.0;
  nn::HealthMonitor monitor(opts);
  monitor.check_batch(1, 0.7, 1.0);  // healthy

  try {
    monitor.check_batch(2, std::nan(""), 1.0);
    FAIL() << "non-finite loss not detected";
  } catch (const nn::TrainingDiverged& e) {
    EXPECT_EQ(e.issue(), nn::HealthIssue::kNonFiniteLoss);
    EXPECT_EQ(e.epoch(), 2);
  }
  EXPECT_THROW(monitor.check_batch(2, 0.7, 100.0), nn::TrainingDiverged);

  // Loss explosion against the rolling baseline of healthy epochs.
  nn::HealthMonitor epochs((nn::HealthOptions()));
  epochs.check_epoch(1, 0.5, {});
  epochs.check_epoch(2, 0.45, {});
  epochs.check_epoch(3, 0.6, {});  // within 10x baseline: fine
  try {
    epochs.check_epoch(4, 50.0, {});
    FAIL() << "loss explosion not detected";
  } catch (const nn::TrainingDiverged& e) {
    EXPECT_EQ(e.issue(), nn::HealthIssue::kLossExplosion);
  }
}

TEST(HealthMonitor, DetectsNonFiniteWeights) {
  util::Xoshiro256 rng(1);
  nn::Sequential model;
  model.add(std::make_unique<nn::Dense>(4, 2, rng));
  const auto params = model.params();
  nn::HealthMonitor monitor;
  monitor.check_epoch(1, 0.5, params);  // healthy weights pass
  params.front().value[0] = std::numeric_limits<float>::infinity();
  try {
    monitor.check_epoch(2, 0.5, params);
    FAIL() << "non-finite weight not detected";
  } catch (const nn::TrainingDiverged& e) {
    EXPECT_EQ(e.issue(), nn::HealthIssue::kNonFiniteWeight);
  }
}

// --- core::CheckpointManager ----------------------------------------------

TEST(CheckpointManager, KeepsBestAndRestores) {
  util::Xoshiro256 rng(2);
  nn::Sequential model;
  model.add(std::make_unique<nn::Dense>(3, 2, rng));
  const std::string path = temp_path("ckpt.nnb");
  core::CheckpointManager ckpt(path);
  EXPECT_FALSE(ckpt.has_checkpoint());
  EXPECT_THROW(ckpt.restore(model), std::runtime_error);

  const float best_w = model.params().front().value[0];
  EXPECT_TRUE(ckpt.update(model, 0.8));
  // Worse validation accuracy must not overwrite the snapshot.
  model.params().front().value[0] = 123.0f;
  EXPECT_FALSE(ckpt.update(model, 0.7));
  EXPECT_DOUBLE_EQ(ckpt.best_val_accuracy(), 0.8);

  ckpt.restore(model);
  EXPECT_FLOAT_EQ(model.params().front().value[0], best_w);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));  // atomic publish

  // A corrupted checkpoint is detected at restore time via the CRC footer.
  core::flip_file_bit(path, std::filesystem::file_size(path) - 12, 3);
  EXPECT_THROW(ckpt.restore(model), std::runtime_error);
  ckpt.remove_file();
  EXPECT_FALSE(std::filesystem::exists(path));
}

// --- corrupt model files through save_model/load_model --------------------

class ModelFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = temp_path("model.nnb");
    util::Xoshiro256 rng(7);
    auto model = core::build_default_mlp(16, 2, rng);
    core::save_model(*model, "default-mlp", 16, 2, path_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  std::string path_;
};

TEST_F(ModelFileTest, RoundTripsThroughCrcFooter) {
  const core::LoadedModel loaded = core::load_model(path_);
  EXPECT_EQ(loaded.arch, "default-mlp");
  EXPECT_EQ(loaded.input_bits, 16u);
  EXPECT_EQ(loaded.classes, 2u);
  ASSERT_NE(loaded.model, nullptr);
}

TEST_F(ModelFileTest, BitFlipInTensorsIsDetected) {
  // Flip a bit in the tensor payload (well past the text header, before the
  // 8-byte CRC footer).
  core::flip_file_bit(path_, std::filesystem::file_size(path_) - 100, 5);
  try {
    (void)core::load_model(path_);
    FAIL() << "corrupt model file loaded silently";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("CRC32 mismatch"), std::string::npos)
        << e.what();
  }
}

TEST_F(ModelFileTest, TruncationIsDetected) {
  core::truncate_file(path_, std::filesystem::file_size(path_) / 2);
  EXPECT_THROW((void)core::load_model(path_), std::runtime_error);
}

TEST_F(ModelFileTest, BadMagicIsDetected) {
  core::overwrite_file_prefix(path_, "XXXXX");
  try {
    (void)core::load_model(path_);
    FAIL() << "bad-magic model file loaded silently";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("bad header"), std::string::npos)
        << e.what();
  }
}

TEST_F(ModelFileTest, LegacyFileWithoutFooterStillLoads) {
  // Chopping exactly the 8-byte footer yields a pre-CRC legacy file; it
  // must load (with a warning), not fail.
  core::truncate_file(path_, std::filesystem::file_size(path_) - 8);
  const core::LoadedModel loaded = core::load_model(path_);
  ASSERT_NE(loaded.model, nullptr);
  EXPECT_EQ(loaded.arch, "default-mlp");
}

// --- core::FaultyOracle ---------------------------------------------------

TEST(FaultyOracle, SameSeedSameFaultSchedule) {
  util::FaultConfig faults;
  faults.bit_flip_prob = 0.3;
  faults.drop_prob = 0.2;

  const core::RandomOracle inner(2, 16);
  core::CollectOptions copt;
  copt.seed = 0xfa117;
  copt.chunk_base_inputs = 32;

  const auto run = [&](std::size_t threads) {
    core::FaultyOracle oracle(inner, faults);
    copt.threads = threads;
    const nn::Dataset ds = core::collect_dataset(oracle, 256, copt);
    return std::make_pair(ds, oracle.counters());
  };
  const auto [ds1, c1] = run(1);
  const auto [ds4, c4] = run(4);

  // Same seed ⇒ same data and same fault schedule, for any worker count.
  ASSERT_EQ(ds1.size(), ds4.size());
  ASSERT_EQ(ds1.x.rows(), ds4.x.rows());
  for (std::size_t r = 0; r < ds1.x.rows(); ++r) {
    for (std::size_t c = 0; c < ds1.x.cols(); ++c) {
      ASSERT_EQ(ds1.x.at(r, c), ds4.x.at(r, c)) << "row " << r;
    }
  }
  EXPECT_EQ(ds1.y, ds4.y);
  EXPECT_EQ(c1.queries, c4.queries);
  EXPECT_EQ(c1.drops, c4.drops);
  EXPECT_EQ(c1.bit_flips, c4.bit_flips);
  EXPECT_GT(c1.drops, 0u);
  EXPECT_GT(c1.bit_flips, 0u);

  // A different seed yields a different schedule (overwhelmingly likely).
  core::FaultyOracle other(inner, faults);
  copt.seed = 0xdead;
  copt.threads = 1;
  (void)core::collect_dataset(other, 256, copt);
  EXPECT_NE(other.counters().drops + other.counters().bit_flips,
            c1.drops + c1.bit_flips);
}

TEST(FaultyOracle, ForwardsShapeAndCounts) {
  const core::RandomOracle inner(3, 8);
  util::FaultConfig faults;
  faults.latency_spike_prob = 1.0;
  faults.latency_spike_us = 1;
  core::FaultyOracle oracle(inner, faults);
  EXPECT_EQ(oracle.num_differences(), 3u);
  EXPECT_EQ(oracle.output_bytes(), 8u);

  util::Xoshiro256 rng(5);
  std::vector<std::vector<std::uint8_t>> diffs;
  oracle.query(rng, diffs);
  ASSERT_EQ(diffs.size(), 3u);
  EXPECT_EQ(diffs[0].size(), 8u);
  EXPECT_EQ(oracle.counters().latency_spikes, 1u);
  oracle.reset_counters();
  EXPECT_EQ(oracle.counters().queries, 0u);
}

// --- divergence → rollback → retry → recovery -----------------------------

TEST(RetryPolicy, ForcedNaNRecoversViaRollbackAndBackoff) {
  core::ExperimentConfig config;
  config.target = "gimli-hash";
  config.rounds = 2;
  config.epochs = 4;
  config.seed = 99;
  config.threads = 1;
  const auto target = config.make_target();

  core::DistinguisherOptions opt(config);
  opt.faults.poison_weight_epoch = 2;  // NaN a weight after epoch 2 ...
  opt.faults.poison_max_attempts = 1;  // ... on the first attempt only
  opt.retry.max_attempts = 3;

  core::MLDistinguisher dist(config.make_model(*target), opt);
  const core::TrainReport rep = dist.train(*target, 400);

  // Attempt 1 diverged at epoch 3, rolled back to the epoch-2 checkpoint,
  // attempt 2 ran clean at half the learning rate.
  EXPECT_EQ(rep.robustness.attempts, 2);
  EXPECT_EQ(rep.robustness.divergences, 1);
  EXPECT_EQ(rep.robustness.rollbacks, 1);
  EXPECT_FALSE(rep.robustness.degraded_to_baseline);
  EXPECT_NE(rep.robustness.last_fault.find("non-finite"), std::string::npos)
      << rep.robustness.last_fault;

  // The recovered distinguisher is usable: finite weights, sane accuracy,
  // and a working online phase.
  EXPECT_TRUE(rep.usable);
  EXPECT_GT(rep.val_accuracy, 0.6);
  for (const auto& p : dist.model().params()) {
    for (std::size_t i = 0; i < p.size; ++i) {
      ASSERT_TRUE(std::isfinite(p.value[i]));
    }
  }
  const core::CipherOracle oracle(*target);
  const core::OnlineReport online = dist.test(oracle, 300);
  EXPECT_EQ(online.verdict, core::Verdict::kCipher);
}

TEST(RetryPolicy, ExhaustedRetriesDegradeToLinearBaseline) {
  core::ExperimentConfig config;
  config.target = "gimli-hash";
  config.rounds = 2;
  config.epochs = 3;
  config.seed = 123;
  config.threads = 1;
  const auto target = config.make_target();

  core::DistinguisherOptions opt(config);
  opt.faults.poison_weight_epoch = 1;
  opt.faults.poison_max_attempts = 8;  // poison outlives the retry budget
  opt.retry.max_attempts = 2;

  core::MLDistinguisher dist(config.make_model(*target), opt);
  const core::TrainReport rep = dist.train(*target, 300);

  EXPECT_EQ(rep.robustness.attempts, 2);
  EXPECT_EQ(rep.robustness.divergences, 2);
  EXPECT_TRUE(rep.robustness.degraded_to_baseline);
  EXPECT_TRUE(dist.degraded());

  // The online game still returns a verdict instead of aborting.
  const core::CipherOracle oracle(*target);
  const core::OnlineReport online = dist.test(oracle, 300);
  EXPECT_GT(online.samples, 0u);
  EXPECT_TRUE(online.verdict == core::Verdict::kCipher ||
              online.verdict == core::Verdict::kRandom ||
              online.verdict == core::Verdict::kInconclusive);

  // The telemetry record serialises the degradation flag.
  const std::string json = rep.robustness.to_json();
  EXPECT_NE(json.find("\"degraded_to_baseline\":true"), std::string::npos)
      << json;
}

TEST(RetryPolicy, CleanRunIsUntouchedByTheGuards) {
  // With no injected faults the robust path must reproduce the plain run:
  // one attempt, no divergences, and health checks that never fire.
  core::ExperimentConfig config;
  config.target = "gimli-hash";
  config.rounds = 2;
  config.epochs = 1;
  config.seed = 77;
  config.threads = 1;
  const auto target = config.make_target();
  core::MLDistinguisher dist(*target, config);
  const core::TrainReport rep = dist.train(*target, 300);
  EXPECT_EQ(rep.robustness.attempts, 1);
  EXPECT_EQ(rep.robustness.divergences, 0);
  EXPECT_FALSE(rep.robustness.degraded_to_baseline);
  EXPECT_FALSE(dist.degraded());
}

}  // namespace
