// Parameterized property suites: the same invariant checked across a sweep
// of configurations (round windows, message shapes, targets).
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "ciphers/gimli.hpp"
#include "ciphers/gimli_aead.hpp"
#include "ciphers/gimli_hash.hpp"
#include "ciphers/speck3264.hpp"
#include "core/dataset.hpp"
#include "core/targets.hpp"
#include "util/rng.hpp"

namespace {

using namespace mldist;
using ciphers::GimliState;
using mldist::util::Xoshiro256;

// ---------------------------------------------------------------------------
// Gimli round windows: inverse composes to the identity for EVERY window.
// ---------------------------------------------------------------------------

class GimliWindowP : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(GimliWindowP, InverseRoundTrips) {
  const auto [hi, lo] = GetParam();
  Xoshiro256 rng(static_cast<std::uint64_t>(hi * 100 + lo));
  for (int trial = 0; trial < 10; ++trial) {
    GimliState s;
    for (auto& w : s) w = rng.next_u32();
    const GimliState orig = s;
    ciphers::gimli_rounds(s, hi, lo);
    ciphers::gimli_rounds_inverse(s, hi, lo);
    EXPECT_EQ(s, orig);
  }
}

TEST_P(GimliWindowP, PermutesInjectively) {
  const auto [hi, lo] = GetParam();
  Xoshiro256 rng(static_cast<std::uint64_t>(hi * 7 + lo));
  GimliState a;
  for (auto& w : a) w = rng.next_u32();
  GimliState b = a;
  b[5] ^= 0x40u;
  ciphers::gimli_rounds(a, hi, lo);
  ciphers::gimli_rounds(b, hi, lo);
  EXPECT_NE(a, b);
}

INSTANTIATE_TEST_SUITE_P(
    AllWindows, GimliWindowP,
    ::testing::Values(std::pair{1, 1}, std::pair{2, 1}, std::pair{4, 1},
                      std::pair{8, 1}, std::pair{24, 1}, std::pair{24, 17},
                      std::pair{16, 9}, std::pair{13, 2}, std::pair{4, 4},
                      std::pair{23, 20}));

// ---------------------------------------------------------------------------
// Gimli-Hash: fixed digest shape and collision-freedom across lengths.
// ---------------------------------------------------------------------------

class GimliHashLengthP : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GimliHashLengthP, DigestShapeAndDeterminism) {
  const std::size_t len = GetParam();
  Xoshiro256 rng(len + 1);
  const auto msg = rng.bytes(len);
  const auto d1 = ciphers::gimli_hash(msg);
  const auto d2 = ciphers::gimli_hash(msg);
  EXPECT_EQ(d1.size(), 32u);
  EXPECT_EQ(d1, d2);
}

TEST_P(GimliHashLengthP, SingleBitFlipChangesDigest) {
  const std::size_t len = GetParam();
  if (len == 0) GTEST_SKIP();
  Xoshiro256 rng(len + 2);
  auto msg = rng.bytes(len);
  const auto d1 = ciphers::gimli_hash(msg);
  msg[len / 2] ^= 0x01;
  EXPECT_NE(ciphers::gimli_hash(msg), d1);
}

INSTANTIATE_TEST_SUITE_P(Lengths, GimliHashLengthP,
                         ::testing::Values(0u, 1u, 7u, 15u, 16u, 17u, 31u,
                                           32u, 33u, 64u, 127u, 128u, 1000u));

// ---------------------------------------------------------------------------
// Gimli-Cipher AEAD: round trip + tamper rejection across message/AD shapes.
// ---------------------------------------------------------------------------

class AeadShapeP
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(AeadShapeP, RoundTripAndTamperRejection) {
  const auto [mlen, adlen] = GetParam();
  Xoshiro256 rng(mlen * 131 + adlen);
  std::array<std::uint8_t, ciphers::kGimliAeadKeyBytes> key;
  rng.fill_bytes(key.data(), key.size());
  std::array<std::uint8_t, ciphers::kGimliAeadNonceBytes> nonce;
  rng.fill_bytes(nonce.data(), nonce.size());
  const auto ad = rng.bytes(adlen);
  const auto msg = rng.bytes(mlen);

  const auto key_span =
      std::span<const std::uint8_t, ciphers::kGimliAeadKeyBytes>(key);
  const auto nonce_span =
      std::span<const std::uint8_t, ciphers::kGimliAeadNonceBytes>(nonce);

  auto enc = ciphers::gimli_aead_encrypt(key_span, nonce_span, ad, msg);
  const auto dec = ciphers::gimli_aead_decrypt(key_span, nonce_span, ad,
                                               enc.ciphertext, enc.tag);
  ASSERT_TRUE(dec.ok);
  EXPECT_EQ(dec.plaintext, msg);

  if (mlen > 0) {
    enc.ciphertext[mlen / 2] ^= 0x01;
    EXPECT_FALSE(ciphers::gimli_aead_decrypt(key_span, nonce_span, ad,
                                             enc.ciphertext, enc.tag)
                     .ok);
    enc.ciphertext[mlen / 2] ^= 0x01;
  }
  enc.tag[7] ^= 0x10;
  EXPECT_FALSE(ciphers::gimli_aead_decrypt(key_span, nonce_span, ad,
                                           enc.ciphertext, enc.tag)
                   .ok);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AeadShapeP,
    ::testing::Combine(::testing::Values(0u, 1u, 15u, 16u, 17u, 48u),
                       ::testing::Values(0u, 1u, 15u, 16u, 32u)));

// ---------------------------------------------------------------------------
// SPECK: encrypt/decrypt inversion at every round count.
// ---------------------------------------------------------------------------

class SpeckRoundsP : public ::testing::TestWithParam<int> {};

TEST_P(SpeckRoundsP, RoundTripsForRandomKeys) {
  const int rounds = GetParam();
  Xoshiro256 rng(static_cast<std::uint64_t>(rounds) + 77);
  for (int trial = 0; trial < 20; ++trial) {
    const std::array<std::uint16_t, 4> key = {
        static_cast<std::uint16_t>(rng.next_u32()),
        static_cast<std::uint16_t>(rng.next_u32()),
        static_cast<std::uint16_t>(rng.next_u32()),
        static_cast<std::uint16_t>(rng.next_u32())};
    const ciphers::Speck3264 cipher(key);
    const auto p = ciphers::SpeckBlock::from_u32(rng.next_u32());
    EXPECT_EQ(cipher.decrypt(cipher.encrypt(p, rounds), rounds), p);
  }
}

INSTANTIATE_TEST_SUITE_P(Rounds, SpeckRoundsP,
                         ::testing::Range(0, 23));

// ---------------------------------------------------------------------------
// Every Target type: sampled differences have the declared shape, nonzero
// content, and the dataset builder labels them correctly.
// ---------------------------------------------------------------------------

using TargetFactory = std::unique_ptr<core::Target> (*)();

class TargetContractP : public ::testing::TestWithParam<TargetFactory> {};

TEST_P(TargetContractP, SamplesHaveDeclaredShape) {
  const auto target = GetParam()();
  Xoshiro256 rng(3);
  std::vector<std::vector<std::uint8_t>> diffs;
  for (int trial = 0; trial < 5; ++trial) {
    target->sample(rng, diffs);
    ASSERT_EQ(diffs.size(), target->num_differences());
    for (const auto& d : diffs) EXPECT_EQ(d.size(), target->output_bytes());
  }
}

TEST_P(TargetContractP, DatasetLabelsCycleThroughClasses) {
  const auto target = GetParam()();
  Xoshiro256 rng(4);
  const auto ds = core::collect_dataset(*target, 6, rng);
  const std::size_t t = target->num_differences();
  ASSERT_EQ(ds.size(), 6 * t);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(ds.y[i], static_cast<int>(i % t));
  }
  for (std::size_t i = 0; i < ds.x.size(); ++i) {
    EXPECT_TRUE(ds.x.data()[i] == 0.0f || ds.x.data()[i] == 1.0f);
  }
}

TEST_P(TargetContractP, SamplingIsDeterministicPerSeed) {
  const auto t1 = GetParam()();
  const auto t2 = GetParam()();
  Xoshiro256 r1(9);
  Xoshiro256 r2(9);
  std::vector<std::vector<std::uint8_t>> d1;
  std::vector<std::vector<std::uint8_t>> d2;
  t1->sample(r1, d1);
  t2->sample(r2, d2);
  EXPECT_EQ(d1, d2);
}

TEST_P(TargetContractP, HasNonEmptyName) {
  EXPECT_FALSE(GetParam()()->name().empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllTargets, TargetContractP,
    ::testing::Values(
        +[]() -> std::unique_ptr<core::Target> {
          return std::make_unique<core::GimliHashTarget>(6);
        },
        +[]() -> std::unique_ptr<core::Target> {
          return std::make_unique<core::GimliCipherTarget>(6);
        },
        +[]() -> std::unique_ptr<core::Target> {
          return std::make_unique<core::GimliCipherTarget>(6,
                                                           std::vector<std::size_t>{4, 12},
                                                           /*split_rounds=*/true);
        },
        +[]() -> std::unique_ptr<core::Target> {
          return std::make_unique<core::SpeckTarget>(5);
        },
        +[]() -> std::unique_ptr<core::Target> {
          return std::make_unique<core::Gift64Target>(4);
        },
        +[]() -> std::unique_ptr<core::Target> {
          return std::make_unique<core::SalsaTarget>(4);
        },
        +[]() -> std::unique_ptr<core::Target> {
          return std::make_unique<core::TriviumTarget>(288);
        }));

}  // namespace
