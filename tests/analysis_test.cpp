#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>

#include "analysis/allinone.hpp"
#include "analysis/ddt.hpp"
#include "analysis/markov.hpp"
#include "analysis/toy_gift.hpp"
#include "analysis/trail_weights.hpp"
#include "ciphers/gift64.hpp"
#include "ciphers/gift_toy.hpp"
#include "ciphers/speck3264.hpp"

namespace {

using namespace mldist::analysis;
using namespace mldist::ciphers;
using mldist::util::Xoshiro256;

// ---------------------------------------------------------------------------
// Markov machinery
// ---------------------------------------------------------------------------

TEST(Markov, CharacteristicProductRule) {
  const Ddt4 ddt{std::span<const std::uint8_t, 16>(kGiftSbox)};
  // (2 -> 5) p=2^-2, (3 -> 8) p=2^-3: product 2^-5, weight 5.
  const std::vector<SboxTransition> t = {{0x2, 0x5}, {0x3, 0x8}};
  EXPECT_DOUBLE_EQ(markov_characteristic_probability(ddt, t),
                   std::pow(2.0, -5));
  EXPECT_DOUBLE_EQ(markov_characteristic_weight(ddt, t), 5.0);
}

TEST(Markov, ImpossibleTransitionGivesZero) {
  const Ddt4 ddt{std::span<const std::uint8_t, 16>(kGiftSbox)};
  // Find an impossible transition from the DDT (some entry is 0).
  bool found = false;
  for (int dout = 1; dout < 16 && !found; ++dout) {
    if (ddt.count(0x1, static_cast<std::uint8_t>(dout)) == 0) {
      const std::vector<SboxTransition> t = {
          {0x1, static_cast<std::uint8_t>(dout)}};
      EXPECT_DOUBLE_EQ(markov_characteristic_probability(ddt, t), 0.0);
      EXPECT_TRUE(std::isinf(markov_characteristic_weight(ddt, t)));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Markov, DependenceProbeUnkeyedToyShowsSpread) {
  // For the unkeyed toy cipher, P(dY = beta | X = gamma) is 0 for most
  // gamma and 1 for the surviving ones: maximal spread, the non-Markov
  // signature of §2.1.
  const ToyCharacteristic ch = paper_toy_characteristic();
  const MarkovProbe probe = markov_dependence_probe(
      [](std::uint32_t x) {
        return static_cast<std::uint32_t>(
            toy_cipher(static_cast<std::uint8_t>(x)));
      },
      8, ch.dy1, ch.dw2);
  EXPECT_DOUBLE_EQ(probe.min_prob, 0.0);
  EXPECT_DOUBLE_EQ(probe.max_prob, 1.0);
  // The mean over gamma is the DIFFERENTIAL probability dY1 -> dW2 (all
  // intermediate paths), here 8/256 = 2^-5; it upper-bounds the single
  // characteristic's 2^-6.
  EXPECT_NEAR(probe.mean_prob, std::pow(2.0, -5), 1e-12);
  EXPECT_GE(probe.mean_prob, std::pow(2.0, -6));
}

// ---------------------------------------------------------------------------
// The §2.1 toy example: every number of the paper, exactly
// ---------------------------------------------------------------------------

TEST(ToyExample, TrueProbabilityIsTwoToMinusSix) {
  const ToyVerification v = verify_toy_example(paper_toy_characteristic());
  EXPECT_EQ(v.follow_full, 4);
  EXPECT_DOUBLE_EQ(v.true_probability, std::pow(2.0, -6));
}

TEST(ToyExample, MarkovRulePredictsTwoToMinusNine) {
  const ToyVerification v = verify_toy_example(paper_toy_characteristic());
  EXPECT_DOUBLE_EQ(v.markov_probability, std::pow(2.0, -9));
}

TEST(ToyExample, Round1ProbabilityIsTwoToMinusFive) {
  const ToyVerification v = verify_toy_example(paper_toy_characteristic());
  EXPECT_EQ(v.follow_round1, 8);  // 8/256 = 2^-5
}

TEST(ToyExample, SurvivingInputsMatchPaperList) {
  // "(Y1[0], Y1[1]) = (0,d), (0,e), (2,d) and (2,e)".
  const ToyVerification v = verify_toy_example(paper_toy_characteristic());
  const std::vector<std::uint8_t> expected = {
      toy_pack(0x0, 0xd), toy_pack(0x2, 0xd),
      toy_pack(0x0, 0xe), toy_pack(0x2, 0xe)};
  ASSERT_EQ(v.surviving_inputs.size(), 4u);
  for (std::uint8_t in : expected) {
    EXPECT_NE(std::find(v.surviving_inputs.begin(), v.surviving_inputs.end(),
                        in),
              v.surviving_inputs.end())
        << "missing input " << int(in);
  }
}

TEST(ToyExample, WrongCharacteristicHasDifferentStats) {
  ToyCharacteristic ch = paper_toy_characteristic();
  ch.dw2 ^= 0x11;  // ask for a different output difference
  const ToyVerification v = verify_toy_example(ch);
  EXPECT_NE(v.follow_full, 4);
}

// ---------------------------------------------------------------------------
// All-in-one sampled distributions
// ---------------------------------------------------------------------------

TEST(AllInOne, HistogramBasics) {
  DiffHistogram h;
  h.add(5);
  h.add(5);
  h.add(7);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.count(5), 2u);
  EXPECT_EQ(h.count(42), 0u);
  EXPECT_EQ(h.support_size(), 2u);
  EXPECT_EQ(h.mode().diff, 5u);
  EXPECT_NEAR(h.mode().probability, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(h.best_weight(), -std::log2(2.0 / 3.0), 1e-12);
}

std::uint32_t speck4_pair_diff(Xoshiro256& rng) {
  const std::array<std::uint16_t, 4> key = {
      static_cast<std::uint16_t>(rng.next_u32()),
      static_cast<std::uint16_t>(rng.next_u32()),
      static_cast<std::uint16_t>(rng.next_u32()),
      static_cast<std::uint16_t>(rng.next_u32())};
  const Speck3264 cipher(key);
  const std::uint32_t p = rng.next_u32();
  return cipher.encrypt(SpeckBlock::from_u32(p), 4).as_u32() ^
         cipher.encrypt(SpeckBlock::from_u32(p ^ 0x00400000u), 4).as_u32();
}

TEST(AllInOne, SpeckFourRoundsIsFarFromUniform) {
  Xoshiro256 rng(1);
  const DiffHistogram h = sample_diff_distribution(speck4_pair_diff, 4000, rng);
  // Under uniformity the mode of 4000 draws from 2^32 values is ~1.
  EXPECT_GT(h.mode().count, 15u);
  EXPECT_LT(h.best_weight(), 9.0);
}

TEST(AllInOne, DistinguisherBeatsCoinFlipOnSpeck4) {
  Xoshiro256 rng(2);
  const DiffHistogram train = sample_diff_distribution(speck4_pair_diff, 8000, rng);
  const AllInOneResult res =
      allinone_distinguisher(train, speck4_pair_diff, 32, 2000, rng);
  EXPECT_GT(res.accuracy, 0.55);
  EXPECT_LT(res.random_hit, 0.2);
}

TEST(AllInOne, UniformOracleScoresNearHalf) {
  Xoshiro256 rng(3);
  // "Cipher" that is actually uniform: accuracy must collapse to ~0.5.
  const auto uniform_pair = [](Xoshiro256& r) { return r.next_u32(); };
  const DiffHistogram train = sample_diff_distribution(uniform_pair, 4000, rng);
  const AllInOneResult res =
      allinone_distinguisher(train, uniform_pair, 32, 2000, rng);
  EXPECT_NEAR(res.accuracy, 0.5, 0.05);
}

// ---------------------------------------------------------------------------
// Trail weights
// ---------------------------------------------------------------------------

TEST(TrailWeights, Table1Constants) {
  ASSERT_EQ(kGimliOptimalTrailWeights.size(), 8u);
  EXPECT_EQ(kGimliOptimalTrailWeights[0], 0);
  EXPECT_EQ(kGimliOptimalTrailWeights[1], 0);
  EXPECT_EQ(kGimliOptimalTrailWeights[2], 2);
  EXPECT_EQ(kGimliOptimalTrailWeights[7], 52);
}

TEST(TrailWeights, RoundOneHasDeterministicSingleBitTrail) {
  // Weight 0 at 1 round: some single-bit difference propagates with
  // probability 1.  The MSB of the z-word is such a bit (shifted out by
  // every nonlinear term).
  Xoshiro256 rng(4);
  GimliState diff{};
  diff[8] = 0x80000000u;  // column 0, z word, MSB
  const WeightEstimate e = estimate_best_weight(diff, 1, 256, rng);
  EXPECT_TRUE(e.deterministic);
  EXPECT_DOUBLE_EQ(e.weight, 0.0);
}

TEST(TrailWeights, WeightGrowsWithRounds) {
  Xoshiro256 rng(5);
  GimliState diff{};
  diff[8] = 0x80000000u;
  const WeightEstimate e2 = estimate_best_weight(diff, 2, 2048, rng);
  const WeightEstimate e4 = estimate_best_weight(diff, 4, 2048, rng);
  EXPECT_LE(e2.weight, e4.weight);
}

TEST(TrailWeights, EstimateIsBoundedBySampleBudget) {
  Xoshiro256 rng(6);
  GimliState diff{};
  diff[0] = 1;
  const WeightEstimate e = estimate_best_weight(diff, 8, 512, rng);
  EXPECT_LE(e.weight, std::log2(512.0) + 1e-9);
}

}  // namespace
