// Campaign subsystem tests (ISSUE 7, -L fault): append_jsonl multi-process
// atomicity, grid expansion determinism, the 0x1f wire codecs, WAL replay,
// sharded-vs-serial bitwise payload equality, chaos SIGKILL recovery, the
// heartbeat watchdog, diverged-cell graceful degradation, supervisor
// resume, checkpoint GC and the /runz detail provider.
//
// This binary doubles as its own campaign worker: main() calls
// campaign::worker_entry first, exactly like mldist_cli, so the Supervisor
// can exec copies of the test executable.
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "campaign/journal.hpp"
#include "campaign/spec.hpp"
#include "campaign/supervisor.hpp"
#include "campaign/worker.hpp"
#include "core/checkpoint.hpp"
#include "core/experiment.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_merge.hpp"
#include "util/json.hpp"
#include "util/process.hpp"
#include "util/rng.hpp"

namespace {

using namespace mldist;

// --- helpers ---------------------------------------------------------------

/// Fresh private directory under the system temp dir; removed on scope exit.
class TempDir {
 public:
  explicit TempDir(const char* tag) {
    static int counter = 0;
    path_ = (std::filesystem::temp_directory_path() /
             ("mldist-campaign-" + std::to_string(::getpid()) + "-" +
              std::to_string(counter++) + "-" + tag))
                .string();
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// setenv on construction, unsetenv on destruction — chaos knobs must never
/// leak into the next test (or into a serial reference run).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    ::setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }

 private:
  const char* name_;
};

/// A grid of `cells` toy-target cells sized for sub-second training.
campaign::CampaignSpec tiny_spec(int cells) {
  campaign::CampaignSpec spec;
  spec.name = "test-campaign";
  spec.targets = {"toy"};
  spec.archs = {"default-mlp"};
  spec.rounds.clear();
  for (int r = 1; r <= cells; ++r) spec.rounds.push_back(r);
  spec.base.epochs = 2;
  spec.base.batch_size = 64;
  spec.base.threads = 1;
  spec.base.offline_base_inputs = 300;
  spec.base.online_base_inputs = 150;
  spec.base.max_retries = 1;
  spec.seed = 0xc0ffee;
  return spec;
}

campaign::SupervisorOptions options_for(const TempDir& dir,
                                        std::size_t workers) {
  campaign::SupervisorOptions opt;
  opt.state_dir = dir.path();
  opt.workers = workers;
  opt.backoff_base_s = 0.02;  // fast retries: these are tests
  opt.backoff_cap_s = 0.1;
  opt.poll_interval_s = 0.01;
  return opt;
}

/// history.jsonl as {cell id -> verbatim payload object bytes}.
std::map<std::string, std::string> read_history(const std::string& state_dir) {
  std::map<std::string, std::string> out;
  std::ifstream in(state_dir + "/history.jsonl");
  std::string line;
  while (in && std::getline(in, line)) {
    std::string id;
    std::string payload;
    if (campaign::extract_json_string(line, "cell", id) &&
        campaign::extract_json_object(line, "payload", payload)) {
      out[id] = payload;
    }
  }
  return out;
}

std::size_t count_lines(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  std::size_t n = 0;
  while (in && std::getline(in, line)) ++n;
  return n;
}

/// Uninterrupted single-process reference run: the bitwise ground truth the
/// sharded and chaos campaigns are compared against.
std::map<std::string, std::string> serial_reference(
    const campaign::CampaignSpec& spec, const TempDir& dir) {
  campaign::Supervisor sup(spec, options_for(dir, /*workers=*/0));
  const campaign::CampaignReport rep = sup.run();
  EXPECT_TRUE(rep.complete());
  EXPECT_EQ(rep.cells_failed, 0u);
  return read_history(dir.path());
}

// --- util::append_jsonl under multi-process concurrency --------------------

TEST(AppendJsonl, MultiProcessStressKeepsLinesWhole) {
  TempDir dir("jsonl");
  const std::string path = dir.path() + "/stress.jsonl";
  constexpr int kWriters = 4;
  constexpr int kLines = 200;
  // Payload long enough that a torn write(2) would interleave visibly.
  const std::string pad(128, 'x');

  std::vector<pid_t> children;
  for (int w = 0; w < kWriters; ++w) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: nothing but open/write/close syscalls — fork-safe.
      for (int n = 0; n < kLines; ++n) {
        util::JsonBuilder j;
        j.field("w", static_cast<std::uint64_t>(w))
            .field("n", static_cast<std::uint64_t>(n))
            .field("pad", pad);
        if (!util::append_jsonl(path, j.str())) ::_exit(2);
      }
      ::_exit(0);
    }
    children.push_back(pid);
  }
  for (const pid_t pid : children) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  }

  // Every line must be whole (valid JSON, full pad) and every (w, n) pair
  // must appear exactly once — no torn or interleaved records.
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
  std::string line;
  while (std::getline(in, line)) {
    std::string err;
    ASSERT_TRUE(util::json_validate(line, &err)) << err << "\n" << line;
    std::uint64_t w = 0;
    std::uint64_t n = 0;
    std::string got_pad;
    ASSERT_TRUE(campaign::extract_json_u64(line, "w", w));
    ASSERT_TRUE(campaign::extract_json_u64(line, "n", n));
    ASSERT_TRUE(campaign::extract_json_string(line, "pad", got_pad));
    ASSERT_EQ(got_pad, pad);
    ASSERT_TRUE(seen.emplace(w, n).second) << "duplicate " << w << "," << n;
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kWriters) * kLines);
}

// --- grid expansion --------------------------------------------------------

TEST(CampaignSpec, GridExpansionIsDeterministic) {
  campaign::CampaignSpec spec = tiny_spec(3);
  spec.targets = {"toy", "speck"};
  const std::vector<campaign::Cell> a = campaign::expand_grid(spec);
  const std::vector<campaign::Cell> b = campaign::expand_grid(spec);
  ASSERT_EQ(a.size(), 6u);
  ASSERT_EQ(a.size(), b.size());
  std::set<std::string> ids;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].index, i);
    EXPECT_EQ(a[i].id, b[i].id);
    // The cell's stream is derived from (campaign seed, cell index) — never
    // from whichever worker happens to run it.
    EXPECT_EQ(a[i].config.seed, util::derive_stream_seed(spec.seed, i));
    ids.insert(a[i].id);
  }
  EXPECT_EQ(ids.size(), a.size()) << "cell ids must be unique across the grid";
}

TEST(CampaignSpec, CellIdIgnoresCheckpointPath) {
  core::ExperimentConfig config;
  const std::string bare = campaign::cell_id(config);
  config.checkpoint_path = "/somewhere/else/state.ckpt";
  EXPECT_EQ(campaign::cell_id(config), bare);
  config.rounds += 1;
  EXPECT_NE(campaign::cell_id(config), bare);
}

// --- wire codecs -----------------------------------------------------------

TEST(CampaignCodec, ConfigRoundTripsBitwise) {
  core::ExperimentConfig c;
  c.target = "gimli-hash";
  c.rounds = 9;
  c.arch = "MLP II";
  c.epochs = 7;
  c.batch_size = 96;
  c.learning_rate = 1e-3f;
  c.validation_fraction = 0.1;  // not exactly representable: the hex-float
  c.z_threshold = std::nextafter(3.0, 4.0);  // codec must not round it
  c.seed = 0xdeadbeefcafef00dULL;
  c.threads = 3;
  c.offline_base_inputs = 4321;
  c.online_base_inputs = 1234;
  c.games = 5;
  c.max_retries = 2;
  c.lr_backoff = 0.3f;
  c.checkpoint_path = "/tmp/cell.ckpt";

  const std::string wire = campaign::encode_config(c);
  core::ExperimentConfig d;
  ASSERT_TRUE(campaign::decode_config(wire, d));
  EXPECT_EQ(d.target, c.target);
  EXPECT_EQ(d.rounds, c.rounds);
  EXPECT_EQ(d.arch, c.arch);
  EXPECT_EQ(d.epochs, c.epochs);
  EXPECT_EQ(d.batch_size, c.batch_size);
  EXPECT_EQ(d.learning_rate, c.learning_rate);
  EXPECT_EQ(d.validation_fraction, c.validation_fraction);
  EXPECT_EQ(d.z_threshold, c.z_threshold);
  EXPECT_EQ(d.seed, c.seed);
  EXPECT_EQ(d.threads, c.threads);
  EXPECT_EQ(d.offline_base_inputs, c.offline_base_inputs);
  EXPECT_EQ(d.online_base_inputs, c.online_base_inputs);
  EXPECT_EQ(d.games, c.games);
  EXPECT_EQ(d.max_retries, c.max_retries);
  EXPECT_EQ(d.lr_backoff, c.lr_backoff);
  EXPECT_EQ(d.checkpoint_path, c.checkpoint_path);
  // Bitwise stability: re-encoding the decoded config is a fixed point.
  EXPECT_EQ(campaign::encode_config(d), wire);

  EXPECT_FALSE(campaign::decode_config("", d));
  EXPECT_FALSE(campaign::decode_config("toy\x1f" "2", d));
}

TEST(CampaignCodec, TrainResultRoundTripsBitwise) {
  campaign::CellTrainResult r;
  r.report.train_accuracy = 0.987654321;
  r.report.val_accuracy = std::nextafter(0.75, 1.0);
  r.report.train_loss = 0.0123456789;
  r.report.samples = 12000;
  r.report.log2_data = 13.551;
  r.report.usable = true;
  r.report.robustness.attempts = 2;
  r.report.robustness.divergences = 1;
  r.report.robustness.rollbacks = 1;
  r.t = 2;
  r.best_val = r.report.val_accuracy;

  const std::string wire = campaign::encode_train_result(r);
  campaign::CellTrainResult d;
  ASSERT_TRUE(campaign::decode_train_result(wire, d));
  EXPECT_EQ(d.report.train_accuracy, r.report.train_accuracy);
  EXPECT_EQ(d.report.val_accuracy, r.report.val_accuracy);
  EXPECT_EQ(d.report.train_loss, r.report.train_loss);
  EXPECT_EQ(d.report.samples, r.report.samples);
  EXPECT_EQ(d.report.log2_data, r.report.log2_data);
  EXPECT_EQ(d.report.usable, r.report.usable);
  EXPECT_EQ(d.report.robustness.attempts, r.report.robustness.attempts);
  EXPECT_EQ(d.report.robustness.divergences, r.report.robustness.divergences);
  EXPECT_EQ(d.report.robustness.rollbacks, r.report.robustness.rollbacks);
  EXPECT_EQ(d.t, r.t);
  EXPECT_EQ(d.best_val, r.best_val);
  EXPECT_EQ(campaign::encode_train_result(d), wire);

  EXPECT_FALSE(campaign::decode_train_result("not a record", d));
}

// --- WAL field extraction + replay ----------------------------------------

TEST(CampaignJournal, ExtractsStringsNumbersAndObjects) {
  const std::string line =
      R"({"event":"done","cell":"ab12cd34","index":7,)"
      R"("note":"tab\there é","payload":{"cell":"ab12cd34",)"
      R"("nested":{"s":"a}b{"},"n":3},"telemetry":null})";
  std::string s;
  ASSERT_TRUE(campaign::extract_json_string(line, "event", s));
  EXPECT_EQ(s, "done");
  ASSERT_TRUE(campaign::extract_json_string(line, "note", s));
  EXPECT_EQ(s, "tab\there \xc3\xa9");
  std::uint64_t n = 0;
  ASSERT_TRUE(campaign::extract_json_u64(line, "index", n));
  EXPECT_EQ(n, 7u);
  std::string obj;
  ASSERT_TRUE(campaign::extract_json_object(line, "payload", obj));
  // Verbatim bytes, braces balanced through nested objects and strings
  // containing brace characters.
  EXPECT_EQ(obj,
            R"({"cell":"ab12cd34","nested":{"s":"a}b{"},"n":3})");
  EXPECT_FALSE(campaign::extract_json_string(line, "absent", s));
  EXPECT_FALSE(campaign::extract_json_u64(line, "cell", n));
  EXPECT_FALSE(campaign::extract_json_object(line, "telemetry", obj));
}

TEST(CampaignJournal, ReplayAppliesLaterRecordsOverEarlier) {
  TempDir dir("journal");
  const std::string path = dir.path() + "/campaign.state.jsonl";
  const auto put = [&](const std::string& line) {
    ASSERT_TRUE(util::append_jsonl(path, line));
  };
  put(R"({"event":"start","campaign":"t","cells":3})");
  put(R"({"event":"lease","cell":"aaaa","index":0,"attempt":1,"worker":11})");
  put(R"({"event":"trained","cell":"aaaa","index":0,"train":"rec-a"})");
  put(R"({"event":"failed","cell":"bbbb","index":1,"attempts":4,)"
      R"("reason":"diverged"})");
  put(R"({"event":"done","cell":"cccc","index":2,"payload":{"cell":"cccc"},)"
      R"("telemetry":{"x":1}})");
  // A later "done" supersedes both the trained record and a failed verdict.
  put(R"({"event":"done","cell":"aaaa","index":0,"payload":{"cell":"aaaa"},)"
      R"("telemetry":null})");

  const campaign::JournalState state = campaign::replay_journal(path);
  EXPECT_TRUE(state.saw_start);
  EXPECT_EQ(state.done_payload.size(), 2u);
  EXPECT_EQ(state.done_payload.at("aaaa"), R"({"cell":"aaaa"})");
  EXPECT_EQ(state.done_payload.at("cccc"), R"({"cell":"cccc"})");
  EXPECT_EQ(state.done_telemetry.at("cccc"), R"({"x":1})");
  EXPECT_TRUE(state.trained.empty());
  EXPECT_EQ(state.failed.count("bbbb"), 1u);

  const campaign::JournalState missing =
      campaign::replay_journal(dir.path() + "/nope.jsonl");
  EXPECT_FALSE(missing.saw_start);
  EXPECT_TRUE(missing.done_payload.empty());
}

// --- run_cell determinism + phase-granular resume --------------------------

TEST(CampaignWorker, ResumeFromSnapshotReproducesPayloadBitwise) {
  TempDir dir("resume");
  campaign::CampaignSpec spec = tiny_spec(1);
  const std::vector<campaign::Cell> cells = campaign::expand_grid(spec);
  ASSERT_EQ(cells.size(), 1u);

  campaign::CellHooks full;
  full.snapshot_path = dir.path() + "/cell.model";
  std::string trained_tsv;
  full.on_trained = [&](const campaign::CellTrainResult& r) {
    trained_tsv = campaign::encode_train_result(r);
  };
  const campaign::CellOutcome reference = campaign::run_cell(cells[0], full);
  ASSERT_TRUE(reference.ok) << reference.fail_message;
  ASSERT_FALSE(trained_tsv.empty());
  ASSERT_TRUE(std::filesystem::exists(full.snapshot_path));

  // Resume path: restore the snapshot + adopt the journaled train record,
  // re-run only the online phase.  Payload must be byte-identical.
  campaign::CellHooks resume;
  resume.snapshot_path = full.snapshot_path;
  resume.resume_train_tsv = trained_tsv;
  bool retrained = false;
  resume.on_trained = [&](const campaign::CellTrainResult&) {
    retrained = true;
  };
  const campaign::CellOutcome resumed = campaign::run_cell(cells[0], resume);
  ASSERT_TRUE(resumed.ok) << resumed.fail_message;
  EXPECT_FALSE(retrained) << "resume must skip the offline phase";
  EXPECT_EQ(resumed.payload, reference.payload);

  // Corrupt snapshot: falls back to a full retrain — same payload again.
  {
    std::ofstream out(full.snapshot_path, std::ios::trunc);
    out << "garbage";
  }
  const campaign::CellOutcome refit = campaign::run_cell(cells[0], resume);
  ASSERT_TRUE(refit.ok) << refit.fail_message;
  EXPECT_EQ(refit.payload, reference.payload);
}

// --- supervisor: sharded == serial, bitwise --------------------------------

TEST(CampaignSupervisor, ShardedMatchesSerialBitwise) {
  const campaign::CampaignSpec spec = tiny_spec(3);
  TempDir serial_dir("serial");
  const std::map<std::string, std::string> reference =
      serial_reference(spec, serial_dir);
  ASSERT_EQ(reference.size(), 3u);

  TempDir sharded_dir("sharded");
  campaign::Supervisor sup(spec, options_for(sharded_dir, /*workers=*/2));
  const campaign::CampaignReport rep = sup.run();
  EXPECT_TRUE(rep.complete());
  EXPECT_EQ(rep.cells_done, 3u);
  EXPECT_EQ(rep.cells_failed, 0u);
  EXPECT_FALSE(rep.interrupted);

  EXPECT_EQ(read_history(sharded_dir.path()), reference)
      << "sharded payloads must be bitwise identical to the serial run";
}

// --- supervisor: chaos SIGKILL recovery (the ISSUE 7 acceptance pin) -------

TEST(CampaignSupervisor, SurvivesWorkerSigkillsWithBitwisePayloads) {
  const campaign::CampaignSpec spec = tiny_spec(3);
  TempDir serial_dir("chaos-ref");
  const std::map<std::string, std::string> reference =
      serial_reference(spec, serial_dir);

  TempDir chaos_dir("chaos");
  campaign::CampaignReport rep;
  {
    // Every first attempt of every cell is SIGKILLed mid-train (p=100,
    // max=1); second attempts run clean, so the campaign must recover every
    // cell through the reclaim + retry path.
    ScopedEnv chaos("MLDIST_CHAOS_KILL", "p=100,seed=7,max=1");
    campaign::Supervisor sup(spec, options_for(chaos_dir, /*workers=*/2));
    rep = sup.run();
  }
  EXPECT_TRUE(rep.complete());
  EXPECT_EQ(rep.cells_done, 3u);
  EXPECT_EQ(rep.cells_failed, 0u);
  EXPECT_GE(rep.reclaims, 3u) << "each cell's first lease must be reclaimed";
  EXPECT_GE(rep.retries, 3u);
  EXPECT_GE(rep.worker_restarts, 1u);

  EXPECT_EQ(read_history(chaos_dir.path()), reference)
      << "payloads after SIGKILL recovery must be bitwise identical to an "
         "uninterrupted single-process run";
}

// --- supervisor: watchdog reclaims hung workers ----------------------------

TEST(CampaignSupervisor, WatchdogReclaimsHungWorker) {
  const campaign::CampaignSpec spec = tiny_spec(2);
  TempDir dir("hang");
  campaign::CampaignReport rep;
  {
    // Cell 0's first lease never heartbeats; the watchdog must SIGKILL the
    // worker once the heartbeat goes stale and re-lease the cell.
    ScopedEnv chaos("MLDIST_CHAOS_HANG", "0:1");
    campaign::SupervisorOptions opt = options_for(dir, /*workers=*/2);
    opt.cell_timeout_s = 1.5;
    campaign::Supervisor sup(spec, opt);
    rep = sup.run();
  }
  EXPECT_TRUE(rep.complete());
  EXPECT_EQ(rep.cells_done, 2u);
  EXPECT_EQ(rep.cells_failed, 0u);
  EXPECT_GE(rep.reclaims, 1u);
  EXPECT_GT(rep.reclaim_latency_ns_mean, 0.0);
}

// --- supervisor: diverged cells fail gracefully ----------------------------

TEST(CampaignSupervisor, DivergedCellFailsGracefullyOthersComplete) {
  const campaign::CampaignSpec spec = tiny_spec(3);
  TempDir dir("diverge");
  campaign::SupervisorOptions opt = options_for(dir, /*workers=*/2);
  opt.max_cell_retries = 1;  // 2 attempts, both diverge -> permanent failure
  campaign::CampaignReport rep;
  {
    ScopedEnv chaos("MLDIST_CHAOS_DIVERGE", "1");
    campaign::Supervisor sup(spec, opt);
    rep = sup.run();
  }
  // Graceful degradation: the campaign still completes, with cell 1 as a
  // journaled permanent failure and the other two done.
  EXPECT_TRUE(rep.complete());
  EXPECT_EQ(rep.cells_done, 2u);
  EXPECT_EQ(rep.cells_failed, 1u);
  EXPECT_GE(rep.retries, 1u);
  EXPECT_EQ(read_history(dir.path()).size(), 2u);

  const campaign::JournalState state =
      campaign::replay_journal(dir.path() + "/campaign.state.jsonl");
  EXPECT_EQ(state.failed.size(), 1u);
}

// --- supervisor: resume skips journaled cells ------------------------------

TEST(CampaignSupervisor, ResumeSkipsJournaledCellsWithoutDuplicates) {
  const campaign::CampaignSpec spec = tiny_spec(3);
  TempDir serial_dir("resume-ref");
  const std::map<std::string, std::string> reference =
      serial_reference(spec, serial_dir);

  TempDir dir("resume-run");
  {
    // Simulated supervisor crash after the first finished cell.
    campaign::SupervisorOptions opt = options_for(dir, /*workers=*/0);
    opt.stop_after_cells = 1;
    campaign::Supervisor sup(spec, opt);
    const campaign::CampaignReport first = sup.run();
    EXPECT_TRUE(first.interrupted);
    EXPECT_EQ(first.cells_done, 1u);
  }
  // Relaunch over the same state dir: journaled cells are skipped, the rest
  // run to completion, and history gains no duplicate lines.
  campaign::Supervisor sup(spec, options_for(dir, /*workers=*/2));
  const campaign::CampaignReport second = sup.run();
  EXPECT_TRUE(second.complete());
  EXPECT_FALSE(second.interrupted);
  EXPECT_EQ(second.cells_skipped, 1u);
  EXPECT_EQ(second.cells_done, 2u);
  EXPECT_EQ(second.cells_failed, 0u);

  EXPECT_EQ(count_lines(dir.path() + "/history.jsonl"), 3u);
  EXPECT_EQ(read_history(dir.path()), reference)
      << "a resumed campaign must end with the same payloads as one "
         "uninterrupted run";
}

TEST(CampaignSupervisor, StateDirLockRejectsSecondSupervisor) {
  const campaign::CampaignSpec spec = tiny_spec(1);
  TempDir dir("lock");
  util::FileLock lock;
  ASSERT_TRUE(lock.acquire(dir.path() + "/LOCK"));
  campaign::Supervisor sup(spec, options_for(dir, /*workers=*/0));
  EXPECT_THROW(sup.run(), std::invalid_argument);
}

TEST(CampaignSupervisor, RequiresStateDir) {
  campaign::SupervisorOptions opt;
  opt.state_dir.clear();
  campaign::Supervisor sup(tiny_spec(1), opt);
  EXPECT_THROW(sup.run(), std::invalid_argument);
}

// --- checkpoint GC ---------------------------------------------------------

TEST(CheckpointGc, KeepsNewestRemovesRestAndTmpSiblings) {
  TempDir dir("gc");
  const auto touch = [&](const std::string& name) {
    std::ofstream out(dir.path() + "/" + name);
    out << "x";
  };
  touch("a.model");
  touch("b.model");
  touch("c.model");
  touch("a.model.tmp");
  touch("keep.other");
  // Pin distinct mtimes (fast writes on tmpfs can tie): c is the newest.
  const auto now = std::filesystem::file_time_type::clock::now();
  std::filesystem::last_write_time(dir.path() + "/a.model",
                                   now - std::chrono::seconds(3));
  std::filesystem::last_write_time(dir.path() + "/b.model",
                                   now - std::chrono::seconds(2));
  std::filesystem::last_write_time(dir.path() + "/c.model",
                                   now - std::chrono::seconds(1));
  const std::size_t removed =
      core::CheckpointManager::gc_directory(dir.path(), ".model",
                                            /*keep_newest=*/1);
  EXPECT_EQ(removed, 2u);
  EXPECT_TRUE(std::filesystem::exists(dir.path() + "/c.model"));
  EXPECT_FALSE(std::filesystem::exists(dir.path() + "/a.model"));
  EXPECT_FALSE(std::filesystem::exists(dir.path() + "/b.model"));
  EXPECT_TRUE(std::filesystem::exists(dir.path() + "/keep.other"));
  // The tmp sibling of a *removed* checkpoint goes with it.
  EXPECT_FALSE(std::filesystem::exists(dir.path() + "/a.model.tmp"));
}

// --- telemetry shipping: merged totals are worker-count invariant ----------

/// The merged campaign.worker.* counters, minus the wall-clock names whose
/// values legitimately vary run to run (the DESIGN.md §10 suffix rule).
std::map<std::string, std::uint64_t> merged_worker_counters() {
  std::map<std::string, std::uint64_t> out;
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
  for (const auto& [name, value] : snap.counters) {
    // reset() keeps registered names at value 0; only live totals count.
    if (value == 0 || name.rfind("campaign.worker.", 0) != 0) continue;
    const auto ends_with = [&](const char* s) {
      const std::size_t n = std::char_traits<char>::length(s);
      return name.size() >= n && name.compare(name.size() - n, n, s) == 0;
    };
    if (ends_with("_ns") || ends_with("_us")) continue;
    out[name] = value;
  }
  return out;
}

TEST(CampaignTelemetry, MergedCountersBitwiseIdenticalAcrossWorkerCounts) {
  const campaign::CampaignSpec spec = tiny_spec(3);
  std::map<std::string, std::uint64_t> reference;
  for (const std::size_t workers : {0u, 1u, 2u, 3u}) {
    TempDir dir("obs-invariance");
    obs::MetricsRegistry::global().reset();
    campaign::Supervisor sup(spec, options_for(dir, workers));
    const campaign::CampaignReport rep = sup.run();
    ASSERT_TRUE(rep.complete());
    ASSERT_EQ(rep.cells_failed, 0u);
    const std::map<std::string, std::uint64_t> merged =
        merged_worker_counters();
    ASSERT_FALSE(merged.empty())
        << "no campaign.worker.* counters were merged at workers=" << workers;
    if (workers == 0) {
      reference = merged;  // serial fold through the same ship codec
      continue;
    }
    EXPECT_EQ(merged, reference)
        << "merged worker counters must be bitwise identical for any worker "
           "count (workers="
        << workers << ")";
  }
}

TEST(CampaignTelemetry, ShipTelemetryOffLeavesRegistryClean) {
  const campaign::CampaignSpec spec = tiny_spec(1);
  TempDir dir("obs-off");
  obs::MetricsRegistry::global().reset();
  campaign::SupervisorOptions opt = options_for(dir, /*workers=*/1);
  opt.ship_telemetry = false;
  campaign::Supervisor sup(spec, opt);
  const campaign::CampaignReport rep = sup.run();
  ASSERT_TRUE(rep.complete());
  EXPECT_TRUE(merged_worker_counters().empty())
      << "ship_telemetry=false must not fold any campaign.worker.* counters";
}

// --- worker tracing: chaos-killed lanes still merge into a valid trace -----

TEST(CampaignTelemetry, ChaosKilledWorkersLeaveValidMergedTrace) {
  const campaign::CampaignSpec spec = tiny_spec(3);
  TempDir dir("obs-trace");
  campaign::CampaignReport rep;
  {
    // Every cell's first lease dies mid-train; the chaos path flushes the
    // worker tracer before the SIGKILL, so each killed worker leaves a
    // truncated-but-valid lane behind.
    ScopedEnv chaos("MLDIST_CHAOS_KILL", "p=100,seed=7,max=1");
    campaign::SupervisorOptions opt = options_for(dir, /*workers=*/2);
    opt.trace_workers = true;
    campaign::Supervisor sup(spec, opt);
    rep = sup.run();
  }
  ASSERT_TRUE(rep.complete());
  ASSERT_EQ(rep.cells_failed, 0u);
  ASSERT_GE(rep.worker_restarts, 1u);

  const std::string obs_dir = dir.path() + "/obs";
  EXPECT_GE(obs::list_trace_files(obs_dir).size(), 2u)
      << "each worker process must leave its own trace lane";
  const std::string merged_path = obs_dir + "/campaign.trace.json";
  ASSERT_TRUE(std::filesystem::exists(merged_path))
      << "the supervisor must merge worker lanes after the campaign";
  std::ifstream in(merged_path);
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  std::string error;
  EXPECT_TRUE(util::json_validate(text, &error)) << error;
  EXPECT_NE(text.find("\"process_name\""), std::string::npos)
      << "merged trace must name its per-worker lanes";
  std::uint64_t lanes = 0;
  ASSERT_TRUE(campaign::extract_json_u64(text, "lanes", lanes));
  EXPECT_GE(lanes, 2u)
      << "killed workers' lanes must survive into the merged trace";
}

// --- /runz detail provider -------------------------------------------------

TEST(RunStatusDetail, ProviderRendersAndClears) {
  obs::RunStatus::global().set_detail_provider(
      [] { return std::string(R"({"cells_done":2,"workers":4})"); });
  const std::string with = obs::RunStatus::global().to_json();
  EXPECT_NE(with.find(R"("detail":{"cells_done":2,"workers":4})"),
            std::string::npos)
      << with;
  obs::RunStatus::global().set_detail_provider(nullptr);
  const std::string without = obs::RunStatus::global().to_json();
  EXPECT_EQ(without.find("\"detail\""), std::string::npos) << without;
}

}  // namespace

// The test binary is also the campaign worker binary (the Supervisor execs
// /proc/self/exe): dispatch worker invocations before gtest sees argv.
int main(int argc, char** argv) {
  if (const int worker_rc = mldist::campaign::worker_entry(argc, argv);
      worker_rc >= 0) {
    return worker_rc;
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
