#include <gtest/gtest.h>

#include <cmath>

#include "analysis/arx.hpp"
#include "analysis/speck_trails.hpp"
#include "ciphers/speck3264.hpp"
#include "util/rng.hpp"

namespace {

using namespace mldist::analysis;
using mldist::util::Xoshiro256;

// ---------------------------------------------------------------------------
// Lipmaa–Moriai xdp+
// ---------------------------------------------------------------------------

TEST(XdpAdd, ZeroDifferentialIsCertain) {
  EXPECT_TRUE(xdp_add_valid(0, 0, 0));
  EXPECT_EQ(xdp_add_weight(0, 0, 0), 0);
  EXPECT_DOUBLE_EQ(xdp_add_probability(0, 0, 0), 1.0);
}

TEST(XdpAdd, MsbOnlyIsCertain) {
  // Differences confined to the MSB propagate through addition for free.
  EXPECT_DOUBLE_EQ(xdp_add_probability(0x8000, 0x0000, 0x8000), 1.0);
  EXPECT_DOUBLE_EQ(xdp_add_probability(0x8000, 0x8000, 0x0000), 1.0);
  EXPECT_DOUBLE_EQ(xdp_add_probability(0x0000, 0x8000, 0x8000), 1.0);
}

TEST(XdpAdd, SingleLowBitHalves) {
  // alpha = 1, beta = 0 -> gamma = 1 with probability 1/2 (carry or not).
  EXPECT_DOUBLE_EQ(xdp_add_probability(0x0001, 0x0000, 0x0001), 0.5);
  // ... and gamma = 3 with probability 1/4 etc.
  EXPECT_DOUBLE_EQ(xdp_add_probability(0x0001, 0x0000, 0x0003), 0.25);
}

TEST(XdpAdd, InvalidWhenLsbParityBreaks) {
  // gamma0 must equal alpha0 ^ beta0.
  EXPECT_FALSE(xdp_add_valid(0x0001, 0x0000, 0x0000));
  EXPECT_DOUBLE_EQ(xdp_add_probability(0x0001, 0x0000, 0x0000), 0.0);
}

TEST(XdpAdd, MatchesExhaustiveEnumerationOn8Bits) {
  // Strong property check: the closed form equals brute force on 8-bit
  // words for random differentials.  The LM formula is word-size generic;
  // evaluate it on 8-bit values by embedding (bits above 7 zero) and
  // masking the weight to positions 0..6.
  Xoshiro256 rng(1);
  int nonzero_cases = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const auto a = static_cast<std::uint16_t>(rng.next_u32() & 0xff);
    const auto b = static_cast<std::uint16_t>(rng.next_u32() & 0xff);
    const auto g = static_cast<std::uint16_t>(rng.next_u32() & 0xff);
    const double brute = xdp_add_exhaustive(8, a, b, g);
    // 8-bit closed form: valid iff LM condition restricted to 8 bits.
    const std::uint16_t a1 = static_cast<std::uint16_t>((a << 1) & 0xff);
    const std::uint16_t b1 = static_cast<std::uint16_t>((b << 1) & 0xff);
    const std::uint16_t g1 = static_cast<std::uint16_t>((g << 1) & 0xff);
    const bool valid =
        ((eq16(a1, b1, g1) & static_cast<std::uint16_t>(a ^ b ^ g ^ b1)) &
         0xff) == 0;
    const int weight = __builtin_popcount(
        static_cast<std::uint16_t>(~eq16(a, b, g)) & 0x7f);
    const double closed = valid ? std::pow(2.0, -weight) : 0.0;
    EXPECT_DOUBLE_EQ(brute, closed)
        << std::hex << "a=" << a << " b=" << b << " g=" << g;
    nonzero_cases += (brute > 0);
  }
  EXPECT_GT(nonzero_cases, 5);  // the sample hit some valid differentials
}

TEST(XdpAdd, RowSumsToOneOverGamma) {
  // For fixed (alpha, beta), probabilities over all gamma sum to 1
  // (verified on 6-bit words exhaustively).
  Xoshiro256 rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint32_t a = rng.next_u32() & 0x3f;
    const std::uint32_t b = rng.next_u32() & 0x3f;
    double sum = 0.0;
    for (std::uint32_t g = 0; g < 64; ++g) {
      sum += xdp_add_exhaustive(6, a, b, g);
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

// ---------------------------------------------------------------------------
// SPECK optimal characteristics
// ---------------------------------------------------------------------------

TEST(SpeckTrails, GohrPrefixRoundOneIsFree) {
  // (0x0040, 0) propagates deterministically for one round (the reason
  // Gohr chose it).
  const SpeckTrail t = speck_best_characteristic(0x0040, 0x0000, 1, 8);
  ASSERT_TRUE(t.found);
  EXPECT_EQ(t.total_weight, 0);
  EXPECT_EQ(t.states[1].first, 0x8000);
  EXPECT_EQ(t.states[1].second, 0x8000);
}

TEST(SpeckTrails, WeightsGrowMonotonically) {
  int prev = -1;
  for (int r = 1; r <= 4; ++r) {
    const SpeckTrail t = speck_best_characteristic(0x0040, 0x0000, r, 16);
    ASSERT_TRUE(t.found) << r;
    EXPECT_GE(t.total_weight, prev);
    prev = t.total_weight;
  }
}

TEST(SpeckTrails, TrailStatesChainCorrectly) {
  // Each round's transition must itself be LM-valid with the recorded
  // weight.
  const SpeckTrail t = speck_best_characteristic(0x0040, 0x0000, 4, 16);
  ASSERT_TRUE(t.found);
  ASSERT_EQ(t.states.size(), 5u);
  ASSERT_EQ(t.round_weights.size(), 4u);
  int total = 0;
  for (std::size_t r = 0; r < 4; ++r) {
    const auto [dx, dy] = t.states[r];
    const auto [ndx, ndy] = t.states[r + 1];
    const std::uint16_t alpha =
        static_cast<std::uint16_t>((dx >> 7) | (dx << 9));
    EXPECT_TRUE(xdp_add_valid(alpha, dy, ndx));
    EXPECT_EQ(xdp_add_weight(alpha, dy, ndx), t.round_weights[r]);
    EXPECT_EQ(ndy, static_cast<std::uint16_t>(
                       ((dy << 2) | (dy >> 14)) ^ ndx) & 0xffff);
    total += t.round_weights[r];
  }
  EXPECT_EQ(total, t.total_weight);
}

TEST(SpeckTrails, EmpiricalProbabilityMatchesWeight) {
  // The Markov product rule HOLDS for SPECK (keyed rounds): measured
  // characteristic probability ~ 2^-weight.
  const SpeckTrail t = speck_best_characteristic(0x0040, 0x0000, 3, 12);
  ASSERT_TRUE(t.found);
  ASSERT_LE(t.total_weight, 8);
  const double p = speck_characteristic_empirical(t, 200000, 42);
  const double expected = std::pow(2.0, -t.total_weight);
  EXPECT_NEAR(p, expected, 0.35 * expected);
}

TEST(SpeckTrails, RespectsWeightBound) {
  const SpeckTrail t = speck_best_characteristic(0x0040, 0x0000, 6, 2);
  EXPECT_FALSE(t.found);  // 6 rounds cannot be done in weight 2
}

TEST(SpeckTrails, ConsistentWithSampledDifferential) {
  // Characteristic weight upper-bounds nothing and lower-bounds the
  // differential: 2^-w(char) <= DP(differential).  The 4-round sampled
  // best differential weight was ~7 (see bench); the best characteristic
  // must be within a couple of bits of it.
  const SpeckTrail t = speck_best_characteristic(0x0040, 0x0000, 4, 16);
  ASSERT_TRUE(t.found);
  EXPECT_GE(t.total_weight, 5);
  EXPECT_LE(t.total_weight, 10);
}

}  // namespace
