// Tests for the extension layers (BatchNorm, Dropout, Residual) and the
// Gohr-style residual network builder, including gradient checks.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/arch_zoo.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/dense.hpp"
#include "nn/dropout.hpp"
#include "nn/loss.hpp"
#include "nn/model.hpp"
#include "nn/optimizer.hpp"
#include "nn/residual.hpp"
#include "util/rng.hpp"

namespace {

using namespace mldist::nn;
using mldist::util::Xoshiro256;

Mat random_input(std::size_t rows, std::size_t cols, Xoshiro256& rng) {
  Mat x(rows, cols);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x.data()[i] = static_cast<float>(rng.next_gaussian());
  }
  return x;
}

// ---------------------------------------------------------------------------
// BatchNorm
// ---------------------------------------------------------------------------

TEST(BatchNorm, NormalisesTrainingBatch) {
  Xoshiro256 rng(1);
  BatchNorm bn(4);
  Mat x = random_input(64, 4, rng);
  // Shift/scale the raw input so normalisation has something to do.
  for (std::size_t n = 0; n < x.rows(); ++n) {
    for (std::size_t j = 0; j < 4; ++j) x.at(n, j) = x.at(n, j) * 3.0f + 10.0f;
  }
  const Mat y = bn.forward(x, /*training=*/true);
  for (std::size_t j = 0; j < 4; ++j) {
    double mean = 0.0;
    double var = 0.0;
    for (std::size_t n = 0; n < y.rows(); ++n) mean += y.at(n, j);
    mean /= static_cast<double>(y.rows());
    for (std::size_t n = 0; n < y.rows(); ++n) {
      var += (y.at(n, j) - mean) * (y.at(n, j) - mean);
    }
    var /= static_cast<double>(y.rows());
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm, EvalUsesRunningStats) {
  Xoshiro256 rng(2);
  BatchNorm bn(3);
  // Run several training batches to populate the running stats.
  for (int i = 0; i < 50; ++i) {
    Mat x = random_input(32, 3, rng);
    for (std::size_t k = 0; k < x.size(); ++k) x.data()[k] += 5.0f;
    (void)bn.forward(x, true);
  }
  EXPECT_NEAR(bn.running_mean()[0], 5.0f, 0.5f);
  // A constant eval input maps deterministically via running stats.
  Mat probe(1, 3);
  probe.fill(5.0f);
  const Mat y1 = bn.forward(probe, false);
  const Mat y2 = bn.forward(probe, false);
  for (std::size_t i = 0; i < y1.size(); ++i) {
    EXPECT_FLOAT_EQ(y1.data()[i], y2.data()[i]);
    EXPECT_NEAR(y1.data()[i], 0.0f, 0.6f);  // input at the running mean
  }
}

TEST(BatchNorm, GradCheck) {
  Xoshiro256 rng(3);
  Sequential model;
  model.add(std::make_unique<Dense>(5, 6, rng));
  model.add(std::make_unique<BatchNorm>(6));
  model.add(std::make_unique<Tanh>());
  model.add(std::make_unique<Dense>(6, 2, rng));
  const Mat x = random_input(8, 5, rng);
  std::vector<int> y(8);
  for (auto& v : y) v = static_cast<int>(rng.next_below(2));

  // Analytic pass (training mode throughout — BatchNorm's batch statistics
  // are part of the differentiated function).
  for (auto& p : model.params()) {
    for (std::size_t i = 0; i < p.size; ++i) p.grad[i] = 0.0f;
  }
  const Mat logits = model.forward(x, true);
  LossResult lr = softmax_cross_entropy(logits, y);
  Mat grad = std::move(lr.dlogits);
  for (std::size_t li = model.layer_count(); li-- > 0;) {
    grad = model.layer(li).backward(grad);
  }
  std::vector<std::vector<float>> saved;
  for (auto& p : model.params()) saved.emplace_back(p.grad, p.grad + p.size);

  const auto loss_at = [&]() {
    const Mat l = model.forward(x, true);
    return softmax_cross_entropy(l, y, false).loss;
  };
  constexpr float kEps = 2e-3f;
  std::size_t pi = 0;
  for (auto& p : model.params()) {
    for (std::size_t i = 0; i < p.size; i += 3) {
      const float orig = p.value[i];
      p.value[i] = orig + kEps;
      const double lp = loss_at();
      p.value[i] = orig - kEps;
      const double lm = loss_at();
      p.value[i] = orig;
      const double numeric = (lp - lm) / (2.0 * kEps);
      EXPECT_NEAR(saved[pi][i], numeric, 2e-3 + 0.05 * std::fabs(numeric))
          << "param set " << pi << " index " << i;
    }
    ++pi;
  }
}

// ---------------------------------------------------------------------------
// Dropout
// ---------------------------------------------------------------------------

TEST(Dropout, IdentityInEval) {
  Xoshiro256 rng(4);
  Dropout drop(0.5f);
  const Mat x = random_input(4, 10, rng);
  const Mat y = drop.forward(x, false);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_FLOAT_EQ(y.data()[i], x.data()[i]);
  }
}

TEST(Dropout, DropsApproximatelyPFraction) {
  Xoshiro256 rng(5);
  Dropout drop(0.3f);
  Mat x(10, 100);
  x.fill(1.0f);
  const Mat y = drop.forward(x, true);
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y.data()[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(y.data()[i], 1.0f / 0.7f, 1e-5);
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / static_cast<double>(y.size()), 0.3,
              0.05);
}

TEST(Dropout, BackwardUsesSameMask) {
  Dropout drop(0.5f);
  Mat x(2, 50);
  x.fill(2.0f);
  const Mat y = drop.forward(x, true);
  Mat g(2, 50);
  g.fill(1.0f);
  const Mat dx = drop.backward(g);
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y.data()[i] == 0.0f) {
      EXPECT_FLOAT_EQ(dx.data()[i], 0.0f);
    } else {
      EXPECT_FLOAT_EQ(dx.data()[i], 2.0f);  // 1/(1-0.5)
    }
  }
}

TEST(Dropout, RejectsInvalidP) {
  EXPECT_THROW(Dropout(-0.1f), std::invalid_argument);
  EXPECT_THROW(Dropout(1.0f), std::invalid_argument);
}

TEST(Dropout, ZeroPIsIdentityEvenInTraining) {
  Xoshiro256 rng(6);
  Dropout drop(0.0f);
  const Mat x = random_input(3, 7, rng);
  const Mat y = drop.forward(x, true);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_FLOAT_EQ(y.data()[i], x.data()[i]);
  }
}

// ---------------------------------------------------------------------------
// Residual
// ---------------------------------------------------------------------------

TEST(Residual, EmptyBlockIsDoubling) {
  // y = x + F(x) with empty F means... F must preserve shape; an empty
  // stack is the identity, so y = 2x.
  Residual res;
  Mat x(2, 3);
  x.fill(1.5f);
  const Mat y = res.forward(x, false);
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_FLOAT_EQ(y.data()[i], 3.0f);
}

TEST(Residual, RejectsShapeChangingInner) {
  Xoshiro256 rng(7);
  Residual res;
  res.add(std::make_unique<Dense>(4, 5, rng));
  Mat x(2, 4);
  EXPECT_THROW((void)res.forward(x, false), std::invalid_argument);
  EXPECT_THROW((void)res.output_size(4), std::invalid_argument);
}

TEST(Residual, GradCheck) {
  Xoshiro256 rng(8);
  Sequential model;
  auto block = std::make_unique<Residual>();
  block->add(std::make_unique<Dense>(6, 6, rng));
  block->add(std::make_unique<Tanh>());
  block->add(std::make_unique<Dense>(6, 6, rng));
  model.add(std::make_unique<Dense>(4, 6, rng));
  model.add(std::move(block));
  model.add(std::make_unique<Dense>(6, 3, rng));

  const Mat x = random_input(5, 4, rng);
  std::vector<int> y(5);
  for (auto& v : y) v = static_cast<int>(rng.next_below(3));

  for (auto& p : model.params()) {
    for (std::size_t i = 0; i < p.size; ++i) p.grad[i] = 0.0f;
  }
  const Mat logits = model.forward(x, true);
  LossResult lr = softmax_cross_entropy(logits, y);
  Mat grad = std::move(lr.dlogits);
  for (std::size_t li = model.layer_count(); li-- > 0;) {
    grad = model.layer(li).backward(grad);
  }
  std::vector<std::vector<float>> saved;
  for (auto& p : model.params()) saved.emplace_back(p.grad, p.grad + p.size);

  const auto loss_at = [&]() {
    const Mat l = model.forward(x, false);
    return softmax_cross_entropy(l, y, false).loss;
  };
  constexpr float kEps = 2e-3f;
  std::size_t pi = 0;
  for (auto& p : model.params()) {
    for (std::size_t i = 0; i < p.size; i += 2) {
      const float orig = p.value[i];
      p.value[i] = orig + kEps;
      const double lp = loss_at();
      p.value[i] = orig - kEps;
      const double lm = loss_at();
      p.value[i] = orig;
      const double numeric = (lp - lm) / (2.0 * kEps);
      EXPECT_NEAR(saved[pi][i], numeric, 1.5e-3 + 0.05 * std::fabs(numeric))
          << "param set " << pi << " index " << i;
    }
    ++pi;
  }
}

TEST(Residual, ParamsAggregateInner) {
  Xoshiro256 rng(9);
  Residual res;
  res.add(std::make_unique<Dense>(4, 4, rng));
  res.add(std::make_unique<Dense>(4, 4, rng));
  EXPECT_EQ(res.param_count(), 2u * (16u + 4u));
}

// ---------------------------------------------------------------------------
// GohrNet builder
// ---------------------------------------------------------------------------

TEST(GohrNet, BuildsAndForwardPasses) {
  Xoshiro256 rng(10);
  auto model = mldist::core::build_gohr_net(32, 2, /*depth=*/2, rng);
  Mat x(3, 32);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x.data()[i] = static_cast<float>(rng.next_u64() & 1);
  }
  const Mat y = model->forward(x);
  EXPECT_EQ(y.rows(), 3u);
  EXPECT_EQ(y.cols(), 2u);
  EXPECT_GT(model->param_count(), 1000u);
}

TEST(GohrNet, TrainsOnSimpleStructure) {
  // Class 0: low half set; class 1: high half set.  Any competent model
  // should separate these quickly.
  Xoshiro256 rng(11);
  auto model = mldist::core::build_gohr_net(16, 2, 1, rng);
  Dataset ds;
  ds.x = Mat(128, 16);
  ds.y.resize(128);
  for (std::size_t n = 0; n < 128; ++n) {
    const int label = static_cast<int>(n % 2);
    ds.y[n] = label;
    for (std::size_t j = 0; j < 16; ++j) {
      const bool active = label == 0 ? j < 8 : j >= 8;
      ds.x.at(n, j) = active && (rng.next_u64() & 1) ? 1.0f : 0.0f;
    }
  }
  Adam opt(0.005f);
  FitOptions fit;
  fit.epochs = 12;
  fit.batch_size = 32;
  const EpochStats stats = model->fit(ds, opt, fit);
  EXPECT_GT(stats.train_accuracy, 0.9);
}

}  // namespace
