#include <gtest/gtest.h>

#include <set>

#include "ciphers/gimli.hpp"
#include "util/bits.hpp"
#include "util/hex.hpp"
#include "util/rng.hpp"

namespace {

using namespace mldist::ciphers;
using mldist::util::Xoshiro256;

GimliState reference_input() {
  // Test-vector input from the Gimli design document:
  // s[i] = i*i*i + i*0x9e3779b9 (mod 2^32).
  GimliState s;
  for (std::uint32_t i = 0; i < 12; ++i) {
    s[i] = i * i * i + i * 0x9e3779b9u;
  }
  return s;
}

TEST(Gimli, ReferenceInputFormula) {
  const GimliState s = reference_input();
  EXPECT_EQ(s[0], 0x00000000u);
  EXPECT_EQ(s[1], 0x9e3779bau);
  EXPECT_EQ(s[2], 0x3c6ef37au);
  EXPECT_EQ(s[3], 0xdaa66d46u);
  EXPECT_EQ(s[4], 0x78dde724u);
}

TEST(Gimli, OfficialPermutationTestVector) {
  // Expected output from the Gimli reference implementation (design
  // document appendix / reference code test program).
  GimliState s = reference_input();
  gimli_permute(s);
  const GimliState expected = {
      0xba11c85au, 0x91bad119u, 0x380ce880u, 0xd24c2c68u,
      0x3eceffeau, 0x277a921cu, 0x4f73a0bdu, 0xda5a9cd8u,
      0x84b673f0u, 0x34e52ff7u, 0x9e2bef49u, 0xf41bb8d6u};
  EXPECT_EQ(s, expected);
}

TEST(Gimli, PermutationIsInvertible) {
  Xoshiro256 rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    GimliState s;
    for (auto& w : s) w = rng.next_u32();
    const GimliState orig = s;
    gimli_permute(s);
    EXPECT_NE(s, orig);
    gimli_permute_inverse(s);
    EXPECT_EQ(s, orig);
  }
}

TEST(Gimli, RoundWindowInversesCompose) {
  Xoshiro256 rng(2);
  for (const auto& [hi, lo] :
       {std::pair{24, 17}, {8, 1}, {12, 5}, {3, 3}}) {
    GimliState s;
    for (auto& w : s) w = rng.next_u32();
    const GimliState orig = s;
    gimli_rounds(s, hi, lo);
    gimli_rounds_inverse(s, hi, lo);
    EXPECT_EQ(s, orig) << "window [" << hi << "," << lo << "]";
  }
}

TEST(Gimli, FullPermutationEqualsComposedWindows) {
  Xoshiro256 rng(3);
  GimliState a;
  for (auto& w : a) w = rng.next_u32();
  GimliState b = a;
  gimli_permute(a);
  gimli_rounds(b, 24, 13);
  gimli_rounds(b, 12, 1);
  EXPECT_EQ(a, b);
}

TEST(Gimli, ReducedMatchesCountdownSuffix) {
  // gimli_reduced(s, n) must equal rounds n..1 of the countdown.
  Xoshiro256 rng(4);
  GimliState a;
  for (auto& w : a) w = rng.next_u32();
  GimliState b = a;
  gimli_reduced(a, 8);
  gimli_rounds(b, 8, 1);
  EXPECT_EQ(a, b);
}

TEST(Gimli, ReducedZeroRoundsIsIdentity) {
  GimliState s = reference_input();
  const GimliState orig = s;
  gimli_reduced(s, 0);
  EXPECT_EQ(s, orig);
}

TEST(Gimli, SpboxColumnsAreIndependent) {
  // The SP-box acts column-locally: changing column 0 of the input must not
  // affect columns 1..3 after one SP-box layer.
  Xoshiro256 rng(5);
  GimliState a;
  for (auto& w : a) w = rng.next_u32();
  GimliState b = a;
  b[0] ^= 0xdeadbeefu;
  b[4] ^= 0x1234u;
  b[8] ^= 0x5678u;
  for (int j = 0; j < 4; ++j) {
    gimli_spbox_column(a, j);
    gimli_spbox_column(b, j);
  }
  for (int j = 1; j < 4; ++j) {
    EXPECT_EQ(a[j], b[j]);
    EXPECT_EQ(a[4 + j], b[4 + j]);
    EXPECT_EQ(a[8 + j], b[8 + j]);
  }
  EXPECT_NE((a[0] ^ b[0]) | (a[4] ^ b[4]) | (a[8] ^ b[8]), 0u);
}

TEST(Gimli, RoundConstantBreaksZeroFixedPoint) {
  // All-zero state: SP-box keeps it zero, but the round constant at
  // r % 4 == 0 must inject activity within the first four rounds.
  GimliState s{};
  gimli_rounds(s, 24, 21);
  bool nonzero = false;
  for (auto w : s) nonzero |= (w != 0);
  EXPECT_TRUE(nonzero);
}

TEST(Gimli, ByteSerializationRoundTrip) {
  Xoshiro256 rng(6);
  GimliState s;
  for (auto& w : s) w = rng.next_u32();
  std::uint8_t bytes[48];
  gimli_state_to_bytes(s, bytes);
  EXPECT_EQ(gimli_state_from_bytes(bytes), s);
}

TEST(Gimli, ByteSerializationIsLittleEndian) {
  GimliState s{};
  s[0] = 0x04030201u;
  std::uint8_t bytes[48];
  gimli_state_to_bytes(s, bytes);
  EXPECT_EQ(bytes[0], 0x01);
  EXPECT_EQ(bytes[1], 0x02);
  EXPECT_EQ(bytes[2], 0x03);
  EXPECT_EQ(bytes[3], 0x04);
}

TEST(Gimli, PermutationIsBijectiveOnSamples) {
  // Distinct inputs must map to distinct outputs.
  Xoshiro256 rng(7);
  std::set<std::array<std::uint32_t, 12>> outputs;
  for (int i = 0; i < 200; ++i) {
    GimliState s;
    for (auto& w : s) w = rng.next_u32();
    gimli_permute(s);
    outputs.insert(s);
  }
  EXPECT_EQ(outputs.size(), 200u);
}

TEST(Gimli, AvalancheAfterFullRounds) {
  // One flipped input bit should flip roughly half the output bits.
  Xoshiro256 rng(8);
  GimliState a;
  for (auto& w : a) w = rng.next_u32();
  GimliState b = a;
  b[5] ^= 1u;
  gimli_permute(a);
  gimli_permute(b);
  int flipped = 0;
  for (int i = 0; i < 12; ++i) {
    flipped += __builtin_popcount(a[i] ^ b[i]);
  }
  EXPECT_GT(flipped, 130);
  EXPECT_LT(flipped, 250);
}

TEST(Gimli, SlowDiffusionInEarlyRounds) {
  // After a single reduced round a single-bit difference stays confined to
  // its column (words j, 4+j, 8+j) — the structural fact the paper's
  // distinguishers exploit.
  GimliState a{};
  GimliState b{};
  b[1] ^= 1u << 7;
  gimli_reduced(a, 1);
  gimli_reduced(b, 1);
  for (int j = 0; j < 4; ++j) {
    if (j == 1) continue;
    EXPECT_EQ(a[j], b[j]);
    EXPECT_EQ(a[4 + j], b[4 + j]);
    EXPECT_EQ(a[8 + j], b[8 + j]);
  }
}

}  // namespace
