# Empty compiler generated dependencies file for mldist_util.
# This may be replaced when dependencies are built.
