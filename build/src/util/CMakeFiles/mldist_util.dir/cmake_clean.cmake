file(REMOVE_RECURSE
  "CMakeFiles/mldist_util.dir/bits.cpp.o"
  "CMakeFiles/mldist_util.dir/bits.cpp.o.d"
  "CMakeFiles/mldist_util.dir/hex.cpp.o"
  "CMakeFiles/mldist_util.dir/hex.cpp.o.d"
  "CMakeFiles/mldist_util.dir/rng.cpp.o"
  "CMakeFiles/mldist_util.dir/rng.cpp.o.d"
  "CMakeFiles/mldist_util.dir/stats.cpp.o"
  "CMakeFiles/mldist_util.dir/stats.cpp.o.d"
  "CMakeFiles/mldist_util.dir/thread_pool.cpp.o"
  "CMakeFiles/mldist_util.dir/thread_pool.cpp.o.d"
  "libmldist_util.a"
  "libmldist_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mldist_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
