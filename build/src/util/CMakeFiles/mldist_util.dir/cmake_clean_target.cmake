file(REMOVE_RECURSE
  "libmldist_util.a"
)
