
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cpp" "src/nn/CMakeFiles/mldist_nn.dir/activations.cpp.o" "gcc" "src/nn/CMakeFiles/mldist_nn.dir/activations.cpp.o.d"
  "/root/repo/src/nn/batchnorm.cpp" "src/nn/CMakeFiles/mldist_nn.dir/batchnorm.cpp.o" "gcc" "src/nn/CMakeFiles/mldist_nn.dir/batchnorm.cpp.o.d"
  "/root/repo/src/nn/conv1d.cpp" "src/nn/CMakeFiles/mldist_nn.dir/conv1d.cpp.o" "gcc" "src/nn/CMakeFiles/mldist_nn.dir/conv1d.cpp.o.d"
  "/root/repo/src/nn/dense.cpp" "src/nn/CMakeFiles/mldist_nn.dir/dense.cpp.o" "gcc" "src/nn/CMakeFiles/mldist_nn.dir/dense.cpp.o.d"
  "/root/repo/src/nn/dropout.cpp" "src/nn/CMakeFiles/mldist_nn.dir/dropout.cpp.o" "gcc" "src/nn/CMakeFiles/mldist_nn.dir/dropout.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/mldist_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/mldist_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/lstm.cpp" "src/nn/CMakeFiles/mldist_nn.dir/lstm.cpp.o" "gcc" "src/nn/CMakeFiles/mldist_nn.dir/lstm.cpp.o.d"
  "/root/repo/src/nn/mat.cpp" "src/nn/CMakeFiles/mldist_nn.dir/mat.cpp.o" "gcc" "src/nn/CMakeFiles/mldist_nn.dir/mat.cpp.o.d"
  "/root/repo/src/nn/model.cpp" "src/nn/CMakeFiles/mldist_nn.dir/model.cpp.o" "gcc" "src/nn/CMakeFiles/mldist_nn.dir/model.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/mldist_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/mldist_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/residual.cpp" "src/nn/CMakeFiles/mldist_nn.dir/residual.cpp.o" "gcc" "src/nn/CMakeFiles/mldist_nn.dir/residual.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/mldist_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/mldist_nn.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mldist_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
