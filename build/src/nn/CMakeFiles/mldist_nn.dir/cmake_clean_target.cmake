file(REMOVE_RECURSE
  "libmldist_nn.a"
)
