file(REMOVE_RECURSE
  "CMakeFiles/mldist_nn.dir/activations.cpp.o"
  "CMakeFiles/mldist_nn.dir/activations.cpp.o.d"
  "CMakeFiles/mldist_nn.dir/batchnorm.cpp.o"
  "CMakeFiles/mldist_nn.dir/batchnorm.cpp.o.d"
  "CMakeFiles/mldist_nn.dir/conv1d.cpp.o"
  "CMakeFiles/mldist_nn.dir/conv1d.cpp.o.d"
  "CMakeFiles/mldist_nn.dir/dense.cpp.o"
  "CMakeFiles/mldist_nn.dir/dense.cpp.o.d"
  "CMakeFiles/mldist_nn.dir/dropout.cpp.o"
  "CMakeFiles/mldist_nn.dir/dropout.cpp.o.d"
  "CMakeFiles/mldist_nn.dir/loss.cpp.o"
  "CMakeFiles/mldist_nn.dir/loss.cpp.o.d"
  "CMakeFiles/mldist_nn.dir/lstm.cpp.o"
  "CMakeFiles/mldist_nn.dir/lstm.cpp.o.d"
  "CMakeFiles/mldist_nn.dir/mat.cpp.o"
  "CMakeFiles/mldist_nn.dir/mat.cpp.o.d"
  "CMakeFiles/mldist_nn.dir/model.cpp.o"
  "CMakeFiles/mldist_nn.dir/model.cpp.o.d"
  "CMakeFiles/mldist_nn.dir/optimizer.cpp.o"
  "CMakeFiles/mldist_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/mldist_nn.dir/residual.cpp.o"
  "CMakeFiles/mldist_nn.dir/residual.cpp.o.d"
  "CMakeFiles/mldist_nn.dir/serialize.cpp.o"
  "CMakeFiles/mldist_nn.dir/serialize.cpp.o.d"
  "libmldist_nn.a"
  "libmldist_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mldist_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
