# Empty compiler generated dependencies file for mldist_nn.
# This may be replaced when dependencies are built.
