
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/arch_zoo.cpp" "src/core/CMakeFiles/mldist_core.dir/arch_zoo.cpp.o" "gcc" "src/core/CMakeFiles/mldist_core.dir/arch_zoo.cpp.o.d"
  "/root/repo/src/core/combiner.cpp" "src/core/CMakeFiles/mldist_core.dir/combiner.cpp.o" "gcc" "src/core/CMakeFiles/mldist_core.dir/combiner.cpp.o.d"
  "/root/repo/src/core/dataset.cpp" "src/core/CMakeFiles/mldist_core.dir/dataset.cpp.o" "gcc" "src/core/CMakeFiles/mldist_core.dir/dataset.cpp.o.d"
  "/root/repo/src/core/distinguisher.cpp" "src/core/CMakeFiles/mldist_core.dir/distinguisher.cpp.o" "gcc" "src/core/CMakeFiles/mldist_core.dir/distinguisher.cpp.o.d"
  "/root/repo/src/core/key_recovery.cpp" "src/core/CMakeFiles/mldist_core.dir/key_recovery.cpp.o" "gcc" "src/core/CMakeFiles/mldist_core.dir/key_recovery.cpp.o.d"
  "/root/repo/src/core/linear_baseline.cpp" "src/core/CMakeFiles/mldist_core.dir/linear_baseline.cpp.o" "gcc" "src/core/CMakeFiles/mldist_core.dir/linear_baseline.cpp.o.d"
  "/root/repo/src/core/model_io.cpp" "src/core/CMakeFiles/mldist_core.dir/model_io.cpp.o" "gcc" "src/core/CMakeFiles/mldist_core.dir/model_io.cpp.o.d"
  "/root/repo/src/core/online_game.cpp" "src/core/CMakeFiles/mldist_core.dir/online_game.cpp.o" "gcc" "src/core/CMakeFiles/mldist_core.dir/online_game.cpp.o.d"
  "/root/repo/src/core/oracle.cpp" "src/core/CMakeFiles/mldist_core.dir/oracle.cpp.o" "gcc" "src/core/CMakeFiles/mldist_core.dir/oracle.cpp.o.d"
  "/root/repo/src/core/real_random.cpp" "src/core/CMakeFiles/mldist_core.dir/real_random.cpp.o" "gcc" "src/core/CMakeFiles/mldist_core.dir/real_random.cpp.o.d"
  "/root/repo/src/core/targets.cpp" "src/core/CMakeFiles/mldist_core.dir/targets.cpp.o" "gcc" "src/core/CMakeFiles/mldist_core.dir/targets.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mldist_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ciphers/CMakeFiles/mldist_ciphers.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/mldist_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
