file(REMOVE_RECURSE
  "CMakeFiles/mldist_core.dir/arch_zoo.cpp.o"
  "CMakeFiles/mldist_core.dir/arch_zoo.cpp.o.d"
  "CMakeFiles/mldist_core.dir/combiner.cpp.o"
  "CMakeFiles/mldist_core.dir/combiner.cpp.o.d"
  "CMakeFiles/mldist_core.dir/dataset.cpp.o"
  "CMakeFiles/mldist_core.dir/dataset.cpp.o.d"
  "CMakeFiles/mldist_core.dir/distinguisher.cpp.o"
  "CMakeFiles/mldist_core.dir/distinguisher.cpp.o.d"
  "CMakeFiles/mldist_core.dir/key_recovery.cpp.o"
  "CMakeFiles/mldist_core.dir/key_recovery.cpp.o.d"
  "CMakeFiles/mldist_core.dir/linear_baseline.cpp.o"
  "CMakeFiles/mldist_core.dir/linear_baseline.cpp.o.d"
  "CMakeFiles/mldist_core.dir/model_io.cpp.o"
  "CMakeFiles/mldist_core.dir/model_io.cpp.o.d"
  "CMakeFiles/mldist_core.dir/online_game.cpp.o"
  "CMakeFiles/mldist_core.dir/online_game.cpp.o.d"
  "CMakeFiles/mldist_core.dir/oracle.cpp.o"
  "CMakeFiles/mldist_core.dir/oracle.cpp.o.d"
  "CMakeFiles/mldist_core.dir/real_random.cpp.o"
  "CMakeFiles/mldist_core.dir/real_random.cpp.o.d"
  "CMakeFiles/mldist_core.dir/targets.cpp.o"
  "CMakeFiles/mldist_core.dir/targets.cpp.o.d"
  "libmldist_core.a"
  "libmldist_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mldist_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
