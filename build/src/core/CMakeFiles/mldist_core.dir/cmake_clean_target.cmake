file(REMOVE_RECURSE
  "libmldist_core.a"
)
