# Empty compiler generated dependencies file for mldist_core.
# This may be replaced when dependencies are built.
