file(REMOVE_RECURSE
  "libmldist_analysis.a"
)
