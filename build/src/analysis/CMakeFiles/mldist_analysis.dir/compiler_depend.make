# Empty compiler generated dependencies file for mldist_analysis.
# This may be replaced when dependencies are built.
