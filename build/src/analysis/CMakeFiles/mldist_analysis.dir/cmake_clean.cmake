file(REMOVE_RECURSE
  "CMakeFiles/mldist_analysis.dir/allinone.cpp.o"
  "CMakeFiles/mldist_analysis.dir/allinone.cpp.o.d"
  "CMakeFiles/mldist_analysis.dir/arx.cpp.o"
  "CMakeFiles/mldist_analysis.dir/arx.cpp.o.d"
  "CMakeFiles/mldist_analysis.dir/ddt.cpp.o"
  "CMakeFiles/mldist_analysis.dir/ddt.cpp.o.d"
  "CMakeFiles/mldist_analysis.dir/markov.cpp.o"
  "CMakeFiles/mldist_analysis.dir/markov.cpp.o.d"
  "CMakeFiles/mldist_analysis.dir/speck_trails.cpp.o"
  "CMakeFiles/mldist_analysis.dir/speck_trails.cpp.o.d"
  "CMakeFiles/mldist_analysis.dir/toy_gift.cpp.o"
  "CMakeFiles/mldist_analysis.dir/toy_gift.cpp.o.d"
  "CMakeFiles/mldist_analysis.dir/trail_weights.cpp.o"
  "CMakeFiles/mldist_analysis.dir/trail_weights.cpp.o.d"
  "libmldist_analysis.a"
  "libmldist_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mldist_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
