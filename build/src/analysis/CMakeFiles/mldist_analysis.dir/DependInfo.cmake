
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/allinone.cpp" "src/analysis/CMakeFiles/mldist_analysis.dir/allinone.cpp.o" "gcc" "src/analysis/CMakeFiles/mldist_analysis.dir/allinone.cpp.o.d"
  "/root/repo/src/analysis/arx.cpp" "src/analysis/CMakeFiles/mldist_analysis.dir/arx.cpp.o" "gcc" "src/analysis/CMakeFiles/mldist_analysis.dir/arx.cpp.o.d"
  "/root/repo/src/analysis/ddt.cpp" "src/analysis/CMakeFiles/mldist_analysis.dir/ddt.cpp.o" "gcc" "src/analysis/CMakeFiles/mldist_analysis.dir/ddt.cpp.o.d"
  "/root/repo/src/analysis/markov.cpp" "src/analysis/CMakeFiles/mldist_analysis.dir/markov.cpp.o" "gcc" "src/analysis/CMakeFiles/mldist_analysis.dir/markov.cpp.o.d"
  "/root/repo/src/analysis/speck_trails.cpp" "src/analysis/CMakeFiles/mldist_analysis.dir/speck_trails.cpp.o" "gcc" "src/analysis/CMakeFiles/mldist_analysis.dir/speck_trails.cpp.o.d"
  "/root/repo/src/analysis/toy_gift.cpp" "src/analysis/CMakeFiles/mldist_analysis.dir/toy_gift.cpp.o" "gcc" "src/analysis/CMakeFiles/mldist_analysis.dir/toy_gift.cpp.o.d"
  "/root/repo/src/analysis/trail_weights.cpp" "src/analysis/CMakeFiles/mldist_analysis.dir/trail_weights.cpp.o" "gcc" "src/analysis/CMakeFiles/mldist_analysis.dir/trail_weights.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mldist_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ciphers/CMakeFiles/mldist_ciphers.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
