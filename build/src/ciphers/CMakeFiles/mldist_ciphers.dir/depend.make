# Empty dependencies file for mldist_ciphers.
# This may be replaced when dependencies are built.
