file(REMOVE_RECURSE
  "CMakeFiles/mldist_ciphers.dir/gift128.cpp.o"
  "CMakeFiles/mldist_ciphers.dir/gift128.cpp.o.d"
  "CMakeFiles/mldist_ciphers.dir/gift64.cpp.o"
  "CMakeFiles/mldist_ciphers.dir/gift64.cpp.o.d"
  "CMakeFiles/mldist_ciphers.dir/gift_toy.cpp.o"
  "CMakeFiles/mldist_ciphers.dir/gift_toy.cpp.o.d"
  "CMakeFiles/mldist_ciphers.dir/gimli.cpp.o"
  "CMakeFiles/mldist_ciphers.dir/gimli.cpp.o.d"
  "CMakeFiles/mldist_ciphers.dir/gimli_aead.cpp.o"
  "CMakeFiles/mldist_ciphers.dir/gimli_aead.cpp.o.d"
  "CMakeFiles/mldist_ciphers.dir/gimli_hash.cpp.o"
  "CMakeFiles/mldist_ciphers.dir/gimli_hash.cpp.o.d"
  "CMakeFiles/mldist_ciphers.dir/salsa20.cpp.o"
  "CMakeFiles/mldist_ciphers.dir/salsa20.cpp.o.d"
  "CMakeFiles/mldist_ciphers.dir/speck3264.cpp.o"
  "CMakeFiles/mldist_ciphers.dir/speck3264.cpp.o.d"
  "CMakeFiles/mldist_ciphers.dir/trivium.cpp.o"
  "CMakeFiles/mldist_ciphers.dir/trivium.cpp.o.d"
  "libmldist_ciphers.a"
  "libmldist_ciphers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mldist_ciphers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
