
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ciphers/gift128.cpp" "src/ciphers/CMakeFiles/mldist_ciphers.dir/gift128.cpp.o" "gcc" "src/ciphers/CMakeFiles/mldist_ciphers.dir/gift128.cpp.o.d"
  "/root/repo/src/ciphers/gift64.cpp" "src/ciphers/CMakeFiles/mldist_ciphers.dir/gift64.cpp.o" "gcc" "src/ciphers/CMakeFiles/mldist_ciphers.dir/gift64.cpp.o.d"
  "/root/repo/src/ciphers/gift_toy.cpp" "src/ciphers/CMakeFiles/mldist_ciphers.dir/gift_toy.cpp.o" "gcc" "src/ciphers/CMakeFiles/mldist_ciphers.dir/gift_toy.cpp.o.d"
  "/root/repo/src/ciphers/gimli.cpp" "src/ciphers/CMakeFiles/mldist_ciphers.dir/gimli.cpp.o" "gcc" "src/ciphers/CMakeFiles/mldist_ciphers.dir/gimli.cpp.o.d"
  "/root/repo/src/ciphers/gimli_aead.cpp" "src/ciphers/CMakeFiles/mldist_ciphers.dir/gimli_aead.cpp.o" "gcc" "src/ciphers/CMakeFiles/mldist_ciphers.dir/gimli_aead.cpp.o.d"
  "/root/repo/src/ciphers/gimli_hash.cpp" "src/ciphers/CMakeFiles/mldist_ciphers.dir/gimli_hash.cpp.o" "gcc" "src/ciphers/CMakeFiles/mldist_ciphers.dir/gimli_hash.cpp.o.d"
  "/root/repo/src/ciphers/salsa20.cpp" "src/ciphers/CMakeFiles/mldist_ciphers.dir/salsa20.cpp.o" "gcc" "src/ciphers/CMakeFiles/mldist_ciphers.dir/salsa20.cpp.o.d"
  "/root/repo/src/ciphers/speck3264.cpp" "src/ciphers/CMakeFiles/mldist_ciphers.dir/speck3264.cpp.o" "gcc" "src/ciphers/CMakeFiles/mldist_ciphers.dir/speck3264.cpp.o.d"
  "/root/repo/src/ciphers/trivium.cpp" "src/ciphers/CMakeFiles/mldist_ciphers.dir/trivium.cpp.o" "gcc" "src/ciphers/CMakeFiles/mldist_ciphers.dir/trivium.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mldist_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
