file(REMOVE_RECURSE
  "libmldist_ciphers.a"
)
