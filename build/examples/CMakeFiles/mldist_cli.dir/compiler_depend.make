# Empty compiler generated dependencies file for mldist_cli.
# This may be replaced when dependencies are built.
