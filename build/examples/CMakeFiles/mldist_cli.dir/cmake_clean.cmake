file(REMOVE_RECURSE
  "CMakeFiles/mldist_cli.dir/mldist_cli.cpp.o"
  "CMakeFiles/mldist_cli.dir/mldist_cli.cpp.o.d"
  "mldist_cli"
  "mldist_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mldist_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
