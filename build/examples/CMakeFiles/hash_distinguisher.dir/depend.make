# Empty dependencies file for hash_distinguisher.
# This may be replaced when dependencies are built.
