file(REMOVE_RECURSE
  "CMakeFiles/hash_distinguisher.dir/hash_distinguisher.cpp.o"
  "CMakeFiles/hash_distinguisher.dir/hash_distinguisher.cpp.o.d"
  "hash_distinguisher"
  "hash_distinguisher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hash_distinguisher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
