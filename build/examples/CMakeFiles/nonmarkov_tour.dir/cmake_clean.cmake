file(REMOVE_RECURSE
  "CMakeFiles/nonmarkov_tour.dir/nonmarkov_tour.cpp.o"
  "CMakeFiles/nonmarkov_tour.dir/nonmarkov_tour.cpp.o.d"
  "nonmarkov_tour"
  "nonmarkov_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nonmarkov_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
