# Empty dependencies file for nonmarkov_tour.
# This may be replaced when dependencies are built.
