file(REMOVE_RECURSE
  "CMakeFiles/oracle_game.dir/oracle_game.cpp.o"
  "CMakeFiles/oracle_game.dir/oracle_game.cpp.o.d"
  "oracle_game"
  "oracle_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oracle_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
