# Empty dependencies file for oracle_game.
# This may be replaced when dependencies are built.
