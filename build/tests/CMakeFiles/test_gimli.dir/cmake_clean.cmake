file(REMOVE_RECURSE
  "CMakeFiles/test_gimli.dir/gimli_test.cpp.o"
  "CMakeFiles/test_gimli.dir/gimli_test.cpp.o.d"
  "test_gimli"
  "test_gimli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gimli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
