# Empty dependencies file for test_gimli.
# This may be replaced when dependencies are built.
