file(REMOVE_RECURSE
  "CMakeFiles/test_gift.dir/gift_test.cpp.o"
  "CMakeFiles/test_gift.dir/gift_test.cpp.o.d"
  "test_gift"
  "test_gift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
