# Empty compiler generated dependencies file for test_gift.
# This may be replaced when dependencies are built.
