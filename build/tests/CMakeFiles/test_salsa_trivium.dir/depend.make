# Empty dependencies file for test_salsa_trivium.
# This may be replaced when dependencies are built.
