file(REMOVE_RECURSE
  "CMakeFiles/test_salsa_trivium.dir/salsa_trivium_test.cpp.o"
  "CMakeFiles/test_salsa_trivium.dir/salsa_trivium_test.cpp.o.d"
  "test_salsa_trivium"
  "test_salsa_trivium.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_salsa_trivium.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
