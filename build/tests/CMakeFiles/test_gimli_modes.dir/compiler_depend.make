# Empty compiler generated dependencies file for test_gimli_modes.
# This may be replaced when dependencies are built.
