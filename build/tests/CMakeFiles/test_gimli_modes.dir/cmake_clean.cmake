file(REMOVE_RECURSE
  "CMakeFiles/test_gimli_modes.dir/gimli_modes_test.cpp.o"
  "CMakeFiles/test_gimli_modes.dir/gimli_modes_test.cpp.o.d"
  "test_gimli_modes"
  "test_gimli_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gimli_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
