file(REMOVE_RECURSE
  "CMakeFiles/test_key_recovery.dir/key_recovery_test.cpp.o"
  "CMakeFiles/test_key_recovery.dir/key_recovery_test.cpp.o.d"
  "test_key_recovery"
  "test_key_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_key_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
