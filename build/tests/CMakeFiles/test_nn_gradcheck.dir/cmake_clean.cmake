file(REMOVE_RECURSE
  "CMakeFiles/test_nn_gradcheck.dir/nn_gradcheck_test.cpp.o"
  "CMakeFiles/test_nn_gradcheck.dir/nn_gradcheck_test.cpp.o.d"
  "test_nn_gradcheck"
  "test_nn_gradcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_gradcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
