file(REMOVE_RECURSE
  "CMakeFiles/test_kat.dir/kat_test.cpp.o"
  "CMakeFiles/test_kat.dir/kat_test.cpp.o.d"
  "test_kat"
  "test_kat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
