file(REMOVE_RECURSE
  "CMakeFiles/test_combiner.dir/combiner_test.cpp.o"
  "CMakeFiles/test_combiner.dir/combiner_test.cpp.o.d"
  "test_combiner"
  "test_combiner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_combiner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
