# Empty dependencies file for test_property_param.
# This may be replaced when dependencies are built.
