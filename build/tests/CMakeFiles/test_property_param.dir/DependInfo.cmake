
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/property_param_test.cpp" "tests/CMakeFiles/test_property_param.dir/property_param_test.cpp.o" "gcc" "tests/CMakeFiles/test_property_param.dir/property_param_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mldist_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/mldist_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/mldist_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/ciphers/CMakeFiles/mldist_ciphers.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mldist_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
