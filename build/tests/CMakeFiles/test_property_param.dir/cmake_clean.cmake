file(REMOVE_RECURSE
  "CMakeFiles/test_property_param.dir/property_param_test.cpp.o"
  "CMakeFiles/test_property_param.dir/property_param_test.cpp.o.d"
  "test_property_param"
  "test_property_param.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_param.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
