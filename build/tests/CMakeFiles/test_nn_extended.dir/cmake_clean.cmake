file(REMOVE_RECURSE
  "CMakeFiles/test_nn_extended.dir/nn_extended_test.cpp.o"
  "CMakeFiles/test_nn_extended.dir/nn_extended_test.cpp.o.d"
  "test_nn_extended"
  "test_nn_extended.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_extended.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
