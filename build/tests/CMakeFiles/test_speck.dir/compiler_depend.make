# Empty compiler generated dependencies file for test_speck.
# This may be replaced when dependencies are built.
