file(REMOVE_RECURSE
  "CMakeFiles/test_speck.dir/speck_test.cpp.o"
  "CMakeFiles/test_speck.dir/speck_test.cpp.o.d"
  "test_speck"
  "test_speck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_speck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
