# Empty dependencies file for bench_ablation_combine.
# This may be replaced when dependencies are built.
