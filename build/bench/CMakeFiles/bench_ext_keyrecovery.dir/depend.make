# Empty dependencies file for bench_ext_keyrecovery.
# This may be replaced when dependencies are built.
