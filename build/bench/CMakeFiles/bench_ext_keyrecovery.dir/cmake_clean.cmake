file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_keyrecovery.dir/ext_keyrecovery.cpp.o"
  "CMakeFiles/bench_ext_keyrecovery.dir/ext_keyrecovery.cpp.o.d"
  "bench_ext_keyrecovery"
  "bench_ext_keyrecovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_keyrecovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
