file(REMOVE_RECURSE
  "CMakeFiles/bench_speck_trails.dir/speck_trails.cpp.o"
  "CMakeFiles/bench_speck_trails.dir/speck_trails.cpp.o.d"
  "bench_speck_trails"
  "bench_speck_trails.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_speck_trails.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
