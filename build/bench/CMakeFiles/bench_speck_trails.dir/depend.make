# Empty dependencies file for bench_speck_trails.
# This may be replaced when dependencies are built.
