file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_trails.dir/table1_trails.cpp.o"
  "CMakeFiles/bench_table1_trails.dir/table1_trails.cpp.o.d"
  "bench_table1_trails"
  "bench_table1_trails.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_trails.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
