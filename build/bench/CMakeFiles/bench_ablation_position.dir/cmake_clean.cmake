file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_position.dir/ablation_position.cpp.o"
  "CMakeFiles/bench_ablation_position.dir/ablation_position.cpp.o.d"
  "bench_ablation_position"
  "bench_ablation_position.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_position.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
