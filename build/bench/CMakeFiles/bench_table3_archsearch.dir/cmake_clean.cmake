file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_archsearch.dir/table3_archsearch.cpp.o"
  "CMakeFiles/bench_table3_archsearch.dir/table3_archsearch.cpp.o.d"
  "bench_table3_archsearch"
  "bench_table3_archsearch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_archsearch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
