# Empty dependencies file for bench_fig1_toy_gift.
# This may be replaced when dependencies are built.
