file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_toy_gift.dir/fig1_toy_gift.cpp.o"
  "CMakeFiles/bench_fig1_toy_gift.dir/fig1_toy_gift.cpp.o.d"
  "bench_fig1_toy_gift"
  "bench_fig1_toy_gift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_toy_gift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
