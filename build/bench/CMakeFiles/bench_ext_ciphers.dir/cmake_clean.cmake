file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_ciphers.dir/ext_ciphers.cpp.o"
  "CMakeFiles/bench_ext_ciphers.dir/ext_ciphers.cpp.o.d"
  "bench_ext_ciphers"
  "bench_ext_ciphers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_ciphers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
