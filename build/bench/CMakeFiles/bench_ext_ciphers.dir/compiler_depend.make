# Empty compiler generated dependencies file for bench_ext_ciphers.
# This may be replaced when dependencies are built.
