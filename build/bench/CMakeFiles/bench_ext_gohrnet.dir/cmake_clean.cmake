file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_gohrnet.dir/ext_gohrnet.cpp.o"
  "CMakeFiles/bench_ext_gohrnet.dir/ext_gohrnet.cpp.o.d"
  "bench_ext_gohrnet"
  "bench_ext_gohrnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_gohrnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
