# Empty dependencies file for bench_ext_gohrnet.
# This may be replaced when dependencies are built.
