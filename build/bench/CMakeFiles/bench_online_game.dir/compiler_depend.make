# Empty compiler generated dependencies file for bench_online_game.
# This may be replaced when dependencies are built.
