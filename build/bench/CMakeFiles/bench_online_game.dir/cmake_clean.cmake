file(REMOVE_RECURSE
  "CMakeFiles/bench_online_game.dir/online_game.cpp.o"
  "CMakeFiles/bench_online_game.dir/online_game.cpp.o.d"
  "bench_online_game"
  "bench_online_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_online_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
