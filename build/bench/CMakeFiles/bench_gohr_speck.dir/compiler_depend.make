# Empty compiler generated dependencies file for bench_gohr_speck.
# This may be replaced when dependencies are built.
