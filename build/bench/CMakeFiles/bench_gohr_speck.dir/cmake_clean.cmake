file(REMOVE_RECURSE
  "CMakeFiles/bench_gohr_speck.dir/gohr_speck.cpp.o"
  "CMakeFiles/bench_gohr_speck.dir/gohr_speck.cpp.o.d"
  "bench_gohr_speck"
  "bench_gohr_speck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gohr_speck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
