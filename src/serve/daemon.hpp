// mldist_serve: the batched distinguisher-serving daemon (DESIGN.md §15).
//
// The production shape of a trained distinguisher is an online
// oracle-classification service: POST an observable, get back the class the
// model assigns.  ServeDaemon is that service — one poll(2) event-loop
// thread multiplexing every connection (built on the shared HTTP machinery
// of obs/http.hpp: close-on-exec sockets, incremental request reassembly,
// per-connection read deadlines), handing completed classify requests to
// the per-model coalescing workers of serve/batcher.hpp.
//
// Endpoints:
//   POST /v1/classify   {"model":...,"inputs":["<hex>",...]} -> predictions
//                       (serve/protocol.hpp); 400 malformed, 404 unknown
//                       model, 503 queue full (admission control), 408
//                       read deadline expired, 413/431 oversized.
//   GET  /v1/models     the registry listing (name/arch/dims/config_hash)
//   GET  /metrics       Prometheus exposition incl. the serve.* metrics
//   GET  /healthz       {"status":"ok","models":N,...}
//   GET  /runz          obs::RunStatus (phase "serve")
//
// Connection lifecycle: the event loop owns a connection while reading and
// while writing inline responses (non-blocking, POLLOUT-driven).  A
// classify request that clears admission control transfers its fd to the
// model's worker, which answers after the batched forward and closes it —
// the event loop never blocks on inference, inference never blocks on I/O.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/batcher.hpp"

namespace mldist::serve {

class ModelRegistry;

struct ServeOptions {
  std::uint16_t port = 0;      ///< 0 = ephemeral (port() reports the real one)
  BatchOptions batch;          ///< coalescing window / batch / queue bounds
  int read_timeout_ms = 2000;  ///< per-connection deadline for a full request
  std::size_t max_body_bytes = 1024 * 1024;
  int backlog = 128;
  /// Seed for generated request ids: request n gets the 16-hex rendering of
  /// derive_stream_seed(seed, n), so ids are unique, well-spread and — by
  /// design — free of time-based nondeterminism (tests replay sequences).
  /// Clients that send X-Request-Id keep their own id instead.
  std::uint64_t request_id_seed = 0x1d5eed;
};

class ServeDaemon {
 public:
  /// `registry` must be loaded before start() and outlive the daemon.
  explicit ServeDaemon(const ModelRegistry& registry);
  ~ServeDaemon();

  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

  /// Bind, spawn one batch worker per registry model, start the event
  /// loop.  Returns false (with `error`) on socket failure; true when
  /// already running.
  bool start(const ServeOptions& options, std::string* error = nullptr);

  /// Close the listen socket, drain the workers (queued requests are still
  /// answered), join every thread.  Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  std::uint16_t port() const { return port_; }

  /// Requests answered inline by the event loop plus requests handed to
  /// workers (i.e. everything routed).
  std::uint64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }
  /// Requests refused by admission control (503).
  std::uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn;

  void event_loop();
  /// Route a completed request; returns the inline response, or "" when
  /// the connection was handed off to a worker.
  std::string route(Conn& conn);
  /// Classify path: assigns/echoes the request id, logs the access line for
  /// inline rejections, hands the fd to a worker on success (conn.fd
  /// becomes -1).
  std::string handle_classify(Conn& conn);

  const ModelRegistry& registry_;
  ServeOptions opt_;
  std::vector<std::unique_ptr<ModelWorker>> workers_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> rid_counter_{0};  ///< next generated request id
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::uint64_t start_ns_ = 0;
  std::thread thread_;
};

}  // namespace mldist::serve
