// Per-model request coalescing (DESIGN.md §15).
//
// Throughput on the serving plane must come from the batched GEMM kernels,
// not from threads-per-request: a ModelWorker owns one model's queue and
// one worker thread that gathers every classify job in flight — up to a
// configurable coalescing window (default 200µs) or until batch_max_rows
// rows are waiting — and answers them all with ONE batched predict_proba
// call.  A 64-row batch through the AVX2 GEMM costs far less than 64
// single-row forwards, so saturated throughput scales with the kernels
// (bench/serving_saturation.cpp pins the >= 2x floor against batch-size-1).
//
// Admission control: the queue is bounded in ROWS (queue_max_rows).
// submit() refuses jobs that would overflow it — the daemon answers 503 so
// overload degrades into fast, explicit rejections instead of an unbounded
// latency tail.  One request's inputs are never split across batches
// (responses are all-or-nothing), so batch_max_rows also caps the rows one
// request may carry.
//
// Ownership: a submitted job carries the connection fd.  On submit the
// daemon forgets the fd; the worker answers over it (blocking send — the
// fd must be switched back to blocking before submit) and closes it, also
// on shutdown (drain-then-answer) and on inference failure (500).
//
// Observability (all on the existing /metrics endpoint):
//   serve.batch_size            histogram — rows per batched predict call
//   serve.queue_wait_ns         histogram — submit -> batch assembly
//   serve.e2e_ns                histogram — submit -> response sent
//   serve.model.<name>.requests counter   — answered requests
//   serve.model.<name>.rows     counter   — classified rows
//   serve.model.<name>.batches  counter   — batched predict calls
//   serve.model.<name>.queue_depth gauge  — rows waiting right now (also
//                                           surfaced in /runz detail)
// plus one structured access-log line per answered request
// (serve/protocol.hpp log_access, component "serve.access").
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace mldist::serve {

struct ModelEntry;

struct BatchOptions {
  /// How long the worker waits for more jobs after the first one arrives.
  /// 0 disables coalescing (every job runs the moment it is dequeued) —
  /// the batch-size-1 reference configuration of the saturation bench.
  int batch_window_us = 200;
  std::size_t batch_max_rows = 64;
  std::size_t queue_max_rows = 1024;
  /// Requests whose e2e latency reaches this many milliseconds log their
  /// access line at warn (force-draining the logger ring) instead of info.
  /// 0 disables the threshold.
  int slow_request_ms = 0;
};

struct ClassifyJob {
  int fd = -1;                  ///< connection to answer; -1 = loopback test
  std::vector<float> features;  ///< rows * input_bits, bit-unpacked
  std::size_t rows = 0;
  std::uint64_t enqueue_ns = 0;  ///< stamped by submit()
  std::string request_id;        ///< echoed in X-Request-Id + access log
};

class ModelWorker {
 public:
  /// `entry` must outlive the worker (the registry is immutable and owned
  /// by the caller).  Starts the worker thread immediately.
  ModelWorker(const ModelEntry& entry, const BatchOptions& options);
  ~ModelWorker() { stop(); }

  ModelWorker(const ModelWorker&) = delete;
  ModelWorker& operator=(const ModelWorker&) = delete;

  /// Enqueue a job.  Returns false (job untouched, fd still the caller's)
  /// when admission control refuses it: queue full, or more rows than
  /// batch_max_rows in one request.
  bool submit(ClassifyJob&& job);

  /// Drain the queue (answering every queued job), then join the thread.
  /// Idempotent.
  void stop();

  const ModelEntry& entry() const { return entry_; }

  // Totals for tests and the drain path (exact after stop()).
  std::uint64_t answered() const {
    return answered_.load(std::memory_order_relaxed);
  }
  std::uint64_t batches() const {
    return batches_.load(std::memory_order_relaxed);
  }

 private:
  void loop();
  void run_batch(std::vector<ClassifyJob>& batch, std::size_t rows);

  const ModelEntry& entry_;
  BatchOptions opt_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<ClassifyJob> queue_;
  std::size_t queued_rows_ = 0;
  bool stop_ = false;

  std::atomic<std::uint64_t> answered_{0};
  std::atomic<std::uint64_t> batches_{0};

  obs::MetricId batch_size_hist_;
  obs::MetricId queue_wait_hist_;
  obs::MetricId e2e_hist_;
  obs::MetricId requests_ctr_;
  obs::MetricId rows_ctr_;
  obs::MetricId batches_ctr_;
  obs::MetricId queue_depth_gauge_;  ///< queued rows, set on enqueue/dequeue

  std::thread thread_;
};

}  // namespace mldist::serve
