#include "serve/protocol.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "obs/log.hpp"
#include "serve/registry.hpp"
#include "util/bits.hpp"
#include "util/hex.hpp"
#include "util/json.hpp"

namespace mldist::serve {

namespace {

/// Scanner for the fixed request shape.  Not a general JSON DOM (the spec
/// parser in src/campaign stays the repo's only one of those): it accepts
/// {"model": string, "inputs": [string, ...]} with arbitrary whitespace and
/// key order, and nothing else.
class RequestScanner {
 public:
  explicit RequestScanner(const std::string& text) : text_(text) {}

  bool parse(ClassifyRequest* out, std::string* error) {
    skip_ws();
    if (!consume('{')) return fail(error, "expected a JSON object");
    bool have_model = false;
    bool have_inputs = false;
    skip_ws();
    if (consume('}')) return fail(error, "empty request object");
    while (true) {
      std::string key;
      if (!parse_string(&key)) return fail(error, "expected a string key");
      skip_ws();
      if (!consume(':')) return fail(error, "expected ':' after key");
      skip_ws();
      if (key == "model") {
        if (have_model) return fail(error, "duplicate \"model\" key");
        if (!parse_string(&out->model)) {
          return fail(error, "\"model\" must be a string");
        }
        have_model = true;
      } else if (key == "inputs") {
        if (have_inputs) return fail(error, "duplicate \"inputs\" key");
        if (!consume('[')) {
          return fail(error, "\"inputs\" must be an array of hex strings");
        }
        skip_ws();
        if (!consume(']')) {
          while (true) {
            std::string item;
            if (!parse_string(&item)) {
              return fail(error, "\"inputs\" must be an array of hex strings");
            }
            out->inputs_hex.push_back(std::move(item));
            skip_ws();
            if (consume(']')) break;
            if (!consume(',')) return fail(error, "expected ',' or ']'");
            skip_ws();
          }
        }
        have_inputs = true;
      } else {
        return fail(error, "unknown key \"" + key +
                               "\" (expected \"model\" and \"inputs\")");
      }
      skip_ws();
      if (consume('}')) break;
      if (!consume(',')) return fail(error, "expected ',' or '}'");
      skip_ws();
    }
    skip_ws();
    if (pos_ != text_.size()) return fail(error, "trailing content");
    if (!have_model) return fail(error, "missing \"model\"");
    if (!have_inputs || out->inputs_hex.empty()) {
      return fail(error, "missing or empty \"inputs\"");
    }
    return true;
  }

 private:
  static bool fail(std::string* error, std::string message) {
    if (error != nullptr) *error = std::move(message);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_string(std::string* out) {
    skip_ws();
    if (!consume('"')) return false;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') return false;  // model names / hex need none
      *out += text_[pos_++];
    }
    return consume('"');
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool parse_classify_request(const std::string& body, ClassifyRequest* out,
                            std::string* error) {
  return RequestScanner(body).parse(out, error);
}

bool decode_inputs(const std::vector<std::string>& inputs_hex,
                   std::size_t input_bits, nn::Mat* rows,
                   std::string* error) {
  const std::size_t bytes_needed = input_bits / 8;
  *rows = nn::Mat(inputs_hex.size(), input_bits);
  for (std::size_t i = 0; i < inputs_hex.size(); ++i) {
    std::vector<std::uint8_t> bytes;
    try {
      bytes = util::from_hex(inputs_hex[i]);
    } catch (const std::invalid_argument& e) {
      if (error != nullptr) {
        *error = "inputs[" + std::to_string(i) + "]: " + e.what();
      }
      return false;
    }
    if (bytes.size() != bytes_needed) {
      if (error != nullptr) {
        *error = "inputs[" + std::to_string(i) + "]: got " +
                 std::to_string(bytes.size()) + " bytes, model expects " +
                 std::to_string(bytes_needed);
      }
      return false;
    }
    util::bits_to_floats(bytes, rows->row(i));
  }
  return true;
}

std::string render_classify_response(const ModelEntry& entry,
                                     const nn::Mat& probs) {
  std::vector<std::string> predictions;
  predictions.reserve(probs.rows());
  for (std::size_t r = 0; r < probs.rows(); ++r) {
    const float* row = probs.row(r);
    std::size_t best = 0;
    for (std::size_t c = 1; c < probs.cols(); ++c) {
      if (row[c] > row[best]) best = c;
    }
    std::vector<std::string> prob_items;
    prob_items.reserve(probs.cols());
    for (std::size_t c = 0; c < probs.cols(); ++c) {
      // Same "%.6g"-with-null-for-nonfinite rendering as JsonBuilder, so a
      // probability prints identically wherever it appears in an artifact.
      char buf[64];
      if (std::isfinite(row[c])) {
        std::snprintf(buf, sizeof(buf), "%.6g", static_cast<double>(row[c]));
      } else {
        std::snprintf(buf, sizeof(buf), "null");
      }
      prob_items.emplace_back(buf);
    }
    util::JsonBuilder pred;
    pred.field("class", static_cast<std::uint64_t>(best))
        .raw("probs", util::JsonBuilder::array(prob_items));
    predictions.push_back(pred.str());
  }
  util::JsonBuilder j;
  j.field("model", entry.name)
      .field("config_hash", entry.config_hash)
      .raw("predictions", util::JsonBuilder::array(predictions));
  return j.str();
}

void log_access(const AccessRecord& rec, int slow_request_ms) {
  const bool slow =
      slow_request_ms > 0 &&
      rec.e2e_ns >=
          static_cast<std::uint64_t>(slow_request_ms) * 1'000'000ull;
  obs::LogRecord line = slow ? obs::log_warn("serve.access", "slow request")
                             : obs::log_info("serve.access", "request");
  line.field("method", "POST")
      .field("path", "/v1/classify")
      .field("model", rec.model)
      .field("rows", static_cast<std::uint64_t>(rec.rows))
      .field("batch", static_cast<std::uint64_t>(rec.batch_rows))
      .field("queue_wait_ns", rec.queue_wait_ns)
      .field("e2e_ns", rec.e2e_ns)
      .field("status", rec.status)
      .field("request_id", rec.request_id);
}

}  // namespace mldist::serve
