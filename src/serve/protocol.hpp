// The /v1/classify wire format.
//
// Request (POST body):
//   {"model":"<registry name>","inputs":["<hex>","<hex>",...]}
// Each input is the hex encoding of one observable — the output-difference
// bytes an oracle answers with (t=2: one ciphertext pair's difference) —
// and must be exactly input_bits/8 bytes for the named model.
//
// Response:
//   {"model":"...","config_hash":"...",
//    "predictions":[{"class":1,"probs":[0.31,0.69]},...]}
// One prediction per input, in request order: the argmax class (the
// difference index the distinguisher believes produced the observable, or
// the "random" verdict for a 2-class real-vs-random model) plus the full
// softmax distribution.  The body is a pure function of (model weights,
// inputs): probabilities come from the batched predict contract under
// which each row's output is independent of its batch, so batched and
// batch-size-1 serving return byte-identical bodies (pinned by
// bench/serving_saturation.cpp).
//
// The request parser is a purpose-built reader for exactly this shape —
// the serving plane's input is machine-generated, so unknown keys are
// rejected rather than skipped (fail loudly beats serving a request whose
// options were silently ignored).
#pragma once

#include <string>
#include <vector>

#include "nn/mat.hpp"

namespace mldist::serve {

struct ModelEntry;

struct ClassifyRequest {
  std::string model;
  std::vector<std::string> inputs_hex;
};

/// Parse a /v1/classify body.  Returns false with a client-facing message
/// in `error` on malformed JSON, missing/unknown keys or empty inputs.
bool parse_classify_request(const std::string& body, ClassifyRequest* out,
                            std::string* error);

/// Decode the hex inputs into one feature row per input (bit-unpacked, the
/// encoding every classifier in the repo consumes).  Returns false with a
/// message when an input is not valid hex of exactly input_bits/8 bytes.
bool decode_inputs(const std::vector<std::string>& inputs_hex,
                   std::size_t input_bits, nn::Mat* rows, std::string* error);

/// Render the response body for `probs` (one row per input, `classes`
/// softmax columns) as produced by Sequential::predict_proba.
std::string render_classify_response(const ModelEntry& entry,
                                     const nn::Mat& probs);

}  // namespace mldist::serve
