// The /v1/classify wire format.
//
// Request (POST body):
//   {"model":"<registry name>","inputs":["<hex>","<hex>",...]}
// Each input is the hex encoding of one observable — the output-difference
// bytes an oracle answers with (t=2: one ciphertext pair's difference) —
// and must be exactly input_bits/8 bytes for the named model.
//
// Response:
//   {"model":"...","config_hash":"...",
//    "predictions":[{"class":1,"probs":[0.31,0.69]},...]}
// One prediction per input, in request order: the argmax class (the
// difference index the distinguisher believes produced the observable, or
// the "random" verdict for a 2-class real-vs-random model) plus the full
// softmax distribution.  The body is a pure function of (model weights,
// inputs): probabilities come from the batched predict contract under
// which each row's output is independent of its batch, so batched and
// batch-size-1 serving return byte-identical bodies (pinned by
// bench/serving_saturation.cpp).
//
// The request parser is a purpose-built reader for exactly this shape —
// the serving plane's input is machine-generated, so unknown keys are
// rejected rather than skipped (fail loudly beats serving a request whose
// options were silently ignored).
#pragma once

#include <string>
#include <vector>

#include "nn/mat.hpp"

namespace mldist::serve {

struct ModelEntry;

struct ClassifyRequest {
  std::string model;
  std::vector<std::string> inputs_hex;
};

/// Parse a /v1/classify body.  Returns false with a client-facing message
/// in `error` on malformed JSON, missing/unknown keys or empty inputs.
bool parse_classify_request(const std::string& body, ClassifyRequest* out,
                            std::string* error);

/// Decode the hex inputs into one feature row per input (bit-unpacked, the
/// encoding every classifier in the repo consumes).  Returns false with a
/// message when an input is not valid hex of exactly input_bits/8 bytes.
bool decode_inputs(const std::vector<std::string>& inputs_hex,
                   std::size_t input_bits, nn::Mat* rows, std::string* error);

/// Render the response body for `probs` (one row per input, `classes`
/// softmax columns) as produced by Sequential::predict_proba.
std::string render_classify_response(const ModelEntry& entry,
                                     const nn::Mat& probs);

/// Everything one /v1/classify access-log line carries (DESIGN.md §16).
/// Inline rejections (400/404/503) log with batch_rows/queue_wait_ns = 0;
/// batched answers log after the forward with the real queue/batch shape.
struct AccessRecord {
  std::string model;              ///< "" when the body never parsed
  std::size_t rows = 0;           ///< inputs in the request
  std::size_t batch_rows = 0;     ///< rows of the batch that answered it
  std::uint64_t queue_wait_ns = 0;
  std::uint64_t e2e_ns = 0;
  int status = 0;                 ///< HTTP status answered
  std::string request_id;
};

/// Emit exactly one structured JSONL line for a /v1/classify request via
/// obs::Logger (component "serve.access").  A request slower than
/// `slow_request_ms` (0 = off) logs at warn, which force-drains the logger
/// ring — the slow request is on the sink before anything else happens.
void log_access(const AccessRecord& rec, int slow_request_ms);

}  // namespace mldist::serve
