#include "serve/registry.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "core/model_io.hpp"
#include "obs/log.hpp"
#include "util/crc32.hpp"
#include "util/json.hpp"

namespace mldist::serve {

namespace {

std::string entry_json(const ModelEntry& e) {
  util::JsonBuilder j;
  j.field("name", e.name)
      .field("arch", e.arch)
      .field("input_bits", static_cast<std::uint64_t>(e.input_bits))
      .field("classes", static_cast<std::uint64_t>(e.classes))
      .field("params", static_cast<std::uint64_t>(e.params))
      .field("config_hash", e.config_hash);
  return j.str();
}

}  // namespace

std::size_t ModelRegistry::load_dir(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    throw std::runtime_error("model registry: not a directory: " + dir);
  }
  std::vector<fs::path> files;
  for (const auto& de : fs::directory_iterator(dir, ec)) {
    if (de.path().extension() == ".nnb") files.push_back(de.path());
  }
  if (ec) {
    throw std::runtime_error("model registry: cannot read " + dir + ": " +
                             ec.message());
  }
  std::sort(files.begin(), files.end());

  for (const fs::path& path : files) {
    // load_model rebuilds the named architecture and CRC-verifies the
    // parameter payload; both failure modes throw with the path included.
    core::LoadedModel loaded = core::load_model(path.string());
    ModelEntry e;
    e.name = path.stem().string();
    if (find(e.name) != nullptr) {
      throw std::runtime_error("model registry: duplicate model name '" +
                               e.name + "' (from " + path.string() + ")");
    }
    e.arch = loaded.arch;
    e.input_bits = loaded.input_bits;
    e.classes = loaded.classes;
    e.model = std::move(loaded.model);
    e.params = e.model->param_count();
    e.topology = e.model->topology_hash();
    // Identity hash, RunManifest-style: CRC-32 over the entry's config
    // JSON.  Includes the topology hash so two files that merely share an
    // arch *name* but differ structurally cannot collide.
    util::JsonBuilder cfg;
    cfg.field("name", e.name)
        .field("arch", e.arch)
        .field("input_bits", static_cast<std::uint64_t>(e.input_bits))
        .field("classes", static_cast<std::uint64_t>(e.classes))
        .field("topology", static_cast<std::uint64_t>(e.topology));
    const std::string cfg_json = cfg.str();
    char hash[9];
    std::snprintf(hash, sizeof(hash), "%08x",
                  util::crc32(cfg_json.data(), cfg_json.size()));
    e.config_hash = hash;
    // Warm-compile through the IR pass pipeline: the first forward lowers
    // the layer stack, runs the optimisation passes and sizes the executor
    // arena, so request latency never includes compilation.
    nn::Mat warm(1, e.input_bits);
    (void)e.model->predict_proba(warm);
    obs::log_info("serve.registry", "model loaded")
        .field("name", e.name)
        .field("arch", e.arch)
        .field("params", static_cast<std::uint64_t>(e.params))
        .field("config_hash", e.config_hash);
    entries_.push_back(std::move(e));
  }
  return entries_.size();
}

const ModelEntry* ModelRegistry::find(std::string_view name) const {
  for (const ModelEntry& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

std::string ModelRegistry::to_json() const {
  std::vector<std::string> items;
  items.reserve(entries_.size());
  for (const ModelEntry& e : entries_) items.push_back(entry_json(e));
  util::JsonBuilder j;
  j.raw("models", util::JsonBuilder::array(items));
  return j.str();
}

}  // namespace mldist::serve
