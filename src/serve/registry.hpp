// Model registry for the serving daemon (DESIGN.md §15).
//
// A registry directory is the deployment unit: every "*.nnb" file in it is
// one servable distinguisher in the self-describing core::save_model format
// (MLDM1 header naming the architecture + the CRC-32-checked
// nn::save_params payload).  load_dir() rebuilds each architecture through
// the arch zoo, loads and CRC-verifies the parameters, computes the
// identity key (name + config_hash, where config_hash is the CRC-32 of the
// entry's config JSON — the same hashing convention obs::RunManifest uses),
// and warm-compiles the model through the IR pass pipeline so the first
// request never pays graph lowering: Sequential pools ir::Executors
// internally, which is exactly the per-model executor pool the serving
// plane needs.
//
// The registry is immutable after load_dir(): the daemon and its batch
// workers only ever read entries, so no locking is needed on the serving
// path.  Model hot-swap is a restart (or a second daemon on another port).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "nn/model.hpp"

namespace mldist::serve {

struct ModelEntry {
  std::string name;         ///< file stem, the key clients send
  std::string arch;         ///< architecture name from the file header
  std::size_t input_bits = 0;
  std::size_t classes = 0;
  std::size_t params = 0;   ///< trainable parameter count
  /// CRC-32 (8 hex chars) of this entry's config JSON
  /// ({name, arch, input_bits, classes, topology}) — the stable identity a
  /// client can pin to detect a silently swapped model file.
  std::string config_hash;
  std::uint32_t topology = 0;  ///< Sequential::topology_hash()
  std::unique_ptr<nn::Sequential> model;
};

class ModelRegistry {
 public:
  ModelRegistry() = default;
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Load every "*.nnb" file in `dir`, sorted by name so the registry
  /// order (and /v1/models) is deterministic.  Throws std::runtime_error
  /// on an unreadable directory or a corrupt/truncated model file (the
  /// CRC-32 footer check of nn::load_params) and std::invalid_argument on
  /// malformed architecture headers.  Returns the number of models loaded.
  std::size_t load_dir(const std::string& dir);

  /// nullptr when no model of that name is registered.
  const ModelEntry* find(std::string_view name) const;

  std::size_t size() const { return entries_.size(); }
  const std::vector<ModelEntry>& entries() const { return entries_; }

  /// The /v1/models response body:
  /// {"models":[{"name":...,"arch":...,"input_bits":...,"classes":...,
  ///             "params":...,"config_hash":...},...]}
  std::string to_json() const;

 private:
  std::vector<ModelEntry> entries_;
};

}  // namespace mldist::serve
