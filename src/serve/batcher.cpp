#include "serve/batcher.hpp"

#include <unistd.h>

#include <chrono>
#include <cstring>
#include <exception>

#include "obs/http.hpp"
#include "obs/log.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"

namespace mldist::serve {

namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ModelWorker::ModelWorker(const ModelEntry& entry, const BatchOptions& options)
    : entry_(entry), opt_(options) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  batch_size_hist_ = reg.histogram("serve.batch_size");
  queue_wait_hist_ = reg.histogram("serve.queue_wait_ns");
  e2e_hist_ = reg.histogram("serve.e2e_ns");
  const std::string prefix = "serve.model." + entry_.name;
  requests_ctr_ = reg.counter(prefix + ".requests");
  rows_ctr_ = reg.counter(prefix + ".rows");
  batches_ctr_ = reg.counter(prefix + ".batches");
  queue_depth_gauge_ = reg.gauge(prefix + ".queue_depth");
  reg.set_gauge(queue_depth_gauge_, 0);
  thread_ = std::thread([this] { loop(); });
}

bool ModelWorker::submit(ClassifyJob&& job) {
  if (job.rows == 0 || job.rows > opt_.batch_max_rows) return false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return false;
    if (queued_rows_ + job.rows > opt_.queue_max_rows) return false;
    job.enqueue_ns = steady_ns();
    queued_rows_ += job.rows;
    queue_.push_back(std::move(job));
    // Inside mu_ so depth updates are ordered; the registry's own lock
    // never calls back into serve code, so no cycle.
    obs::MetricsRegistry::global().set_gauge(queue_depth_gauge_, queued_rows_);
  }
  cv_.notify_one();
  return true;
}

void ModelWorker::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      // Already stopping; fall through to join in case the first caller
      // has not finished it yet (stop() is idempotent, not concurrent).
    }
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void ModelWorker::loop() {
  while (true) {
    std::vector<ClassifyJob> batch;
    std::size_t rows = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ with nothing left to drain
      // Coalescing window: from the FIRST waiting job, give the rest of
      // the in-flight requests up to batch_window_us to arrive, unless the
      // batch is already full.  On shutdown the window is skipped — drain
      // at whatever batch sizes the queue holds.
      if (opt_.batch_window_us > 0) {
        const auto window_end =
            std::chrono::steady_clock::time_point(
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::nanoseconds(queue_.front().enqueue_ns) +
                    std::chrono::microseconds(opt_.batch_window_us)));
        cv_.wait_until(lock, window_end, [this] {
          return stop_ || queued_rows_ >= opt_.batch_max_rows;
        });
      }
      while (!queue_.empty()) {
        ClassifyJob& j = queue_.front();
        if (!batch.empty() && rows + j.rows > opt_.batch_max_rows) break;
        rows += j.rows;
        batch.push_back(std::move(j));
        queue_.pop_front();
      }
      queued_rows_ -= rows;
      obs::MetricsRegistry::global().set_gauge(queue_depth_gauge_,
                                               queued_rows_);
    }
    run_batch(batch, rows);
  }
}

void ModelWorker::run_batch(std::vector<ClassifyJob>& batch,
                            std::size_t rows) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  const std::uint64_t assembled_ns = steady_ns();
  reg.observe(batch_size_hist_, rows);
  reg.add(batches_ctr_);
  for (const ClassifyJob& job : batch) {
    reg.observe(queue_wait_hist_, assembled_ns - job.enqueue_ns);
  }

  // One batched forward for every coalesced request.  Row independence
  // (nn/model.hpp predict contract) makes each row's probabilities
  // bitwise identical to a batch-size-1 run, so coalescing is invisible
  // to clients byte-for-byte.
  nn::Mat x(rows, entry_.input_bits);
  std::size_t r = 0;
  for (const ClassifyJob& job : batch) {
    std::memcpy(x.row(r), job.features.data(),
                job.rows * entry_.input_bits * sizeof(float));
    r += job.rows;
  }
  nn::Mat probs;
  std::string failure;
  try {
    probs = entry_.model->predict_proba(x);
  } catch (const std::exception& e) {
    failure = e.what();
    obs::log_error("serve.batcher", "batched predict failed")
        .field("model", entry_.name)
        .field("what", failure);
  }

  r = 0;
  for (ClassifyJob& job : batch) {
    const std::string rid_header =
        job.request_id.empty() ? std::string()
                               : "X-Request-Id: " + job.request_id + "\r\n";
    std::string response;
    int status = 200;
    if (!failure.empty()) {
      status = 500;
      response = obs::http_response(500, "Internal Server Error", "text/plain",
                                    "inference failed: " + failure + "\n",
                                    rid_header);
    } else {
      // Slice this job's rows back out of the batched result.
      nn::Mat mine(job.rows, probs.cols());
      std::memcpy(mine.data(), probs.row(r),
                  job.rows * probs.cols() * sizeof(float));
      response = obs::http_response(
          200, "OK", "application/json",
          render_classify_response(entry_, mine) + "\n", rid_header);
    }
    r += job.rows;
    reg.add(requests_ctr_);
    reg.add(rows_ctr_, job.rows);
    const std::uint64_t e2e_ns = steady_ns() - job.enqueue_ns;
    reg.observe(e2e_hist_, e2e_ns);
    AccessRecord access;
    access.model = entry_.name;
    access.rows = job.rows;
    access.batch_rows = rows;
    access.queue_wait_ns = assembled_ns - job.enqueue_ns;
    access.e2e_ns = e2e_ns;
    access.status = status;
    access.request_id = job.request_id;
    // Log before the response leaves: a client holding its answer can rely
    // on the access record existing (at worst still in the logger ring).
    log_access(access, opt_.slow_request_ms);
    if (job.fd >= 0) {
      obs::send_all(job.fd, response);
      ::close(job.fd);
      job.fd = -1;
    }
    answered_.fetch_add(1, std::memory_order_relaxed);
  }
  batches_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace mldist::serve
