#include "serve/daemon.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "obs/export.hpp"
#include "obs/http.hpp"
#include "obs/log.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"
#include "util/json.hpp"
#include "util/process.hpp"
#include "util/rng.hpp"

namespace mldist::serve {

namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// A client-supplied X-Request-Id, made safe to echo into a header and a
/// JSON log field: non-printable bytes, quotes and backslashes become '_',
/// length capped at 64.  An absent header ("") means "generate one".
std::string sanitize_request_id(std::string rid) {
  if (rid.size() > 64) rid.resize(64);
  for (char& c : rid) {
    if (c < 0x21 || c > 0x7e || c == '"' || c == '\\') c = '_';
  }
  return rid;
}

}  // namespace

/// One in-flight connection owned by the event loop.
struct ServeDaemon::Conn {
  int fd = -1;
  obs::HttpRequestReader reader;
  std::uint64_t deadline_ns = 0;
  std::uint64_t accept_ns = 0;  ///< e2e clock for inline-answered requests
  std::string out;            ///< inline response being written
  std::size_t out_off = 0;
  bool writing = false;

  Conn(int fd_, std::size_t max_body, std::uint64_t deadline,
       std::uint64_t accepted)
      : fd(fd_), reader(8 * 1024, max_body), deadline_ns(deadline),
        accept_ns(accepted) {}
};

ServeDaemon::ServeDaemon(const ModelRegistry& registry)
    : registry_(registry) {}

ServeDaemon::~ServeDaemon() { stop(); }

bool ServeDaemon::start(const ServeOptions& options, std::string* error) {
  if (running()) return true;
  opt_ = options;
  const int fd = obs::listen_tcp(opt_.port, opt_.backlog, &port_, error);
  if (fd < 0) return false;
  listen_fd_ = fd;
  util::set_nonblocking(listen_fd_, true);
  workers_.clear();
  for (const ModelEntry& e : registry_.entries()) {
    workers_.push_back(std::make_unique<ModelWorker>(e, opt_.batch));
  }
  stop_.store(false, std::memory_order_release);
  rid_counter_.store(0, std::memory_order_relaxed);
  start_ns_ = steady_ns();

  // /runz detail: per-model live queue depth and served totals, read from
  // the global registry inside the provider (no `this` capture — the
  // provider may be invoked on the metrics-server thread while the daemon
  // is tearing down; it is cleared before the workers are).
  {
    std::vector<std::string> names;
    names.reserve(registry_.size());
    for (const ModelEntry& e : registry_.entries()) names.push_back(e.name);
    obs::RunStatus::global().set_detail_provider([names] {
      const obs::MetricsSnapshot snap =
          obs::MetricsRegistry::global().snapshot();
      const auto value =
          [](const std::vector<std::pair<std::string, std::uint64_t>>& list,
             const std::string& name) -> std::uint64_t {
        for (const auto& [n, v] : list) {
          if (n == name) return v;
        }
        return 0;
      };
      std::vector<std::string> models;
      models.reserve(names.size());
      for (const std::string& name : names) {
        const std::string prefix = "serve.model." + name + ".";
        util::JsonBuilder e;
        e.field("model", name)
            .field("queue_depth", value(snap.gauges, prefix + "queue_depth"))
            .field("requests", value(snap.counters, prefix + "requests"))
            .field("rows", value(snap.counters, prefix + "rows"))
            .field("batches", value(snap.counters, prefix + "batches"));
        models.push_back(e.str());
      }
      util::JsonBuilder j;
      j.raw("models", util::JsonBuilder::array(models));
      return j.str();
    });
  }
  obs::RunStatus::global().set_phase("serve");

  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { event_loop(); });
  obs::log_info("serve.daemon", "serving")
      .field("port", static_cast<std::uint64_t>(port_))
      .field("models", static_cast<std::uint64_t>(registry_.size()))
      .field("batch_window_us",
             static_cast<std::uint64_t>(opt_.batch.batch_window_us))
      .field("batch_max_rows",
             static_cast<std::uint64_t>(opt_.batch.batch_max_rows));
  return true;
}

void ServeDaemon::stop() {
  if (!running()) return;
  obs::RunStatus::global().set_detail_provider(nullptr);
  obs::RunStatus::global().set_phase("idle");
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  // Workers drain their queues (every admitted request is answered), then
  // exit.  Only after that is the listen socket torn down for good.
  for (auto& w : workers_) w->stop();
  workers_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  // Info-level access lines drain opportunistically; force the tail out so
  // a stopped daemon leaves a complete access log behind.
  obs::Logger::global().flush();
  running_.store(false, std::memory_order_release);
  port_ = 0;
}

void ServeDaemon::event_loop() {
  std::vector<std::unique_ptr<Conn>> conns;
  std::vector<pollfd> pfds;
  while (!stop_.load(std::memory_order_acquire)) {
    pfds.clear();
    pfds.push_back(pollfd{listen_fd_, POLLIN, 0});
    for (const auto& c : conns) {
      pfds.push_back(pollfd{c->fd,
                            static_cast<short>(c->writing ? POLLOUT : POLLIN),
                            0});
    }
    // 50ms cap keeps stop() and deadline sweeps prompt even on an idle
    // socket set.
    const int ready = ::poll(pfds.data(), pfds.size(), 50);
    const std::uint64_t now = steady_ns();

    if (ready > 0 && (pfds[0].revents & POLLIN) != 0) {
      // Accept everything that is queued; the fds are close-on-exec so
      // campaign fork+exec workers never inherit a client connection.
      while (true) {
        const int client = obs::accept_cloexec(listen_fd_);
        if (client < 0) break;
        util::set_nonblocking(client, true);
        conns.push_back(std::make_unique<Conn>(
            client, opt_.max_body_bytes,
            now + std::uint64_t(opt_.read_timeout_ms) * 1'000'000ull, now));
      }
    }

    for (std::size_t i = 0; i < conns.size();) {
      Conn& c = *conns[i];
      // Conns accepted above were not part of this round's poll set and
      // have no pfds entry.  Treat them as readable: the client usually
      // sent its request right behind the connect, and the socket is
      // nonblocking so a too-eager read just returns EAGAIN and the conn
      // is polled normally from the next round on.
      const short revents = i + 1 < pfds.size() ? pfds[i + 1].revents : POLLIN;
      bool close_conn = false;

      if (!c.writing && (revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        char buf[4096];
        while (true) {
          const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
          if (n > 0) {
            (void)c.reader.feed(buf, static_cast<std::size_t>(n));
            if (c.reader.complete() || c.reader.failed()) break;
          } else if (n == 0) {
            close_conn = true;  // peer closed mid-request
            break;
          } else {
            if (errno == EINTR) continue;
            if (errno != EAGAIN && errno != EWOULDBLOCK) close_conn = true;
            break;
          }
        }
        if (!close_conn) {
          if (c.reader.failed()) {
            c.out = obs::http_error(c.reader.error_status(), "Bad Request",
                                    c.reader.error_detail());
            c.writing = true;
          } else if (c.reader.complete()) {
            const std::string response = route(c);
            if (c.fd < 0) {
              close_conn = true;  // fd handed to a worker
            } else {
              c.out = response;
              c.writing = true;
            }
          }
        }
      }

      if (!close_conn && !c.writing && now >= c.deadline_ns) {
        c.out = obs::http_error(408, "Request Timeout",
                                "request not completed in time");
        c.writing = true;
      }

      if (!close_conn && c.writing &&
          (revents & (POLLOUT | POLLHUP | POLLERR)) != 0) {
        while (c.out_off < c.out.size()) {
          const ssize_t n = ::send(c.fd, c.out.data() + c.out_off,
                                   c.out.size() - c.out_off, MSG_NOSIGNAL);
          if (n > 0) {
            c.out_off += static_cast<std::size_t>(n);
          } else if (n < 0 && errno == EINTR) {
            continue;
          } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            break;
          } else {
            close_conn = true;  // client went away
            break;
          }
        }
        if (c.out_off >= c.out.size()) close_conn = true;  // fully answered
      }

      if (close_conn) {
        if (conns[i]->fd >= 0) ::close(conns[i]->fd);
        conns[i] = std::move(conns.back());
        conns.pop_back();
        // pfds no longer lines up with conns for the moved element; its
        // events will be picked up on the next poll round.  Re-check the
        // same index with empty revents so reads are never skipped twice.
        if (i + 1 < pfds.size()) pfds[i + 1].revents = 0;
      } else {
        ++i;
      }
    }
  }
  for (auto& c : conns) {
    if (c->fd >= 0) ::close(c->fd);
  }
}

std::string ServeDaemon::route(Conn& conn) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  obs::count("serve.requests");
  const std::string& method = conn.reader.method();
  const std::string& path = conn.reader.path();

  if (method == "POST" && path == "/v1/classify") {
    return handle_classify(conn);
  }
  if (method != "GET") {
    return obs::http_error(405, "Method Not Allowed",
                           "use GET (or POST /v1/classify)");
  }
  if (path == "/v1/models") {
    return obs::http_response(200, "OK", "application/json",
                              registry_.to_json() + "\n");
  }
  if (path == "/metrics") {
    return obs::http_response(
        200, "OK", "text/plain; version=0.0.4; charset=utf-8",
        obs::render_prometheus(obs::MetricsRegistry::global().snapshot()));
  }
  if (path == "/healthz") {
    util::JsonBuilder j;
    j.field("status", "ok")
        .field("models", static_cast<std::uint64_t>(registry_.size()))
        .field("uptime_ns", steady_ns() - start_ns_)
        .field("requests", requests_.load(std::memory_order_relaxed))
        .field("rejected", rejected_.load(std::memory_order_relaxed));
    return obs::http_response(200, "OK", "application/json", j.str() + "\n");
  }
  if (path == "/runz") {
    return obs::http_response(200, "OK", "application/json",
                              obs::RunStatus::global().to_json() + "\n");
  }
  return obs::http_error(404, "Not Found",
                         "unknown path; try /v1/classify /v1/models "
                         "/metrics /healthz /runz");
}

std::string ServeDaemon::handle_classify(Conn& conn) {
  // Request id (DESIGN.md §16): honour the client's X-Request-Id, else
  // derive one from the seeded per-daemon counter.  Every classify answer
  // — inline rejection or batched response — carries the id in its
  // X-Request-Id header and in exactly one access-log line.
  std::string rid = sanitize_request_id(conn.reader.header("x-request-id"));
  if (rid.empty()) {
    const std::uint64_t n =
        rid_counter_.fetch_add(1, std::memory_order_relaxed);
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(
                      util::derive_stream_seed(opt_.request_id_seed, n)));
    rid = buf;
  }
  const std::string rid_header = "X-Request-Id: " + rid + "\r\n";
  const auto reject = [&](int status, const char* status_text,
                          const std::string& message, const std::string& model,
                          std::size_t rows) {
    AccessRecord access;
    access.model = model;
    access.rows = rows;
    access.e2e_ns = steady_ns() - conn.accept_ns;
    access.status = status;
    access.request_id = rid;
    log_access(access, opt_.batch.slow_request_ms);
    return obs::http_response(status, status_text, "text/plain", message + "\n",
                              rid_header);
  };

  ClassifyRequest req;
  std::string error;
  if (!parse_classify_request(conn.reader.body(), &req, &error)) {
    return reject(400, "Bad Request", error, "", 0);
  }
  const ModelEntry* entry = registry_.find(req.model);
  if (entry == nullptr) {
    return reject(404, "Not Found",
                  "unknown model \"" + req.model +
                      "\"; GET /v1/models lists the registry",
                  req.model, req.inputs_hex.size());
  }
  ClassifyJob job;
  job.rows = req.inputs_hex.size();
  job.request_id = rid;
  nn::Mat rows;
  if (!decode_inputs(req.inputs_hex, entry->input_bits, &rows, &error)) {
    return reject(400, "Bad Request", error, req.model, job.rows);
  }
  job.features.assign(rows.data(), rows.data() + rows.rows() * rows.cols());

  ModelWorker* worker = nullptr;
  for (auto& w : workers_) {
    if (&w->entry() == entry) {
      worker = w.get();
      break;
    }
  }
  if (job.rows > opt_.batch.batch_max_rows) {
    return reject(400, "Bad Request",
                  "at most " + std::to_string(opt_.batch.batch_max_rows) +
                      " inputs per request (batch_max_rows)",
                  req.model, job.rows);
  }
  // Hand the connection to the worker: it answers after the batched
  // forward.  The fd must be blocking again — the worker's send_all is a
  // straight blocking write.
  util::set_nonblocking(conn.fd, false);
  job.fd = conn.fd;
  if (worker == nullptr || !worker->submit(std::move(job))) {
    util::set_nonblocking(conn.fd, true);
    rejected_.fetch_add(1, std::memory_order_relaxed);
    obs::count("serve.rejected");
    return reject(503, "Service Unavailable", "queue full; retry with backoff",
                  req.model, req.inputs_hex.size());
  }
  conn.fd = -1;  // ownership transferred
  return std::string();
}

}  // namespace mldist::serve
