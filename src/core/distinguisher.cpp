#include "core/distinguisher.hpp"

#include <cmath>
#include <stdexcept>

#include "core/targets.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace mldist::core {

namespace {
// Stream indices expanding the experiment seed into the independent RNG
// streams of the pipeline phases (util::derive_stream_seed).  Part of the
// reproducibility contract: a report is a pure function of (options, these
// constants), never of the worker count.
constexpr std::uint64_t kOfflineTrainStream = 0x0ff1a0ULL;
constexpr std::uint64_t kOfflineValStream = 0x0ff1a1ULL;
constexpr std::uint64_t kShuffleStream = 0x5aff1eULL;

/// Invoke fn(pool*) with the pool implied by `threads` (0 = process-wide
/// pool; otherwise a dedicated pool).  Inside an enclosing parallel region
/// the global pool is passed instead — nested parallel_for inlines anyway,
/// so spawning a fresh pool would only waste threads.
template <typename Fn>
auto with_pool(std::size_t threads, Fn&& fn) {
  if (threads == 0 || util::ThreadPool::in_parallel_region()) {
    return fn(static_cast<util::ThreadPool*>(nullptr));
  }
  util::ThreadPool pool(threads);  // a 1-thread pool runs everything inline
  return fn(&pool);
}
}  // namespace

DistinguisherOptions::DistinguisherOptions(const ExperimentConfig& config)
    : epochs(config.epochs),
      batch_size(config.batch_size),
      learning_rate(config.learning_rate),
      validation_fraction(config.validation_fraction),
      z_threshold(config.z_threshold),
      seed(config.seed),
      threads(config.threads),
      on_epoch(config.on_epoch) {}

CollectOptions DistinguisherOptions::collect_options(
    std::uint64_t stream_seed) const {
  CollectOptions c;
  c.seed = stream_seed;
  c.threads = threads;
  c.chunk_base_inputs = collect_chunk;
  return c;
}

nn::FitOptions DistinguisherOptions::fit_options(
    std::uint64_t shuffle_seed, const nn::Dataset* validation) const {
  nn::FitOptions fit;
  fit.epochs = epochs;
  fit.batch_size = batch_size;
  fit.shuffle_seed = shuffle_seed;
  fit.validation = validation;
  if (on_epoch) {
    // Forward by reference: the closure state lives once, in this options
    // struct, not duplicated into every FitOptions built from it.
    fit.on_epoch = [cb = &on_epoch](const nn::EpochStats& s) { (*cb)(s); };
  }
  return fit;
}

MLDistinguisher::MLDistinguisher(std::unique_ptr<nn::Sequential> model,
                                 DistinguisherOptions options)
    : model_(std::move(model)), options_(std::move(options)) {
  if (!model_) throw std::invalid_argument("MLDistinguisher: null model");
}

MLDistinguisher::MLDistinguisher(const Target& target,
                                 const ExperimentConfig& config)
    : MLDistinguisher(config.make_model(target),
                      DistinguisherOptions(config)) {}

TrainReport MLDistinguisher::train(const Target& target,
                                   std::size_t base_inputs) {
  t_ = target.num_differences();

  const std::size_t val_base = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(base_inputs) *
                                  options_.validation_fraction));
  const std::size_t train_base =
      base_inputs > val_base ? base_inputs - val_base : 1;

  PhaseTelemetry collect_tel;
  PhaseTelemetry val_tel;
  const nn::Dataset train_set = collect_dataset(
      target, train_base,
      options_.collect_options(
          util::derive_stream_seed(options_.seed, kOfflineTrainStream)),
      &collect_tel);
  const nn::Dataset val_set = collect_dataset(
      target, val_base,
      options_.collect_options(
          util::derive_stream_seed(options_.seed, kOfflineValStream)),
      &val_tel);
  collect_tel.seconds += val_tel.seconds;
  collect_tel.queries += val_tel.queries;
  collect_tel.rows += val_tel.rows;

  nn::Adam opt(options_.learning_rate);
  const nn::FitOptions fit = options_.fit_options(
      util::derive_stream_seed(options_.seed, kShuffleStream), &val_set);
  const util::Timer fit_timer;
  const nn::EpochStats stats = model_->fit(train_set, opt, fit);

  train_report_ = TrainReport{};
  train_report_.train_accuracy = stats.train_accuracy;
  train_report_.val_accuracy = stats.val_accuracy;
  train_report_.train_loss = stats.train_loss;
  train_report_.samples = train_set.size() + val_set.size();
  train_report_.collect = collect_tel;
  train_report_.fit.seconds = fit_timer.seconds();
  train_report_.fit.rows =
      train_set.size() * static_cast<std::size_t>(std::max(0, options_.epochs));
  train_report_.fit.threads = util::ThreadPool::global().thread_count();
  train_report_.seconds_per_epoch =
      options_.epochs > 0
          ? train_report_.fit.seconds / static_cast<double>(options_.epochs)
          : 0.0;
  // Each base input costs t+1 oracle queries (the base and its t partners).
  train_report_.log2_data =
      std::log2(static_cast<double>(base_inputs * (t_ + 1)));
  // Algorithm 2 line 12: proceed only when a > 1/t.  With finite data we
  // ask for a z_threshold-sigma margin on the validation set.
  const std::size_t val_rows = val_set.size();
  const double z = util::binomial_z_score(
      static_cast<std::size_t>(
          std::lround(stats.val_accuracy * static_cast<double>(val_rows))),
      val_rows, util::random_guess_accuracy(t_));
  train_report_.usable = z > options_.z_threshold;
  return train_report_;
}

OnlineReport MLDistinguisher::test(const Oracle& oracle,
                                   std::size_t base_inputs,
                                   std::uint64_t seed) const {
  if (t_ == 0) {
    throw std::logic_error("MLDistinguisher::test called before train");
  }
  if (oracle.num_differences() != t_) {
    throw std::invalid_argument("MLDistinguisher: oracle t mismatch");
  }
  const std::uint64_t stream =
      seed != 0 ? seed : (options_.seed ^ 0x0417e57ULL);

  OnlineReport rep;
  const nn::Dataset online = collect_dataset(
      oracle, base_inputs, options_.collect_options(stream), &rep.collect);

  const util::Timer predict_timer;
  const std::vector<int> pred = with_pool(options_.threads, [&](util::ThreadPool* pool) {
    return model_->predict(online.x, /*batch_size=*/512, pool);
  });
  rep.predict.seconds = predict_timer.seconds();
  rep.predict.rows = pred.size();
  rep.predict.threads = rep.collect.threads;

  std::size_t hits = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == online.y[i]) ++hits;
  }
  rep.samples = pred.size();
  rep.accuracy = static_cast<double>(hits) / static_cast<double>(pred.size());
  rep.log2_data = std::log2(static_cast<double>(base_inputs * (t_ + 1)));
  rep.z_vs_random = util::binomial_z_score(hits, pred.size(),
                                           util::random_guess_accuracy(t_));
  rep.verdict = decide(rep.accuracy, rep.samples);
  return rep;
}

Verdict MLDistinguisher::decide(double online_accuracy,
                                std::size_t online_samples) const {
  const double p0 = util::random_guess_accuracy(t_);
  const double a = train_report_.val_accuracy;
  const double se =
      std::sqrt(p0 * (1.0 - p0) / static_cast<double>(online_samples));
  // The paper's rule compares a' against a (CIPHER) and 1/t (RANDOM).
  // When the training advantage a - 1/t is resolvable at this online
  // sample size, the midpoint between the two hypotheses is the
  // maximum-likelihood threshold.
  if (se > 0.0 && (a - p0) > options_.z_threshold * se) {
    return online_accuracy > p0 + 0.5 * (a - p0) ? Verdict::kCipher
                                                 : Verdict::kRandom;
  }
  // Underpowered game: only a significant positive excursion over 1/t can
  // still be called; anything else is inconclusive.
  const std::size_t hits = static_cast<std::size_t>(
      std::lround(online_accuracy * static_cast<double>(online_samples)));
  const double z_random = util::binomial_z_score(hits, online_samples, p0);
  if (z_random > options_.z_threshold) return Verdict::kCipher;
  return Verdict::kInconclusive;
}

}  // namespace mldist::core
