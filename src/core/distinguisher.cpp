#include "core/distinguisher.hpp"

#include <cmath>
#include <stdexcept>

#include "util/stats.hpp"

namespace mldist::core {

MLDistinguisher::MLDistinguisher(std::unique_ptr<nn::Sequential> model,
                                 DistinguisherOptions options)
    : model_(std::move(model)), options_(std::move(options)) {
  if (!model_) throw std::invalid_argument("MLDistinguisher: null model");
}

TrainReport MLDistinguisher::train(const Target& target,
                                   std::size_t base_inputs) {
  t_ = target.num_differences();
  util::Xoshiro256 rng(options_.seed);

  const std::size_t val_base = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(base_inputs) *
                                  options_.validation_fraction));
  const std::size_t train_base =
      base_inputs > val_base ? base_inputs - val_base : 1;

  const nn::Dataset train_set = collect_dataset(target, train_base, rng);
  const nn::Dataset val_set = collect_dataset(target, val_base, rng);

  nn::Adam opt(options_.learning_rate);
  nn::FitOptions fit;
  fit.epochs = options_.epochs;
  fit.batch_size = options_.batch_size;
  fit.shuffle_seed = rng.next_u64();
  fit.validation = &val_set;
  fit.on_epoch = options_.on_epoch;
  const nn::EpochStats stats = model_->fit(train_set, opt, fit);

  train_report_ = TrainReport{};
  train_report_.train_accuracy = stats.train_accuracy;
  train_report_.val_accuracy = stats.val_accuracy;
  train_report_.train_loss = stats.train_loss;
  train_report_.samples = train_set.size() + val_set.size();
  // Each base input costs t+1 oracle queries (the base and its t partners).
  train_report_.log2_data =
      std::log2(static_cast<double>(base_inputs * (t_ + 1)));
  // Algorithm 2 line 12: proceed only when a > 1/t.  With finite data we
  // ask for a z_threshold-sigma margin on the validation set.
  const std::size_t val_rows = val_set.size();
  const double z = util::binomial_z_score(
      static_cast<std::size_t>(
          std::lround(stats.val_accuracy * static_cast<double>(val_rows))),
      val_rows, util::random_guess_accuracy(t_));
  train_report_.usable = z > options_.z_threshold;
  return train_report_;
}

OnlineReport MLDistinguisher::test(const Oracle& oracle,
                                   std::size_t base_inputs,
                                   std::uint64_t seed) const {
  if (t_ == 0) {
    throw std::logic_error("MLDistinguisher::test called before train");
  }
  if (oracle.num_differences() != t_) {
    throw std::invalid_argument("MLDistinguisher: oracle t mismatch");
  }
  util::Xoshiro256 rng(seed != 0 ? seed
                                 : (options_.seed ^ 0x0417e57ULL));
  const nn::Dataset online = collect_dataset(oracle, base_inputs, rng);
  const std::vector<int> pred = model_->predict(online.x);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == online.y[i]) ++hits;
  }
  OnlineReport rep;
  rep.samples = pred.size();
  rep.accuracy = static_cast<double>(hits) / static_cast<double>(pred.size());
  rep.log2_data = std::log2(static_cast<double>(base_inputs * (t_ + 1)));
  rep.z_vs_random = util::binomial_z_score(hits, pred.size(),
                                           util::random_guess_accuracy(t_));
  rep.verdict = decide(rep.accuracy, rep.samples);
  return rep;
}

Verdict MLDistinguisher::decide(double online_accuracy,
                                std::size_t online_samples) const {
  const double p0 = util::random_guess_accuracy(t_);
  const double a = train_report_.val_accuracy;
  const double se =
      std::sqrt(p0 * (1.0 - p0) / static_cast<double>(online_samples));
  // The paper's rule compares a' against a (CIPHER) and 1/t (RANDOM).
  // When the training advantage a - 1/t is resolvable at this online
  // sample size, the midpoint between the two hypotheses is the
  // maximum-likelihood threshold.
  if (se > 0.0 && (a - p0) > options_.z_threshold * se) {
    return online_accuracy > p0 + 0.5 * (a - p0) ? Verdict::kCipher
                                                 : Verdict::kRandom;
  }
  // Underpowered game: only a significant positive excursion over 1/t can
  // still be called; anything else is inconclusive.
  const std::size_t hits = static_cast<std::size_t>(
      std::lround(online_accuracy * static_cast<double>(online_samples)));
  const double z_random = util::binomial_z_score(hits, online_samples, p0);
  if (z_random > options_.z_threshold) return Verdict::kCipher;
  return Verdict::kInconclusive;
}

}  // namespace mldist::core
