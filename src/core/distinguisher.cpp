#include "core/distinguisher.hpp"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <stdexcept>

#include "core/linear_baseline.hpp"
#include "core/targets.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

#include <unistd.h>

namespace mldist::core {

namespace {
// Stream indices expanding the experiment seed into the independent RNG
// streams of the pipeline phases (util::derive_stream_seed).  Part of the
// reproducibility contract: a report is a pure function of (options, these
// constants), never of the worker count.
constexpr std::uint64_t kOfflineTrainStream = 0x0ff1a0ULL;
constexpr std::uint64_t kOfflineValStream = 0x0ff1a1ULL;
constexpr std::uint64_t kShuffleStream = 0x5aff1eULL;
constexpr std::uint64_t kBaselineStream = 0xba5e11eULL;

/// Invoke fn(pool*) with the pool implied by `threads` (0 = process-wide
/// pool; otherwise a dedicated pool).  Inside an enclosing parallel region
/// the global pool is passed instead — nested parallel_for inlines anyway,
/// so spawning a fresh pool would only waste threads.
template <typename Fn>
auto with_pool(std::size_t threads, Fn&& fn) {
  if (threads == 0 || util::ThreadPool::in_parallel_region()) {
    return fn(static_cast<util::ThreadPool*>(nullptr));
  }
  util::ThreadPool pool(threads);  // a 1-thread pool runs everything inline
  return fn(&pool);
}

/// A collision-free checkpoint path under the temp directory for callers
/// that did not configure one (pid + process-local counter: concurrent
/// trainings, in this process or in parallel ctest jobs, never clash).
std::string auto_checkpoint_path(std::uint64_t seed) {
  static std::atomic<unsigned> counter{0};
  char name[96];
  std::snprintf(name, sizeof(name), "mldist-ckpt-%llx-%d-%u.nnb",
                static_cast<unsigned long long>(seed),
                static_cast<int>(::getpid()),
                counter.fetch_add(1, std::memory_order_relaxed));
  return (std::filesystem::temp_directory_path() / name).string();
}

/// The training fault injector: set one weight to NaN so the next forward
/// pass produces a non-finite loss for the health guard to catch.
void poison_first_weight(nn::Sequential& model) {
  const auto params = model.params();
  if (!params.empty() && params.front().size > 0) {
    params.front().value[0] = std::numeric_limits<float>::quiet_NaN();
  }
}
}  // namespace

DistinguisherOptions::DistinguisherOptions(const ExperimentConfig& config)
    : epochs(config.epochs),
      batch_size(config.batch_size),
      learning_rate(config.learning_rate),
      validation_fraction(config.validation_fraction),
      z_threshold(config.z_threshold),
      seed(config.seed),
      threads(config.threads),
      on_epoch(config.on_epoch) {
  retry.max_attempts = config.max_retries;
  retry.lr_backoff = config.lr_backoff;
  retry.checkpoint_path = config.checkpoint_path;
}

CollectOptions DistinguisherOptions::collect_options(
    std::uint64_t stream_seed) const {
  CollectOptions c;
  c.seed = stream_seed;
  c.threads = threads;
  c.chunk_base_inputs = collect_chunk;
  return c;
}

nn::FitOptions DistinguisherOptions::fit_options(
    std::uint64_t shuffle_seed, const nn::Dataset* validation) const {
  nn::FitOptions fit;
  fit.epochs = epochs;
  fit.batch_size = batch_size;
  fit.shuffle_seed = shuffle_seed;
  fit.validation = validation;
  if (on_epoch) {
    // Forward by reference: the closure state lives once, in this options
    // struct, not duplicated into every FitOptions built from it.
    fit.on_epoch = [cb = &on_epoch](const nn::EpochStats& s) { (*cb)(s); };
  }
  return fit;
}

MLDistinguisher::MLDistinguisher(std::unique_ptr<nn::Sequential> model,
                                 DistinguisherOptions options)
    : model_(std::move(model)), options_(std::move(options)) {
  if (!model_) throw std::invalid_argument("MLDistinguisher: null model");
}

MLDistinguisher::MLDistinguisher(const Target& target,
                                 const ExperimentConfig& config)
    : MLDistinguisher(config.make_model(target),
                      DistinguisherOptions(config)) {}

MLDistinguisher::~MLDistinguisher() = default;

TrainReport MLDistinguisher::train(const Target& target,
                                   std::size_t base_inputs) {
  t_ = target.num_differences();
  baseline_.reset();
  obs::Span train_span("train", "core");
  train_span.arg("base_inputs", static_cast<std::uint64_t>(base_inputs))
      .arg("t", static_cast<std::uint64_t>(t_));

  const std::size_t val_base = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(base_inputs) *
                                  options_.validation_fraction));
  const std::size_t train_base =
      base_inputs > val_base ? base_inputs - val_base : 1;

  // Live status for /runz: which phase the pipeline is in, which epoch the
  // fit has reached.  Purely observational — never read back by the run.
  obs::RunStatus& status = obs::RunStatus::global();
  status.set_phase("offline_collect");
  status.set_epoch(0);

  PhaseTelemetry collect_tel;
  PhaseTelemetry val_tel;
  const nn::Dataset train_set = collect_dataset(
      target, train_base,
      options_.collect_options(
          util::derive_stream_seed(options_.seed, kOfflineTrainStream)),
      &collect_tel);
  const nn::Dataset val_set = collect_dataset(
      target, val_base,
      options_.collect_options(
          util::derive_stream_seed(options_.seed, kOfflineValStream)),
      &val_tel);
  collect_tel.seconds += val_tel.seconds;
  collect_tel.queries += val_tel.queries;
  collect_tel.rows += val_tel.rows;

  // Fault-tolerant fit: every attempt checkpoints its best-validation
  // epoch; a divergence rolls back to that checkpoint and retries with a
  // backed-off learning rate and (optionally) a fresh shuffle stream.
  const bool auto_ckpt = options_.retry.checkpoint_path.empty();
  CheckpointManager ckpt(auto_ckpt ? auto_checkpoint_path(options_.seed)
                                   : options_.retry.checkpoint_path);
  RobustnessTelemetry rob;
  const int max_attempts = std::max(1, options_.retry.max_attempts);
  nn::EpochStats stats;
  bool trained = false;
  float lr = options_.learning_rate;
  status.set_phase("fit");
  const util::Timer fit_timer;
  for (int attempt = 1; attempt <= max_attempts && !trained; ++attempt) {
    obs::Span attempt_span("fit.attempt", "core");
    attempt_span.arg("attempt", attempt);
    rob.attempts = attempt;
    nn::Adam opt(lr);
    nn::HealthMonitor monitor(options_.health);
    // Attempt 1 uses the pre-robustness shuffle stream, so clean runs stay
    // bitwise identical to earlier versions; retries draw fresh streams.
    const std::uint64_t shuffle_stream =
        (options_.retry.reseed && attempt > 1)
            ? kShuffleStream + static_cast<std::uint64_t>(attempt - 1)
            : kShuffleStream;
    nn::FitOptions fit = options_.fit_options(
        util::derive_stream_seed(options_.seed, shuffle_stream), &val_set);
    if (options_.health_checks) fit.health = &monitor;
    const auto forward_cb = fit.on_epoch;
    fit.on_epoch = [&, attempt](const nn::EpochStats& s) {
      obs::RunStatus::global().set_epoch(s.epoch);
      if (forward_cb) forward_cb(s);
      if (s.val_accuracy) ckpt.update(*model_, *s.val_accuracy);
      // Injected training fault (tests / soak bench): poison a weight
      // after the checkpoint so the next epoch diverges and the rollback
      // restores this epoch's healthy state.
      if (options_.faults.poison_weight_epoch > 0 &&
          attempt <= options_.faults.poison_max_attempts &&
          s.epoch == options_.faults.poison_weight_epoch) {
        poison_first_weight(*model_);
      }
    };
    try {
      stats = model_->fit(train_set, opt, fit);
      trained = true;
    } catch (const nn::TrainingDiverged& e) {
      ++rob.divergences;
      rob.last_fault = e.what();
      model_->zero_grad();  // the aborted batch left gradients accumulated
      if (ckpt.has_checkpoint()) {
        ckpt.restore(*model_);
        ++rob.rollbacks;
      }
      lr *= options_.retry.lr_backoff;
    }
  }

  train_report_ = TrainReport{};
  if (trained) {
    train_report_.train_accuracy = stats.train_accuracy;
    train_report_.val_accuracy = stats.val_accuracy.value_or(0.0);
    train_report_.train_loss = stats.train_loss;
  } else {
    // Retries exhausted: degrade to the linear baseline classifier so the
    // online game still gets a usable verdict (recorded in the telemetry).
    rob.degraded_to_baseline = true;
    baseline_ = std::make_unique<LinearSvm>(train_set.x.cols(), t_);
    LinearSvmOptions sopt;
    sopt.epochs = std::max(1, options_.epochs);
    sopt.seed = util::derive_stream_seed(options_.seed, kBaselineStream);
    train_report_.train_accuracy = baseline_->fit(train_set, sopt);
    train_report_.val_accuracy = baseline_->accuracy(val_set);
    train_report_.train_loss = 0.0;
  }
  train_report_.robustness = rob;
  train_report_.samples = train_set.size() + val_set.size();
  train_report_.collect = collect_tel;
  train_report_.fit.seconds = fit_timer.seconds();
  train_report_.fit.rows =
      train_set.size() * static_cast<std::size_t>(std::max(0, options_.epochs));
  train_report_.fit.threads = util::ThreadPool::global().thread_count();
  train_report_.seconds_per_epoch =
      options_.epochs > 0
          ? train_report_.fit.seconds / static_cast<double>(options_.epochs)
          : 0.0;
  // Each base input costs t+1 oracle queries (the base and its t partners).
  train_report_.log2_data =
      std::log2(static_cast<double>(base_inputs * (t_ + 1)));
  // Algorithm 2 line 12: proceed only when a > 1/t.  With finite data we
  // ask for a z_threshold-sigma margin on the validation set.
  const std::size_t val_rows = val_set.size();
  const double z = util::binomial_z_score(
      static_cast<std::size_t>(std::lround(train_report_.val_accuracy *
                                           static_cast<double>(val_rows))),
      val_rows, util::random_guess_accuracy(t_));
  train_report_.usable = z > options_.z_threshold;
  if (auto_ckpt) ckpt.remove_file();
  // Re-emit the report's telemetry as registry views (DESIGN.md §10): the
  // JSON built from the structs is unchanged; the metrics snapshot becomes
  // a superset of it.
  train_report_.collect.publish("offline_collect");
  train_report_.fit.publish("fit");
  train_report_.robustness.publish();
  status.set_phase("idle");
  return train_report_;
}

OnlineReport MLDistinguisher::test(const Oracle& oracle,
                                   std::size_t base_inputs,
                                   std::uint64_t seed) const {
  if (t_ == 0) {
    throw std::logic_error("MLDistinguisher::test called before train");
  }
  if (oracle.num_differences() != t_) {
    throw std::invalid_argument("MLDistinguisher: oracle t mismatch");
  }
  const std::uint64_t stream =
      seed != 0 ? seed : (options_.seed ^ 0x0417e57ULL);

  obs::Span test_span("test", "core");
  test_span.arg("base_inputs", static_cast<std::uint64_t>(base_inputs));
  obs::RunStatus::global().set_phase("online_collect");
  OnlineReport rep;
  const nn::Dataset online = collect_dataset(
      oracle, base_inputs, options_.collect_options(stream), &rep.collect);

  obs::RunStatus::global().set_phase("predict");
  const util::Timer predict_timer;
  // Degraded mode: the neural fit never converged, so score with the
  // linear-baseline fallback instead of the (unusable) network.
  const std::vector<int> pred =
      baseline_ != nullptr
          ? baseline_->predict(online.x)
          : with_pool(options_.threads, [&](util::ThreadPool* pool) {
              return model_->predict(online.x, /*batch_size=*/512, pool);
            });
  rep.predict.seconds = predict_timer.seconds();
  rep.predict.rows = pred.size();
  rep.predict.threads = rep.collect.threads;

  std::size_t hits = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == online.y[i]) ++hits;
  }
  rep.samples = pred.size();
  rep.accuracy = static_cast<double>(hits) / static_cast<double>(pred.size());
  rep.log2_data = std::log2(static_cast<double>(base_inputs * (t_ + 1)));
  rep.z_vs_random = util::binomial_z_score(hits, pred.size(),
                                           util::random_guess_accuracy(t_));
  rep.verdict = decide(rep.accuracy, rep.samples);
  rep.collect.publish("online_collect");
  rep.predict.publish("predict");
  obs::RunStatus::global().set_phase("idle");
  return rep;
}

Verdict MLDistinguisher::decide(double online_accuracy,
                                std::size_t online_samples) const {
  const double p0 = util::random_guess_accuracy(t_);
  const double a = train_report_.val_accuracy;
  const double se =
      std::sqrt(p0 * (1.0 - p0) / static_cast<double>(online_samples));
  // The paper's rule compares a' against a (CIPHER) and 1/t (RANDOM).
  // When the training advantage a - 1/t is resolvable at this online
  // sample size, the midpoint between the two hypotheses is the
  // maximum-likelihood threshold.
  if (se > 0.0 && (a - p0) > options_.z_threshold * se) {
    return online_accuracy > p0 + 0.5 * (a - p0) ? Verdict::kCipher
                                                 : Verdict::kRandom;
  }
  // Underpowered game: only a significant positive excursion over 1/t can
  // still be called; anything else is inconclusive.
  const std::size_t hits = static_cast<std::size_t>(
      std::lround(online_accuracy * static_cast<double>(online_samples)));
  const double z_random = util::binomial_z_score(hits, online_samples, p0);
  if (z_random > options_.z_threshold) return Verdict::kCipher;
  return Verdict::kInconclusive;
}

void MLDistinguisher::adopt_train_report(const TrainReport& report,
                                         std::size_t t) {
  train_report_ = report;
  t_ = t;
  baseline_.reset();
}

}  // namespace mldist::core
