#include "core/linear_baseline.hpp"

#include <algorithm>
#include <numeric>

namespace mldist::core {

LinearSvm::LinearSvm(std::size_t features, std::size_t classes)
    : features_(features), classes_(classes), w_(classes * features, 0.0f),
      b_(classes, 0.0f) {}

void LinearSvm::scores(const float* row, std::vector<float>& out) const {
  out.assign(classes_, 0.0f);
  for (std::size_t c = 0; c < classes_; ++c) {
    const float* wc = w_.data() + c * features_;
    float s = b_[c];
    for (std::size_t j = 0; j < features_; ++j) s += wc[j] * row[j];
    out[c] = s;
  }
}

double LinearSvm::fit(const nn::Dataset& train, const LinearSvmOptions& options) {
  std::vector<std::size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);
  util::Xoshiro256 rng(options.seed);

  std::vector<float> s;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng);
    for (std::size_t idx : order) {
      const float* row = train.x.row(idx);
      const int y = train.y[idx];
      scores(row, s);
      for (std::size_t c = 0; c < classes_; ++c) {
        // One-vs-rest hinge: target +1 for the true class, -1 otherwise.
        const float target = (static_cast<int>(c) == y) ? 1.0f : -1.0f;
        float* wc = w_.data() + c * features_;
        const bool in_margin = target * s[c] < 1.0f;
        for (std::size_t j = 0; j < features_; ++j) {
          float g = options.l2 * wc[j];
          if (in_margin) g -= target * row[j];
          wc[j] -= options.learning_rate * g;
        }
        if (in_margin) b_[c] += options.learning_rate * target;
      }
    }
  }
  return accuracy(train);
}

std::vector<int> LinearSvm::predict(const nn::Mat& x) const {
  std::vector<int> out(x.rows());
  std::vector<float> s;
  for (std::size_t n = 0; n < x.rows(); ++n) {
    scores(x.row(n), s);
    out[n] = static_cast<int>(
        std::max_element(s.begin(), s.end()) - s.begin());
  }
  return out;
}

double LinearSvm::accuracy(const nn::Dataset& data) const {
  if (data.size() == 0) return 0.0;
  const std::vector<int> pred = predict(data.x);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == data.y[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(pred.size());
}

}  // namespace mldist::core
