#include "core/experiment.hpp"

#include <stdexcept>

#include "core/arch_zoo.hpp"
#include "core/targets.hpp"
#include "util/json.hpp"

namespace mldist::core {

std::unique_ptr<Target> ExperimentConfig::make_target() const {
  if (target == "gimli-hash") return std::make_unique<GimliHashTarget>(rounds);
  if (target == "gimli-cipher") return std::make_unique<GimliCipherTarget>(rounds);
  if (target == "speck") return std::make_unique<SpeckTarget>(rounds);
  if (target == "gift64") return std::make_unique<Gift64Target>(rounds);
  if (target == "gift128") return std::make_unique<Gift128Target>(rounds);
  if (target == "toy") return std::make_unique<ToyGiftTarget>();
  if (target == "salsa") return std::make_unique<SalsaTarget>(rounds);
  if (target == "trivium") return std::make_unique<TriviumTarget>(rounds);
  throw std::invalid_argument("ExperimentConfig: unknown target " + target);
}

std::unique_ptr<nn::Sequential> ExperimentConfig::make_model(
    const Target& t) const {
  const std::size_t input_bits = t.output_bytes() * 8;
  const std::size_t classes = t.num_differences();
  util::Xoshiro256 rng(seed);
  if (arch == "default-mlp") {
    return build_default_mlp(input_bits, classes, rng);
  }
  if (arch.rfind("gohr-net/", 0) == 0) {
    const std::size_t depth =
        static_cast<std::size_t>(std::stoul(arch.substr(9)));
    return build_gohr_net(input_bits, classes, depth, rng);
  }
  return build_architecture(arch, input_bits, classes, rng);
}

std::string ExperimentConfig::to_json() const {
  util::JsonBuilder j;
  j.field("target", target)
      .field("rounds", rounds)
      .field("arch", arch)
      .field("epochs", epochs)
      .field("batch_size", batch_size)
      .field("learning_rate", static_cast<double>(learning_rate))
      .field("validation_fraction", validation_fraction)
      .field("z_threshold", z_threshold)
      .field("seed", seed)
      .field("threads", threads)
      .field("offline_base_inputs", offline_base_inputs)
      .field("online_base_inputs", online_base_inputs)
      .field("games", games)
      .field("max_retries", max_retries)
      .field("lr_backoff", static_cast<double>(lr_backoff))
      .field("checkpoint_path", checkpoint_path);
  return j.str();
}

}  // namespace mldist::core
