#include "core/experiment.hpp"

#include <cinttypes>
#include <cstdio>
#include <stdexcept>

#include "core/arch_zoo.hpp"
#include "core/targets.hpp"
#include "util/json.hpp"

namespace mldist::core {

namespace {
// Re-type the generic u64 difference specifiers for a target whose
// constructor wants narrower masks or positions; empty input yields an
// empty vector so the target's own defaults apply.
template <typename T>
std::vector<T> narrow_diffs(const std::vector<std::uint64_t>& in) {
  std::vector<T> out;
  out.reserve(in.size());
  for (std::uint64_t v : in) out.push_back(static_cast<T>(v));
  return out;
}

[[noreturn]] void reject_site(const std::string& target,
                              const std::string& site) {
  throw std::invalid_argument("ExperimentConfig: target " + target +
                              " does not support diff_site \"" + site + "\"");
}
}  // namespace

std::unique_ptr<Target> ExperimentConfig::make_target() const {
  const DiffSite site = parse_diff_site(diff_site);
  const bool related = site == DiffSite::kRelatedKey;

  // Targets with a related-key game: masks + site flow straight through.
  if (target == "speck") {
    if (diffs.empty()) {
      return std::make_unique<SpeckTarget>(
          rounds, std::vector<std::uint32_t>{0x00400000u, 0x00102000u}, site);
    }
    return std::make_unique<SpeckTarget>(
        rounds, narrow_diffs<std::uint32_t>(diffs), site);
  }
  if (target == "simon") {
    if (diffs.empty()) return std::make_unique<SimonTarget>(rounds, std::vector<std::uint64_t>{0x40ULL, 0x4000ULL}, site);
    return std::make_unique<SimonTarget>(rounds, diffs, site);
  }
  if (target == "simeck") {
    if (diffs.empty()) return std::make_unique<SimeckTarget>(rounds, std::vector<std::uint64_t>{0x40ULL, 0x4000ULL}, site);
    return std::make_unique<SimeckTarget>(rounds, diffs, site);
  }
  if (target == "present") {
    if (diffs.empty()) return std::make_unique<PresentTarget>(rounds, std::vector<std::uint64_t>{0x1ULL, 0x10ULL}, site);
    return std::make_unique<PresentTarget>(rounds, diffs, site);
  }
  if (target == "chaskey") {
    if (diffs.empty()) return std::make_unique<ChaskeyTarget>(rounds, std::vector<std::uint64_t>{0x1ULL, 0x80000000ULL}, site);
    return std::make_unique<ChaskeyTarget>(rounds, diffs, site);
  }

  // Plaintext-only targets.
  if (related) reject_site(target, diff_site);
  if (target == "gimli-hash") {
    if (diffs.empty()) return std::make_unique<GimliHashTarget>(rounds);
    return std::make_unique<GimliHashTarget>(rounds, narrow_diffs<std::size_t>(diffs));
  }
  if (target == "gimli-cipher") {
    if (diffs.empty()) return std::make_unique<GimliCipherTarget>(rounds);
    return std::make_unique<GimliCipherTarget>(rounds, narrow_diffs<std::size_t>(diffs));
  }
  if (target == "gift64") {
    if (diffs.empty()) return std::make_unique<Gift64Target>(rounds);
    return std::make_unique<Gift64Target>(rounds, diffs);
  }
  if (target == "gift128") {
    if (diffs.empty()) return std::make_unique<Gift128Target>(rounds);
    return std::make_unique<Gift128Target>(rounds, diffs);
  }
  if (target == "toy") {
    if (diffs.empty()) return std::make_unique<ToyGiftTarget>();
    return std::make_unique<ToyGiftTarget>(narrow_diffs<std::uint8_t>(diffs));
  }
  if (target == "salsa") {
    if (diffs.empty()) return std::make_unique<SalsaTarget>(rounds);
    return std::make_unique<SalsaTarget>(rounds, narrow_diffs<int>(diffs));
  }
  if (target == "trivium") {
    if (diffs.empty()) return std::make_unique<TriviumTarget>(rounds);
    return std::make_unique<TriviumTarget>(rounds, narrow_diffs<std::size_t>(diffs));
  }
  throw std::invalid_argument("ExperimentConfig: unknown target " + target);
}

std::unique_ptr<nn::Sequential> ExperimentConfig::make_model(
    const Target& t) const {
  const std::size_t input_bits = t.output_bytes() * 8;
  const std::size_t classes = t.num_differences();
  util::Xoshiro256 rng(seed);
  if (arch == "default-mlp") {
    return build_default_mlp(input_bits, classes, rng);
  }
  if (arch.rfind("gohr-net/", 0) == 0) {
    // Validated parse: "gohr-net/d=x" must surface as a config error, not
    // an uncaught std::stoul exception (exit 3 instead of exit 2).
    return build_gohr_net(input_bits, classes, gohr_net_depth(arch), rng);
  }
  return build_architecture(arch, input_bits, classes, rng);
}

std::string ExperimentConfig::to_json() const {
  util::JsonBuilder j;
  std::vector<std::string> diff_items;
  diff_items.reserve(diffs.size());
  for (std::uint64_t d : diffs) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "0x%" PRIx64, d);
    diff_items.push_back(util::JsonBuilder::quote(buf));
  }
  j.field("target", target)
      .field("rounds", rounds)
      .field("diff_site", diff_site)
      .raw("diffs", util::JsonBuilder::array(diff_items))
      .field("arch", arch)
      .field("epochs", epochs)
      .field("batch_size", batch_size)
      .field("learning_rate", static_cast<double>(learning_rate))
      .field("validation_fraction", validation_fraction)
      .field("z_threshold", z_threshold)
      .field("seed", seed)
      .field("threads", threads)
      .field("offline_base_inputs", offline_base_inputs)
      .field("online_base_inputs", online_base_inputs)
      .field("games", games)
      .field("max_retries", max_retries)
      .field("lr_backoff", static_cast<double>(lr_backoff))
      .field("checkpoint_path", checkpoint_path);
  return j.str();
}

}  // namespace mldist::core
