#include "core/combiner.hpp"

#include <algorithm>
#include <cmath>

#include "core/dataset.hpp"
#include "nn/loss.hpp"

namespace mldist::core {

int predict_group(nn::Sequential& model, const nn::Mat& x) {
  const nn::Mat probs = model.predict_proba(x);
  const std::size_t classes = probs.cols();
  std::vector<double> score(classes, 0.0);
  for (std::size_t n = 0; n < probs.rows(); ++n) {
    const float* p = probs.row(n);
    for (std::size_t c = 0; c < classes; ++c) {
      score[c] += std::log(std::max(p[c], 1e-12f));
    }
  }
  return static_cast<int>(
      std::max_element(score.begin(), score.end()) - score.begin());
}

CombinedReport combined_accuracy(nn::Sequential& model, const Oracle& oracle,
                                 std::size_t groups, std::size_t k,
                                 util::Xoshiro256& rng) {
  const std::size_t t = oracle.num_differences();
  const std::size_t features = oracle.output_bytes() * 8;

  CombinedReport rep;
  rep.groups = groups;
  rep.k = k;
  rep.log2_queries =
      std::log2(static_cast<double>(groups * k * (t + 1)));

  std::size_t combined_hits = 0;
  std::size_t sample_hits = 0;
  // One collect per group: k base inputs -> k rows per class.
  for (std::size_t g = 0; g < groups; ++g) {
    const nn::Dataset ds = collect_dataset(oracle, k, rng);
    // Rows are interleaved (class = row % t); regroup per class.
    for (std::size_t c = 0; c < t; ++c) {
      nn::Mat xc(k, features);
      for (std::size_t j = 0; j < k; ++j) {
        const float* src = ds.x.row(j * t + c);
        std::copy(src, src + features, xc.row(j));
      }
      if (predict_group(model, xc) == static_cast<int>(c)) ++combined_hits;
    }
    const std::vector<int> pred = model.predict(ds.x);
    for (std::size_t i = 0; i < pred.size(); ++i) {
      sample_hits += (pred[i] == ds.y[i]);
    }
  }
  rep.accuracy = static_cast<double>(combined_hits) /
                 static_cast<double>(groups * t);
  rep.per_sample_accuracy = static_cast<double>(sample_hits) /
                            static_cast<double>(groups * k * t);
  return rep;
}

}  // namespace mldist::core
