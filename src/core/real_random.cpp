#include "core/real_random.hpp"

#include <algorithm>
#include <numeric>

#include "util/bits.hpp"

namespace mldist::core {

nn::Dataset collect_real_random_dataset(const Target& target,
                                        std::size_t per_class,
                                        util::Xoshiro256& rng) {
  const std::size_t features = target.output_bytes() * 8;
  nn::Dataset ds;
  ds.x = nn::Mat(2 * per_class, features);
  ds.y.resize(2 * per_class);

  std::vector<std::vector<std::uint8_t>> diffs;
  std::vector<std::uint8_t> random_bytes(target.output_bytes());
  for (std::size_t i = 0; i < per_class; ++i) {
    target.sample(rng, diffs);
    util::bits_to_floats(diffs[0], ds.x.row(2 * i));
    ds.y[2 * i] = 1;

    rng.fill_bytes(random_bytes.data(), random_bytes.size());
    util::bits_to_floats(random_bytes, ds.x.row(2 * i + 1));
    ds.y[2 * i + 1] = 0;
  }
  return ds;
}

}  // namespace mldist::core
