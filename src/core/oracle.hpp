// The classical distinguisher game of §1/§3: ORACLE <-$- {CIPHER, RANDOM}.
//
// An Oracle answers the online phase's queries with the t output differences
// for one fresh base input.  CipherOracle forwards to a Target; RandomOracle
// models the ideal object — output differences of a random function are
// uniform, so it returns fresh uniform bytes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/targets.hpp"
#include "util/rng.hpp"

namespace mldist::core {

class Oracle {
 public:
  virtual ~Oracle() = default;

  virtual std::size_t num_differences() const = 0;
  virtual std::size_t output_bytes() const = 0;
  /// Fill `diffs[i]` with the output difference for input difference i.
  virtual void query(util::Xoshiro256& rng,
                     std::vector<std::vector<std::uint8_t>>& diffs) const = 0;
};

class CipherOracle : public Oracle {
 public:
  explicit CipherOracle(const Target& target) : target_(target) {}

  std::size_t num_differences() const override {
    return target_.num_differences();
  }
  std::size_t output_bytes() const override { return target_.output_bytes(); }
  void query(util::Xoshiro256& rng,
             std::vector<std::vector<std::uint8_t>>& diffs) const override {
    target_.sample(rng, diffs);
  }

 private:
  const Target& target_;
};

class RandomOracle : public Oracle {
 public:
  RandomOracle(std::size_t t, std::size_t out_bytes)
      : t_(t), out_bytes_(out_bytes) {}

  std::size_t num_differences() const override { return t_; }
  std::size_t output_bytes() const override { return out_bytes_; }
  void query(util::Xoshiro256& rng,
             std::vector<std::vector<std::uint8_t>>& diffs) const override {
    diffs.assign(t_, std::vector<std::uint8_t>(out_bytes_));
    for (auto& d : diffs) rng.fill_bytes(d.data(), d.size());
  }

 private:
  std::size_t t_;
  std::size_t out_bytes_;
};

}  // namespace mldist::core
