// The classical distinguisher game of §1/§3: ORACLE <-$- {CIPHER, RANDOM}.
//
// An Oracle answers the online phase's queries with the t output differences
// for one fresh base input.  CipherOracle forwards to a Target; RandomOracle
// models the ideal object — output differences of a random function are
// uniform, so it returns fresh uniform bytes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/targets.hpp"
#include "util/rng.hpp"

namespace mldist::core {

class Oracle {
 public:
  virtual ~Oracle() = default;

  virtual std::size_t num_differences() const = 0;
  virtual std::size_t output_bytes() const = 0;
  /// Fill `diffs[i]` with the output difference for input difference i.
  virtual void query(util::Xoshiro256& rng,
                     std::vector<std::vector<std::uint8_t>>& diffs) const = 0;
  /// Answer `count` queries at once.  Same contract as Target::sample_batch:
  /// overrides must consume `rng` in the per-query order of this default
  /// loop and produce byte-identical results, so collected datasets do not
  /// depend on the batch size.  The default loop also keeps decorating
  /// oracles (e.g. the fault-injection wrapper, which only overrides
  /// query()) behaviourally unchanged.
  virtual void query_batch(util::Xoshiro256& rng, std::size_t count,
                           DiffBatch& out) const {
    out.resize(count);
    for (std::size_t s = 0; s < count; ++s) query(rng, out[s]);
  }
};

class CipherOracle : public Oracle {
 public:
  explicit CipherOracle(const Target& target) : target_(target) {}

  std::size_t num_differences() const override {
    return target_.num_differences();
  }
  std::size_t output_bytes() const override { return target_.output_bytes(); }
  void query(util::Xoshiro256& rng,
             std::vector<std::vector<std::uint8_t>>& diffs) const override {
    target_.sample(rng, diffs);
  }
  void query_batch(util::Xoshiro256& rng, std::size_t count,
                   DiffBatch& out) const override {
    target_.sample_batch(rng, count, out);
  }

 private:
  const Target& target_;
};

class RandomOracle : public Oracle {
 public:
  RandomOracle(std::size_t t, std::size_t out_bytes)
      : t_(t), out_bytes_(out_bytes) {}

  std::size_t num_differences() const override { return t_; }
  std::size_t output_bytes() const override { return out_bytes_; }
  void query(util::Xoshiro256& rng,
             std::vector<std::vector<std::uint8_t>>& diffs) const override {
    diffs.assign(t_, std::vector<std::uint8_t>(out_bytes_));
    for (auto& d : diffs) rng.fill_bytes(d.data(), d.size());
  }

 private:
  std::size_t t_;
  std::size_t out_bytes_;
};

}  // namespace mldist::core
