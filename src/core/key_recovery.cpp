#include "core/key_recovery.hpp"

#include <algorithm>

#include "ciphers/speck3264.hpp"
#include "util/bits.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace mldist::core {

namespace {

using ciphers::Speck3264;
using ciphers::SpeckBlock;

/// Score one candidate subkey: fraction of (decrypted) output differences
/// the model assigns to the correct difference index.
double score_candidate(nn::Sequential& model, std::uint16_t candidate,
                       const std::vector<SpeckBlock>& base_ct,
                       const std::vector<std::vector<SpeckBlock>>& diff_ct) {
  const std::size_t m = base_ct.size();
  const std::size_t t = diff_ct.size();
  nn::Mat x(m * t, 32);
  std::vector<int> labels(m * t);
  std::uint8_t bytes[4];
  for (std::size_t s = 0; s < m; ++s) {
    const SpeckBlock base = Speck3264::round_inverse(base_ct[s], candidate);
    for (std::size_t i = 0; i < t; ++i) {
      const SpeckBlock partner =
          Speck3264::round_inverse(diff_ct[i][s], candidate);
      const std::uint32_t diff = base.as_u32() ^ partner.as_u32();
      util::store_u32_le(bytes, diff);
      util::bits_to_floats(std::span<const std::uint8_t>(bytes, 4),
                           x.row(s * t + i));
      labels[s * t + i] = static_cast<int>(i);
    }
  }
  const std::vector<int> pred = model.predict(x);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) hits += (pred[i] == labels[i]);
  return static_cast<double>(hits) / static_cast<double>(pred.size());
}

}  // namespace

KeyRecoveryResult speck_last_round_key_recovery(
    nn::Sequential& model, std::span<const std::uint32_t> diffs,
    const KeyRecoveryOptions& options) {
  util::Xoshiro256 rng(options.seed);

  // The victim instance.
  const std::array<std::uint16_t, 4> master_key = {
      static_cast<std::uint16_t>(rng.next_u32()),
      static_cast<std::uint16_t>(rng.next_u32()),
      static_cast<std::uint16_t>(rng.next_u32()),
      static_cast<std::uint16_t>(rng.next_u32())};
  const Speck3264 victim(master_key);
  const int rounds = options.total_rounds;
  const std::uint16_t true_subkey =
      victim.round_keys()[static_cast<std::size_t>(rounds - 1)];

  // Chosen-plaintext collection: C = E(P), C_i = E(P ^ d_i).
  const std::size_t t = diffs.size();
  std::vector<SpeckBlock> base_ct(options.base_inputs);
  std::vector<std::vector<SpeckBlock>> diff_ct(
      t, std::vector<SpeckBlock>(options.base_inputs));
  for (std::size_t s = 0; s < options.base_inputs; ++s) {
    const std::uint32_t p = rng.next_u32();
    base_ct[s] = victim.encrypt(SpeckBlock::from_u32(p), rounds);
    for (std::size_t i = 0; i < t; ++i) {
      diff_ct[i][s] =
          victim.encrypt(SpeckBlock::from_u32(p ^ diffs[i]), rounds);
    }
  }

  // Candidate set: explicit list, or all 2^16 — the true key is always
  // scored (injected if the sampled list happens to miss it).
  std::vector<std::uint16_t> candidates = options.candidates;
  if (candidates.empty()) {
    candidates.resize(1 << 16);
    for (std::size_t k = 0; k < candidates.size(); ++k) {
      candidates[k] = static_cast<std::uint16_t>(k);
    }
  } else if (std::find(candidates.begin(), candidates.end(), true_subkey) ==
             candidates.end()) {
    candidates.push_back(true_subkey);
  }

  KeyRecoveryResult res;
  res.true_subkey = true_subkey;
  res.candidates_scored = candidates.size();
  std::vector<double> scores(candidates.size());

  // Candidates are independent; score them in parallel (disjoint slots) and
  // reduce serially in candidate order below, so the ranking is bitwise
  // identical for any worker count.
  const util::Timer score_timer;
  const auto score_range = [&](std::size_t begin, std::size_t end) {
    for (std::size_t c = begin; c < end; ++c) {
      scores[c] = score_candidate(model, candidates[c], base_ct, diff_ct);
    }
  };
  const std::size_t workers =
      util::parallel_for_threads(options.threads, candidates.size(), score_range);
  res.telemetry.seconds = score_timer.seconds();
  res.telemetry.rows = candidates.size() * options.base_inputs * t;
  res.telemetry.threads = workers;

  double best = -1.0;
  double wrong_sum = 0.0;
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    if (candidates[c] == true_subkey) {
      res.true_score = scores[c];
    } else {
      wrong_sum += scores[c];
    }
    if (scores[c] > best) {
      best = scores[c];
      res.best_guess = candidates[c];
    }
  }
  // Rank = number of wrong candidates scoring strictly higher.
  std::size_t better_than_true = 0;
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    if (candidates[c] != true_subkey && scores[c] > res.true_score) {
      ++better_than_true;
    }
  }
  res.best_score = best;
  res.true_rank = better_than_true;
  res.mean_wrong_score =
      candidates.size() > 1
          ? wrong_sum / static_cast<double>(candidates.size() - 1)
          : 0.0;
  return res;
}

}  // namespace mldist::core
