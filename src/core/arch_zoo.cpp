#include "core/arch_zoo.hpp"

#include <cerrno>
#include <cstdlib>
#include <stdexcept>
#include <string_view>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv1d.hpp"
#include "nn/dense.hpp"
#include "nn/lstm.hpp"
#include "nn/residual.hpp"

namespace mldist::core {

const std::vector<ArchInfo>& table3_architectures() {
  static const std::vector<ArchInfo> kTable = {
      {"MLP I", "(128, 296, 258, 207, 112, 160, 2)", "ReLU", 226633, 330.8,
       0.5465, true},
      {"MLP II", "(128, 1024, 2)", "ReLU", 150658, 270.2, 0.5462, true},
      {"MLP III", "(128, 1024, 1024, 2)", "ReLU", 1200256, 287.4, 0.5654, true},
      {"MLP IV", "(128, 256, 128, 64, 2)", "LeakyReLU", 90818, 307.9, 0.5473,
       true},
      {"MLP V", "(128, 1024, 2)", "LeakyReLU", 150658, 271.3, 0.5470, true},
      {"MLP VI", "(128, 1024, 1024, 2)", "LeakyReLU", 1200256, 290.8, 0.5476,
       true},
      {"LSTM I", "(128, 256, 128, 2)", "tanh/sigmoid", 444162, 2814.6, 0.5305,
       false},
      {"LSTM II", "(128, 200, 100, 128, 2)", "tanh/sigmoid", 313170, 2727.7,
       0.5324, false},
      {"CNN I", "(128, 128, 128, 100, 2)", "ReLU", 128046, 475.6, 0.5000,
       false},
      {"CNN II", "(128, 1024, 128, 128, 100, 2)", "ReLU", 604206, 537.3,
       0.5000, false},
  };
  return kTable;
}

namespace {

enum class Act { kRelu, kLeaky };

std::unique_ptr<nn::Layer> make_act(Act a) {
  if (a == Act::kRelu) return std::make_unique<nn::ReLU>();
  return std::make_unique<nn::LeakyReLU>();
}

/// Dense stack per the paper's tuple convention: the first entry is an
/// input Dense layer of that width; the last entry is the softmax head
/// (softmax itself lives in the loss).
std::unique_ptr<nn::Sequential> mlp(const std::vector<std::size_t>& widths,
                                    Act act, std::size_t input_bits,
                                    std::size_t classes,
                                    util::Xoshiro256& rng) {
  auto model = std::make_unique<nn::Sequential>();
  std::size_t in = input_bits;
  for (std::size_t width : widths) {
    model->add(std::make_unique<nn::Dense>(in, width, rng));
    model->add(make_act(act));
    in = width;
  }
  model->add(std::make_unique<nn::Dense>(in, classes, rng));
  return model;
}

/// LSTM stack: input Dense(128), reshape to 16x8, LSTM(hidden...), dense
/// tail.  tanh/sigmoid activations live inside the LSTM cells.
std::unique_ptr<nn::Sequential> lstm_stack(
    const std::vector<std::size_t>& hidden, std::size_t dense_tail,
    std::size_t input_bits, std::size_t classes, util::Xoshiro256& rng) {
  constexpr std::size_t kTimesteps = 16;
  auto model = std::make_unique<nn::Sequential>();
  model->add(std::make_unique<nn::Dense>(input_bits, 128, rng));
  std::size_t t = kTimesteps;
  std::size_t f = 128 / kTimesteps;
  for (std::size_t h : hidden) {
    model->add(std::make_unique<nn::LSTM>(t, f, h, rng));
    // Subsequent LSTMs see the final hidden state as one timestep.
    t = 1;
    f = h;
  }
  if (dense_tail > 0) {
    model->add(std::make_unique<nn::Dense>(f, dense_tail, rng));
    model->add(std::make_unique<nn::Tanh>());
    f = dense_tail;
  }
  model->add(std::make_unique<nn::Dense>(f, classes, rng));
  return model;
}

/// CNN stack: input Dense(128), reshape to 128x1, Conv1D layers (kernel 3,
/// same padding), global max pool, dense tail.
std::unique_ptr<nn::Sequential> cnn_stack(const std::vector<std::size_t>& filters,
                                          std::size_t dense_tail,
                                          std::size_t input_bits,
                                          std::size_t classes,
                                          util::Xoshiro256& rng) {
  constexpr std::size_t kKernel = 3;
  auto model = std::make_unique<nn::Sequential>();
  model->add(std::make_unique<nn::Dense>(input_bits, 128, rng));
  constexpr std::size_t kLength = 128;
  std::size_t channels = 1;
  for (std::size_t fct : filters) {
    model->add(std::make_unique<nn::Conv1D>(kLength, channels, fct, kKernel, rng));
    model->add(std::make_unique<nn::ReLU>());
    channels = fct;
  }
  model->add(std::make_unique<nn::GlobalMaxPool1D>(kLength, channels));
  model->add(std::make_unique<nn::Dense>(channels, dense_tail, rng));
  model->add(std::make_unique<nn::ReLU>());
  model->add(std::make_unique<nn::Dense>(dense_tail, classes, rng));
  return model;
}

}  // namespace

std::unique_ptr<nn::Sequential> build_architecture(const std::string& name,
                                                   std::size_t input_bits,
                                                   std::size_t classes,
                                                   util::Xoshiro256& rng) {
  if (name == "MLP I") {
    return mlp({128, 296, 258, 207, 112, 160}, Act::kRelu, input_bits, classes,
               rng);
  }
  if (name == "MLP II") {
    return mlp({128, 1024}, Act::kRelu, input_bits, classes, rng);
  }
  if (name == "MLP III") {
    return mlp({128, 1024, 1024}, Act::kRelu, input_bits, classes, rng);
  }
  if (name == "MLP IV") {
    return mlp({128, 256, 128, 64}, Act::kLeaky, input_bits, classes, rng);
  }
  if (name == "MLP V") {
    return mlp({128, 1024}, Act::kLeaky, input_bits, classes, rng);
  }
  if (name == "MLP VI") {
    return mlp({128, 1024, 1024}, Act::kLeaky, input_bits, classes, rng);
  }
  if (name == "LSTM I") {
    return lstm_stack({256}, 128, input_bits, classes, rng);
  }
  if (name == "LSTM II") {
    return lstm_stack({200, 100}, 128, input_bits, classes, rng);
  }
  if (name == "CNN I") {
    return cnn_stack({128, 128}, 100, input_bits, classes, rng);
  }
  if (name == "CNN II") {
    return cnn_stack({1024, 128, 128}, 100, input_bits, classes, rng);
  }
  throw std::invalid_argument("build_architecture: unknown name " + name);
}

std::unique_ptr<nn::Sequential> build_default_mlp(std::size_t input_bits,
                                                  std::size_t classes,
                                                  util::Xoshiro256& rng) {
  return mlp({128, 1024}, Act::kRelu, input_bits, classes, rng);
}

std::unique_ptr<nn::Sequential> build_gohr_net(std::size_t input_bits,
                                               std::size_t classes,
                                               std::size_t depth,
                                               util::Xoshiro256& rng) {
  constexpr std::size_t kChannels = 32;
  const std::size_t length = input_bits;
  auto model = std::make_unique<nn::Sequential>();
  // Width-1 "embedding" convolution lifting each bit into kChannels.
  model->add(std::make_unique<nn::Conv1D>(length, 1, kChannels, 1, rng));
  model->add(std::make_unique<nn::BatchNorm>(length * kChannels));
  model->add(std::make_unique<nn::ReLU>());
  for (std::size_t d = 0; d < depth; ++d) {
    auto block = std::make_unique<nn::Residual>();
    block->add(std::make_unique<nn::Conv1D>(length, kChannels, kChannels, 3, rng));
    block->add(std::make_unique<nn::BatchNorm>(length * kChannels));
    block->add(std::make_unique<nn::ReLU>());
    block->add(std::make_unique<nn::Conv1D>(length, kChannels, kChannels, 3, rng));
    block->add(std::make_unique<nn::BatchNorm>(length * kChannels));
    model->add(std::move(block));
    model->add(std::make_unique<nn::ReLU>());
  }
  model->add(std::make_unique<nn::GlobalMaxPool1D>(length, kChannels));
  model->add(std::make_unique<nn::Dense>(kChannels, 64, rng));
  model->add(std::make_unique<nn::ReLU>());
  model->add(std::make_unique<nn::Dense>(64, classes, rng));
  return model;
}

std::size_t gohr_net_depth(const std::string& arch) {
  constexpr std::string_view kPrefix = "gohr-net/";
  if (arch.rfind(kPrefix, 0) != 0) {
    throw std::invalid_argument("not a gohr-net architecture name: '" + arch +
                                "'");
  }
  const std::string depth_text = arch.substr(kPrefix.size());
  if (depth_text.empty() ||
      depth_text.find_first_not_of("0123456789") != std::string::npos) {
    throw std::invalid_argument(
        "bad architecture '" + arch +
        "': expected gohr-net/<depth> with a decimal depth");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long depth =
      std::strtoull(depth_text.c_str(), &end, 10);
  if (errno == ERANGE || depth < 1 || depth > 64) {
    throw std::invalid_argument("bad architecture '" + arch +
                                "': depth must be in [1, 64]");
  }
  return static_cast<std::size_t>(depth);
}

}  // namespace mldist::core
