// Per-phase throughput telemetry for the distinguisher pipeline.
//
// Every phase of Algorithm 2 (offline data generation, training, online
// data generation, scoring) fills one PhaseTelemetry so reports and benches
// can track queries/sec and rows/sec as the engine is parallelised; the
// BENCH_*.json artifacts are built from these records.
#pragma once

#include <cstddef>
#include <string>

#include "obs/metrics.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"

namespace mldist::core {

struct PhaseTelemetry {
  double seconds = 0.0;
  std::size_t queries = 0;  ///< oracle queries issued (0 for pure-NN phases)
  std::size_t rows = 0;     ///< labelled rows produced / scored
  std::size_t threads = 1;  ///< worker count the phase fanned out over

  double queries_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(queries) / seconds : 0.0;
  }
  double rows_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(rows) / seconds : 0.0;
  }

  std::string to_json() const {
    util::JsonBuilder j;
    j.field("seconds", seconds)
        .field("queries", queries)
        .field("rows", rows)
        .field("threads", threads)
        .field("queries_per_sec", queries_per_sec())
        .field("rows_per_sec", rows_per_sec());
    return j.str();
  }

  /// Re-emit this record into the process-wide metrics registry as a view,
  /// under "core.phase.<phase>.*": queries/rows add to counters (both are
  /// deterministic quantities), the wall time lands in a "_ns" histogram,
  /// and the fan-out is a last-write-wins gauge.  Report JSON built from
  /// the struct stays exactly as before; the registry snapshot becomes a
  /// superset of it.
  void publish(std::string_view phase) const {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    const std::string prefix = "core.phase." + std::string(phase);
    reg.add(reg.counter(prefix + ".queries"), queries);
    reg.add(reg.counter(prefix + ".rows"), rows);
    reg.set_gauge(reg.gauge(prefix + ".threads"), threads);
    obs::observe_seconds(prefix + ".seconds_ns", seconds);
  }
};

/// Recovery telemetry for the fault-tolerant offline phase (ISSUE 2): how
/// many fit attempts the retry policy spent, what diverged, and whether the
/// run had to degrade to the linear baseline classifier.
struct RobustnessTelemetry {
  int attempts = 1;        ///< fit attempts consumed (1 = clean first try)
  int divergences = 0;     ///< TrainingDiverged conditions raised
  int rollbacks = 0;       ///< checkpoint restores after a divergence
  bool degraded_to_baseline = false;  ///< all retries failed; linear fallback
  std::string last_fault;  ///< description of the most recent divergence

  std::string to_json() const {
    util::JsonBuilder j;
    j.field("attempts", attempts)
        .field("divergences", divergences)
        .field("rollbacks", rollbacks)
        .field("degraded_to_baseline", degraded_to_baseline)
        .field("last_fault", last_fault);
    return j.str();
  }

  /// View into the registry under "core.robustness.*" (counters; one
  /// publish per training run — the registry accumulates across runs).
  void publish() const {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    reg.add(reg.counter("core.robustness.attempts"),
            static_cast<std::uint64_t>(attempts));
    reg.add(reg.counter("core.robustness.divergences"),
            static_cast<std::uint64_t>(divergences));
    reg.add(reg.counter("core.robustness.rollbacks"),
            static_cast<std::uint64_t>(rollbacks));
    if (degraded_to_baseline) {
      reg.add(reg.counter("core.robustness.degraded_to_baseline"));
    }
  }
};

}  // namespace mldist::core
