// Per-phase throughput telemetry for the distinguisher pipeline.
//
// Every phase of Algorithm 2 (offline data generation, training, online
// data generation, scoring) fills one PhaseTelemetry so reports and benches
// can track queries/sec and rows/sec as the engine is parallelised; the
// BENCH_*.json artifacts are built from these records.
#pragma once

#include <cstddef>
#include <string>

#include "util/json.hpp"
#include "util/timer.hpp"

namespace mldist::core {

struct PhaseTelemetry {
  double seconds = 0.0;
  std::size_t queries = 0;  ///< oracle queries issued (0 for pure-NN phases)
  std::size_t rows = 0;     ///< labelled rows produced / scored
  std::size_t threads = 1;  ///< worker count the phase fanned out over

  double queries_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(queries) / seconds : 0.0;
  }
  double rows_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(rows) / seconds : 0.0;
  }

  std::string to_json() const {
    util::JsonBuilder j;
    j.field("seconds", seconds)
        .field("queries", queries)
        .field("rows", rows)
        .field("threads", threads)
        .field("queries_per_sec", queries_per_sec())
        .field("rows_per_sec", rows_per_sec());
    return j.str();
  }
};

}  // namespace mldist::core
