// Score combining across pairs (an extension in the spirit of Gohr's
// CRYPTO'19 key-ranking, applied to the paper's multi-difference
// distinguisher).
//
// The online attacker KNOWS which input difference produced each query, so
// samples can be grouped by class and the model's probability outputs
// combined with a naive-Bayes log-likelihood sum: for k samples of the same
// unknown class, predict argmax_c  sum_j log p_model(c | x_j).
//
// A per-sample advantage eps over 1/t grows roughly like sqrt(k) under
// combining, so a marginal distinguisher (8-round Gimli at ~0.51) becomes
// decisive with modest k — this is how the online complexity can be traded
// against per-sample accuracy.
#pragma once

#include <cstdint>

#include "core/oracle.hpp"
#include "nn/model.hpp"
#include "util/rng.hpp"

namespace mldist::core {

/// Combined prediction for `k` feature rows known to share one class:
/// argmax over classes of the summed log-probabilities.  `x` holds the k
/// rows.
int predict_group(nn::Sequential& model, const nn::Mat& x);

struct CombinedReport {
  std::size_t groups = 0;        ///< decisions made (per class per group)
  std::size_t k = 0;             ///< samples combined per decision
  double accuracy = 0.0;         ///< fraction of correct combined decisions
  double per_sample_accuracy = 0.0;  ///< plain accuracy on the same data
  double log2_queries = 0.0;     ///< oracle queries spent
};

/// Query `oracle` for groups*k base inputs, combine per class in groups of
/// k, and report combined vs per-sample accuracy.
CombinedReport combined_accuracy(nn::Sequential& model, const Oracle& oracle,
                                 std::size_t groups, std::size_t k,
                                 util::Xoshiro256& rng);

}  // namespace mldist::core
