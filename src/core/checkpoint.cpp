#include "core/checkpoint.hpp"

#include <filesystem>
#include <stdexcept>

#include "nn/serialize.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mldist::core {

bool CheckpointManager::update(nn::Sequential& model, double val_accuracy) {
  obs::count("core.checkpoint.update_calls");
  if (has_checkpoint() && val_accuracy <= best_) return false;
  obs::Span span("checkpoint.update", "core");
  span.arg("val_accuracy", val_accuracy);
  const std::string tmp = path_ + ".tmp";
  nn::save_params(model, tmp);
  // Atomic publish: a crash mid-write leaves the previous checkpoint (or
  // nothing) at `path_`, never a torn file.
  std::filesystem::rename(tmp, path_);
  best_ = val_accuracy;
  obs::count("core.checkpoint.updates");
  return true;
}

void CheckpointManager::restore(nn::Sequential& model) const {
  if (!has_checkpoint()) {
    throw std::runtime_error("CheckpointManager: no checkpoint to restore");
  }
  obs::Span span("checkpoint.restore", "core");
  obs::count("core.checkpoint.restores");
  try {
    nn::load_params(model, path_);
  } catch (const std::exception& e) {
    throw std::runtime_error("CheckpointManager: restore from " + path_ +
                             " failed: " + e.what());
  }
}

void CheckpointManager::remove_file() const {
  std::error_code ec;
  std::filesystem::remove(path_, ec);
  std::filesystem::remove(path_ + ".tmp", ec);
}

}  // namespace mldist::core
