#include "core/checkpoint.hpp"

#include <algorithm>
#include <filesystem>
#include <stdexcept>
#include <utility>
#include <vector>

#include "nn/serialize.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"

namespace mldist::core {

bool CheckpointManager::update(nn::Sequential& model, double val_accuracy) {
  obs::count("core.checkpoint.update_calls");
  if (has_checkpoint() && val_accuracy <= best_) return false;
  obs::Span span("checkpoint.update", "core");
  span.arg("val_accuracy", val_accuracy);
  const std::string tmp = path_ + ".tmp";
  nn::save_params(model, tmp);
  // Durable atomic publish: fsync the tmp payload so the bytes precede the
  // rename on stable storage, rename (a crash mid-write leaves the previous
  // checkpoint or nothing at `path_`, never a torn file), then fsync the
  // directory so the rename itself survives a power cut — a campaign
  // resuming from this snapshot after the machine dies must find it.
  util::fsync_file(tmp);
  std::filesystem::rename(tmp, path_);
  util::fsync_parent_dir(path_);
  best_ = val_accuracy;
  obs::count("core.checkpoint.updates");
  return true;
}

std::size_t CheckpointManager::gc_directory(const std::string& dir,
                                            const std::string& suffix,
                                            std::size_t keep_newest) {
  namespace fs = std::filesystem;
  std::error_code ec;
  std::vector<std::pair<fs::file_time_type, fs::path>> matches;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() < suffix.size() ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
            0) {
      continue;
    }
    matches.emplace_back(entry.last_write_time(ec), entry.path());
  }
  if (matches.size() <= keep_newest) return 0;
  std::sort(matches.begin(), matches.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::size_t removed = 0;
  for (std::size_t i = keep_newest; i < matches.size(); ++i) {
    if (fs::remove(matches[i].second, ec)) ++removed;
    fs::remove(matches[i].second.string() + ".tmp", ec);
  }
  obs::count("core.checkpoint.gc_removed", removed);
  return removed;
}

void CheckpointManager::restore(nn::Sequential& model) const {
  if (!has_checkpoint()) {
    throw std::runtime_error("CheckpointManager: no checkpoint to restore");
  }
  obs::Span span("checkpoint.restore", "core");
  obs::count("core.checkpoint.restores");
  try {
    nn::load_params(model, path_);
  } catch (const std::exception& e) {
    throw std::runtime_error("CheckpointManager: restore from " + path_ +
                             " failed: " + e.what());
  }
}

void CheckpointManager::remove_file() const {
  std::error_code ec;
  std::filesystem::remove(path_, ec);
  std::filesystem::remove(path_ + ".tmp", ec);
}

}  // namespace mldist::core
