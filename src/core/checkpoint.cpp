#include "core/checkpoint.hpp"

#include <filesystem>
#include <stdexcept>

#include "nn/serialize.hpp"

namespace mldist::core {

bool CheckpointManager::update(nn::Sequential& model, double val_accuracy) {
  if (has_checkpoint() && val_accuracy <= best_) return false;
  const std::string tmp = path_ + ".tmp";
  nn::save_params(model, tmp);
  // Atomic publish: a crash mid-write leaves the previous checkpoint (or
  // nothing) at `path_`, never a torn file.
  std::filesystem::rename(tmp, path_);
  best_ = val_accuracy;
  return true;
}

void CheckpointManager::restore(nn::Sequential& model) const {
  if (!has_checkpoint()) {
    throw std::runtime_error("CheckpointManager: no checkpoint to restore");
  }
  try {
    nn::load_params(model, path_);
  } catch (const std::exception& e) {
    throw std::runtime_error("CheckpointManager: restore from " + path_ +
                             " failed: " + e.what());
  }
}

void CheckpointManager::remove_file() const {
  std::error_code ec;
  std::filesystem::remove(path_, ec);
  std::filesystem::remove(path_ + ".tmp", ec);
}

}  // namespace mldist::core
