#include "core/targets.hpp"

#include <stdexcept>

#include "ciphers/chaskey.hpp"
#include "ciphers/gift128.hpp"
#include "ciphers/gift64.hpp"
#include "ciphers/gift_toy.hpp"
#include "ciphers/gimli.hpp"
#include "ciphers/gimli_hash.hpp"
#include "ciphers/present80.hpp"
#include "ciphers/salsa20.hpp"
#include "ciphers/simeck3264.hpp"
#include "ciphers/simon3264.hpp"
#include "ciphers/speck3264.hpp"
#include "ciphers/trivium.hpp"
#include "util/bits.hpp"

namespace mldist::core {

const char* diff_site_name(DiffSite site) {
  return site == DiffSite::kRelatedKey ? "related-key" : "plaintext";
}

DiffSite parse_diff_site(const std::string& name) {
  if (name == "plaintext") return DiffSite::kPlaintext;
  if (name == "related-key") return DiffSite::kRelatedKey;
  throw std::invalid_argument(
      "unknown difference site '" + name +
      "' (expected \"plaintext\" or \"related-key\")");
}

namespace {
void require_t(std::size_t t) {
  if (t < 2) {
    throw std::invalid_argument("Target: Algorithm 2 needs t >= 2 differences");
  }
}

void require_rounds(int rounds, int max, const char* who) {
  if (rounds < 1 || rounds > max) {
    throw std::invalid_argument(std::string(who) + ": rounds must be in [1, " +
                                std::to_string(max) + "]");
  }
}

// SoA state-byte access for the batched Gimli paths: word w of state s in an
// n-state block lives at soa[w * n + s], bytes little-endian within words —
// the same convention as gimli_state_to_bytes.
void soa_xor_byte(std::uint32_t* soa, std::size_t n, std::size_t s,
                  std::size_t byte_idx, std::uint8_t v) {
  soa[(byte_idx / 4) * n + s] ^=
      static_cast<std::uint32_t>(v) << (8 * (byte_idx % 4));
}

// XOR of the first 16 state bytes of two states, stored as the output
// difference (words 0..3, little-endian).
void soa_diff16(const std::uint32_t* soa, std::size_t n, std::size_t s_a,
                std::size_t s_b, std::uint8_t* out) {
  for (std::size_t w = 0; w < 4; ++w) {
    util::store_u32_le(out + 4 * w, soa[w * n + s_a] ^ soa[w * n + s_b]);
  }
}
}  // namespace

// ---------------------------------------------------------------------------
// Gimli-Hash
// ---------------------------------------------------------------------------

GimliHashTarget::GimliHashTarget(int rounds,
                                 std::vector<std::size_t> diff_byte_positions,
                                 std::size_t prefix_blocks)
    : rounds_(rounds), positions_(std::move(diff_byte_positions)),
      prefix_blocks_(prefix_blocks) {
  require_t(positions_.size());
  for (std::size_t p : positions_) {
    if (p >= 15) {
      throw std::invalid_argument(
          "GimliHashTarget: difference positions must lie in the 15-byte block");
    }
  }
}

std::vector<std::uint8_t> GimliHashTarget::hash_first_half(
    const std::vector<std::uint8_t>& tail) const {
  // The zero prefix blocks carry no difference — they only move the state
  // to a fixed constant before the attacked window, so absorbing them with
  // the reduced permutation changes nothing the distinguisher can see.
  std::vector<std::uint8_t> msg(prefix_blocks_ * ciphers::kGimliHashRate, 0);
  msg.insert(msg.end(), tail.begin(), tail.end());
  auto digest = ciphers::gimli_hash(msg, rounds_);
  digest.resize(16);
  return digest;
}

void GimliHashTarget::sample(
    util::Xoshiro256& rng,
    std::vector<std::vector<std::uint8_t>>& out_diffs) const {
  // The paper's data collection fixes the message content (zeros) and flips
  // one bit per difference; the randomness that varies across samples is the
  // base message itself, drawn uniformly so that hash-difference samples are
  // independent.
  std::vector<std::uint8_t> base = rng.bytes(15);
  const std::vector<std::uint8_t> h = hash_first_half(base);
  out_diffs.assign(positions_.size(), {});
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    std::vector<std::uint8_t> m = base;
    m[positions_[i]] ^= 0x01;
    out_diffs[i] = util::xor_vec(hash_first_half(m), h);
  }
}

void GimliHashTarget::sample_batch(util::Xoshiro256& rng, std::size_t count,
                                   DiffBatch& out) const {
  out.resize(count);
  if (count == 0) return;
  const std::size_t t = positions_.size();

  // Draw all randomness first, in per-sample order, so the byte stream (and
  // therefore the dataset) is identical to looping sample() — the batch
  // size can never change the collected data.
  std::vector<std::vector<std::uint8_t>> bases(count);
  for (auto& b : bases) b = rng.bytes(15);

  // The zero prefix blocks are difference-free, so every hash shares the
  // same post-prefix state; compute it once (absorbing a 16-byte zero block
  // is just one reduced permutation) and replicate.
  ciphers::GimliState pre{};
  for (std::size_t b = 0; b < prefix_blocks_; ++b) {
    ciphers::gimli_reduced(pre, rounds_);
  }

  // One state per primitive query: sample s occupies slots
  // [s*(t+1), (s+1)*(t+1)) — base hash first, then the t flipped messages.
  const std::size_t per = t + 1;
  const std::size_t n = count * per;
  std::vector<std::uint32_t> soa(12 * n);
  for (std::size_t s = 0; s < count; ++s) {
    for (std::size_t v = 0; v < per; ++v) {
      const std::size_t idx = s * per + v;
      for (std::size_t w = 0; w < 12; ++w) soa[w * n + idx] = pre[w];
      std::vector<std::uint8_t> m = bases[s];
      if (v > 0) m[positions_[v - 1]] ^= 0x01;
      for (std::size_t i = 0; i < m.size(); ++i) soa_xor_byte(soa.data(), n, idx, i, m[i]);
      // Sponge padding: 0x01 after the 15-byte block, 0x01 into byte 47.
      soa_xor_byte(soa.data(), n, idx, 15, 0x01);
      soa_xor_byte(soa.data(), n, idx, ciphers::kGimliStateBytes - 1, 0x01);
    }
  }

  // The first 16 digest bytes are read before the second squeeze
  // permutation, so one batched permutation finishes every hash.
  ciphers::gimli_rounds_batch(soa.data(), n, rounds_, 1);

  for (std::size_t s = 0; s < count; ++s) {
    out[s].assign(t, std::vector<std::uint8_t>(16));
    for (std::size_t i = 0; i < t; ++i) {
      soa_diff16(soa.data(), n, s * per + 1 + i, s * per, out[s][i].data());
    }
  }
}

std::string GimliHashTarget::name() const {
  std::string n = "gimli-hash/" + std::to_string(rounds_) + "r";
  if (prefix_blocks_ > 0) n += "-p" + std::to_string(prefix_blocks_);
  return n;
}

// ---------------------------------------------------------------------------
// Gimli-Cipher
// ---------------------------------------------------------------------------

GimliCipherTarget::GimliCipherTarget(int total_rounds,
                                     std::vector<std::size_t> diff_byte_positions,
                                     bool split_rounds)
    : positions_(std::move(diff_byte_positions)), total_rounds_(total_rounds),
      split_(split_rounds) {
  require_t(positions_.size());
  for (std::size_t p : positions_) {
    if (p >= ciphers::kGimliAeadNonceBytes) {
      throw std::invalid_argument(
          "GimliCipherTarget: difference positions must lie in the nonce");
    }
  }
  if (split_) {
    schedule_.init = (total_rounds + 1) / 2;
    schedule_.ad = total_rounds / 2;
  } else {
    schedule_.init = total_rounds;
    schedule_.ad = 0;
  }
  // c0 is emitted before the first message permutation runs, so the
  // message round count cannot affect the observable (tested in
  // gimli_modes_test); 1 round keeps the unused tag computation cheap.
  schedule_.message = 1;
}

std::vector<std::uint8_t> GimliCipherTarget::first_block(
    const std::array<std::uint8_t, ciphers::kGimliAeadKeyBytes>& key,
    std::array<std::uint8_t, ciphers::kGimliAeadNonceBytes> nonce) const {
  const std::vector<std::uint8_t> m0(ciphers::kGimliAeadRate, 0x00);
  const auto res = ciphers::gimli_aead_encrypt(
      std::span<const std::uint8_t, ciphers::kGimliAeadKeyBytes>(key),
      std::span<const std::uint8_t, ciphers::kGimliAeadNonceBytes>(nonce),
      /*ad=*/{}, m0, schedule_);
  return res.ciphertext;
}

void GimliCipherTarget::sample(
    util::Xoshiro256& rng,
    std::vector<std::vector<std::uint8_t>>& out_diffs) const {
  std::array<std::uint8_t, ciphers::kGimliAeadKeyBytes> key;
  rng.fill_bytes(key.data(), key.size());
  std::array<std::uint8_t, ciphers::kGimliAeadNonceBytes> nonce;
  rng.fill_bytes(nonce.data(), nonce.size());

  const std::vector<std::uint8_t> c = first_block(key, nonce);
  out_diffs.assign(positions_.size(), {});
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    auto n2 = nonce;
    n2[positions_[i]] ^= 0x01;
    out_diffs[i] = util::xor_vec(first_block(key, n2), c);
  }
}

void GimliCipherTarget::sample_batch(util::Xoshiro256& rng, std::size_t count,
                                     DiffBatch& out) const {
  out.resize(count);
  if (count == 0) return;
  const std::size_t t = positions_.size();

  // Randomness in per-sample order: key then nonce, exactly as sample().
  std::vector<std::array<std::uint8_t, ciphers::kGimliAeadKeyBytes>> keys(count);
  std::vector<std::array<std::uint8_t, ciphers::kGimliAeadNonceBytes>> nonces(count);
  for (std::size_t s = 0; s < count; ++s) {
    rng.fill_bytes(keys[s].data(), keys[s].size());
    rng.fill_bytes(nonces[s].data(), nonces[s].size());
  }

  const std::size_t per = t + 1;
  const std::size_t n = count * per;
  std::vector<std::uint32_t> soa(12 * n);
  for (std::size_t s = 0; s < count; ++s) {
    for (std::size_t v = 0; v < per; ++v) {
      const std::size_t idx = s * per + v;
      auto nonce = nonces[s];
      if (v > 0) nonce[positions_[v - 1]] ^= 0x01;
      // State = bytes(nonce || key), little-endian words.
      for (std::size_t w = 0; w < 4; ++w) {
        soa[w * n + idx] = util::load_u32_le(nonce.data() + 4 * w);
      }
      for (std::size_t w = 0; w < 8; ++w) {
        soa[(4 + w) * n + idx] = util::load_u32_le(keys[s].data() + 4 * w);
      }
    }
  }

  if (schedule_.init > 0) {
    ciphers::gimli_rounds_batch(soa.data(), n, schedule_.init, 1);
  }
  // Empty associated data: only the padded final block (0x01 at byte 0 and
  // byte 47) followed by the AD-phase permutation.
  for (std::size_t idx = 0; idx < n; ++idx) {
    soa_xor_byte(soa.data(), n, idx, 0, 0x01);
    soa_xor_byte(soa.data(), n, idx, ciphers::kGimliStateBytes - 1, 0x01);
  }
  if (schedule_.ad > 0) {
    ciphers::gimli_rounds_batch(soa.data(), n, schedule_.ad, 1);
  }

  // The zero first message block XORs nothing into the rate, so c0 is just
  // the first 16 state bytes here — the tag phase never touches it.
  for (std::size_t s = 0; s < count; ++s) {
    out[s].assign(t, std::vector<std::uint8_t>(16));
    for (std::size_t i = 0; i < t; ++i) {
      soa_diff16(soa.data(), n, s * per + 1 + i, s * per, out[s][i].data());
    }
  }
}

std::string GimliCipherTarget::name() const {
  return "gimli-cipher/" + std::to_string(total_rounds_) + "r" +
         (split_ ? "-split" : "");
}

// ---------------------------------------------------------------------------
// SPECK-32/64
// ---------------------------------------------------------------------------

SpeckTarget::SpeckTarget(int rounds, std::vector<std::uint32_t> diffs,
                         DiffSite site)
    : rounds_(rounds), diffs_(std::move(diffs)), site_(site) {
  require_t(diffs_.size());
}

void SpeckTarget::sample(
    util::Xoshiro256& rng,
    std::vector<std::vector<std::uint8_t>>& out_diffs) const {
  const std::array<std::uint16_t, 4> key = {
      static_cast<std::uint16_t>(rng.next_u32()),
      static_cast<std::uint16_t>(rng.next_u32()),
      static_cast<std::uint16_t>(rng.next_u32()),
      static_cast<std::uint16_t>(rng.next_u32())};
  const ciphers::Speck3264 cipher(key);
  const std::uint32_t p = rng.next_u32();
  const std::uint32_t c =
      cipher.encrypt(ciphers::SpeckBlock::from_u32(p), rounds_).as_u32();
  out_diffs.assign(diffs_.size(), std::vector<std::uint8_t>(4));
  for (std::size_t i = 0; i < diffs_.size(); ++i) {
    std::uint32_t ci;
    if (site_ == DiffSite::kRelatedKey) {
      std::array<std::uint16_t, 4> k2 = key;
      k2[3] ^= static_cast<std::uint16_t>(diffs_[i]);
      k2[2] ^= static_cast<std::uint16_t>(diffs_[i] >> 16);
      ci = ciphers::Speck3264(k2)
               .encrypt(ciphers::SpeckBlock::from_u32(p), rounds_)
               .as_u32();
    } else {
      ci = cipher.encrypt(ciphers::SpeckBlock::from_u32(p ^ diffs_[i]), rounds_)
               .as_u32();
    }
    const std::uint32_t d = ci ^ c;
    util::store_u32_le(out_diffs[i].data(), d);
  }
}

std::string SpeckTarget::name() const {
  return "speck32-64/" + std::to_string(rounds_) + "r" +
         (site_ == DiffSite::kRelatedKey ? "-rk" : "");
}

// ---------------------------------------------------------------------------
// SIMON-32/64
// ---------------------------------------------------------------------------

namespace {
// Key-mask convention shared by the 64-bit-key Feistel targets: bits [15:0]
// of the mask flip the word the schedule loads first (key[3]), up through
// bits [63:48] flipping key[0].
std::array<std::uint16_t, 4> xor_key64(const std::array<std::uint16_t, 4>& key,
                                       std::uint64_t mask) {
  std::array<std::uint16_t, 4> k2 = key;
  for (int w = 0; w < 4; ++w) {
    k2[static_cast<std::size_t>(3 - w)] ^=
        static_cast<std::uint16_t>(mask >> (16 * w));
  }
  return k2;
}
}  // namespace

SimonTarget::SimonTarget(int rounds, std::vector<std::uint64_t> diffs,
                         DiffSite site)
    : rounds_(rounds), diffs_(std::move(diffs)), site_(site) {
  require_t(diffs_.size());
  require_rounds(rounds_, ciphers::kSimonRounds, "SimonTarget");
}

void SimonTarget::sample(
    util::Xoshiro256& rng,
    std::vector<std::vector<std::uint8_t>>& out_diffs) const {
  const std::array<std::uint16_t, 4> key = {
      static_cast<std::uint16_t>(rng.next_u32()),
      static_cast<std::uint16_t>(rng.next_u32()),
      static_cast<std::uint16_t>(rng.next_u32()),
      static_cast<std::uint16_t>(rng.next_u32())};
  const ciphers::Simon3264 cipher(key);
  const std::uint32_t p = rng.next_u32();
  const std::uint32_t c =
      cipher.encrypt(ciphers::SimonBlock::from_u32(p), rounds_).as_u32();
  out_diffs.assign(diffs_.size(), std::vector<std::uint8_t>(4));
  for (std::size_t i = 0; i < diffs_.size(); ++i) {
    std::uint32_t ci;
    if (site_ == DiffSite::kRelatedKey) {
      ci = ciphers::Simon3264(xor_key64(key, diffs_[i]))
               .encrypt(ciphers::SimonBlock::from_u32(p), rounds_)
               .as_u32();
    } else {
      const std::uint32_t p2 = p ^ static_cast<std::uint32_t>(diffs_[i]);
      ci = cipher.encrypt(ciphers::SimonBlock::from_u32(p2), rounds_).as_u32();
    }
    util::store_u32_le(out_diffs[i].data(), ci ^ c);
  }
}

std::string SimonTarget::name() const {
  return "simon32-64/" + std::to_string(rounds_) + "r" +
         (site_ == DiffSite::kRelatedKey ? "-rk" : "");
}

// ---------------------------------------------------------------------------
// SIMECK-32/64
// ---------------------------------------------------------------------------

SimeckTarget::SimeckTarget(int rounds, std::vector<std::uint64_t> diffs,
                           DiffSite site)
    : rounds_(rounds), diffs_(std::move(diffs)), site_(site) {
  require_t(diffs_.size());
  require_rounds(rounds_, ciphers::kSimeckRounds, "SimeckTarget");
}

void SimeckTarget::sample(
    util::Xoshiro256& rng,
    std::vector<std::vector<std::uint8_t>>& out_diffs) const {
  const std::array<std::uint16_t, 4> key = {
      static_cast<std::uint16_t>(rng.next_u32()),
      static_cast<std::uint16_t>(rng.next_u32()),
      static_cast<std::uint16_t>(rng.next_u32()),
      static_cast<std::uint16_t>(rng.next_u32())};
  const ciphers::Simeck3264 cipher(key);
  const std::uint32_t p = rng.next_u32();
  const std::uint32_t c =
      cipher.encrypt(ciphers::SimeckBlock::from_u32(p), rounds_).as_u32();
  out_diffs.assign(diffs_.size(), std::vector<std::uint8_t>(4));
  for (std::size_t i = 0; i < diffs_.size(); ++i) {
    std::uint32_t ci;
    if (site_ == DiffSite::kRelatedKey) {
      ci = ciphers::Simeck3264(xor_key64(key, diffs_[i]))
               .encrypt(ciphers::SimeckBlock::from_u32(p), rounds_)
               .as_u32();
    } else {
      const std::uint32_t p2 = p ^ static_cast<std::uint32_t>(diffs_[i]);
      ci = cipher.encrypt(ciphers::SimeckBlock::from_u32(p2), rounds_).as_u32();
    }
    util::store_u32_le(out_diffs[i].data(), ci ^ c);
  }
}

std::string SimeckTarget::name() const {
  return "simeck32-64/" + std::to_string(rounds_) + "r" +
         (site_ == DiffSite::kRelatedKey ? "-rk" : "");
}

// ---------------------------------------------------------------------------
// PRESENT-80
// ---------------------------------------------------------------------------

PresentTarget::PresentTarget(int rounds, std::vector<std::uint64_t> diffs,
                             DiffSite site)
    : rounds_(rounds), diffs_(std::move(diffs)), site_(site) {
  require_t(diffs_.size());
  require_rounds(rounds_, ciphers::kPresentRounds, "PresentTarget");
}

void PresentTarget::sample(
    util::Xoshiro256& rng,
    std::vector<std::vector<std::uint8_t>>& out_diffs) const {
  std::array<std::uint8_t, 10> key;
  rng.fill_bytes(key.data(), key.size());
  const ciphers::Present80 cipher(key);
  const std::uint64_t p = rng.next_u64();
  const std::uint64_t c = cipher.encrypt(p, rounds_);
  out_diffs.assign(diffs_.size(), std::vector<std::uint8_t>(8));
  for (std::size_t i = 0; i < diffs_.size(); ++i) {
    std::uint64_t ci;
    if (site_ == DiffSite::kRelatedKey) {
      // Mask bit j flips register bit j; register bits 63..0 live in key
      // bytes key[2..9] (big-endian), so mask byte b lands in key[9 - b].
      std::array<std::uint8_t, 10> k2 = key;
      for (int b = 0; b < 8; ++b) {
        k2[static_cast<std::size_t>(9 - b)] ^=
            static_cast<std::uint8_t>(diffs_[i] >> (8 * b));
      }
      ci = ciphers::Present80(k2).encrypt(p, rounds_);
    } else {
      ci = cipher.encrypt(p ^ diffs_[i], rounds_);
    }
    const std::uint64_t d = ci ^ c;
    for (int b = 0; b < 8; ++b) {
      out_diffs[i][static_cast<std::size_t>(b)] =
          static_cast<std::uint8_t>(d >> (8 * b));
    }
  }
}

std::string PresentTarget::name() const {
  return "present80/" + std::to_string(rounds_) + "r" +
         (site_ == DiffSite::kRelatedKey ? "-rk" : "");
}

// ---------------------------------------------------------------------------
// Chaskey
// ---------------------------------------------------------------------------

ChaskeyTarget::ChaskeyTarget(int rounds, std::vector<std::uint64_t> diffs,
                             DiffSite site)
    : rounds_(rounds), diffs_(std::move(diffs)), site_(site) {
  require_t(diffs_.size());
  if (rounds_ < 1 || rounds_ > 16) {
    throw std::invalid_argument("ChaskeyTarget: rounds must be in [1, 16]");
  }
}

void ChaskeyTarget::sample(
    util::Xoshiro256& rng,
    std::vector<std::vector<std::uint8_t>>& out_diffs) const {
  ciphers::ChaskeyState key;
  for (auto& w : key) w = rng.next_u32();
  std::array<std::uint8_t, 16> msg;
  rng.fill_bytes(msg.data(), msg.size());

  const ciphers::ChaskeyMac mac(key, rounds_);
  const auto tag = mac.mac(msg.data(), msg.size());
  out_diffs.assign(diffs_.size(), std::vector<std::uint8_t>(16));
  for (std::size_t i = 0; i < diffs_.size(); ++i) {
    std::array<std::uint8_t, 16> tag2;
    if (site_ == DiffSite::kRelatedKey) {
      ciphers::ChaskeyState k2 = key;
      k2[0] ^= static_cast<std::uint32_t>(diffs_[i]);
      k2[1] ^= static_cast<std::uint32_t>(diffs_[i] >> 32);
      tag2 = ciphers::ChaskeyMac(k2, rounds_).mac(msg.data(), msg.size());
    } else {
      std::array<std::uint8_t, 16> m2 = msg;
      for (int b = 0; b < 8; ++b) {
        m2[static_cast<std::size_t>(b)] ^=
            static_cast<std::uint8_t>(diffs_[i] >> (8 * b));
      }
      tag2 = mac.mac(m2.data(), m2.size());
    }
    for (std::size_t b = 0; b < 16; ++b) out_diffs[i][b] = tag2[b] ^ tag[b];
  }
}

std::string ChaskeyTarget::name() const {
  return "chaskey/" + std::to_string(rounds_) + "r" +
         (site_ == DiffSite::kRelatedKey ? "-rk" : "");
}

// ---------------------------------------------------------------------------
// GIFT-64
// ---------------------------------------------------------------------------

Gift64Target::Gift64Target(int rounds, std::vector<std::uint64_t> diffs)
    : rounds_(rounds), diffs_(std::move(diffs)) {
  require_t(diffs_.size());
}

void Gift64Target::sample(
    util::Xoshiro256& rng,
    std::vector<std::vector<std::uint8_t>>& out_diffs) const {
  std::array<std::uint16_t, 8> key;
  for (auto& k : key) k = static_cast<std::uint16_t>(rng.next_u32());
  const ciphers::Gift64 cipher(key);
  const std::uint64_t p = rng.next_u64();
  const std::uint64_t c = cipher.encrypt(p, rounds_);
  out_diffs.assign(diffs_.size(), std::vector<std::uint8_t>(8));
  for (std::size_t i = 0; i < diffs_.size(); ++i) {
    const std::uint64_t d = cipher.encrypt(p ^ diffs_[i], rounds_) ^ c;
    for (int b = 0; b < 8; ++b) {
      out_diffs[i][static_cast<std::size_t>(b)] =
          static_cast<std::uint8_t>(d >> (8 * b));
    }
  }
}

std::string Gift64Target::name() const {
  return "gift64/" + std::to_string(rounds_) + "r";
}

// ---------------------------------------------------------------------------
// GIFT-128
// ---------------------------------------------------------------------------

Gift128Target::Gift128Target(int rounds, std::vector<std::uint64_t> lo_diffs)
    : rounds_(rounds), diffs_(std::move(lo_diffs)) {
  require_t(diffs_.size());
}

void Gift128Target::sample(
    util::Xoshiro256& rng,
    std::vector<std::vector<std::uint8_t>>& out_diffs) const {
  std::array<std::uint16_t, 8> key;
  for (auto& k : key) k = static_cast<std::uint16_t>(rng.next_u32());
  const ciphers::Gift128 cipher(key);
  const ciphers::Gift128Block p{rng.next_u64(), rng.next_u64()};
  const ciphers::Gift128Block c = cipher.encrypt(p, rounds_);
  out_diffs.assign(diffs_.size(), std::vector<std::uint8_t>(16));
  for (std::size_t i = 0; i < diffs_.size(); ++i) {
    ciphers::Gift128Block p2 = p;
    p2.lo ^= diffs_[i];
    const ciphers::Gift128Block d0 = cipher.encrypt(p2, rounds_);
    const std::uint64_t dlo = d0.lo ^ c.lo;
    const std::uint64_t dhi = d0.hi ^ c.hi;
    for (int b = 0; b < 8; ++b) {
      out_diffs[i][static_cast<std::size_t>(b)] =
          static_cast<std::uint8_t>(dlo >> (8 * b));
      out_diffs[i][static_cast<std::size_t>(8 + b)] =
          static_cast<std::uint8_t>(dhi >> (8 * b));
    }
  }
}

std::string Gift128Target::name() const {
  return "gift128/" + std::to_string(rounds_) + "r";
}

// ---------------------------------------------------------------------------
// Toy GIFT (Fig. 1)
// ---------------------------------------------------------------------------

ToyGiftTarget::ToyGiftTarget(std::vector<std::uint8_t> diffs)
    : diffs_(std::move(diffs)) {
  require_t(diffs_.size());
}

void ToyGiftTarget::sample(
    util::Xoshiro256& rng,
    std::vector<std::vector<std::uint8_t>>& out_diffs) const {
  const auto x = static_cast<std::uint8_t>(rng.next_u64());
  const std::uint8_t c = ciphers::toy_cipher(x);
  out_diffs.assign(diffs_.size(), std::vector<std::uint8_t>(1));
  for (std::size_t i = 0; i < diffs_.size(); ++i) {
    out_diffs[i][0] = static_cast<std::uint8_t>(
        ciphers::toy_cipher(static_cast<std::uint8_t>(x ^ diffs_[i])) ^ c);
  }
}

// ---------------------------------------------------------------------------
// Salsa20 core
// ---------------------------------------------------------------------------

SalsaTarget::SalsaTarget(int rounds, std::vector<int> diff_words)
    : rounds_(rounds), words_(std::move(diff_words)) {
  require_t(words_.size());
  for (int w : words_) {
    if (w < 0 || w >= 16) {
      throw std::invalid_argument("SalsaTarget: word index out of range");
    }
  }
}

void SalsaTarget::sample(
    util::Xoshiro256& rng,
    std::vector<std::vector<std::uint8_t>>& out_diffs) const {
  ciphers::SalsaState base;
  for (auto& w : base) w = rng.next_u32();
  const ciphers::SalsaState out = ciphers::salsa20_core(base, rounds_);
  out_diffs.assign(words_.size(), std::vector<std::uint8_t>(16));
  for (std::size_t i = 0; i < words_.size(); ++i) {
    ciphers::SalsaState in2 = base;
    in2[static_cast<std::size_t>(words_[i])] ^= 1u;
    const ciphers::SalsaState out2 = ciphers::salsa20_core(in2, rounds_);
    for (int w = 0; w < 4; ++w) {
      util::store_u32_le(out_diffs[i].data() + 4 * w,
                         out2[static_cast<std::size_t>(w)] ^
                             out[static_cast<std::size_t>(w)]);
    }
  }
}

std::string SalsaTarget::name() const {
  return "salsa20-core/" + std::to_string(rounds_) + "r";
}

// ---------------------------------------------------------------------------
// Trivium
// ---------------------------------------------------------------------------

TriviumTarget::TriviumTarget(int init_clocks, std::vector<std::size_t> diff_iv_bytes)
    : init_clocks_(init_clocks), positions_(std::move(diff_iv_bytes)) {
  require_t(positions_.size());
  for (std::size_t p : positions_) {
    if (p >= 10) {
      throw std::invalid_argument("TriviumTarget: IV positions must be < 10");
    }
  }
}

void TriviumTarget::sample(
    util::Xoshiro256& rng,
    std::vector<std::vector<std::uint8_t>>& out_diffs) const {
  std::array<std::uint8_t, 10> key;
  rng.fill_bytes(key.data(), key.size());
  std::array<std::uint8_t, 10> iv;
  rng.fill_bytes(iv.data(), iv.size());

  ciphers::Trivium base(key, iv, init_clocks_);
  const std::vector<std::uint8_t> ks = base.keystream(16);
  out_diffs.assign(positions_.size(), {});
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    auto iv2 = iv;
    iv2[positions_[i]] ^= 0x01;
    ciphers::Trivium t(key, iv2, init_clocks_);
    out_diffs[i] = util::xor_vec(t.keystream(16), ks);
  }
}

std::string TriviumTarget::name() const {
  return "trivium/" + std::to_string(init_clocks_) + "c";
}

}  // namespace mldist::core
