// Checkpoint/resume support for the offline phase (ISSUE 2).
//
// A CheckpointManager snapshots the model parameters whenever the
// validation accuracy improves, so a diverging training run can be rolled
// back to the last good state instead of starting over (or aborting the
// whole Algorithm-2 run).  Snapshots are crash-safe: the payload is written
// to "<path>.tmp" and atomically renamed over <path>, and the nn::serialize
// format's CRC-32 footer (util/crc32) makes a torn or bit-rotted checkpoint
// detectable at restore time.
//
// RetryPolicy is the companion knob set consumed by MLDistinguisher::train:
// on nn::TrainingDiverged it restores the checkpoint, multiplies the
// learning rate by `lr_backoff`, optionally reseeds the shuffle stream, and
// tries again up to `max_attempts` times before degrading to the linear
// baseline classifier.
#pragma once

#include <string>

#include "nn/model.hpp"

namespace mldist::core {

struct RetryPolicy {
  int max_attempts = 3;   ///< fit attempts before degrading to the baseline
  float lr_backoff = 0.5f;  ///< learning-rate factor applied per retry
  bool reseed = true;     ///< derive a fresh shuffle stream per retry
  /// Checkpoint file; empty = an auto-generated path under the system temp
  /// directory, removed after training.
  std::string checkpoint_path;
};

class CheckpointManager {
 public:
  explicit CheckpointManager(std::string path) : path_(std::move(path)) {}

  /// Snapshot `model` when `val_accuracy` beats the best seen so far
  /// (fsync'd tmp-file + atomic rename + directory fsync, so the snapshot
  /// survives a power cut as well as a crash).  Returns true when a
  /// snapshot was written.
  bool update(nn::Sequential& model, double val_accuracy);

  /// Mark an existing on-disk snapshot at path() as valid without writing
  /// anything, recording `recorded_best` as its validation accuracy.  Used
  /// by campaign resume: a relaunched worker adopts the snapshot a killed
  /// predecessor left behind, then restore()s from it.
  void adopt(double recorded_best = 0.0) { best_ = recorded_best; }

  bool has_checkpoint() const { return best_ >= 0.0; }
  double best_val_accuracy() const { return best_; }
  const std::string& path() const { return path_; }

  /// Roll `model` back to the best snapshot.  Throws std::runtime_error
  /// when no snapshot exists or the file fails its CRC verification.
  void restore(nn::Sequential& model) const;

  /// Delete the checkpoint file (best-effort; keeps the recorded best).
  void remove_file() const;

  /// Retention GC for long campaigns: delete all files under `dir` whose
  /// names end in `suffix`, keeping the `keep_newest` most recently
  /// modified.  Stray ".tmp" siblings of deleted files go too.  Returns the
  /// number of files removed; best-effort (unreadable dirs count as empty).
  static std::size_t gc_directory(const std::string& dir,
                                  const std::string& suffix,
                                  std::size_t keep_newest);

 private:
  std::string path_;
  double best_ = -1.0;
};

}  // namespace mldist::core
