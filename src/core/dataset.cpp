#include "core/dataset.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/bits.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace mldist::core {

namespace {

/// Deterministic collection tallies: the query/row counts are functions of
/// (base_inputs, t) alone, never of chunking or worker count, so they are
/// bitwise identical for any --threads setting.
struct CollectMetrics {
  obs::MetricId queries;
  obs::MetricId rows;
  obs::MetricId chunks;

  CollectMetrics() {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    queries = reg.counter("core.oracle.queries");
    rows = reg.counter("core.collect.rows");
    chunks = reg.counter("core.collect.chunks");
  }
};

const CollectMetrics& collect_metrics() {
  static const CollectMetrics metrics;
  return metrics;
}

/// Collect base inputs [s_begin, s_end) into their rows of `ds`, drawing all
/// randomness from `rng`.  Shared by the serial path (one call spanning
/// everything) and the parallel engine (one call per chunk).
void collect_span(const Oracle& oracle, std::size_t s_begin, std::size_t s_end,
                  util::Xoshiro256& rng, nn::Dataset& ds) {
  const std::size_t t = oracle.num_differences();
  {
    // Algorithm 2 issues t+1 primitive queries per base input (the base
    // plus its t partners); each yields t labelled rows.
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    const CollectMetrics& metrics = collect_metrics();
    reg.add(metrics.queries, (s_end - s_begin) * (t + 1));
    reg.add(metrics.rows, (s_end - s_begin) * t);
  }
  // Query in slabs so batched oracles amortise per-call overhead and the
  // Gimli targets run the batched permutation kernel.  The query_batch
  // contract (RNG consumed in per-sample order, byte-identical output)
  // makes the dataset bytes invariant to the slab size — and to whether
  // this loop or the old one-query-at-a-time loop collected them.
  constexpr std::size_t kSlab = 32;
  DiffBatch batch;
  for (std::size_t s = s_begin; s < s_end; s += kSlab) {
    const std::size_t count = std::min(kSlab, s_end - s);
    oracle.query_batch(rng, count, batch);
    for (std::size_t b = 0; b < count; ++b) {
      for (std::size_t i = 0; i < t; ++i) {
        const std::size_t row = (s + b) * t + i;
        util::bits_to_floats(batch[b][i], ds.x.row(row));
        ds.y[row] = static_cast<int>(i);
      }
    }
  }
}

nn::Dataset make_empty(const Oracle& oracle, std::size_t base_inputs) {
  nn::Dataset ds;
  ds.x = nn::Mat(base_inputs * oracle.num_differences(),
                 oracle.output_bytes() * 8);
  ds.y.resize(base_inputs * oracle.num_differences());
  return ds;
}

}  // namespace

nn::Dataset collect_dataset(const Oracle& oracle, std::size_t base_inputs,
                            util::Xoshiro256& rng) {
  nn::Dataset ds = make_empty(oracle, base_inputs);
  collect_span(oracle, 0, base_inputs, rng, ds);
  return ds;
}

nn::Dataset collect_dataset(const Target& target, std::size_t base_inputs,
                            util::Xoshiro256& rng) {
  const CipherOracle oracle(target);
  return collect_dataset(oracle, base_inputs, rng);
}

nn::Dataset collect_dataset(const Oracle& oracle, std::size_t base_inputs,
                            const CollectOptions& options,
                            PhaseTelemetry* telemetry) {
  const util::Timer timer;
  nn::Dataset ds = make_empty(oracle, base_inputs);

  const std::size_t chunk = std::max<std::size_t>(1, options.chunk_base_inputs);
  const std::size_t num_chunks = (base_inputs + chunk - 1) / chunk;
  obs::Span collect_span_trace("collect", "core");
  collect_span_trace.arg("base_inputs", static_cast<std::uint64_t>(base_inputs))
      .arg("chunks", static_cast<std::uint64_t>(num_chunks));
  // One derived stream per chunk: the grid is fixed by (seed, chunk size)
  // alone, so the bytes cannot depend on how chunks land on workers.
  const auto chunks = [&](std::size_t begin, std::size_t end) {
    for (std::size_t c = begin; c < end; ++c) {
      obs::Span chunk_span("collect.chunk", "core");
      chunk_span.arg("chunk", static_cast<std::uint64_t>(c));
      obs::MetricsRegistry::global().add(collect_metrics().chunks);
      util::Xoshiro256 rng(util::derive_stream_seed(options.seed, c));
      const std::size_t s_begin = c * chunk;
      const std::size_t s_end = std::min(base_inputs, s_begin + chunk);
      collect_span(oracle, s_begin, s_end, rng, ds);
    }
  };

  const std::size_t threads =
      util::parallel_for_threads(options.threads, num_chunks, chunks);

  if (telemetry != nullptr) {
    telemetry->seconds = timer.seconds();
    // Algorithm 2 issues t+1 primitive queries per base input (the base
    // plus its t partners).
    telemetry->queries = base_inputs * (oracle.num_differences() + 1);
    telemetry->rows = ds.size();
    telemetry->threads = threads;
  }
  return ds;
}

nn::Dataset collect_dataset(const Target& target, std::size_t base_inputs,
                            const CollectOptions& options,
                            PhaseTelemetry* telemetry) {
  const CipherOracle oracle(target);
  return collect_dataset(oracle, base_inputs, options, telemetry);
}

}  // namespace mldist::core
