#include "core/dataset.hpp"

#include "util/bits.hpp"

namespace mldist::core {

nn::Dataset collect_dataset(const Oracle& oracle, std::size_t base_inputs,
                            util::Xoshiro256& rng) {
  const std::size_t t = oracle.num_differences();
  const std::size_t features = oracle.output_bytes() * 8;
  nn::Dataset ds;
  ds.x = nn::Mat(base_inputs * t, features);
  ds.y.resize(base_inputs * t);

  std::vector<std::vector<std::uint8_t>> diffs;
  for (std::size_t s = 0; s < base_inputs; ++s) {
    oracle.query(rng, diffs);
    for (std::size_t i = 0; i < t; ++i) {
      const std::size_t row = s * t + i;
      util::bits_to_floats(diffs[i], ds.x.row(row));
      ds.y[row] = static_cast<int>(i);
    }
  }
  return ds;
}

nn::Dataset collect_dataset(const Target& target, std::size_t base_inputs,
                            util::Xoshiro256& rng) {
  const CipherOracle oracle(target);
  return collect_dataset(oracle, base_inputs, rng);
}

}  // namespace mldist::core
