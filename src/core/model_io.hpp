// Architecture-aware model persistence.
//
// nn::save_params stores only the parameter tensors; the online phase then
// needs to rebuild the exact architecture by hand.  These helpers store a
// small text header (architecture name from the arch zoo, input bits,
// classes) next to the tensors so a model file is self-describing — the
// role the paper's ".h5" files play between the offline and online phases.
//
// Format: "MLDM1\n<arch>\n<input_bits> <classes>\n" followed by the
// nn::save_params payload (which ends in a CRC-32 footer; corruption of the
// tensor data is detected at load time, legacy footer-less files load with
// a warning).
#pragma once

#include <memory>
#include <string>

#include "nn/model.hpp"
#include "util/rng.hpp"

namespace mldist::core {

/// Persist `model` (which must have been produced by build_architecture /
/// build_default_mlp / build_gohr_net with the given metadata).
void save_model(nn::Sequential& model, const std::string& arch,
                std::size_t input_bits, std::size_t classes,
                const std::string& path);

struct LoadedModel {
  std::unique_ptr<nn::Sequential> model;
  std::string arch;
  std::size_t input_bits = 0;
  std::size_t classes = 0;
};

/// Rebuild the architecture named in the file and load its parameters.
/// Throws std::runtime_error on malformed files or unknown architectures.
LoadedModel load_model(const std::string& path);

}  // namespace mldist::core
