// Targets: the primitives Algorithm 2 attacks, behind one interface.
//
// A target owns the paper's experimental choices for one primitive — where
// the t input differences are injected (hash message bytes, AEAD nonce
// bytes, block-cipher plaintext, stream-cipher IV) and which output window
// is observed.  `sample` draws fresh randomness (base input and, for keyed
// primitives, a fresh key), queries the primitive t+1 times and returns the
// t output differences C_i ^ C in order — exactly the offline phase's inner
// loop (Algorithm 2, lines 3-8).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ciphers/gimli_aead.hpp"
#include "util/rng.hpp"

namespace mldist::core {

/// `batch[s][i]` = output difference i of base input s.
using DiffBatch = std::vector<std::vector<std::vector<std::uint8_t>>>;

/// Where the t differences are injected.  `kPlaintext` is the paper's
/// chosen-plaintext game (differences XORed into the primitive's public
/// input); `kRelatedKey` is the related-key game of arXiv 2201.03767:
/// the difference is XORed into the master key, the key schedule is re-run,
/// and the observable is E_{K^d}(P) ^ E_K(P) for one shared plaintext.
enum class DiffSite { kPlaintext, kRelatedKey };

/// "plaintext" / "related-key" — the spelling used by ExperimentConfig,
/// spec files, and manifests.
const char* diff_site_name(DiffSite site);
/// Inverse of diff_site_name; throws std::invalid_argument on unknown names.
DiffSite parse_diff_site(const std::string& name);

class Target {
 public:
  virtual ~Target() = default;

  /// Number of input differences t (>= 2).
  virtual std::size_t num_differences() const = 0;
  /// Size of one observable output (bytes); output differences have this size.
  virtual std::size_t output_bytes() const = 0;
  /// Draw one base input (and key material where applicable) and fill
  /// `out_diffs[i]` with the i-th output difference.  `out_diffs` is resized
  /// by the callee.
  virtual void sample(util::Xoshiro256& rng,
                      std::vector<std::vector<std::uint8_t>>& out_diffs) const = 0;
  /// Sample `count` base inputs at once.  The contract batched overrides
  /// must keep: consume `rng` in exactly the per-sample order of the default
  /// loop (sample 0's draws first, then sample 1's, ...) and produce
  /// byte-identical differences — so the collected dataset is invariant to
  /// the batch size.  The Gimli targets override this to run the batched
  /// permutation kernel over all count * (t + 1) primitive queries.
  virtual void sample_batch(util::Xoshiro256& rng, std::size_t count,
                            DiffBatch& out) const {
    out.resize(count);
    for (std::size_t s = 0; s < count; ++s) sample(rng, out[s]);
  }
  virtual std::string name() const = 0;
};

/// §4, Gimli-Hash: single-block zero message of 15 bytes, differences flip
/// the least significant bit of message bytes (default: bytes 4 and 12); the
/// observable is the first 128 bits of the digest, computed with a
/// round-reduced permutation.
/// `prefix_blocks` models the paper's 127-byte message: that many full
/// 16-byte zero blocks are absorbed (with the full 24-round permutation —
/// they only fix the capacity to a pseudorandom constant and are not part
/// of the attacked window) before the final 15-byte block that carries the
/// differences.  7 prefix blocks + 15 bytes + 1 pad byte = 128 bytes, the
/// paper's message; the default 0 keeps data collection cheap and is
/// statistically equivalent (see DESIGN.md).
class GimliHashTarget : public Target {
 public:
  GimliHashTarget(int rounds, std::vector<std::size_t> diff_byte_positions = {4, 12},
                  std::size_t prefix_blocks = 0);

  std::size_t num_differences() const override { return positions_.size(); }
  std::size_t output_bytes() const override { return 16; }
  void sample(util::Xoshiro256& rng,
              std::vector<std::vector<std::uint8_t>>& out_diffs) const override;
  void sample_batch(util::Xoshiro256& rng, std::size_t count,
                    DiffBatch& out) const override;
  std::string name() const override;

 private:
  std::vector<std::uint8_t> hash_first_half(const std::vector<std::uint8_t>& tail) const;

  int rounds_;
  std::vector<std::size_t> positions_;
  std::size_t prefix_blocks_;
};

/// §4, Gimli-Cipher: fresh random 256-bit key per sample; nonce pairs differ
/// in the LSB of nonce bytes (default 4 and 12); empty associated data (one
/// padded block), first message block zero; the observable is the first
/// ciphertext block c0.  `total_rounds` reproduces the paper's "reduce the
/// 48 rounds to 8": the initialisation permutation runs all of them and the
/// AD permutation none (see DESIGN.md for why Table 2 forces this reading);
/// `split_rounds` gives the alternative n+n split for the ablation bench.
class GimliCipherTarget : public Target {
 public:
  GimliCipherTarget(int total_rounds,
                    std::vector<std::size_t> diff_byte_positions = {4, 12},
                    bool split_rounds = false);

  std::size_t num_differences() const override { return positions_.size(); }
  std::size_t output_bytes() const override { return 16; }
  void sample(util::Xoshiro256& rng,
              std::vector<std::vector<std::uint8_t>>& out_diffs) const override;
  void sample_batch(util::Xoshiro256& rng, std::size_t count,
                    DiffBatch& out) const override;
  std::string name() const override;

 private:
  std::vector<std::uint8_t> first_block(
      const std::array<std::uint8_t, ciphers::kGimliAeadKeyBytes>& key,
      std::array<std::uint8_t, ciphers::kGimliAeadNonceBytes> nonce) const;

  ciphers::RoundSchedule schedule_;
  std::vector<std::size_t> positions_;
  int total_rounds_;
  bool split_;
};

/// §2.3 background, SPECK-32/64: fresh random key per sample, plaintext
/// differences given as 32-bit XOR masks (default: Gohr's 0x00400000 and a
/// second mask to satisfy t >= 2).  Under DiffSite::kRelatedKey each mask is
/// XORed into the master key instead — bits [15:0] into the word the
/// schedule loads first (key[3]) and bits [31:16] into key[2].
class SpeckTarget : public Target {
 public:
  SpeckTarget(int rounds,
              std::vector<std::uint32_t> diffs = {0x00400000u, 0x00102000u},
              DiffSite site = DiffSite::kPlaintext);

  std::size_t num_differences() const override { return diffs_.size(); }
  std::size_t output_bytes() const override { return 4; }
  void sample(util::Xoshiro256& rng,
              std::vector<std::vector<std::uint8_t>>& out_diffs) const override;
  std::string name() const override;

 private:
  int rounds_;
  std::vector<std::uint32_t> diffs_;
  DiffSite site_;
};

/// SIMON-32/64 (arXiv 2201.03767's primary related-key target): fresh random
/// 64-bit key per sample.  Plaintext site: masks are 32-bit XOR differences
/// on the block.  Related-key site: masks are 64-bit XOR differences on the
/// master key, bits [15:0] landing in the word the schedule loads first
/// (key[3]) up through bits [63:48] in key[0].
class SimonTarget : public Target {
 public:
  SimonTarget(int rounds,
              std::vector<std::uint64_t> diffs = {0x40ULL, 0x4000ULL},
              DiffSite site = DiffSite::kPlaintext);

  std::size_t num_differences() const override { return diffs_.size(); }
  std::size_t output_bytes() const override { return 4; }
  void sample(util::Xoshiro256& rng,
              std::vector<std::vector<std::uint8_t>>& out_diffs) const override;
  std::string name() const override;

 private:
  int rounds_;
  std::vector<std::uint64_t> diffs_;
  DiffSite site_;
};

/// SIMECK-32/64: same experiment shape and mask conventions as SimonTarget.
class SimeckTarget : public Target {
 public:
  SimeckTarget(int rounds,
               std::vector<std::uint64_t> diffs = {0x40ULL, 0x4000ULL},
               DiffSite site = DiffSite::kPlaintext);

  std::size_t num_differences() const override { return diffs_.size(); }
  std::size_t output_bytes() const override { return 4; }
  void sample(util::Xoshiro256& rng,
              std::vector<std::vector<std::uint8_t>>& out_diffs) const override;
  std::string name() const override;

 private:
  int rounds_;
  std::vector<std::uint64_t> diffs_;
  DiffSite site_;
};

/// PRESENT-80 (arXiv 2204.06341): fresh random 80-bit key per sample,
/// 64-bit plaintext XOR masks; the observable is the 8-byte ciphertext
/// difference.  Related-key site: the mask is XORed into the low 64 bits of
/// the 80-bit key register (mask bit j flips register bit j).
class PresentTarget : public Target {
 public:
  PresentTarget(int rounds,
                std::vector<std::uint64_t> diffs = {0x1ULL, 0x10ULL},
                DiffSite site = DiffSite::kPlaintext);

  std::size_t num_differences() const override { return diffs_.size(); }
  std::size_t output_bytes() const override { return 8; }
  void sample(util::Xoshiro256& rng,
              std::vector<std::vector<std::uint8_t>>& out_diffs) const override;
  std::string name() const override;

 private:
  int rounds_;
  std::vector<std::uint64_t> diffs_;
  DiffSite site_;
};

/// Chaskey (arXiv 2204.06341): fresh random 128-bit key and one random
/// complete 16-byte message block per sample; the observable is the 16-byte
/// tag difference of the round-reduced MAC.  Plaintext site: masks are XOR
/// differences on the first 8 message bytes (bit j of the mask flips bit j
/// of the little-endian words m0||m1).  Related-key site: masks are XOR
/// differences on key words k0||k1, with the K1/K2 subkeys re-derived.
class ChaskeyTarget : public Target {
 public:
  ChaskeyTarget(int rounds,
                std::vector<std::uint64_t> diffs = {0x1ULL, 0x80000000ULL},
                DiffSite site = DiffSite::kPlaintext);

  std::size_t num_differences() const override { return diffs_.size(); }
  std::size_t output_bytes() const override { return 16; }
  void sample(util::Xoshiro256& rng,
              std::vector<std::vector<std::uint8_t>>& out_diffs) const override;
  std::string name() const override;

 private:
  int rounds_;
  std::vector<std::uint64_t> diffs_;
  DiffSite site_;
};

/// §6 future work, GIFT-64: fresh random key per sample, 64-bit plaintext
/// XOR masks.
class Gift64Target : public Target {
 public:
  Gift64Target(int rounds, std::vector<std::uint64_t> diffs = {0x1ULL, 0x10ULL});

  std::size_t num_differences() const override { return diffs_.size(); }
  std::size_t output_bytes() const override { return 8; }
  void sample(util::Xoshiro256& rng,
              std::vector<std::vector<std::uint8_t>>& out_diffs) const override;
  std::string name() const override;

 private:
  int rounds_;
  std::vector<std::uint64_t> diffs_;
};

/// §6 future work, GIFT-128 (the family member Fig. 1's caption names):
/// fresh random key per sample, 128-bit plaintext XOR masks applied to the
/// low word; the observable is the full 16-byte ciphertext difference.
class Gift128Target : public Target {
 public:
  Gift128Target(int rounds, std::vector<std::uint64_t> lo_diffs = {0x1ULL, 0x10ULL});

  std::size_t num_differences() const override { return diffs_.size(); }
  std::size_t output_bytes() const override { return 16; }
  void sample(util::Xoshiro256& rng,
              std::vector<std::vector<std::uint8_t>>& out_diffs) const override;
  std::string name() const override;

 private:
  int rounds_;
  std::vector<std::uint64_t> diffs_;
};

/// §2.1 toy cipher (Fig. 1): the 8-bit two-round unkeyed GIFT example.  The
/// exact all-in-one distributions are enumerable here, so this target is
/// how the repo demonstrates that the trained model approaches the
/// Bayes-optimal accuracy (analysis::toy_allinone_bayes_accuracy).
class ToyGiftTarget : public Target {
 public:
  explicit ToyGiftTarget(std::vector<std::uint8_t> diffs = {0x32, 0x23});

  std::size_t num_differences() const override { return diffs_.size(); }
  std::size_t output_bytes() const override { return 1; }
  void sample(util::Xoshiro256& rng,
              std::vector<std::vector<std::uint8_t>>& out_diffs) const override;
  std::string name() const override { return "toy-gift/2r"; }

  const std::vector<std::uint8_t>& diffs() const { return diffs_; }

 private:
  std::vector<std::uint8_t> diffs_;
};

/// §2.1 non-Markov example, Salsa20 core: random state, differences flip the
/// LSB of two state words; observable is the first 16 output bytes.
class SalsaTarget : public Target {
 public:
  SalsaTarget(int rounds, std::vector<int> diff_words = {6, 8});

  std::size_t num_differences() const override { return words_.size(); }
  std::size_t output_bytes() const override { return 16; }
  void sample(util::Xoshiro256& rng,
              std::vector<std::vector<std::uint8_t>>& out_diffs) const override;
  std::string name() const override;

 private:
  int rounds_;
  std::vector<int> words_;
};

/// §2.1 non-Markov example, Trivium with reduced initialisation: fresh key
/// per sample, IV differences flip the LSB of two IV bytes; observable is
/// the first 16 keystream bytes.
class TriviumTarget : public Target {
 public:
  TriviumTarget(int init_clocks, std::vector<std::size_t> diff_iv_bytes = {0, 5});

  std::size_t num_differences() const override { return positions_.size(); }
  std::size_t output_bytes() const override { return 16; }
  void sample(util::Xoshiro256& rng,
              std::vector<std::vector<std::uint8_t>>& out_diffs) const override;
  std::string name() const override;

 private:
  int init_clocks_;
  std::vector<std::size_t> positions_;
};

}  // namespace mldist::core
