// Gohr's CRYPTO'19 data formulation, provided as an alternative to the
// paper's multi-difference classification (§3.3 compares the two).
//
// Gohr labels each sample by ORIGIN: class 1 = output difference of the
// cipher under ONE fixed input difference, class 0 = uniform random data.
// The reproduced paper instead labels by WHICH of t >= 2 input differences
// produced the sample and never feeds random data during training.
//
// Both produce distinguishers; this module builds Gohr-style data sets from
// any Target (using its first input difference) so the two formulations can
// be trained and compared on identical budgets.
#pragma once

#include "core/targets.hpp"
#include "nn/model.hpp"
#include "util/rng.hpp"

namespace mldist::core {

/// Build a balanced Gohr-style data set: `per_class` rows of cipher output
/// differences (label 1, using the target's difference index 0) and
/// `per_class` rows of uniform random bytes (label 0).
nn::Dataset collect_real_random_dataset(const Target& target,
                                        std::size_t per_class,
                                        util::Xoshiro256& rng);

}  // namespace mldist::core
