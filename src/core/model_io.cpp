#include "core/model_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/arch_zoo.hpp"
#include "nn/serialize.hpp"

namespace mldist::core {

namespace {
constexpr const char* kHeaderMagic = "MLDM1";

std::unique_ptr<nn::Sequential> build_named(const std::string& arch,
                                            std::size_t input_bits,
                                            std::size_t classes) {
  // The weights will be overwritten; the init RNG seed is irrelevant.
  util::Xoshiro256 rng(1);
  if (arch == "default-mlp") {
    return build_default_mlp(input_bits, classes, rng);
  }
  if (arch.rfind("gohr-net/", 0) == 0) {
    // Validated parse (core::gohr_net_depth): a malformed depth in a model
    // header is reported as a descriptive config error, not as an uncaught
    // std::stoul exception.
    return build_gohr_net(input_bits, classes, gohr_net_depth(arch), rng);
  }
  return build_architecture(arch, input_bits, classes, rng);
}
}  // namespace

void save_model(nn::Sequential& model, const std::string& arch,
                std::size_t input_bits, std::size_t classes,
                const std::string& path) {
  if (arch.find('\n') != std::string::npos) {
    throw std::invalid_argument("save_model: architecture name has newline");
  }
  // Validate that the name round-trips before writing anything.
  (void)build_named(arch, input_bits, classes);

  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_model: cannot open " + path);
  out << kHeaderMagic << "\n" << arch << "\n" << input_bits << " " << classes
      << "\n";
  nn::save_params(model, out);
  if (!out) throw std::runtime_error("save_model: write failed for " + path);
}

LoadedModel load_model(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_model: cannot open " + path);
  std::string magic;
  std::getline(in, magic);
  if (magic != kHeaderMagic) {
    throw std::runtime_error("load_model: bad header in " + path);
  }
  LoadedModel out;
  std::getline(in, out.arch);
  std::string dims;
  std::getline(in, dims);
  std::istringstream ds(dims);
  if (!(ds >> out.input_bits >> out.classes) || out.arch.empty()) {
    throw std::runtime_error("load_model: malformed header in " + path);
  }
  out.model = build_named(out.arch, out.input_bits, out.classes);
  // The payload carries a CRC-32 footer (see nn/serialize.hpp); surface
  // integrity failures with the path so "corrupt model file" errors are
  // actionable.
  try {
    nn::load_params(*out.model, in);
  } catch (const std::exception& e) {
    throw std::runtime_error("load_model: " + path + ": " + e.what());
  }
  return out;
}

}  // namespace mldist::core
