// Linear classifier baseline (§6: "a Support Vector Machine (SVM) can be
// used instead of neural network").
//
// A multiclass linear SVM trained by SGD on the one-vs-rest hinge loss with
// L2 regularisation.  It shares the Dataset format with the neural models,
// so it can be dropped into the distinguisher pipeline for the ablation
// bench comparing model classes.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/model.hpp"
#include "util/rng.hpp"

namespace mldist::core {

struct LinearSvmOptions {
  int epochs = 5;
  float learning_rate = 0.05f;
  float l2 = 1e-4f;
  std::uint64_t seed = 0x5f3759dfULL;
};

class LinearSvm {
 public:
  LinearSvm(std::size_t features, std::size_t classes);

  /// SGD on the one-vs-rest hinge loss; returns final training accuracy.
  double fit(const nn::Dataset& train, const LinearSvmOptions& options);

  std::vector<int> predict(const nn::Mat& x) const;
  double accuracy(const nn::Dataset& data) const;

  std::size_t param_count() const { return w_.size() + b_.size(); }

 private:
  /// Per-class decision scores for one sample row.
  void scores(const float* row, std::vector<float>& out) const;

  std::size_t features_;
  std::size_t classes_;
  std::vector<float> w_;  // classes x features, row-major
  std::vector<float> b_;  // classes
};

}  // namespace mldist::core
