// Algorithm 2 of the paper: the machine-learning-assisted differential
// distinguisher.
//
// Offline: collect t-class training data from the (round-reduced) cipher,
// train a classifier, record the training/validation accuracy a.  Abort if
// a is not significantly above 1/t.
//
// Online: query the unknown ORACLE, predict classes for its output
// differences and tally the prediction accuracy a'.  Decide CIPHER when a'
// is statistically closer to a than to 1/t (the paper states the rule as
// a' = a vs a' = 1/t; with finite samples we compare binomial z-scores).
//
// Both phases run on the parallel data engine (core/dataset): collection
// fans out over derived per-chunk RNG streams and scoring over fixed
// batches, so reports are bitwise identical for any `threads` setting.
#pragma once

#include <memory>
#include <optional>

#include "core/checkpoint.hpp"
#include "core/dataset.hpp"
#include "core/experiment.hpp"
#include "core/oracle.hpp"
#include "core/telemetry.hpp"
#include "nn/model.hpp"
#include "nn/optimizer.hpp"
#include "util/fault.hpp"

namespace mldist::core {

class LinearSvm;

enum class Verdict { kCipher, kRandom, kInconclusive };

struct TrainReport {
  double train_accuracy = 0.0;  ///< a, on the training split
  double val_accuracy = 0.0;    ///< a on held-out data (used for decisions)
  double train_loss = 0.0;
  std::size_t samples = 0;      ///< labelled rows seen (base inputs * t)
  double log2_data = 0.0;       ///< log2 of oracle queries spent offline
  bool usable = false;          ///< a > 1/t with margin (Algorithm 2 line 12)
  PhaseTelemetry collect;       ///< offline data generation (train + val)
  PhaseTelemetry fit;           ///< training; rows = samples seen over epochs
  double seconds_per_epoch = 0.0;
  RobustnessTelemetry robustness;  ///< retry/rollback/degradation record
};

struct OnlineReport {
  double accuracy = 0.0;  ///< a' over the online predictions
  std::size_t samples = 0;
  double log2_data = 0.0;
  double z_vs_random = 0.0;  ///< z-score of a' against 1/t
  Verdict verdict = Verdict::kInconclusive;
  PhaseTelemetry collect;    ///< online data generation
  PhaseTelemetry predict;    ///< batched model scoring
};

struct DistinguisherOptions {
  int epochs = 5;
  std::size_t batch_size = 128;
  float learning_rate = 1e-3f;
  double validation_fraction = 0.1;  ///< held out from the offline data
  double z_threshold = 3.0;          ///< significance for all decisions
  std::uint64_t seed = 0x600d5eedULL;
  std::size_t threads = 0;           ///< engine workers: 0 = hardware, 1 = serial
  std::size_t collect_chunk = 64;    ///< base inputs per derived RNG stream
  std::function<void(const nn::EpochStats&)> on_epoch;

  // --- robustness (ISSUE 2) ----------------------------------------------
  /// Divergence handling: rollback to the best checkpoint, back off the
  /// learning rate, retry; degrade to the linear baseline when exhausted.
  RetryPolicy retry;
  /// Thresholds of the fit-time numeric-health guard.
  nn::HealthOptions health;
  /// Master switch for the guard (off = the pre-robustness fit behaviour).
  bool health_checks = true;
  /// Injected faults, used by tests and the robustness soak bench to force
  /// the recovery paths deterministically.  Off by default.
  util::FaultConfig faults;

  DistinguisherOptions() = default;
  /// Thin projection of the unified config (see core/experiment.hpp).
  explicit DistinguisherOptions(const ExperimentConfig& config);

  /// The data-engine options for a phase whose chunk streams are keyed on
  /// `stream_seed`.
  CollectOptions collect_options(std::uint64_t stream_seed) const;

  /// The nn-level training options, derived from this single source of
  /// truth (instead of copying epochs/batch/seed field by field at every
  /// call site).  The on_epoch callback is forwarded by reference — `this`
  /// must outlive the fit call.
  nn::FitOptions fit_options(std::uint64_t shuffle_seed,
                             const nn::Dataset* validation) const;
};

/// Owns the model and the Algorithm 2 phases for one target.
class MLDistinguisher {
 public:
  /// `model` must map output_bytes*8 features to t logits.
  MLDistinguisher(std::unique_ptr<nn::Sequential> model,
                  DistinguisherOptions options = {});

  /// Convenience: build model and options from one ExperimentConfig.
  MLDistinguisher(const Target& target, const ExperimentConfig& config);

  ~MLDistinguisher();

  /// Offline phase: collect `base_inputs` queries from the cipher, train.
  /// Fault-tolerant: divergences detected by the numeric-health guard roll
  /// the model back to the best checkpoint and retry with a backed-off
  /// learning rate (options.retry); when all attempts fail the
  /// distinguisher degrades to the linear baseline classifier and the
  /// report's robustness telemetry records the degradation.
  TrainReport train(const Target& target, std::size_t base_inputs);

  /// Online phase against an unknown oracle; needs a prior train().
  /// `seed` keys the online query stream so repeated games are independent;
  /// 0 selects a default stream derived from the construction seed.
  OnlineReport test(const Oracle& oracle, std::size_t base_inputs,
                    std::uint64_t seed = 0) const;

  /// Decision rule given the recorded training accuracy.
  Verdict decide(double online_accuracy, std::size_t online_samples) const;

  /// Campaign snapshot-resume path: install a previously recorded train
  /// report (and the class count `t` it was produced with) without running
  /// train().  The caller is responsible for restoring the matching model
  /// parameters (core::CheckpointManager snapshot) first; test()/decide()
  /// then behave exactly as if this process had trained the model itself.
  /// Clears any degraded-baseline state.
  void adopt_train_report(const TrainReport& report, std::size_t t);

  nn::Sequential& model() { return *model_; }
  const TrainReport& last_train() const { return train_report_; }
  /// True when training exhausted its retries and the online phase now runs
  /// on the linear baseline classifier instead of the neural model.
  bool degraded() const { return baseline_ != nullptr; }

 private:
  std::unique_ptr<nn::Sequential> model_;
  DistinguisherOptions options_;
  TrainReport train_report_;
  std::size_t t_ = 0;
  std::unique_ptr<LinearSvm> baseline_;  ///< set when degraded
};

}  // namespace mldist::core
