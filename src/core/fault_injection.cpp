#include "core/fault_injection.hpp"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>

namespace mldist::core {

namespace {
// A query is re-issued at most this many times per drop burst, so a
// pathological drop_prob cannot stall collection forever.
constexpr int kMaxConsecutiveDrops = 8;
}

void FaultyOracle::query(util::Xoshiro256& rng,
                         std::vector<std::vector<std::uint8_t>>& diffs) const {
  // All fault decisions come from a child stream forked off the caller's
  // chunk RNG: deterministic in the collection seed, independent of the
  // worker count, and decorrelated from the data draws themselves.
  util::Xoshiro256 faults = rng.fork();

  int drops = 0;
  while (config_.drop_prob > 0.0 && drops < kMaxConsecutiveDrops &&
         faults.next_double() < config_.drop_prob) {
    // The answer is lost in flight: the oracle did the work (consuming its
    // RNG draws) but the caller never sees it and must re-issue.
    inner_.query(rng, diffs);
    ++drops;
  }
  if (drops > 0) drops_.fetch_add(drops, std::memory_order_relaxed);

  if (config_.latency_spike_prob > 0.0 &&
      faults.next_double() < config_.latency_spike_prob) {
    latency_spikes_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(
        std::chrono::microseconds(config_.latency_spike_us));
  }

  inner_.query(rng, diffs);

  if (config_.bit_flip_prob > 0.0 &&
      faults.next_double() < config_.bit_flip_prob && !diffs.empty()) {
    const std::size_t d = faults.next_below(diffs.size());
    if (!diffs[d].empty()) {
      const std::size_t bit = faults.next_below(diffs[d].size() * 8);
      diffs[d][bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      bit_flips_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  queries_.fetch_add(1, std::memory_order_relaxed);
}

FaultyOracle::Counters FaultyOracle::counters() const {
  Counters c;
  c.queries = queries_.load(std::memory_order_relaxed);
  c.drops = drops_.load(std::memory_order_relaxed);
  c.bit_flips = bit_flips_.load(std::memory_order_relaxed);
  c.latency_spikes = latency_spikes_.load(std::memory_order_relaxed);
  return c;
}

void FaultyOracle::reset_counters() {
  queries_.store(0, std::memory_order_relaxed);
  drops_.store(0, std::memory_order_relaxed);
  bit_flips_.store(0, std::memory_order_relaxed);
  latency_spikes_.store(0, std::memory_order_relaxed);
}

void flip_file_bit(const std::string& path, std::size_t byte_offset,
                   unsigned bit) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  if (!f) throw std::runtime_error("flip_file_bit: cannot open " + path);
  f.seekg(static_cast<std::streamoff>(byte_offset));
  char byte = 0;
  if (!f.read(&byte, 1)) {
    throw std::runtime_error("flip_file_bit: offset past end of " + path);
  }
  byte = static_cast<char>(byte ^ static_cast<char>(1u << (bit % 8)));
  f.seekp(static_cast<std::streamoff>(byte_offset));
  f.write(&byte, 1);
  if (!f) throw std::runtime_error("flip_file_bit: write failed for " + path);
}

void truncate_file(const std::string& path, std::size_t size) {
  std::error_code ec;
  const auto current = std::filesystem::file_size(path, ec);
  if (ec) throw std::runtime_error("truncate_file: cannot stat " + path);
  if (size > current) {
    throw std::runtime_error("truncate_file: would grow " + path);
  }
  std::filesystem::resize_file(path, size, ec);
  if (ec) throw std::runtime_error("truncate_file: resize failed for " + path);
}

void overwrite_file_prefix(const std::string& path, const std::string& prefix) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  if (!f) throw std::runtime_error("overwrite_file_prefix: cannot open " + path);
  f.write(prefix.data(), static_cast<std::streamsize>(prefix.size()));
  if (!f) {
    throw std::runtime_error("overwrite_file_prefix: write failed for " + path);
  }
}

}  // namespace mldist::core
