// The full distinguisher game (§3.1): a referee secretly picks
// ORACLE <-$- {CIPHER, RANDOM}; the attacker runs the online phase of a
// trained MLDistinguisher and must name the oracle.  `play_games` repeats
// the game and reports the attacker's success rate together with the
// paper's headline numbers (accuracy on cipher data vs random data).
//
// Games are independent, so they fan out over the thread pool: the
// referee's coin flips and per-game online seeds are drawn serially up
// front (preserving the referee stream), then each game runs in parallel
// and the tallies are reduced in game order — the report is bitwise
// identical for any worker count.
#pragma once

#include "core/distinguisher.hpp"
#include "core/telemetry.hpp"

namespace mldist::core {

struct GameReport {
  std::size_t games = 0;
  /// Games where the attacker named the oracle correctly.  An inconclusive
  /// verdict is never correct — a distinguisher that refuses to answer has
  /// not won the game — so `correct + inconclusive <= games` and the two
  /// tallies never overlap (a game is counted in at most one of them;
  /// confidently wrong answers are in neither).
  std::size_t correct = 0;
  /// Games whose verdict was Verdict::kInconclusive.  These count AGAINST
  /// success_rate (the denominator stays `games`); they are tallied
  /// separately so reports can tell "wrong" from "underpowered".  This
  /// accounting is pinned by the game_report accounting test.
  std::size_t inconclusive = 0;
  double success_rate = 0.0;        ///< correct / games (see above)
  double mean_cipher_accuracy = 0.0;  ///< mean a' when ORACLE = CIPHER
  double mean_random_accuracy = 0.0;  ///< mean a' when ORACLE = RANDOM
  PhaseTelemetry telemetry;  ///< queries/rows across all games, wall time
};

/// Play `games` independent rounds with `online_base_inputs` online base
/// inputs each.  The distinguisher must already be trained on `target`.
/// `threads` controls the game-level fan-out (0 = hardware, 1 = serial);
/// it never changes the report, only the wall time.
GameReport play_games(const MLDistinguisher& dist, const Target& target,
                      std::size_t games, std::size_t online_base_inputs,
                      std::uint64_t seed, std::size_t threads = 0);

/// Convenience: budgets, seed and fan-out from one ExperimentConfig.
GameReport play_games(const MLDistinguisher& dist, const Target& target,
                      const ExperimentConfig& config);

}  // namespace mldist::core
