// ExperimentConfig: one declarative record for a full Algorithm-2 run.
//
// Every knob an experiment needs — the target primitive, the architecture
// (by arch_zoo name), the training hyper-parameters, the sample budgets of
// the offline/online phases, the seed and the worker count — lives here
// once.  MLDistinguisher, play_games, the benches and mldist_cli all
// consume this record instead of each growing its own ad-hoc option struct;
// DistinguisherOptions keeps a thin constructor from it so existing call
// sites keep compiling.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nn/model.hpp"
#include "util/rng.hpp"

namespace mldist::core {

class Target;

struct ExperimentConfig {
  // --- what to attack -----------------------------------------------------
  std::string target = "gimli-hash";  ///< see make_target() for the names
  int rounds = 7;                     ///< round budget (init clocks for trivium)
  /// Where the t differences are injected: "plaintext" (the paper's
  /// chosen-plaintext game) or "related-key" (arXiv 2201.03767; only the
  /// keyed block-cipher/MAC targets support it).
  std::string diff_site = "plaintext";
  /// The t difference specifiers, target-interpreted: XOR masks for the
  /// block-cipher/MAC targets (speck, simon, simeck, present, chaskey,
  /// gift64, gift128, toy), byte/word positions for the sponge and stream
  /// targets (gimli-*, salsa, trivium).  Empty = the target's defaults.
  std::vector<std::uint64_t> diffs;

  // --- classifier ---------------------------------------------------------
  std::string arch = "default-mlp";   ///< "default-mlp", an arch_zoo name
                                      ///< ("MLP II", ...) or "gohr-net/D"
  int epochs = 5;
  std::size_t batch_size = 128;
  float learning_rate = 1e-3f;
  double validation_fraction = 0.1;

  // --- experiment protocol ------------------------------------------------
  double z_threshold = 3.0;
  std::uint64_t seed = 0x600d5eedULL;
  std::size_t threads = 0;            ///< 0 = hardware, 1 = serial
  std::size_t offline_base_inputs = 4000;
  std::size_t online_base_inputs = 2000;
  std::size_t games = 12;             ///< oracle games for play_games

  // --- fault tolerance (ISSUE 2) ------------------------------------------
  int max_retries = 3;       ///< fit attempts before degrading to the baseline
  float lr_backoff = 0.5f;   ///< learning-rate factor applied per retry
  std::string checkpoint_path;  ///< empty = auto temp file, removed after train

  /// Epoch progress callback, forwarded (not copied) into training.
  std::function<void(const nn::EpochStats&)> on_epoch;

  /// Instantiate the configured target.  Throws std::invalid_argument for
  /// unknown names, for a diff_site the target does not support, or for
  /// out-of-range difference specifiers.  Known names: gimli-hash,
  /// gimli-cipher, speck, simon, simeck, present, chaskey, gift64, gift128,
  /// toy, salsa, trivium.
  std::unique_ptr<Target> make_target() const;

  /// Instantiate the configured architecture for `target`'s shapes, with
  /// weight init keyed on this config's seed.
  std::unique_ptr<nn::Sequential> make_model(const Target& target) const;

  /// The config as one JSON object (hyper-parameters only, no callbacks).
  std::string to_json() const;
};

}  // namespace mldist::core
