#include "core/online_game.hpp"

namespace mldist::core {

GameReport play_games(const MLDistinguisher& dist, const Target& target,
                      std::size_t games, std::size_t online_base_inputs,
                      std::uint64_t seed) {
  util::Xoshiro256 referee(seed);
  const CipherOracle cipher(target);
  const RandomOracle random(target.num_differences(), target.output_bytes());

  GameReport rep;
  rep.games = games;
  double cipher_acc_sum = 0.0;
  std::size_t cipher_games = 0;
  double random_acc_sum = 0.0;
  std::size_t random_games = 0;

  for (std::size_t g = 0; g < games; ++g) {
    const bool is_cipher = (referee.next_u64() & 1) != 0;
    const Oracle& oracle =
        is_cipher ? static_cast<const Oracle&>(cipher)
                  : static_cast<const Oracle&>(random);
    const OnlineReport online =
        dist.test(oracle, online_base_inputs, referee.next_u64() | 1);
    if (is_cipher) {
      cipher_acc_sum += online.accuracy;
      ++cipher_games;
      if (online.verdict == Verdict::kCipher) ++rep.correct;
    } else {
      random_acc_sum += online.accuracy;
      ++random_games;
      if (online.verdict == Verdict::kRandom) ++rep.correct;
    }
    if (online.verdict == Verdict::kInconclusive) ++rep.inconclusive;
  }
  rep.success_rate =
      games > 0 ? static_cast<double>(rep.correct) / static_cast<double>(games)
                : 0.0;
  if (cipher_games > 0) {
    rep.mean_cipher_accuracy = cipher_acc_sum / static_cast<double>(cipher_games);
  }
  if (random_games > 0) {
    rep.mean_random_accuracy = random_acc_sum / static_cast<double>(random_games);
  }
  return rep;
}

}  // namespace mldist::core
