#include "core/online_game.hpp"

#include <algorithm>

#include "core/targets.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace mldist::core {

namespace {
constexpr std::uint64_t kGameStream = 0x9a3e5ULL;
}

GameReport play_games(const MLDistinguisher& dist, const Target& target,
                      std::size_t games, std::size_t online_base_inputs,
                      std::uint64_t seed, std::size_t threads) {
  obs::Span games_span("games", "core");
  games_span.arg("games", static_cast<std::uint64_t>(games))
      .arg("online_base_inputs",
           static_cast<std::uint64_t>(online_base_inputs));
  const util::Timer timer;
  util::Xoshiro256 referee(seed);
  const CipherOracle cipher(target);
  const RandomOracle random(target.num_differences(), target.output_bytes());

  // Referee draws happen serially, before the fan-out, in the same order as
  // a serial tournament: the choice of oracles and online streams is a
  // function of `seed` alone.
  struct Setup {
    bool is_cipher = false;
    std::uint64_t online_seed = 1;
  };
  std::vector<Setup> setup(games);
  for (auto& s : setup) {
    s.is_cipher = (referee.next_u64() & 1) != 0;
    s.online_seed = referee.next_u64() | 1;
  }

  std::vector<OnlineReport> outcome(games);
  const auto play_range = [&](std::size_t begin, std::size_t end) {
    for (std::size_t g = begin; g < end; ++g) {
      const Oracle& oracle = setup[g].is_cipher
                                 ? static_cast<const Oracle&>(cipher)
                                 : static_cast<const Oracle&>(random);
      outcome[g] = dist.test(oracle, online_base_inputs, setup[g].online_seed);
    }
  };

  const std::size_t workers =
      util::parallel_for_threads(threads, games, play_range);

  GameReport rep;
  rep.games = games;
  double cipher_acc_sum = 0.0;
  std::size_t cipher_games = 0;
  double random_acc_sum = 0.0;
  std::size_t random_games = 0;
  for (std::size_t g = 0; g < games; ++g) {
    const OnlineReport& online = outcome[g];
    if (setup[g].is_cipher) {
      cipher_acc_sum += online.accuracy;
      ++cipher_games;
      if (online.verdict == Verdict::kCipher) ++rep.correct;
    } else {
      random_acc_sum += online.accuracy;
      ++random_games;
      if (online.verdict == Verdict::kRandom) ++rep.correct;
    }
    if (online.verdict == Verdict::kInconclusive) ++rep.inconclusive;
    rep.telemetry.queries += online.collect.queries;
    rep.telemetry.rows += online.collect.rows;
  }
  rep.success_rate =
      games > 0 ? static_cast<double>(rep.correct) / static_cast<double>(games)
                : 0.0;
  if (cipher_games > 0) {
    rep.mean_cipher_accuracy = cipher_acc_sum / static_cast<double>(cipher_games);
  }
  if (random_games > 0) {
    rep.mean_random_accuracy = random_acc_sum / static_cast<double>(random_games);
  }
  rep.telemetry.seconds = timer.seconds();
  rep.telemetry.threads = workers;
  {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    reg.add(reg.counter("core.games.played"), rep.games);
    reg.add(reg.counter("core.games.correct"), rep.correct);
    reg.add(reg.counter("core.games.inconclusive"), rep.inconclusive);
  }
  rep.telemetry.publish("games");
  return rep;
}

GameReport play_games(const MLDistinguisher& dist, const Target& target,
                      const ExperimentConfig& config) {
  return play_games(dist, target, config.games, config.online_base_inputs,
                    util::derive_stream_seed(config.seed, kGameStream),
                    config.threads);
}

}  // namespace mldist::core
