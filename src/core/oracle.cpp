// Oracle implementations are header-only; this translation unit anchors the
// vtable of the abstract base.
#include "core/oracle.hpp"

namespace mldist::core {}  // namespace mldist::core
