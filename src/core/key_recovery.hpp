// Extension (paper §6: "our model does not have a key recovery
// functionality ... we leave the problem of key recovery for future
// research"): a Gohr-style last-round-key recovery on round-reduced
// SPECK-32/64 built from the paper's own multi-difference distinguisher.
//
// Idea: train the Algorithm-2 distinguisher on (R-1)-round SPECK.  Attack
// R rounds: collect chosen-plaintext triples (P, P ^ d0, P ^ d1) encrypted
// under the victim key, then for every candidate last-round subkey k,
// decrypt the final round with k and ask the model to classify the
// resulting (R-1)-round output differences.  The correct candidate yields
// prediction accuracy ~a; wrong candidates score lower and the candidates
// are ranked by accuracy.
//
// Caveat specific to SPECK: the inverse round computes
// y = (y' ^ x') >>> 2 with no key involved, so every candidate — right or
// wrong — reconstructs the correct y-half difference.  Wrong candidates
// therefore score well above the 1/t floor (the model still reads the
// y-half); the true key separates because it alone also fixes the x-half.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/telemetry.hpp"
#include "nn/model.hpp"
#include "util/rng.hpp"

namespace mldist::core {

struct KeyRecoveryOptions {
  int total_rounds = 4;          ///< rounds of the attacked cipher (R)
  std::size_t base_inputs = 48;  ///< chosen-plaintext triples collected
  /// Candidate subkeys to score.  Empty = all 2^16 (slow but complete).
  std::vector<std::uint16_t> candidates;
  std::uint64_t seed = 0x6e45ULL;
  /// Candidate-scoring fan-out (0 = hardware, 1 = serial).  Candidates are
  /// scored independently and reduced in order, so the result never depends
  /// on this.
  std::size_t threads = 0;
};

struct KeyRecoveryResult {
  std::uint16_t true_subkey = 0;   ///< the victim's real last-round key
  std::uint16_t best_guess = 0;    ///< highest-scoring candidate
  std::size_t true_rank = 0;       ///< 0 = recovered exactly
  double best_score = 0.0;
  double true_score = 0.0;
  double mean_wrong_score = 0.0;   ///< average over wrong candidates
  std::size_t candidates_scored = 0;
  PhaseTelemetry telemetry;        ///< candidate-scoring throughput
};

/// Run the attack.  `model` must be trained on (total_rounds - 1)-round
/// SPECK with the same `diffs` (see SpeckTarget).  Deterministic in `seed`.
KeyRecoveryResult speck_last_round_key_recovery(
    nn::Sequential& model, std::span<const std::uint32_t> diffs,
    const KeyRecoveryOptions& options);

}  // namespace mldist::core
