// Offline-phase data collection (Algorithm 2, lines 2-9): turn oracle/target
// queries into a labelled bit-feature data set.  Sample row = the output
// difference unpacked into one float per bit; label = difference index i.
#pragma once

#include "core/oracle.hpp"
#include "nn/model.hpp"
#include "util/rng.hpp"

namespace mldist::core {

/// Query `oracle` for `base_inputs` fresh base inputs (producing
/// base_inputs * t labelled rows) and pack them into a Dataset.
nn::Dataset collect_dataset(const Oracle& oracle, std::size_t base_inputs,
                            util::Xoshiro256& rng);

/// Convenience: collect from the real primitive (the offline phase always
/// trains against the cipher).
nn::Dataset collect_dataset(const Target& target, std::size_t base_inputs,
                            util::Xoshiro256& rng);

}  // namespace mldist::core
