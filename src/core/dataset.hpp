// Offline-phase data collection (Algorithm 2, lines 2-9): turn oracle/target
// queries into a labelled bit-feature data set.  Sample row = the output
// difference unpacked into one float per bit; label = difference index i.
//
// Two entry points:
//  - the legacy serial path, which threads one caller-owned RNG through
//    every query in order (kept as the bitwise-stable reference and for
//    callers that interleave collection with other draws from the same
//    stream), and
//  - the parallel engine, which partitions the base inputs into a fixed
//    chunk grid, derives one independent RNG stream per chunk from a master
//    seed (util::derive_stream_seed), and fans the chunks out over a thread
//    pool.  Each chunk writes a disjoint row range of the pre-sized matrix,
//    so the data set is a pure function of (seed, chunk grid) — bitwise
//    identical for 1, 2 or N workers (the contract mat.cpp documents for
//    the matmul kernels).
#pragma once

#include "core/oracle.hpp"
#include "core/telemetry.hpp"
#include "nn/model.hpp"
#include "util/rng.hpp"

namespace mldist::core {

/// Configuration of the parallel collection engine.
struct CollectOptions {
  std::uint64_t seed = 0x600d5eedULL;  ///< master seed of the chunk streams
  /// Worker count: 0 = the process-wide pool (hardware sized), 1 = inline
  /// serial execution, otherwise a dedicated pool of that many threads.
  /// Never affects the collected bytes, only the wall time.
  std::size_t threads = 0;
  /// Base inputs per chunk.  Part of the determinism contract: changing it
  /// changes the derived streams and therefore the data.
  std::size_t chunk_base_inputs = 64;
};

/// Query `oracle` for `base_inputs` fresh base inputs (producing
/// base_inputs * t labelled rows) and pack them into a Dataset.
nn::Dataset collect_dataset(const Oracle& oracle, std::size_t base_inputs,
                            util::Xoshiro256& rng);

/// Convenience: collect from the real primitive (the offline phase always
/// trains against the cipher).
nn::Dataset collect_dataset(const Target& target, std::size_t base_inputs,
                            util::Xoshiro256& rng);

/// Parallel engine: collect `base_inputs` queries with per-chunk derived
/// RNG streams.  Fills `telemetry` (queries/sec, rows/sec, wall time,
/// thread count) when given.
nn::Dataset collect_dataset(const Oracle& oracle, std::size_t base_inputs,
                            const CollectOptions& options,
                            PhaseTelemetry* telemetry = nullptr);

nn::Dataset collect_dataset(const Target& target, std::size_t base_inputs,
                            const CollectOptions& options,
                            PhaseTelemetry* telemetry = nullptr);

}  // namespace mldist::core
