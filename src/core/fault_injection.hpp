// Fault-injection harness (ISSUE 2): make the recovery paths deterministic
// and testable.
//
// FaultyOracle wraps any Oracle and injects the production failure modes of
// a distinguisher service talking to a remote oracle:
//   - dropped queries: the answer is lost in flight and the query is
//     re-issued (costing extra oracle work, counted per drop),
//   - bit-flipped outputs: one random bit of one answer is corrupted,
//   - latency spikes: the answer stalls for a configured duration.
//
// Determinism: every fault decision is drawn from a stream forked off the
// caller's RNG.  The parallel collection engine hands each chunk its own
// derived stream, so the fault schedule is a pure function of the
// collection seed — same seed ⇒ same faults, for any worker count.
//
// The file injectors below corrupt model files on disk (bit flips,
// truncation, header smashing) so the model_io/serialize error paths are
// exercised by tests instead of only by real-world corruption.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "core/oracle.hpp"
#include "util/fault.hpp"

namespace mldist::core {

/// Wraps `inner` (not owned; must outlive this) and injects the oracle
/// faults configured in `config`.  Thread-safe: the fault counters are
/// atomics, and all schedule state lives in the caller's RNG stream.
class FaultyOracle : public Oracle {
 public:
  FaultyOracle(const Oracle& inner, util::FaultConfig config)
      : inner_(inner), config_(config) {}

  std::size_t num_differences() const override {
    return inner_.num_differences();
  }
  std::size_t output_bytes() const override { return inner_.output_bytes(); }
  void query(util::Xoshiro256& rng,
             std::vector<std::vector<std::uint8_t>>& diffs) const override;

  struct Counters {
    std::uint64_t queries = 0;         ///< answered queries
    std::uint64_t drops = 0;           ///< answers lost and re-issued
    std::uint64_t bit_flips = 0;       ///< corrupted answers
    std::uint64_t latency_spikes = 0;  ///< stalled answers
  };
  Counters counters() const;
  void reset_counters();

 private:
  const Oracle& inner_;
  util::FaultConfig config_;
  mutable std::atomic<std::uint64_t> queries_{0};
  mutable std::atomic<std::uint64_t> drops_{0};
  mutable std::atomic<std::uint64_t> bit_flips_{0};
  mutable std::atomic<std::uint64_t> latency_spikes_{0};
};

// --- corrupt-file injectors (model_io / serialize error paths) ------------

/// Flip bit `bit` (0..7) of the byte at `byte_offset`.  Throws
/// std::runtime_error on I/O failure or out-of-range offset.
void flip_file_bit(const std::string& path, std::size_t byte_offset,
                   unsigned bit = 0);

/// Truncate the file to `size` bytes (must not grow it).
void truncate_file(const std::string& path, std::size_t size);

/// Overwrite the first bytes of the file with `prefix` (e.g. a bad magic).
void overwrite_file_prefix(const std::string& path, const std::string& prefix);

}  // namespace mldist::core
