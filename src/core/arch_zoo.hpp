// The ten Table-3 architectures from the paper's manual search (§5.1), plus
// the exact parameter counts the paper reports.
//
// The paper's "(128, 1024, 2)" notation counts an INPUT Dense(128) layer —
// that is the only reading under which the printed parameter counts match
// Keras (e.g. MLP I: 226,633 exactly).  We adopt it: every MLP is
// Dense(in->128) -> act -> Dense(...) -> ... -> Dense(2), acting on
// `input_bits` features (128 for the Gimli experiments).
//
// LSTMs read the 128 input bits as 16 timesteps x 8 features and keep the
// dense tail; CNNs read them as 128 positions x 1 channel with kernel-3
// convolutions and a global max-pool before the dense tail (the paper does
// not state kernel sizes; parameter counts for CNNs therefore differ and
// `paper_params` records the paper's number for the comparison table).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/model.hpp"
#include "util/rng.hpp"

namespace mldist::core {

struct ArchInfo {
  std::string name;         ///< "MLP III", "LSTM I", ...
  std::string architecture; ///< the tuple as printed in the paper
  std::string activation;   ///< hidden activation as printed
  std::size_t paper_params = 0;
  double paper_time_s = 0.0;
  double paper_accuracy = 0.0;
  bool params_should_match = false;  ///< true for the MLPs
};

/// All ten Table-3 rows, in the paper's order.
const std::vector<ArchInfo>& table3_architectures();

/// Instantiate the named architecture for `input_bits` features and
/// `classes` outputs.  Throws std::invalid_argument for unknown names.
std::unique_ptr<nn::Sequential> build_architecture(const std::string& name,
                                                   std::size_t input_bits,
                                                   std::size_t classes,
                                                   util::Xoshiro256& rng);

/// The paper's default model for the Table-2 experiments: MLP II
/// (128, 1024, 2) with ReLU — "even a three layer neural network works".
std::unique_ptr<nn::Sequential> build_default_mlp(std::size_t input_bits,
                                                  std::size_t classes,
                                                  util::Xoshiro256& rng);

/// Extension: a small residual convolutional network in the spirit of
/// Gohr's CRYPTO'19 distinguisher (width-1 input convolution, `depth`
/// residual blocks of kernel-3 convolutions with batch normalisation, then
/// a dense head).  Not part of the paper's Table 3; used by the extension
/// benches to compare against the paper's plain MLPs.
std::unique_ptr<nn::Sequential> build_gohr_net(std::size_t input_bits,
                                               std::size_t classes,
                                               std::size_t depth,
                                               util::Xoshiro256& rng);

/// Parse and validate the depth of a "gohr-net/D" architecture name.
/// D must be a plain decimal in [1, 64] with nothing following it; throws
/// std::invalid_argument (the CLI's typed config-error path, exit 2)
/// naming the offending string otherwise.  Both model construction
/// (ExperimentConfig::make_model) and model-file loading (core/model_io)
/// go through this, so "gohr-net/d=x" surfaces as a descriptive config
/// error instead of an uncaught std::stoul exception.
std::size_t gohr_net_depth(const std::string& arch);

}  // namespace mldist::core
