#include "kernels/dispatch.hpp"

#include <cstdlib>
#include <stdexcept>

#include "obs/log.hpp"

namespace mldist::kernels {

// Defined in gemm_avx2.cpp so the answer reflects how that translation
// unit was actually compiled.
bool detail_avx2_compiled();

namespace {

struct State {
  Impl active;
  std::string env;

  State() {
    const char* raw = std::getenv("MLDIST_KERNEL");
    env = raw ? raw : "";
    active = best_supported();
    if (!env.empty()) {
      Impl requested;
      if (backend_from_string(env, requested, "MLDIST_KERNEL")) {
        active = requested;
      } else {
        obs::log_warn("kernels", "falling back to best supported kernel")
            .field("using", impl_name(active));
      }
    }
  }

  static Impl best_supported() {
    return supported(Impl::kAvx2) ? Impl::kAvx2 : Impl::kBlocked;
  }
};

State& state() {
  static State s;
  return s;
}

}  // namespace

const char* impl_name(Impl impl) {
  switch (impl) {
    case Impl::kReference:
      return "reference";
    case Impl::kBlocked:
      return "blocked";
    case Impl::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool parse_impl(std::string_view name, Impl& out) {
  if (name == "reference") {
    out = Impl::kReference;
    return true;
  }
  if (name == "blocked") {
    out = Impl::kBlocked;
    return true;
  }
  if (name == "avx2") {
    out = Impl::kAvx2;
    return true;
  }
  return false;
}

bool backend_from_string(std::string_view name, Impl& out,
                         std::string_view source) {
  Impl impl;
  if (!parse_impl(name, impl)) {
    obs::log_warn("kernels", "unknown kernel backend '" + std::string(name) +
                                 "' (expected reference|blocked|avx2)")
        .field("source", source);
    return false;
  }
  if (!supported(impl)) {
    obs::log_warn("kernels", "kernel backend '" + std::string(name) +
                                 "' is not supported on this machine")
        .field("source", source);
    return false;
  }
  out = impl;
  return true;
}

bool supported(Impl impl) {
  switch (impl) {
    case Impl::kReference:
    case Impl::kBlocked:
      return true;
    case Impl::kAvx2:
      return detail_avx2_compiled() && __builtin_cpu_supports("avx2") &&
             __builtin_cpu_supports("fma");
  }
  return false;
}

std::vector<Impl> available_impls() {
  std::vector<Impl> impls;
  for (Impl impl : {Impl::kReference, Impl::kBlocked, Impl::kAvx2}) {
    if (supported(impl)) impls.push_back(impl);
  }
  return impls;
}

Impl dispatch() { return state().active; }

void set_dispatch(Impl impl) {
  if (!supported(impl)) {
    throw std::invalid_argument(std::string("kernel implementation '") +
                                impl_name(impl) +
                                "' is not supported on this machine");
  }
  state().active = impl;
}

void set_dispatch(std::string_view name) {
  Impl impl;
  if (!parse_impl(name, impl)) {
    throw std::invalid_argument("unknown kernel '" + std::string(name) +
                                "' (expected reference|blocked|avx2)");
  }
  set_dispatch(impl);
}

const std::string& env_request() { return state().env; }

}  // namespace mldist::kernels
