#include "kernels/norm_act.hpp"

#include "kernels/gemm_internal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mldist::kernels {

void norm_act_inplace(float* c, std::size_t rows, std::size_t cols,
                      const GemmEpilogue& epilogue) {
  {
    static const obs::MetricId calls =
        obs::MetricsRegistry::global().counter("kernels.norm_act.calls");
    obs::MetricsRegistry::global().add(calls);
  }
  obs::Span span("norm_act", "kernels");
  span.arg("rows", static_cast<std::uint64_t>(rows))
      .arg("cols", static_cast<std::uint64_t>(cols));
  for (std::size_t i = 0; i < rows; ++i) {
    float* row = c + i * cols;
    for (std::size_t j = 0; j < cols; ++j) {
      row[j] = detail::apply_epilogue(row[j], epilogue, j);
    }
  }
}

}  // namespace mldist::kernels
