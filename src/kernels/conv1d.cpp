#include "kernels/conv1d.hpp"

#include <cstring>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mldist::kernels {

namespace {

struct ConvMetrics {
  obs::MetricId calls[2];

  ConvMetrics() {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    calls[0] = reg.counter("kernels.conv1d.calls.im2col");
    calls[1] = reg.counter("kernels.conv1d.calls.direct");
  }
};

void check_shape(const Conv1DShape& s) {
  if (s.kernel == 0 || s.kernel % 2 == 0) {
    throw std::invalid_argument("conv1d_forward: kernel must be odd");
  }
  if (s.length == 0 || s.cin == 0 || s.cout == 0) {
    throw std::invalid_argument("conv1d_forward: empty shape");
  }
}

/// Zero-padded patch rows for every (sample, position) into `patches`
/// (batch*length x kernel*cin), exactly nn::Conv1D::im2col's layout.
void fill_patches(const float* x, const Conv1DShape& s, float* patches) {
  const std::size_t kw = s.kernel * s.cin;
  const std::ptrdiff_t half = static_cast<std::ptrdiff_t>(s.kernel / 2);
  std::memset(patches, 0, s.batch * s.length * kw * sizeof(float));
  for (std::size_t n = 0; n < s.batch; ++n) {
    const float* xr = x + n * s.length * s.cin;
    for (std::size_t p = 0; p < s.length; ++p) {
      float* pr = patches + (n * s.length + p) * kw;
      for (std::size_t k = 0; k < s.kernel; ++k) {
        const std::ptrdiff_t q = static_cast<std::ptrdiff_t>(p) +
                                 static_cast<std::ptrdiff_t>(k) - half;
        if (q < 0 || q >= static_cast<std::ptrdiff_t>(s.length)) continue;
        std::memcpy(pr + k * s.cin, xr + static_cast<std::size_t>(q) * s.cin,
                    s.cin * sizeof(float));
      }
    }
  }
}

void conv_im2col(const float* x, float* y, const Conv1DShape& s,
                 const float* w, const GemmEpilogue& ep, float* scratch) {
  const std::size_t kw = s.kernel * s.cin;
  fill_patches(x, s, scratch);
  gemm(scratch, static_cast<std::ptrdiff_t>(kw), 1, w,
       static_cast<std::ptrdiff_t>(s.cout), 1, y, s.batch * s.length, kw,
       s.cout, ep);
}

void conv_direct(const float* x, float* y, const Conv1DShape& s,
                 const float* w, const GemmEpilogue& ep, float* scratch) {
  const std::size_t kw = s.kernel * s.cin;
  const std::ptrdiff_t b_rs = static_cast<std::ptrdiff_t>(s.cout);
  if (s.kernel == 1) {
    // No padding anywhere: the whole batch is one strided view of x.
    gemm(x, static_cast<std::ptrdiff_t>(s.cin), 1, w, b_rs, 1, y,
         s.batch * s.length, s.cin, s.cout, ep);
    return;
  }
  // The whole call issues exactly TWO gemms regardless of batch size.  A
  // per-sample gemm loop would repack the (kw x cout) weight operand once
  // per call, and that packing traffic dominates the im2col savings for
  // distinguisher-sized convolutions.
  const std::size_t half = s.kernel / 2;
  const std::size_t border_rows = s.batch * 2 * half;
  // Every full-span window of the whole x buffer, as one strided view with
  // row stride cin.  Window n*length + (p - half) holds exactly the patch
  // row of (sample n, interior position p) — the same value sequence an
  // im2col row holds, so the fma chain is identical.  Better: its output
  // belongs at y row n*length + p = g + half for every interior window, a
  // CONSTANT row offset, so the product lands straight in y with no
  // scatter.  The kernel-1 windows straddling each sample boundary land
  // exactly on the border positions (rows [length-half, length) of sample
  // n and [0, half) of sample n+1), which the border pass below overwrites
  // with the correct zero-padded values.
  const std::size_t windows = s.batch * s.length - s.kernel + 1;
  float* patches = scratch;                        // border_rows x kw
  float* border_out = patches + border_rows * kw;  // border_rows x cout
  gemm(x, static_cast<std::ptrdiff_t>(s.cin), 1, w, b_rs, 1,
       y + half * s.cout, windows, kw, s.cout, ep);

  // Border patch rows for every sample: rows [n*2*half, n*2*half + half)
  // hold sample n's top positions, the next half rows its bottom ones.
  std::memset(patches, 0, border_rows * kw * sizeof(float));
  for (std::size_t n = 0; n < s.batch; ++n) {
    const float* xr = x + n * s.length * s.cin;
    float* pn = patches + n * 2 * half * kw;
    for (std::size_t p = 0; p < half; ++p) {
      // Position p reads x window [p - half, p + half]; lanes k < half - p
      // fall off the front and stay zero.
      float* pr = pn + p * kw;
      for (std::size_t k = half - p; k < s.kernel; ++k) {
        std::memcpy(pr + k * s.cin, xr + (p + k - half) * s.cin,
                    s.cin * sizeof(float));
      }
    }
    for (std::size_t p = s.length - half; p < s.length; ++p) {
      // Lanes k >= length - p + half fall off the back and stay zero.
      float* pr = pn + (half + p - (s.length - half)) * kw;
      for (std::size_t k = 0; k < s.length - p + half; ++k) {
        std::memcpy(pr + k * s.cin, xr + (p + k - half) * s.cin,
                    s.cin * sizeof(float));
      }
    }
  }
  gemm(patches, static_cast<std::ptrdiff_t>(kw), 1, w, b_rs, 1, border_out,
       border_rows, kw, s.cout, ep);

  // Overwrite the junk the interior view left at the border positions.
  for (std::size_t n = 0; n < s.batch; ++n) {
    float* yr = y + n * s.length * s.cout;
    const float* bo = border_out + n * 2 * half * s.cout;
    std::memcpy(yr, bo, half * s.cout * sizeof(float));
    std::memcpy(yr + (s.length - half) * s.cout, bo + half * s.cout,
                half * s.cout * sizeof(float));
  }
}

}  // namespace

const char* conv1d_algo_name(Conv1DAlgo algo) {
  return algo == Conv1DAlgo::kDirect ? "direct" : "im2col";
}

std::size_t conv1d_scratch_floats(const Conv1DShape& s, Conv1DAlgo algo) {
  check_shape(s);
  const std::size_t kw = s.kernel * s.cin;
  if (algo == Conv1DAlgo::kDirect && s.length >= s.kernel) {
    if (s.kernel == 1) return 0;
    const std::size_t border_rows = s.batch * 2 * (s.kernel / 2);
    return border_rows * (kw + s.cout);
  }
  return s.batch * s.length * kw;
}

void conv1d_forward(const float* x, float* y, const Conv1DShape& s,
                    const float* w, const GemmEpilogue& epilogue,
                    Conv1DAlgo algo, float* scratch) {
  check_shape(s);
  if (s.batch == 0) return;
  // No interior positions to carve out — the direct split degenerates.
  if (algo == Conv1DAlgo::kDirect && s.length < s.kernel) {
    algo = Conv1DAlgo::kIm2col;
  }
  {
    static const ConvMetrics metrics;
    obs::MetricsRegistry::global().add(
        metrics.calls[static_cast<std::size_t>(algo)]);
  }
  obs::Span span("conv1d", "kernels");
  span.arg("algo", conv1d_algo_name(algo))
      .arg("batch", static_cast<std::uint64_t>(s.batch))
      .arg("length", static_cast<std::uint64_t>(s.length))
      .arg("cin", static_cast<std::uint64_t>(s.cin))
      .arg("cout", static_cast<std::uint64_t>(s.cout))
      .arg("kernel", static_cast<std::uint64_t>(s.kernel));
  if (algo == Conv1DAlgo::kDirect) {
    conv_direct(x, y, s, w, epilogue, scratch);
  } else {
    conv_im2col(x, y, s, w, epilogue, scratch);
  }
}

}  // namespace mldist::kernels
