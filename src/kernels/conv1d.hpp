// "Same"-padded stride-1 Conv1D forward lowered onto the GEMM kernels.
//
// Input layout is position-major per sample, matching nn::Conv1D:
//     x[n][p * cin + c]                    (batch x length*cin, row-major)
//     w[(k * cin + c) * cout + o]          (kernel*cin x cout, row-major)
//     y[n][p * cout + o]                   (batch x length*cout, row-major)
// Because output rows are position-major, the (batch*length x cout) GEMM
// product is memory-identical to the (batch x length*cout) activation map —
// no reshape copy is ever needed.
//
// Two algorithms, bitwise identical by construction:
//   kIm2col  materialise zero-padded patch rows into scratch, one GEMM.
//   kDirect  interior output positions read x through an overlapping
//            strided view (row stride cin): patch(p, kk) = x[(p-half)*cin
//            + kk], so the bulk of the product is ONE GEMM straight over
//            the whole batch buffer with no materialisation.  Every
//            interior window's output row sits at a constant offset of
//            kernel/2 rows in y, so the product is written directly into
//            the output map with no scatter; the kernel-1 windows
//            straddling each sample boundary land on border positions and
//            are overwritten by the border pass.  The 2*(kernel/2) border
//            positions per sample go through zero-padded patch rows
//            gathered across the batch into a second, single GEMM whose
//            rows are copied into place.  kernel == 1 degenerates to one
//            whole-batch GEMM with no scratch at all.  x and y must not
//            alias (the IR executor's slot planner guarantees this).
// Both produce the exact k-ascending fma chain of the patch-matrix product
// (padded lanes contribute fma(0, w, acc) steps in the same positions), so
// kDirect output is bitwise equal to kIm2col under every dispatch backend.
#pragma once

#include <cstddef>

#include "kernels/gemm.hpp"

namespace mldist::kernels {

struct Conv1DShape {
  std::size_t batch = 0;
  std::size_t length = 0;
  std::size_t cin = 0;
  std::size_t cout = 0;
  std::size_t kernel = 0;  ///< odd; "same" zero padding, stride 1
};

enum class Conv1DAlgo {
  kIm2col = 0,  ///< materialised patch matrix (legacy nn::Conv1D layout)
  kDirect = 1,  ///< strided-view GEMM over x; borders via small patch bufs
};

const char* conv1d_algo_name(Conv1DAlgo algo);

/// Scratch floats conv1d_forward needs for (shape, algo).  May be zero
/// (kDirect with kernel == 1).  When length < kernel there are no interior
/// positions, so kDirect falls back to the im2col path and sizes
/// accordingly.
std::size_t conv1d_scratch_floats(const Conv1DShape& s, Conv1DAlgo algo);

/// y = epilogue(conv1d(x, w)).  `epilogue` arrays are indexed by output
/// channel o (the GEMM column), so bias and per-channel stages fuse here;
/// per-(position, channel) stages (nn::BatchNorm over length*cout features)
/// must instead run as a norm_act_inplace pass over y.  `scratch` must hold
/// at least conv1d_scratch_floats(s, algo) floats (pass nullptr when that
/// is zero).
void conv1d_forward(const float* x, float* y, const Conv1DShape& s,
                    const float* w, const GemmEpilogue& epilogue,
                    Conv1DAlgo algo, float* scratch);

}  // namespace mldist::kernels
