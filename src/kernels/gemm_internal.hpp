// Internals shared by gemm.cpp (reference + blocked scalar micro-kernel) and
// gemm_avx2.cpp (AVX2 micro-kernel).  Not installed; include only from
// src/kernels translation units and tests that probe tile edges.
//
// The blocked driver implements a BLIS-style structure: pack B into kNR-wide
// column panels and A into kMR-tall row panels per (kKC x kNC) cache block,
// then sweep a full kMR x kNR register tile over the packed panels.  Edge
// tiles are zero-padded in the packed panels, so the micro-kernel always
// runs full-size; only the valid mr x nr lanes are stored back.
//
// Bitwise determinism: the accumulator tile is carried across k blocks
// through C itself (stored after each non-final k block and reloaded, which
// is value-preserving for floats), so each output element sees the exact
// k-ascending fma chain the reference kernel computes.  Zero-padded lanes
// only ever combine finite packed values, never touch C, and are discarded.
#pragma once

#include <cmath>
#include <cstddef>

#include "kernels/gemm.hpp"

namespace mldist::kernels::detail {

inline constexpr int kMR = 6;    // register-tile rows
inline constexpr int kNR = 16;   // register-tile cols (2 AVX2 vectors)
inline constexpr std::size_t kKC = 256;  // k cache block
inline constexpr std::size_t kMC = 126;  // m cache block (multiple of kMR)
inline constexpr std::size_t kNC = 512;  // n cache block (multiple of kNR)

// Full-tile micro-kernel contract: acc is a row-major kMR x kNR tile
// (64-byte aligned); advance it by kc fma steps using the packed panels
// ap (kc x kMR, strip-major) and bp (kc x kNR, strip-major).
using MicroFn = void (*)(std::size_t kc, const float* ap, const float* bp,
                         float* acc);

inline float apply_epilogue(float v, const GemmEpilogue& ep, std::size_t j) {
  if (ep.bias != nullptr) v += ep.bias[j];
  if (ep.norm_mean != nullptr) {
    // Exactly nn::BatchNorm's inference rewrite: xhat = (v - mean) / std,
    // v = gamma * xhat + beta, with std = sqrt(var + eps) precomputed by
    // the caller (value-identical; sqrt and / are exactly rounded).
    v = ep.norm_gamma[j] * ((v - ep.norm_mean[j]) / ep.norm_std[j]) +
        ep.norm_beta[j];
  }
  // Branch shape matches nn::ReLU / nn::LeakyReLU::forward exactly (only
  // v < 0 is rewritten), so the fused epilogue is bitwise identical to the
  // separate activation layer for every input, including -0 and NaN.
  switch (ep.act) {
    case Activation::kNone:
      break;
    case Activation::kRelu:
      if (v < 0.0f) v = 0.0f;
      break;
    case Activation::kLeakyRelu:
      if (v < 0.0f) v *= ep.alpha;
      break;
  }
  return v;
}

// Shared by reference and the small-shape bypass: one output element as the
// canonical k-ascending fma chain.
inline float dot_fma(const float* a_row, std::ptrdiff_t a_cs,
                     const float* b_col, std::ptrdiff_t b_rs, std::size_t k) {
  float acc = 0.0f;
  for (std::size_t kk = 0; kk < k; ++kk) {
    acc = std::fmaf(a_row[static_cast<std::ptrdiff_t>(kk) * a_cs],
                    b_col[static_cast<std::ptrdiff_t>(kk) * b_rs], acc);
  }
  return acc;
}

// Cache-blocked packing driver; `micro` supplies the register-tile inner
// loop (scalar or AVX2).  Defined in gemm.cpp.
void gemm_blocked_driver(const float* a, std::ptrdiff_t a_rs,
                         std::ptrdiff_t a_cs, const float* b,
                         std::ptrdiff_t b_rs, std::ptrdiff_t b_cs, float* c,
                         std::size_t m, std::size_t k, std::size_t n,
                         const GemmEpilogue& epilogue, MicroFn micro);

}  // namespace mldist::kernels::detail
