// AVX2 batched Gimli: eight states per vector, the whole 12-word state held
// in twelve ymm registers across the full round window, so the swaps are
// register renames and each chunk touches memory exactly twice.  Integer
// SIMD is exact, so this is bitwise identical to the scalar rounds.
#include "kernels/gimli_batch.hpp"
#include "kernels/gimli_batch_internal.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace mldist::kernels::detail {

#if defined(__AVX2__)
namespace {

inline __m256i rotl32(__m256i v, int r) {
  return _mm256_or_si256(_mm256_slli_epi32(v, r), _mm256_srli_epi32(v, 32 - r));
}

void gimli_rounds_avx2_chunk(std::uint32_t* soa, std::size_t n,
                             std::size_t s0, int hi, int lo) {
  __m256i w[12];
  for (int i = 0; i < 12; ++i) {
    w[i] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
        soa + static_cast<std::size_t>(i) * n + s0));
  }
  for (int r = hi; r >= lo; --r) {
    for (int j = 0; j < 4; ++j) {
      const __m256i x = rotl32(w[j], 24);
      const __m256i y = rotl32(w[4 + j], 9);
      const __m256i z = w[8 + j];
      w[8 + j] = _mm256_xor_si256(
          x, _mm256_xor_si256(_mm256_slli_epi32(z, 1),
                              _mm256_slli_epi32(_mm256_and_si256(y, z), 2)));
      w[4 + j] = _mm256_xor_si256(
          y, _mm256_xor_si256(x, _mm256_slli_epi32(_mm256_or_si256(x, z), 1)));
      w[j] = _mm256_xor_si256(
          z, _mm256_xor_si256(y, _mm256_slli_epi32(_mm256_and_si256(x, y), 3)));
    }
    if (r % 4 == 0) {
      std::swap(w[0], w[1]);
      std::swap(w[2], w[3]);
      const __m256i rc = _mm256_set1_epi32(static_cast<int>(
          kGimliRcBase ^ static_cast<std::uint32_t>(r)));
      w[0] = _mm256_xor_si256(w[0], rc);
    } else if (r % 4 == 2) {
      std::swap(w[0], w[2]);
      std::swap(w[1], w[3]);
    }
  }
  for (int i = 0; i < 12; ++i) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(
                            soa + static_cast<std::size_t>(i) * n + s0),
                        w[i]);
  }
}

}  // namespace

void gimli_batch_avx2(std::uint32_t* soa, std::size_t n, int hi, int lo) {
  std::size_t s = 0;
  for (; s + 8 <= n; s += 8) gimli_rounds_avx2_chunk(soa, n, s, hi, lo);
  for (; s < n; ++s) gimli_rounds_one(soa + s, n, hi, lo);
}

#else  // !__AVX2__

// Unreachable through dispatch when the build lacks AVX2; delegate for
// safety.
void gimli_batch_avx2(std::uint32_t* soa, std::size_t n, int hi, int lo) {
  gimli_batch_blocked(soa, n, hi, lo);
}

#endif

}  // namespace mldist::kernels::detail
