// Single-precision GEMM kernels with fused bias+activation epilogues.
//
// The entry point is a generic strided product
//     C[i,j] = act( sum_k A[i,k] * B[k,j] + bias[j] )
// where A and B are addressed through (row_stride, col_stride) pairs, so the
// same kernel covers the three layouts nn::mat needs:
//     matmul       A (m x k) row-major          a_rs = k, a_cs = 1
//     matmul_at_b  A^T with A stored k-major    a_rs = 1, a_cs = m
//     matmul_a_bt  B^T with B stored row-major  b_rs = 1, b_cs = k
// C is always row-major contiguous (m x n).
//
// Determinism contract: every implementation computes each output element
// as the k-ascending chain  c = fma(A[i,k], B[k,j], c)  starting from +0.0f,
// applies bias as one plain add after the chain, then the activation.  The
// kernels target is compiled with -ffp-contract=off and all multiply-adds
// are spelled as explicit fma, so reference / blocked / avx2 agree BITWISE
// on finite inputs for every shape.  tests/kernel_equiv_test.cpp asserts
// exact equality on this basis.
#pragma once

#include <cstddef>

#include "kernels/dispatch.hpp"

namespace mldist::kernels {

enum class Activation {
  kNone = 0,
  kRelu = 1,       // x < 0 rewritten to 0 (matches nn::ReLU::forward)
  kLeakyRelu = 2,  // x < 0 rewritten to alpha * x (matches nn::LeakyReLU)
};

/// Optional fused epilogue, applied per output element in this order:
///   1. bias       v += bias[j]                     (nullptr skips)
///   2. batchnorm  v = gamma[j] * ((v - mean[j]) / std[j]) + beta[j]
///                 (norm_mean == nullptr skips; std[j] is the caller's
///                 precomputed sqrt(var[j] + eps) — sqrt is exactly rounded,
///                 so hoisting it out of the element loop is bitwise
///                 identical to nn::BatchNorm's inference forward)
///   3. activation (kNone skips)
/// `bias` and the four norm arrays are indexed by output column (length n).
struct GemmEpilogue {
  const float* bias = nullptr;
  const float* norm_mean = nullptr;
  const float* norm_std = nullptr;    ///< sqrt(running_var + eps), per column
  const float* norm_gamma = nullptr;
  const float* norm_beta = nullptr;
  Activation act = Activation::kNone;
  float alpha = 0.3f;
};

/// C (row-major, m x n) = epilogue(A * B) with A addressed as
/// a[i * a_rs + kk * a_cs] and B as b[kk * b_rs + j * b_cs].
/// Uses the process-wide dispatch() implementation.
void gemm(const float* a, std::ptrdiff_t a_rs, std::ptrdiff_t a_cs,
          const float* b, std::ptrdiff_t b_rs, std::ptrdiff_t b_cs, float* c,
          std::size_t m, std::size_t k, std::size_t n,
          const GemmEpilogue& epilogue = {});

/// Same, with an explicit implementation (throws std::invalid_argument when
/// `impl` is unsupported on this machine).  Tests and benches use this to
/// pin a path without touching the global dispatch.
void gemm_impl(Impl impl, const float* a, std::ptrdiff_t a_rs,
               std::ptrdiff_t a_cs, const float* b, std::ptrdiff_t b_rs,
               std::ptrdiff_t b_cs, float* c, std::size_t m, std::size_t k,
               std::size_t n, const GemmEpilogue& epilogue = {});

namespace detail {

// Per-implementation entry points (same signature as gemm).  avx2 must only
// be called when supported(Impl::kAvx2) is true.
void gemm_reference(const float* a, std::ptrdiff_t a_rs, std::ptrdiff_t a_cs,
                    const float* b, std::ptrdiff_t b_rs, std::ptrdiff_t b_cs,
                    float* c, std::size_t m, std::size_t k, std::size_t n,
                    const GemmEpilogue& epilogue);
void gemm_blocked(const float* a, std::ptrdiff_t a_rs, std::ptrdiff_t a_cs,
                  const float* b, std::ptrdiff_t b_rs, std::ptrdiff_t b_cs,
                  float* c, std::size_t m, std::size_t k, std::size_t n,
                  const GemmEpilogue& epilogue);
void gemm_avx2(const float* a, std::ptrdiff_t a_rs, std::ptrdiff_t a_cs,
               const float* b, std::ptrdiff_t b_rs, std::ptrdiff_t b_cs,
               float* c, std::size_t m, std::size_t k, std::size_t n,
               const GemmEpilogue& epilogue);

}  // namespace detail

}  // namespace mldist::kernels
