// AVX2+FMA micro-kernel for the blocked GEMM driver.  This translation unit
// is compiled with -mavx2 -mfma when the compiler supports them; the rest of
// the library never executes this code unless runtime CPU detection
// (kernels::supported) says the host has both features.
//
// The 6x16 register tile holds 12 accumulator ymm registers; each fma step
// broadcasts one packed A element per row and multiplies it against two
// packed B vectors.  _mm256_fmadd_ps performs the identical fused operation
// as the scalar std::fmaf chain, lane by lane, so the result is bitwise
// equal to the reference kernel.
#include "kernels/gemm.hpp"
#include "kernels/gemm_internal.hpp"

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#endif

namespace mldist::kernels {

bool detail_avx2_compiled() {
#if defined(__AVX2__) && defined(__FMA__)
  return true;
#else
  return false;
#endif
}

namespace detail {

#if defined(__AVX2__) && defined(__FMA__)
namespace {

void micro_avx2(std::size_t kc, const float* ap, const float* bp,
                float* acc) {
  static_assert(kMR == 6 && kNR == 16,
                "micro_avx2 is written for a 6x16 register tile");
  __m256 c00 = _mm256_load_ps(acc + 0 * kNR);
  __m256 c01 = _mm256_load_ps(acc + 0 * kNR + 8);
  __m256 c10 = _mm256_load_ps(acc + 1 * kNR);
  __m256 c11 = _mm256_load_ps(acc + 1 * kNR + 8);
  __m256 c20 = _mm256_load_ps(acc + 2 * kNR);
  __m256 c21 = _mm256_load_ps(acc + 2 * kNR + 8);
  __m256 c30 = _mm256_load_ps(acc + 3 * kNR);
  __m256 c31 = _mm256_load_ps(acc + 3 * kNR + 8);
  __m256 c40 = _mm256_load_ps(acc + 4 * kNR);
  __m256 c41 = _mm256_load_ps(acc + 4 * kNR + 8);
  __m256 c50 = _mm256_load_ps(acc + 5 * kNR);
  __m256 c51 = _mm256_load_ps(acc + 5 * kNR + 8);

  for (std::size_t kk = 0; kk < kc; ++kk) {
    const __m256 b0 = _mm256_loadu_ps(bp + kk * kNR);
    const __m256 b1 = _mm256_loadu_ps(bp + kk * kNR + 8);
    const float* arow = ap + kk * kMR;

    __m256 av = _mm256_broadcast_ss(arow + 0);
    c00 = _mm256_fmadd_ps(av, b0, c00);
    c01 = _mm256_fmadd_ps(av, b1, c01);
    av = _mm256_broadcast_ss(arow + 1);
    c10 = _mm256_fmadd_ps(av, b0, c10);
    c11 = _mm256_fmadd_ps(av, b1, c11);
    av = _mm256_broadcast_ss(arow + 2);
    c20 = _mm256_fmadd_ps(av, b0, c20);
    c21 = _mm256_fmadd_ps(av, b1, c21);
    av = _mm256_broadcast_ss(arow + 3);
    c30 = _mm256_fmadd_ps(av, b0, c30);
    c31 = _mm256_fmadd_ps(av, b1, c31);
    av = _mm256_broadcast_ss(arow + 4);
    c40 = _mm256_fmadd_ps(av, b0, c40);
    c41 = _mm256_fmadd_ps(av, b1, c41);
    av = _mm256_broadcast_ss(arow + 5);
    c50 = _mm256_fmadd_ps(av, b0, c50);
    c51 = _mm256_fmadd_ps(av, b1, c51);
  }

  _mm256_store_ps(acc + 0 * kNR, c00);
  _mm256_store_ps(acc + 0 * kNR + 8, c01);
  _mm256_store_ps(acc + 1 * kNR, c10);
  _mm256_store_ps(acc + 1 * kNR + 8, c11);
  _mm256_store_ps(acc + 2 * kNR, c20);
  _mm256_store_ps(acc + 2 * kNR + 8, c21);
  _mm256_store_ps(acc + 3 * kNR, c30);
  _mm256_store_ps(acc + 3 * kNR + 8, c31);
  _mm256_store_ps(acc + 4 * kNR, c40);
  _mm256_store_ps(acc + 4 * kNR + 8, c41);
  _mm256_store_ps(acc + 5 * kNR, c50);
  _mm256_store_ps(acc + 5 * kNR + 8, c51);
}

}  // namespace

void gemm_avx2(const float* a, std::ptrdiff_t a_rs, std::ptrdiff_t a_cs,
               const float* b, std::ptrdiff_t b_rs, std::ptrdiff_t b_cs,
               float* c, std::size_t m, std::size_t k, std::size_t n,
               const GemmEpilogue& epilogue) {
  gemm_blocked_driver(a, a_rs, a_cs, b, b_rs, b_cs, c, m, k, n, epilogue,
                      &micro_avx2);
}

#else  // !(__AVX2__ && __FMA__)

// Build without AVX2 support: supported(kAvx2) is false, so this entry is
// unreachable through dispatch; delegate to blocked for safety.
void gemm_avx2(const float* a, std::ptrdiff_t a_rs, std::ptrdiff_t a_cs,
               const float* b, std::ptrdiff_t b_rs, std::ptrdiff_t b_cs,
               float* c, std::size_t m, std::size_t k, std::size_t n,
               const GemmEpilogue& epilogue) {
  gemm_blocked(a, a_rs, a_cs, b, b_rs, b_cs, c, m, k, n, epilogue);
}

#endif

}  // namespace detail
}  // namespace mldist::kernels
