// Shared internals for the batched Gimli implementations.  The scalar
// one-state round window doubles as the reference implementation and the
// remainder-lane handler of the wide implementations.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

namespace mldist::kernels::detail {

inline constexpr std::uint32_t kGimliRcBase = 0x9e377900u;

/// Rounds hi..lo on a single state whose word w lives at words[w * stride]
/// (stride = n for a state embedded in an SoA block, 1 for a packed state).
inline void gimli_rounds_one(std::uint32_t* words, std::size_t stride, int hi,
                             int lo) {
  std::uint32_t s[12];
  for (int w = 0; w < 12; ++w) s[w] = words[static_cast<std::size_t>(w) * stride];
  for (int r = hi; r >= lo; --r) {
    for (int j = 0; j < 4; ++j) {
      const std::uint32_t x = std::rotl(s[j], 24);
      const std::uint32_t y = std::rotl(s[4 + j], 9);
      const std::uint32_t z = s[8 + j];
      s[8 + j] = x ^ (z << 1) ^ ((y & z) << 2);
      s[4 + j] = y ^ x ^ ((x | z) << 1);
      s[j] = z ^ y ^ ((x & y) << 3);
    }
    if (r % 4 == 0) {
      std::swap(s[0], s[1]);
      std::swap(s[2], s[3]);
      s[0] ^= kGimliRcBase ^ static_cast<std::uint32_t>(r);
    } else if (r % 4 == 2) {
      std::swap(s[0], s[2]);
      std::swap(s[1], s[3]);
    }
  }
  for (int w = 0; w < 12; ++w) words[static_cast<std::size_t>(w) * stride] = s[w];
}

}  // namespace mldist::kernels::detail
