#include "kernels/gemm.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "kernels/gemm_internal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mldist::kernels {

namespace {

/// Per-implementation call and FLOP tallies (2*m*k*n per product), visible
/// in the obs registry as kernels.gemm.{calls,flops}.<impl>.  Ids resolve
/// once; recording is a sharded relaxed add, so the dispatch hot path never
/// takes a lock.  Call counts and FLOPs are deterministic quantities — the
/// batch grid is fixed by the options, not the worker count — so they are
/// bitwise identical for any --threads setting.
struct GemmMetrics {
  obs::MetricId calls[3];
  obs::MetricId flops[3];

  GemmMetrics() {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    for (Impl impl : {Impl::kReference, Impl::kBlocked, Impl::kAvx2}) {
      const auto i = static_cast<std::size_t>(impl);
      const std::string suffix = impl_name(impl);
      calls[i] = reg.counter("kernels.gemm.calls." + suffix);
      flops[i] = reg.counter("kernels.gemm.flops." + suffix);
    }
  }
};

}  // namespace
namespace detail {
namespace {

// Below this many fma steps the packing traffic dominates; fall through to
// the (bitwise-identical) elementwise chain instead.
constexpr std::size_t kBlockedBypassFlops = 32u * 32u * 32u;

// Scalar full-tile micro-kernel.  Row lanes of kNR=16 floats autovectorize
// cleanly (two AVX vectors per row); std::fmaf keeps the chain explicit.
void micro_scalar(std::size_t kc, const float* ap, const float* bp,
                  float* acc) {
  for (std::size_t kk = 0; kk < kc; ++kk) {
    const float* arow = ap + kk * kMR;
    const float* brow = bp + kk * kNR;
    for (int r = 0; r < kMR; ++r) {
      const float av = arow[r];
      float* crow = acc + r * kNR;
      for (int j = 0; j < kNR; ++j) {
        crow[j] = std::fmaf(av, brow[j], crow[j]);
      }
    }
  }
}

}  // namespace

void gemm_reference(const float* a, std::ptrdiff_t a_rs, std::ptrdiff_t a_cs,
                    const float* b, std::ptrdiff_t b_rs, std::ptrdiff_t b_cs,
                    float* c, std::size_t m, std::size_t k, std::size_t n,
                    const GemmEpilogue& epilogue) {
  // Textbook i-j-k loop: this is the executable spec every other kernel is
  // pinned against, so it stays deliberately free of blocking and packing.
  for (std::size_t i = 0; i < m; ++i) {
    const float* a_row = a + static_cast<std::ptrdiff_t>(i) * a_rs;
    float* c_row = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* b_col = b + static_cast<std::ptrdiff_t>(j) * b_cs;
      c_row[j] = apply_epilogue(dot_fma(a_row, a_cs, b_col, b_rs, k),
                                epilogue, j);
    }
  }
}

void gemm_blocked_driver(const float* a, std::ptrdiff_t a_rs,
                         std::ptrdiff_t a_cs, const float* b,
                         std::ptrdiff_t b_rs, std::ptrdiff_t b_cs, float* c,
                         std::size_t m, std::size_t k, std::size_t n,
                         const GemmEpilogue& epilogue, MicroFn micro) {
  if (m == 0 || n == 0) return;
  if (k == 0 || m * n * k < kBlockedBypassFlops) {
    gemm_reference(a, a_rs, a_cs, b, b_rs, b_cs, c, m, k, n, epilogue);
    return;
  }

  const std::size_t a_strips = (kMC + kMR - 1) / kMR;
  const std::size_t b_strips = (kNC + kNR - 1) / kNR;
  std::vector<float> apack(a_strips * kKC * kMR);
  std::vector<float> bpack(b_strips * kKC * kNR);
  const GemmEpilogue no_epilogue{};

  for (std::size_t jc = 0; jc < n; jc += kNC) {
    const std::size_t nc = std::min(kNC, n - jc);
    const std::size_t njs = (nc + kNR - 1) / kNR;
    for (std::size_t kc0 = 0; kc0 < k; kc0 += kKC) {
      const std::size_t kc = std::min(kKC, k - kc0);
      const bool first = kc0 == 0;
      const bool last = kc0 + kc == k;
      const GemmEpilogue& ep = last ? epilogue : no_epilogue;

      // Pack B into kNR-wide strips; edge columns are zero-padded so the
      // micro-kernel always runs a full tile.
      for (std::size_t js = 0; js < njs; ++js) {
        const std::size_t j0 = jc + js * kNR;
        const std::size_t nr = std::min<std::size_t>(kNR, n - j0);
        float* dst = bpack.data() + js * kc * kNR;
        for (std::size_t kk = 0; kk < kc; ++kk) {
          const float* b_row =
              b + static_cast<std::ptrdiff_t>(kc0 + kk) * b_rs;
          for (std::size_t j = 0; j < kNR; ++j) {
            dst[kk * kNR + j] =
                j < nr
                    ? b_row[static_cast<std::ptrdiff_t>(j0 + j) * b_cs]
                    : 0.0f;
          }
        }
      }

      for (std::size_t ic = 0; ic < m; ic += kMC) {
        const std::size_t mc = std::min(kMC, m - ic);
        const std::size_t nis = (mc + kMR - 1) / kMR;

        // Pack A into kMR-tall strips, zero-padding edge rows.
        for (std::size_t is = 0; is < nis; ++is) {
          const std::size_t i0 = ic + is * kMR;
          const std::size_t mr = std::min<std::size_t>(kMR, m - i0);
          float* dst = apack.data() + is * kc * kMR;
          for (std::size_t kk = 0; kk < kc; ++kk) {
            const float* a_col =
                a + static_cast<std::ptrdiff_t>(kc0 + kk) * a_cs;
            for (std::size_t r = 0; r < static_cast<std::size_t>(kMR); ++r) {
              dst[kk * kMR + r] =
                  r < mr
                      ? a_col[static_cast<std::ptrdiff_t>(i0 + r) * a_rs]
                      : 0.0f;
            }
          }
        }

        for (std::size_t js = 0; js < njs; ++js) {
          const std::size_t j0 = jc + js * kNR;
          const std::size_t nr = std::min<std::size_t>(kNR, n - j0);
          const float* bp = bpack.data() + js * kc * kNR;
          for (std::size_t is = 0; is < nis; ++is) {
            const std::size_t i0 = ic + is * kMR;
            const std::size_t mr = std::min<std::size_t>(kMR, m - i0);
            const float* ap = apack.data() + is * kc * kMR;

            alignas(64) float acc[kMR * kNR];
            if (first) {
              std::memset(acc, 0, sizeof(acc));
            } else {
              // Resume the fma chain from the partial sums parked in C.
              for (std::size_t r = 0; r < static_cast<std::size_t>(kMR);
                   ++r) {
                const float* c_row = c + (i0 + r) * n + j0;
                for (std::size_t j = 0; j < static_cast<std::size_t>(kNR);
                     ++j) {
                  acc[r * kNR + j] = (r < mr && j < nr) ? c_row[j] : 0.0f;
                }
              }
            }

            micro(kc, ap, bp, acc);

            for (std::size_t r = 0; r < mr; ++r) {
              float* c_row = c + (i0 + r) * n + j0;
              for (std::size_t j = 0; j < nr; ++j) {
                c_row[j] = apply_epilogue(acc[r * kNR + j], ep, j0 + j);
              }
            }
          }
        }
      }
    }
  }
}

void gemm_blocked(const float* a, std::ptrdiff_t a_rs, std::ptrdiff_t a_cs,
                  const float* b, std::ptrdiff_t b_rs, std::ptrdiff_t b_cs,
                  float* c, std::size_t m, std::size_t k, std::size_t n,
                  const GemmEpilogue& epilogue) {
  gemm_blocked_driver(a, a_rs, a_cs, b, b_rs, b_cs, c, m, k, n, epilogue,
                      &micro_scalar);
}

}  // namespace detail

void gemm_impl(Impl impl, const float* a, std::ptrdiff_t a_rs,
               std::ptrdiff_t a_cs, const float* b, std::ptrdiff_t b_rs,
               std::ptrdiff_t b_cs, float* c, std::size_t m, std::size_t k,
               std::size_t n, const GemmEpilogue& epilogue) {
  if (!supported(impl)) {
    throw std::invalid_argument(std::string("kernel implementation '") +
                                impl_name(impl) +
                                "' is not supported on this machine");
  }
  {
    static const GemmMetrics metrics;
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    const auto i = static_cast<std::size_t>(impl);
    reg.add(metrics.calls[i]);
    reg.add(metrics.flops[i], 2ull * m * k * n);
  }
  obs::Span span("gemm", "kernels");
  span.arg("impl", impl_name(impl))
      .arg("m", static_cast<std::uint64_t>(m))
      .arg("k", static_cast<std::uint64_t>(k))
      .arg("n", static_cast<std::uint64_t>(n));
  switch (impl) {
    case Impl::kReference:
      detail::gemm_reference(a, a_rs, a_cs, b, b_rs, b_cs, c, m, k, n,
                             epilogue);
      return;
    case Impl::kBlocked:
      detail::gemm_blocked(a, a_rs, a_cs, b, b_rs, b_cs, c, m, k, n,
                           epilogue);
      return;
    case Impl::kAvx2:
      detail::gemm_avx2(a, a_rs, a_cs, b, b_rs, b_cs, c, m, k, n, epilogue);
      return;
  }
}

void gemm(const float* a, std::ptrdiff_t a_rs, std::ptrdiff_t a_cs,
          const float* b, std::ptrdiff_t b_rs, std::ptrdiff_t b_cs, float* c,
          std::size_t m, std::size_t k, std::size_t n,
          const GemmEpilogue& epilogue) {
  gemm_impl(dispatch(), a, a_rs, a_cs, b, b_rs, b_cs, c, m, k, n, epilogue);
}

}  // namespace mldist::kernels
