// Kernel dispatch registry: one process-wide selection of the compute-kernel
// implementation used by the GEMM (nn::mat) and batched-Gimli hot paths.
//
// Three implementations exist:
//   * reference — the executable specification: textbook loops, no blocking,
//     no SIMD.  Every other kernel is pinned bitwise against it.
//   * blocked   — cache-blocked, register-tiled, packing GEMM and a
//     column-sliced SoA Gimli sweep; plain C++, autovectorizable.
//   * avx2      — the blocked structure with an AVX2+FMA micro-kernel,
//     compiled separately and gated on runtime CPU detection.
//
// Determinism contract (tested by tests/kernel_equiv_test.cpp):
//   * every kernel computes each GEMM output element as the k-ascending
//     fused-multiply-add chain c = fma(a_ik, b_kj, c), so on finite inputs
//     all implementations are BITWISE IDENTICAL — the equivalence tests
//     assert exact equality, and training is bitwise reproducible not just
//     per kernel but across kernels;
//   * batched Gimli is integer-only and trivially bitwise equal to the
//     scalar permutation.
//
// Selection order at first use: MLDIST_KERNEL environment variable
// ("reference" | "blocked" | "avx2") if set and supported (an unsupported
// request warns on stderr and falls back), otherwise the best supported
// implementation (avx2 > blocked).  set_dispatch() overrides at runtime
// (the CLI --kernel flag and the test harness use it).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mldist::kernels {

enum class Impl {
  kReference = 0,
  kBlocked = 1,
  kAvx2 = 2,
};

/// Canonical lower-case name ("reference", "blocked", "avx2").
const char* impl_name(Impl impl);

/// Parse a canonical name; returns false on unknown names.
bool parse_impl(std::string_view name, Impl& out);

/// The one name→backend resolver shared by MLDIST_KERNEL env parsing and
/// the --kernel CLI flag.  On an unknown or unsupported name it emits a
/// structured warning through obs::Logger (component "kernels", with a
/// `source` field saying where the name came from) and returns false
/// leaving `out` untouched.
bool backend_from_string(std::string_view name, Impl& out,
                         std::string_view source = "kernel");

/// True when `impl` can run on this machine (reference/blocked always;
/// avx2 requires the CPU feature and an AVX2-capable build).
bool supported(Impl impl);

/// All supported implementations, in ascending Impl order.
std::vector<Impl> available_impls();

/// The active implementation.  First call resolves MLDIST_KERNEL.
Impl dispatch();

/// Force an implementation; throws std::invalid_argument when unsupported.
void set_dispatch(Impl impl);

/// Convenience: set_dispatch by name; throws std::invalid_argument on
/// unknown or unsupported names (message lists the valid ones).
void set_dispatch(std::string_view name);

/// Raw MLDIST_KERNEL value seen at startup ("" when unset).  Tests use it
/// to skip a forced run on hosts that cannot honour the request.
const std::string& env_request();

}  // namespace mldist::kernels
