// Elementwise fused epilogue applied in place to a row-major buffer.
//
// Used when a normalisation cannot ride a GEMM epilogue because its feature
// axis is wider than the producing GEMM's column count (Conv1D + BatchNorm:
// BN features span length*cout, but the conv GEMM only has cout columns).
// Reinterpreting the conv output as (batch, length*cout) makes BN a plain
// per-column transform again, which is what this entry point applies.
//
// All stages are single exactly-rounded IEEE ops per element, so there is
// one implementation and it is bitwise deterministic under every dispatch
// backend — no per-Impl variants needed.
#pragma once

#include <cstddef>

#include "kernels/gemm.hpp"

namespace mldist::kernels {

/// Applies `epilogue` (bias, then batchnorm, then activation — exactly the
/// GEMM epilogue order) to every element of the row-major (rows x cols)
/// buffer `c` in place.  Epilogue arrays are indexed by column (length
/// `cols`).
void norm_act_inplace(float* c, std::size_t rows, std::size_t cols,
                      const GemmEpilogue& epilogue);

}  // namespace mldist::kernels
