// Batched Gimli permutation: apply the round window [hi..lo] of the Gimli
// countdown to n independent 384-bit states at once.
//
// Layout is column-sliced SoA: soa[w * n + s] holds word w (0..11) of state
// s (0..n-1), i.e. the same word of consecutive states is contiguous, so the
// per-round SP-box sweeps map directly onto SIMD lanes.
//
// The round logic mirrors ciphers::gimli_rounds (Algorithm 1 of the paper:
// SP-box on all four columns, Small-Swap + round constant when r % 4 == 0,
// Big-Swap when r % 4 == 2, counting r DOWN from hi to lo); the kernels
// library keeps its own copy so it depends only on mldist_util-level
// primitives, and tests/kernel_equiv_test.cpp pins every implementation
// against the scalar ciphers::gimli_rounds for all windows 1..24.  All
// operations are integer, so every implementation is bitwise identical.
#pragma once

#include <cstddef>
#include <cstdint>

#include "kernels/dispatch.hpp"

namespace mldist::kernels {

/// Apply rounds hi..lo (1 <= lo <= hi <= 24) to n SoA states using the
/// process-wide dispatch() implementation.  n == 0 is a no-op.
void gimli_rounds_batch(std::uint32_t* soa, std::size_t n, int hi, int lo);

/// Same with an explicit implementation (throws std::invalid_argument when
/// unsupported on this machine).
void gimli_rounds_batch_impl(Impl impl, std::uint32_t* soa, std::size_t n,
                             int hi, int lo);

namespace detail {

void gimli_batch_reference(std::uint32_t* soa, std::size_t n, int hi, int lo);
void gimli_batch_blocked(std::uint32_t* soa, std::size_t n, int hi, int lo);
void gimli_batch_avx2(std::uint32_t* soa, std::size_t n, int hi, int lo);

}  // namespace detail

}  // namespace mldist::kernels
