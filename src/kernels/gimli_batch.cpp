#include "kernels/gimli_batch.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

#include "kernels/gimli_batch_internal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mldist::kernels {

namespace {

/// kernels.gimli.{calls,states,rounds}.<impl> — same shape as the GEMM
/// tallies: deterministic quantities, sharded lock-free recording.
struct GimliMetrics {
  obs::MetricId calls[3];
  obs::MetricId states[3];
  obs::MetricId rounds[3];

  GimliMetrics() {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    for (Impl impl : {Impl::kReference, Impl::kBlocked, Impl::kAvx2}) {
      const auto i = static_cast<std::size_t>(impl);
      const std::string suffix = impl_name(impl);
      calls[i] = reg.counter("kernels.gimli.calls." + suffix);
      states[i] = reg.counter("kernels.gimli.states." + suffix);
      rounds[i] = reg.counter("kernels.gimli.rounds." + suffix);
    }
  }
};

}  // namespace
namespace detail {
namespace {

// Lane-blocked sweep: pull L states into a 12xL register block, run the
// whole round window there (swaps become register/array renames), store
// back.  The fixed inner trip count of L lanes autovectorizes.
template <int L>
void gimli_rounds_lanes(std::uint32_t* soa, std::size_t n, std::size_t s0,
                        int hi, int lo) {
  std::uint32_t v[12][L];
  for (int w = 0; w < 12; ++w) {
    const std::uint32_t* src = soa + static_cast<std::size_t>(w) * n + s0;
    for (int l = 0; l < L; ++l) v[w][l] = src[l];
  }
  for (int r = hi; r >= lo; --r) {
    for (int j = 0; j < 4; ++j) {
      for (int l = 0; l < L; ++l) {
        const std::uint32_t x = std::rotl(v[j][l], 24);
        const std::uint32_t y = std::rotl(v[4 + j][l], 9);
        const std::uint32_t z = v[8 + j][l];
        v[8 + j][l] = x ^ (z << 1) ^ ((y & z) << 2);
        v[4 + j][l] = y ^ x ^ ((x | z) << 1);
        v[j][l] = z ^ y ^ ((x & y) << 3);
      }
    }
    if (r % 4 == 0) {
      const std::uint32_t rc = kGimliRcBase ^ static_cast<std::uint32_t>(r);
      for (int l = 0; l < L; ++l) {
        std::swap(v[0][l], v[1][l]);
        std::swap(v[2][l], v[3][l]);
        v[0][l] ^= rc;
      }
    } else if (r % 4 == 2) {
      for (int l = 0; l < L; ++l) {
        std::swap(v[0][l], v[2][l]);
        std::swap(v[1][l], v[3][l]);
      }
    }
  }
  for (int w = 0; w < 12; ++w) {
    std::uint32_t* dst = soa + static_cast<std::size_t>(w) * n + s0;
    for (int l = 0; l < L; ++l) dst[l] = v[w][l];
  }
}

}  // namespace

void gimli_batch_reference(std::uint32_t* soa, std::size_t n, int hi,
                           int lo) {
  for (std::size_t s = 0; s < n; ++s) gimli_rounds_one(soa + s, n, hi, lo);
}

void gimli_batch_blocked(std::uint32_t* soa, std::size_t n, int hi, int lo) {
  constexpr int kLanes = 16;
  std::size_t s = 0;
  for (; s + kLanes <= n; s += kLanes) {
    gimli_rounds_lanes<kLanes>(soa, n, s, hi, lo);
  }
  for (; s < n; ++s) gimli_rounds_one(soa + s, n, hi, lo);
}

}  // namespace detail

void gimli_rounds_batch_impl(Impl impl, std::uint32_t* soa, std::size_t n,
                             int hi, int lo) {
  assert(1 <= lo && lo <= hi && hi <= 24);
  if (n == 0) return;
  if (!supported(impl)) {
    throw std::invalid_argument(std::string("kernel implementation '") +
                                impl_name(impl) +
                                "' is not supported on this machine");
  }
  {
    static const GimliMetrics metrics;
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    const auto i = static_cast<std::size_t>(impl);
    reg.add(metrics.calls[i]);
    reg.add(metrics.states[i], n);
    reg.add(metrics.rounds[i], n * static_cast<std::size_t>(hi - lo + 1));
  }
  obs::Span span("gimli", "kernels");
  span.arg("impl", impl_name(impl))
      .arg("states", static_cast<std::uint64_t>(n))
      .arg("rounds", hi - lo + 1);
  switch (impl) {
    case Impl::kReference:
      detail::gimli_batch_reference(soa, n, hi, lo);
      return;
    case Impl::kBlocked:
      detail::gimli_batch_blocked(soa, n, hi, lo);
      return;
    case Impl::kAvx2:
      detail::gimli_batch_avx2(soa, n, hi, lo);
      return;
  }
}

void gimli_rounds_batch(std::uint32_t* soa, std::size_t n, int hi, int lo) {
  gimli_rounds_batch_impl(dispatch(), soa, n, hi, lo);
}

}  // namespace mldist::kernels
