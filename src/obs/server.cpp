#include "obs/server.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/export.hpp"
#include "obs/log.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "util/json.hpp"

namespace mldist::obs {

namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) return;  // client went away; nothing to salvage
    off += static_cast<std::size_t>(n);
  }
}

std::string http_response(int status, const char* status_text,
                          const char* content_type,
                          const std::string& body) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " + status_text +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

/// First request line up to the first CRLF: "GET /path HTTP/1.1".  Returns
/// the path ("" on anything unparseable — answered with 400).
std::string parse_path(const std::string& request) {
  const std::size_t sp1 = request.find(' ');
  if (sp1 == std::string::npos || request.compare(0, sp1, "GET") != 0) {
    return "";
  }
  const std::size_t sp2 = request.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return "";
  std::string path = request.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t q = path.find('?');
  if (q != std::string::npos) path.resize(q);  // ignore query strings
  return path;
}

}  // namespace

bool MetricsServer::start(std::uint16_t port, std::string* error) {
  if (running()) return true;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = "socket(): " + std::string(strerror(errno));
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    if (error != nullptr) {
      *error = "bind/listen on port " + std::to_string(port) + ": " +
               strerror(errno);
    }
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = port;
  }
  listen_fd_ = fd;
  stop_.store(false, std::memory_order_release);
  start_ns_ = steady_ns();
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
  log_info("obs.server", "metrics server listening")
      .field("port", static_cast<std::uint64_t>(port_));
  return true;
}

void MetricsServer::stop() {
  if (!running()) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  running_.store(false, std::memory_order_release);
  port_ = 0;
}

void MetricsServer::serve_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    // Short poll timeout bounds how stale the stop flag can get; the
    // accept below never blocks because POLLIN fired.
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (ready <= 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    handle_connection(client);
    ::close(client);
  }
}

void MetricsServer::handle_connection(int fd) {
  // One read is enough for any GET our clients issue; a pathological
  // trickle just gets a 400.
  char buf[2048];
  const ssize_t n = ::recv(fd, buf, sizeof(buf) - 1, 0);
  if (n <= 0) return;
  buf[n] = '\0';
  const std::string path = parse_path(buf);
  requests_.fetch_add(1, std::memory_order_relaxed);
  count("obs.server.requests");

  if (path == "/metrics") {
    const std::string body =
        render_prometheus(MetricsRegistry::global().snapshot());
    send_all(fd, http_response(200, "OK",
                               "text/plain; version=0.0.4; charset=utf-8",
                               body));
  } else if (path == "/healthz") {
    util::JsonBuilder j;
    j.field("status", "ok").field("uptime_ns", steady_ns() - start_ns_);
    send_all(fd, http_response(200, "OK", "application/json",
                               j.str() + "\n"));
  } else if (path == "/runz") {
    send_all(fd, http_response(200, "OK", "application/json",
                               RunStatus::global().to_json() + "\n"));
  } else if (path.empty()) {
    send_all(fd, http_response(400, "Bad Request", "text/plain",
                               "bad request\n"));
  } else {
    send_all(fd, http_response(404, "Not Found", "text/plain",
                               "unknown path; try /metrics /healthz /runz\n"));
  }
}

}  // namespace mldist::obs
