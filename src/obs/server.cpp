#include "obs/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/export.hpp"
#include "obs/http.hpp"
#include "obs/log.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "util/json.hpp"

namespace mldist::obs {

namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Per-recv SO_RCVTIMEO and total per-connection read budget.  A client
/// that connects and then sends nothing (or trickles bytes) can stall the
/// single serve loop for at most the budget before being answered with 408
/// and dropped — stop() always observes the flag within one bounded
/// connection plus one poll timeout.
constexpr int kRecvTimeoutMs = 250;
constexpr int kReadBudgetMs = 2000;

}  // namespace

bool MetricsServer::start(std::uint16_t port, std::string* error) {
  if (running()) return true;
  // listen_tcp marks the fd close-on-exec: campaign fork+exec workers
  // spawned while --serve-metrics is live must not inherit the bound
  // socket, or the port would stay bound after this process exits.
  const int fd = listen_tcp(port, /*backlog=*/16, &port_, error);
  if (fd < 0) return false;
  listen_fd_ = fd;
  stop_.store(false, std::memory_order_release);
  start_ns_ = steady_ns();
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
  log_info("obs.server", "metrics server listening")
      .field("port", static_cast<std::uint64_t>(port_));
  return true;
}

void MetricsServer::stop() {
  if (!running()) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  running_.store(false, std::memory_order_release);
  port_ = 0;
}

void MetricsServer::serve_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    // Short poll timeout bounds how stale the stop flag can get; the
    // accept below never blocks because POLLIN fired.
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (ready <= 0) continue;
    const int client = accept_cloexec(listen_fd_);
    if (client < 0) continue;
    handle_connection(client);
    ::close(client);
  }
}

void MetricsServer::handle_connection(int fd) {
  // Bounded, incremental read: SO_RCVTIMEO caps each recv so an idle
  // client cannot wedge the serve loop (and make stop() join forever), and
  // the reader reassembles requests split across several sends.  EAGAIN /
  // overall-budget exhaustion answers 408; malformed or oversized input
  // answers the reader's suggested status.
  set_recv_timeout(fd, kRecvTimeoutMs);
  HttpRequestReader reader;
  const std::uint64_t deadline_ns =
      steady_ns() + std::uint64_t(kReadBudgetMs) * 1'000'000ull;
  char buf[2048];
  while (!reader.complete() && !reader.failed()) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      (void)reader.feed(buf, static_cast<std::size_t>(n));
    } else if (n == 0) {
      break;  // client closed before completing a request
    } else if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      if (steady_ns() >= deadline_ns) {
        send_all(fd, http_error(408, "Request Timeout",
                                "request not completed in time"));
        return;
      }
    } else {
      return;  // hard socket error; nothing to answer
    }
    if (stop_.load(std::memory_order_acquire)) return;
    if (steady_ns() >= deadline_ns && !reader.complete()) {
      send_all(fd, http_error(408, "Request Timeout",
                              "request not completed in time"));
      return;
    }
  }
  if (reader.failed()) {
    send_all(fd, http_error(reader.error_status(), "Bad Request",
                            reader.error_detail()));
    return;
  }
  if (!reader.complete()) return;

  requests_.fetch_add(1, std::memory_order_relaxed);
  count("obs.server.requests");

  if (reader.method() != "GET") {
    send_all(fd, http_error(405, "Method Not Allowed",
                            "only GET is served here; POST endpoints live "
                            "on the mldist_serve daemon"));
    return;
  }
  const std::string& path = reader.path();
  if (path == "/metrics") {
    const std::string body =
        render_prometheus(MetricsRegistry::global().snapshot());
    send_all(fd, http_response(200, "OK",
                               "text/plain; version=0.0.4; charset=utf-8",
                               body));
  } else if (path == "/healthz") {
    util::JsonBuilder j;
    j.field("status", "ok").field("uptime_ns", steady_ns() - start_ns_);
    send_all(fd, http_response(200, "OK", "application/json",
                               j.str() + "\n"));
  } else if (path == "/runz") {
    send_all(fd, http_response(200, "OK", "application/json",
                               RunStatus::global().to_json() + "\n"));
  } else {
    send_all(fd, http_error(404, "Not Found",
                            "unknown path; try /metrics /healthz /runz"));
  }
}

}  // namespace mldist::obs
