// Leveled, structured JSONL logging: the single sink for all diagnostic
// output (the four ad-hoc fprintf(stderr) sites of PR 4 and everything
// after them).
//
// Each record is one JSON line — {"ts_ns":..., "level":"warn", "tid":3,
// "component":"nn.serialize", "msg":"...", <fields...>} — so the run log is
// machine-readable with the same tooling that consumes the bench artifacts,
// and greppable for the human wording that used to go to raw stderr.
//
// Hot-path contract (same shape as the tracer): a suppressed record costs
// one relaxed load of the level, nothing else — no rendering, no
// allocation.  An emitted record is rendered on the calling thread and
// published into a lock-free bounded MPMC ring (Vyukov-style: per-slot
// sequence counters, claim by fetch_add), so concurrent emitters never
// serialise against each other or against the sink I/O.  When the ring is
// full the record is counted as dropped, never blocked on.
//
// Draining: info/debug records are drained opportunistically (try-lock; the
// thread already writing the sink picks up everyone's records) and at exit;
// warn/error records force a blocking drain so diagnostics are on the sink
// before anything else happens — a crash right after an error record still
// leaves the line visible.
//
// Control surface:
//   MLDIST_LOG_LEVEL = debug|info|warn|error|off   (default: info)
//   MLDIST_LOG_FILE  = path                        (default: stderr)
// mirrored by --log-level / --log-file on mldist_cli and every bench.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>

namespace mldist::obs {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,  ///< threshold only; records cannot be emitted at kOff
};

const char* level_name(LogLevel level);
/// "debug"|"info"|"warn"|"error"|"off" -> level.  False on unknown names.
bool parse_level(std::string_view name, LogLevel& out);

class Logger {
 public:
  static Logger& global();

  LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  /// The one check a suppressed call site pays.
  bool enabled(LogLevel level) const { return level >= this->level(); }
  void set_level(LogLevel level) {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }

  /// Redirect the sink to `path` (append mode, JSONL).  An empty path
  /// returns to stderr.  On open failure the sink is unchanged and `error`
  /// (when non-null) says why.
  bool set_file(const std::string& path, std::string* error = nullptr);
  std::string file_path() const;

  /// Publish one pre-rendered JSON line.  Lock-free; `urgent` forces a
  /// blocking drain after the push (used by warn/error).
  void publish(std::string&& line, bool urgent);

  /// Drain every published record to the sink.  Safe from any thread;
  /// contending callers fall through (the holder drains their records).
  void flush();

  /// Best-effort drain for signal handlers: try-lock only (a handler that
  /// interrupted the drain holder must not deadlock on sink_mutex_), never
  /// throws, never allocates on the no-records path.  A SIGTERM'd worker
  /// gets its buffered warn/error records onto the sink before dying; if
  /// the lock is contended the records were being drained anyway.
  void signal_drain() noexcept;

  /// Records discarded because the ring was full.
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Monotonic ns since the logger singleton was constructed; the "ts_ns"
  /// of every record.
  std::uint64_t now_ns() const;

  /// Small sequential id of the calling thread, assigned on first log.
  static std::uint32_t thread_id();

  static constexpr std::size_t kRingSize = 1024;  ///< power of two

 private:
  Logger();
  ~Logger();

  void drain_locked();

  struct Slot {
    std::atomic<std::size_t> seq{0};
    std::string line;
  };

  std::atomic<int> level_{static_cast<int>(LogLevel::kInfo)};
  std::atomic<std::uint64_t> dropped_{0};
  std::array<Slot, kRingSize> ring_;
  std::atomic<std::size_t> head_{0};  ///< next enqueue position
  std::size_t tail_ = 0;              ///< next dequeue position (sink_mutex_)
  mutable std::mutex sink_mutex_;     ///< guards tail_, sink_, path_
  std::FILE* sink_ = nullptr;         ///< nullptr = stderr
  std::string path_;
  std::uint64_t epoch_ns_ = 0;
};

/// Builder for one record: renders and publishes on destruction.  When the
/// level is suppressed, construction sets one flag and every field() call
/// is a no-op — call sites need no enabled() checks.
class LogRecord {
 public:
  LogRecord(LogLevel level, const char* component, std::string_view message);
  ~LogRecord();

  LogRecord(const LogRecord&) = delete;
  LogRecord& operator=(const LogRecord&) = delete;
  LogRecord(LogRecord&& other) noexcept;

  LogRecord& field(const char* key, std::uint64_t value);
  LogRecord& field(const char* key, std::int64_t value);
  LogRecord& field(const char* key, int value) {
    return field(key, static_cast<std::int64_t>(value));
  }
  LogRecord& field(const char* key, double value);
  LogRecord& field(const char* key, std::string_view value);
  LogRecord& field(const char* key, const char* value) {
    return field(key, std::string_view(value));
  }

  bool active() const { return active_; }

 private:
  bool active_ = false;
  bool urgent_ = false;
  std::string body_;
};

// One-liners for the common case:
//   obs::log_warn("nn.serialize", "no CRC32 footer").field("path", p);
LogRecord log_debug(const char* component, std::string_view message);
LogRecord log_info(const char* component, std::string_view message);
LogRecord log_warn(const char* component, std::string_view message);
LogRecord log_error(const char* component, std::string_view message);

}  // namespace mldist::obs
