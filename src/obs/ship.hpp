// Cross-process metrics shipping (DESIGN.md §16): the wire codec that lets
// a campaign worker's MetricsRegistry totals survive the process boundary.
//
// A worker periodically snapshots its registry, encodes the DELTA since the
// previous ship as one framed line, and writes it to the supervisor over
// the status pipe as an `OBS` record.  The supervisor decodes the record
// and folds it into its own registry under a "campaign.worker." prefix, so
// one /metrics scrape of the supervisor shows live training counters from
// every worker.
//
// Determinism contract (the PR 4 rule, extended across processes): every
// shipped quantity is an unsigned 64-bit integer and every merge is u64
// addition (histogram min/max fold by min/max, which is equally order
// independent), so the merged totals on a completed campaign are BITWISE
// IDENTICAL for any worker count and any interleaving of OBS records —
// exactly the property the in-process registry already has across thread
// counts.  Deltas rather than absolutes make the ship idempotence-free but
// loss-tolerant in the only way that matters: totals are correct as long as
// the final delta of each worker lands (forced after every cell and on
// QUIT), regardless of how the throttled mid-cell ships were timed.
//
// Wire format (one line, no '\t' or '\n', so it frames inside the
// tab-separated worker status protocol): records separated by 0x1e (ASCII
// record separator), fields within a record by 0x1f (unit separator — the
// spec.hpp codec convention; neither byte can appear in a metric name).
// All values are decimal u64 — integers round-trip exactly, so unlike the
// config codec no hex-float rendering is needed.
//
//   C <name> <delta>                                  counter increment
//   G <name> <value>                                  gauge (last-write-wins)
//   H <name> <dcount> <dsum> <min> <max> <b:n;b:n...> histogram delta
//
// Histogram count/sum/buckets are deltas (mergeable by addition); min/max
// are the worker's cumulative values (mergeable by min/max fold).
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace mldist::obs {

/// Encode the change from `prev` to `cur` as one wire record.  Returns an
/// empty string when nothing changed.  `prev` may be a default-constructed
/// snapshot (everything in `cur` ships as the delta from zero).  Counters
/// and histogram counts are assumed monotone between the two snapshots (the
/// registry guarantees this outside reset()).
std::string encode_metrics_delta(const MetricsSnapshot& prev,
                                 const MetricsSnapshot& cur);

/// Decode `record` and fold it into `into` with every metric name prefixed
/// by `prefix` (e.g. "campaign.worker.").  Returns false on a malformed
/// record (nothing is applied for the malformed tail; records already
/// consumed stay applied) or when registering a prefixed name exhausts the
/// registry capacity.
bool apply_metrics_delta(std::string_view record, const std::string& prefix,
                         MetricsRegistry& into);

/// Convenience overload targeting the process-global registry.
bool apply_metrics_delta(std::string_view record, const std::string& prefix);

}  // namespace mldist::obs
