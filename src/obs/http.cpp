#include "obs/http.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>

namespace mldist::obs {

namespace {

/// Portable close-on-exec: preferred at creation time (SOCK_CLOEXEC /
/// accept4) so there is no window where a concurrent fork could inherit the
/// fd; the fcntl path is the fallback for platforms without the flags.
void set_cloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFD);
  if (flags >= 0) (void)::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

}  // namespace

int listen_tcp(std::uint16_t port, int backlog, std::uint16_t* bound_port,
               std::string* error) {
#ifdef SOCK_CLOEXEC
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
#else
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd >= 0) set_cloexec(fd);
#endif
  if (fd < 0) {
    if (error != nullptr) *error = "socket(): " + std::string(strerror(errno));
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, backlog) != 0) {
    if (error != nullptr) {
      *error = "bind/listen on port " + std::to_string(port) + ": " +
               strerror(errno);
    }
    ::close(fd);
    return -1;
  }
  if (bound_port != nullptr) {
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
      *bound_port = ntohs(addr.sin_port);
    } else {
      *bound_port = port;
    }
  }
  return fd;
}

int accept_cloexec(int listen_fd) {
#ifdef SOCK_CLOEXEC
  const int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
#else
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd >= 0) set_cloexec(fd);
#endif
  return fd;
}

void set_recv_timeout(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // client went away; nothing to salvage
    }
    off += static_cast<std::size_t>(n);
  }
}

std::string http_response(int status, const char* status_text,
                          const char* content_type,
                          const std::string& body) {
  return http_response(status, status_text, content_type, body, std::string());
}

std::string http_response(int status, const char* status_text,
                          const char* content_type, const std::string& body,
                          const std::string& extra_headers) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " + status_text +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n" +
                    extra_headers + "\r\n";
  out += body;
  return out;
}

std::string http_error(int status, const char* status_text,
                       const std::string& message) {
  return http_response(status, status_text, "text/plain", message + "\n");
}

HttpRequestReader::HttpRequestReader(std::size_t max_header,
                                     std::size_t max_body)
    : max_header_(max_header), max_body_(max_body) {}

void HttpRequestReader::fail(int status, std::string detail) {
  state_ = State::kError;
  error_status_ = status;
  error_detail_ = std::move(detail);
}

bool HttpRequestReader::feed(const char* data, std::size_t n) {
  if (state_ == State::kError) return false;
  if (state_ == State::kComplete) return true;
  if (state_ == State::kHeaders) {
    buf_.append(data, n);
    const std::size_t end = buf_.find("\r\n\r\n");
    if (end == std::string::npos) {
      if (buf_.size() > max_header_) {
        fail(431, "request headers exceed " + std::to_string(max_header_) +
                      " bytes");
      }
      return state_ != State::kError;
    }
    if (end > max_header_) {
      fail(431, "request headers exceed " + std::to_string(max_header_) +
                    " bytes");
      return false;
    }
    if (!parse_headers()) return false;
    // Whatever followed the header block is the start of the body.
    body_ = buf_.substr(end + 4);
    buf_.clear();
    state_ = State::kBody;
  } else {
    body_.append(data, n);
  }
  if (content_length_ > max_body_) {
    fail(413, "request body of " + std::to_string(content_length_) +
                  " bytes exceeds " + std::to_string(max_body_));
    return false;
  }
  if (body_.size() > content_length_) {
    // Trailing junk after the declared body; HTTP/1.1 with Connection:
    // close has no pipelining, so this is a protocol violation.
    fail(400, "bytes beyond the declared Content-Length");
    return false;
  }
  if (body_.size() == content_length_) state_ = State::kComplete;
  return true;
}

bool HttpRequestReader::parse_headers() {
  // Request line: METHOD SP path SP HTTP/1.x
  const std::size_t line_end = buf_.find("\r\n");
  const std::string line = buf_.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos ||
      line.compare(sp2 + 1, 5, "HTTP/") != 0) {
    fail(400, "malformed request line");
    return false;
  }
  method_ = line.substr(0, sp1);
  path_ = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t q = path_.find('?');
  if (q != std::string::npos) path_.resize(q);  // ignore query strings
  if (method_.empty() || path_.empty() || path_[0] != '/') {
    fail(400, "malformed request line");
    return false;
  }

  // Headers: kept as (lowercased-name, trimmed-value) pairs for header();
  // Content-Length additionally drives the body state machine.
  std::size_t pos = line_end + 2;
  const std::size_t block_end = buf_.find("\r\n\r\n");
  while (pos < block_end) {
    const std::size_t eol = buf_.find("\r\n", pos);
    const std::string header = buf_.substr(pos, eol - pos);
    pos = eol + 2;
    const std::size_t colon = header.find(':');
    if (colon == std::string::npos) continue;
    std::string name = header.substr(0, colon);
    for (char& c : name) c = static_cast<char>(std::tolower(
        static_cast<unsigned char>(c)));
    std::size_t v = colon + 1;
    while (v < header.size() && (header[v] == ' ' || header[v] == '\t')) ++v;
    std::size_t e = header.size();
    while (e > v && (header[e - 1] == ' ' || header[e - 1] == '\t')) --e;
    const std::string value = header.substr(v, e - v);
    headers_.emplace_back(name, value);
    if (name != "content-length") continue;
    char* endp = nullptr;
    errno = 0;
    const unsigned long long len =
        std::strtoull(header.c_str() + v, &endp, 10);
    if (endp == header.c_str() + v || *endp != '\0' || errno == ERANGE) {
      fail(400, "malformed Content-Length");
      return false;
    }
    content_length_ = static_cast<std::size_t>(len);
  }
  return true;
}

std::string HttpRequestReader::header(std::string_view name) const {
  std::string found;
  for (const auto& [n, v] : headers_) {
    if (n == name) found = v;
  }
  return found;
}

}  // namespace mldist::obs
