// Scoped-span tracer emitting Chrome trace_event JSON.
//
// A Span records {name, category, thread, begin, duration, attributes} into
// the current thread's buffer when tracing is enabled, and costs one relaxed
// atomic load when it is not — instrumentation stays compiled in everywhere
// (kernels, nn, core) because the disabled path is negligible (asserted by
// bench_obs_overhead and the obs test label).
//
// Enabling: set the MLDIST_TRACE environment variable to the output path,
// or pass --trace <file> to mldist_cli / any bench (they call
// Tracer::global().enable(path)).  enable() installs an atexit flush, so a
// traced process always leaves a readable file; flush() can also be called
// explicitly (it is idempotent — the full event list is rewritten).
//
// Buffering: per-thread vectors guarded by a per-thread mutex that is only
// contended during flush, so recording never serialises workers against
// each other.  A thread that exits splices its events into the tracer's
// retained list (dedicated pools come and go per parallel_for_threads
// call).  Each thread buffers at most kMaxEventsPerThread events; further
// events are counted as dropped, never silently lost (the count lands in
// the trace file's otherData).
//
// Output schema (the "JSON Object Format" of the Chrome trace_event spec —
// load it at chrome://tracing or https://ui.perfetto.dev):
//   {"traceEvents":[
//      {"name":"process_name","ph":"M","pid":1,"args":{"name":"mldist"}},
//      {"name":"fit.epoch","cat":"nn","ph":"X","pid":1,"tid":2,
//       "ts":12.345,"dur":6789.0,"args":{"epoch":1}},
//      ...],
//    "displayTimeUnit":"ms",
//    "otherData":{"dropped_events":0,"manifest":{...}}}
// (otherData.manifest is the obs::RunManifest provenance block every
// artifact carries.)
// "X" (complete) events carry ts/dur in microseconds; tid is a small
// sequential id assigned per recording thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mldist::obs {

class Tracer {
 public:
  static Tracer& global();

  /// One relaxed load; the only cost instrumented code pays when disabled.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Start recording, targeting `path` for flush.  Installs an atexit
  /// flush on first use.  Enabling while already enabled just retargets.
  void enable(std::string path);
  /// Stop recording (already-buffered events are kept for flush).
  void disable();

  /// Write every buffered event to the configured path as one atomic file
  /// replace.  Returns false and fills `error` on I/O failure or when no
  /// path was ever configured.  Events are kept, so repeated flushes (for
  /// example the explicit CLI flush followed by the atexit one) are safe.
  bool flush(std::string* error = nullptr);

  std::string path() const;
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Nanoseconds since the tracer singleton was constructed (steady clock).
  std::uint64_t now_ns() const;

  /// The absolute steady-clock time of this tracer's ts=0, as written into
  /// the trace file's otherData.trace_epoch_ns (cross-process alignment key
  /// for obs/trace_merge.hpp).
  std::uint64_t epoch_ns() const { return epoch_ns_; }

  /// One finished span; used by Span's destructor, not call sites.
  struct Event {
    std::string name;
    const char* cat = "";
    std::uint64_t ts_ns = 0;
    std::uint64_t dur_ns = 0;
    std::uint32_t tid = 0;
    std::string args;  ///< pre-rendered JSON object body ("" = no args)
  };
  void record(Event&& event);

  static constexpr std::size_t kMaxEventsPerThread = 1u << 20;

 private:
  struct ThreadBuf {
    std::mutex mutex;
    std::vector<Event> events;
    std::uint32_t tid = 0;
  };
  struct BufHandle;

  Tracer();

  ThreadBuf& local_buf();
  void retire(ThreadBuf* buf);

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> dropped_{0};
  mutable std::mutex mutex_;
  std::string path_;
  std::vector<ThreadBuf*> bufs_;      ///< live recording threads
  std::vector<Event> retired_;        ///< events of exited threads
  std::uint32_t next_tid_ = 1;        ///< 0 is reserved for metadata rows
  bool atexit_installed_ = false;
  std::uint64_t epoch_ns_ = 0;        ///< steady_clock at construction
};

/// RAII span: begin at construction, end (and record) at destruction.
/// When tracing is disabled construction and destruction are no-ops.
class Span {
 public:
  /// `cat` must be a string literal (stored by pointer); `name` is copied
  /// only when tracing is enabled.
  Span(const std::string& name, const char* cat) {
    if (Tracer::global().enabled()) begin(name, cat);
  }
  Span(const char* name, const char* cat) {
    if (Tracer::global().enabled()) begin(name, cat);
  }
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return active_; }

  /// Attach an attribute (rendered into the event's "args" object).  No-ops
  /// when the span is inactive, so call sites need no enabled() checks.
  Span& arg(const char* key, std::uint64_t value);
  Span& arg(const char* key, std::int64_t value);
  Span& arg(const char* key, int value) {
    return arg(key, static_cast<std::int64_t>(value));
  }
  Span& arg(const char* key, double value);
  Span& arg(const char* key, const std::string& value);
  Span& arg(const char* key, const char* value);

 private:
  void begin(const std::string& name, const char* cat);
  void append_key(const char* key);

  bool active_ = false;
  const char* cat_ = "";
  std::uint64_t begin_ns_ = 0;
  std::string name_;
  std::string args_;
};

// Anonymous scoped span: MLDIST_SPAN("collect.chunk", "core");
#define MLDIST_OBS_CONCAT_INNER(a, b) a##b
#define MLDIST_OBS_CONCAT(a, b) MLDIST_OBS_CONCAT_INNER(a, b)
#define MLDIST_SPAN(name, cat) \
  ::mldist::obs::Span MLDIST_OBS_CONCAT(mldist_span_, __LINE__)(name, cat)

}  // namespace mldist::obs
