#include "obs/signal.hpp"

#include <csignal>

#include <atomic>

#include "obs/log.hpp"
#include "obs/manifest.hpp"

namespace mldist::obs {

namespace {

std::atomic<bool> interrupted{false};
std::atomic<bool> exit_on_signal{true};
std::atomic<bool> installed{false};

void on_interrupt(int sig) {
  interrupted.store(true, std::memory_order_relaxed);
  // String literal: RunStatus stores phases by pointer, which is the only
  // async-signal-safe way to update it.
  RunStatus::global().set_phase("interrupted");
  Logger::global().signal_drain();
  if (!exit_on_signal.load(std::memory_order_relaxed)) return;
  // Re-raise under the default disposition so the process dies with the
  // conventional "killed by signal" wait status — the campaign supervisor
  // (and shells) distinguish that from a normal exit code.
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

}  // namespace

void install_interrupt_handlers(bool exit_immediately) {
  exit_on_signal.store(exit_immediately, std::memory_order_relaxed);
  if (installed.exchange(true)) return;
  // Force the logger singleton into existence now: the handler must never
  // be the first caller of Logger::global() (static-init under a signal).
  Logger::global();
  struct sigaction sa = {};
  sa.sa_handler = on_interrupt;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: poll/read in cooperative loops wake up
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
}

bool interrupt_requested() {
  return interrupted.load(std::memory_order_relaxed);
}

void clear_interrupt() { interrupted.store(false, std::memory_order_relaxed); }

}  // namespace mldist::obs
