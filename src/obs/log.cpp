#include "obs/log.hpp"

#include <chrono>
#include <cstdlib>

#include "util/json.hpp"

namespace mldist::obs {

namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::atomic<std::uint32_t> next_log_tid{1};

}  // namespace

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "unknown";
}

bool parse_level(std::string_view name, LogLevel& out) {
  if (name == "debug") out = LogLevel::kDebug;
  else if (name == "info") out = LogLevel::kInfo;
  else if (name == "warn") out = LogLevel::kWarn;
  else if (name == "error") out = LogLevel::kError;
  else if (name == "off") out = LogLevel::kOff;
  else return false;
  return true;
}

Logger::Logger() : epoch_ns_(steady_ns()) {
  for (std::size_t i = 0; i < kRingSize; ++i) {
    ring_[i].seq.store(i, std::memory_order_relaxed);
  }
  if (const char* env = std::getenv("MLDIST_LOG_LEVEL");
      env != nullptr && env[0] != '\0') {
    LogLevel lvl;
    if (parse_level(env, lvl)) {
      set_level(lvl);
    } else {
      std::fprintf(stderr,
                   "[obs] MLDIST_LOG_LEVEL=%s is not a known level "
                   "(debug|info|warn|error|off); using info\n",
                   env);
    }
  }
  if (const char* env = std::getenv("MLDIST_LOG_FILE");
      env != nullptr && env[0] != '\0') {
    std::string error;
    if (!set_file(env, &error)) {
      std::fprintf(stderr, "[obs] MLDIST_LOG_FILE: %s\n", error.c_str());
    }
  }
  // A process that logged anything leaves a drained sink even when nobody
  // called flush() — mirrors the tracer's atexit contract.
  std::atexit([] { Logger::global().flush(); });
}

Logger::~Logger() = default;

Logger& Logger::global() {
  // Intentionally leaked: the atexit flush registered by the constructor
  // (and any logging from other statics' destructors) must outlive every
  // destruction order the runtime might pick.  The OS closes the sink fd;
  // the atexit drain has already flushed it.
  static Logger* logger = new Logger();
  return *logger;
}

std::uint64_t Logger::now_ns() const { return steady_ns() - epoch_ns_; }

std::uint32_t Logger::thread_id() {
  thread_local std::uint32_t tid =
      next_log_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

bool Logger::set_file(const std::string& path, std::string* error) {
  std::FILE* opened = nullptr;
  if (!path.empty()) {
    opened = std::fopen(path.c_str(), "a");
    if (opened == nullptr) {
      if (error != nullptr) {
        *error = "cannot open log file '" + path + "' for append";
      }
      return false;
    }
  }
  std::lock_guard<std::mutex> lock(sink_mutex_);
  if (sink_ != nullptr) std::fclose(sink_);
  sink_ = opened;
  path_ = path;
  return true;
}

std::string Logger::file_path() const {
  std::lock_guard<std::mutex> lock(sink_mutex_);
  return path_;
}

void Logger::publish(std::string&& line, bool urgent) {
  // Vyukov bounded MPMC enqueue: claim a slot whose sequence equals the
  // head position, write the payload, publish by bumping the sequence.
  std::size_t pos = head_.load(std::memory_order_relaxed);
  for (;;) {
    Slot& slot = ring_[pos & (kRingSize - 1)];
    const std::size_t seq = slot.seq.load(std::memory_order_acquire);
    const std::intptr_t diff = static_cast<std::intptr_t>(seq) -
                               static_cast<std::intptr_t>(pos);
    if (diff == 0) {
      if (head_.compare_exchange_weak(pos, pos + 1,
                                      std::memory_order_relaxed)) {
        slot.line = std::move(line);
        slot.seq.store(pos + 1, std::memory_order_release);
        break;
      }
    } else if (diff < 0) {
      // Ring full (consumer is kRingSize behind): drop, never block the
      // recording thread on sink I/O.
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    } else {
      pos = head_.load(std::memory_order_relaxed);
    }
  }
  if (urgent) {
    flush();
  } else if (sink_mutex_.try_lock()) {
    drain_locked();
    sink_mutex_.unlock();
  }
}

void Logger::flush() {
  std::lock_guard<std::mutex> lock(sink_mutex_);
  drain_locked();
}

void Logger::signal_drain() noexcept {
  if (!sink_mutex_.try_lock()) return;
  try {
    drain_locked();
  } catch (...) {
    // fwrite/fflush do not throw; swallow anything exotic — a signal
    // handler must not let an exception escape.
  }
  sink_mutex_.unlock();
}

void Logger::drain_locked() {
  std::FILE* out = sink_ != nullptr ? sink_ : stderr;
  bool wrote = false;
  for (;;) {
    Slot& slot = ring_[tail_ & (kRingSize - 1)];
    const std::size_t seq = slot.seq.load(std::memory_order_acquire);
    if (static_cast<std::intptr_t>(seq) -
            static_cast<std::intptr_t>(tail_ + 1) <
        0) {
      break;  // next slot not yet published
    }
    std::fwrite(slot.line.data(), 1, slot.line.size(), out);
    std::fputc('\n', out);
    slot.line.clear();
    slot.line.shrink_to_fit();
    // Mark the slot free for the producer one lap ahead.
    slot.seq.store(tail_ + kRingSize, std::memory_order_release);
    ++tail_;
    wrote = true;
  }
  if (wrote) std::fflush(out);
}

// --- LogRecord -------------------------------------------------------------

LogRecord::LogRecord(LogLevel level, const char* component,
                     std::string_view message) {
  Logger& logger = Logger::global();
  if (level == LogLevel::kOff || !logger.enabled(level)) return;
  active_ = true;
  urgent_ = level >= LogLevel::kWarn;
  body_ = "{\"ts_ns\":" + std::to_string(logger.now_ns()) +
          ",\"level\":" + util::JsonBuilder::quote(level_name(level)) +
          ",\"tid\":" + std::to_string(Logger::thread_id()) +
          ",\"component\":" + util::JsonBuilder::quote(component) +
          ",\"msg\":" + util::JsonBuilder::quote(std::string(message));
}

LogRecord::LogRecord(LogRecord&& other) noexcept
    : active_(other.active_),
      urgent_(other.urgent_),
      body_(std::move(other.body_)) {
  other.active_ = false;
}

LogRecord::~LogRecord() {
  if (!active_) return;
  body_ += "}";
  Logger::global().publish(std::move(body_), urgent_);
}

LogRecord& LogRecord::field(const char* key, std::uint64_t value) {
  if (!active_) return *this;
  body_ += "," + util::JsonBuilder::quote(key) + ":" + std::to_string(value);
  return *this;
}

LogRecord& LogRecord::field(const char* key, std::int64_t value) {
  if (!active_) return *this;
  body_ += "," + util::JsonBuilder::quote(key) + ":" + std::to_string(value);
  return *this;
}

LogRecord& LogRecord::field(const char* key, double value) {
  if (!active_) return *this;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  body_ += "," + util::JsonBuilder::quote(key) + ":" + buf;
  return *this;
}

LogRecord& LogRecord::field(const char* key, std::string_view value) {
  if (!active_) return *this;
  body_ += "," + util::JsonBuilder::quote(key) + ":" +
           util::JsonBuilder::quote(std::string(value));
  return *this;
}

LogRecord log_debug(const char* component, std::string_view message) {
  return LogRecord(LogLevel::kDebug, component, message);
}
LogRecord log_info(const char* component, std::string_view message) {
  return LogRecord(LogLevel::kInfo, component, message);
}
LogRecord log_warn(const char* component, std::string_view message) {
  return LogRecord(LogLevel::kWarn, component, message);
}
LogRecord log_error(const char* component, std::string_view message) {
  return LogRecord(LogLevel::kError, component, message);
}

}  // namespace mldist::obs
