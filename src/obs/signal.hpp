// SIGTERM/SIGINT handling for entry points (ISSUE 7 satellite): a killed
// worker or an operator's Ctrl-C must not lose buffered warn/error log
// records or leave /runz claiming the run is still mid-phase.
//
// Two modes:
//
//  * exit_immediately = true (train/test/bench entry points): the handler
//    stamps RunStatus phase "interrupted", best-effort drains the logger
//    ring (Logger::signal_drain — try-lock, so a handler that interrupted
//    the drain holder cannot deadlock), then re-raises the signal under the
//    default disposition so the exit status still says "killed by SIGTERM"
//    to whoever is waiting on the process (the campaign supervisor keys
//    reclaim decisions off that status).
//
//  * exit_immediately = false (the campaign supervisor): the handler only
//    sets a flag; the supervisor's poll loop observes interrupt_requested()
//    and performs a cooperative shutdown — journal an "interrupted" WAL
//    record, drain workers, release the state-dir lock — which a handler
//    could never do safely itself.
//
// Handlers are installed at most once per process; a second install call
// just switches the mode flag.
#pragma once

namespace mldist::obs {

/// Install SIGTERM + SIGINT handlers (see file comment for the two modes).
void install_interrupt_handlers(bool exit_immediately);

/// True once a SIGTERM/SIGINT arrived (either mode).  Cooperative loops
/// poll this.
bool interrupt_requested();

/// Testing/CLI hook: reset the interrupt flag (e.g. between cooperative
/// campaign runs in one test binary).
void clear_interrupt();

}  // namespace mldist::obs
