// Shared HTTP/1.1 plumbing for the embedded endpoints: the metrics server
// (obs/server.hpp) and the serving daemon (src/serve) speak the same tiny
// dialect, so the socket setup, the request reader and the response
// formatter live here once.
//
// Scope is deliberately small — enough HTTP for curl, a Prometheus scraper
// and the JSON classify clients: request line + headers + an optional
// Content-Length body, Connection: close, no chunked encoding, no TLS, no
// keep-alive.  Anything fancier belongs in a reverse proxy in front.
//
// Two hardening rules every user of this header inherits:
//  * every socket is created close-on-exec (SOCK_CLOEXEC / accept4, with a
//    fcntl fallback where unavailable), so fork+exec'd campaign workers can
//    never inherit a bound listen fd and keep the port alive after the
//    parent exits;
//  * requests are parsed incrementally by HttpRequestReader, so a request
//    split across several send(2) calls (or a POST body arriving after the
//    headers) is reassembled instead of rejected, while header/body size
//    caps bound what a hostile client can make us buffer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mldist::obs {

/// Create, bind and listen on an IPv4 TCP socket (INADDR_ANY).  The fd is
/// close-on-exec.  Port 0 binds an ephemeral port; the resolved port is
/// stored in `bound_port`.  Returns -1 with `error` filled on failure.
int listen_tcp(std::uint16_t port, int backlog, std::uint16_t* bound_port,
               std::string* error);

/// accept(2) a client from `listen_fd`, close-on-exec (accept4 with
/// SOCK_CLOEXEC where available, else accept + fcntl).  Returns -1 on
/// failure (errno preserved).
int accept_cloexec(int listen_fd);

/// Set SO_RCVTIMEO so a blocking recv on `fd` returns EAGAIN after
/// `timeout_ms` instead of stalling the caller forever.
void set_recv_timeout(int fd, int timeout_ms);

/// Write all of `data`, retrying short writes; gives up silently when the
/// client goes away (MSG_NOSIGNAL — no SIGPIPE).
void send_all(int fd, const std::string& data);

/// One serialised response: status line, Content-Type, Content-Length,
/// Connection: close, body.
std::string http_response(int status, const char* status_text,
                          const char* content_type, const std::string& body);

/// Same, with `extra_headers` (zero or more complete "Name: value\r\n"
/// lines, already serialised) inserted before the blank line — how the
/// serve plane echoes X-Request-Id without the formatter growing a header
/// map.
std::string http_response(int status, const char* status_text,
                          const char* content_type, const std::string& body,
                          const std::string& extra_headers);

/// Convenience for the common error shapes ("text/plain" + message line).
std::string http_error(int status, const char* status_text,
                       const std::string& message);

/// Incremental HTTP/1.1 request parser.  Feed it whatever recv produced;
/// it accumulates until the header block and any Content-Length body are
/// complete, then exposes method / path / body.  Malformed or oversized
/// input parks the reader in the error state with a suggested status code.
class HttpRequestReader {
 public:
  /// `max_header` bounds the request line + headers, `max_body` the
  /// Content-Length payload a client may make us buffer.
  explicit HttpRequestReader(std::size_t max_header = 8 * 1024,
                             std::size_t max_body = 1024 * 1024);

  /// Consume `n` more bytes off the wire.  Returns false once the reader
  /// is in the error state (the connection should be answered with
  /// `error_status()` and closed).
  bool feed(const char* data, std::size_t n);

  bool complete() const { return state_ == State::kComplete; }
  bool failed() const { return state_ == State::kError; }
  /// 400 (malformed), 413 (body too large) or 431 (headers too large);
  /// 0 while not failed.
  int error_status() const { return error_status_; }
  const std::string& error_detail() const { return error_detail_; }

  // Valid once complete():
  const std::string& method() const { return method_; }
  /// Path with any "?query" stripped.
  const std::string& path() const { return path_; }
  const std::string& body() const { return body_; }
  /// The value of header `name` (ASCII case-insensitive, pass it
  /// lowercase), leading/trailing whitespace trimmed; "" when absent.
  /// Duplicate headers keep the last occurrence.
  std::string header(std::string_view name) const;

 private:
  enum class State { kHeaders, kBody, kComplete, kError };

  void fail(int status, std::string detail);
  bool parse_headers();

  State state_ = State::kHeaders;
  std::size_t max_header_;
  std::size_t max_body_;
  std::string buf_;             ///< raw bytes until headers parsed
  std::string method_;
  std::string path_;
  std::string body_;
  /// (lowercased-name, trimmed-value) in wire order.
  std::vector<std::pair<std::string, std::string>> headers_;
  std::size_t content_length_ = 0;
  int error_status_ = 0;
  std::string error_detail_;
};

}  // namespace mldist::obs
