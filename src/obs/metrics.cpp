#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "util/json.hpp"

namespace mldist::obs {

namespace {

constexpr int kKindCounter = 0;
constexpr int kKindGauge = 1;
constexpr int kKindHistogram = 2;

const char* kind_name(int kind) {
  switch (kind) {
    case kKindCounter: return "counter";
    case kKindGauge: return "gauge";
    default: return "histogram";
  }
}

}  // namespace

/// RAII owner of one thread's shard: created on the thread's first record,
/// retires the shard (merge into the retained totals, free the memory) when
/// the thread exits.  get() touches the registry singleton first, so the
/// registry outlives every handle, including the main thread's.  Defined at
/// namespace scope so the friend declaration in the header can name it.
struct ShardHandle {
  MetricsRegistry::Shard* shard = nullptr;

  MetricsRegistry::Shard* get() {
    if (shard == nullptr) {
      MetricsRegistry& reg = MetricsRegistry::global();
      auto owned = new MetricsRegistry::Shard();
      {
        std::lock_guard<std::mutex> lock(reg.mutex_);
        reg.shards_.push_back(owned);
      }
      shard = owned;
    }
    return shard;
  }

  ~ShardHandle() {
    if (shard != nullptr) MetricsRegistry::global().retire(shard);
  }
};

namespace {
ShardHandle& local_handle() {
  thread_local ShardHandle handle;
  return handle;
}
}  // namespace

MetricsRegistry::MetricsRegistry() = default;

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

MetricId MetricsRegistry::register_metric(std::string_view name, int kind,
                                          std::size_t cap) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [known, entry] : directory_) {
    if (known == name) {
      if (entry.first != kind) {
        throw std::invalid_argument("obs: metric '" + std::string(name) +
                                    "' already registered as a " +
                                    kind_name(entry.first));
      }
      return entry.second;
    }
  }
  auto& names = names_[static_cast<std::size_t>(kind)];
  if (names.size() >= cap) {
    throw std::length_error(std::string("obs: ") + kind_name(kind) +
                            " capacity exhausted registering '" +
                            std::string(name) + "'");
  }
  const MetricId id = names.size();
  names.emplace_back(name);
  directory_.emplace_back(std::string(name), std::make_pair(kind, id));
  return id;
}

MetricId MetricsRegistry::counter(std::string_view name) {
  return register_metric(name, kKindCounter, kMaxCounters);
}

MetricId MetricsRegistry::gauge(std::string_view name) {
  return register_metric(name, kKindGauge, kMaxGauges);
}

MetricId MetricsRegistry::histogram(std::string_view name) {
  return register_metric(name, kKindHistogram, kMaxHistograms);
}

MetricsRegistry::Shard& MetricsRegistry::local_shard() {
  return *local_handle().get();
}

void MetricsRegistry::add(MetricId id, std::uint64_t delta) {
  local_shard().counters[id].fetch_add(delta, std::memory_order_relaxed);
}

void MetricsRegistry::observe(MetricId id, std::uint64_t value) {
  HistCells& h = local_shard().hists[id];
  // Single-writer cells: the owning thread is the only mutator, so
  // load-modify-store (rather than CAS loops) is race-free; atomics are for
  // the concurrent snapshot() reader.
  h.count.fetch_add(1, std::memory_order_relaxed);
  h.sum.fetch_add(value, std::memory_order_relaxed);
  if (value < h.min.load(std::memory_order_relaxed)) {
    h.min.store(value, std::memory_order_relaxed);
  }
  if (value > h.max.load(std::memory_order_relaxed)) {
    h.max.store(value, std::memory_order_relaxed);
  }
  const std::size_t bucket = static_cast<std::size_t>(std::bit_width(value));
  h.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
}

void MetricsRegistry::merge_histogram(MetricId id,
                                      const HistogramSnapshot& delta) {
  if (delta.count == 0) return;
  HistCells& h = local_shard().hists[id];
  h.count.fetch_add(delta.count, std::memory_order_relaxed);
  h.sum.fetch_add(delta.sum, std::memory_order_relaxed);
  if (delta.min < h.min.load(std::memory_order_relaxed)) {
    h.min.store(delta.min, std::memory_order_relaxed);
  }
  if (delta.max > h.max.load(std::memory_order_relaxed)) {
    h.max.store(delta.max, std::memory_order_relaxed);
  }
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    if (delta.buckets[b] != 0) {
      h.buckets[b].fetch_add(delta.buckets[b], std::memory_order_relaxed);
    }
  }
}

void MetricsRegistry::set_gauge(MetricId id, std::uint64_t value) {
  std::lock_guard<std::mutex> lock(mutex_);
  gauges_[id].value = value;
  gauges_[id].set = true;
}

void MetricsRegistry::retire(Shard* shard) {
  std::lock_guard<std::mutex> lock(mutex_);
  merge_into_retired(*shard);
  shards_.erase(std::remove(shards_.begin(), shards_.end(), shard),
                shards_.end());
  delete shard;
}

void MetricsRegistry::merge_into_retired(const Shard& shard) {
  for (std::size_t i = 0; i < kMaxCounters; ++i) {
    const std::uint64_t v = shard.counters[i].load(std::memory_order_relaxed);
    if (v != 0) retired_.counters[i].fetch_add(v, std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < kMaxHistograms; ++i) {
    const HistCells& src = shard.hists[i];
    HistCells& dst = retired_.hists[i];
    const std::uint64_t count = src.count.load(std::memory_order_relaxed);
    if (count == 0) continue;
    dst.count.fetch_add(count, std::memory_order_relaxed);
    dst.sum.fetch_add(src.sum.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    const std::uint64_t mn = src.min.load(std::memory_order_relaxed);
    if (mn < dst.min.load(std::memory_order_relaxed)) {
      dst.min.store(mn, std::memory_order_relaxed);
    }
    const std::uint64_t mx = src.max.load(std::memory_order_relaxed);
    if (mx > dst.max.load(std::memory_order_relaxed)) {
      dst.max.store(mx, std::memory_order_relaxed);
    }
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      const std::uint64_t n = src.buckets[b].load(std::memory_order_relaxed);
      if (n != 0) dst.buckets[b].fetch_add(n, std::memory_order_relaxed);
    }
  }
}

void MetricsRegistry::merge_shard_locked(const Shard& shard,
                                         MetricsSnapshot& into) const {
  for (std::size_t i = 0; i < into.counters.size(); ++i) {
    into.counters[i].second +=
        shard.counters[i].load(std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < into.histograms.size(); ++i) {
    const HistCells& src = shard.hists[i];
    HistogramSnapshot& dst = into.histograms[i].second;
    const std::uint64_t count = src.count.load(std::memory_order_relaxed);
    if (count == 0) continue;
    const std::uint64_t mn = src.min.load(std::memory_order_relaxed);
    const std::uint64_t mx = src.max.load(std::memory_order_relaxed);
    if (dst.count == 0 || mn < dst.min) dst.min = mn;
    if (mx > dst.max) dst.max = mx;
    dst.count += count;
    dst.sum += src.sum.load(std::memory_order_relaxed);
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      dst.buckets[b] += src.buckets[b].load(std::memory_order_relaxed);
    }
  }
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto& counter_names = names_[kKindCounter];
  const auto& gauge_names = names_[kKindGauge];
  const auto& hist_names = names_[kKindHistogram];
  out.counters.reserve(counter_names.size());
  for (const auto& n : counter_names) out.counters.emplace_back(n, 0);
  out.histograms.reserve(hist_names.size());
  for (const auto& n : hist_names) {
    out.histograms.emplace_back(n, HistogramSnapshot{});
  }
  for (std::size_t i = 0; i < gauge_names.size(); ++i) {
    if (gauges_[i].set) out.gauges.emplace_back(gauge_names[i], gauges_[i].value);
  }
  merge_shard_locked(retired_, out);
  for (const Shard* shard : shards_) merge_shard_locked(*shard, out);
  for (auto& [name, hist] : out.histograms) {
    if (hist.count == 0) hist.min = 0;
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.first < b.first;
  };
  std::sort(out.counters.begin(), out.counters.end(), by_name);
  std::sort(out.gauges.begin(), out.gauges.end(), by_name);
  std::sort(out.histograms.begin(), out.histograms.end(), by_name);
  return out;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  const MetricsSnapshot snap = snapshot();
  return snap.counter(name);
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto zero_shard = [](Shard& shard) {
    for (auto& c : shard.counters) c.store(0, std::memory_order_relaxed);
    for (auto& h : shard.hists) {
      h.count.store(0, std::memory_order_relaxed);
      h.sum.store(0, std::memory_order_relaxed);
      h.min.store(~0ULL, std::memory_order_relaxed);
      h.max.store(0, std::memory_order_relaxed);
      for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
    }
  };
  zero_shard(retired_);
  for (Shard* shard : shards_) zero_shard(*shard);
  for (auto& g : gauges_) g = GaugeCell{};
}

std::uint64_t HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0;
  if (q <= 0.0) return min;
  if (q > 1.0) q = 1.0;
  // Rank of the target observation, 1-based; ceil without FP edge cases on
  // exact products (q * count can land exactly on an integer).
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    cum += buckets[b];
    if (cum >= rank) {
      // Upper edge of bucket b: 0 for the zero bucket, 2^b - 1 otherwise.
      std::uint64_t upper = 0;
      if (b >= 64) upper = ~0ULL;
      else if (b >= 1) upper = (1ULL << b) - 1;
      if (upper > max) upper = max;
      if (upper < min) upper = min;
      return upper;
    }
  }
  return max;  // unreachable when bucket counts sum to `count`
}

std::uint64_t MetricsSnapshot::counter(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

std::string MetricsSnapshot::to_json() const {
  util::JsonBuilder counters_j;
  for (const auto& [name, value] : counters) counters_j.field(name, value);
  util::JsonBuilder gauges_j;
  for (const auto& [name, value] : gauges) gauges_j.field(name, value);
  util::JsonBuilder hists_j;
  for (const auto& [name, hist] : histograms) {
    util::JsonBuilder h;
    h.field("count", hist.count)
        .field("sum", hist.sum)
        .field("min", hist.min)
        .field("max", hist.max)
        .field("mean", hist.mean())
        .field("p50", hist.p50())
        .field("p90", hist.p90())
        .field("p99", hist.p99());
    // Sparse bucket rendering: [[bit_width, count], ...] for non-empty
    // buckets only, so idle histograms cost a few bytes, not 65 zeros.
    std::vector<std::string> buckets;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      if (hist.buckets[b] != 0) {
        buckets.push_back("[" + std::to_string(b) + "," +
                          std::to_string(hist.buckets[b]) + "]");
      }
    }
    h.raw("buckets", util::JsonBuilder::array(buckets));
    hists_j.raw(name, h.str());
  }
  util::JsonBuilder j;
  j.raw("counters", counters_j.str())
      .raw("gauges", gauges_j.str())
      .raw("histograms", hists_j.str());
  return j.str();
}

void count(std::string_view name, std::uint64_t delta) {
  MetricsRegistry& reg = MetricsRegistry::global();
  reg.add(reg.counter(name), delta);
}

void observe_seconds(std::string_view name, double seconds) {
  MetricsRegistry& reg = MetricsRegistry::global();
  const double ns = seconds * 1e9;
  const std::uint64_t clamped =
      ns <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(ns));
  reg.observe(reg.histogram(name), clamped);
}

}  // namespace mldist::obs
