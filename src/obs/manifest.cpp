#include "obs/manifest.hpp"

#include <unistd.h>

#include <chrono>
#include <cstdio>

#include "util/crc32.hpp"
#include "util/json.hpp"

// Burned in by src/obs/CMakeLists.txt; fall back so a tarball build (no
// .git) still produces a well-formed manifest.
#ifndef MLDIST_GIT_DESCRIBE
#define MLDIST_GIT_DESCRIBE "unknown"
#endif
#ifndef MLDIST_BUILD_FLAGS
#define MLDIST_BUILD_FLAGS "unknown"
#endif

namespace mldist::obs {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string mint_run_id() {
  const auto wall = std::chrono::system_clock::now().time_since_epoch();
  const std::uint64_t ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(wall).count());
  const std::uint64_t pid = static_cast<std::uint64_t>(::getpid());
  return hex64(splitmix64(ns) ^ splitmix64(pid << 32 | pid));
}

std::string read_hostname() {
  char buf[256] = {0};
  if (::gethostname(buf, sizeof(buf) - 1) != 0) return "unknown";
  return buf;
}

}  // namespace

RunManifest& RunManifest::current() {
  static RunManifest* manifest = [] {
    auto* m = new RunManifest();
    m->run_id = mint_run_id();
    m->git_describe = MLDIST_GIT_DESCRIBE;
    m->hostname = read_hostname();
    m->build_flags = MLDIST_BUILD_FLAGS;
    return m;
  }();
  return *manifest;
}

void RunManifest::set_config(std::string_view config_json,
                             std::uint64_t config_seed) {
  const std::uint32_t crc =
      util::crc32(config_json.data(), config_json.size());
  char buf[9];
  std::snprintf(buf, sizeof(buf), "%08x", crc);
  config_hash = buf;
  seed = config_seed;
}

std::string RunManifest::to_json() const {
  util::JsonBuilder j;
  j.field("run_id", run_id)
      .field("config_hash", config_hash)
      .field("seed", seed)
      .field("kernel", kernel)
      .field("git", git_describe)
      .field("hostname", hostname)
      .field("build", build_flags);
  return j.str();
}

RunStatus& RunStatus::global() {
  static RunStatus status;
  return status;
}

void RunStatus::set_detail_provider(std::function<std::string()> provider) {
  std::lock_guard<std::mutex> lock(detail_mutex_);
  detail_ = std::move(provider);
}

std::string RunStatus::to_json() const {
  // Copy the provider under the lock, call it outside: a slow provider (or
  // one taking its own locks) must not stall set_detail_provider.
  std::function<std::string()> provider;
  {
    std::lock_guard<std::mutex> lock(detail_mutex_);
    provider = detail_;
  }
  util::JsonBuilder j;
  j.field("phase", phase()).field("epoch", epoch());
  if (provider) j.raw("detail", provider());
  j.raw("manifest", RunManifest::current().to_json());
  return j.str();
}

}  // namespace mldist::obs
