// RunManifest: the provenance block stamped into every artifact a run
// leaves behind (results/*.json, trace files, history.jsonl lines) so a
// number in a report is always attributable to the exact binary, config and
// machine that produced it.
//
//   {"run_id":"9f2c...","config_hash":"1a2b3c4d","seed":42,
//    "kernel":"avx2","git":"cc53008","hostname":"box",
//    "build":"Release GNU 13.2"}
//
// run_id is minted once per process (wall clock + pid mixed through
// splitmix64 — unique across runs, not meant to be guessable).  config_hash
// is CRC-32 over the run's config JSON, so two runs with identical knobs
// key to the same hash in results/history.jsonl regardless of when or where
// they ran.  git describe and the build flags are burned in at compile time
// by src/obs/CMakeLists.txt; kernel is stamped by the entry point after
// dispatch resolution (the obs library sits below src/kernels and must not
// call into it).
//
// RunStatus is the tiny live counterpart served by /runz: which phase the
// pipeline is in and which epoch training has reached, updated by
// core::MLDistinguisher as it moves.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>

namespace mldist::obs {

struct RunManifest {
  std::string run_id;       ///< 16 hex chars, minted per process
  std::string config_hash;  ///< CRC-32 (8 hex chars) of the config JSON
  std::uint64_t seed = 0;
  std::string kernel;       ///< dispatch impl name; "" until stamped
  std::string git_describe;
  std::string hostname;
  std::string build_flags;

  /// The process-wide manifest, pre-filled with run_id / git / hostname /
  /// build flags.  Entry points stamp config_hash, seed and kernel.
  static RunManifest& current();

  /// Stamp config_hash (CRC-32 of `config_json`) and the seed.
  void set_config(std::string_view config_json, std::uint64_t config_seed);

  std::string to_json() const;
};

class RunStatus {
 public:
  static RunStatus& global();

  /// `phase` must be a string literal (stored by pointer, read by /runz).
  void set_phase(const char* phase) {
    phase_.store(phase, std::memory_order_relaxed);
  }
  void set_epoch(int epoch) {
    epoch_.store(epoch, std::memory_order_relaxed);
  }

  const char* phase() const { return phase_.load(std::memory_order_relaxed); }
  int epoch() const { return epoch_.load(std::memory_order_relaxed); }

  /// Attach a callback whose pre-rendered JSON object is embedded as the
  /// "detail" key of to_json() — the campaign supervisor uses it to fold
  /// per-worker lease/progress state into /runz.  Pass nullptr (or an empty
  /// function) to detach.  The provider must return a complete JSON value;
  /// it is invoked outside the registration lock, so it may itself take
  /// locks (but must not call back into RunStatus).
  void set_detail_provider(std::function<std::string()> provider);

  /// {"phase":"fit","epoch":3,"detail":{...},"manifest":{...}}
  std::string to_json() const;

 private:
  std::atomic<const char*> phase_{"idle"};
  std::atomic<int> epoch_{0};
  mutable std::mutex detail_mutex_;  ///< guards detail_
  std::function<std::string()> detail_;
};

}  // namespace mldist::obs
