// Process-wide metrics registry: named counters, gauges and histograms with
// per-thread shards merged deterministically at read time.
//
// Hot-path contract (the reason this exists next to PhaseTelemetry instead
// of replacing it): recording a metric from inside a parallel_for body must
// not serialise the workers.  Each thread owns a shard — a fixed-capacity
// array of relaxed-atomic cells indexed by metric id — and increments only
// its own cells, so the hot path is one relaxed fetch_add and never takes a
// lock.  Locks appear only on cold paths: registering a metric name,
// creating/retiring a shard, and snapshot().
//
// Determinism rule (DESIGN.md §10, matching the PR 1 contract): every
// aggregate is an unsigned 64-bit integer.  Integer addition is associative
// and commutative, so the merged total is independent of how work was
// sharded across threads and of the order shards are merged in — a counter
// of deterministic quantities (kernel calls, FLOPs, rows, oracle queries)
// is BITWISE IDENTICAL for any worker count.  Durations are recorded as
// integer nanoseconds; they merge just as deterministically, but their
// values are wall-clock measurements and therefore vary run to run.  By
// convention such metric names end in "_ns" (or "_us"), and the
// thread-count-invariance test skips exactly that suffix.
//
// Threads that exit (dedicated pools are created per parallel_for_threads
// call) retire their shard into a retained accumulator under the registry
// lock, so no count is ever lost and shard memory does not grow with the
// number of threads ever created.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mldist::obs {

/// Index into the registry's per-kind metric table, stable for the process
/// lifetime.  Call sites cache it (typically in a function-local static) so
/// the name lookup happens once.
using MetricId = std::size_t;

/// Histograms bucket integer values by bit width: bucket b counts values v
/// with bit_width(v) == b, i.e. v in [2^(b-1), 2^b).  64 buckets cover the
/// full uint64 range; bucket 0 counts exact zeros.
constexpr std::size_t kHistogramBuckets = 65;

struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  ///< 0 when count == 0
  std::uint64_t max = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  double mean() const {
    return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                     : 0.0;
  }

  /// Upper bound on the q-quantile (0 < q <= 1) derived from the bit-width
  /// buckets: the upper edge of the first bucket whose cumulative count
  /// reaches ceil(q * count), clamped into [min, max].  Bucket b covers
  /// [2^(b-1), 2^b - 1], so the bound is tight to within one power of two;
  /// when every observation landed in one bucket the clamp against max
  /// makes it exact for the top of the distribution (and exact everywhere
  /// when min == max).  Returns 0 for an empty histogram.
  std::uint64_t quantile(double q) const;
  std::uint64_t p50() const { return quantile(0.50); }
  std::uint64_t p90() const { return quantile(0.90); }
  std::uint64_t p99() const { return quantile(0.99); }
};

/// One merged, immutable view of the registry.  Entries are sorted by name,
/// so two snapshots of identical state render identical JSON.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::uint64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  /// The counter's merged value; 0 when absent.
  std::uint64_t counter(std::string_view name) const;
  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,...}}}
  std::string to_json() const;
};

class MetricsRegistry {
 public:
  /// The process-wide registry.  Constructed before any shard (shards hold
  /// no back-references that could dangle, but retire() must find it).
  static MetricsRegistry& global();

  // --- registration (cold; takes the registry lock) ----------------------
  /// Find-or-create a metric of the given kind.  Throws std::length_error
  /// when the fixed capacity for that kind is exhausted and
  /// std::invalid_argument when `name` is already registered as a different
  /// kind.
  MetricId counter(std::string_view name);
  MetricId gauge(std::string_view name);
  MetricId histogram(std::string_view name);

  // --- recording (hot; lock-free, relaxed atomics on this thread's shard) -
  void add(MetricId id, std::uint64_t delta = 1);
  void observe(MetricId id, std::uint64_t value);
  /// Fold a pre-aggregated histogram delta (count/sum/buckets add, min/max
  /// fold) into this thread's shard — the bulk form of observe() used when
  /// merging a shipped cross-process delta (obs/ship.hpp).  `delta.min` and
  /// `delta.max` are taken as observed values, so a zero-count delta is a
  /// no-op.
  void merge_histogram(MetricId id, const HistogramSnapshot& delta);
  /// Gauges are last-write-wins (not sharded): a gauge records a fact, not
  /// a sum, so it lives in the registry under the lock.  Cold path only.
  void set_gauge(MetricId id, std::uint64_t value);

  // --- reading (cold; takes the registry lock) ---------------------------
  /// Merge all live shards plus the retained totals of exited threads.
  MetricsSnapshot snapshot() const;
  /// Convenience for tests/views: one merged counter by name (0 if absent).
  std::uint64_t counter_value(std::string_view name) const;

  /// Zero every cell (live shards and retained totals) without forgetting
  /// registered names.  Callers must ensure no recorder is concurrently
  /// active (tests and benches reset between phases); concurrent writers
  /// are not undefined behaviour (cells are atomic) but their deltas may
  /// land on either side of the reset.
  void reset();

  // Fixed shard capacities.  Registration beyond these throws; call sites
  // register a statically bounded set of names (per-layer metrics are
  // bounded by the largest architecture in the zoo).
  static constexpr std::size_t kMaxCounters = 512;
  static constexpr std::size_t kMaxGauges = 64;
  static constexpr std::size_t kMaxHistograms = 128;

 private:
  struct HistCells {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min{~0ULL};
    std::atomic<std::uint64_t> max{0};
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
  };

  /// One thread's private cells.  Only the owning thread writes; snapshot()
  /// reads concurrently, which is why every cell is atomic (relaxed — the
  /// registry lock orders shard list membership, not cell values, and a
  /// snapshot racing a live recorder may or may not see the last few
  /// increments, which is inherent to sampling a running system).
  struct Shard {
    std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
    std::vector<HistCells> hists{std::vector<HistCells>(kMaxHistograms)};
  };

  struct GaugeCell {
    std::uint64_t value = 0;
    bool set = false;
  };

  MetricsRegistry();
  ~MetricsRegistry();

  MetricId register_metric(std::string_view name, int kind, std::size_t cap);
  Shard& local_shard();
  void retire(Shard* shard);
  void merge_into_retired(const Shard& shard);  ///< caller holds mutex_
  void merge_shard_locked(const Shard& shard, MetricsSnapshot& into) const;

  friend struct ShardHandle;

  mutable std::mutex mutex_;
  // name -> (kind, id); names_[kind] lists names in id order.
  std::vector<std::pair<std::string, std::pair<int, MetricId>>> directory_;
  std::array<std::vector<std::string>, 3> names_;
  std::vector<Shard*> shards_;        ///< live, in creation order
  Shard retired_;                     ///< summed totals of exited threads
  std::array<GaugeCell, kMaxGauges> gauges_;
};

// --- convenience wrappers over the global registry -------------------------

/// Add `delta` to the counter `name` (cold name lookup; prefer caching the
/// id via MetricsRegistry::counter for per-batch call sites).
void count(std::string_view name, std::uint64_t delta = 1);
/// Record one duration observation, converting seconds to integer ns.
void observe_seconds(std::string_view name, double seconds);

}  // namespace mldist::obs
