// Merge per-process Chrome trace_event files into one timeline
// (DESIGN.md §16).
//
// A sharded campaign leaves one trace file per worker process (obs/trace
// writes them; campaign workers flush periodically, so even a SIGKILLed
// worker leaves its last atomically-written — truncated but valid — file).
// merge_trace_files() stitches them into a single trace_event JSON that
// Perfetto / chrome://tracing loads as ONE timeline with one pid lane per
// input file:
//
//   * every event's "pid" is rewritten to the file's lane number (inputs
//     are lane 1, 2, ... in the order given — callers sort for
//     determinism), and a process_name metadata row labels the lane with
//     the input's file stem;
//   * every event's "ts" is offset by the difference between the file's
//     otherData.trace_epoch_ns and the earliest epoch across the inputs,
//     so spans line up on the wall clock they actually ran on (the steady
//     clock's epoch is shared by all processes on a host);
//   * otherData carries the summed dropped_events, the lane count and the
//     common epoch.
//
// Parsing stance: the library still builds JSON rather than parsing it
// (util/json is a builder); like campaign/journal's replay this module does
// consumer-side extraction over text this repo itself wrote — quote-aware
// balanced-bracket scanning, not a DOM — and rejects files that do not look
// like obs/trace output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mldist::obs {

struct TraceMergeResult {
  std::size_t lanes = 0;           ///< input files merged
  std::size_t events = 0;          ///< non-metadata rows in the output
  std::uint64_t dropped = 0;       ///< summed otherData.dropped_events
  std::uint64_t epoch_ns = 0;      ///< earliest input trace_epoch_ns
};

/// Merge `inputs` (paths to obs/trace JSON files, lane order = list order)
/// into `output` (written atomically via util::write_json_file).  Returns
/// false with `error` filled when no input is readable/parsable or the
/// write fails; inputs that fail to parse are skipped with their path noted
/// in `error` only if ALL fail.
bool merge_trace_files(const std::vector<std::string>& inputs,
                       const std::string& output,
                       TraceMergeResult* result = nullptr,
                       std::string* error = nullptr);

/// The "worker-*.trace.json" files of `dir`, sorted by filename so lane
/// numbering is deterministic.  Missing directory = empty list.
std::vector<std::string> list_trace_files(const std::string& dir);

}  // namespace mldist::obs
