// Prometheus text exposition (version 0.0.4) rendered from a
// MetricsSnapshot — the wire half of the registry, consumed by the embedded
// /metrics endpoint (obs/server.hpp) or dumped directly by tools.
//
// Name mapping: registry names are dotted ("core.oracle.queries"); exported
// names are "mldist_" + the name with every character outside
// [a-zA-Z0-9_:] replaced by '_'.  Counters gain the "_total" suffix the
// Prometheus convention expects (unless the name already ends in it);
// gauges and histograms keep their name, so the "_ns" wall-clock suffix of
// DESIGN.md §10 survives into the exposition — the unit stays visible in
// the metric name, and the HELP line spells it out.
//
// Histograms: the registry buckets by bit width (bucket b counts values v
// with bit_width(v) == b, i.e. v in [2^(b-1), 2^b)), which maps exactly
// onto Prometheus cumulative buckets with le = 2^b - 1.  Only boundaries up
// to the highest non-empty bucket are emitted (plus the mandatory +Inf), so
// an idle histogram costs two lines, not 65.
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace mldist::obs {

/// "mldist_" + sanitised name (+ "_total" when `counter`).
std::string prometheus_name(std::string_view raw, bool counter);

/// The full exposition: one HELP/TYPE pair plus samples per metric, plus a
/// "mldist_build_info" gauge carrying the run manifest as labels.
std::string render_prometheus(const MetricsSnapshot& snapshot);

}  // namespace mldist::obs
