// Minimal embedded HTTP server for live observability — deliberately tiny
// and OFF by default (DESIGN.md §11).
//
// One dedicated thread, poll(2) on the listening socket with a short
// timeout so stop() is honoured promptly, then one request/response per
// connection (Connection: close) over the shared HTTP machinery of
// obs/http.hpp: close-on-exec sockets, SO_RCVTIMEO-bounded incremental
// reads (idle clients get 408 instead of wedging the serve loop; requests
// split across several sends are reassembled).  No third-party deps, no
// TLS, no keep-alive: the only clients are `curl` and a Prometheus
// scraper.  The request-batching serving daemon (src/serve) builds its
// multi-connection POST plane on the same machinery.
//
// Endpoints:
//   /metrics  Prometheus text exposition of MetricsRegistry::snapshot()
//   /healthz  {"status":"ok","uptime_ns":...}
//   /runz     current phase + epoch + run manifest (obs::RunStatus)
//
// Enabled by --serve-metrics <port> on mldist_cli and every bench (port 0
// binds an ephemeral port; port() reports the real one — used by tests).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

namespace mldist::obs {

class MetricsServer {
 public:
  MetricsServer() = default;
  ~MetricsServer() { stop(); }

  MetricsServer(const MetricsServer&) = delete;
  MetricsServer& operator=(const MetricsServer&) = delete;

  /// Bind, listen and start the serving thread.  Returns false (with
  /// `error` filled) on socket failures; true when already running.
  bool start(std::uint16_t port, std::string* error = nullptr);

  /// Close the socket and join the serving thread.  Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (resolves ephemeral port 0); 0 when not running.
  std::uint16_t port() const { return port_; }

  /// Requests served so far (also counted as obs.server.requests).
  std::uint64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void serve_loop();
  void handle_connection(int fd);

  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::thread thread_;
  std::uint64_t start_ns_ = 0;
};

}  // namespace mldist::obs
