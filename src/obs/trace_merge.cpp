#include "obs/trace_merge.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/manifest.hpp"
#include "util/json.hpp"

namespace mldist::obs {

namespace {

namespace fs = std::filesystem;

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return static_cast<bool>(in);
}

/// Index just past the closing quote of the string starting at `i` (which
/// must point at the opening quote), honouring backslash escapes.  Returns
/// npos on an unterminated string.
std::size_t skip_string(const std::string& text, std::size_t i) {
  for (++i; i < text.size(); ++i) {
    if (text[i] == '\\') {
      ++i;
    } else if (text[i] == '"') {
      return i + 1;
    }
  }
  return std::string::npos;
}

/// Index of the bracket closing the one at `open` ('[' or '{'), skipping
/// strings.  npos when unbalanced.
std::size_t match_bracket(const std::string& text, std::size_t open) {
  const char up = text[open];
  const char down = up == '[' ? ']' : '}';
  int depth = 0;
  for (std::size_t i = open; i < text.size();) {
    const char c = text[i];
    if (c == '"') {
      i = skip_string(text, i);
      if (i == std::string::npos) return std::string::npos;
      continue;
    }
    if (c == up) ++depth;
    if (c == down && --depth == 0) return i;
    ++i;
  }
  return std::string::npos;
}

/// Parse the decimal u64 at `i`, advancing it past the digits.  False when
/// no digit is present.
bool parse_u64_at(const std::string& text, std::size_t& i, std::uint64_t& out) {
  if (i >= text.size() || text[i] < '0' || text[i] > '9') return false;
  out = 0;
  while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
    out = out * 10 + static_cast<std::uint64_t>(text[i] - '0');
    ++i;
  }
  return true;
}

/// The u64 value of `"key":<digits>` inside `text` (first occurrence).
/// Safe on trace files because obs/trace renders these keys with numeric
/// values at the top level of their objects.  False when absent.
bool find_u64_field(const std::string& text, const std::string& key,
                    std::uint64_t& out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = text.find(needle);
  if (pos == std::string::npos) return false;
  std::size_t i = pos + needle.size();
  return parse_u64_at(text, i, out);
}

/// Microseconds with the sub-µs kept as three decimals — the same rendering
/// obs/trace uses, so a merged file round-trips through another merge.
std::string us_string(std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03u",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned>(ns % 1000));
  return buf;
}

struct ParsedLane {
  std::string label;                 ///< input file stem, lane display name
  std::uint64_t epoch_ns = 0;        ///< otherData.trace_epoch_ns
  std::uint64_t dropped = 0;         ///< otherData.dropped_events
  std::vector<std::string> events;   ///< "X" rows, verbatim object text
};

/// Extract the event rows and otherData fields of one obs/trace file.
bool parse_trace_file(const std::string& path, ParsedLane& lane,
                      std::string* error) {
  std::string text;
  if (!read_file(path, text)) {
    if (error != nullptr) *error = path + ": unreadable";
    return false;
  }
  const std::size_t key = text.find("\"traceEvents\":");
  const std::size_t open = key == std::string::npos
                               ? std::string::npos
                               : text.find('[', key);
  if (open == std::string::npos) {
    if (error != nullptr) *error = path + ": no traceEvents array";
    return false;
  }
  const std::size_t close = match_bracket(text, open);
  if (close == std::string::npos) {
    if (error != nullptr) *error = path + ": unbalanced traceEvents array";
    return false;
  }
  // Split the array into its top-level objects.
  for (std::size_t i = open + 1; i < close;) {
    if (text[i] != '{') {
      ++i;
      continue;
    }
    const std::size_t end = match_bracket(text, i);
    if (end == std::string::npos || end > close) {
      if (error != nullptr) *error = path + ": unbalanced event object";
      return false;
    }
    std::string row = text.substr(i, end - i + 1);
    // Metadata rows are re-authored per lane by the merger.
    if (row.find("\"ph\":\"M\"") == std::string::npos) {
      lane.events.push_back(std::move(row));
    }
    i = end + 1;
  }
  // otherData lives after the array in obs/trace output, so searching the
  // tail cannot hit an event's args.
  const std::string tail = text.substr(close);
  if (!find_u64_field(tail, "trace_epoch_ns", lane.epoch_ns)) {
    if (error != nullptr) *error = path + ": no otherData.trace_epoch_ns";
    return false;
  }
  find_u64_field(tail, "dropped_events", lane.dropped);  // optional
  std::string stem = fs::path(path).filename().string();
  if (const std::size_t dot = stem.find(".trace.json");
      dot != std::string::npos) {
    stem.resize(dot);
  }
  lane.label = stem;
  return true;
}

/// Rewrite one event row for its lane: "pid" becomes the lane number and
/// "ts" is shifted from the file's local epoch onto the common one.
std::string rebase_event(const std::string& row, std::size_t lane,
                         std::uint64_t offset_ns) {
  std::string out = row;
  // "pid":<digits> -> "pid":<lane>
  const std::string pid_key = "\"pid\":";
  if (std::size_t pos = out.find(pid_key); pos != std::string::npos) {
    std::size_t i = pos + pid_key.size();
    std::uint64_t old_pid = 0;
    if (parse_u64_at(out, i, old_pid)) {
      out.replace(pos + pid_key.size(), i - (pos + pid_key.size()),
                  std::to_string(lane));
    }
  }
  if (offset_ns == 0) return out;
  // "ts":<us>.<3 digits> -> same, shifted by offset_ns.
  const std::string ts_key = "\"ts\":";
  if (std::size_t pos = out.find(ts_key); pos != std::string::npos) {
    std::size_t i = pos + ts_key.size();
    std::uint64_t us = 0;
    if (parse_u64_at(out, i, us)) {
      std::uint64_t frac = 0;
      std::size_t end = i;
      if (end < out.size() && out[end] == '.') {
        ++end;
        parse_u64_at(out, end, frac);
      }
      const std::uint64_t ns = us * 1000 + frac + offset_ns;
      out.replace(pos + ts_key.size(), end - (pos + ts_key.size()),
                  us_string(ns));
    }
  }
  return out;
}

}  // namespace

std::vector<std::string> list_trace_files(const std::string& dir) {
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& de : fs::directory_iterator(dir, ec)) {
    if (!de.is_regular_file(ec)) continue;
    const std::string name = de.path().filename().string();
    if (name.rfind("worker-", 0) == 0 &&
        name.size() >= 11 && name.compare(name.size() - 11, 11,
                                          ".trace.json") == 0) {
      files.push_back(de.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

bool merge_trace_files(const std::vector<std::string>& inputs,
                       const std::string& output, TraceMergeResult* result,
                       std::string* error) {
  std::vector<ParsedLane> lanes;
  std::string first_error;
  for (const std::string& path : inputs) {
    ParsedLane lane;
    std::string lane_error;
    if (parse_trace_file(path, lane, &lane_error)) {
      lanes.push_back(std::move(lane));
    } else if (first_error.empty()) {
      first_error = lane_error;
    }
  }
  if (lanes.empty()) {
    if (error != nullptr) {
      *error = first_error.empty() ? "trace merge: no input files"
                                   : first_error;
    }
    return false;
  }

  std::uint64_t epoch = lanes.front().epoch_ns;
  for (const ParsedLane& lane : lanes) epoch = std::min(epoch, lane.epoch_ns);

  std::vector<std::string> rows;
  std::uint64_t dropped = 0;
  std::size_t events = 0;
  for (std::size_t n = 0; n < lanes.size(); ++n) {
    const ParsedLane& lane = lanes[n];
    const std::size_t pid = n + 1;
    util::JsonBuilder meta;
    meta.field("name", "process_name")
        .field("ph", "M")
        .field("pid", static_cast<std::uint64_t>(pid));
    util::JsonBuilder meta_args;
    meta_args.field("name", lane.label);
    meta.raw("args", meta_args.str());
    rows.push_back(meta.str());
    const std::uint64_t offset = lane.epoch_ns - epoch;
    for (const std::string& row : lane.events) {
      rows.push_back(rebase_event(row, pid, offset));
    }
    dropped += lane.dropped;
    events += lane.events.size();
  }

  util::JsonBuilder other;
  other.field("dropped_events", dropped)
      .field("lanes", static_cast<std::uint64_t>(lanes.size()))
      .field("trace_epoch_ns", epoch)
      .raw("manifest", RunManifest::current().to_json());
  util::JsonBuilder doc;
  doc.raw("traceEvents", util::JsonBuilder::array(rows))
      .field("displayTimeUnit", "ms")
      .raw("otherData", other.str());
  const util::WriteResult written = util::write_json_file(output, doc.str());
  if (!written) {
    if (error != nullptr) *error = written.error;
    return false;
  }
  if (result != nullptr) {
    result->lanes = lanes.size();
    result->events = events;
    result->dropped = dropped;
    result->epoch_ns = epoch;
  }
  return true;
}

}  // namespace mldist::obs
