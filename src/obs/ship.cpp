#include "obs/ship.hpp"

#include <cstdlib>
#include <vector>

namespace mldist::obs {

namespace {

constexpr char kRec = '\x1e';    // between metric records
constexpr char kField = '\x1f';  // between fields of one record

std::string u64(std::uint64_t v) { return std::to_string(v); }

/// Strict decimal u64 parse of a whole field; false on junk.
bool parse_u64(std::string_view text, std::uint64_t& out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (~0ULL - digit) / 10) return false;  // overflow
    value = value * 10 + digit;
  }
  out = value;
  return true;
}

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

/// The shipped value for `name` in a sorted name->value list; 0 if absent.
template <typename T>
const T* find_sorted(const std::vector<std::pair<std::string, T>>& entries,
                     const std::string& name) {
  // Both snapshot vectors are sorted by name; a linear merge in the caller
  // would also work, but the lists are small (hundreds at most) and lookup
  // keeps the encoding logic readable.
  for (const auto& [n, v] : entries) {
    if (n == name) return &v;
  }
  return nullptr;
}

void append_record(std::string& out, const std::string& record) {
  if (!out.empty()) out += kRec;
  out += record;
}

}  // namespace

std::string encode_metrics_delta(const MetricsSnapshot& prev,
                                 const MetricsSnapshot& cur) {
  std::string out;

  for (const auto& [name, value] : cur.counters) {
    const std::uint64_t* old = find_sorted(prev.counters, name);
    const std::uint64_t base = old != nullptr ? *old : 0;
    if (value <= base) continue;  // unchanged (or reset mid-flight: skip)
    std::string rec = "C";
    rec += kField;
    rec += name;
    rec += kField;
    rec += u64(value - base);
    append_record(out, rec);
  }

  for (const auto& [name, value] : cur.gauges) {
    const std::uint64_t* old = find_sorted(prev.gauges, name);
    if (old != nullptr && *old == value) continue;
    std::string rec = "G";
    rec += kField;
    rec += name;
    rec += kField;
    rec += u64(value);
    append_record(out, rec);
  }

  for (const auto& [name, hist] : cur.histograms) {
    const HistogramSnapshot* old = find_sorted(prev.histograms, name);
    const std::uint64_t base_count = old != nullptr ? old->count : 0;
    const std::uint64_t base_sum = old != nullptr ? old->sum : 0;
    if (hist.count <= base_count) continue;
    std::string rec = "H";
    rec += kField;
    rec += name;
    rec += kField;
    rec += u64(hist.count - base_count);
    rec += kField;
    rec += u64(hist.sum - base_sum);
    rec += kField;
    rec += u64(hist.min);  // cumulative: folds by min on the receiver
    rec += kField;
    rec += u64(hist.max);  // cumulative: folds by max
    rec += kField;
    std::string buckets;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      const std::uint64_t was =
          old != nullptr ? old->buckets[b] : 0;
      if (hist.buckets[b] <= was) continue;
      if (!buckets.empty()) buckets += ';';
      buckets += u64(b) + ":" + u64(hist.buckets[b] - was);
    }
    rec += buckets;
    append_record(out, rec);
  }

  return out;
}

bool apply_metrics_delta(std::string_view record, const std::string& prefix,
                         MetricsRegistry& into) {
  if (record.empty()) return true;
  bool ok = true;
  for (std::string_view rec : split(record, kRec)) {
    if (rec.empty()) continue;
    const std::vector<std::string_view> f = split(rec, kField);
    try {
      if (f[0] == "C" && f.size() == 3) {
        std::uint64_t delta = 0;
        if (f[1].empty() || !parse_u64(f[2], delta)) {
          ok = false;
          continue;
        }
        into.add(into.counter(prefix + std::string(f[1])), delta);
      } else if (f[0] == "G" && f.size() == 3) {
        std::uint64_t value = 0;
        if (f[1].empty() || !parse_u64(f[2], value)) {
          ok = false;
          continue;
        }
        into.set_gauge(into.gauge(prefix + std::string(f[1])), value);
      } else if (f[0] == "H" && f.size() == 7) {
        HistogramSnapshot delta;
        bool fields_ok = !f[1].empty() && parse_u64(f[2], delta.count) &&
                         parse_u64(f[3], delta.sum) &&
                         parse_u64(f[4], delta.min) &&
                         parse_u64(f[5], delta.max);
        if (fields_ok) {
          for (std::string_view pair : split(f[6], ';')) {
            if (pair.empty()) continue;
            const std::size_t colon = pair.find(':');
            std::uint64_t bucket = 0;
            std::uint64_t n = 0;
            if (colon == std::string_view::npos ||
                !parse_u64(pair.substr(0, colon), bucket) ||
                !parse_u64(pair.substr(colon + 1), n) ||
                bucket >= kHistogramBuckets) {
              fields_ok = false;
              break;
            }
            delta.buckets[bucket] = n;
          }
        }
        if (!fields_ok || delta.count == 0) {
          ok = fields_ok && ok;
          continue;
        }
        into.merge_histogram(into.histogram(prefix + std::string(f[1])),
                             delta);
      } else {
        ok = false;
      }
    } catch (const std::exception&) {
      // Registry capacity exhausted or a kind collision on the prefixed
      // name: drop this record, keep folding the rest.
      ok = false;
    }
  }
  return ok;
}

bool apply_metrics_delta(std::string_view record, const std::string& prefix) {
  return apply_metrics_delta(record, prefix, MetricsRegistry::global());
}

}  // namespace mldist::obs
