#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "obs/log.hpp"
#include "obs/manifest.hpp"
#include "util/json.hpp"

namespace mldist::obs {

namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Microseconds with sub-ns kept as decimals, the unit trace viewers expect.
std::string us_string(std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03u",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned>(ns % 1000));
  return buf;
}

}  // namespace

/// RAII owner of one thread's event buffer (same lifecycle as the metrics
/// shards): registered on first record, spliced into the tracer's retained
/// list when the thread exits.
struct Tracer::BufHandle {
  ThreadBuf* buf = nullptr;

  ThreadBuf* get() {
    if (buf == nullptr) {
      Tracer& tracer = Tracer::global();
      auto owned = new ThreadBuf();
      {
        std::lock_guard<std::mutex> lock(tracer.mutex_);
        owned->tid = tracer.next_tid_++;
        tracer.bufs_.push_back(owned);
      }
      buf = owned;
    }
    return buf;
  }

  ~BufHandle() {
    if (buf != nullptr) Tracer::global().retire(buf);
  }
};

Tracer::Tracer() : epoch_ns_(steady_ns()) {
  if (const char* env = std::getenv("MLDIST_TRACE");
      env != nullptr && env[0] != '\0') {
    enable(env);
  }
}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

std::uint64_t Tracer::now_ns() const { return steady_ns() - epoch_ns_; }

void Tracer::enable(std::string path) {
  std::lock_guard<std::mutex> lock(mutex_);
  path_ = std::move(path);
  if (!atexit_installed_) {
    atexit_installed_ = true;
    // A traced run always leaves a readable artifact even when the caller
    // forgets (or an exception skips) the explicit flush.
    std::atexit([] {
      std::string error;
      Tracer& tracer = Tracer::global();
      if (!tracer.path().empty() && !tracer.flush(&error)) {
        log_error("obs.trace", "trace flush failed: " + error);
      }
    });
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_relaxed); }

std::string Tracer::path() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return path_;
}

Tracer::ThreadBuf& Tracer::local_buf() {
  thread_local BufHandle handle;
  return *handle.get();
}

void Tracer::retire(ThreadBuf* buf) {
  std::lock_guard<std::mutex> lock(mutex_);
  retired_.insert(retired_.end(), std::make_move_iterator(buf->events.begin()),
                  std::make_move_iterator(buf->events.end()));
  bufs_.erase(std::remove(bufs_.begin(), bufs_.end(), buf), bufs_.end());
  delete buf;
}

void Tracer::record(Event&& event) {
  ThreadBuf& buf = local_buf();
  event.tid = buf.tid;
  // The buffer mutex is only ever contended by flush(); recording threads
  // each lock their own.
  std::lock_guard<std::mutex> lock(buf.mutex);
  if (buf.events.size() >= kMaxEventsPerThread) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buf.events.push_back(std::move(event));
}

bool Tracer::flush(std::string* error) {
  std::vector<Event> events;
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (path_.empty()) {
      if (error != nullptr) *error = "trace flush: no output path configured";
      return false;
    }
    path = path_;
    events = retired_;
    for (ThreadBuf* buf : bufs_) {
      std::lock_guard<std::mutex> buf_lock(buf->mutex);
      events.insert(events.end(), buf->events.begin(), buf->events.end());
    }
  }
  // Deterministic file order for a given event set: begin time, then tid.
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     return a.ts_ns != b.ts_ns ? a.ts_ns < b.ts_ns
                                               : a.tid < b.tid;
                   });

  std::vector<std::string> rows;
  rows.reserve(events.size() + 1);
  {
    util::JsonBuilder meta;
    meta.field("name", "process_name").field("ph", "M").field("pid", 1);
    util::JsonBuilder meta_args;
    meta_args.field("name", "mldist");
    meta.raw("args", meta_args.str());
    rows.push_back(meta.str());
  }
  for (const Event& ev : events) {
    util::JsonBuilder j;
    j.field("name", ev.name)
        .field("cat", ev.cat)
        .field("ph", "X")
        .field("pid", 1)
        .field("tid", static_cast<std::uint64_t>(ev.tid))
        .raw("ts", us_string(ev.ts_ns))
        .raw("dur", us_string(ev.dur_ns));
    if (!ev.args.empty()) j.raw("args", "{" + ev.args + "}");
    rows.push_back(j.str());
  }

  util::JsonBuilder other;
  // trace_epoch_ns: absolute CLOCK_MONOTONIC time of this tracer's ts=0.
  // The steady clock's epoch is shared by every process on the host, so a
  // trace merger (obs/trace_merge.hpp) can place several processes' lanes
  // on one common timeline by offsetting each file's ts by the difference
  // of the epochs.
  other.field("dropped_events", dropped())
      .field("trace_epoch_ns", epoch_ns_)
      .raw("manifest", RunManifest::current().to_json());
  util::JsonBuilder doc;
  doc.raw("traceEvents", util::JsonBuilder::array(rows))
      .field("displayTimeUnit", "ms")
      .raw("otherData", other.str());
  const util::WriteResult written = util::write_json_file(path, doc.str());
  if (!written && error != nullptr) *error = written.error;
  return static_cast<bool>(written);
}

// --- Span ------------------------------------------------------------------

void Span::begin(const std::string& name, const char* cat) {
  active_ = true;
  name_ = name;
  cat_ = cat;
  begin_ns_ = Tracer::global().now_ns();
}

Span::~Span() {
  if (!active_) return;
  Tracer& tracer = Tracer::global();
  Tracer::Event ev;
  ev.name = std::move(name_);
  ev.cat = cat_;
  ev.ts_ns = begin_ns_;
  const std::uint64_t end_ns = tracer.now_ns();
  ev.dur_ns = end_ns > begin_ns_ ? end_ns - begin_ns_ : 0;
  ev.args = std::move(args_);
  tracer.record(std::move(ev));
}

void Span::append_key(const char* key) {
  if (!args_.empty()) args_ += ",";
  args_ += util::JsonBuilder::quote(key) + ":";
}

Span& Span::arg(const char* key, std::uint64_t value) {
  if (!active_) return *this;
  append_key(key);
  args_ += std::to_string(value);
  return *this;
}

Span& Span::arg(const char* key, std::int64_t value) {
  if (!active_) return *this;
  append_key(key);
  args_ += std::to_string(value);
  return *this;
}

Span& Span::arg(const char* key, double value) {
  if (!active_) return *this;
  append_key(key);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  args_ += buf;
  return *this;
}

Span& Span::arg(const char* key, const std::string& value) {
  if (!active_) return *this;
  append_key(key);
  args_ += util::JsonBuilder::quote(value);
  return *this;
}

Span& Span::arg(const char* key, const char* value) {
  return arg(key, std::string(value));
}

}  // namespace mldist::obs
