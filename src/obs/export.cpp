#include "obs/export.hpp"

#include <cctype>
#include <cstdio>

#include "obs/log.hpp"
#include "obs/manifest.hpp"

namespace mldist::obs {

namespace {

bool name_char_ok(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

/// Prometheus label-value escaping: backslash, double quote, newline.
std::string label_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') out += "\\\\";
    else if (c == '"') out += "\\\"";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

void append_help_type(std::string& out, const std::string& name,
                      const char* type, const std::string& raw) {
  out += "# HELP " + name + " mldist registry metric " + raw + "\n";
  out += "# TYPE " + name + " " + type + "\n";
}

std::string u64(std::uint64_t v) { return std::to_string(v); }

/// Upper edge of bit-width bucket b as a decimal integer: b == 0 holds the
/// exact zeros (le = 0); b >= 1 holds [2^(b-1), 2^b - 1].
std::uint64_t bucket_upper(std::size_t b) {
  if (b == 0) return 0;
  if (b >= 64) return ~0ULL;
  return (1ULL << b) - 1;
}

}  // namespace

std::string prometheus_name(std::string_view raw, bool counter) {
  std::string out = "mldist_";
  for (char c : raw) out += name_char_ok(c) ? c : '_';
  constexpr std::string_view kTotal = "_total";
  if (counter && (out.size() < kTotal.size() ||
                  out.compare(out.size() - kTotal.size(), kTotal.size(),
                              kTotal) != 0)) {
    out += kTotal;
  }
  return out;
}

std::string render_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(4096);

  {
    const RunManifest& m = RunManifest::current();
    const std::string name = "mldist_build_info";
    append_help_type(out, name, "gauge", "build/run provenance");
    out += name + "{run_id=\"" + label_escape(m.run_id) + "\",git=\"" +
           label_escape(m.git_describe) + "\",kernel=\"" +
           label_escape(m.kernel) + "\",build=\"" +
           label_escape(m.build_flags) + "\"} 1\n";
  }

  {
    // Logger ring overflow: scrape-visible so silently-shed diagnostics are
    // never silent about having been shed.
    const std::string name = "mldist_log_dropped_total";
    append_help_type(out, name, "counter", "obs::Logger dropped records");
    out += name + " " + u64(Logger::global().dropped()) + "\n";
  }

  for (const auto& [raw, value] : snapshot.counters) {
    const std::string name = prometheus_name(raw, /*counter=*/true);
    append_help_type(out, name, "counter", raw);
    out += name + " " + u64(value) + "\n";
  }

  for (const auto& [raw, value] : snapshot.gauges) {
    const std::string name = prometheus_name(raw, /*counter=*/false);
    append_help_type(out, name, "gauge", raw);
    out += name + " " + u64(value) + "\n";
  }

  for (const auto& [raw, hist] : snapshot.histograms) {
    const std::string name = prometheus_name(raw, /*counter=*/false);
    append_help_type(out, name, "histogram", raw);
    // Cumulative buckets over the bit-width bins, up to the highest
    // non-empty bin; +Inf is mandatory and always equals count.
    std::size_t top = 0;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      if (hist.buckets[b] != 0) top = b;
    }
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b <= top && hist.count > 0; ++b) {
      cum += hist.buckets[b];
      out += name + "_bucket{le=\"" + u64(bucket_upper(b)) + "\"} " +
             u64(cum) + "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " + u64(hist.count) + "\n";
    out += name + "_sum " + u64(hist.sum) + "\n";
    out += name + "_count " + u64(hist.count) + "\n";
  }

  return out;
}

}  // namespace mldist::obs
