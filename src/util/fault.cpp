#include "util/fault.hpp"

#include "util/json.hpp"

namespace mldist::util {

std::string FaultConfig::to_json() const {
  JsonBuilder j;
  j.field("bit_flip_prob", bit_flip_prob)
      .field("drop_prob", drop_prob)
      .field("latency_spike_prob", latency_spike_prob)
      .field("latency_spike_us", static_cast<std::uint64_t>(latency_spike_us))
      .field("poison_weight_epoch", poison_weight_epoch)
      .field("poison_max_attempts", poison_max_attempts);
  return j.str();
}

}  // namespace mldist::util
