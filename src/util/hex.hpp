// Hex encoding/decoding for test vectors and diagnostics.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace mldist::util {

/// Lower-case hex string for a byte buffer.
std::string to_hex(std::span<const std::uint8_t> bytes);

/// Parse a hex string (even length, optional embedded spaces) into bytes.
/// Throws std::invalid_argument on malformed input.
std::vector<std::uint8_t> from_hex(std::string_view hex);

}  // namespace mldist::util
