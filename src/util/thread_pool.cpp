#include "util/thread_pool.hpp"

#include <algorithm>

namespace mldist::util {

namespace {
thread_local bool tls_in_parallel_region = false;

struct RegionGuard {
  bool prev;
  RegionGuard() : prev(tls_in_parallel_region) { tls_in_parallel_region = true; }
  ~RegionGuard() { tls_in_parallel_region = prev; }
};
}  // namespace

bool ThreadPool::in_parallel_region() { return tls_in_parallel_region; }

ThreadPool::ThreadPool(std::size_t threads) {
  std::size_t n = threads;
  if (n == 0) {
    n = std::max(1u, std::thread::hardware_concurrency());
  }
  // n total workers including the calling thread.
  const std::size_t extra = n - 1;
  tasks_.resize(extra);
  workers_.reserve(extra);
  for (std::size_t i = 0; i < extra; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop(std::size_t index) {
  std::uint64_t seen = 0;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      task = tasks_[index];
    }
    std::exception_ptr error;
    if (task.body != nullptr && task.begin < task.end) {
      RegionGuard guard;
      try {
        (*task.body)(task.begin, task.end);
      } catch (...) {
        // An exception escaping a worker thread would std::terminate the
        // process; capture it here and let parallel_for rethrow it on the
        // calling thread once the generation has drained.
        error = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error != nullptr && error_ == nullptr) error_ = error;
      --pending_;
    }
    done_.notify_one();
  }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body) {
  const std::size_t total = thread_count();
  if (n == 0) return;
  if (total == 1 || n == 1 || tls_in_parallel_region) {
    RegionGuard guard;
    body(0, n);
    return;
  }
  const std::size_t chunks = std::min(total, n);
  const std::size_t per = (n + chunks - 1) / chunks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_ = 0;
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
      const std::size_t c = i + 1;  // chunk 0 runs on the calling thread
      if (c < chunks) {
        tasks_[i] = {&body, c * per, std::min(n, (c + 1) * per)};
        ++pending_;
      } else {
        tasks_[i] = {nullptr, 0, 0};
        ++pending_;  // worker still acknowledges the generation
      }
    }
    ++generation_;
  }
  wake_.notify_all();
  // The calling thread's own chunk may throw too; either way the workers
  // must finish the generation first — they still hold a pointer to `body`.
  std::exception_ptr caller_error;
  {
    RegionGuard guard;
    try {
      body(0, std::min(n, per));
    } catch (...) {
      caller_error = std::current_exception();
    }
  }
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] { return pending_ == 0; });
    error = caller_error != nullptr ? caller_error : error_;
    error_ = nullptr;  // the pool stays usable for the next parallel_for
  }
  if (error != nullptr) std::rethrow_exception(error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

std::size_t parallel_for_threads(
    std::size_t threads, std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return 1;
  if (threads == 1 || n == 1 || tls_in_parallel_region) {
    RegionGuard guard;
    body(0, n);
    return 1;
  }
  if (threads == 0) {
    ThreadPool& pool = ThreadPool::global();
    pool.parallel_for(n, body);
    return pool.thread_count();
  }
  ThreadPool pool(threads);
  pool.parallel_for(n, body);
  return pool.thread_count();
}

}  // namespace mldist::util
