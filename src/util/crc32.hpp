// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for file integrity.
//
// Model files and checkpoints append a CRC footer over their payload so a
// bit flip or truncation on disk is detected at load time instead of
// silently corrupting the online phase (ISSUE 2: fault-tolerant inference).
// The zlib chaining convention is used: crc32(data, n, prev) continues a
// running checksum that started at 0, so streaming writers can checksum
// without buffering the payload.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mldist::util {

/// Checksum `size` bytes, continuing from `crc` (0 for a fresh stream).
std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t crc = 0);

/// Incremental wrapper for streaming writers/readers.
class Crc32 {
 public:
  void update(const void* data, std::size_t size) {
    crc_ = crc32(data, size, crc_);
  }
  std::uint32_t value() const { return crc_; }
  void reset() { crc_ = 0; }

 private:
  std::uint32_t crc_ = 0;
};

}  // namespace mldist::util
