// Process-level primitives for the sharded campaign runner (ISSUE 7):
// spawn/wait/kill wrappers around fork+exec, inheritable pipes, and
// advisory file locks.
//
// The supervisor (src/campaign) shards experiment cells over worker
// *processes* so a SIGKILL'd, SIGSEGV'd or hung worker can never take the
// campaign down with it.  Workers are always spawned fresh via
// fork+exec of the caller's own binary (self_exe_path) rather than plain
// fork: a bare fork of a process that already started thread-pool, logger
// or metrics-server threads inherits their locked mutexes in an
// unrunnable state, while exec gives every worker a clean single-threaded
// address space.
//
// Everything here is Linux/POSIX; the repo's platform contract (ROADMAP)
// is Linux.
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace mldist::util {

/// One unidirectional pipe.  `close_cloexec_end` marks which end stays in
/// the parent: that end gets FD_CLOEXEC so other spawned workers never
/// inherit it (a worker holding a sibling's status-pipe write end would
/// keep that pipe from ever reporting EOF).
struct Pipe {
  int read_fd = -1;
  int write_fd = -1;
};

/// Create a pipe.  `parent_keeps_read` selects which end is marked
/// FD_CLOEXEC (the parent-kept end); the other end is inheritable by
/// exec'd children.  Throws std::runtime_error on failure.
Pipe make_pipe(bool parent_keeps_read);

/// Set/clear O_NONBLOCK on `fd`.  Throws std::runtime_error on failure.
void set_nonblocking(int fd, bool nonblocking);

/// Close `fd` if it is >= 0 (EINTR-safe, idempotent via the -1 guard when
/// the caller resets its copy).
void close_fd(int fd);

/// Absolute path of the running executable (readlink /proc/self/exe).
/// Throws std::runtime_error when unresolvable.
std::string self_exe_path();

/// fork + execv `argv` (argv[0] is the binary path).  File descriptors
/// without FD_CLOEXEC are inherited — the campaign protocol passes pipe fd
/// numbers as command-line arguments.  Returns the child pid; throws
/// std::runtime_error when fork fails.  An exec failure surfaces as the
/// child exiting with status 127.
pid_t spawn_process(const std::vector<std::string>& argv);

/// Child state as seen by waitpid.
enum class ChildState {
  kRunning,   ///< still alive
  kExited,    ///< exited; `code` is the exit status
  kSignaled,  ///< killed by a signal; `code` is the signal number
  kLost,      ///< waitpid failed (ECHILD — already reaped elsewhere)
};

struct ChildStatus {
  ChildState state = ChildState::kRunning;
  int code = 0;
};

/// Non-blocking waitpid(WNOHANG): reaps and reports a finished child,
/// kRunning otherwise.
ChildStatus poll_child(pid_t pid);

/// Blocking waitpid.  Returns kLost when the child was already reaped.
ChildStatus wait_child(pid_t pid);

/// kill(2) wrapper; returns false when the process no longer exists.
bool kill_process(pid_t pid, int sig);

/// Append whatever is currently readable on `fd` (which should be
/// O_NONBLOCK) to `buf`.  Returns false once the peer closed the pipe
/// (EOF); true while the pipe is still open (including "nothing available
/// right now").
bool read_available(int fd, std::string& buf);

/// Write all of `data` to `fd`, retrying on EINTR / partial writes.
/// Returns false on EPIPE or any other write error (callers treat a
/// vanished peer as a normal shutdown signal, not an exception).
bool write_all(int fd, std::string_view data);

/// Advisory exclusive lock on `path` (O_CREAT + flock LOCK_EX|LOCK_NB),
/// used to keep two supervisors off the same campaign state directory.
/// Destroying the object releases the lock.  A default-constructed or
/// failed lock is !held().
class FileLock {
 public:
  FileLock() = default;
  ~FileLock();

  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;
  FileLock(FileLock&& other) noexcept;
  FileLock& operator=(FileLock&& other) noexcept;

  /// Try to take the lock.  Returns false (with `error` filled when
  /// non-null) if another process holds it or the file cannot be opened.
  bool acquire(const std::string& path, std::string* error = nullptr);
  void release();
  bool held() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

}  // namespace mldist::util
