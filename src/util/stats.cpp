#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace mldist::util {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

BinomialSummary binomial_summary(std::size_t successes, std::size_t trials) {
  BinomialSummary out;
  if (trials == 0) return out;
  const double n = static_cast<double>(trials);
  out.p_hat = static_cast<double>(successes) / n;
  out.std_error = std::sqrt(out.p_hat * (1.0 - out.p_hat) / n);
  // Wilson score interval.  The Wald interval p_hat +/- 1.96*se degenerates
  // exactly where the online game needs it most: at p_hat in {0, 1} it
  // collapses to width zero (a 20/20 game reported CI [1, 1]) and near the
  // edges it runs below 0 / above 1.  Wilson inverts the score test
  // instead, so the interval is always inside [0, 1] and keeps nonzero
  // width at the extremes; the clamp only absorbs floating-point roundoff.
  const double z = 1.96;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (out.p_hat + z2 / (2.0 * n)) / denom;
  const double half =
      (z / denom) *
      std::sqrt(out.p_hat * (1.0 - out.p_hat) / n + z2 / (4.0 * n * n));
  out.ci_low = std::clamp(center - half, 0.0, 1.0);
  out.ci_high = std::clamp(center + half, 0.0, 1.0);
  return out;
}

double random_guess_accuracy(std::size_t t) {
  if (t == 0) return 0.0;
  return 1.0 / static_cast<double>(t);
}

std::size_t samples_to_distinguish(double a, std::size_t t, double z) {
  const double p0 = random_guess_accuracy(t);
  if (a <= p0) return std::numeric_limits<std::size_t>::max();
  // One-sided test: need z * sqrt(p0(1-p0)/n) < a - p0.
  const double gap = a - p0;
  const double n = z * z * p0 * (1.0 - p0) / (gap * gap);
  return static_cast<std::size_t>(std::ceil(n));
}

double binomial_z_score(std::size_t successes, std::size_t trials, double p0) {
  if (trials == 0) return 0.0;
  const double n = static_cast<double>(trials);
  const double p_hat = static_cast<double>(successes) / n;
  const double se = std::sqrt(p0 * (1.0 - p0) / n);
  if (se == 0.0) return 0.0;
  return (p_hat - p0) / se;
}

}  // namespace mldist::util
