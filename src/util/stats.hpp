// Summary statistics and distinguisher-specific statistical tests.
//
// The online phase of Algorithm 2 reduces to deciding between two binomial
// hypotheses: prediction accuracy a' ~ a (ORACLE = CIPHER) versus
// a' ~ 1/t (ORACLE = RANDOM).  The helpers here provide the expected
// random-case accuracy E/t derived in §3.1 of the paper, normal-approximation
// confidence intervals, and the number of online samples needed to separate
// the two hypotheses at a given z-score.
#pragma once

#include <cstddef>
#include <vector>

namespace mldist::util {

/// Arithmetic mean; 0 for an empty range.
double mean(const std::vector<double>& xs);

/// Unbiased sample standard deviation; 0 for fewer than two values.
double stddev(const std::vector<double>& xs);

struct BinomialSummary {
  double p_hat = 0.0;        ///< observed success rate
  double std_error = 0.0;    ///< Wald standard error sqrt(p_hat(1-p_hat)/n)
  double ci_low = 0.0;       ///< 95% Wilson score interval, clamped to [0,1]
  double ci_high = 0.0;
};

/// Summary for `successes` out of `trials` Bernoulli outcomes.  The
/// confidence interval is the 95% Wilson score interval, which stays inside
/// [0, 1] and keeps nonzero width at p_hat in {0, 1} — the Wald interval
/// previously reported degenerate CIs like [1, 1] for a 20/20 online game.
BinomialSummary binomial_summary(std::size_t successes, std::size_t trials);

/// Expected accuracy of a t-class predictor against uniformly random labels.
/// §3.1 derives E = sum_i i*Pr(i) with Pr(i) = C(t,i)(t-1)^{t-i}/t^t and
/// reports accuracy E/t; for a memoryless predictor this equals 1/t, which
/// this function returns (the paper's worked examples 0.5 for t=2 and
/// 0.03125 for t=32 agree).
double random_guess_accuracy(std::size_t t);

/// Minimum number of online samples for which a predictor with true accuracy
/// `a` is separated from the random baseline `1/t` by `z` standard errors.
/// Returns SIZE_MAX when a <= 1/t (no advantage, not distinguishable).
std::size_t samples_to_distinguish(double a, std::size_t t, double z = 3.0);

/// z-score of observing `successes`/`trials` under Binomial(trials, p0).
double binomial_z_score(std::size_t successes, std::size_t trials, double p0);

}  // namespace mldist::util
