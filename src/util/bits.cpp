#include "util/bits.hpp"

#include <stdexcept>

namespace mldist::util {

std::vector<std::uint8_t> xor_vec(std::span<const std::uint8_t> a,
                                  std::span<const std::uint8_t> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("xor_vec: length mismatch");
  }
  std::vector<std::uint8_t> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] ^ b[i];
  return out;
}

void bits_to_floats(std::span<const std::uint8_t> bytes, float* out) {
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    const std::uint8_t b = bytes[i];
    for (int j = 0; j < 8; ++j) {
      out[8 * i + j] = static_cast<float>((b >> j) & 1);
    }
  }
}

int hamming_weight(std::span<const std::uint8_t> bytes) {
  int w = 0;
  for (std::uint8_t b : bytes) {
    w += __builtin_popcount(b);
  }
  return w;
}

}  // namespace mldist::util
