// Deterministic pseudo-random number generation for experiments.
//
// Every experiment in this repository is driven by an explicitly seeded
// Xoshiro256** stream so that data sets, trainings and oracle games are
// bit-reproducible.  splitmix64 is used to expand a single 64-bit seed into
// the four xoshiro state words (the construction recommended by the xoshiro
// authors), and also to derive independent child streams.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace mldist::util {

/// splitmix64 step: advances `state` and returns the next output word.
std::uint64_t splitmix64_next(std::uint64_t& state);

/// Seed for the `index`-th independent RNG stream of a master seed.  The
/// parallel data engine gives every fixed-size chunk of work the stream
/// `Xoshiro256(derive_stream_seed(master, chunk_index))`, so the output is a
/// pure function of (master, chunk grid) and bitwise identical for any
/// worker count.  splitmix64-based: the master is advanced one step (so the
/// streams are decorrelated from a raw master that is itself used as a
/// xoshiro seed) and the index enters through the golden-ratio increment.
std::uint64_t derive_stream_seed(std::uint64_t master, std::uint64_t index);

/// Xoshiro256** PRNG.  Not cryptographically secure; used only to drive
/// experiments (key/nonce/plaintext sampling, weight init, shuffles).
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next 64 uniform random bits.
  std::uint64_t next_u64();
  /// Next 32 uniform random bits (upper half of next_u64).
  std::uint32_t next_u32();
  /// Uniform in [0, bound) without modulo bias (Lemire rejection).
  std::uint64_t next_below(std::uint64_t bound);
  /// Uniform double in [0, 1).
  double next_double();
  /// Gaussian(0, 1) via Box-Muller (one value per call, no caching).
  double next_gaussian();
  /// Fill `n` bytes with uniform random bytes.
  void fill_bytes(std::uint8_t* out, std::size_t n);
  /// Convenience: a vector of `n` random bytes.
  std::vector<std::uint8_t> bytes(std::size_t n);

  /// Derive an independent child stream; deterministic in (parent seed,
  /// sequence of fork calls).
  Xoshiro256 fork();

  // UniformRandomBitGenerator interface (usable with <algorithm> shuffles).
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }
  std::uint64_t operator()() { return next_u64(); }

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace mldist::util
