#include "util/json.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>

namespace mldist::util {

void JsonBuilder::key(const std::string& k) {
  if (!body_.empty()) body_ += ",";
  body_ += quote(k) + ":";
}

JsonBuilder& JsonBuilder::field(const std::string& k, double value) {
  key(k);
  if (std::isfinite(value)) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    body_ += buf;
  } else {
    body_ += "null";  // JSON has no NaN/Inf
  }
  return *this;
}

JsonBuilder& JsonBuilder::field(const std::string& k, std::uint64_t value) {
  key(k);
  body_ += std::to_string(value);
  return *this;
}

JsonBuilder& JsonBuilder::field(const std::string& k, int value) {
  key(k);
  body_ += std::to_string(value);
  return *this;
}

JsonBuilder& JsonBuilder::field(const std::string& k, bool value) {
  key(k);
  body_ += value ? "true" : "false";
  return *this;
}

JsonBuilder& JsonBuilder::field(const std::string& k, const std::string& value) {
  key(k);
  body_ += quote(value);
  return *this;
}

JsonBuilder& JsonBuilder::field(const std::string& k, const char* value) {
  return field(k, std::string(value));
}

JsonBuilder& JsonBuilder::raw(const std::string& k, const std::string& json) {
  key(k);
  body_ += json;
  return *this;
}

JsonBuilder& JsonBuilder::merge(const JsonBuilder& other) {
  if (other.body_.empty()) return *this;
  if (!body_.empty()) body_ += ",";
  body_ += other.body_;
  return *this;
}

std::string JsonBuilder::array(const std::vector<std::string>& items) {
  std::string out = "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ",";
    out += items[i];
  }
  return out + "]";
}

std::string JsonBuilder::quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out + "\"";
}

namespace {

std::string errno_text() { return std::strerror(errno); }

/// write(2) all of `data` to `fd`, retrying EINTR and short writes.
bool write_fd_all(int fd, const char* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd, data + off, size - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool fsync_fd(int fd) {
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  // Some filesystems reject fsync on directories; treat EINVAL as a no-op
  // rather than a durability failure the caller can do anything about.
  return rc == 0 || errno == EINVAL;
}

}  // namespace

bool fsync_file(const std::string& path, std::string* error) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (error != nullptr) {
      *error = "fsync_file: cannot open " + path + ": " + errno_text();
    }
    return false;
  }
  const bool ok = fsync_fd(fd);
  if (!ok && error != nullptr) {
    *error = "fsync_file: fsync " + path + ": " + errno_text();
  }
  ::close(fd);
  return ok;
}

bool fsync_parent_dir(const std::string& path, std::string* error) {
  const std::filesystem::path p(path);
  std::string dir = p.has_parent_path() ? p.parent_path().string() : ".";
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    if (error != nullptr) {
      *error = "fsync_parent_dir: cannot open " + dir + ": " + errno_text();
    }
    return false;
  }
  const bool ok = fsync_fd(fd);
  if (!ok && error != nullptr) {
    *error = "fsync_parent_dir: fsync " + dir + ": " + errno_text();
  }
  ::close(fd);
  return ok;
}

WriteResult write_json_file(const std::string& path, const std::string& json) {
  const std::filesystem::path p(path);
  std::error_code ec;
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path(), ec);
  // Durable atomic publish (the CheckpointManager pattern): write the
  // payload to a sibling tmp file, fsync it so the bytes are on stable
  // storage *before* the rename makes them visible, rename over the
  // destination, then fsync the directory so the rename itself survives a
  // power cut.  Readers and a crashed writer both see either the old
  // artifact or the new one — never a truncated or empty file.
  const std::string tmp = path + ".tmp";
  {
    const int fd = ::open(tmp.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) {
      return {"write_json_file: cannot open " + tmp +
              " for writing: " + errno_text()};
    }
    const std::string payload = json + "\n";
    if (!write_fd_all(fd, payload.data(), payload.size())) {
      const std::string why = errno_text();
      ::close(fd);
      std::filesystem::remove(tmp, ec);
      return {"write_json_file: write to " + tmp + " failed: " + why};
    }
    if (!fsync_fd(fd)) {
      const std::string why = errno_text();
      ::close(fd);
      std::filesystem::remove(tmp, ec);
      return {"write_json_file: fsync " + tmp + " failed: " + why};
    }
    ::close(fd);
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return {"write_json_file: rename " + tmp + " -> " + path +
            " failed: " + ec.message()};
  }
  fsync_parent_dir(path);  // best-effort: the rename is already atomic
  return {};
}

WriteResult append_jsonl(const std::string& path, const std::string& line) {
  const std::filesystem::path p(path);
  std::error_code ec;
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  // O_APPEND + one write(2) per record: POSIX guarantees the offset seek
  // and the write are one atomic step, so records from concurrent
  // processes (campaign workers, the supervisor, bench runs) land whole —
  // lines never interleave mid-record.  Pipe-style short writes cannot
  // split a record either: regular-file writes of this size complete in
  // one syscall, and the EINTR/short-write loop below only re-enters for
  // signals, each retry still appending contiguously at EOF only if the
  // first write wrote nothing.
  const int fd = ::open(path.c_str(),
                        O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return {"append_jsonl: cannot open " + path +
            " for append: " + errno_text()};
  }
  const std::string record = line + "\n";
  if (!write_fd_all(fd, record.data(), record.size())) {
    const std::string why = errno_text();
    ::close(fd);
    return {"append_jsonl: write to " + path + " failed: " + why};
  }
  ::close(fd);
  return {};
}

namespace {

/// Recursive-descent well-formedness check over `s` starting at `i`.
/// Grammar per RFC 8259; no value materialisation.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view s) : s_(s) {}

  bool run(std::string* error) {
    skip_ws();
    if (!value(0)) {
      if (error != nullptr) *error = fail_;
      return false;
    }
    skip_ws();
    if (i_ != s_.size()) {
      if (error != nullptr) {
        *error = "trailing data at offset " + std::to_string(i_);
      }
      return false;
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 256;

  bool err(const std::string& what) {
    if (fail_.empty()) {
      fail_ = what + " at offset " + std::to_string(i_);
    }
    return false;
  }

  void skip_ws() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t' ||
                              s_[i_] == '\n' || s_[i_] == '\r')) {
      ++i_;
    }
  }

  bool eat(char c) {
    if (i_ < s_.size() && s_[i_] == c) {
      ++i_;
      return true;
    }
    return err(std::string("expected '") + c + "'");
  }

  bool literal(std::string_view word) {
    if (s_.substr(i_, word.size()) == word) {
      i_ += word.size();
      return true;
    }
    return err("invalid literal");
  }

  bool string() {
    if (!eat('"')) return false;
    while (i_ < s_.size()) {
      const unsigned char c = static_cast<unsigned char>(s_[i_]);
      if (c == '"') {
        ++i_;
        return true;
      }
      if (c < 0x20) return err("unescaped control character in string");
      if (c == '\\') {
        ++i_;
        if (i_ >= s_.size()) return err("truncated escape");
        const char e = s_[i_];
        if (e == 'u') {
          for (int k = 1; k <= 4; ++k) {
            if (i_ + k >= s_.size() ||
                !std::isxdigit(static_cast<unsigned char>(s_[i_ + k]))) {
              return err("bad \\u escape");
            }
          }
          i_ += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return err("bad escape");
        }
      }
      ++i_;
    }
    return err("unterminated string");
  }

  bool number() {
    const std::size_t start = i_;
    if (i_ < s_.size() && s_[i_] == '-') ++i_;
    if (i_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[i_]))) {
      return err("bad number");
    }
    if (s_[i_] == '0') {
      ++i_;
    } else {
      while (i_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[i_])))
        ++i_;
    }
    if (i_ < s_.size() && s_[i_] == '.') {
      ++i_;
      if (i_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[i_])))
        return err("bad fraction");
      while (i_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[i_])))
        ++i_;
    }
    if (i_ < s_.size() && (s_[i_] == 'e' || s_[i_] == 'E')) {
      ++i_;
      if (i_ < s_.size() && (s_[i_] == '+' || s_[i_] == '-')) ++i_;
      if (i_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[i_])))
        return err("bad exponent");
      while (i_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[i_])))
        ++i_;
    }
    return i_ > start;
  }

  bool value(int depth) {
    if (depth > kMaxDepth) return err("nesting too deep");
    if (i_ >= s_.size()) return err("unexpected end of input");
    switch (s_[i_]) {
      case '{': {
        ++i_;
        skip_ws();
        if (i_ < s_.size() && s_[i_] == '}') {
          ++i_;
          return true;
        }
        for (;;) {
          skip_ws();
          if (!string()) return false;
          skip_ws();
          if (!eat(':')) return false;
          skip_ws();
          if (!value(depth + 1)) return false;
          skip_ws();
          if (i_ < s_.size() && s_[i_] == ',') {
            ++i_;
            continue;
          }
          return eat('}');
        }
      }
      case '[': {
        ++i_;
        skip_ws();
        if (i_ < s_.size() && s_[i_] == ']') {
          ++i_;
          return true;
        }
        for (;;) {
          skip_ws();
          if (!value(depth + 1)) return false;
          skip_ws();
          if (i_ < s_.size() && s_[i_] == ',') {
            ++i_;
            continue;
          }
          return eat(']');
        }
      }
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  std::string_view s_;
  std::size_t i_ = 0;
  std::string fail_;
};

}  // namespace

bool json_validate(std::string_view text, std::string* error) {
  return JsonChecker(text).run(error);
}

}  // namespace mldist::util
