#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

namespace mldist::util {

void JsonBuilder::key(const std::string& k) {
  if (!body_.empty()) body_ += ",";
  body_ += quote(k) + ":";
}

JsonBuilder& JsonBuilder::field(const std::string& k, double value) {
  key(k);
  if (std::isfinite(value)) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    body_ += buf;
  } else {
    body_ += "null";  // JSON has no NaN/Inf
  }
  return *this;
}

JsonBuilder& JsonBuilder::field(const std::string& k, std::uint64_t value) {
  key(k);
  body_ += std::to_string(value);
  return *this;
}

JsonBuilder& JsonBuilder::field(const std::string& k, int value) {
  key(k);
  body_ += std::to_string(value);
  return *this;
}

JsonBuilder& JsonBuilder::field(const std::string& k, bool value) {
  key(k);
  body_ += value ? "true" : "false";
  return *this;
}

JsonBuilder& JsonBuilder::field(const std::string& k, const std::string& value) {
  key(k);
  body_ += quote(value);
  return *this;
}

JsonBuilder& JsonBuilder::field(const std::string& k, const char* value) {
  return field(k, std::string(value));
}

JsonBuilder& JsonBuilder::raw(const std::string& k, const std::string& json) {
  key(k);
  body_ += json;
  return *this;
}

std::string JsonBuilder::array(const std::vector<std::string>& items) {
  std::string out = "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ",";
    out += items[i];
  }
  return out + "]";
}

std::string JsonBuilder::quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out + "\"";
}

bool write_json_file(const std::string& path, const std::string& json) {
  const std::filesystem::path p(path);
  std::error_code ec;
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path(), ec);
  std::ofstream out(path);
  if (!out) return false;
  out << json << "\n";
  return static_cast<bool>(out);
}

}  // namespace mldist::util
