#include "util/process.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace mldist::util {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

Pipe make_pipe(bool parent_keeps_read) {
  int fds[2];
  if (::pipe(fds) != 0) throw_errno("make_pipe: pipe");
  Pipe p{fds[0], fds[1]};
  const int parent_end = parent_keeps_read ? p.read_fd : p.write_fd;
  if (::fcntl(parent_end, F_SETFD, FD_CLOEXEC) != 0) {
    throw_errno("make_pipe: fcntl(FD_CLOEXEC)");
  }
  return p;
}

void set_nonblocking(int fd, bool nonblocking) {
  const int flags = ::fcntl(fd, F_GETFL);
  if (flags < 0) throw_errno("set_nonblocking: fcntl(F_GETFL)");
  const int next = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, next) != 0) {
    throw_errno("set_nonblocking: fcntl(F_SETFL)");
  }
}

void close_fd(int fd) {
  if (fd < 0) return;
  // POSIX leaves the fd state unspecified after EINTR from close; Linux
  // always closes it, so do not retry (a retry could close a reused fd).
  ::close(fd);
}

std::string self_exe_path() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) throw_errno("self_exe_path: readlink(/proc/self/exe)");
  buf[n] = '\0';
  return buf;
}

pid_t spawn_process(const std::vector<std::string>& argv) {
  if (argv.empty()) throw std::invalid_argument("spawn_process: empty argv");
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv) {
    cargv.push_back(const_cast<char*>(a.c_str()));
  }
  cargv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid < 0) throw_errno("spawn_process: fork");
  if (pid == 0) {
    ::execv(cargv[0], cargv.data());
    // Only reached when exec failed; _exit (not exit) so no atexit handlers
    // of the half-copied parent image run.
    ::_exit(127);
  }
  return pid;
}

namespace {

ChildStatus decode_wait(pid_t rc, int status) {
  if (rc == 0) return {ChildState::kRunning, 0};
  if (rc < 0) return {ChildState::kLost, 0};
  if (WIFEXITED(status)) return {ChildState::kExited, WEXITSTATUS(status)};
  if (WIFSIGNALED(status)) return {ChildState::kSignaled, WTERMSIG(status)};
  return {ChildState::kRunning, 0};  // stopped/continued: not a termination
}

}  // namespace

ChildStatus poll_child(pid_t pid) {
  int status = 0;
  pid_t rc;
  do {
    rc = ::waitpid(pid, &status, WNOHANG);
  } while (rc < 0 && errno == EINTR);
  return decode_wait(rc, status);
}

ChildStatus wait_child(pid_t pid) {
  int status = 0;
  pid_t rc;
  do {
    rc = ::waitpid(pid, &status, 0);
  } while (rc < 0 && errno == EINTR);
  return decode_wait(rc, status);
}

bool kill_process(pid_t pid, int sig) {
  return ::kill(pid, sig) == 0;
}

bool read_available(int fd, std::string& buf) {
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n > 0) {
      buf.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) return false;  // EOF: peer closed
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    return false;  // treat hard read errors like EOF: the peer is gone
  }
}

bool write_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

FileLock::~FileLock() { release(); }

FileLock::FileLock(FileLock&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

FileLock& FileLock::operator=(FileLock&& other) noexcept {
  if (this != &other) {
    release();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

bool FileLock::acquire(const std::string& path, std::string* error) {
  release();
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    if (error != nullptr) {
      *error = "FileLock: cannot open " + path + ": " + std::strerror(errno);
    }
    return false;
  }
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    if (error != nullptr) {
      *error = errno == EWOULDBLOCK
                   ? "FileLock: " + path + " is held by another process"
                   : "FileLock: flock " + path + ": " + std::strerror(errno);
    }
    ::close(fd);
    return false;
  }
  fd_ = fd;
  return true;
}

void FileLock::release() {
  if (fd_ >= 0) {
    ::flock(fd_, LOCK_UN);
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace mldist::util
