// Bit- and byte-level helpers shared by the cipher implementations and the
// feature encoders.  Ciphers in this repo follow the little-endian byte order
// of the Gimli/SPECK reference code.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <vector>

namespace mldist::util {

/// Load a 32-bit word, little-endian, from 4 bytes.
constexpr std::uint32_t load_u32_le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

/// Store a 32-bit word, little-endian, into 4 bytes.
constexpr void store_u32_le(std::uint8_t* p, std::uint32_t w) {
  p[0] = static_cast<std::uint8_t>(w);
  p[1] = static_cast<std::uint8_t>(w >> 8);
  p[2] = static_cast<std::uint8_t>(w >> 16);
  p[3] = static_cast<std::uint8_t>(w >> 24);
}

/// XOR `n` bytes of `src` into `dst`.
inline void xor_bytes(std::uint8_t* dst, const std::uint8_t* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= src[i];
}

/// Byte-wise XOR of two equal-length buffers, returned as a fresh vector.
std::vector<std::uint8_t> xor_vec(std::span<const std::uint8_t> a,
                                  std::span<const std::uint8_t> b);

/// Unpack bytes into one float per bit (LSB-first within each byte),
/// producing 8*n features in {0.0, 1.0}.  This is the feature encoding fed
/// to every classifier in the repo.
void bits_to_floats(std::span<const std::uint8_t> bytes, float* out);

/// Number of set bits across a byte buffer.
int hamming_weight(std::span<const std::uint8_t> bytes);

/// Extract bit `i` (LSB-first within bytes) from a buffer.
constexpr int get_bit(const std::uint8_t* bytes, std::size_t i) {
  return (bytes[i / 8] >> (i % 8)) & 1;
}

/// Flip bit `i` (LSB-first within bytes) in a buffer.
constexpr void flip_bit(std::uint8_t* bytes, std::size_t i) {
  bytes[i / 8] ^= static_cast<std::uint8_t>(1u << (i % 8));
}

}  // namespace mldist::util
